// Checkpoint-piggyback overhead on the PR 8 streaming workload: a
// checkpointed session (SESSION-OPEN flag bit0) makes the server
// export the stream checkpoint on EVERY SESSION-MATCHES ack so the
// gateway can fail the session over transparently (DESIGN.md §18).
// That export must be close to free — the committed snapshot
// BENCH_010.json records the measured overhead against the plain
// session on identical traffic, and the benchmark guard holds the
// export-per-push path to <= 3% over the same scan without exports.
package alveare_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/server/client"
)

// benchCkptFile is the committed piggyback-overhead snapshot,
// regenerated with ALVEARE_BENCH_SNAPSHOT=update and shape-checked
// with ALVEARE_BENCH_SNAPSHOT=1 (wall-clock, machine-specific, same
// caveat as BENCH_006/007/008).
const benchCkptFile = "BENCH_010.json"

// benchCkptWorkload is the engine-level shape of the piggyback cost:
// the same 64 KiB pushes a streaming session makes, with and without
// an Export() per push. The export is what the server adds to every
// ack of a checkpointed session, so the delta between the two runs IS
// the piggyback overhead, with no network noise in the measurement.
func benchCkptWorkload(b *testing.B, export bool) {
	rs, err := core.NewRuleSet(benchSessRules, backend.Options{},
		core.WithDFA(), core.WithApprox())
	if err != nil {
		b.Fatal(err)
	}
	corpus, _ := benchSessCorpus(2000, 2026)
	var flat []byte
	for _, rec := range corpus {
		flat = append(flat, rec...)
	}
	const chunk = 64 << 10
	emit := func(int, core.Match, []byte) bool { return true }
	ctx := context.Background()
	b.SetBytes(int64(len(flat)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := rs.NewStream(4096)
		for off := 0; off < len(flat); off += chunk {
			end := off + chunk
			if end > len(flat) {
				end = len(flat)
			}
			if _, err := st.PushCtx(ctx, flat[off:end], emit); err != nil {
				b.Fatal(err)
			}
			if export {
				if cp := st.Export(); len(cp) == 0 {
					b.Fatal("empty checkpoint")
				}
			}
		}
		if _, err := st.FinishCtx(ctx, emit); err != nil {
			b.Fatal(err)
		}
	}
}

// measureStreamCkpt is measureStream with the checkpoint flag on the
// SESSION-OPEN: same flattened corpus, same 64 KiB frames, same
// closed loop per connection — the only difference on the wire is the
// negotiated flag and the checkpoint trailer on every ack.
func measureStreamCkpt(t *testing.T, clients []*client.Client, corpus [][]byte, ckpt bool) benchSessionResult {
	t.Helper()
	var flat []byte
	for _, rec := range corpus {
		flat = append(flat, rec...)
	}
	const chunk = 64 << 10
	mode := "stream-64KiB-plain"
	if ckpt {
		mode = "stream-64KiB-ckpt"
	}

	type slot struct {
		c     *client.Client
		lats  []time.Duration
		bytes int64
		sent  int64
	}
	var slots []*slot
	for _, c := range clients {
		slots = append(slots, &slot{c: c})
	}
	run := func(d time.Duration, record bool) {
		deadline := time.Now().Add(d)
		var wg sync.WaitGroup
		errCh := make(chan error, len(slots))
		for _, s := range slots {
			wg.Add(1)
			go func(s *slot) {
				defer wg.Done()
				var sess *client.Session
				var err error
				if ckpt {
					sess, err = s.c.OpenSessionCheckpointCtx(context.Background(), 0)
				} else {
					sess, err = s.c.OpenSession(0)
				}
				if err != nil {
					errCh <- err
					return
				}
				off := 0
				for time.Now().Before(deadline) {
					end := off + chunk
					if end > len(flat) {
						end = len(flat)
					}
					t0 := time.Now()
					_, _, err := sess.Write(flat[off:end])
					if err != nil {
						if errors.Is(err, client.ErrShed) {
							continue
						}
						errCh <- fmt.Errorf("%s: %w", mode, err)
						return
					}
					if record {
						s.lats = append(s.lats, time.Since(t0))
						s.bytes += int64(end - off)
						s.sent++
					}
					off = end
					if off >= len(flat) {
						off = 0
					}
				}
				if ckpt && sess.Checkpoint() == nil {
					errCh <- fmt.Errorf("%s: no checkpoint piggybacked", mode)
					return
				}
				if _, _, err := sess.Close(); err != nil {
					errCh <- fmt.Errorf("%s close: %w", mode, err)
				}
			}(s)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}
	run(300*time.Millisecond, false)
	start := time.Now()
	run(1200*time.Millisecond, true)
	elapsed := time.Since(start).Seconds()

	res := benchSessionResult{Mode: mode, Seconds: elapsed}
	var all []time.Duration
	var bytes int64
	for _, s := range slots {
		bytes += s.bytes
		res.Frames += s.sent
		all = append(all, s.lats...)
	}
	if bytes == 0 {
		t.Fatalf("%s: no bytes pushed", mode)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) int64 {
		return all[int(q*float64(len(all)-1))].Microseconds()
	}
	res.P50us, res.P99us = quantile(0.50), quantile(0.99)
	res.MBPerSec = float64(bytes) / elapsed / (1 << 20)
	return res
}

type benchCkptSnapshot struct {
	Schema   int                  `json:"schema"`
	Workload string               `json:"workload"`
	Modes    []benchSessionResult `json:"modes"`
	// OverheadPct is the headline number: how much slower the
	// checkpointed session streams than the plain one, in percent of
	// sustained MB/s. The benchmark guard caps the engine-level export
	// cost at 3%; the recorded end-to-end figure must honour the same
	// bound.
	OverheadPct float64 `json:"ckpt_overhead_pct"`
}

// TestBenchCkptSnapshot regenerates (ALVEARE_BENCH_SNAPSHOT=update)
// or checks (ALVEARE_BENCH_SNAPSHOT=1) the committed BENCH_010.json.
// The check asserts the snapshot's claim — piggybacking a checkpoint
// on every streaming ack costs <= 3% of sustained throughput — not
// this machine's clock.
func TestBenchCkptSnapshot(t *testing.T) {
	mode := os.Getenv("ALVEARE_BENCH_SNAPSHOT")
	if mode == "" {
		t.Skip("wall-clock snapshot; run with ALVEARE_BENCH_SNAPSHOT=1 (check) or =update (regenerate)")
	}

	if mode == "update" {
		corpus, total := benchSessCorpus(benchSessRecords, 2026)
		clients := benchSessServer(t)
		// Alternate the modes and keep each one's best round, so a
		// scheduler hiccup in a single 1.2 s window cannot fake (or
		// hide) an overhead.
		var plain, ckpt benchSessionResult
		for round := 0; round < 3; round++ {
			if p := measureStreamCkpt(t, clients, corpus, false); p.MBPerSec > plain.MBPerSec {
				plain = p
			}
			if c := measureStreamCkpt(t, clients, corpus, true); c.MBPerSec > ckpt.MBPerSec {
				ckpt = c
			}
		}
		snap := benchCkptSnapshot{
			Schema: 1,
			Workload: fmt.Sprintf(
				"%d seeded log records, %d bytes total (64-256 B band), %d rules, %d conns x 64 KiB SESSION-DATA frames, plain vs checkpointed session, best of 3 rounds",
				benchSessRecords, total, len(benchSessRules), benchSessConns),
			Modes:       []benchSessionResult{plain, ckpt},
			OverheadPct: (plain.MBPerSec/ckpt.MBPerSec - 1) * 100,
		}
		raw, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchCkptFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, m := range snap.Modes {
			t.Logf("%s: %.2f MB/s, p50 %dus p99 %dus over %d frames",
				m.Mode, m.MBPerSec, m.P50us, m.P99us, m.Frames)
		}
		t.Logf("checkpoint piggyback overhead: %.2f%%", snap.OverheadPct)
		return
	}

	raw, err := os.ReadFile(benchCkptFile)
	if err != nil {
		t.Fatalf("%v (regenerate with ALVEARE_BENCH_SNAPSHOT=update)", err)
	}
	var snap benchCkptSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Modes) != 2 {
		t.Fatalf("snapshot shape: %d mode rows, want 2 (plain, ckpt)", len(snap.Modes))
	}
	for _, m := range snap.Modes {
		if m.Frames == 0 || m.MBPerSec <= 0 {
			t.Errorf("%s: empty measurement recorded", m.Mode)
		}
	}
	if snap.OverheadPct > 3 {
		t.Errorf("recorded checkpoint piggyback overhead %.2f%%, want <= 3%%", snap.OverheadPct)
	}
}
