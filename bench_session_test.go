// Service-protocol benchmarks for PR 8's batched and streaming paths:
// the batch amortisation win (SCAN-BATCH vs one SCAN per record on
// 64-256 byte payloads) and streaming-session throughput. The
// committed snapshot BENCH_008.json records the numbers, continuing
// the BENCH_006 (engine) / BENCH_007 (fleet) trajectory.
//
// Unlike the fleet benchmark there is NO artificial service-time
// floor here: the whole point is the protocol overhead that batching
// amortises — framing, admission, queue dispatch, syscalls — measured
// against the real engine's scan cost. Both sides of the comparison
// run the same records through the same server with the same
// connection count and pipelining depth; only the framing differs.
package alveare_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/server"
	"alveare/internal/server/client"
)

// benchSessionFile is the committed protocol-throughput snapshot,
// regenerated with ALVEARE_BENCH_SNAPSHOT=update and shape-checked
// with ALVEARE_BENCH_SNAPSHOT=1 (wall-clock, machine-specific, same
// caveat as BENCH_006/007).
const benchSessionFile = "BENCH_008.json"

const (
	benchSessConns    = 4
	benchSessInflight = 8
	benchSessRecords  = 20000
)

// benchSessRules is a small request-log rule set; cheap enough that
// the protocol overhead is visible (the quantity batching amortises),
// real enough that the scan side is not a no-op. On the single-core
// CI box every scan competes with the protocol path for the same CPU,
// so a heavy rule set would measure the engine, not the framing.
var benchSessRules = []string{
	"ERROR|FATAL",
	"status=[45][0-9][0-9]",
}

type benchSessionResult struct {
	Mode       string  `json:"mode"`
	Records    int64   `json:"records"`
	Frames     int64   `json:"frames"`
	Seconds    float64 `json:"seconds"`
	RecsPerSec float64 `json:"records_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
	P50us      int64   `json:"p50_us"`
	P99us      int64   `json:"p99_us"`
}

type benchSessionSnapshot struct {
	Schema   int                  `json:"schema"`
	Workload string               `json:"workload"`
	Modes    []benchSessionResult `json:"modes"`
	// BatchSpeedup is the headline claim: record throughput of
	// 64-record SCAN-BATCH frames over one-SCAN-per-record, same
	// records, connections and pipelining.
	BatchSpeedup float64 `json:"batch_speedup_vs_scan"`
	// StreamMBPerSec is the sustained SESSION-DATA throughput.
	StreamMBPerSec float64 `json:"stream_mb_per_sec"`
}

// benchSessCorpus builds seeded log-like records in the 64-256 byte
// band the batch path targets.
func benchSessCorpus(n int, seed int64) ([][]byte, int64) {
	rng := rand.New(rand.NewSource(seed))
	methods := []string{"GET", "POST", "PUT", "DELETE"}
	paths := []string{"/api/v1/scan", "/index/html", "/a/b/c", "/health"}
	var corpus [][]byte
	var total int64
	for i := 0; i < n; i++ {
		line := fmt.Sprintf("%s %s?q=%d status=%d agent=\"probe/%d\" rt=%dus",
			methods[rng.Intn(len(methods))], paths[rng.Intn(len(paths))],
			rng.Intn(100000), 200+rng.Intn(400), rng.Intn(10), rng.Intn(500000))
		for len(line) < 64+rng.Intn(193) {
			line += " pad" + fmt.Sprint(rng.Intn(1000))
		}
		corpus = append(corpus, []byte(line))
		total += int64(len(line))
	}
	return corpus, total
}

// benchSessServer boots the shared server and dials the slot clients.
func benchSessServer(t *testing.T) []*client.Client {
	t.Helper()
	srv, err := server.New(server.Config{Rules: benchSessRules})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	var clients []*client.Client
	for i := 0; i < benchSessConns; i++ {
		c, err := client.Dial(ln.Addr().String(), client.WithRetries(3))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients = append(clients, c)
	}
	return clients
}

// measureFrames drives a closed loop of frames for the duration:
// every slot keeps issuing the next frame (a batch slice or a single
// record) as soon as the previous answer lands. issue returns the
// record count the frame carried.
func measureFrames(t *testing.T, clients []*client.Client, mode string,
	corpus [][]byte, recBytes int64, batch int) benchSessionResult {
	t.Helper()
	var frames [][][]byte
	for off := 0; off < len(corpus); off += batch {
		end := off + batch
		if end > len(corpus) {
			end = len(corpus)
		}
		frames = append(frames, corpus[off:end])
	}
	issue := func(c *client.Client, items [][]byte) (int64, error) {
		if batch == 1 {
			_, err := c.Scan(items[0])
			return 1, err
		}
		res, err := c.ScanBatch(items)
		if err != nil {
			return 0, err
		}
		for _, r := range res {
			if r.Err != nil {
				return 0, r.Err
			}
		}
		return int64(len(items)), nil
	}

	type slot struct {
		c     *client.Client
		lats  []time.Duration
		recs  int64
		sent  int64
		bytes int64
	}
	var slots []*slot
	for _, c := range clients {
		for k := 0; k < benchSessInflight; k++ {
			slots = append(slots, &slot{c: c})
		}
	}
	run := func(d time.Duration, record bool) {
		deadline := time.Now().Add(d)
		var cursor atomic.Int64
		var wg sync.WaitGroup
		errCh := make(chan error, len(slots))
		for _, s := range slots {
			wg.Add(1)
			go func(s *slot) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					fi := int(cursor.Add(1)-1) % len(frames)
					items := frames[fi]
					t0 := time.Now()
					n, err := issue(s.c, items)
					if err != nil {
						if errors.Is(err, client.ErrShed) {
							continue
						}
						errCh <- fmt.Errorf("%s: %w", mode, err)
						return
					}
					if record {
						s.lats = append(s.lats, time.Since(t0))
						s.recs += n
						s.sent++
						for _, it := range items {
							s.bytes += int64(len(it))
						}
					}
				}
			}(s)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}
	run(300*time.Millisecond, false) // warmup
	start := time.Now()
	run(1200*time.Millisecond, true)
	elapsed := time.Since(start).Seconds()

	res := benchSessionResult{Mode: mode, Seconds: elapsed}
	var all []time.Duration
	var bytes int64
	for _, s := range slots {
		res.Records += s.recs
		res.Frames += s.sent
		bytes += s.bytes
		all = append(all, s.lats...)
	}
	if res.Records == 0 {
		t.Fatalf("%s: no records completed", mode)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) int64 {
		return all[int(q*float64(len(all)-1))].Microseconds()
	}
	res.P50us, res.P99us = quantile(0.50), quantile(0.99)
	res.RecsPerSec = float64(res.Records) / elapsed
	res.MBPerSec = float64(bytes) / elapsed / (1 << 20)
	return res
}

// measureStream drives one streaming session per connection, pushing
// 64 KiB SESSION-DATA frames of the flattened corpus for the
// duration, and reports sustained MB/s.
func measureStream(t *testing.T, clients []*client.Client, corpus [][]byte) benchSessionResult {
	t.Helper()
	var flat []byte
	for _, rec := range corpus {
		flat = append(flat, rec...)
	}
	const chunk = 64 << 10

	type slot struct {
		c     *client.Client
		lats  []time.Duration
		bytes int64
		sent  int64
	}
	var slots []*slot
	for _, c := range clients {
		slots = append(slots, &slot{c: c})
	}
	run := func(d time.Duration, record bool) {
		deadline := time.Now().Add(d)
		var wg sync.WaitGroup
		errCh := make(chan error, len(slots))
		for _, s := range slots {
			wg.Add(1)
			go func(s *slot) {
				defer wg.Done()
				sess, err := s.c.OpenSession(0)
				if err != nil {
					errCh <- err
					return
				}
				off := 0
				for time.Now().Before(deadline) {
					end := off + chunk
					if end > len(flat) {
						end = len(flat)
					}
					t0 := time.Now()
					_, _, err := sess.Write(flat[off:end])
					if err != nil {
						if errors.Is(err, client.ErrShed) {
							continue
						}
						errCh <- fmt.Errorf("stream: %w", err)
						return
					}
					if record {
						s.lats = append(s.lats, time.Since(t0))
						s.bytes += int64(end - off)
						s.sent++
					}
					off = end
					if off >= len(flat) {
						off = 0
					}
				}
				if _, _, err := sess.Close(); err != nil {
					errCh <- fmt.Errorf("stream close: %w", err)
				}
			}(s)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}
	run(300*time.Millisecond, false)
	start := time.Now()
	run(1200*time.Millisecond, true)
	elapsed := time.Since(start).Seconds()

	res := benchSessionResult{Mode: "stream-64KiB", Seconds: elapsed}
	var all []time.Duration
	var bytes int64
	for _, s := range slots {
		bytes += s.bytes
		res.Frames += s.sent
		all = append(all, s.lats...)
	}
	if bytes == 0 {
		t.Fatal("stream: no bytes pushed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) int64 {
		return all[int(q*float64(len(all)-1))].Microseconds()
	}
	res.P50us, res.P99us = quantile(0.50), quantile(0.99)
	res.MBPerSec = float64(bytes) / elapsed / (1 << 20)
	return res
}

// TestBenchSessionSnapshot regenerates (ALVEARE_BENCH_SNAPSHOT=update)
// or checks (ALVEARE_BENCH_SNAPSHOT=1) the committed BENCH_008.json.
// The check asserts the snapshot's claims, not this machine's clock:
// >= 3x record throughput for 64-record batches over per-record SCAN,
// and a non-trivial sustained streaming rate.
func TestBenchSessionSnapshot(t *testing.T) {
	mode := os.Getenv("ALVEARE_BENCH_SNAPSHOT")
	if mode == "" {
		t.Skip("wall-clock snapshot; run with ALVEARE_BENCH_SNAPSHOT=1 (check) or =update (regenerate)")
	}

	if mode == "update" {
		corpus, total := benchSessCorpus(benchSessRecords, 2026)
		clients := benchSessServer(t)
		snap := benchSessionSnapshot{
			Schema: 1,
			Workload: fmt.Sprintf(
				"%d seeded log records, %d bytes total (64-256 B band), %d rules, %d conns x %d in flight, no service-time floor",
				benchSessRecords, total, len(benchSessRules), benchSessConns, benchSessInflight),
		}
		scan := measureFrames(t, clients, "scan-per-record", corpus, total, 1)
		batch := measureFrames(t, clients, "batch-64", corpus, total, 64)
		stream := measureStream(t, clients, corpus)
		snap.Modes = []benchSessionResult{scan, batch, stream}
		snap.BatchSpeedup = batch.RecsPerSec / scan.RecsPerSec
		snap.StreamMBPerSec = stream.MBPerSec
		raw, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchSessionFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, m := range snap.Modes {
			t.Logf("%s: %.0f records/s (%.2f MB/s), p50 %dus p99 %dus over %d frames",
				m.Mode, m.RecsPerSec, m.MBPerSec, m.P50us, m.P99us, m.Frames)
		}
		t.Logf("batch speedup %.2fx; stream %.2f MB/s", snap.BatchSpeedup, snap.StreamMBPerSec)
		return
	}

	raw, err := os.ReadFile(benchSessionFile)
	if err != nil {
		t.Fatalf("%v (regenerate with ALVEARE_BENCH_SNAPSHOT=update)", err)
	}
	var snap benchSessionSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Modes) != 3 {
		t.Fatalf("snapshot shape: %d mode rows, want 3", len(snap.Modes))
	}
	for _, m := range snap.Modes {
		if m.Frames == 0 || m.MBPerSec <= 0 {
			t.Errorf("%s: empty measurement recorded", m.Mode)
		}
	}
	if snap.BatchSpeedup < 3 {
		t.Errorf("recorded batch speedup %.2fx, want >= 3x", snap.BatchSpeedup)
	}
	if snap.StreamMBPerSec <= 1 {
		t.Errorf("recorded stream throughput %.2f MB/s, want > 1", snap.StreamMBPerSec)
	}
}
