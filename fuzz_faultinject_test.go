package alveare

import (
	"bytes"
	"errors"
	"testing"

	"alveare/internal/faultinject"
)

// FuzzFaultInjection fuzzes (pattern, input, chunkSize, failAt) and
// drives the chunked reader scan through a reader that fails hard at
// byte failAt. Whatever the geometry, the guardrail contract must
// hold: a fault inside the stream surfaces as a *ScanError whose
// Offset is exactly the first undeliverable byte, wrapping the
// injected cause; every match emitted before the fault is a prefix of
// the one-shot result; a fault positioned past the end never fires.
func FuzzFaultInjection(f *testing.F) {
	f.Add("a+b", "aabab aab", 7, 4)
	f.Add("[a-f]{2,4}", "xxfadexxbeadxx", 3, 0)
	f.Add("(cat|dog)+", "catdogcat catcat", 64, 9)
	f.Add("[^ ]+", "split into many words here", 5, 26)
	f.Add("x{2,}y", "xxxxy xy xxy", 2, 100)
	f.Fuzz(func(t *testing.T, pat, input string, chunkSize, failAt int) {
		if len(pat) > 40 || len(input) > 1<<12 {
			t.Skip()
		}
		prog, err := Compile(pat)
		if err != nil {
			t.Skip() // outside the supported subset
		}
		oneShot, err := NewEngine(prog)
		if err != nil {
			t.Skip()
		}
		data := []byte(input)
		want, err := oneShot.FindAll(data)
		if err != nil {
			t.Skip() // pathological execution (stack/cycle budget)
		}
		maxLen := 1
		for _, m := range want {
			if l := m.End - m.Start; l > maxLen {
				maxLen = l
			}
		}
		chunk := chunkSize
		if chunk < 1 {
			chunk = 1 - chunk
		}
		chunk = 1 + chunk%4096
		if failAt < 0 {
			failAt = -failAt
		}
		failAt %= len(data) + 16

		eng, err := NewEngine(prog, WithChunkSize(chunk), WithOverlap(maxLen))
		if err != nil {
			t.Fatalf("engine for %q: %v", pat, err)
		}
		r := faultinject.ErrAt(bytes.NewReader(data), int64(failAt), nil)
		var got []Match
		_, serr := eng.ScanReader(r, func(m Match, _ []byte) bool {
			got = append(got, m)
			return true
		})

		if failAt > len(data) {
			// The stream ends before the fault position: clean EOF, full
			// result set.
			if serr != nil {
				t.Fatalf("%q failAt=%d past EOF: err = %v, want nil", pat, failAt, serr)
			}
			if len(got) != len(want) {
				t.Fatalf("%q failAt=%d past EOF: %d matches, want %d", pat, failAt, len(got), len(want))
			}
		} else {
			var se *ScanError
			if !errors.As(serr, &se) {
				t.Fatalf("%q chunk=%d failAt=%d: err = %v (%T), want *ScanError", pat, chunk, failAt, serr, serr)
			}
			if se.Offset != int64(failAt) {
				t.Fatalf("%q chunk=%d failAt=%d: ScanError.Offset = %d", pat, chunk, failAt, se.Offset)
			}
			if !errors.Is(serr, faultinject.ErrInjected) {
				t.Fatalf("%q: cause lost: %v", pat, serr)
			}
		}
		if len(got) > len(want) {
			t.Fatalf("%q chunk=%d failAt=%d: emitted %d matches, one-shot has %d", pat, chunk, failAt, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q chunk=%d failAt=%d: match %d = %v, one-shot %v", pat, chunk, failAt, i, got[i], want[i])
			}
		}
	})
}
