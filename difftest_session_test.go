// Differential battery for the service-side streaming protocol: a
// SESSION-OPEN/DATA/CLOSE stream through a real TCP server must be
// byte-identical to the local engine's streaming scan over the same
// concatenated bytes — for arbitrary frame splits, for the overlap
// edge cases (a carry of one byte, a carry larger than the whole
// stream), and with the lazy-DFA fast path both on and off. SCAN-BATCH
// gets the same treatment against per-item one-shot scans. These run
// under `make difftest` alongside the engine-level battery.
package alveare_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"testing"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// diffSessRules mixes literals, classes, counters and alternation so
// matches routinely span more bytes than the small frame splits the
// battery pushes — every boundary case has to ride the overlap carry.
var diffSessRules = []string{
	"ab+c",
	"needle",
	"x[0-9]+y",
	"(GET|POST) /[a-z/]+",
	"a{2,4}b",
}

// diffSessPayload builds a seeded corpus dense in straddle-prone
// material: long single matches, half-written witnesses, filler.
func diffSessPayload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	pieces := []string{
		"abc", "abbbbbbbbbbbbbbbbc", "needle", "x1234567y",
		"GET /index/html", "POST /a/b/c", "aaab", "aab",
		"nee", "ab", "x9", "GET ", "...", "filler filler ",
	}
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(pieces[rng.Intn(len(pieces))])
	}
	return b.Bytes()
}

// sortRuleMatches orders service matches for set comparison: the wire
// reports matches window-major, the local engines rule-major, so every
// equality check in this battery compares sorted sets.
func sortRuleMatches(ms []server.RuleMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Rule != ms[j].Rule {
			return ms[i].Rule < ms[j].Rule
		}
		if ms[i].Start != ms[j].Start {
			return ms[i].Start < ms[j].Start
		}
		return ms[i].End < ms[j].End
	})
}

// diffLocalRuleSet compiles the battery's rules locally, the ground
// truth the service is measured against.
func diffLocalRuleSet(t testing.TB, overlap int) *core.RuleSet {
	t.Helper()
	opts := []core.Option{core.WithDFA()}
	if overlap > 0 {
		opts = append(opts, core.WithOverlap(overlap))
	}
	rs, err := core.NewRuleSet(diffSessRules, backend.Options{}, opts...)
	if err != nil {
		t.Fatalf("NewRuleSet: %v", err)
	}
	return rs
}

// diffLocalStream is the oracle: the local streaming scan (pull mode)
// over the same payload and overlap. chunkSize <= 0 keeps the default
// refill granularity — deliberately DIFFERENT from the frame splits
// the service tests push, which is valid whenever the overlap covers
// the longest match (the chunking-invariance condition). Tests that
// shrink the overlap below the longest match must pass the service's
// frame size here instead: the blind spot depends on where the window
// boundaries fall, so byte-identity is only promised for the same
// chunking.
func diffLocalStream(t testing.TB, payload []byte, overlap, chunkSize int) []server.RuleMatch {
	t.Helper()
	opts := []core.Option{core.WithDFA()}
	if overlap > 0 {
		opts = append(opts, core.WithOverlap(overlap))
	}
	if chunkSize > 0 {
		opts = append(opts, core.WithChunkSize(chunkSize))
	}
	rs, err := core.NewRuleSet(diffSessRules, backend.Options{}, opts...)
	if err != nil {
		t.Fatalf("NewRuleSet: %v", err)
	}
	var want []server.RuleMatch
	if _, err := rs.ScanReaderCtx(context.Background(), bytes.NewReader(payload),
		func(rule int, m core.Match, _ []byte) bool {
			want = append(want, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
			return true
		}); err != nil {
		t.Fatalf("ScanReaderCtx: %v", err)
	}
	sortRuleMatches(want)
	return want
}

// diffLocalOneShot is the one-shot oracle for batch items.
func diffLocalOneShot(t testing.TB, rs *core.RuleSet, payload []byte) []server.RuleMatch {
	t.Helper()
	rms, err := rs.ScanCtx(context.Background(), payload)
	if err != nil {
		t.Fatalf("ScanCtx: %v", err)
	}
	var want []server.RuleMatch
	for _, rm := range rms {
		if rm.Err != nil {
			t.Fatalf("rule %d: %v", rm.Rule, rm.Err)
		}
		for _, m := range rm.Matches {
			want = append(want, server.RuleMatch{Rule: uint32(rm.Rule), Start: uint64(m.Start), End: uint64(m.End)})
		}
	}
	sortRuleMatches(want)
	return want
}

// diffStartService boots a real TCP scan server plus a client against
// it, both torn down with the test.
func diffStartService(t testing.TB, cfg server.Config) *client.Client {
	t.Helper()
	if cfg.Rules == nil {
		cfg.Rules = diffSessRules
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// diffSessionScan pushes payload through one service session in
// chunk-sized frames and returns the sorted matches plus the total
// bytes the server acknowledged.
func diffSessionScan(t testing.TB, c *client.Client, payload []byte, chunk, overlap int) ([]server.RuleMatch, uint64) {
	t.Helper()
	sess, err := c.OpenSession(overlap)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	var got []server.RuleMatch
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		ms, _, err := sess.Write(payload[off:end])
		if err != nil {
			t.Fatalf("Write(off=%d): %v", off, err)
		}
		got = append(got, ms...)
	}
	ms, consumed, err := sess.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	got = append(got, ms...)
	sortRuleMatches(got)
	return got, consumed
}

func diffMatchesEqual(a, b []server.RuleMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialSessionChunking: the tentpole invariant end to end.
// One 32 KiB corpus, frame splits from 7 bytes to a single oversized
// frame, the lazy-DFA fast path on and off — every combination must
// reproduce the local streaming scan exactly, matches that straddle
// frame boundaries included.
func TestDifferentialSessionChunking(t *testing.T) {
	payload := diffSessPayload(1, 32<<10)
	want := diffLocalStream(t, payload, 0, 0)
	if len(want) == 0 {
		t.Fatal("corpus produced no matches; the differential would be vacuous")
	}
	for _, nodfa := range []bool{false, true} {
		t.Run(fmt.Sprintf("nodfa=%v", nodfa), func(t *testing.T) {
			c := diffStartService(t, server.Config{NoDFA: nodfa})
			for _, chunk := range []int{7, 64, 1024, 1 << 20} {
				t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
					got, consumed := diffSessionScan(t, c, payload, chunk, 0)
					if consumed != uint64(len(payload)) {
						t.Fatalf("consumed %d bytes, pushed %d", consumed, len(payload))
					}
					if !diffMatchesEqual(got, want) {
						t.Fatalf("session matches diverge from local streaming:\n got %d matches %v\nwant %d matches %v",
							len(got), head(got), len(want), head(want))
					}
				})
			}
		})
	}
}

// TestDifferentialSessionTinyFrames drives the degenerate splits — one
// to five bytes per frame — over a smaller corpus, where every match
// straddles many frames.
func TestDifferentialSessionTinyFrames(t *testing.T) {
	payload := diffSessPayload(2, 2<<10)
	want := diffLocalStream(t, payload, 0, 0)
	c := diffStartService(t, server.Config{})
	for _, chunk := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			got, consumed := diffSessionScan(t, c, payload, chunk, 0)
			if consumed != uint64(len(payload)) {
				t.Fatalf("consumed %d bytes, pushed %d", consumed, len(payload))
			}
			if !diffMatchesEqual(got, want) {
				t.Fatalf("session matches diverge from local streaming:\n got %d matches\nwant %d matches", len(got), len(want))
			}
		})
	}
}

// TestDifferentialSessionOverlapEdges pins the overlap contract at its
// edges. A tiny overlap drops long straddling matches — the documented
// blind spot — and the session must drop EXACTLY the ones the local
// streaming scan drops, no more, no fewer. An overlap larger than the
// whole stream must behave like a one-shot scan.
func TestDifferentialSessionOverlapEdges(t *testing.T) {
	payload := diffSessPayload(3, 8<<10)
	c := diffStartService(t, server.Config{})
	for _, overlap := range []int{1, 4, 64, len(payload) + 64} {
		t.Run(fmt.Sprintf("overlap=%d", overlap), func(t *testing.T) {
			want := diffLocalStream(t, payload, overlap, 13)
			got, consumed := diffSessionScan(t, c, payload, 13, overlap)
			if consumed != uint64(len(payload)) {
				t.Fatalf("consumed %d bytes, pushed %d", consumed, len(payload))
			}
			if !diffMatchesEqual(got, want) {
				t.Fatalf("overlap=%d: session matches diverge from local streaming with the same overlap:\n got %d\nwant %d",
					overlap, len(got), len(want))
			}
		})
	}
	// Sanity: overlap >= stream must equal the one-shot scan, so the
	// edge case above was not two implementations sharing one bug.
	rs := diffLocalRuleSet(t, 0)
	oneShot := diffLocalOneShot(t, rs, payload)
	huge := diffLocalStream(t, payload, len(payload)+64, 0)
	if !diffMatchesEqual(oneShot, huge) {
		t.Fatal("local oracle inconsistent: overlap >= stream differs from one-shot")
	}
}

// TestDifferentialBatchScan: SCAN-BATCH per-item results must equal
// per-item one-shot scans, across item-size mixes including empty
// items and one item much larger than the rest.
func TestDifferentialBatchScan(t *testing.T) {
	corpus := diffSessPayload(4, 16<<10)
	rs := diffLocalRuleSet(t, 0)
	c := diffStartService(t, server.Config{})
	for _, size := range []int{33, 257, 4096} {
		t.Run(fmt.Sprintf("item=%d", size), func(t *testing.T) {
			var items [][]byte
			for off := 0; off < len(corpus); off += size {
				end := off + size
				if end > len(corpus) {
					end = len(corpus)
				}
				items = append(items, corpus[off:end])
			}
			items = append(items, nil)           // empty item
			items = append(items, corpus[:8<<10]) // outsized straggler
			res, err := c.ScanBatch(items)
			if err != nil {
				t.Fatalf("ScanBatch: %v", err)
			}
			if len(res) != len(items) {
				t.Fatalf("batch answered %d items for %d payloads", len(res), len(items))
			}
			for i, r := range res {
				if r.Err != nil {
					t.Fatalf("item %d failed: %v", i, r.Err)
				}
				want := diffLocalOneShot(t, rs, items[i])
				got := append([]server.RuleMatch(nil), r.Matches...)
				sortRuleMatches(got)
				if !diffMatchesEqual(got, want) {
					t.Fatalf("item %d (%d bytes): batch matches diverge from one-shot: got %d want %d",
						i, len(items[i]), len(got), len(want))
				}
			}
		})
	}
}

// head trims a match list for failure messages.
func head(ms []server.RuleMatch) []server.RuleMatch {
	if len(ms) > 8 {
		return ms[:8]
	}
	return ms
}
