package alveare_test

import (
	"fmt"
	"log"

	"alveare"
)

// The basic flow: compile, execute, inspect.
func ExampleCompile() {
	prog, err := alveare.Compile(`(foo|bar)+`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.OpCount(), "instructions (EoR excluded)")
	// Output: 6 instructions (EoR excluded)
}

func ExampleEngine_Find() {
	eng, err := alveare.NewEngine(alveare.MustCompile(`[0-9]+`))
	if err != nil {
		log.Fatal(err)
	}
	data := []byte("order 1234 shipped")
	m, ok, err := eng.Find(data)
	if err != nil || !ok {
		log.Fatal(ok, err)
	}
	fmt.Printf("%s at [%d,%d)\n", data[m.Start:m.End], m.Start, m.End)
	// Output: 1234 at [6,10)
}

func ExampleEngine_FindAll() {
	eng, err := alveare.NewEngine(alveare.MustCompile(`a+`))
	if err != nil {
		log.Fatal(err)
	}
	ms, err := eng.FindAll([]byte("aa b aaa b a"))
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ms {
		fmt.Printf("[%d,%d) ", m.Start, m.End)
	}
	fmt.Println()
	// Output: [0,2) [5,8) [11,12)
}

// Programs disassemble to the paper's instruction mnemonics.
func ExampleProgram_disassemble() {
	prog := alveare.MustCompile(`([^A-Z])+`)
	fmt.Print(prog.Disassemble())
	// Output:
	// ; regex: ([^A-Z])+
	// 0000:  400d007f002  ( {1,inf} fwd=2
	// 0001:  3ac415a0000  NOT RANGE [A-Z] + )+G
	// 0002:  00000000000  EOR
}

// The minimal compiler reproduces the paper's Table 2 baseline.
func ExampleCompileMinimal() {
	adv := alveare.MustCompile(`[a-zA-Z]`)
	min, err := alveare.CompileMinimal(`[a-zA-Z]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal %d -> advanced %d\n", min.OpCount(), adv.OpCount())
	// Output: minimal 27 -> advanced 1
}

func ExampleNewRuleSet() {
	rs, err := alveare.NewRuleSet([]string{`GET /admin`, `passwd`}, alveare.CompilerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rule, ok, err := rs.FirstMatch([]byte("GET /admin/panel HTTP/1.1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rule, ok)
	// Output: 0 true
}
