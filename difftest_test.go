package alveare

import (
	"bytes"
	"math/rand"
	"regexp"
	"testing"
)

// difftestTable is the supported-subset pattern census for the
// differential harness: every entry compiles under both ALVEARE and
// Go's regexp, spanning the ISA's advanced primitives — RANGE classes,
// NOT classes, bounded/unbounded counters, greedy and lazy quantifiers,
// alternation — plus realistic compositions. The witness is a known
// matching fragment planted into the generated corpora so every
// pattern is exercised on hits, not only on misses.
var difftestTable = []struct{ pattern, witness string }{
	// RANGE primitives.
	{`[a-f]+`, "fade"},
	{`[0-9]{3}`, "123"},
	{`[a-m][n-z]`, "an"},
	{`[0-9a-f]{2,4}`, "a1b2"},
	{`x[a-c]*y`, "xabcy"},
	{`[d-g]?h`, "gh"},
	{`[2-7][0-5]`, "43"},
	{`[b-y]{5}`, "bcdef"},
	// NOT (negated classes).
	{`[^a]`, "z"},
	{`[^0-9]+`, "abc"},
	{`a[^b]c`, "axc"},
	{`[^ ]{4}`, "abcd"},
	{`[^a-m]{2}`, "xy"},
	{`q[^u]`, "qa"},
	{`[^x][^y]`, "ab"},
	// Counters (bounded and unbounded quantifiers).
	{`a{3}`, "aaa"},
	{`(ab){2}`, "abab"},
	{`[ab]{2,5}`, "abba"},
	{`z{0,3}a`, "zza"},
	{`(a|b){3}`, "aba"},
	{`a{2,}b`, "aaab"},
	{`(ha){2,3}`, "hahaha"},
	{`o{1,2}k`, "ook"},
	// Lazy quantifiers.
	{`a+?b`, "aab"},
	{`[0-9]+?x`, "12x"},
	{`a{1,4}?b`, "aab"},
	{`(ab)+?c`, "ababc"},
	{`q.*?r`, "qwer"},
	{`x[ab]*?y`, "xaby"},
	{`[a-z]{2,6}?0`, "abc0"},
	// Alternation.
	{`cat|dog|bird`, "bird"},
	{`(GET|POST) /`, "GET /"},
	{`a(b|c)d`, "acd"},
	{`(foo|bar)+`, "foobar"},
	{`(a|ab)c`, "abc"},
	{`th(e|is|at)`, "this"},
	// Realistic compositions.
	{`[a-z0-9]+@[a-z]+\.(com|org)`, "bob7@acme.com"},
	{`ERROR|WARN`, "ERROR"},
	{`"[^"]*"`, `"hi"`},
	{`<[a-z]+>`, "<div>"},
	{`[0-9]+\.[0-9]+`, "3.14"},
	{`0x[0-9a-f]+`, "0xff"},
	{`--+`, "---"},
	{` +`, "  "},
	{`[a-z]+[0-9]{2,3}`, "abc12"},
	{`(0|1)+2`, "1012"},
	{`colou?r`, "colour"},
	{`[A-Z][a-z]+`, "Hello"},
	{`.at`, "cat"},
	{`(x|y)(1|2)z`, "x1z"},
	{`[aeiou]{2}`, "ea"},
	{`end\.`, "end."},
}

// difftestCorpus builds the seeded corpora for one pattern: fixed edge
// cases plus random streams over a mixed ASCII alphabet with the
// witness planted at random offsets.
func difftestCorpus(r *rand.Rand, witness string) [][]byte {
	const alphabet = "abcdefghxyzq0123456789 .-@\"<>/GETPOSHWcloured"
	out := [][]byte{
		{},
		[]byte(witness),
		[]byte(witness + witness),
		[]byte(" " + witness + " tail"),
	}
	for i := 0; i < 10; i++ {
		buf := make([]byte, r.Intn(300))
		for j := range buf {
			buf[j] = alphabet[r.Intn(len(alphabet))]
		}
		for k := 0; k < 1+r.Intn(3) && len(buf) >= len(witness); k++ {
			p := r.Intn(len(buf) - len(witness) + 1)
			copy(buf[p:], witness)
		}
		out = append(out, buf)
	}
	return out
}

// goFindAllSemantics maps ALVEARE's FindAll discipline onto Go
// regexp's: Go suppresses an empty match that lands exactly at the end
// of the previously found match (regexp's prevMatchEnd rule) while
// ALVEARE reports it; both resume one byte later, so dropping those
// entries aligns the two sequences exactly. Non-empty matches are
// never suppressed by either engine.
func goFindAllSemantics(ms []Match) [][]int {
	var out [][]int
	prevEnd := -1
	for _, m := range ms {
		if !(m.Start == m.End && m.Start == prevEnd) {
			out = append(out, []int{m.Start, m.End})
		}
		prevEnd = m.End
	}
	return out
}

func assertSameSpans(t *testing.T, label, pat string, data []byte, got, want [][]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s %q on %q: %d spans, stdlib %d\n got %v\nwant %v", label, pat, data, len(got), len(want), got, want)
		return
	}
	for i := range got {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Errorf("%s %q on %q: span %d = %v, stdlib %v", label, pat, data, i, got[i], want[i])
			return
		}
	}
}

// TestFindAllDifferential is the FindAll-level three-way differential
// harness: for every supported-subset pattern, the full ALVEARE
// pipeline — both compilation modes, the slow reference path, the
// lazy-DFA fast path, and the fast path squeezed through a tiny DFA
// cache — must report exactly Go regexp's FindAllIndex spans over the
// seeded corpora.
func TestFindAllDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for _, tc := range difftestTable {
		std := regexp.MustCompile(tc.pattern)
		engAdv, err := NewEngine(MustCompile(tc.pattern))
		if err != nil {
			t.Fatalf("%q: %v", tc.pattern, err)
		}
		minProg, err := CompileMinimal(tc.pattern)
		if err != nil {
			t.Fatalf("minimal %q: %v", tc.pattern, err)
		}
		engMin, err := NewEngine(minProg)
		if err != nil {
			t.Fatal(err)
		}
		engFast, err := NewEngine(MustCompile(tc.pattern), WithDFA())
		if err != nil {
			t.Fatalf("fast %q: %v", tc.pattern, err)
		}
		engTiny, err := NewEngine(MustCompile(tc.pattern), WithDFA(), WithDFACache(4))
		if err != nil {
			t.Fatalf("fast-tiny %q: %v", tc.pattern, err)
		}
		if m := std.FindString(tc.witness); m == "" {
			t.Fatalf("witness %q does not match %q", tc.witness, tc.pattern)
		}
		engines := map[string]*Engine{
			"advanced": engAdv, "minimal": engMin,
			"lazydfa": engFast, "lazydfa-tiny": engTiny,
		}
		for _, data := range difftestCorpus(r, tc.witness) {
			want := std.FindAllIndex(data, -1)
			for label, eng := range engines {
				ms, err := eng.FindAll(data)
				if err != nil {
					t.Fatalf("%s %q on %q: %v", label, tc.pattern, data, err)
				}
				assertSameSpans(t, label, tc.pattern, data, goFindAllSemantics(ms), want)
			}
		}
		if fs := engFast.FastStats(); fs.Probes == 0 {
			t.Fatalf("%q: lazy-DFA gate never ran: %+v", tc.pattern, fs)
		}
	}
}

// TestStreamingDifferential holds the chunked reader path to the same
// external oracle: FindReader over small chunks must reproduce Go
// regexp's spans (overlap sized over the longest match, per the
// documented blind-spot contract).
func TestStreamingDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for _, tc := range difftestTable {
		std := regexp.MustCompile(tc.pattern)
		prog := MustCompile(tc.pattern)
		for _, data := range difftestCorpus(r, tc.witness) {
			want := std.FindAllIndex(data, -1)
			maxLen := 1
			for _, w := range want {
				if l := w[1] - w[0]; l > maxLen {
					maxLen = l
				}
			}
			for _, chunk := range []int{7, 64} {
				for label, opts := range map[string][]Option{
					"stream":      {WithChunkSize(chunk), WithOverlap(maxLen + 8)},
					"stream-fast": {WithChunkSize(chunk), WithOverlap(maxLen + 8), WithDFA()},
				} {
					eng, err := NewEngine(prog, opts...)
					if err != nil {
						t.Fatal(err)
					}
					ms, err := eng.FindReader(bytes.NewReader(data))
					if err != nil {
						t.Fatalf("%s %q chunk=%d on %q: %v", label, tc.pattern, chunk, data, err)
					}
					assertSameSpans(t, label, tc.pattern, data, goFindAllSemantics(ms), want)
				}
			}
		}
	}
}

// adversarialDifftests are corpora built to stress the hybrid fast
// path where it is weakest: live DFA state sets larger than the cache
// (clear-on-full, then the bail fallback), matches straddling chunk
// boundaries of the streaming scan, and rule literals that are
// prefixes of each other (the Aho–Corasick output-merge seam).
func TestAdversarialDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(31337))

	t.Run("cache-thrash", func(t *testing.T) {
		// a[ab]{n} keeps ~2^n subsets live on an a/b stream; with a
		// 16-state cache the lazy DFA must flush, re-flush, detect
		// thrash and bail to the exact engine — with identical spans.
		for _, pat := range []string{`a[ab]{12}`, `a[ab]{14}x?`, `(a|b)*abb[ab]{8}`} {
			std := regexp.MustCompile(pat)
			data := make([]byte, 1<<15)
			for i := range data {
				data[i] = "ab"[r.Intn(2)]
			}
			for i := 13; i < len(data); i += 17 {
				data[i] = 'x'
			}
			eng, err := NewEngine(MustCompile(pat), WithDFA(), WithDFACache(16))
			if err != nil {
				t.Fatal(err)
			}
			ms, err := eng.FindAll(data)
			if err != nil {
				t.Fatalf("%q: %v", pat, err)
			}
			assertSameSpans(t, "thrash", pat, data[:64], goFindAllSemantics(ms), std.FindAllIndex(data, -1))
			fs := eng.FastStats()
			if fs.CacheFlushes == 0 {
				t.Errorf("%q: cache never flushed: %+v", pat, fs)
			}
			if fs.Bails == 0 {
				t.Errorf("%q: thrash never bailed to the slow path: %+v", pat, fs)
			}
		}
	})

	t.Run("chunk-straddle", func(t *testing.T) {
		// Matches planted exactly across every chunk boundary of a
		// small-chunk streaming scan, on the fast path.
		pat, witness := `ab[cd]{3}e`, "abcdde"
		std := regexp.MustCompile(pat)
		const chunk = 32
		data := bytes.Repeat([]byte("."), 8*chunk)
		for b := chunk; b < len(data)-len(witness); b += chunk {
			copy(data[b-len(witness)/2:], witness) // straddles offset b
		}
		want := std.FindAllIndex(data, -1)
		if len(want) < 5 {
			t.Fatalf("corpus bug: only %d planted matches", len(want))
		}
		for _, opts := range [][]Option{
			{WithChunkSize(chunk), WithOverlap(len(witness) + 2), WithDFA()},
			{WithChunkSize(chunk), WithOverlap(len(witness) + 2), WithDFA(), WithDFACache(4)},
		} {
			eng, err := NewEngine(MustCompile(pat), opts...)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := eng.FindReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			assertSameSpans(t, "straddle", pat, data[:64], goFindAllSemantics(ms), want)
		}
	})

	t.Run("prefix-literals", func(t *testing.T) {
		// Rules whose necessary literals are prefixes of each other
		// share Aho–Corasick paths; every rule must still dispatch on
		// its own hits, and results must match a prefilter-free scan.
		rules := []string{`foo[0-9]?`, `foobar`, `foobarbaz`, `barb[a-z]+`, `zzz`}
		corpus := [][]byte{
			[]byte("foobarbaz foobar foo9 barbell"),
			[]byte("xx foobarba foob zz foobarbazq"),
			[]byte("barbaz"), {},
		}
		buf := make([]byte, 4096)
		for i := range buf {
			buf[i] = "foobarz ."[r.Intn(9)]
		}
		corpus = append(corpus, buf)
		slow, err := NewRuleSet(rules, CompilerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewRuleSet(rules, CompilerOptions{}, WithDFA())
		if err != nil {
			t.Fatal(err)
		}
		for _, data := range corpus {
			want, err1 := slow.Scan(data)
			got, err2 := fast.Scan(data)
			if err1 != nil || err2 != nil {
				t.Fatalf("errs %v / %v", err1, err2)
			}
			if len(want) != len(got) {
				t.Fatalf("on %q: %d vs %d rules hit", data, len(want), len(got))
			}
			for i := range want {
				if want[i].Rule != got[i].Rule || len(want[i].Matches) != len(got[i].Matches) {
					t.Fatalf("on %q: rule-hit %d diverged: %+v vs %+v", data, i, want[i], got[i])
				}
				for j := range want[i].Matches {
					if want[i].Matches[j] != got[i].Matches[j] {
						t.Fatalf("on %q rule %d: span %d = %v vs %v",
							data, want[i].Rule, j, got[i].Matches[j], want[i].Matches[j])
					}
				}
			}
		}
	})
}
