module alveare

go 1.22
