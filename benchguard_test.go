package alveare_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// The benchmark guard holds the metrics-DISABLED hot path — the default
// configuration every user runs — to the committed baseline: adding
// observability must stay free when it is switched off. The measurement
// is wall-clock and therefore machine-specific, so the guard only runs
// when asked for explicitly:
//
//	make benchguard        # compare against testdata/bench_guard_baseline.txt
//	make benchbaseline     # re-measure and rewrite the baseline
//
// (equivalently ALVEARE_BENCHGUARD=1 / ALVEARE_BENCHGUARD=update with
// `go test -run TestBenchGuard`). Regenerate the baseline on a new
// machine or after an intentional hot-path change.

const (
	benchGuardBaselineFile = "testdata/bench_guard_baseline.txt"
	// benchGuardTolerance is the allowed regression of the disabled
	// path: 3% over the committed ns/op.
	benchGuardTolerance = 1.03
	// benchGuardRounds measurements are taken and the fastest kept, to
	// damp scheduler noise.
	benchGuardRounds = 5
)

// benchGuardMeasure returns the best-of-N ns/op of the shared hot-path
// workload (benchMetricsWorkload in bench_test.go).
func benchGuardMeasure(enabled bool) float64 {
	best := 0.0
	for i := 0; i < benchGuardRounds; i++ {
		r := testing.Benchmark(func(b *testing.B) { benchMetricsWorkload(b, enabled) })
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func TestBenchGuard(t *testing.T) {
	mode := os.Getenv("ALVEARE_BENCHGUARD")
	if mode == "" {
		t.Skip("wall-clock guard; run via `make benchguard` (ALVEARE_BENCHGUARD=1)")
	}
	disabled := benchGuardMeasure(false)

	if mode == "update" {
		line := fmt.Sprintf("disabled_ns_per_op %.0f\n", disabled)
		if err := os.WriteFile(benchGuardBaselineFile, []byte(line), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten: %s", strings.TrimSpace(line))
		return
	}

	raw, err := os.ReadFile(benchGuardBaselineFile)
	if err != nil {
		t.Fatalf("%v (run `make benchbaseline` to create it)", err)
	}
	fields := strings.Fields(string(raw))
	if len(fields) != 2 || fields[0] != "disabled_ns_per_op" {
		t.Fatalf("malformed baseline %q", string(raw))
	}
	baseline, err := strconv.ParseFloat(fields[1], 64)
	if err != nil || baseline <= 0 {
		t.Fatalf("malformed baseline value %q: %v", fields[1], err)
	}

	limit := baseline * benchGuardTolerance
	t.Logf("disabled path: %.0f ns/op (baseline %.0f, limit %.0f)", disabled, baseline, limit)
	if disabled > limit {
		t.Errorf("metrics-disabled hot path regressed: %.0f ns/op > %.0f ns/op (baseline %.0f +3%%)",
			disabled, limit, baseline)
	}

	// Informational: what turning the counters on costs. Not a gate —
	// enabled runs opt into the cost — but large jumps are worth seeing.
	enabled := benchGuardMeasure(true)
	t.Logf("enabled path: %.0f ns/op (%.1f%% over disabled)", enabled, (enabled/disabled-1)*100)
}
