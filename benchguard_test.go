package alveare_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// The benchmark guard holds the metrics-DISABLED hot path — the default
// configuration every user runs — to the committed baseline: adding
// observability must stay free when it is switched off. The measurement
// is wall-clock and therefore machine-specific, so the guard only runs
// when asked for explicitly:
//
//	make benchguard        # compare against testdata/bench_guard_baseline.txt
//	make benchbaseline     # re-measure and rewrite the baseline
//
// (equivalently ALVEARE_BENCHGUARD=1 / ALVEARE_BENCHGUARD=update with
// `go test -run TestBenchGuard`). Regenerate the baseline on a new
// machine or after an intentional hot-path change.

const (
	benchGuardBaselineFile = "testdata/bench_guard_baseline.txt"
	// benchGuardTolerance is the allowed regression of the disabled
	// path: 3% over the committed ns/op.
	benchGuardTolerance = 1.03
	// benchGuardRounds measurements are taken and the fastest kept, to
	// damp scheduler noise.
	benchGuardRounds = 5
)

// benchGuardMeasure returns the best-of-N ns/op of a guarded workload.
func benchGuardMeasure(workload func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < benchGuardRounds; i++ {
		r := testing.Benchmark(workload)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// benchGuardWorkloads are the gated hot paths, one baseline line each:
// the metrics-disabled execution core (benchMetricsWorkload), the
// hybrid fast path over low-match traffic (benchFastPathWorkload) —
// the default configuration of the scanning tools and the service —
// the admission stage's full-window table walk
// (benchApproxOverheadWorkload) — the overhead screening adds on
// high-match traffic, where it can skip nothing — so the 3% tolerance
// is the hard cap on what never-miss screening may cost — and the
// checkpointed streaming path (benchCkptWorkload with exports), the
// per-push Export() the server pays on every ack of a checkpointed
// session so the gateway can fail it over (DESIGN.md §18).
var benchGuardWorkloads = []struct {
	key      string
	workload func(b *testing.B)
}{
	{"disabled_ns_per_op", func(b *testing.B) { benchMetricsWorkload(b, false) }},
	{"fastpath_ns_per_op", benchFastPathWorkload},
	{"approx_overhead_ns_per_op", benchApproxOverheadWorkload},
	{"session_export_ns_per_op", func(b *testing.B) { benchCkptWorkload(b, true) }},
}

func TestBenchGuard(t *testing.T) {
	mode := os.Getenv("ALVEARE_BENCHGUARD")
	if mode == "" {
		t.Skip("wall-clock guard; run via `make benchguard` (ALVEARE_BENCHGUARD=1)")
	}
	measured := map[string]float64{}
	for _, w := range benchGuardWorkloads {
		measured[w.key] = benchGuardMeasure(w.workload)
	}

	if mode == "update" {
		var sb strings.Builder
		for _, w := range benchGuardWorkloads {
			fmt.Fprintf(&sb, "%s %.0f\n", w.key, measured[w.key])
		}
		if err := os.WriteFile(benchGuardBaselineFile, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten:\n%s", strings.TrimSpace(sb.String()))
		return
	}

	raw, err := os.ReadFile(benchGuardBaselineFile)
	if err != nil {
		t.Fatalf("%v (run `make benchbaseline` to create it)", err)
	}
	fields := strings.Fields(string(raw))
	if len(fields) == 0 || len(fields)%2 != 0 {
		t.Fatalf("malformed baseline %q", string(raw))
	}
	baselines := map[string]float64{}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil || v <= 0 {
			t.Fatalf("malformed baseline value %q for %q: %v", fields[i+1], fields[i], err)
		}
		baselines[fields[i]] = v
	}

	for _, w := range benchGuardWorkloads {
		baseline, ok := baselines[w.key]
		if !ok {
			t.Errorf("baseline missing %q (run `make benchbaseline` to add it)", w.key)
			continue
		}
		limit := baseline * benchGuardTolerance
		t.Logf("%s: %.0f ns/op (baseline %.0f, limit %.0f)", w.key, measured[w.key], baseline, limit)
		if measured[w.key] > limit {
			t.Errorf("%s regressed: %.0f ns/op > %.0f ns/op (baseline %.0f +3%%)",
				w.key, measured[w.key], limit, baseline)
		}
	}

	// The checkpoint piggyback claim (DESIGN.md §18: <= 3%): the same
	// stream scan without the per-push Export() is measured here and
	// now, so this gate is relative and machine-independent — it holds
	// even when the absolute baseline above was recorded on another
	// box. The two sides alternate round by round (best of each kept)
	// so slow machine-state drift, which hits both alike, cancels out
	// instead of masquerading as overhead.
	plainStream, exportStream := 0.0, 0.0
	for i := 0; i < benchGuardRounds; i++ {
		e := testing.Benchmark(func(b *testing.B) { benchCkptWorkload(b, true) })
		p := testing.Benchmark(func(b *testing.B) { benchCkptWorkload(b, false) })
		if ens := float64(e.T.Nanoseconds()) / float64(e.N); exportStream == 0 || ens < exportStream {
			exportStream = ens
		}
		if pns := float64(p.T.Nanoseconds()) / float64(p.N); plainStream == 0 || pns < plainStream {
			plainStream = pns
		}
	}
	t.Logf("session export piggyback: %.0f ns/op vs %.0f plain (%+.1f%%)",
		exportStream, plainStream, (exportStream/plainStream-1)*100)
	if exportStream > plainStream*benchGuardTolerance {
		t.Errorf("checkpoint piggyback costs %.1f%% over the plain stream, cap is 3%%",
			(exportStream/plainStream-1)*100)
	}

	// Informational: what turning the counters on costs. Not a gate —
	// enabled runs opt into the cost — but large jumps are worth seeing.
	enabled := benchGuardMeasure(func(b *testing.B) { benchMetricsWorkload(b, true) })
	t.Logf("metrics-enabled path: %.0f ns/op (%.1f%% over disabled)",
		enabled, (enabled/measured["disabled_ns_per_op"]-1)*100)
}
