package alveare

import (
	"bytes"
	"testing"
)

// FuzzStreamChunking fuzzes (pattern, input, chunkSize) and
// cross-checks the chunked reader scan against the one-shot FindAll.
// The overlap is sized from the one-shot result's longest match, which
// is exactly the contract under which the two disciplines are
// byte-identical — so any divergence the fuzzer finds is a real bug in
// the carry-over logic, not the documented blind spot.
func FuzzStreamChunking(f *testing.F) {
	f.Add("a+b", "aabab aab", 7)
	f.Add("[a-f]{2,4}", "xxfadexxbeadxx", 3)
	f.Add("(cat|dog)+", "catdogcat catcat", 64)
	f.Add("[^ ]+", "split into many words here", 5)
	f.Add("a*", "bbaabbb", 1)
	f.Add("q(w|e)*?r", "qwer qweer qr", 11)
	f.Add("x{2,}y", "xxxxy xy xxy", 2)
	f.Add("", "empty pattern input", 8)
	f.Fuzz(func(t *testing.T, pat, input string, chunkSize int) {
		if len(pat) > 40 || len(input) > 1<<12 {
			t.Skip()
		}
		prog, err := Compile(pat)
		if err != nil {
			t.Skip() // outside the supported subset
		}
		oneShot, err := NewEngine(prog)
		if err != nil {
			t.Skip()
		}
		data := []byte(input)
		want, err := oneShot.FindAll(data)
		if err != nil {
			t.Skip() // pathological execution (stack/cycle budget)
		}
		maxLen := 1
		for _, m := range want {
			if l := m.End - m.Start; l > maxLen {
				maxLen = l
			}
		}
		chunk := chunkSize
		if chunk < 1 {
			chunk = 1 - chunk
		}
		chunk = 1 + chunk%4096
		eng, err := NewEngine(prog, WithChunkSize(chunk), WithOverlap(maxLen))
		if err != nil {
			t.Fatalf("engine for %q: %v", pat, err)
		}
		got, err := eng.FindReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%q chunk=%d on %q: streaming failed where one-shot succeeded: %v", pat, chunk, input, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q chunk=%d overlap=%d on %q:\nstream  %v\noneshot %v", pat, chunk, maxLen, input, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q chunk=%d overlap=%d on %q: match %d %v vs %v", pat, chunk, maxLen, input, i, got[i], want[i])
			}
		}
	})
}
