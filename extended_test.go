package alveare

import (
	"regexp"
	"strings"
	"testing"
)

// TestCaseInsensitive exercises the case-folding compiler option across
// literals, classes and alternations, differentially against stdlib's
// (?i) mode.
func TestCaseInsensitive(t *testing.T) {
	cases := []struct{ re string }{
		{"error"},
		{"[a-f]+x"},
		{"(get|post) /"},
		{"Content-Type"},
		{"a1b2C3"},
		{"[^a-z]x"},
	}
	inputs := []string{
		"ERROR here", "error here", "ErRoR", "ABCX", "abcfx", "GET /x",
		"post /y", "content-type", "CONTENT-TYPE", "A1B2c3", "noise", "9X", "zX",
	}
	for _, c := range cases {
		std := regexp.MustCompile("(?i)" + c.re)
		prog, err := CompileWith(c.re, CompilerOptions{CaseInsensitive: true})
		if err != nil {
			t.Fatalf("%q: %v", c.re, err)
		}
		eng, err := NewEngine(prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			want := std.FindStringIndex(in)
			m, ok, err := eng.Find([]byte(in))
			if err != nil {
				t.Fatalf("%q on %q: %v", c.re, in, err)
			}
			if (want == nil) != !ok {
				t.Errorf("(?i)%q on %q: ok=%v stdlib=%v", c.re, in, ok, want)
				continue
			}
			if ok && (m.Start != want[0] || m.End != want[1]) {
				t.Errorf("(?i)%q on %q: [%d,%d) stdlib %v", c.re, in, m.Start, m.End, want)
			}
		}
	}

	// Sensitivity check: the same pattern without the flag must not
	// match the upper-cased input.
	prog := MustCompile("error")
	eng, _ := NewEngine(prog)
	if ok, _ := eng.Match([]byte("ERROR")); ok {
		t.Error("case-sensitive compile matched folded input")
	}
}

func TestRuleSet(t *testing.T) {
	rules := []string{
		`GET [^ ]*\.php`,
		`passwd`,
		`\x90{4,}`,
	}
	rs, err := NewRuleSet(rules, CompilerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if rs.Pattern(1) != "passwd" {
		t.Errorf("Pattern(1) = %q", rs.Pattern(1))
	}

	data := []byte("GET /index.php HTTP/1.1 then /etc/passwd and \x90\x90\x90\x90\x90 sled")
	hits, err := rs.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %+v", hits)
	}
	for _, h := range hits {
		if len(h.Matches) == 0 {
			t.Errorf("rule %d reported without matches", h.Rule)
		}
	}

	rule, ok, err := rs.FirstMatch([]byte("cat /etc/passwd"))
	if err != nil || !ok || rule != 1 {
		t.Errorf("FirstMatch = %d/%v/%v", rule, ok, err)
	}
	if _, ok, _ := rs.FirstMatch([]byte("clean traffic")); ok {
		t.Error("FirstMatch on clean data")
	}
	if rs.TotalCycles() == 0 {
		t.Error("no cycles accumulated")
	}
	if rs.Engine(0) == nil {
		t.Error("Engine accessor nil")
	}

	if _, err := NewRuleSet([]string{"ok", "("}, CompilerOptions{}); err == nil {
		t.Error("bad rule accepted")
	} else if !strings.Contains(err.Error(), "rule 1") {
		t.Errorf("error does not identify the offending rule: %v", err)
	}
}

// TestWithPrefilterPublicAPI: the prefilter option is reachable from
// the public API and never changes results.
func TestWithPrefilterPublicAPI(t *testing.T) {
	prog := MustCompile("(GET|POST) /admin")
	plain, err := NewEngine(prog)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(prog, WithPrefilter())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("noise ", 2000) + "POST /admin HTTP/1.1")
	m1, ok1, err1 := plain.Find(data)
	m2, ok2, err2 := fast.Find(data)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !ok1 || ok1 != ok2 || m1 != m2 {
		t.Fatalf("results differ: %v/%v vs %v/%v", m1, ok1, m2, ok2)
	}
	if fast.Stats().Cycles >= plain.Stats().Cycles {
		t.Errorf("prefilter did not save cycles: %d vs %d", fast.Stats().Cycles, plain.Stats().Cycles)
	}
}

// TestRuleSetMultiCore: rule sets compose with the scale-out option.
func TestRuleSetMultiCore(t *testing.T) {
	rs, err := NewRuleSet([]string{"needle", "n[aeiou]+dle"}, CompilerOptions{}, WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("hay ", 10000) + "needle")
	hits, err := rs.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Errorf("hits = %+v", hits)
	}
}
