package alveare_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTools compiles the command-line tools once per test binary.
var buildTools = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "alveare-cli")
	if err != nil {
		return nil, err
	}
	tools := map[string]string{}
	for _, name := range []string{"alvearec", "alvearerun", "alvearebench", "alvearegen", "alvearescan", "alvearesrv", "alveareload"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			return nil, &buildError{name, string(out), err}
		}
		tools[name] = bin
	}
	return tools, nil
})

type buildError struct {
	tool, out string
	err       error
}

func (e *buildError) Error() string { return e.tool + ": " + e.err.Error() + "\n" + e.out }

func tool(t *testing.T, name string) string {
	t.Helper()
	tools, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	return tools[name]
}

func run(t *testing.T, name string, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(tool(t, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out), code
}

func TestCLICompileDisassemble(t *testing.T) {
	out, code := run(t, "alvearec", "", "([^A-Z])+")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"NOT RANGE [A-Z] + )+G", "EOR", "2 excluding EoR"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// Round trip through a binary file.
	bin := filepath.Join(t.TempDir(), "p.alv")
	if _, code := run(t, "alvearec", "", "-o", bin, "([^A-Z])+"); code != 0 {
		t.Fatal("compile -o failed")
	}
	out, code = run(t, "alvearec", "", "-d", bin)
	if code != 0 || !strings.Contains(out, "NOT RANGE") {
		t.Errorf("disassemble: exit %d\n%s", code, out)
	}
}

func TestCLIAssemble(t *testing.T) {
	src := filepath.Join(t.TempDir(), "l.s")
	listing := "; regex: hand\n( {1,inf} fwd=2\nAND \"ab\" + )+G\nEOR\n"
	if err := os.WriteFile(src, []byte(listing), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "alvearec", "", "-asm", src)
	if code != 0 || !strings.Contains(out, `AND "ab" + )+G`) {
		t.Errorf("assemble: exit %d\n%s", code, out)
	}
	// Reject malformed listings.
	bad := filepath.Join(t.TempDir(), "bad.s")
	os.WriteFile(bad, []byte("FROB\nEOR\n"), 0o644)
	if _, code := run(t, "alvearec", "", "-asm", bad); code == 0 {
		t.Error("malformed listing accepted")
	}
}

func TestCLIOpTableCountDot(t *testing.T) {
	out, code := run(t, "alvearec", "", "-optable")
	if code != 0 || !strings.Contains(out, "QUANT L") || !strings.Contains(out, "End of RE") {
		t.Errorf("optable: exit %d\n%s", code, out)
	}
	out, code = run(t, "alvearec", "", "-count", ".{3,6}")
	if code != 0 || !strings.Contains(out, "advanced: 2 ops") {
		t.Errorf("count: exit %d\n%s", code, out)
	}
	out, code = run(t, "alvearec", "", "-dot", "a+b")
	if code != 0 || !strings.Contains(out, "digraph") {
		t.Errorf("dot: exit %d\n%s", code, out)
	}
	// Bad pattern -> non-zero exit.
	if _, code := run(t, "alvearec", "", "("); code == 0 {
		t.Error("bad pattern accepted")
	}
}

func TestCLIRun(t *testing.T) {
	out, code := run(t, "alvearerun", "one ERROR two\n", "ERROR", "-")
	if code != 0 || !strings.Contains(out, "[4,9)") {
		t.Errorf("run: exit %d\n%s", code, out)
	}
	// No match -> exit 1.
	if _, code := run(t, "alvearerun", "clean\n", "-q", "ERROR", "-"); code != 1 {
		t.Errorf("no-match exit = %d, want 1", code)
	}
	// Stats and multi-core all-matches mode.
	out, code = run(t, "alvearerun", "a b a b a\n", "-all", "-stats", "-cores", "2", "a", "-")
	if code != 0 || !strings.Contains(out, "matches=3") {
		t.Errorf("all+stats: exit %d\n%s", code, out)
	}
	// File input.
	f := filepath.Join(t.TempDir(), "in.txt")
	os.WriteFile(f, []byte("needle"), 0o644)
	out, code = run(t, "alvearerun", "", "needle", f)
	if code != 0 || !strings.Contains(out, "[0,6)") {
		t.Errorf("file input: exit %d\n%s", code, out)
	}
}

// TestCLIRunStreams drives the default single-core path — now the
// chunked reader scan — over an input spanning many windows.
func TestCLIRunStreams(t *testing.T) {
	f := filepath.Join(t.TempDir(), "big.txt")
	data := strings.Repeat("x", 5000) + "needle" + strings.Repeat("y", 5000)
	os.WriteFile(f, []byte(data), 0o644)
	out, code := run(t, "alvearerun", "", "-chunk", "512", "-overlap", "64", "needle", f)
	if code != 0 || !strings.Contains(out, "[5000,5006)") {
		t.Errorf("streamed first match: exit %d\n%s", code, out)
	}
	out, code = run(t, "alvearerun", "", "-all", "-stats", "-chunk", "256", "needle|x{10}", f)
	if code != 0 || !strings.Contains(out, "[5000,5006)") || !strings.Contains(out, "matches=") {
		t.Errorf("streamed -all: exit %d\n%s", code, out)
	}
}

func TestCLIScan(t *testing.T) {
	dir := t.TempDir()
	rulesFile := filepath.Join(dir, "rules.txt")
	os.WriteFile(rulesFile, []byte("# DPI ruleset\nneedle\n\n[0-9]{3}-[0-9]{4}\nnosuchthing\n"), 0o644)
	input := "call 555-1234 about the needle now"
	out, code := run(t, "alvearescan", input, "-rules", rulesFile, "-workers", "4", "-stats", "-")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"rule 0 [24,30)", "rule 1 [5,13)", "hits=2", "cycles="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// File input across chunk boundaries.
	dataFile := filepath.Join(dir, "cap.bin")
	os.WriteFile(dataFile, []byte(strings.Repeat("z", 3000)+"555-9876"+strings.Repeat("z", 3000)), 0o644)
	out, code = run(t, "alvearescan", "", "-rules", rulesFile, "-chunk", "512", dataFile)
	if code != 0 || !strings.Contains(out, "rule 1 [3000,3008)") {
		t.Errorf("chunked file scan: exit %d\n%s", code, out)
	}
	// No rule matches -> exit 1.
	if _, code := run(t, "alvearescan", "clean traffic\n", "-q", "-rules", rulesFile, "-"); code != 1 {
		t.Errorf("no-match exit = %d, want 1", code)
	}
	// Missing rules flag -> usage error.
	if _, code := run(t, "alvearescan", "x", "-"); code != 2 {
		t.Errorf("missing -rules exit = %d, want 2", code)
	}
}

func TestCLIRunTraceAndVCD(t *testing.T) {
	vcd := filepath.Join(t.TempDir(), "w.vcd")
	out, code := run(t, "alvearerun", "xxabc\n", "-trace", "-vcd", vcd, "(a|ab)c", "-")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "rollback") {
		t.Errorf("trace missing rollback events:\n%s", out)
	}
	wave, err := os.ReadFile(vcd)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wave), "$enddefinitions $end") {
		t.Error("VCD file malformed")
	}
}

func TestCLIGen(t *testing.T) {
	dir := t.TempDir()
	out, code := run(t, "alvearegen", "", "-suite", "snort", "-o", dir, "-patterns", "5", "-size", "4096")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	rules, err := os.ReadFile(filepath.Join(dir, "snort.rules"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(rules), "\n"); n != 5 {
		t.Errorf("rules lines = %d, want 5", n)
	}
	data, err := os.ReadFile(filepath.Join(dir, "snort.data"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4096 {
		t.Errorf("data size = %d", len(data))
	}
	// The exported rules must run against the exported data.
	firstRule := strings.SplitN(string(rules), "\n", 2)[0]
	dataFile := filepath.Join(dir, "snort.data")
	if out, code := run(t, "alvearerun", "", "-q", firstRule, dataFile); code > 1 {
		t.Errorf("alvearerun on exported workload: exit %d\n%s", code, out)
	}
	if _, code := run(t, "alvearegen", "", "-suite", "bogus", "-o", dir); code == 0 {
		t.Error("unknown suite accepted")
	}
}

func TestCLIBenchSmoke(t *testing.T) {
	out, code := run(t, "alvearebench", "", "-exp", "table2")
	if code != 0 || !strings.Contains(out, "589.00x") {
		t.Errorf("table2: exit %d\n%s", code, out)
	}
	out, code = run(t, "alvearebench", "",
		"-exp", "fig4", "-patterns", "3", "-size", "8192", "-cores", "2", "-v=false")
	if code != 0 || !strings.Contains(out, "ALVEARE-2") {
		t.Errorf("fig4: exit %d\n%s", code, out)
	}
}
