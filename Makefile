GO ?= go

.PHONY: build test vet race check fuzz fuzzsmoke leakcheck benchguard benchbaseline bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: the concurrency gate — the concurrent RuleSet scanner and the
## streaming reader tests all run under the race detector.
race:
	$(GO) test -race ./...

## check: the full local CI gate — vet, everything under the race
## detector (including the goroutine-leak assertions in the fault
## matrix), then a short fuzz pass over both differential fuzzers.
check: vet race leakcheck fuzzsmoke

## fuzz: cross-check the chunked reader scan against one-shot FindAll.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStreamChunking -fuzztime 30s .

## fuzzsmoke: 30-second smoke of each fuzzer — the chunking
## differential and the fault-injection offset/prefix invariants.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz FuzzStreamChunking -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzFaultInjection -fuzztime 30s .

## leakcheck: the guardrail tests carry goroutine-leak assertions
## (leakCheck in faultmatrix_test.go); run just those under -race so a
## stuck worker or an undrained pool fails loudly.
leakcheck:
	$(GO) test -race -run 'TestFaultMatrix|TestCancelMidScan|TestRuleSetEarlyStopDrains|TestRuleSetFaultIsolation' .

## bench: the enabled-vs-disabled observability benchmarks (plus the
## rest of the benchmark suite lives under `go test -bench=.`).
bench:
	$(GO) test -run '^$$' -bench BenchmarkMetricsOverhead -benchmem .

## benchguard: fail if the metrics-DISABLED hot path regresses more
## than 3% against the committed wall-clock baseline
## (testdata/bench_guard_baseline.txt). Machine-specific by nature —
## regenerate the baseline with `make benchbaseline` on a new machine
## or after an intentional hot-path change.
benchguard:
	ALVEARE_BENCHGUARD=1 $(GO) test -run TestBenchGuard -v .

## benchbaseline: re-measure the disabled hot path and rewrite the
## committed baseline benchguard compares against.
benchbaseline:
	ALVEARE_BENCHGUARD=update $(GO) test -run TestBenchGuard -v .
