GO ?= go

.PHONY: build test vet race check chaostest gwchaostest difftest fuzz fuzzsmoke leakcheck benchguard benchbaseline bench serve loadtest

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: the concurrency gate — the concurrent RuleSet scanner and the
## streaming reader tests all run under the race detector.
race:
	$(GO) test -race ./...

## check: the full local CI gate — vet, everything under the race
## detector (including the goroutine-leak assertions in the fault
## matrix), the differential battery, the seeded chaos suite, then a
## short fuzz pass over the differential fuzzers.
check: vet race difftest leakcheck chaostest gwchaostest fuzzsmoke

## difftest: the three-way differential battery under -race — the
## lazy-DFA fast path, the exact slow path and Go's regexp (plus the
## byte-level Pike-VM/backtracker oracles) must agree span-for-span on
## the seeded corpora, including the adversarial cache-thrash /
## chunk-straddle / prefix-literal families.
difftest:
	$(GO) test -race -count=1 -run 'Differential' .

## chaostest: the resilience gate — the seeded chaos e2e (real servers
## behind deterministic netchaos proxies, a failover Pool completing
## 100% of idempotent traffic through resets/truncation/a dead
## backend, breaker open-and-recover) plus the client, pool and
## netchaos unit suites, all under -race. Every random decision is
## seeded; failing runs print the seed to replay.
chaostest:
	$(GO) test -race -count=1 ./internal/faultinject/netchaos/ ./internal/server/client/
	$(GO) test -race -count=1 -run 'TestChaos|TestServerFastPathChaos|TestServerReloadSwapsPrefilter|TestServerDrainWithMidFrameResets|TestWriteTimeout' ./internal/server/

## gwchaostest: the fleet resilience gate — the gateway unit suites
## (consistent-hash ring, per-tenant quotas, weighted fair queue,
## scatter-gather, TENANT protocol goldens) plus the kill-a-shard
## chaos e2e (3 shards behind deterministic netchaos proxies, one
## severed mid-traffic: every admitted request completes byte-identical
## or SHEDs, the ring routes around the open breaker, revival closes it
## again, no goroutine leaks), and the breaker half-open probe-slot
## race battery — all under -race.
gwchaostest:
	$(GO) test -race -count=1 ./internal/gateway/
	$(GO) test -race -count=1 -run 'TestGoldenTenantFrames|TestTenant|TestDecodeTenant|TestEncodeTenant|TestMatchesPartial|TestDecodeMatchesPartial|TestShedReason' ./internal/server/
	$(GO) test -race -count=1 -run 'TestBreaker|TestBackends' ./internal/server/client/

## fuzz: cross-check the chunked reader scan against one-shot FindAll.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStreamChunking -fuzztime 30s .

## fuzzsmoke: 30-second smoke of each fuzzer — the chunking
## differential, the fault-injection offset/prefix invariants, the
## lazy-DFA fast-vs-slow cross-check, the service protocol
## (SCAN-BATCH item isolation, session framing vs one-shot scans plus
## garbage-frame robustness), the checkpoint handoff (SESSION-RESTORE
## of valid, corrupted and arbitrary checkpoints — no dup/lost match,
## no desync), and the approx admission never-miss property (filter
## soundness plus screened-vs-unscreened identity).
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz FuzzStreamChunking -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzFaultInjection -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzLazyDFA -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzScanBatch -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzSessionFraming -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzSessionRestore -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzApproxAdmission -fuzztime 30s .

## leakcheck: the guardrail tests carry goroutine-leak assertions
## (leakCheck in faultmatrix_test.go and the scan-service drain tests);
## run just those under -race so a stuck worker, an undrained pool or a
## leaked server goroutine fails loudly.
leakcheck:
	$(GO) test -race -run 'TestFaultMatrix|TestFastPathFaultSeam|TestCancelMidScan|TestRuleSetEarlyStopDrains|TestRuleSetFaultIsolation' .
	$(GO) test -race -run 'TestServer' ./internal/server/...

## serve: run the scan service on the Snort-style example rules
## (RULES/ADDR overridable: make serve RULES=my.rules ADDR=:9000).
RULES ?= examples/server.rules
ADDR ?= :7171
serve:
	$(GO) run ./cmd/alvearesrv -rules $(RULES) -addr $(ADDR)

## loadtest: drive a running scan service with the closed-loop load
## generator (LOAD_ADDR/LOAD_FLAGS overridable).
LOAD_ADDR ?= 127.0.0.1:7171
LOAD_FLAGS ?= -conns 4 -inflight 4 -duration 10s
loadtest:
	$(GO) run ./cmd/alveareload -addr $(LOAD_ADDR) $(LOAD_FLAGS)

## bench: the enabled-vs-disabled observability benchmarks (plus the
## rest of the benchmark suite lives under `go test -bench=.`).
bench:
	$(GO) test -run '^$$' -bench BenchmarkMetricsOverhead -benchmem .

## benchguard: fail if the metrics-DISABLED hot path regresses more
## than 3% against the committed wall-clock baseline
## (testdata/bench_guard_baseline.txt). Machine-specific by nature —
## regenerate the baseline with `make benchbaseline` on a new machine
## or after an intentional hot-path change.
benchguard:
	ALVEARE_BENCHGUARD=1 $(GO) test -run TestBenchGuard -v .

## benchbaseline: re-measure the disabled hot path and rewrite the
## committed baseline benchguard compares against.
benchbaseline:
	ALVEARE_BENCHGUARD=update $(GO) test -run TestBenchGuard -v .
