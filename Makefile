GO ?= go

.PHONY: build test vet race check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: the concurrency gate — the concurrent RuleSet scanner and the
## streaming reader tests all run under the race detector.
race:
	$(GO) test -race ./...

## check: the full local CI gate.
check: vet race

## fuzz: cross-check the chunked reader scan against one-shot FindAll.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStreamChunking -fuzztime 30s .
