GO ?= go

.PHONY: build test vet race check fuzz fuzzsmoke leakcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

## race: the concurrency gate — the concurrent RuleSet scanner and the
## streaming reader tests all run under the race detector.
race:
	$(GO) test -race ./...

## check: the full local CI gate — vet, everything under the race
## detector (including the goroutine-leak assertions in the fault
## matrix), then a short fuzz pass over both differential fuzzers.
check: vet race leakcheck fuzzsmoke

## fuzz: cross-check the chunked reader scan against one-shot FindAll.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStreamChunking -fuzztime 30s .

## fuzzsmoke: 30-second smoke of each fuzzer — the chunking
## differential and the fault-injection offset/prefix invariants.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz FuzzStreamChunking -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzFaultInjection -fuzztime 30s .

## leakcheck: the guardrail tests carry goroutine-leak assertions
## (leakCheck in faultmatrix_test.go); run just those under -race so a
## stuck worker or an undrained pool fails loudly.
leakcheck:
	$(GO) test -race -run 'TestFaultMatrix|TestCancelMidScan|TestRuleSetEarlyStopDrains|TestRuleSetFaultIsolation' .
