package alveare_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCLIServeAndLoad drives the scan service end to end at the
// process level: alvearesrv comes up on an ephemeral port, alveareload
// hammers it and must report throughput plus both latency views, and
// SIGTERM drains the server to a clean exit.
func TestCLIServeAndLoad(t *testing.T) {
	rules := filepath.Join(t.TempDir(), "r.rules")
	if err := os.WriteFile(rules, []byte("# demo\n[a-z]{4}\nneedle\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(tool(t, "alvearesrv"), "-rules", rules, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The startup line carries the resolved ephemeral address.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		srv.Process.Kill()
		t.Fatalf("no listening line from alvearesrv (scan err %v)", sc.Err())
	}

	out, code := run(t, "alveareload", "",
		"-addr", addr, "-conns", "2", "-inflight", "2", "-duration", "300ms", "-size", "512")
	if code != 0 {
		t.Fatalf("alveareload exit %d:\n%s", code, out)
	}
	for _, want := range []string{"requests=", "throughput", "client latency", "server latency", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("load report missing %q:\n%s", want, out)
		}
	}

	// SIGTERM must drain to a clean exit, not a kill.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("alvearesrv after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		srv.Process.Kill()
		t.Fatal("alvearesrv did not drain after SIGTERM")
	}
}

// startSrvProc launches an alvearesrv on an ephemeral port and returns
// its resolved address; cleanup SIGTERMs it and waits for the drain.
func startSrvProc(t *testing.T, rules string) string {
	t.Helper()
	srv := exec.Command(tool(t, "alvearesrv"), "-rules", rules, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { srv.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			srv.Process.Kill()
			t.Error("alvearesrv did not drain after SIGTERM")
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			return strings.Fields(line[i+len("listening on "):])[0]
		}
	}
	t.Fatalf("no listening line from alvearesrv (scan err %v)", sc.Err())
	return ""
}

// TestCLILoadPoolChaos drives the resilience path at the process
// level: two servers, a failover pool with a retry budget, and an
// in-process chaos proxy adding seeded latency in front of both. The
// run must complete cleanly and the report must carry the full
// outcome split.
func TestCLILoadPoolChaos(t *testing.T) {
	rules := filepath.Join(t.TempDir(), "r.rules")
	if err := os.WriteFile(rules, []byte("[a-z]{4}\nneedle\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	addrA := startSrvProc(t, rules)
	addrB := startSrvProc(t, rules)

	out, code := run(t, "alveareload", "",
		"-addrs", addrA+","+addrB,
		"-retries", "4", "-backoff", "1ms", "-backoff-max", "10ms",
		"-conns", "2", "-inflight", "2", "-duration", "300ms", "-size", "512",
		"-chaos", "latency=200us,jitter=300us;clean", "-chaos-seed", "7")
	if code != 0 {
		t.Fatalf("alveareload exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"chaos scenarios", "seed=7",
		"requests=", "retry_exhausted=", "transport=", "server_errors=",
		"resilience retries=", "failovers=",
		"throughput", "client latency", "server latency", "histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pool/chaos load report missing %q:\n%s", want, out)
		}
	}
}
