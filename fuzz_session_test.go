// Fuzzers for the batched and streaming service protocol, both run as
// 30-second smokes by `make fuzzsmoke`:
//
//   - FuzzScanBatch: arbitrary payloads split into arbitrary item
//     sizes; every SCAN-BATCH item's matches must equal a local
//     one-shot scan of that item.
//   - FuzzSessionFraming: arbitrary payloads pushed through a session
//     in arbitrary frame splits must reproduce the one-shot scan
//     (the overlap is opened wider than the payload, so no blind
//     spot applies); and raw garbage bodies on SESSION-DATA /
//     SESSION-CLOSE frames must come back as clean typed errors
//     without desyncing or killing the connection.
//
// Both share one real TCP server per fuzz target, torn down with it;
// iterations are sequential, so one client and one raw connection
// serve the whole run.
package alveare_test

import (
	"context"
	"net"
	"testing"

	"alveare/internal/core"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// fuzzSessionOverlap is opened wider than any accepted fuzz payload,
// so the one-shot scan is a valid oracle for every chunking.
const fuzzSessionOverlap = 4096

// fuzzMaxData caps fuzz payloads below the session overlap.
const fuzzMaxData = 2048

// startFuzzService boots the shared server plus a client, a raw
// connection and the local oracle rule set for one fuzz target.
func startFuzzService(f *testing.F) (*client.Client, net.Conn, *core.RuleSet) {
	f.Helper()
	srv, err := server.New(server.Config{Rules: diffSessRules})
	if err != nil {
		f.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	f.Cleanup(func() { srv.Close() })
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		f.Fatalf("dial: %v", err)
	}
	f.Cleanup(func() { c.Close() })
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		f.Fatalf("raw dial: %v", err)
	}
	f.Cleanup(func() { raw.Close() })
	return c, raw, diffLocalRuleSet(f, 0)
}

// FuzzScanBatch cross-checks SCAN-BATCH against per-item one-shot
// scans for arbitrary payloads and arbitrary item splits.
func FuzzScanBatch(f *testing.F) {
	c, _, rs := startFuzzService(f)
	f.Add([]byte("abcneedlex12y GET /a/b aabbaaab"), uint16(5))
	f.Add([]byte("abbbbbbbbbbbbbbbbc"), uint16(1))
	f.Add([]byte(""), uint16(40))
	f.Fuzz(func(t *testing.T, data []byte, split uint16) {
		if len(data) > 2*fuzzMaxData {
			t.Skip("oversized")
		}
		size := 1 + int(split)%127
		var items [][]byte
		for off := 0; off < len(data); off += size {
			end := off + size
			if end > len(data) {
				end = len(data)
			}
			items = append(items, data[off:end])
		}
		items = append(items, nil) // always one empty item
		res, err := c.ScanBatch(items)
		if err != nil {
			t.Fatalf("ScanBatch(%d items): %v", len(items), err)
		}
		if len(res) != len(items) {
			t.Fatalf("batch answered %d items for %d payloads", len(res), len(items))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("item %d (%d bytes) failed: %v", i, len(items[i]), r.Err)
			}
			want := diffLocalOneShot(t, rs, items[i])
			got := append([]server.RuleMatch(nil), r.Matches...)
			sortRuleMatches(got)
			if !diffMatchesEqual(got, want) {
				t.Fatalf("item %d (%d bytes): batch got %d matches, one-shot wants %d",
					i, len(items[i]), len(got), len(want))
			}
		}
	})
}

// FuzzSessionFraming cross-checks a session's matches against the
// one-shot scan for arbitrary frame splits, and throws garbage bodies
// at the session opcodes expecting clean errors.
func FuzzSessionFraming(f *testing.F) {
	c, raw, rs := startFuzzService(f)
	f.Add([]byte("abbbcneedle GET /a/b"), uint16(3), []byte{})
	f.Add([]byte("aaabx12y"), uint16(96), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte(""), uint16(0), []byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte, chunkSeed uint16, garbage []byte) {
		if len(data) > fuzzMaxData || len(garbage) > 64 {
			t.Skip("oversized")
		}

		// Garbage session frames: too-short bodies and made-up ids must
		// answer ERROR on the same frame id and leave the connection
		// usable. The raw connection owns no sessions, so even a body
		// that parses as a valid id is unknown to it.
		for _, op := range []byte{server.OpSessionData, server.OpSessionClose} {
			if err := server.WriteFrame(raw, server.Frame{Op: op, ID: 77, Body: garbage}); err != nil {
				t.Fatalf("write garbage %s: %v", server.OpName(op), err)
			}
			rf, err := server.ReadFrame(raw, server.DefaultMaxFrame)
			if err != nil {
				t.Fatalf("read reply to garbage %s: %v", server.OpName(op), err)
			}
			if rf.Op != server.OpError || rf.ID != 77 {
				t.Fatalf("garbage %s answered op=0x%02x id=%d, want ERROR id=77",
					server.OpName(op), rf.Op, rf.ID)
			}
			if _, _, err := server.DecodeError(rf.Body); err != nil {
				t.Fatalf("garbage %s: malformed ERROR body: %v", server.OpName(op), err)
			}
		}

		// Framing differential: any chunking must equal the one-shot
		// scan, because the overlap exceeds the payload.
		want := diffLocalOneShot(t, rs, data)
		sess, err := c.OpenSession(fuzzSessionOverlap)
		if err != nil {
			t.Fatalf("OpenSession: %v", err)
		}
		chunk := 1 + int(chunkSeed)%97
		var got []server.RuleMatch
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			ms, _, err := sess.Write(data[off:end])
			if err != nil {
				t.Fatalf("Write(off=%d): %v", off, err)
			}
			got = append(got, ms...)
		}
		ms, consumed, err := sess.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		got = append(got, ms...)
		if consumed != uint64(len(data)) {
			t.Fatalf("consumed %d bytes, pushed %d", consumed, len(data))
		}
		sortRuleMatches(got)
		if !diffMatchesEqual(got, want) {
			t.Fatalf("chunk=%d: session got %d matches, one-shot wants %d", chunk, len(got), len(want))
		}
	})
}

// FuzzSessionRestore fuzzes the checkpoint handoff from both sides.
// The valid side: push an arbitrary payload into a checkpointed
// session, cut it at an arbitrary frame boundary, SESSION-RESTORE the
// piggybacked checkpoint and finish the stream — the combined
// transcript must equal the one-shot scan (the overlap exceeds the
// payload), no match duplicated by the handoff, none lost. The garbage
// side: raw SESSION-RESTORE bodies — arbitrary bytes and single-byte
// corruptions of a genuine checkpoint — must answer either a clean
// SESSION-OK (a corruption that still decodes is a sound session,
// closed and discarded) or a parseable ERROR on the same frame id,
// never a desync, panic or half-created session.
func FuzzSessionRestore(f *testing.F) {
	c, raw, rs := startFuzzService(f)
	f.Add([]byte("abbbcneedle GET /a/b x12y"), uint16(3), []byte{})
	f.Add([]byte("aaabaaab"), uint16(213), []byte{1, 0, 0, 0, 16})
	f.Add([]byte(""), uint16(0), []byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte, seed uint16, garbage []byte) {
		if len(data) > fuzzMaxData || len(garbage) > 256 {
			t.Skip("oversized")
		}

		// Valid handoff at an arbitrary frame boundary.
		want := diffLocalOneShot(t, rs, data)
		sessA, err := c.OpenSessionCheckpointCtx(context.Background(), fuzzSessionOverlap)
		if err != nil {
			t.Fatalf("OpenSessionCheckpointCtx: %v", err)
		}
		chunk := 1 + int(seed)%61
		nChunks := (len(data) + chunk - 1) / chunk
		cut := chunk * (int(seed/61) % (nChunks + 1))
		if cut > len(data) {
			cut = len(data)
		}
		var got []server.RuleMatch
		for off := 0; off < cut; off += chunk {
			end := off + chunk
			if end > cut {
				end = cut
			}
			ms, _, werr := sessA.WriteCtx(context.Background(), data[off:end])
			if werr != nil {
				t.Fatalf("A.Write(off=%d): %v", off, werr)
			}
			got = append(got, ms...)
		}
		if sessA.Checkpoint() == nil {
			// No frame acked yet (cut == 0): an empty push is a no-op
			// window whose ack still piggybacks the zero-state checkpoint.
			if _, _, werr := sessA.WriteCtx(context.Background(), nil); werr != nil {
				t.Fatalf("A.Write(empty): %v", werr)
			}
		}
		ckpt := append([]byte(nil), sessA.Checkpoint()...)
		if _, _, err := sessA.CloseCtx(context.Background()); err != nil {
			t.Fatalf("A.Close: %v", err)
		}
		sessB, err := c.RestoreSessionCtx(context.Background(), ckpt)
		if err != nil {
			t.Fatalf("RestoreSessionCtx(valid %d-byte ckpt): %v", len(ckpt), err)
		}
		for off := cut; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			ms, _, werr := sessB.WriteCtx(context.Background(), data[off:end])
			if werr != nil {
				t.Fatalf("B.Write(off=%d): %v", off, werr)
			}
			got = append(got, ms...)
		}
		ms, consumed, err := sessB.CloseCtx(context.Background())
		if err != nil {
			t.Fatalf("B.Close: %v", err)
		}
		got = append(got, ms...)
		if consumed != uint64(len(data)) {
			t.Fatalf("handoff consumed %d bytes, pushed %d", consumed, len(data))
		}
		sortRuleMatches(got)
		if !diffMatchesEqual(got, want) {
			t.Fatalf("chunk=%d cut=%d: handoff got %d matches, one-shot wants %d — the restore duplicated or lost matches",
				chunk, cut, len(got), len(want))
		}

		// Garbage restores: raw fuzz bytes, and the genuine checkpoint
		// with one byte flipped at a fuzz-chosen position.
		mutated := append([]byte{byte(server.SessionOpenFlagCheckpoint)}, ckpt...)
		if len(ckpt) > 0 {
			mutated[1+int(seed)%len(ckpt)] ^= 1 + byte(seed>>8)
		}
		for _, body := range [][]byte{garbage, mutated} {
			if err := server.WriteFrame(raw, server.Frame{Op: server.OpSessionRestore, ID: 99, Body: body}); err != nil {
				t.Fatalf("write restore body (%d bytes): %v", len(body), err)
			}
			rf, err := server.ReadFrame(raw, server.DefaultMaxFrame)
			if err != nil {
				t.Fatalf("read restore reply: %v", err)
			}
			switch rf.Op {
			case server.OpError:
				if rf.ID != 99 {
					t.Fatalf("restore ERROR on id %d, want 99", rf.ID)
				}
				if _, _, derr := server.DecodeError(rf.Body); derr != nil {
					t.Fatalf("malformed ERROR body for %d-byte restore: %v", len(body), derr)
				}
			case server.OpSessionOK:
				// The corruption still decoded — a sound session exists;
				// close it so the fuzz loop cannot exhaust the cap. The
				// close may itself answer a typed ERROR (a flipped done
				// flag restores a finished stream); either way the server
				// drops the session on CLOSE.
				id, _, _, derr := server.DecodeSessionOKGen(rf.Body)
				if derr != nil {
					t.Fatalf("malformed SESSION-OK for restored session: %v", derr)
				}
				if err := server.WriteFrame(raw, server.Frame{Op: server.OpSessionClose, ID: 100, Body: server.EncodeSessionClose(id)}); err != nil {
					t.Fatalf("close restored session: %v", err)
				}
				cf, err := server.ReadFrame(raw, server.DefaultMaxFrame)
				if err != nil || cf.ID != 100 {
					t.Fatalf("close restored session: frame op=0x%02x id=%d err=%v, want id=100", cf.Op, cf.ID, err)
				}
				switch cf.Op {
				case server.OpSessionMatches:
				case server.OpError:
					if _, _, derr := server.DecodeError(cf.Body); derr != nil {
						t.Fatalf("close restored session: malformed ERROR body: %v", derr)
					}
				default:
					t.Fatalf("close restored session answered op=0x%02x — protocol desync", cf.Op)
				}
			default:
				t.Fatalf("restore answered op=0x%02x, want SESSION-OK or ERROR — protocol desync", rf.Op)
			}
		}
	})
}
