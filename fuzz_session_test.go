// Fuzzers for the batched and streaming service protocol, both run as
// 30-second smokes by `make fuzzsmoke`:
//
//   - FuzzScanBatch: arbitrary payloads split into arbitrary item
//     sizes; every SCAN-BATCH item's matches must equal a local
//     one-shot scan of that item.
//   - FuzzSessionFraming: arbitrary payloads pushed through a session
//     in arbitrary frame splits must reproduce the one-shot scan
//     (the overlap is opened wider than the payload, so no blind
//     spot applies); and raw garbage bodies on SESSION-DATA /
//     SESSION-CLOSE frames must come back as clean typed errors
//     without desyncing or killing the connection.
//
// Both share one real TCP server per fuzz target, torn down with it;
// iterations are sequential, so one client and one raw connection
// serve the whole run.
package alveare_test

import (
	"net"
	"testing"

	"alveare/internal/core"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// fuzzSessionOverlap is opened wider than any accepted fuzz payload,
// so the one-shot scan is a valid oracle for every chunking.
const fuzzSessionOverlap = 4096

// fuzzMaxData caps fuzz payloads below the session overlap.
const fuzzMaxData = 2048

// startFuzzService boots the shared server plus a client, a raw
// connection and the local oracle rule set for one fuzz target.
func startFuzzService(f *testing.F) (*client.Client, net.Conn, *core.RuleSet) {
	f.Helper()
	srv, err := server.New(server.Config{Rules: diffSessRules})
	if err != nil {
		f.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	f.Cleanup(func() { srv.Close() })
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		f.Fatalf("dial: %v", err)
	}
	f.Cleanup(func() { c.Close() })
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		f.Fatalf("raw dial: %v", err)
	}
	f.Cleanup(func() { raw.Close() })
	return c, raw, diffLocalRuleSet(f, 0)
}

// FuzzScanBatch cross-checks SCAN-BATCH against per-item one-shot
// scans for arbitrary payloads and arbitrary item splits.
func FuzzScanBatch(f *testing.F) {
	c, _, rs := startFuzzService(f)
	f.Add([]byte("abcneedlex12y GET /a/b aabbaaab"), uint16(5))
	f.Add([]byte("abbbbbbbbbbbbbbbbc"), uint16(1))
	f.Add([]byte(""), uint16(40))
	f.Fuzz(func(t *testing.T, data []byte, split uint16) {
		if len(data) > 2*fuzzMaxData {
			t.Skip("oversized")
		}
		size := 1 + int(split)%127
		var items [][]byte
		for off := 0; off < len(data); off += size {
			end := off + size
			if end > len(data) {
				end = len(data)
			}
			items = append(items, data[off:end])
		}
		items = append(items, nil) // always one empty item
		res, err := c.ScanBatch(items)
		if err != nil {
			t.Fatalf("ScanBatch(%d items): %v", len(items), err)
		}
		if len(res) != len(items) {
			t.Fatalf("batch answered %d items for %d payloads", len(res), len(items))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("item %d (%d bytes) failed: %v", i, len(items[i]), r.Err)
			}
			want := diffLocalOneShot(t, rs, items[i])
			got := append([]server.RuleMatch(nil), r.Matches...)
			sortRuleMatches(got)
			if !diffMatchesEqual(got, want) {
				t.Fatalf("item %d (%d bytes): batch got %d matches, one-shot wants %d",
					i, len(items[i]), len(got), len(want))
			}
		}
	})
}

// FuzzSessionFraming cross-checks a session's matches against the
// one-shot scan for arbitrary frame splits, and throws garbage bodies
// at the session opcodes expecting clean errors.
func FuzzSessionFraming(f *testing.F) {
	c, raw, rs := startFuzzService(f)
	f.Add([]byte("abbbcneedle GET /a/b"), uint16(3), []byte{})
	f.Add([]byte("aaabx12y"), uint16(96), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte(""), uint16(0), []byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte, chunkSeed uint16, garbage []byte) {
		if len(data) > fuzzMaxData || len(garbage) > 64 {
			t.Skip("oversized")
		}

		// Garbage session frames: too-short bodies and made-up ids must
		// answer ERROR on the same frame id and leave the connection
		// usable. The raw connection owns no sessions, so even a body
		// that parses as a valid id is unknown to it.
		for _, op := range []byte{server.OpSessionData, server.OpSessionClose} {
			if err := server.WriteFrame(raw, server.Frame{Op: op, ID: 77, Body: garbage}); err != nil {
				t.Fatalf("write garbage %s: %v", server.OpName(op), err)
			}
			rf, err := server.ReadFrame(raw, server.DefaultMaxFrame)
			if err != nil {
				t.Fatalf("read reply to garbage %s: %v", server.OpName(op), err)
			}
			if rf.Op != server.OpError || rf.ID != 77 {
				t.Fatalf("garbage %s answered op=0x%02x id=%d, want ERROR id=77",
					server.OpName(op), rf.Op, rf.ID)
			}
			if _, _, err := server.DecodeError(rf.Body); err != nil {
				t.Fatalf("garbage %s: malformed ERROR body: %v", server.OpName(op), err)
			}
		}

		// Framing differential: any chunking must equal the one-shot
		// scan, because the overlap exceeds the payload.
		want := diffLocalOneShot(t, rs, data)
		sess, err := c.OpenSession(fuzzSessionOverlap)
		if err != nil {
			t.Fatalf("OpenSession: %v", err)
		}
		chunk := 1 + int(chunkSeed)%97
		var got []server.RuleMatch
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			ms, _, err := sess.Write(data[off:end])
			if err != nil {
				t.Fatalf("Write(off=%d): %v", off, err)
			}
			got = append(got, ms...)
		}
		ms, consumed, err := sess.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		got = append(got, ms...)
		if consumed != uint64(len(data)) {
			t.Fatalf("consumed %d bytes, pushed %d", consumed, len(data))
		}
		sortRuleMatches(got)
		if !diffMatchesEqual(got, want) {
			t.Fatalf("chunk=%d: session got %d matches, one-shot wants %d", chunk, len(got), len(want))
		}
	})
}
