package alveare

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"alveare/internal/arch"
	"alveare/internal/baseline/pikevm"
	"alveare/internal/core"
	"alveare/internal/faultinject"
)

// leakCheck snapshots the goroutine count; the returned func asserts
// the scan under test drained every worker it started.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		for i := 0; i < 100; i++ {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// matrixCorpus is large enough for several 256-byte windows and holds
// periodic ab+c matches.
func matrixCorpus() []byte {
	return []byte(strings.Repeat("xxabbcxx", 200)) // 1600 bytes, 200 matches
}

func matrixEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	opts = append([]Option{WithChunkSize(256), WithOverlap(32)}, opts...)
	e, err := NewEngine(MustCompile(`ab+c`), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFaultMatrix drives every public reader-scan path through every
// injected stream fault. Non-failing faults (torn reads, short reads,
// slow producer) must not change the match list; the hard I/O fault
// must surface as a *ScanError carrying the exact failing offset with
// the emitted prefix intact. No path may leak a goroutine.
func TestFaultMatrix(t *testing.T) {
	data := matrixCorpus()
	ref, err := matrixEngine(t).FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 200 {
		t.Fatalf("reference matches = %d, want 200", len(ref))
	}

	const failAt = 700 // mid-stream, inside the third window
	faults := []struct {
		name  string
		wrap  func(io.Reader) io.Reader
		fails bool
	}{
		{"clean", func(r io.Reader) io.Reader { return r }, false},
		{"torn", faultinject.Torn, false},
		{"short3", func(r io.Reader) io.Reader { return faultinject.Short(r, 3) }, false},
		{"slow", func(r io.Reader) io.Reader { return faultinject.Slow(r, 10*time.Microsecond) }, false},
		{"errAt", func(r io.Reader) io.Reader { return faultinject.ErrAt(r, failAt, nil) }, true},
	}

	paths := []struct {
		name string
		scan func(t *testing.T, r io.Reader) ([]Match, error)
	}{
		{"Engine.FindReader", func(t *testing.T, r io.Reader) ([]Match, error) {
			return matrixEngine(t).FindReader(r)
		}},
		{"Engine.ScanReaderCtx", func(t *testing.T, r io.Reader) ([]Match, error) {
			var out []Match
			_, err := matrixEngine(t).ScanReaderCtx(context.Background(), r, func(m Match, _ []byte) bool {
				out = append(out, m)
				return true
			})
			return out, err
		}},
		{"RuleSet.ScanReaderCtx", func(t *testing.T, r io.Reader) ([]Match, error) {
			rs, err := NewRuleSet([]string{`ab+c`}, CompilerOptions{}, WithChunkSize(256), WithOverlap(32))
			if err != nil {
				t.Fatal(err)
			}
			var out []Match
			_, serr := rs.ScanReaderCtx(context.Background(), r, func(rule int, m Match, _ []byte) bool {
				out = append(out, m)
				return true
			})
			return out, serr
		}},
	}

	for _, p := range paths {
		for _, f := range faults {
			t.Run(p.name+"/"+f.name, func(t *testing.T) {
				defer leakCheck(t)()
				got, err := p.scan(t, f.wrap(bytes.NewReader(data)))
				if !f.fails {
					if err != nil {
						t.Fatalf("err = %v, want nil", err)
					}
					if len(got) != len(ref) {
						t.Fatalf("matches = %d, want %d", len(got), len(ref))
					}
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("match %d = %+v, want %+v", i, got[i], ref[i])
						}
					}
					return
				}
				var se *ScanError
				if !errors.As(err, &se) {
					t.Fatalf("err = %v (%T), want *ScanError", err, err)
				}
				if se.Offset != failAt {
					t.Fatalf("ScanError.Offset = %d, want %d", se.Offset, failAt)
				}
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("errors.Is(err, ErrInjected) = false; err = %v", err)
				}
				// Everything emitted before the fault is a clean prefix.
				if len(got) > len(ref) {
					t.Fatalf("emitted %d matches, reference has %d", len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("partial match %d = %+v, want %+v", i, got[i], ref[i])
					}
				}
			})
		}
	}
}

// TestRunawayEndToEnd drives an organically runaway pattern (ambiguous
// alternation under a plus, no accepting suffix) through every public
// scan path under FailFast and asserts the typed taxonomy.
func TestRunawayEndToEnd(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.MaxCycles = 2000
	data := []byte(strings.Repeat("a", 64))
	prog := MustCompile(`(a|aa)+b`)

	t.Run("Engine.FindAll", func(t *testing.T) {
		e, err := NewEngine(prog, core.WithArchConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		_, ferr := e.FindAll(data)
		var se *ScanError
		if !errors.As(ferr, &se) || !errors.Is(ferr, ErrRunaway) {
			t.Fatalf("err = %v, want *ScanError wrapping ErrRunaway", ferr)
		}
		if se.Offset != 0 {
			t.Fatalf("ScanError.Offset = %d, want 0 (first attempt runs away)", se.Offset)
		}
		if e.Stats().Runaways == 0 {
			t.Fatal("Stats.Runaways = 0 after a runaway")
		}
	})

	t.Run("Engine.ScanReader", func(t *testing.T) {
		defer leakCheck(t)()
		e, err := NewEngine(prog, core.WithArchConfig(cfg), WithChunkSize(256), WithOverlap(32))
		if err != nil {
			t.Fatal(err)
		}
		_, serr := e.ScanReader(bytes.NewReader(data), func(Match, []byte) bool { return true })
		if !errors.Is(serr, ErrRunaway) {
			t.Fatalf("err = %v, want ErrRunaway", serr)
		}
		var se *ScanError
		if !errors.As(serr, &se) {
			t.Fatalf("err = %v (%T), want *ScanError", serr, serr)
		}
	})

	t.Run("RuleSet.Scan", func(t *testing.T) {
		defer leakCheck(t)()
		rs, err := NewRuleSet([]string{`(a|aa)+b`, `aaa`}, CompilerOptions{}, core.WithArchConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		_, serr := rs.Scan(data)
		var se *ScanError
		if !errors.As(serr, &se) || !errors.Is(serr, ErrRunaway) {
			t.Fatalf("err = %v, want *ScanError wrapping ErrRunaway", serr)
		}
		if se.Rule != 0 {
			t.Fatalf("ScanError.Rule = %d, want 0", se.Rule)
		}
	})
}

// TestDegradeByteIdentical runs an adversarial corpus under the
// Degrade policy and asserts the output is byte-identical to a
// one-shot scan on the safe reference engine, with Fallbacks counted.
func TestDegradeByteIdentical(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.MaxCycles = 2000
	// Matches early, then an adversarial run that trips the budget (the
	// 'x' denies the pending speculation a suffix, forcing exhaustive
	// rollback), then late matches only the fallback engine will reach.
	corpus := strings.Repeat("aab", 10) + strings.Repeat("a", 64) + "x" + strings.Repeat("aab", 5)
	data := []byte(corpus)
	pattern := `(a|aa)+b`

	p, err := pikevm.Compile(pattern)
	if err != nil {
		t.Fatal(err)
	}
	var want []Match
	for _, m := range p.FindAll(data, 0) {
		want = append(want, Match{Start: m.Start, End: m.End})
	}
	if len(want) == 0 {
		t.Fatal("reference engine found nothing; corpus is wrong")
	}

	t.Run("FindAll", func(t *testing.T) {
		e, err := NewEngine(MustCompile(pattern), core.WithArchConfig(cfg), WithPolicy(Degrade))
		if err != nil {
			t.Fatal(err)
		}
		got, gerr := e.FindAll(data)
		if gerr != nil {
			t.Fatalf("err = %v, want nil under Degrade", gerr)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Degrade output diverges from the safe reference:\n got %v\nwant %v", got, want)
		}
		if e.Stats().Fallbacks == 0 {
			t.Fatal("Stats.Fallbacks = 0; the safe engine never engaged")
		}
		if e.Stats().Runaways == 0 {
			t.Fatal("Stats.Runaways = 0; the corpus never tripped the budget")
		}
	})

	t.Run("ScanReader", func(t *testing.T) {
		defer leakCheck(t)()
		e, err := NewEngine(MustCompile(pattern), core.WithArchConfig(cfg), WithPolicy(Degrade),
			WithChunkSize(4096), WithOverlap(512))
		if err != nil {
			t.Fatal(err)
		}
		got, gerr := e.FindReader(bytes.NewReader(data))
		if gerr != nil {
			t.Fatalf("err = %v, want nil under Degrade", gerr)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("streaming Degrade output diverges:\n got %v\nwant %v", got, want)
		}
		if e.Stats().Fallbacks == 0 {
			t.Fatal("Stats.Fallbacks = 0; the safe engine never engaged")
		}
	})
}

// TestSkipPolicyPartialResults asserts Skip drops the poisoned region
// but keeps scanning: the early matches before the adversarial run
// still come out, and the scan reports no error.
func TestSkipPolicyPartialResults(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.MaxCycles = 2000
	data := []byte(strings.Repeat("aab", 10) + strings.Repeat("a", 64))
	e, err := NewEngine(MustCompile(`(a|aa)+b`), core.WithArchConfig(cfg), WithPolicy(Skip))
	if err != nil {
		t.Fatal(err)
	}
	got, gerr := e.FindAll(data)
	if gerr != nil {
		t.Fatalf("err = %v, want nil under Skip", gerr)
	}
	if len(got) == 0 {
		t.Fatal("Skip dropped every match; the pre-fault prefix should survive")
	}
	for _, m := range got {
		if m.Start >= 30 {
			t.Fatalf("match %+v starts inside the poisoned region", m)
		}
	}
}

// TestForcedRunawayHook exercises the deterministic fault hook: a
// benign pattern and corpus, with the microarchitecture forced to trip
// at a chosen cycle.
func TestForcedRunawayHook(t *testing.T) {
	data := matrixCorpus()
	cfg := faultinject.RunawayConfig(arch.DefaultConfig(), 500)

	e, err := NewEngine(MustCompile(`ab+c`), core.WithArchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	_, ferr := e.FindAll(data)
	if !errors.Is(ferr, ErrRunaway) {
		t.Fatalf("err = %v, want forced ErrRunaway", ferr)
	}

	ref, err := NewEngine(MustCompile(`ab+c`))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := NewEngine(MustCompile(`ab+c`), core.WithArchConfig(cfg), WithPolicy(Degrade))
	if err != nil {
		t.Fatal(err)
	}
	got, gerr := ed.FindAll(data)
	if gerr != nil {
		t.Fatalf("Degrade err = %v, want nil", gerr)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Degrade output under forced fault diverges: got %d matches, want %d", len(got), len(want))
	}
	if ed.Stats().Fallbacks == 0 {
		t.Fatal("Stats.Fallbacks = 0 after a forced runaway under Degrade")
	}
}

// TestRuleSetFaultIsolation: one adversarial rule and one healthy rule
// share a scan; the healthy rule's results must be untouched by its
// neighbour's fault under Skip and Degrade.
func TestRuleSetFaultIsolation(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.MaxCycles = 2000
	data := []byte(strings.Repeat("a", 64))
	patterns := []string{`(a|aa)+b`, `aaa`}

	t.Run("Skip", func(t *testing.T) {
		defer leakCheck(t)()
		rs, err := NewRuleSet(patterns, CompilerOptions{}, core.WithArchConfig(cfg), WithPolicy(Skip))
		if err != nil {
			t.Fatal(err)
		}
		out, serr := rs.Scan(data)
		if serr != nil {
			t.Fatalf("scan err = %v, want nil under Skip", serr)
		}
		byRule := map[int]RuleMatches{}
		for _, rm := range out {
			byRule[rm.Rule] = rm
		}
		if rm := byRule[1]; len(rm.Matches) != 21 || rm.Err != nil {
			t.Fatalf("healthy rule: %d matches, err %v; want 21, nil", len(rm.Matches), rm.Err)
		}
	})

	t.Run("Degrade", func(t *testing.T) {
		defer leakCheck(t)()
		rs, err := NewRuleSet(patterns, CompilerOptions{}, core.WithArchConfig(cfg), WithPolicy(Degrade))
		if err != nil {
			t.Fatal(err)
		}
		out, serr := rs.Scan(data)
		if serr != nil {
			t.Fatalf("scan err = %v, want nil under Degrade", serr)
		}
		for _, rm := range out {
			if rm.Err != nil {
				t.Fatalf("rule %d carries err %v under Degrade", rm.Rule, rm.Err)
			}
			if rm.Rule == 0 {
				t.Fatalf("rule 0 cannot match (no b in corpus), got %v", rm.Matches)
			}
		}
		if rs.Stats().Fallbacks == 0 {
			t.Fatal("Stats.Fallbacks = 0; the adversarial rule never degraded")
		}
	})

	t.Run("StreamSkipRetiresRule", func(t *testing.T) {
		defer leakCheck(t)()
		rs, err := NewRuleSet(patterns, CompilerOptions{}, core.WithArchConfig(cfg), WithPolicy(Skip),
			WithChunkSize(256), WithOverlap(32))
		if err != nil {
			t.Fatal(err)
		}
		healthy := 0
		_, serr := rs.ScanReaderCtx(context.Background(), bytes.NewReader(data), func(rule int, m Match, _ []byte) bool {
			if rule == 1 {
				healthy++
			}
			return true
		})
		if healthy != 21 {
			t.Fatalf("healthy rule emitted %d matches, want 21", healthy)
		}
		// The retired rule's fault is reported after the stream drains.
		var se *ScanError
		if serr != nil && (!errors.As(serr, &se) || se.Rule != 0) {
			t.Fatalf("drain error = %v, want nil or rule 0's *ScanError", serr)
		}
	})
}

// TestCancelMidScan covers cancellation and deadline paths: typed
// errors, the CancelledScans counter, and clean worker drain.
func TestCancelMidScan(t *testing.T) {
	t.Run("PreCancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		e := matrixEngine(t)
		_, err := e.FindAllCtx(ctx, matrixCorpus())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		var se *ScanError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v (%T), want *ScanError", err, err)
		}
		if e.Stats().CancelledScans == 0 {
			t.Fatal("Stats.CancelledScans = 0 after a cancelled scan")
		}
	})

	t.Run("DeadlineMidStream", func(t *testing.T) {
		defer leakCheck(t)()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		e := matrixEngine(t)
		slow := faultinject.Slow(bytes.NewReader(matrixCorpus()), 10*time.Millisecond)
		n, err := e.ScanReaderCtx(ctx, slow, func(Match, []byte) bool { return true })
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
		if n >= int64(len(matrixCorpus())) {
			t.Fatalf("consumed %d bytes, want a partial stream", n)
		}
		if e.Stats().CancelledScans == 0 {
			t.Fatal("Stats.CancelledScans = 0 after a deadline abort")
		}
	})

	t.Run("RuleSetCancel", func(t *testing.T) {
		defer leakCheck(t)()
		rs, err := NewRuleSet([]string{`ab+c`, `xx`}, CompilerOptions{}, WithChunkSize(256), WithOverlap(32))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, serr := rs.ScanCtx(ctx, matrixCorpus())
		if !errors.Is(serr, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", serr)
		}
		if rs.Stats().CancelledScans == 0 {
			t.Fatal("Stats.CancelledScans = 0 after a cancelled rule-set scan")
		}
	})
}

// TestRuleSetEarlyStopDrains is the satellite audit: stopping a
// rule-set stream scan from emit (and cancelling right after the first
// match) must leave no worker goroutine blocked on a send.
func TestRuleSetEarlyStopDrains(t *testing.T) {
	defer leakCheck(t)()
	rs, err := NewRuleSet([]string{`ab+c`, `xx`}, CompilerOptions{}, WithChunkSize(256), WithOverlap(32))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	n, serr := rs.ScanReaderCtx(ctx, bytes.NewReader(matrixCorpus()), func(rule int, m Match, _ []byte) bool {
		seen++
		cancel() // cancel mid-stream AND stop emitting
		return false
	})
	if serr != nil {
		t.Fatalf("err = %v, want nil (emit stopped the scan first)", serr)
	}
	if seen != 1 {
		t.Fatalf("emit ran %d times after returning false", seen)
	}
	if n <= 0 {
		t.Fatalf("consumed %d bytes", n)
	}
}

// TestFastPathFaultSeam audits the hybrid fast path's fallback seam:
// stream faults, a mid-scan DFA cache blowup, cancellation inside the
// gate, and every containment policy must behave exactly as on the
// slow path — same matches, same error chains — and never leak a
// worker goroutine. The failure policy lives in the guarded finder on
// both paths, so any divergence here is a bug in the gate wiring.
func TestFastPathFaultSeam(t *testing.T) {
	data := matrixCorpus()
	ref, err := matrixEngine(t).FindAll(data)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("ReaderFaultMatrix", func(t *testing.T) {
		const failAt = 700
		faults := []struct {
			name  string
			wrap  func(io.Reader) io.Reader
			fails bool
		}{
			{"clean", func(r io.Reader) io.Reader { return r }, false},
			{"torn", faultinject.Torn, false},
			{"errAt", func(r io.Reader) io.Reader { return faultinject.ErrAt(r, failAt, nil) }, true},
		}
		for _, f := range faults {
			t.Run(f.name, func(t *testing.T) {
				defer leakCheck(t)()
				e := matrixEngine(t, WithDFA())
				if !e.FastEnabled() {
					t.Fatal("fast path not enabled")
				}
				got, gerr := e.FindReader(f.wrap(bytes.NewReader(data)))
				if !f.fails {
					if gerr != nil {
						t.Fatalf("err = %v, want nil", gerr)
					}
					if fmt.Sprint(got) != fmt.Sprint(ref) {
						t.Fatalf("fast stream diverged: %d vs %d matches", len(got), len(ref))
					}
					if fs := e.FastStats(); fs.Probes == 0 {
						t.Fatalf("gate never ran: %+v", fs)
					}
					return
				}
				var se *ScanError
				if !errors.As(gerr, &se) || se.Offset != failAt || !errors.Is(gerr, faultinject.ErrInjected) {
					t.Fatalf("err = %v, want *ScanError at %d wrapping ErrInjected", gerr, failAt)
				}
				for i := range got { // clean prefix, as on the slow path
					if got[i] != ref[i] {
						t.Fatalf("partial match %d = %+v, want %+v", i, got[i], ref[i])
					}
				}
			})
		}
	})

	t.Run("MidScanCacheBlowup", func(t *testing.T) {
		defer leakCheck(t)()
		// A thrash pattern through a 16-state cache: the gate must bail
		// mid-stream and hand the rest of the scan to the exact engine,
		// with byte-identical output.
		pat := `a[ab]{14}`
		buf := make([]byte, 1<<15)
		lcg := uint32(12345)
		for i := range buf {
			lcg = lcg*1664525 + 1013904223
			buf[i] = "ab"[lcg>>16&1]
		}
		// An 'x' every 11 bytes keeps the stream accept-free (every
		// 15-byte window holds one), so the gate's probes run long
		// enough for the thrash detector to trip.
		for i := 10; i < len(buf); i += 11 {
			buf[i] = 'x'
		}
		slow, err := NewEngine(MustCompile(pat), WithChunkSize(1024), WithOverlap(64))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewEngine(MustCompile(pat), WithChunkSize(1024), WithOverlap(64),
			WithDFA(), WithDFACache(16))
		if err != nil {
			t.Fatal(err)
		}
		want, err1 := slow.FindReader(bytes.NewReader(buf))
		got, err2 := fast.FindReader(bytes.NewReader(buf))
		if err1 != nil || err2 != nil {
			t.Fatalf("errs %v / %v", err1, err2)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("blowup stream diverged: %d vs %d matches", len(got), len(want))
		}
		fs := fast.FastStats()
		if fs.Bails == 0 || fs.FallbackProbes == 0 {
			t.Fatalf("cache blowup never bailed to the slow path: %+v", fs)
		}
	})

	t.Run("CancelInsideFastPath", func(t *testing.T) {
		defer leakCheck(t)()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		e := matrixEngine(t, WithDFA())
		slow := faultinject.Slow(bytes.NewReader(data), 10*time.Millisecond)
		n, serr := e.ScanReaderCtx(ctx, slow, func(Match, []byte) bool { return true })
		if !errors.Is(serr, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", serr)
		}
		var se *ScanError
		if !errors.As(serr, &se) {
			t.Fatalf("err = %v (%T), want *ScanError", serr, serr)
		}
		if n >= int64(len(data)) {
			t.Fatalf("consumed %d bytes, want a partial stream", n)
		}
		if e.Stats().CancelledScans == 0 {
			t.Fatal("Stats.CancelledScans = 0 after a deadline abort on the fast path")
		}
	})

	t.Run("PolicyParity", func(t *testing.T) {
		// The degrade corpus: early matches, an adversarial a-run that
		// trips the budget, then late matches. Matches exist ahead of
		// every probe, so the gate always confirms and the guarded
		// finder underneath sees exactly the slow path's faults.
		cfg := arch.DefaultConfig()
		cfg.MaxCycles = 2000
		corpus := []byte(strings.Repeat("aab", 10) + strings.Repeat("a", 64) + "x" + strings.Repeat("aab", 5))
		pattern := `(a|aa)+b`
		for _, pol := range []Policy{FailFast, Degrade, Skip} {
			slow, err := NewEngine(MustCompile(pattern), core.WithArchConfig(cfg), WithPolicy(pol))
			if err != nil {
				t.Fatal(err)
			}
			fast, err := NewEngine(MustCompile(pattern), core.WithArchConfig(cfg), WithPolicy(pol), WithDFA())
			if err != nil {
				t.Fatal(err)
			}
			want, errSlow := slow.FindAll(corpus)
			got, errFast := fast.FindAll(corpus)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("policy %v: fast output diverged:\n got %v\nwant %v", pol, got, want)
			}
			if (errSlow == nil) != (errFast == nil) {
				t.Fatalf("policy %v: error outcome diverged: slow %v fast %v", pol, errSlow, errFast)
			}
			if pol == FailFast {
				var seS, seF *ScanError
				if !errors.As(errSlow, &seS) || !errors.As(errFast, &seF) {
					t.Fatalf("FailFast: want *ScanError on both paths, got %v / %v", errSlow, errFast)
				}
				if !errors.Is(errFast, ErrRunaway) || seF.Offset != seS.Offset {
					t.Fatalf("FailFast chains diverged: slow %+v fast %+v", seS, seF)
				}
			}
			if pol == Degrade {
				if errFast != nil {
					t.Fatalf("Degrade: err = %v, want nil", errFast)
				}
				if fast.Stats().Fallbacks == 0 {
					t.Fatal("Degrade: fast path never engaged the safe engine")
				}
			}
		}
	})

	t.Run("RuleSetGateAvoidsFault", func(t *testing.T) {
		// On a corpus where the adversarial rule cannot match (no 'b'),
		// the gate proves absence up front and the speculative core never
		// runs — the healthy neighbour's results are identical to the
		// slow path's fault-isolation outcome, without paying the fault.
		defer leakCheck(t)()
		cfg := arch.DefaultConfig()
		cfg.MaxCycles = 2000
		data := []byte(strings.Repeat("a", 64))
		rs, err := NewRuleSet([]string{`(a|aa)+b`, `aaa`}, CompilerOptions{},
			core.WithArchConfig(cfg), WithPolicy(Skip), WithDFA())
		if err != nil {
			t.Fatal(err)
		}
		out, serr := rs.Scan(data)
		if serr != nil {
			t.Fatalf("scan err = %v, want nil", serr)
		}
		byRule := map[int]RuleMatches{}
		for _, rm := range out {
			byRule[rm.Rule] = rm
		}
		if rm := byRule[1]; len(rm.Matches) != 21 || rm.Err != nil {
			t.Fatalf("healthy rule: %d matches, err %v; want 21, nil", len(rm.Matches), rm.Err)
		}
		if fs := rs.FastStats(); fs.Negatives == 0 {
			t.Fatalf("gate never proved absence for the adversarial rule: %+v", fs)
		}
	})
}
