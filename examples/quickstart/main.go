// Quickstart: compile a regular expression to the ALVEARE ISA, run it
// on the microarchitecture model, and look at what the hardware did.
package main

import (
	"fmt"
	"log"

	"alveare"
)

func main() {
	// Compile: front-end -> middle-end -> back-end -> 43-bit ISA.
	prog, err := alveare.Compile(`([a-z0-9.]+)@([a-z]+)\.(com|org|it)`)
	if err != nil {
		log.Fatal(err)
	}

	// The compiled artifact is inspectable...
	fmt.Println("compiled program:")
	fmt.Print(prog.Disassemble())

	// ...and loadable: this is what the instruction memory receives.
	bin, err := prog.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nloadable binary: %d bytes (%d instructions)\n\n", len(bin), prog.Len())

	// Execute on a single core.
	eng, err := alveare.NewEngine(prog)
	if err != nil {
		log.Fatal(err)
	}
	data := []byte("contact filippo.c@polimi.it or sales@acme.com; spam@bad goes unmatched")
	ms, err := eng.FindAll(data)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ms {
		fmt.Printf("match [%3d,%3d): %s\n", m.Start, m.End, data[m.Start:m.End])
	}

	// The engine is a hardware model: its counters tell you what the
	// controller, the vector unit and the speculation stack did.
	st := eng.Stats()
	fmt.Printf("\ncycles=%d instructions=%d speculations=%d rollbacks=%d scan-cycles=%d\n",
		st.Cycles, st.Instructions, st.Speculations, st.Rollbacks, st.ScanCycles)
}
