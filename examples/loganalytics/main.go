// Log analytics: a PowerEN-style text-analytics workload. A handful of
// field-extraction patterns run over a machine-generated log stream,
// comparing the advanced compiler against the minimal (unfolded)
// baseline on the same input — Table 2's effect on a realistic stream.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"alveare"
)

var patterns = []struct{ name, re string }{
	{"ipv4ish", `[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}`},
	{"session-id", `sid=[0-9a-f]{8,16}`},
	{"error-line", `ERROR [^\n]*timeout`},
	{"latency-field", `lat=[0-9]{2,5}ms`},
	{"user-field", `user=[a-z_]{3,12}`},
}

func main() {
	stream := buildLog(4000)
	fmt.Printf("stream: %d bytes\n\n", len(stream))
	fmt.Printf("%-14s %8s %14s %14s %10s\n", "pattern", "matches", "adv cycles", "min cycles", "saving")

	for _, p := range patterns {
		adv, err := alveare.Compile(p.re)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		min, err := alveare.CompileMinimal(p.re)
		if err != nil {
			log.Fatal(err)
		}
		engA, err := alveare.NewEngine(adv)
		if err != nil {
			log.Fatal(err)
		}
		engM, err := alveare.NewEngine(min)
		if err != nil {
			log.Fatal(err)
		}
		nA, err := engA.Count(stream)
		if err != nil {
			log.Fatal(err)
		}
		nM, err := engM.Count(stream)
		if err != nil {
			log.Fatal(err)
		}
		if nA != nM {
			log.Fatalf("%s: advanced found %d, minimal %d (must be equivalent)", p.name, nA, nM)
		}
		ca, cm := engA.Stats().Cycles, engM.Stats().Cycles
		fmt.Printf("%-14s %8d %14d %14d %9.2fx\n", p.name, nA, ca, cm, float64(cm)/float64(ca))
	}
}

func buildLog(lines int) []byte {
	r := rand.New(rand.NewSource(99))
	levels := []string{"INFO", "WARN", "ERROR", "DEBUG"}
	users := []string{"alice", "bob", "carol", "daemon", "web_front"}
	var b strings.Builder
	for i := 0; i < lines; i++ {
		lvl := levels[r.Intn(len(levels))]
		fmt.Fprintf(&b, "%s svc=api user=%s sid=%08x ip=%d.%d.%d.%d lat=%dms",
			lvl, users[r.Intn(len(users))], r.Uint32(),
			10+r.Intn(240), r.Intn(256), r.Intn(256), 1+r.Intn(254), 1+r.Intn(4000))
		if lvl == "ERROR" && r.Intn(2) == 0 {
			b.WriteString(" upstream timeout")
		}
		b.WriteString("\n")
	}
	return []byte(b.String())
}
