// Deep packet inspection: the paper's Snort scenario. A small rule set
// of HTTP/binary signatures is compiled once and swept over a packet
// stream by a 4-core ALVEARE — the near-data SmartNIC use case where the
// RE engine must not burn host CPU cycles.
package main

import (
	"fmt"
	"log"

	"alveare"
)

// rules are Snort-style payload signatures: note the PCRE features the
// ALVEARE ISA supports natively — alternation of methods, negated line
// classes with unbounded quantifiers, bounded counters, and raw binary
// bytes via \xHH (the reference-enable bits make non-ASCII patterns
// first-class).
var rules = []struct{ name, re string }{
	{"http-traversal", `(GET|POST) [^ ]*\.\./\.\./`},
	{"cgi-bin-probe", `/cgi-bin/[^ \r\n]{1,40}\.(sh|pl|exe)`},
	{"long-host-header", `Host: [^\r\n]{40,}`},
	{"shellcode-nop-sled", `\x90{8,}`},
	{"dns-tunnel-label", `[a-f0-9]{32,60}\.evil\.com`},
	{"admin-login", `/(admin|manager)/login\.(php|jsp)`},
}

func main() {
	stream := buildPacketStream()

	for _, r := range rules {
		prog, err := alveare.Compile(r.re)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		eng, err := alveare.NewEngine(prog, alveare.WithCores(4))
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(stream)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "clean"
		if len(res.Matches) > 0 {
			verdict = fmt.Sprintf("ALERT x%d (first at offset %d)", len(res.Matches), res.Matches[0].Start)
		}
		fmt.Printf("%-20s %-46s %s\n", r.name, r.re, verdict)
		fmt.Printf("%-20s wall=%d cycles over %d cores (program: %d instrs)\n",
			"", res.WallCycles, len(res.PerCore), prog.OpCount())
	}
}

// buildPacketStream assembles a synthetic capture: benign HTTP traffic
// with a few planted attacks, including a binary NOP sled.
func buildPacketStream() []byte {
	var b []byte
	add := func(s string) { b = append(b, s...) }
	for i := 0; i < 50; i++ {
		add(fmt.Sprintf("GET /index%d.html HTTP/1.1\r\nHost: example%d.org\r\n\r\n", i, i))
	}
	add("GET /static/../../../../etc/passwd HTTP/1.1\r\n")
	add("POST /cgi-bin/backup.sh HTTP/1.1\r\n")
	add("Host: " + repeat('a', 64) + "\r\n")
	for i := 0; i < 12; i++ {
		b = append(b, 0x90)
	}
	add("\x31\xc0\x50\x68")
	add("GET /admin/login.php HTTP/1.1\r\n")
	add("deadbeefcafebabedeadbeefcafebabe.evil.com\r\n")
	for i := 0; i < 50; i++ {
		add(fmt.Sprintf("GET /img/%d.png HTTP/1.1\r\nHost: cdn.example.org\r\n\r\n", i))
	}
	return b
}

func repeat(c byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = c
	}
	return string(s)
}
