// Waveform: observe the microarchitecture at work. The execution of a
// backtracking-heavy pattern is recorded as (1) a cycle-by-cycle text
// trace of the controller's decisions and (2) an IEEE 1364 VCD waveform
// (alveare.vcd) you can open in GTKWave to watch pc, dp, the
// speculation-stack depth and the match/rollback pulses — exactly what
// you would probe on the FPGA prototype.
package main

import (
	"fmt"
	"log"
	"os"

	"alveare"
	"alveare/internal/arch"
)

func main() {
	const pattern = "(a|ab)*c"
	const input = "ababxabc"

	prog := alveare.MustCompile(pattern)
	fmt.Printf("pattern %q over %q\n\n", pattern, input)
	fmt.Print(prog.Disassemble())

	core, err := arch.NewCore(prog, arch.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("alveare.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	wave := arch.NewVCDWriter(f, "1ns")
	defer wave.Close()

	text := arch.TextTracer(os.Stdout)
	waveTr := wave.Tracer()
	core.SetTracer(func(ev arch.TraceEvent) {
		text(ev)
		waveTr(ev)
	})

	fmt.Println("\ncycle-by-cycle trace:")
	m, ok, err := core.Find([]byte(input))
	if err != nil {
		log.Fatal(err)
	}
	st := core.Stats()
	fmt.Printf("\nmatch=%v", ok)
	if ok {
		fmt.Printf(" [%d,%d) %q", m.Start, m.End, input[m.Start:m.End])
	}
	fmt.Printf("\ncycles=%d speculations=%d rollbacks=%d max-stack=%d\n",
		st.Cycles, st.Speculations, st.Rollbacks, st.MaxStackDepth)
	fmt.Println("waveform written to alveare.vcd (open with GTKWave)")
}
