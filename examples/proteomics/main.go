// Proteomics: the paper's Protomata scenario. PROSITE-style protein
// motifs are lowered to regular expressions and searched in protein
// sequences — residue classes, excluded residues and bounded gaps map
// directly onto the ISA's RANGE/NOT/counter primitives.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"alveare"
)

// motifs follow PROSITE conventions translated to REs:
// [..] residue class, [^..] excluded residues, X gaps as classes with
// bounded counters.
var motifs = []struct{ name, prosite, re string }{
	{"N-glycosylation", "N-{P}-[ST]-{P}", `N[^P][ST][^P]`},
	{"PKC-phospho", "[ST]-x(2)-[RK]", `[ST][ACDEFGHIKLMNPQRSTVWY]{2}[RK]`},
	{"zinc-finger-C2H2", "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H",
		`C[ACDEFGHIKLMNPQRSTVWY]{2,4}C[ACDEFGHIKLMNPQRSTVWY]{3}[LIVMFYWC][ACDEFGHIKLMNPQRSTVWY]{8}H[ACDEFGHIKLMNPQRSTVWY]{3,5}H`},
	{"ATP-binding P-loop", "[AG]-x(4)-G-K-[ST]", `[AG][ACDEFGHIKLMNPQRSTVWY]{4}GK[ST]`},
}

const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

func main() {
	seqs := syntheticProteome(200, 400)

	for _, m := range motifs {
		prog, err := alveare.Compile(m.re)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		eng, err := alveare.NewEngine(prog)
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		var firstSeq int = -1
		for i, seq := range seqs {
			ms, err := eng.FindAll([]byte(seq))
			if err != nil {
				log.Fatal(err)
			}
			if len(ms) > 0 && firstSeq < 0 {
				firstSeq = i
			}
			hits += len(ms)
		}
		st := eng.Stats()
		fmt.Printf("%-18s %-28s hits=%-4d first-seq=%-3d cycles=%-8d speculations=%d\n",
			m.name, m.prosite, hits, firstSeq, st.Cycles, st.Speculations)
	}
}

// syntheticProteome generates n random protein sequences and plants
// real motif instances so every pattern has something to find.
func syntheticProteome(n, length int) []string {
	r := rand.New(rand.NewSource(7))
	seqs := make([]string, n)
	for i := range seqs {
		var b strings.Builder
		for j := 0; j < length; j++ {
			b.WriteByte(aminoAcids[r.Intn(len(aminoAcids))])
		}
		seqs[i] = b.String()
	}
	// Plant canonical instances.
	plant := func(i int, s string) {
		if len(s) < len(seqs[i]) {
			seqs[i] = s + seqs[i][len(s):]
		}
	}
	plant(3, "NFSA")                                     // N-glycosylation: N, not P, S/T, not P
	plant(10, "SGGR")                                    // PKC phosphorylation site
	plant(20, "CAAC"+"GGG"+"L"+"AAAAAAAA"+"H"+"GGG"+"H") // zinc finger
	plant(30, "AGGGGGKS")                                // P-loop
	return seqs
}
