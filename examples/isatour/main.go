// ISA tour: a guided walk through the 43-bit instruction format using
// the paper's own running example ([^A-Z])+ and a few companions —
// what Figures 1 and 2 and Table 1 look like in this implementation.
package main

import (
	"fmt"
	"log"

	"alveare"
	"alveare/internal/backend"
	"alveare/internal/isa"
)

func main() {
	fmt.Println("ALVEARE ISA operation classes (paper Table 1)")
	fmt.Printf("%-8s %-8s %-9s %s\n", "Class", "Operator", "Opcode", "Description")
	for _, r := range isa.OpTable() {
		fmt.Printf("%-8s %-8s %-9s %s\n", r.Class, r.Operator, r.Opcode, r.Description)
	}

	fmt.Println("\nThe paper's worked example: ([^A-Z])+")
	prog := alveare.MustCompile("([^A-Z])+")
	for pc, in := range prog.Code {
		w, err := in.Encode()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %04d: opcode=%07b enable=%04b ref=%032b  %s\n",
			pc, w>>36, (w>>32)&0xf, w&0xffffffff, in.String())
	}

	fmt.Println("\nOperation fusion at work: (ab)+ vs the unfused layout")
	fused := alveare.MustCompile("(ab)+")
	unfused, err := backend.Compile("(ab)+", backend.Options{NoFusion: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fused:")
	fmt.Print(indent(fused.Disassemble()))
	fmt.Println("unfused:")
	fmt.Print(indent(unfused.Disassemble()))

	fmt.Println("\nTwo ranges packed in one RANGE instruction: [a-z0-9]")
	fmt.Print(indent(alveare.MustCompile("[a-z0-9]").Disassemble()))

	fmt.Println("\nA complex OR chain for a wide class: [aeiou0-9%#]")
	fmt.Print(indent(alveare.MustCompile("[aeiou0-9%#]").Disassemble()))

	fmt.Println("\nCounter decomposition beyond the 6-bit limit: a{100}")
	fmt.Print(indent(alveare.MustCompile("a{100}").Disassemble()))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
