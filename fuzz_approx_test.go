package alveare

import (
	"bytes"
	"fmt"
	"testing"

	"alveare/internal/approx"
)

// FuzzApproxAdmission fuzzes (two rules, input, state budget) against
// the over-approximating admission automaton's one contract: it may
// admit windows with no match, it must never reject one that has a
// match. Two checks per case:
//
//  1. The filter directly: if the exact rule set finds any match in
//     the input, Suspect must say so — a false verdict would make the
//     screened scan paths drop that match.
//  2. The full pipeline differentially: a rule set built WithApprox
//     must return byte-identical matches to one built without, both
//     one-shot and through the chunked reader scan whose per-window
//     screening is where a filter miss would actually bite.
//
// Budget degradation is in scope: the budget is fuzzed across and
// beyond the legal range, and the seeds include an unanchored
// long-counted rule under the minimum budget — a combination that
// blows the subset construction at every truncation depth, so Build
// must degrade to an admit-all filter (vacuously sound) instead of
// miscompiling a lossy one.
func FuzzApproxAdmission(f *testing.F) {
	f.Add("a+b", "x[0-9]+y", "aabab x42y aab", 256)
	f.Add("(cat|dog)+", "needle", "catdogcat needle catcat", 16)
	f.Add("[a-f]{2,4}", "GET /[a-z/]+", "xxfade GET /idx beadxx", 64)
	f.Add("q(w|e)*?r", "x{2,}y", "qwer xxy qweer qr", 8)
	// Budget blown at every depth: two wide counted classes under the
	// minimum budget force the admit-all degradation path.
	f.Add(".{0,40}[a-z]{8}", "[^ ]{6,30}@[a-z]{4,20}", "zzzzzzzzzzzz wedge@corpnet", 2)
	f.Add("", "a*", "empty and empty-matching", 32)
	f.Fuzz(func(t *testing.T, pat1, pat2, input string, budget int) {
		if len(pat1) > 40 || len(pat2) > 40 || len(input) > 1<<12 {
			t.Skip()
		}
		patterns := []string{pat1, pat2}
		base, err := NewRuleSet(patterns, CompilerOptions{})
		if err != nil {
			t.Skip() // outside the supported subset
		}
		data := []byte(input)
		want, err := base.Scan(data)
		if err != nil {
			t.Skip() // pathological execution (stack/cycle budget)
		}

		// 1. Never-miss on the filter itself. Build clamps any budget,
		// so the raw fuzzed value is legal by definition.
		fl := approx.Build(patterns, budget)
		if fl.AdmitAll() && !fl.Suspect(data) {
			t.Fatalf("admit-all filter rejected a window (rules %q, %q)", pat1, pat2)
		}
		if hasMatch(want) && !fl.Suspect(data) {
			t.Fatalf("filter (budget %d, states %d, depth %d) rejected input with a match\nrules %q, %q\ninput %q\nmatches %v",
				budget, fl.States(), fl.Depth(), pat1, pat2, input, want)
		}

		// 2. Screened pipeline is byte-identical to the unscreened one.
		screened, err := NewRuleSet(patterns, CompilerOptions{},
			WithApprox(), WithApproxStates(budget), WithChunkSize(97), WithOverlap(48))
		if err != nil {
			t.Fatalf("WithApprox rule set: %v", err)
		}
		got, err := screened.Scan(data)
		if err != nil {
			t.Fatalf("screened Scan errored where exact did not: %v", err)
		}
		compareRuleMatches(t, "Scan", got, want)

		plainReader, err := NewRuleSet(patterns, CompilerOptions{}, WithChunkSize(97), WithOverlap(48))
		if err != nil {
			t.Fatalf("plain reader rule set: %v", err)
		}
		wantStream := collectReader(t, plainReader, data)
		gotStream := collectReader(t, screened, data)
		if !bytes.Equal(gotStream, wantStream) {
			t.Fatalf("reader scan diverged under screening\nrules %q, %q input %q\n got %s\nwant %s",
				pat1, pat2, input, gotStream, wantStream)
		}
	})
}

func hasMatch(out []RuleMatches) bool {
	for _, rm := range out {
		if len(rm.Matches) > 0 {
			return true
		}
	}
	return false
}

func compareRuleMatches(t *testing.T, path string, got, want []RuleMatches) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rules with matches, want %d\n got %v\nwant %v", path, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Rule != want[i].Rule || len(got[i].Matches) != len(want[i].Matches) {
			t.Fatalf("%s: rule entry %d = %v, want %v", path, i, got[i], want[i])
		}
		for j := range want[i].Matches {
			if got[i].Matches[j] != want[i].Matches[j] {
				t.Fatalf("%s: rule %d match %d = %v, want %v", path, got[i].Rule, j, got[i].Matches[j], want[i].Matches[j])
			}
		}
	}
}

// collectReader renders a rule set's chunked reader scan as a
// deterministic byte transcript for comparison.
func collectReader(t *testing.T, rs *RuleSet, data []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if _, err := rs.ScanReader(bytes.NewReader(data), func(rule int, m Match, _ []byte) bool {
		fmt.Fprintf(&out, "%d:%d-%d ", rule, m.Start, m.End)
		return true
	}); err != nil {
		t.Fatalf("ScanReader: %v", err)
	}
	return out.Bytes()
}
