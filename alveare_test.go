package alveare

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"alveare/internal/baseline/backtrack"
	"alveare/internal/baseline/pikevm"
)

func TestQuickstart(t *testing.T) {
	prog, err := Compile(`([a-z0-9]+)@acme\.(com|org)`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(prog)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("contact bob7@acme.org or alice@acme.com today")
	m, ok, err := eng.Find(data)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if string(data[m.Start:m.End]) != "bob7@acme.org" {
		t.Errorf("match = %q", data[m.Start:m.End])
	}
	ms, err := eng.FindAll(data)
	if err != nil || len(ms) != 2 {
		t.Fatalf("FindAll = %v err=%v", ms, err)
	}
	if st := eng.Stats(); st.Cycles == 0 {
		t.Error("no cycles accounted")
	}
}

func TestMultiCoreAPI(t *testing.T) {
	prog := MustCompile("needle")
	eng, err := NewEngine(prog, WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Cores() != 4 {
		t.Errorf("Cores = %d", eng.Cores())
	}
	data := []byte(strings.Repeat("hay", 10000) + "needle" + strings.Repeat("hay", 10000))
	n, err := eng.Count(data)
	if err != nil || n != 1 {
		t.Fatalf("Count = %d err=%v", n, err)
	}
	res, err := eng.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles == 0 || len(res.PerCore) != 4 {
		t.Errorf("Run result: %+v", res)
	}
}

func TestCompileMinimalAndOptions(t *testing.T) {
	adv := MustCompile("[a-zA-Z]")
	min, err := CompileMinimal("[a-zA-Z]")
	if err != nil {
		t.Fatal(err)
	}
	if min.OpCount() <= adv.OpCount() {
		t.Errorf("minimal %d <= advanced %d", min.OpCount(), adv.OpCount())
	}
	nr, err := CompileWith("[a-d]", CompilerOptions{NoRange: true})
	if err != nil {
		t.Fatal(err)
	}
	if nr.OpCount() != 1 {
		// [a-d] without RANGE is a single 4-char OR.
		t.Errorf("NoRange [a-d] ops = %d", nr.OpCount())
	}
	if _, err := Compile("("); err == nil {
		t.Error("bad pattern accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile("(")
}

func TestDisassembleAndBinary(t *testing.T) {
	prog := MustCompile("([^A-Z])+")
	dis := prog.Disassemble()
	if !strings.Contains(dis, "NOT RANGE") || !strings.Contains(dis, "EOR") {
		t.Errorf("disassembly:\n%s", dis)
	}
	bin, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.UnmarshalBinary(bin); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(&q)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := eng.Match([]byte("HIab"))
	if err != nil || !ok {
		t.Fatalf("reloaded program does not run: ok=%v err=%v", ok, err)
	}
}

// TestEndToEndDifferential is the repository's integration oracle: for a
// grid of patterns and inputs, the full ALVEARE pipeline (front-end,
// middle-end, back-end, microarchitecture) must agree with Go's regexp,
// the from-scratch Pike VM and the backtracking oracle on leftmost
// match bounds — in both compilation modes and with multiple cores for
// containment.
func TestEndToEndDifferential(t *testing.T) {
	patterns := []string{
		"abc", "a+b", "(a|ab)c", "x(a|b)*y", "a{2,4}?", "[a-f]{3}",
		"(ab|cd|ef)+x", "[^c]+c", "q(w|e)*?r", "z?a{2}b{1,2}",
		"(0|1(01*0)*1)+", "colou?r", "[a-z]+[0-9]{2,3}",
	}
	r := rand.New(rand.NewSource(99))
	var inputs []string
	inputs = append(inputs, "", "a", "abc", "xabababy", "aaaa", "qwer", "color")
	for i := 0; i < 60; i++ {
		buf := make([]byte, r.Intn(30))
		for j := range buf {
			buf[j] = "abcdefqwrxy012 "[r.Intn(15)]
		}
		inputs = append(inputs, string(buf))
	}

	for _, pat := range patterns {
		std := regexp.MustCompile(pat)
		vm, err := pikevm.Compile(pat)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := backtrack.New(pat)
		if err != nil {
			t.Fatal(err)
		}
		engAdv, err := NewEngine(MustCompile(pat))
		if err != nil {
			t.Fatal(err)
		}
		minProg, err := CompileMinimal(pat)
		if err != nil {
			t.Fatal(err)
		}
		engMin, err := NewEngine(minProg)
		if err != nil {
			t.Fatal(err)
		}

		for _, in := range inputs {
			data := []byte(in)
			want := std.FindStringIndex(in)

			if vmM, vmOK := vm.Find(data); (want == nil) == vmOK {
				t.Errorf("pikevm disagrees with stdlib on %q/%q (%v vs %v)", pat, in, vmM, want)
			}
			btM, btOK, err := bt.Find(data)
			if err != nil {
				t.Fatal(err)
			}
			if (want == nil) == btOK {
				t.Errorf("backtrack disagrees with stdlib on %q/%q", pat, in)
			}
			if btOK && (btM.Start != want[0] || btM.End != want[1]) {
				t.Errorf("backtrack bounds on %q/%q: %v vs %v", pat, in, btM, want)
			}

			for name, eng := range map[string]*Engine{"advanced": engAdv, "minimal": engMin} {
				m, ok, err := eng.Find(data)
				if err != nil {
					t.Fatalf("%s %q on %q: %v", name, pat, in, err)
				}
				if want == nil {
					if ok {
						t.Errorf("%s %q on %q: matched [%d,%d), want none", name, pat, in, m.Start, m.End)
					}
					continue
				}
				if !ok {
					t.Errorf("%s %q on %q: no match, want [%d,%d)", name, pat, in, want[0], want[1])
					continue
				}
				if m.Start != want[0] || m.End != want[1] {
					t.Errorf("%s %q on %q: [%d,%d), want [%d,%d)", name, pat, in, m.Start, m.End, want[0], want[1])
				}
			}
		}
	}
}

// TestRandomDifferential fuzzes pattern x input combinations across the
// whole stack.
func TestRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	atoms := []string{"a", "b", "c", "ab", "[ab]", "[^a]", "[a-c]", "."}
	quants := []string{"", "", "*", "+", "?", "{2}", "{1,3}", "*?", "+?"}
	for i := 0; i < 120; i++ {
		var sb strings.Builder
		n := 1 + r.Intn(4)
		for j := 0; j < n; j++ {
			a := atoms[r.Intn(len(atoms))]
			q := quants[r.Intn(len(quants))]
			if q != "" && len(a) > 1 && a[0] != '[' && a != "." {
				a = "(" + a + ")"
			}
			sb.WriteString(a + q)
		}
		if r.Intn(4) == 0 {
			sb.WriteString("|" + atoms[r.Intn(len(atoms))])
		}
		pat := sb.String()
		std, err := regexp.Compile(pat)
		if err != nil {
			continue
		}
		eng, err := NewEngine(MustCompile(pat))
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		for j := 0; j < 15; j++ {
			buf := make([]byte, r.Intn(16))
			for k := range buf {
				buf[k] = "abcx\n"[r.Intn(5)]
			}
			want := std.FindIndex(buf)
			m, ok, err := eng.Find(buf)
			if err != nil {
				t.Fatalf("%q on %q: %v", pat, buf, err)
			}
			if (want == nil) != !ok {
				t.Errorf("%q on %q: ok=%v stdlib=%v", pat, buf, ok, want)
				continue
			}
			if ok && (m.Start != want[0] || m.End != want[1]) {
				t.Errorf("%q on %q: [%d,%d) vs %v", pat, buf, m.Start, m.End, want)
			}
		}
	}
}
