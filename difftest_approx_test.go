package alveare

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// approxDiffRules is a DPI-flavoured rule set for the admission-stage
// differentials: long literal heads the filter can discriminate on,
// counted classes, alternation, and one rule ("x[0-9]+y") whose
// matches the corpora plant across window boundaries.
var approxDiffRules = []string{
	`GET /[a-z/]+`,
	`x[0-9]+y`,
	`(cat|dog)+`,
	`ERROR: [a-z]{3,12}`,
	`[a-f0-9]{8}-beef`,
}

// approxDiffCorpus builds seeded corpora spanning the interesting
// densities: all-clean traffic (every window screened out), dense
// traffic (every window admitted), and sparse traffic with witnesses
// planted at random offsets — including offsets chosen to straddle
// the chunk boundaries of the streaming scans below.
func approxDiffCorpus(r *rand.Rand, chunk int) [][]byte {
	witnesses := []string{"GET /idx/a", "x427y", "catdogcat", "ERROR: disk", "deadbeef-beef"}
	clean := make([]byte, 8192)
	for i := range clean {
		clean[i] = "nopqrstuvw ."[r.Intn(12)]
	}
	dense := bytes.Repeat([]byte("x1y catdog GET /a "), 400)
	sparse := make([]byte, 8192)
	copy(sparse, clean)
	for k := 0; k < 12; k++ {
		w := witnesses[r.Intn(len(witnesses))]
		copy(sparse[r.Intn(len(sparse)-len(w)):], w)
	}
	straddle := make([]byte, 8192)
	copy(straddle, clean)
	// Plant one witness across every chunk boundary so the screened
	// streaming scan must find matches that no single refill contains.
	for b := chunk; b+8 < len(straddle); b += chunk {
		w := witnesses[r.Intn(len(witnesses))]
		copy(straddle[b-len(w)/2:], w)
	}
	return [][]byte{{}, clean, dense, sparse, straddle}
}

// TestApproxScanDifferential: one-shot RuleSet.Scan with the admission
// stage on must be byte-identical to the same scan with it off, across
// state budgets (including the degenerate minimum) and the -no-dfa
// axis (admission ahead of the exact engine alone, and stacked under
// the lazy-DFA fast path + literal prefilter).
func TestApproxScanDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(9001))
	corpus := approxDiffCorpus(r, 512)
	for _, budget := range []int{0, 2, 32, 256} {
		for _, dfa := range []bool{false, true} {
			t.Run(fmt.Sprintf("budget=%d/dfa=%v", budget, dfa), func(t *testing.T) {
				base := []Option{WithWorkers(2)}
				if dfa {
					base = append(base, WithDFA())
				}
				off, err := NewRuleSet(approxDiffRules, CompilerOptions{}, base...)
				if err != nil {
					t.Fatal(err)
				}
				on, err := NewRuleSet(approxDiffRules, CompilerOptions{},
					append([]Option{WithApprox(), WithApproxStates(budget)}, base...)...)
				if err != nil {
					t.Fatal(err)
				}
				for _, data := range corpus {
					want, err1 := off.Scan(data)
					got, err2 := on.Scan(data)
					if err1 != nil || err2 != nil {
						t.Fatalf("errs %v / %v", err1, err2)
					}
					assertSameRuleMatches(t, data, got, want)
				}
			})
		}
	}
}

// TestApproxStreamingDifferential: the screened streaming paths — the
// pull-mode reader scan and the push-mode Stream (the scan service's
// session state machine) — must emit exactly the unscreened matches
// over a chunk-size × overlap-edge × -no-dfa matrix. The corpora plant
// matches across every chunk boundary, so a screening bug that
// mis-advances a resume position or drops a carry tail diverges here.
func TestApproxStreamingDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(555))
	for _, chunk := range []int{7, 64, 512} {
		corpus := approxDiffCorpus(r, chunk)
		// Overlap edges: barely enough for the longest witness, and a
		// generous tail deep inside every window.
		for _, overlap := range []int{16, 96} {
			for _, dfa := range []bool{false, true} {
				t.Run(fmt.Sprintf("chunk=%d/overlap=%d/dfa=%v", chunk, overlap, dfa), func(t *testing.T) {
					base := []Option{WithChunkSize(chunk), WithOverlap(overlap), WithWorkers(2)}
					if dfa {
						base = append(base, WithDFA())
					}
					off, err := NewRuleSet(approxDiffRules, CompilerOptions{}, base...)
					if err != nil {
						t.Fatal(err)
					}
					on, err := NewRuleSet(approxDiffRules, CompilerOptions{},
						append([]Option{WithApprox()}, base...)...)
					if err != nil {
						t.Fatal(err)
					}
					for _, data := range corpus {
						want := readerTranscript(t, off, data)
						got := readerTranscript(t, on, data)
						if !bytes.Equal(got, want) {
							t.Fatalf("reader chunk=%d overlap=%d dfa=%v diverged\n got %s\nwant %s",
								chunk, overlap, dfa, got, want)
						}
						wantPush := streamTranscript(t, off, data, chunk, overlap)
						gotPush := streamTranscript(t, on, data, chunk, overlap)
						if !bytes.Equal(gotPush, wantPush) {
							t.Fatalf("push-stream chunk=%d overlap=%d dfa=%v diverged\n got %s\nwant %s",
								chunk, overlap, dfa, gotPush, wantPush)
						}
					}
				})
			}
		}
	}
}

// TestApproxMulticoreDifferential: the per-chunk screening inside the
// scale-out engine must leave FindAll byte-identical, including
// matches that straddle the internal chunk boundaries and live only
// in the overlap extension.
func TestApproxMulticoreDifferential(t *testing.T) {
	pat := `ab[cd]{3}e`
	data := bytes.Repeat([]byte("."), 1<<15)
	for b := 1024; b+8 < len(data); b += 1024 {
		copy(data[b-3:], "abcdde") // straddles offset b
	}
	prog := MustCompile(pat)
	for _, cores := range []int{1, 4} {
		for _, budget := range []int{2, 256} {
			off, err := NewEngine(prog, WithCores(cores))
			if err != nil {
				t.Fatal(err)
			}
			on, err := NewEngine(prog, WithCores(cores), WithApprox(), WithApproxStates(budget))
			if err != nil {
				t.Fatal(err)
			}
			want, err1 := off.FindAll(data)
			got, err2 := on.FindAll(data)
			if err1 != nil || err2 != nil {
				t.Fatalf("errs %v / %v", err1, err2)
			}
			if len(got) != len(want) {
				t.Fatalf("cores=%d budget=%d: %d matches screened, %d unscreened", cores, budget, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cores=%d budget=%d: match %d = %v, want %v", cores, budget, i, got[i], want[i])
				}
			}
		}
	}
}

func assertSameRuleMatches(t *testing.T, data []byte, got, want []RuleMatches) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("on %d bytes: %d rules hit screened, %d unscreened", len(data), len(got), len(want))
	}
	for i := range want {
		if got[i].Rule != want[i].Rule || len(got[i].Matches) != len(want[i].Matches) {
			t.Fatalf("rule-hit %d diverged: %+v vs %+v", i, got[i], want[i])
		}
		for j := range want[i].Matches {
			if got[i].Matches[j] != want[i].Matches[j] {
				t.Fatalf("rule %d span %d = %v, want %v", got[i].Rule, j, got[i].Matches[j], want[i].Matches[j])
			}
		}
	}
}

// readerTranscript renders the pull-mode reader scan deterministically.
func readerTranscript(t *testing.T, rs *RuleSet, data []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if _, err := rs.ScanReader(bytes.NewReader(data), func(rule int, m Match, _ []byte) bool {
		fmt.Fprintf(&out, "%d:%d-%d ", rule, m.Start, m.End)
		return true
	}); err != nil {
		t.Fatalf("ScanReader: %v", err)
	}
	return out.Bytes()
}

// streamTranscript pushes the same data through the push-mode Stream in
// chunk-sized frames — the session path the scan service drives.
func streamTranscript(t *testing.T, rs *RuleSet, data []byte, chunk, overlap int) []byte {
	t.Helper()
	var out bytes.Buffer
	emit := func(rule int, m Match, _ []byte) bool {
		fmt.Fprintf(&out, "%d:%d-%d ", rule, m.Start, m.End)
		return true
	}
	st := rs.NewStream(overlap)
	ctx := context.Background()
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := st.PushCtx(ctx, data[off:end], emit); err != nil {
			t.Fatalf("PushCtx at %d: %v", off, err)
		}
	}
	if _, err := st.FinishCtx(ctx, emit); err != nil {
		t.Fatalf("FinishCtx: %v", err)
	}
	return out.Bytes()
}
