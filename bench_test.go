// Benchmarks regenerating the paper's evaluation artifacts with
// testing.B. One benchmark (family) exists per table and figure:
//
//	BenchmarkTable2*   — §7.1 Table 2, ISA advanced primitives
//	BenchmarkFig4*     — §7.2 Figure 4, execution time per suite/engine
//	BenchmarkFig5*     — §7.2 Figure 5, energy efficiency
//	BenchmarkScaling*  — §7.2 core scaling (with the utilisation model)
//	BenchmarkAblation* — design-choice ablations from DESIGN.md
//
// Benchmarks run at a reduced scale (a few rules, tens of kilobytes)
// so `go test -bench=.` stays quick; cmd/alvearebench runs the same
// harness at the paper's scale (200 rules, 1 MB, 10 cores). Modelled
// device time is attached to each benchmark via ReportMetric as
// "modeled-us/op".
package alveare_test

import (
	"testing"

	"alveare"
	"alveare/internal/anmlzoo"
	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/baseline/dpu"
	"alveare/internal/baseline/gpu"
	"alveare/internal/baseline/pikevm"
	"alveare/internal/bench"
	"alveare/internal/multicore"
	"alveare/internal/perf"
)

// benchScale is the reduced experiment scale used by the testing.B
// entry points.
var benchScale = bench.Options{Patterns: 5, DatasetSize: 32 << 10, Seed: 2024, Cores: perf.MaxCores}

// suitesForBench generates the three suites once.
func suitesForBench(b *testing.B) []*anmlzoo.Suite {
	b.Helper()
	return anmlzoo.All(benchScale.Patterns, benchScale.DatasetSize, benchScale.Seed)
}

// ---------------------------------------------------------------------
// Table 2

// BenchmarkTable2Compile measures the compiler producing the Table 2
// programs in both modes (the artifact itself is deterministic; the
// assertion-level reproduction lives in internal/bench.Table2).
func BenchmarkTable2Compile(b *testing.B) {
	res := []string{"[a-zA-Z]", "[DBEZX]{7}", ".{3,6}", "[^ ]*"}
	for _, mode := range []struct {
		name string
		opt  backend.Options
	}{{"advanced", backend.Options{}}, {"minimal", backend.Minimal()}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, re := range res {
					if _, err := backend.Compile(re, mode.opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTable2Execute measures the dynamic effect of the advanced
// primitives: executing each microbenchmark over a text block in both
// compilation modes.
func BenchmarkTable2Execute(b *testing.B) {
	const filler = "The Quick Brown Fox 0123456789 jumps. "
	data := make([]byte, 16<<10)
	for i := range data {
		data[i] = filler[i%len(filler)]
	}
	for _, re := range []string{"[a-zA-Z]", "[DBEZX]{7}", ".{3,6}", "[^ ]*"} {
		for _, mode := range []struct {
			name string
			opt  backend.Options
		}{{"advanced", backend.Options{}}, {"minimal", backend.Minimal()}} {
			p, err := backend.Compile(re, mode.opt)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(re+"/"+mode.name, func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					c, err := arch.NewCore(p, arch.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := c.FindAll(data, 0); err != nil {
						b.Fatal(err)
					}
					cycles = c.Stats().Cycles
				}
				b.ReportMetric(perf.AlveareTime(cycles)*1e6, "modeled-us/op")
				b.SetBytes(int64(len(data)))
			})
		}
	}
}

// ---------------------------------------------------------------------
// Figure 4 (execution time) — one sub-benchmark per suite and engine.

func BenchmarkFig4Alveare1(b *testing.B) {
	benchAlveare(b, 1)
}

func BenchmarkFig4Alveare10(b *testing.B) {
	benchAlveare(b, perf.MaxCores)
}

func benchAlveare(b *testing.B, cores int) {
	for _, suite := range suitesForBench(b) {
		progs := compileSuite(b, suite)
		b.Run(suite.Name, func(b *testing.B) {
			var wall int64
			for i := 0; i < b.N; i++ {
				wall = 0
				for _, p := range progs {
					eng, err := multicore.New(p, cores, arch.DefaultConfig(), 0)
					if err != nil {
						b.Fatal(err)
					}
					res, err := eng.Run(suite.Dataset)
					if err != nil {
						continue // pathological rule: skipped, as in the harness
					}
					wall += res.WallCycles
				}
			}
			avg := perf.AlveareTime(wall) / float64(len(progs))
			b.ReportMetric(avg*1e6, "modeled-us/op")
			b.SetBytes(int64(len(suite.Dataset)) * int64(len(progs)))
		})
	}
}

func BenchmarkFig4RE2A53(b *testing.B) {
	for _, suite := range suitesForBench(b) {
		b.Run(suite.Name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				secs = 0
				for _, re := range suite.Patterns {
					p, err := pikevm.Compile(re)
					if err != nil {
						b.Fatal(err)
					}
					p.Count(suite.Dataset)
					secs += perf.A53Time(p.Steps)
				}
			}
			b.ReportMetric(secs/float64(len(suite.Patterns))*1e6, "modeled-us/op")
			b.SetBytes(int64(len(suite.Dataset)) * int64(len(suite.Patterns)))
		})
	}
}

func BenchmarkFig4DPU(b *testing.B) {
	for _, suite := range suitesForBench(b) {
		b.Run(suite.Name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				secs = 0
				for _, re := range suite.Patterns {
					e, err := dpu.New(re, dpu.DefaultConfig())
					if err != nil {
						b.Fatal(err)
					}
					secs += e.Process(suite.Dataset).DeviceSeconds
				}
			}
			b.ReportMetric(secs/float64(len(suite.Patterns))*1e6, "modeled-us/op")
			b.SetBytes(int64(len(suite.Dataset)) * int64(len(suite.Patterns)))
		})
	}
}

func BenchmarkFig4GPU(b *testing.B) {
	for _, suite := range suitesForBench(b) {
		b.Run(suite.Name, func(b *testing.B) {
			infCfg, obatCfg := gpu.INFAntConfig(), gpu.OBATConfig()
			var tInf, tObat float64
			for i := 0; i < b.N; i++ {
				tInf, tObat = 0, 0
				for _, re := range suite.Patterns {
					e, err := gpu.New(re, obatCfg)
					if err != nil {
						b.Fatal(err)
					}
					w := e.Measure(suite.Dataset)
					tInf += infCfg.Model(w).DeviceSeconds
					tObat += obatCfg.Model(w).DeviceSeconds
				}
			}
			n := float64(len(suite.Patterns))
			b.ReportMetric(tInf/n*1e6, "modeled-infant-us/op")
			b.ReportMetric(tObat/n*1e6, "modeled-obat-us/op")
			b.SetBytes(int64(len(suite.Dataset)) * int64(len(suite.Patterns)))
		})
	}
}

// ---------------------------------------------------------------------
// Figure 5 (energy efficiency): the KPI derives from the Figure 4
// measurement and the power model; this benchmark runs the derivation
// end to end on one suite and reports the efficiencies.

func BenchmarkFig5EnergyEff(b *testing.B) {
	opt := benchScale
	opt.Patterns = 3
	opt.DatasetSize = 16 << 10
	var rs []bench.SuiteResult
	var err error
	for i := 0; i < b.N; i++ {
		rs, err = bench.Figure4(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range rs {
		for _, e := range sr.Engines {
			if e.Engine == "ALVEARE-10" || e.Engine == "DPU" {
				b.ReportMetric(e.EnergyEff, "eff-"+sr.Suite+"-"+e.Engine)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Scaling (§7.2 text): 1..10-core speedup on one suite.

func BenchmarkScaling(b *testing.B) {
	suite := anmlzoo.PowerEN(4, 32<<10, benchScale.Seed)
	progs := compileSuite(b, suite)
	for _, cores := range []int{1, 2, 4, perf.MaxCores} {
		b.Run(label("cores", cores), func(b *testing.B) {
			var wall int64
			for i := 0; i < b.N; i++ {
				wall = 0
				for _, p := range progs {
					eng, err := multicore.New(p, cores, arch.DefaultConfig(), 0)
					if err != nil {
						b.Fatal(err)
					}
					res, err := eng.Run(suite.Dataset)
					if err != nil {
						continue
					}
					wall += res.WallCycles
				}
			}
			lut, bram := perf.Utilization(cores)
			b.ReportMetric(perf.AlveareTime(wall)*1e6, "modeled-us/op")
			b.ReportMetric(lut, "lut-pct")
			b.ReportMetric(bram, "bram-pct")
		})
	}
}

// ---------------------------------------------------------------------
// Ablation: design choices (fusion, RANGE, NOT, counters, CU width).

func BenchmarkAblation(b *testing.B) {
	suite := anmlzoo.PowerEN(4, 16<<10, benchScale.Seed)
	configs := []struct {
		name string
		opt  backend.Options
		cus  int
	}{
		{"full", backend.Options{}, 4},
		{"no-fusion", backend.Options{NoFusion: true}, 4},
		{"minimal-compiler", backend.Minimal(), 4},
		{"cu1", backend.Options{}, 1},
		{"cu2", backend.Options{}, 2},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = 0
				for _, re := range suite.Patterns {
					p, err := backend.Compile(re, cfg.opt)
					if err != nil {
						b.Fatal(err)
					}
					acfg := arch.DefaultConfig()
					acfg.ComputeUnits = cfg.cus
					c, err := arch.NewCore(p, acfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := c.FindAll(suite.Dataset, 0); err != nil {
						continue
					}
					cycles += c.Stats().Cycles
				}
			}
			b.ReportMetric(float64(cycles)/float64(len(suite.Patterns)), "cycles/rule")
		})
	}
}

// ---------------------------------------------------------------------
// Library-level microbenchmarks: the public API's raw throughput.

func BenchmarkEngineFindLiteral(b *testing.B) {
	eng, err := alveare.NewEngine(alveare.MustCompile("needle"))
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64<<10)
	copy(data[len(data)-6:], "needle")
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := eng.Find(data); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkEngineFindClassQuant(b *testing.B) {
	eng, err := alveare.NewEngine(alveare.MustCompile(`[a-z0-9]{8,16}@[a-z]+`))
	if err != nil {
		b.Fatal(err)
	}
	data := []byte("x")
	for len(data) < 32<<10 {
		data = append(data, " lorem ipsum dolor sit amet user12345@example"...)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.FindAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsOverhead measures the execution core with the
// detailed observability counters off (the default; the hot loop pays
// one nil check per sample site) and on. The disabled timing is the
// one `make benchguard` holds to the committed baseline within 3%.
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			benchMetricsWorkload(b, mode.enabled)
		})
	}
}

// benchMetricsWorkload is the shared hot-path workload: a class/
// quantifier pattern with real speculation traffic over 64 KiB, on one
// reused core. benchguard_test.go measures the same function.
func benchMetricsWorkload(b *testing.B, enabled bool) {
	b.Helper()
	p, err := backend.Compile(`[a-z0-9]{8,16}@[a-z]+`, backend.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.DefaultConfig()
	cfg.Metrics = enabled
	c, err := arch.NewCore(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	data := []byte("x")
	for len(data) < 64<<10 {
		data = append(data, " lorem ipsum dolor sit amet user12345@example"...)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if _, err := c.FindAll(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func compileSuite(b *testing.B, suite *anmlzoo.Suite) []*alveare.Program {
	b.Helper()
	var progs []*alveare.Program
	for _, re := range suite.Patterns {
		p, err := backend.Compile(re, backend.Options{})
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

func label(k string, v int) string {
	return k + "-" + string(rune('0'+v/10)) + string(rune('0'+v%10))
}
