package alveare

import (
	"testing"
)

// FuzzLazyDFA fuzzes (pattern, input, cacheSize) and cross-checks the
// hybrid fast path against the exact slow path: the lazy-DFA gate (and,
// through tiny cache sizes, its clear-on-full flushes and thrash bail)
// must never change FindAll's spans or its error outcome. Any
// divergence is a real bug in the gate — the DFA only answers
// existence, so the spans must be byte-identical by construction.
func FuzzLazyDFA(f *testing.F) {
	f.Add("a+b", "aabab aab", 0)
	f.Add("a[ab]{10}", "abbabababababbbaaab", 4)
	f.Add("(foo|foobar)+", "foofoobarfoo", 16)
	f.Add("[^x]{3}y", "abcy xxy dddy", 5)
	f.Add("a*", "bbaabbb", 4)
	f.Add("q(w|e)*?r", "qwer qweer qr", 0)
	f.Add("[a-f]{2,6}", "xxfadebeadxx", 7)
	f.Add("", "empty pattern", 4)
	f.Fuzz(func(t *testing.T, pat, input string, cacheSize int) {
		if len(pat) > 40 || len(input) > 1<<12 {
			t.Skip()
		}
		prog, err := Compile(pat)
		if err != nil {
			t.Skip() // outside the supported subset
		}
		slow, err := NewEngine(prog)
		if err != nil {
			t.Skip()
		}
		cache := cacheSize
		if cache < 0 {
			cache = -cache
		}
		cache = cache % 64 // 0 keeps the default; tiny values force flushes/bails
		fast, err := NewEngine(prog, WithDFA(), WithDFACache(cache))
		if err != nil {
			t.Fatalf("fast engine for %q: %v", pat, err)
		}
		data := []byte(input)
		want, errSlow := slow.FindAll(data)
		got, errFast := fast.FindAll(data)
		if (errSlow == nil) != (errFast == nil) {
			t.Fatalf("%q cache=%d on %q: error outcome diverged: slow %v fast %v",
				pat, cache, input, errSlow, errFast)
		}
		if errSlow != nil {
			return // both tripped the same guardrail (budget/stack)
		}
		if len(got) != len(want) {
			t.Fatalf("%q cache=%d on %q:\nfast %v\nslow %v", pat, cache, input, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q cache=%d on %q: match %d = %v, slow %v", pat, cache, input, i, got[i], want[i])
			}
		}
	})
}
