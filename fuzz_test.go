package alveare

import (
	"fmt"
	"math/rand"
	"testing"

	"alveare/internal/baseline/backtrack"
	"alveare/internal/baseline/pikevm"
)

// TestByteLevelDifferential fuzzes the full pipeline on binary-oriented
// patterns (raw high bytes, \xHH escapes, negated classes over the full
// 0..255 alphabet) where Go's rune-oriented regexp cannot act as the
// oracle; the from-scratch Pike VM and the backtracker — two
// independent byte-oriented engines — serve instead.
func TestByteLevelDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	genPattern := func() string {
		atoms := []string{
			fmt.Sprintf("\\x%02x", r.Intn(256)),
			fmt.Sprintf("[\\x%02x-\\x%02x]", 0x40+r.Intn(32), 0x80+r.Intn(64)),
			fmt.Sprintf("[^\\x%02x]", r.Intn(256)),
			"\\x00", "\\xff", ".", "[\\x80-\\xff]",
		}
		quants := []string{"", "", "*", "+", "?", "{2}", "{1,3}", "+?"}
		out := ""
		for i := 0; i < 1+r.Intn(3); i++ {
			out += atoms[r.Intn(len(atoms))] + quants[r.Intn(len(quants))]
		}
		return out
	}
	for i := 0; i < 100; i++ {
		pat := genPattern()
		vm, err := pikevm.Compile(pat)
		if err != nil {
			t.Fatalf("pikevm %q: %v", pat, err)
		}
		bt, err := backtrack.New(pat)
		if err != nil {
			t.Fatalf("backtrack %q: %v", pat, err)
		}
		eng, err := NewEngine(MustCompile(pat))
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		for j := 0; j < 30; j++ {
			buf := make([]byte, r.Intn(24))
			for k := range buf {
				buf[k] = byte(r.Intn(256))
			}
			bm, bok, err := bt.Find(buf)
			if err != nil {
				t.Fatal(err)
			}
			vmM, vmOK := vm.Find(buf)
			am, aok, err := eng.Find(buf)
			if err != nil {
				t.Fatalf("%q on %x: %v", pat, buf, err)
			}
			if bok != vmOK || (bok && (bm.Start != vmM.Start || bm.End != vmM.End)) {
				t.Fatalf("oracles disagree on %q / %x: backtrack %v/%v pikevm %v/%v",
					pat, buf, bm, bok, vmM, vmOK)
			}
			if aok != bok {
				t.Errorf("%q on %x: alveare ok=%v oracle ok=%v", pat, buf, aok, bok)
				continue
			}
			if aok && (am.Start != bm.Start || am.End != bm.End) {
				t.Errorf("%q on %x: alveare [%d,%d) oracle [%d,%d)",
					pat, buf, am.Start, am.End, bm.Start, bm.End)
			}
		}
	}
}

// TestDeepNestingFuzz drives deeply nested random patterns through the
// engine against the backtracking oracle (stressing the speculation
// stack discipline).
func TestDeepNestingFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth == 0 {
			return string(rune('a' + r.Intn(3)))
		}
		switch r.Intn(4) {
		case 0:
			return "(" + gen(depth-1) + "|" + gen(depth-1) + ")"
		case 1:
			return "(" + gen(depth-1) + ")" + []string{"*", "+", "?", "{1,2}", "{0,2}?"}[r.Intn(5)]
		case 2:
			return gen(depth-1) + gen(depth-1)
		default:
			return gen(depth - 1)
		}
	}
	for i := 0; i < 80; i++ {
		pat := gen(4)
		bt, err := backtrack.New(pat)
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		eng, err := NewEngine(MustCompile(pat))
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		for j := 0; j < 20; j++ {
			buf := make([]byte, r.Intn(14))
			for k := range buf {
				buf[k] = byte('a' + r.Intn(4))
			}
			bm, bok, err := bt.Find(buf)
			if err != nil {
				continue // oracle budget blown: skip this input
			}
			am, aok, err := eng.Find(buf)
			if err != nil {
				t.Fatalf("%q on %q: %v", pat, buf, err)
			}
			if aok != bok || (aok && am != Match(bm)) {
				t.Errorf("%q on %q: alveare %v/%v oracle %v/%v", pat, buf, am, aok, bm, bok)
			}
		}
	}
}
