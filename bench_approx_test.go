// Admission-stage benchmarks: the over-approximating filter
// (internal/approx) screening ANMLZoo-style low-match traffic ahead of
// the exact engine and the hybrid fast path. The headline workload is
// the same DPI steady state as the fast-path benchmarks — witness-free
// background traffic where almost nothing fires — which is exactly
// where a never-miss first stage earns its keep: a screened-out window
// costs one byte-table walk instead of a scan. The committed snapshot
// BENCH_009.json records the before/after numbers (see
// TestBenchApproxSnapshot); `make benchguard` caps the stage's
// overhead on high-match traffic, where screening can skip nothing, at
// the same 3% threshold as the other hot paths.
package alveare_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"alveare"
	"alveare/internal/anmlzoo"
	"alveare/internal/approx"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// approxBenchPatterns is the rule-count the admission stage is sized
// for: at 10 rules the union automaton still determinizes to a deep
// truncation under the 256-state budget, so the filter discriminates
// instead of degrading toward admit-all.
const approxBenchPatterns = 10

// BenchmarkApproxScanReader measures RuleSet.ScanReader on low-match
// traffic with the admission stage off and on (both on top of the
// default hybrid fast path). The off/on ratio here is the library-level
// speedup BENCH_009.json records at full scale.
func BenchmarkApproxScanReader(b *testing.B) {
	for _, name := range anmlzoo.Names() {
		s, err := anmlzoo.LowMatch(name, approxBenchPatterns, 64<<10, benchScale.Seed)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			opts []alveare.Option
		}{
			{"off", []alveare.Option{alveare.WithDFA()}},
			{"on", []alveare.Option{alveare.WithDFA(), alveare.WithApprox()}},
		} {
			b.Run(s.Name+"/"+mode.name, func(b *testing.B) {
				rs, err := alveare.NewRuleSet(s.Patterns, alveare.CompilerOptions{}, mode.opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(s.Dataset)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := scanOnce(rs, s.Dataset); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchApproxOverheadWorkload is the wall-clock workload the benchmark
// guard holds to its committed baseline: the admission filter's
// byte-table walk over a full window. On high-match traffic the filter
// can screen nothing — every window is walked and then scanned exactly
// anyway — so the walk is pure overhead, and a full witness-free walk
// is its upper bound (real high-match windows early-exit at the first
// admitting state). The guard gates the walk itself rather than an
// end-to-end high-match scan because the latter is dominated by
// exact-engine time: a several-fold regression in the walk would hide
// inside its run-to-run noise, while here the 3% tolerance bites.
func benchApproxOverheadWorkload(b *testing.B) {
	b.Helper()
	s, err := anmlzoo.LowMatch("PowerEN", approxBenchPatterns, 32<<10, benchScale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	fl := approx.Build(s.Patterns, 0)
	if fl.AdmitAll() {
		b.Fatal("admission filter degraded to admit-all; the workload would measure nothing")
	}
	b.SetBytes(int64(len(s.Dataset)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchApproxSink = fl.Suspect(s.Dataset)
	}
}

// benchApproxSink keeps the walk's result live under the optimizer.
var benchApproxSink bool

// ---------------------------------------------------------------------
// BENCH_009.json: the committed before/after snapshot.

// benchApproxSnapshotFile is the PR's performance record: library-level
// ScanReader throughput and the admission stage's screening stats per
// suite, plus end-to-end scan-service throughput and p99 with the
// stage off and on — regenerated with ALVEARE_BENCH_SNAPSHOT=update
// (wall-clock, machine-specific, same caveat as the benchguard
// baseline).
const benchApproxSnapshotFile = "BENCH_009.json"

type benchApproxFilterShape struct {
	States   int  `json:"states"`
	Depth    int  `json:"depth"`
	AdmitAll bool `json:"admit_all"`
}

type benchApproxScreening struct {
	ScreenedWindows int64   `json:"screened_windows"`
	AdmittedWindows int64   `json:"admitted_windows"`
	ExactHitWindows int64   `json:"exacthit_windows"`
	Precision       float64 `json:"precision"`
}

type benchApproxSuiteResult struct {
	Suite        string                 `json:"suite"`
	Patterns     int                    `json:"patterns"`
	DatasetBytes int                    `json:"dataset_bytes"`
	Off          benchPathResult        `json:"off"`
	On           benchPathResult        `json:"on"`
	Speedup      float64                `json:"speedup"`
	Filter       benchApproxFilterShape `json:"filter"`
	Screening    benchApproxScreening   `json:"screening"`
}

type benchApproxServiceResult struct {
	Mode     string  `json:"mode"`
	Scans    int     `json:"scans"`
	Seconds  float64 `json:"seconds"`
	MBPerSec float64 `json:"mb_per_sec"`
	P99Us    int64   `json:"p99_us"`
}

type benchApproxSnapshot struct {
	Schema         int                        `json:"schema"`
	Workload       string                     `json:"workload"`
	Suites         []benchApproxSuiteResult   `json:"suites"`
	Service        []benchApproxServiceResult `json:"service"`
	ServiceSpeedup float64                    `json:"service_speedup"`
}

// TestBenchApproxSnapshot regenerates (ALVEARE_BENCH_SNAPSHOT=update)
// or checks (ALVEARE_BENCH_SNAPSHOT=1) the committed BENCH_009.json.
// The check asserts the snapshot's claims, not this machine's clock:
// the recorded end-to-end service speedup on low-match traffic must be
// >= 2x, at least one suite must record >= 2x at the library level,
// and the screening stats must show the filter actually ran and its
// counters are internally consistent (admitted <= screened, exact
// hits <= admitted).
func TestBenchApproxSnapshot(t *testing.T) {
	mode := os.Getenv("ALVEARE_BENCH_SNAPSHOT")
	if mode == "" {
		t.Skip("wall-clock snapshot; run with ALVEARE_BENCH_SNAPSHOT=1 (check) or =update (regenerate)")
	}

	if mode == "update" {
		snap := benchApproxSnapshot{Schema: 1,
			Workload: fmt.Sprintf("anmlzoo.LowMatch(%d rules, 512 KiB, seed 2024)", approxBenchPatterns)}
		for _, name := range anmlzoo.Names() {
			s, err := anmlzoo.LowMatch(name, approxBenchPatterns, 512<<10, 2024)
			if err != nil {
				t.Fatal(err)
			}
			off := measurePath(t, s.Patterns, s.Dataset, alveare.WithDFA())
			on := measurePath(t, s.Patterns, s.Dataset, alveare.WithDFA(), alveare.WithApprox())
			onRS, err := alveare.NewRuleSet(s.Patterns, alveare.CompilerOptions{},
				alveare.WithDFA(), alveare.WithApprox())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := scanOnce(onRS, s.Dataset); err != nil {
				t.Fatal(err)
			}
			as := onRS.ApproxStats()
			f := onRS.ApproxFilter()
			precision := 1.0
			if as.AdmittedWindows > 0 {
				precision = float64(as.ExactHitWindows) / float64(as.AdmittedWindows)
			}
			snap.Suites = append(snap.Suites, benchApproxSuiteResult{
				Suite: s.Name, Patterns: len(s.Patterns), DatasetBytes: len(s.Dataset),
				Off: off, On: on, Speedup: off.Seconds / on.Seconds,
				Filter: benchApproxFilterShape{States: f.States(), Depth: f.Depth(), AdmitAll: f.AdmitAll()},
				Screening: benchApproxScreening{
					ScreenedWindows: as.ScreenedWindows, AdmittedWindows: as.AdmittedWindows,
					ExactHitWindows: as.ExactHitWindows, Precision: precision,
				},
			})
		}
		snap.Service = measureApproxService(t)
		snap.ServiceSpeedup = snap.Service[0].Seconds / snap.Service[1].Seconds
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&snap); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchApproxSnapshotFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, sr := range snap.Suites {
			t.Logf("%s: %.2f -> %.2f MB/s (%.1fx), filter %d states depth %d, screened %d admitted %d",
				sr.Suite, sr.Off.MBPerSec, sr.On.MBPerSec, sr.Speedup,
				sr.Filter.States, sr.Filter.Depth, sr.Screening.ScreenedWindows, sr.Screening.AdmittedWindows)
		}
		t.Logf("service: %.2f -> %.2f MB/s (%.1fx), p99 %dus -> %dus",
			snap.Service[0].MBPerSec, snap.Service[1].MBPerSec, snap.ServiceSpeedup,
			snap.Service[0].P99Us, snap.Service[1].P99Us)
		return
	}

	raw, err := os.ReadFile(benchApproxSnapshotFile)
	if err != nil {
		t.Fatalf("%v (regenerate with ALVEARE_BENCH_SNAPSHOT=update)", err)
	}
	var snap benchApproxSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Suites) != 3 || len(snap.Service) != 2 {
		t.Fatalf("snapshot shape: %d suites, %d service rows; want 3 and 2", len(snap.Suites), len(snap.Service))
	}
	best := 0.0
	for _, sr := range snap.Suites {
		sc := sr.Screening
		if sc.ScreenedWindows == 0 {
			t.Errorf("%s: no windows screened; the snapshot measured the wrong path", sr.Suite)
		}
		if sc.AdmittedWindows > sc.ScreenedWindows || sc.ExactHitWindows > sc.AdmittedWindows {
			t.Errorf("%s: inconsistent screening counters %+v", sr.Suite, sc)
		}
		if sr.Filter.AdmitAll {
			t.Errorf("%s: filter degraded to admit-all at this rule count", sr.Suite)
		}
		if sr.Speedup > best {
			best = sr.Speedup
		}
	}
	if best < 2 {
		t.Errorf("best recorded library-level speedup %.2fx, want >= 2x", best)
	}
	if fmt.Sprint(snap.Service[0].Mode, snap.Service[1].Mode) != "offon" {
		t.Fatalf("service rows out of order: %+v", snap.Service)
	}
	if snap.ServiceSpeedup < 2 {
		t.Errorf("recorded service speedup %.2fx on low-match traffic, want >= 2x", snap.ServiceSpeedup)
	}
	for _, sv := range snap.Service {
		if sv.P99Us <= 0 {
			t.Errorf("service %s: no p99 recorded", sv.Mode)
		}
	}
}

// measureApproxService measures end-to-end scan-service throughput and
// p99 with the admission stage off and on: one client, sequential
// scans of a low-match payload through a loopback server running the
// default fast path in both modes — the off row is exactly what
// `alvearesrv -no-approx` serves.
func measureApproxService(t *testing.T) []benchApproxServiceResult {
	t.Helper()
	s, err := anmlzoo.LowMatch("PowerEN", approxBenchPatterns, 128<<10, 2024)
	if err != nil {
		t.Fatal(err)
	}
	var out []benchApproxServiceResult
	for _, mode := range []struct {
		name     string
		noApprox bool
	}{{"off", true}, {"on", false}} {
		srv, err := server.New(server.Config{Rules: s.Patterns, Workers: 2, NoApprox: mode.noApprox})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		c, err := client.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		const scans = 8
		start := time.Now()
		for i := 0; i < scans; i++ {
			if _, err := c.Scan(s.Dataset); err != nil {
				t.Fatal(err)
			}
		}
		secs := time.Since(start).Seconds()
		stats, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		p99 := int64(0)
		if m, found := stats.Find("server.scan.latency_us"); found {
			p99 = int64(m.Quantile(0.99))
		}
		c.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		out = append(out, benchApproxServiceResult{
			Mode: mode.name, Scans: scans, Seconds: secs,
			MBPerSec: float64(scans*len(s.Dataset)) / secs / (1 << 20),
			P99Us:    p99,
		})
	}
	return out
}
