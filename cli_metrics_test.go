package alveare_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The -metrics snapshots are a versioned, deterministic output contract:
// stable key order, pinned schema number, byte-identical across replays
// of the same input. These golden tests pin that contract for every
// tool. Regenerate with:
//
//	go test -run TestCLIMetricsGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden -metrics snapshots")

// metricsRun invokes one tool with -metrics FILE plus args and returns
// the snapshot bytes, running the tool twice to assert replay
// determinism at the process level.
func metricsRun(t *testing.T, name, stdin string, args ...string) []byte {
	t.Helper()
	capture := func() []byte {
		out := filepath.Join(t.TempDir(), "metrics.json")
		full := append([]string{"-metrics", out}, args...)
		if stdout, code := run(t, name, stdin, full...); code > 1 {
			t.Fatalf("%s %v: exit %d\n%s", name, full, code, stdout)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := capture()
	if second := capture(); !bytes.Equal(first, second) {
		t.Fatalf("%s -metrics not replay-deterministic:\n%s\nvs\n%s", name, first, second)
	}
	return first
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	// Every snapshot carries the schema version; a bump forces a
	// deliberate golden regeneration.
	if !bytes.Contains(got, []byte(`"schema":1`)) {
		t.Fatalf("snapshot missing schema pin:\n%s", got)
	}
	var doc struct {
		Schema  int `json:"schema"`
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, got)
	}
	for i := 1; i < len(doc.Metrics); i++ {
		if doc.Metrics[i-1].Name > doc.Metrics[i].Name {
			t.Fatalf("snapshot keys not sorted: %q > %q", doc.Metrics[i-1].Name, doc.Metrics[i].Name)
		}
	}
	golden := filepath.Join("testdata", "metrics_"+name+".json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestCLIMetricsGolden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s snapshot drifted from golden:\n got: %s\nwant: %s", name, got, want)
	}
}

func TestCLIMetricsGolden(t *testing.T) {
	t.Run("alvearec", func(t *testing.T) {
		checkGolden(t, "alvearec", metricsRun(t, "alvearec", "", "([a-z0-9]+)@acme"))
	})
	t.Run("alvearerun", func(t *testing.T) {
		stdin := strings.Repeat("log in bob@acme out 404 eve@acme done\n", 20)
		checkGolden(t, "alvearerun", metricsRun(t, "alvearerun", stdin,
			"-all", "-q", "[a-z]+@acme", "-"))
	})
	t.Run("alvearescan", func(t *testing.T) {
		dir := t.TempDir()
		rules := filepath.Join(dir, "rules.txt")
		if err := os.WriteFile(rules, []byte("[a-z]+@acme\n[0-9]{3}\nneedle\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		stdin := strings.Repeat("log in bob@acme out 404 needle done\n", 20)
		// -workers 1 keeps the per-worker occupancy breakdown
		// deterministic; totals replay regardless of the pool width.
		checkGolden(t, "alvearescan", metricsRun(t, "alvearescan", stdin,
			"-rules", rules, "-workers", "1", "-q", "-"))
	})
	t.Run("alvearegen", func(t *testing.T) {
		checkGolden(t, "alvearegen", metricsRun(t, "alvearegen", "",
			"-suite", "snort", "-patterns", "5", "-size", "4096", "-seed", "2024", "-o", t.TempDir()))
	})
	t.Run("alvearebench", func(t *testing.T) {
		checkGolden(t, "alvearebench", metricsRun(t, "alvearebench", "", "-exp", "table2", "-v=false"))
	})
}

// TestCLIScanChromeTrace smoke-parses the -trace output: a valid
// Chrome trace-event document with the speculation timeline in it.
func TestCLIScanChromeTrace(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte("(a|ab)+c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	traceFile := filepath.Join(dir, "trace.json")
	out, code := run(t, "alvearescan", "xx ababc yy abc zz",
		"-rules", rules, "-q", "-trace", traceFile, "-")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	kinds := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		kinds[ev.Name] = true
	}
	for _, want := range []string{"exec", "attempt", "spec-push"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (have %v)", want, kinds)
		}
	}
	if doc.OtherData["clock"] == nil {
		t.Error("trace missing otherData.clock")
	}
}
