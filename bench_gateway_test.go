// Fleet benchmarks for the alvearegw gateway: aggregate throughput
// routed across 1 vs 3 shards, and the degradation envelope with one
// of three shards killed. The committed snapshot BENCH_007.json
// records the numbers (see TestBenchGatewaySnapshot).
//
// Each shard carries a fixed 2ms service-time floor (server.ScanHook),
// modelling per-shard service capacity: in production every shard is
// its own machine, and what this benchmark measures is the GATEWAY —
// whether consistent-hash routing multiplies fleet capacity and how
// gracefully it degrades when a shard dies — not the regex engine,
// whose own numbers are BENCH_006.json. The floor makes the result
// meaningful on a single-core CI box, where three in-process
// CPU-bound shards could never show real scaling.
package alveare_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"alveare/internal/anmlzoo"
	"alveare/internal/faultinject/netchaos"
	"alveare/internal/gateway"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// benchGatewayFile is the committed fleet-throughput snapshot,
// regenerated with ALVEARE_BENCH_SNAPSHOT=update and shape-checked
// with ALVEARE_BENCH_SNAPSHOT=1 (wall-clock, machine-specific, same
// caveat as BENCH_006.json).
const benchGatewayFile = "BENCH_007.json"

type benchFleetResult struct {
	Mode        string  `json:"mode"`
	Shards      int     `json:"shards"`
	LiveShards  int     `json:"live_shards"`
	Tenants     int     `json:"tenants"`
	Scans       int64   `json:"scans"`
	Shed        int64   `json:"shed"`
	Seconds     float64 `json:"seconds"`
	ScansPerSec float64 `json:"scans_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
	P50us       int64   `json:"p50_us"`
	P99us       int64   `json:"p99_us"`
}

type benchGatewaySnapshot struct {
	Schema   int                `json:"schema"`
	Workload string             `json:"workload"`
	Fleet    []benchFleetResult `json:"fleet"`
	// Speedup3v1 is the headline claim: aggregate fleet throughput at
	// 3 shards over 1 shard, same offered load.
	Speedup3v1 float64 `json:"speedup_3_shards_vs_1"`
	// KilledThroughput / KilledP99 bound the degradation envelope with
	// one of three shards dead: throughput as a fraction of the healthy
	// 3-shard fleet, p99 as a multiple of it.
	KilledThroughput float64 `json:"killed_vs_3_shards_throughput"`
	KilledP99        float64 `json:"killed_vs_3_shards_p99"`
}

const (
	benchFleetTenants = 12
	benchFleetFloor   = 2 * time.Millisecond
	benchFleetWorkers = 2 // per shard; capacity = workers / floor
)

// measureFleet runs one fleet configuration: `shards` replicas behind
// a gateway, every tenant driving 2 closed-loop connections, and (when
// kill is set) one shard severed before the measured window so the
// numbers show the rerouted steady state, not the detection transient.
func measureFleet(t *testing.T, mode string, shards int, kill bool) benchFleetResult {
	t.Helper()
	suite, err := anmlzoo.LowMatch("PowerEN", 10, 8<<10, 2024)
	if err != nil {
		t.Fatal(err)
	}

	var addrs []string
	var killProxy *netchaos.Proxy
	for i := 0; i < shards; i++ {
		srv, err := server.New(server.Config{
			Rules:    suite.Patterns,
			Workers:  benchFleetWorkers,
			ScanHook: func() { time.Sleep(benchFleetFloor) },
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addr := ln.Addr().String()
		if kill && i == 1 {
			p, err := netchaos.New(addr, 2024, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { p.Close() })
			killProxy, addr = p, p.Addr()
		}
		addrs = append(addrs, addr)
	}

	var tenants []gateway.Tenant
	for i := 0; i < benchFleetTenants; i++ {
		tenants = append(tenants, gateway.Tenant{Name: fmt.Sprintf("t%d", i), Weight: 1, QueueDepth: 64})
	}
	gw, err := gateway.New(gateway.Config{
		Backends:        addrs,
		Tenants:         tenants,
		DefaultTenant:   "t0",
		Workers:         4 * benchFleetTenants, // jobs block on shard RTTs, not CPU
		BreakerFailures: 2,
		BreakerCooldown: 300 * time.Millisecond,
		ShardTimeout:    5 * time.Second,
		Seed:            2024,
	})
	if err != nil {
		t.Fatal(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(gln)
	t.Cleanup(func() { gw.Close() })
	gaddr := gln.Addr().String()

	// Kill before warmup: the breakers open during it, so the measured
	// window sees the rerouted fleet.
	if kill {
		killProxy.SetDown(true)
	}

	const connsPerTenant = 2
	type slot struct {
		c    *client.Client
		lats []time.Duration
		ok   int64
		shed int64
	}
	var slots []*slot
	for _, tn := range tenants {
		for k := 0; k < connsPerTenant; k++ {
			c := client.New(gaddr, client.WithTenant(tn.Name, "default"))
			t.Cleanup(func() { c.Close() })
			slots = append(slots, &slot{c: c})
		}
	}

	run := func(d time.Duration, record bool) {
		var wg sync.WaitGroup
		deadline := time.Now().Add(d)
		errCh := make(chan error, len(slots))
		for _, s := range slots {
			wg.Add(1)
			go func(s *slot) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					t0 := time.Now()
					_, err := s.c.Scan(suite.Dataset)
					switch {
					case err == nil:
						if record {
							s.lats = append(s.lats, time.Since(t0))
							s.ok++
						}
					case errors.Is(err, client.ErrShed):
						if record {
							s.shed++
						}
					default:
						errCh <- fmt.Errorf("%s: scan: %w", mode, err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}
	run(400*time.Millisecond, false) // warmup: connections up, breakers settled
	start := time.Now()
	run(1200*time.Millisecond, true)
	elapsed := time.Since(start).Seconds()

	res := benchFleetResult{
		Mode: mode, Shards: shards, LiveShards: shards,
		Tenants: benchFleetTenants, Seconds: elapsed,
	}
	if kill {
		res.LiveShards--
	}
	var all []time.Duration
	for _, s := range slots {
		res.Scans += s.ok
		res.Shed += s.shed
		all = append(all, s.lats...)
	}
	if res.Scans == 0 {
		t.Fatalf("%s: no scans completed", mode)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) int64 {
		return all[int(q*float64(len(all)-1))].Microseconds()
	}
	res.P50us, res.P99us = quantile(0.50), quantile(0.99)
	res.ScansPerSec = float64(res.Scans) / elapsed
	res.MBPerSec = res.ScansPerSec * float64(len(suite.Dataset)) / (1 << 20)
	return res
}

// TestBenchGatewaySnapshot regenerates (ALVEARE_BENCH_SNAPSHOT=update)
// or checks (ALVEARE_BENCH_SNAPSHOT=1) the committed BENCH_007.json.
// The check asserts the snapshot's claims, not this machine's clock:
// >= 2x aggregate throughput at 3 shards vs 1, and with one of three
// shards killed, >= 40% of the healthy fleet's throughput at a p99 no
// worse than 10x the healthy fleet's.
func TestBenchGatewaySnapshot(t *testing.T) {
	mode := os.Getenv("ALVEARE_BENCH_SNAPSHOT")
	if mode == "" {
		t.Skip("wall-clock snapshot; run with ALVEARE_BENCH_SNAPSHOT=1 (check) or =update (regenerate)")
	}

	if mode == "update" {
		snap := benchGatewaySnapshot{
			Schema: 1,
			Workload: fmt.Sprintf(
				"anmlzoo.LowMatch(PowerEN, 10 rules, 8 KiB, seed 2024); %d tenants x 2 closed-loop conns; %v service floor x %d workers per shard",
				benchFleetTenants, benchFleetFloor, benchFleetWorkers),
		}
		snap.Fleet = append(snap.Fleet, measureFleet(t, "1-shard", 1, false))
		snap.Fleet = append(snap.Fleet, measureFleet(t, "3-shards", 3, false))
		snap.Fleet = append(snap.Fleet, measureFleet(t, "3-shards-1-killed", 3, true))
		one, three, killed := snap.Fleet[0], snap.Fleet[1], snap.Fleet[2]
		snap.Speedup3v1 = three.ScansPerSec / one.ScansPerSec
		snap.KilledThroughput = killed.ScansPerSec / three.ScansPerSec
		snap.KilledP99 = float64(killed.P99us) / float64(three.P99us)
		raw, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchGatewayFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, fr := range snap.Fleet {
			t.Logf("%s: %.0f scans/s (%.2f MB/s), p50 %dus p99 %dus, %d shed",
				fr.Mode, fr.ScansPerSec, fr.MBPerSec, fr.P50us, fr.P99us, fr.Shed)
		}
		t.Logf("3v1 speedup %.2fx; killed: %.0f%% throughput, %.2fx p99",
			snap.Speedup3v1, 100*snap.KilledThroughput, snap.KilledP99)
		return
	}

	raw, err := os.ReadFile(benchGatewayFile)
	if err != nil {
		t.Fatalf("%v (regenerate with ALVEARE_BENCH_SNAPSHOT=update)", err)
	}
	var snap benchGatewaySnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Fleet) != 3 {
		t.Fatalf("snapshot shape: %d fleet rows, want 3", len(snap.Fleet))
	}
	for _, fr := range snap.Fleet {
		if fr.Scans == 0 || fr.ScansPerSec <= 0 {
			t.Errorf("%s: empty measurement recorded", fr.Mode)
		}
	}
	if snap.Speedup3v1 < 2 {
		t.Errorf("recorded 3-shard speedup %.2fx, want >= 2x", snap.Speedup3v1)
	}
	if snap.KilledThroughput < 0.4 {
		t.Errorf("killed fleet kept %.0f%% of healthy throughput, want >= 40%%", 100*snap.KilledThroughput)
	}
	if snap.KilledP99 > 10 {
		t.Errorf("killed fleet p99 degraded %.1fx over healthy, want <= 10x", snap.KilledP99)
	}
}
