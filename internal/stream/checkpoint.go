package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadCheckpoint reports a checkpoint that failed structural
// validation: wrong version, unknown flags, truncated or trailing
// bytes, or offsets that violate the overlap-carry invariants. A
// checkpoint that decodes cleanly restores a session whose future
// matches are byte-identical to the exporter's.
var ErrBadCheckpoint = errors.New("stream: bad session checkpoint")

// Checkpoint wire layout (version 1, big-endian):
//
//	u8  version (1)
//	u8  flags   (bit0: finished)
//	u32 overlap
//	u64 base    (stream offset of the first buffered byte)
//	u64 pos     (absolute resume offset)
//	u32 buffered length, then that many carry-window bytes
//
// The encoding is self-delimiting and strict: trailing bytes are an
// error, so a checkpoint embedded in a larger frame must be sliced
// exactly.
const (
	ckptVersion    = 1
	ckptFlagDone   = 1 << 0
	ckptHeaderLen  = 1 + 1 + 4 + 8 + 8 + 4
	ckptMaxOffset  = 1 << 62 // u64→int safety fence on 64-bit offsets
	ckptKnownFlags = ckptFlagDone
	ckptMaxOverlap = 1 << 30
)

// Export serialises the session's resumable state — consumed offset,
// carry-window bytes, resume position and config — as a small versioned
// checkpoint. Exported at a push boundary (after Push returned), the
// checkpoint restored via RestoreSession continues the stream with
// matches byte-identical to the uninterrupted session.
func (s *Session) Export() []byte {
	out := make([]byte, ckptHeaderLen+len(s.buf))
	out[0] = ckptVersion
	if s.done {
		out[1] |= ckptFlagDone
	}
	binary.BigEndian.PutUint32(out[2:6], uint32(s.overlap))
	binary.BigEndian.PutUint64(out[6:14], uint64(s.base))
	binary.BigEndian.PutUint64(out[14:22], uint64(s.pos))
	binary.BigEndian.PutUint32(out[22:26], uint32(len(s.buf)))
	copy(out[ckptHeaderLen:], s.buf)
	return out
}

// RestoreSession rebuilds a session from an Export checkpoint. The
// finder must be equivalent to the exporter's (same compiled pattern);
// cfg contributes only Screen — the overlap is part of the checkpoint.
// Garbage input yields ErrBadCheckpoint, never a panic or a session
// that silently diverges.
func RestoreSession(f Finder, cfg Config, cp []byte) (*Session, error) {
	if len(cp) < ckptHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadCheckpoint, len(cp), ckptHeaderLen)
	}
	if cp[0] != ckptVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadCheckpoint, cp[0])
	}
	if cp[1]&^byte(ckptKnownFlags) != 0 {
		return nil, fmt.Errorf("%w: unknown flags 0x%02x", ErrBadCheckpoint, cp[1])
	}
	done := cp[1]&ckptFlagDone != 0
	overlap := binary.BigEndian.Uint32(cp[2:6])
	base := binary.BigEndian.Uint64(cp[6:14])
	pos := binary.BigEndian.Uint64(cp[14:22])
	blen := binary.BigEndian.Uint32(cp[22:26])
	if uint64(len(cp)) != ckptHeaderLen+uint64(blen) {
		return nil, fmt.Errorf("%w: body length %d, want %d", ErrBadCheckpoint, len(cp), ckptHeaderLen+uint64(blen))
	}
	if overlap == 0 || overlap > ckptMaxOverlap {
		return nil, fmt.Errorf("%w: overlap %d", ErrBadCheckpoint, overlap)
	}
	if base > ckptMaxOffset || pos > ckptMaxOffset {
		return nil, fmt.Errorf("%w: offset overflow", ErrBadCheckpoint)
	}
	limit := base + uint64(blen)
	if pos < base || pos > limit+1 {
		return nil, fmt.Errorf("%w: pos %d outside [%d,%d]", ErrBadCheckpoint, pos, base, limit+1)
	}
	if !done && uint64(blen) > uint64(overlap) {
		return nil, fmt.Errorf("%w: %d buffered bytes exceed overlap %d", ErrBadCheckpoint, blen, overlap)
	}
	buf := make([]byte, blen)
	copy(buf, cp[ckptHeaderLen:])
	return &Session{
		f:       f,
		screen:  cfg.Screen,
		overlap: int(overlap),
		buf:     buf,
		base:    int(base),
		pos:     int(pos),
		done:    done,
	}, nil
}
