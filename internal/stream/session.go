package stream

import (
	"context"
	"errors"
)

// ErrSessionFinished reports a push into a session whose stream has
// already been finalised (Finish ran, the scan faulted, or emit
// stopped it) — the carry-over state is gone and cannot be resumed.
var ErrSessionFinished = errors.New("stream: session already finished")

// Session is the resumable carry-over state of a chunked scan, exposed
// push-style: callers feed chunks as they arrive (network frames, pipe
// reads) instead of handing over an io.Reader. Each pushed chunk is
// scanned as one window of the overlap discipline, so the emitted
// matches are byte-identical to a one-shot scan of the concatenated
// stream — including matches that straddle push boundaries — provided
// no match exceeds the overlap, exactly as Scanner documents. Between
// pushes only the unfinalised tail (at most Overlap bytes) stays
// resident.
//
// A Session is single-goroutine, like the Scanner it underpins;
// Scanner.ScanCtx is the pull-mode loop over this same state machine,
// so the two cannot diverge.
type Session struct {
	f       Finder
	screen  func([]byte) bool // optional window admission filter (Config.Screen)
	overlap int
	buf     []byte
	base    int // stream offset of buf[0]
	pos     int // absolute resume offset of the one-shot discipline
	done    bool
}

// NewSession opens push-mode carry-over state for one finder. Only
// cfg.Overlap and cfg.Screen participate (push sizes replace
// ChunkSize).
func NewSession(f Finder, cfg Config) *Session {
	cfg = cfg.withDefaults()
	return &Session{f: f, screen: cfg.Screen, overlap: cfg.Overlap}
}

// Overlap returns the boundary carry in bytes — the longest match the
// session is guaranteed to report identically to a one-shot scan.
func (s *Session) Overlap() int { return s.overlap }

// Consumed returns the total stream bytes absorbed so far.
func (s *Session) Consumed() int64 { return int64(s.base + len(s.buf)) }

// Buffered returns the resident carry-over tail in bytes (at most
// Overlap after each completed push).
func (s *Session) Buffered() int { return len(s.buf) }

// Finished reports whether the session's stream has been finalised.
func (s *Session) Finished() bool { return s.done }

// grow extends the window by n bytes and returns the scratch region
// for the caller to fill — the zero-copy refill path the pull-mode
// Scanner uses. commit trims the region to the bytes actually
// delivered.
func (s *Session) grow(n int) []byte {
	have := len(s.buf)
	if cap(s.buf) < have+n {
		nb := make([]byte, have, have+n+s.overlap)
		copy(nb, s.buf)
		s.buf = nb
	}
	s.buf = s.buf[:have+n]
	return s.buf[have:]
}

func (s *Session) commit(have, n int) { s.buf = s.buf[:have+n] }

// Push scans chunk as the stream's next window and carries the overlap
// tail. Matches are emitted in stream order with absolute offsets;
// cont is false when emit stopped the scan (the session is then
// finished). An empty chunk is a harmless no-op window.
func (s *Session) Push(ctx context.Context, chunk []byte, emit EmitFunc) (cont bool, err error) {
	if s.done {
		return false, ErrSessionFinished
	}
	copy(s.grow(len(chunk)), chunk)
	return s.scan(ctx, false, emit)
}

// Finish scans the carry-over tail as the stream's final window. The
// session cannot be pushed to afterwards.
func (s *Session) Finish(ctx context.Context, emit EmitFunc) (cont bool, err error) {
	if s.done {
		return false, ErrSessionFinished
	}
	return s.scan(ctx, true, emit)
}

// scan runs one window pass over the buffered bytes and, on a
// non-final continuing window, carries the unfinalised tail.
func (s *Session) scan(ctx context.Context, final bool, emit EmitFunc) (bool, error) {
	if s.screen != nil && !s.screen(s.buf) {
		// The screen proved the window match-free: advance the resume
		// position exactly as a no-match ScanWindowCtx pass would (any
		// match a future window may report starts inside the carry tail
		// and reappears there whole) and skip the finder entirely.
		limit := s.base + len(s.buf)
		ownEnd := limit
		if !final {
			ownEnd = limit - s.overlap
			if ownEnd < s.base {
				ownEnd = s.base
			}
		}
		if s.pos < ownEnd {
			s.pos = ownEnd
		}
		if final {
			s.pos = limit + 1
			s.done = true
			return true, nil
		}
		s.carry()
		return true, nil
	}
	npos, cont, werr := ScanWindowCtx(ctx, s.f, s.buf, s.base, final, s.overlap, s.pos, emit)
	s.pos = npos
	if werr != nil || !cont {
		s.done = true
		return false, werr
	}
	if final {
		s.done = true
		return true, nil
	}
	s.carry()
	return true, nil
}

// carry retains the unfinalised tail (at most Overlap bytes) for the
// next window; everything before the resume position is done.
func (s *Session) carry() {
	limit := s.base + len(s.buf)
	c := s.pos
	if c > limit {
		c = limit
	}
	copy(s.buf, s.buf[c-s.base:])
	s.buf = s.buf[:limit-c]
	s.base = c
}
