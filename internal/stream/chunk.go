package stream

import "alveare/internal/arch"

// DefaultOverlap is the boundary overlap in bytes, shared by the
// divide-and-conquer multicore engine and the streaming scanner (the
// paper's DPU baseline makes the same trade on its 16 KiB jobs).
const DefaultOverlap = 256

// Chunk is one divide-and-conquer unit of an n-byte stream: the chunk
// owns the matches starting inside [Lo, Hi) and may read ahead through
// Ext (at most Hi+overlap) to complete them.
type Chunk struct {
	Lo, Hi, Ext int
}

// Plan splits an n-byte stream into up to parts chunks of equal size,
// each extended by overlap read-ahead bytes, clamped to the stream.
// Fewer than parts chunks are returned when the stream is too short to
// give every part a non-empty owned range; a single (possibly empty)
// chunk is always returned so degenerate inputs still run.
func Plan(n, parts, overlap int) []Chunk {
	if parts < 1 {
		parts = 1
	}
	size := (n + parts - 1) / parts
	if size == 0 {
		size = 1
	}
	chunks := make([]Chunk, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * size
		if lo >= n && i > 0 {
			break
		}
		hi := lo + size
		if hi > n {
			hi = n
		}
		ext := hi + overlap
		if ext > n {
			ext = n
		}
		chunks = append(chunks, Chunk{Lo: lo, Hi: hi, Ext: ext})
	}
	return chunks
}

// OwnMatches translates window-relative matches (found over
// data[lo:ext]) to stream offsets and keeps only those owned by the
// chunk — the ones starting inside [lo, hi). Matches are assumed to be
// in ascending start order, as FindAll emits them, so the first
// non-owned match ends the scan.
func OwnMatches(ms []arch.Match, lo, hi int) []arch.Match {
	var out []arch.Match
	for _, m := range ms {
		start := lo + m.Start
		if start >= hi {
			break // owned by the next chunk
		}
		out = append(out, arch.Match{Start: start, End: lo + m.End})
	}
	return out
}
