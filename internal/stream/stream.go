// Package stream implements chunked scanning of unbounded data
// streams: a Scanner consumes an io.Reader in configurable chunks,
// carries an overlap tail across chunk boundaries, and emits matches
// incrementally — the whole input is never resident, only one window
// of ChunkSize+Overlap bytes.
//
// The discipline is the sequential counterpart of the multicore
// engine's divide and conquer (paper §6): every window extends
// Overlap bytes past the region it finalises, so a match that begins
// near a boundary completes inside the extended window. The results
// are byte-identical to a one-shot Core.FindAll over the whole input
// provided no match is longer than Overlap bytes; longer matches are
// the scheme's documented blind spot (the same trade the BlueField-2
// DPU's 16 KiB jobs make). The equivalence is exact, not heuristic:
// within a window the scanner only finalises matches that start at
// least Overlap bytes before the window's end, and a leftmost-first
// attempt at such a start can only diverge from the one-shot attempt
// by matching past the window — which needs a match longer than the
// overlap.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"

	"alveare/internal/arch"
	"alveare/internal/isa"
)

// DefaultChunkSize is the refill granularity in bytes.
const DefaultChunkSize = 64 * 1024

// ReadError reports a stream-level failure at an absolute byte offset:
// a refill whose underlying reader failed, or a cancellation observed
// between windows. Offset is the stream position of the first byte that
// could not be processed, the exact point a caller can resume from.
type ReadError struct {
	Offset int64
	Err    error
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("stream: read at offset %d: %v", e.Offset, e.Err)
}

func (e *ReadError) Unwrap() error { return e.Err }

// Finder is the execution interface the scanner drives: one leftmost
// search from a resume offset, honouring ctx. *arch.Core implements it;
// internal/core wraps cores with policy-applying finders (safe-engine
// fallback, skip containment) that slot in transparently.
type Finder interface {
	FindFromCtx(ctx context.Context, data []byte, from int) (arch.Match, bool, error)
}

// Config parameterises a Scanner. The zero value selects the defaults.
type Config struct {
	// ChunkSize is the refill granularity; non-positive selects
	// DefaultChunkSize. It may be smaller than Overlap: the window then
	// grows across refills until it covers one overlap.
	ChunkSize int
	// Overlap is the boundary carry in bytes — the longest match the
	// scanner is guaranteed to report identically to a one-shot scan.
	// Non-positive selects DefaultOverlap.
	Overlap int
	// Screen, when set, is consulted once per window with the full
	// buffered window (carry tail plus new bytes) before the finder
	// runs. Returning false asserts the window holds no match: the
	// window is skipped and resume positions advance exactly as a
	// no-match scan would, so a sound screen (one that never returns
	// false on a window containing a match) leaves results
	// byte-identical. The admission-automaton first stage
	// (internal/approx) plugs in here.
	Screen func(window []byte) bool
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.Overlap <= 0 {
		c.Overlap = DefaultOverlap
	}
	return c
}

// EmitFunc receives one match as it is finalised. text is the matched
// bytes inside the scanner's window buffer — valid only during the
// call; copy it to retain it. Returning false stops the scan.
type EmitFunc func(m arch.Match, text []byte) bool

// Counters accumulates stream-throughput telemetry: how many windows
// the scan searched, how many bytes it consumed from the reader, and
// how many matches it emitted. An attached accumulator survives across
// Scan calls, so an engine can roll up a whole session. Counters follow
// the scanner's single-goroutine discipline.
type Counters struct {
	Windows int64
	Bytes   int64
	Matches int64
}

// Scanner scans unbounded streams with one execution finder.
type Scanner struct {
	f   Finder
	cfg Config
	ctr *Counters
}

// SetCounters attaches (or, with nil, detaches) a throughput
// accumulator updated by every subsequent Scan.
func (s *Scanner) SetCounters(c *Counters) { s.ctr = c }

// New builds a scanner with a private core for the compiled program.
func New(p *isa.Program, hw arch.Config, cfg Config) (*Scanner, error) {
	core, err := arch.NewCore(p, hw)
	if err != nil {
		return nil, err
	}
	return ForCore(core, cfg), nil
}

// ForCore wraps an existing core (for engines and pools that own the
// core's lifecycle). The scanner inherits the core's single-goroutine
// discipline.
func ForCore(core *arch.Core, cfg Config) *Scanner {
	return &Scanner{f: core, cfg: cfg.withDefaults()}
}

// ForFinder wraps an arbitrary finder — the hook the engine layer uses
// to scan through a policy-applying wrapper instead of a bare core.
func ForFinder(f Finder, cfg Config) *Scanner {
	return &Scanner{f: f, cfg: cfg.withDefaults()}
}

// Core returns the scanner's execution core, or nil when the scanner
// drives a wrapped finder (counters then live behind the wrapper).
func (s *Scanner) Core() *arch.Core {
	c, _ := s.f.(*arch.Core)
	return c
}

// Scan consumes r to EOF, emitting every match in stream order.
// It returns the number of bytes consumed from r. The scan stops early
// without error when emit returns false.
func (s *Scanner) Scan(r io.Reader, emit EmitFunc) (int64, error) {
	return s.ScanCtx(context.Background(), r, emit)
}

// ScanCtx is Scan with cooperative cancellation: ctx is checked at
// every window boundary and, through the finder, every
// arch.CancelCheckCycles simulated cycles inside a window. Errors are
// positional — a *ReadError for refill failures and between-window
// cancellation, an *arch.ExecError (rebased to absolute stream offsets)
// for execution faults.
//
// The loop is the pull-mode driver over the same Session state machine
// push-mode callers (the scan service's streaming sessions) use, so
// the two paths cannot diverge: each refill is one Session window.
func (s *Scanner) ScanCtx(ctx context.Context, r io.Reader, emit EmitFunc) (int64, error) {
	if s.ctr != nil {
		inner := emit
		emit = func(m arch.Match, text []byte) bool {
			s.ctr.Matches++
			return inner(m, text)
		}
	}
	sess := NewSession(s.f, s.cfg)
	chunk := s.cfg.ChunkSize
	final := false
	for !final {
		if cerr := ctx.Err(); cerr != nil {
			return sess.Consumed(), &ReadError{Offset: sess.Consumed(), Err: cerr}
		}
		have := sess.Buffered()
		n, err := io.ReadFull(r, sess.grow(chunk))
		sess.commit(have, n)
		if s.ctr != nil {
			s.ctr.Bytes += int64(n)
		}
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			final = true
		default:
			// Consumed is the offset of the first byte the refill could
			// not deliver — the exact resume point.
			return sess.Consumed(), &ReadError{Offset: sess.Consumed(), Err: err}
		}
		if s.ctr != nil {
			s.ctr.Windows++
		}
		cont, werr := sess.scan(ctx, final, emit)
		if werr != nil || !cont {
			return sess.Consumed(), werr
		}
	}
	return sess.Consumed(), nil
}

// ScanWindow advances the one-shot FindAll resume discipline over one
// buffered window covering stream offsets [base, base+len(buf)). pos is
// the absolute resume offset (>= base); the updated offset is returned.
// When final is false the window only finalises matches starting before
// its last overlap bytes — later starts are re-searched by the caller's
// next window, which must begin at or before the returned offset.
// cont reports whether the scan should continue (emit returned true
// throughout and no execution error occurred).
//
// The helper is shared by Scanner and by the rule-set streaming scan,
// which runs one resume position per rule over a common window buffer.
func ScanWindow(core *arch.Core, buf []byte, base int, final bool, overlap, pos int, emit EmitFunc) (npos int, cont bool, err error) {
	return ScanWindowCtx(context.Background(), core, buf, base, final, overlap, pos, emit)
}

// ScanWindowCtx is ScanWindow over any finder, with cooperative
// cancellation. Execution errors carrying a window-relative offset
// (*arch.ExecError) are rebased to absolute stream offsets before they
// are returned.
func ScanWindowCtx(ctx context.Context, f Finder, buf []byte, base int, final bool, overlap, pos int, emit EmitFunc) (npos int, cont bool, err error) {
	limit := base + len(buf)
	ownEnd := limit
	if !final {
		ownEnd = limit - overlap
		if ownEnd < base {
			ownEnd = base
		}
	}
	for pos <= limit {
		if !final && pos >= ownEnd {
			break
		}
		m, ok, ferr := f.FindFromCtx(ctx, buf, pos-base)
		if ferr != nil {
			var ee *arch.ExecError
			if errors.As(ferr, &ee) && ee.Offset <= len(buf) {
				ferr = &arch.ExecError{Offset: base + ee.Offset, Cycle: ee.Cycle, Err: ee.Err}
			}
			return pos, false, ferr
		}
		if !ok {
			// No match anywhere in the window: every owned offset is
			// cleared (a match starting before ownEnd would have been
			// wholly visible).
			if pos < ownEnd {
				pos = ownEnd
			}
			if final {
				pos = limit + 1
			}
			break
		}
		start, end := base+m.Start, base+m.End
		if !final && start >= ownEnd {
			// Deferred: the match starts inside the carry region and is
			// re-found (with full read-ahead) by the next window. The
			// offsets before it hold no match start.
			pos = ownEnd
			break
		}
		keep := emit(arch.Match{Start: start, End: end}, buf[start-base:end-base])
		if end > start {
			pos = end
		} else {
			pos = end + 1 // empty match: advance one byte, as FindAll does
		}
		if !keep {
			return pos, false, nil
		}
	}
	return pos, true, nil
}

// FindAll collects every match in the stream (the input itself is
// still processed window by window; only the match list is buffered).
func (s *Scanner) FindAll(r io.Reader) ([]arch.Match, error) {
	var out []arch.Match
	_, err := s.Scan(r, func(m arch.Match, _ []byte) bool {
		out = append(out, m)
		return true
	})
	return out, err
}

// Count returns the number of matches in the stream.
func (s *Scanner) Count(r io.Reader) (int, error) {
	n := 0
	_, err := s.Scan(r, func(arch.Match, []byte) bool { n++; return true })
	return n, err
}
