package stream

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/iotest"

	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/isa"
)

func compile(t *testing.T, re string) *isa.Program {
	t.Helper()
	p, err := backend.Compile(re, backend.Options{})
	if err != nil {
		t.Fatalf("compile %q: %v", re, err)
	}
	return p
}

func oneShot(t *testing.T, p *isa.Program, data []byte) []arch.Match {
	t.Helper()
	core, err := arch.NewCore(p, arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.FindAll(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func maxMatchLen(ms []arch.Match) int {
	n := 0
	for _, m := range ms {
		if l := m.End - m.Start; l > n {
			n = l
		}
	}
	return n
}

func sameMatches(a, b []arch.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlanCoversStream(t *testing.T) {
	cases := []struct{ n, parts, overlap int }{
		{0, 1, 8}, {0, 4, 8}, {1, 4, 8}, {10, 3, 2}, {100, 7, 16},
		{4096, 10, 256}, {5, 8, 3},
	}
	for _, c := range cases {
		chunks := Plan(c.n, c.parts, c.overlap)
		if len(chunks) == 0 {
			t.Fatalf("Plan(%d,%d,%d): no chunks", c.n, c.parts, c.overlap)
		}
		if len(chunks) > c.parts {
			t.Errorf("Plan(%d,%d,%d): %d chunks > %d parts", c.n, c.parts, c.overlap, len(chunks), c.parts)
		}
		next := 0
		for i, ch := range chunks {
			if ch.Lo != next {
				t.Errorf("Plan(%d,%d,%d): chunk %d starts at %d, want %d", c.n, c.parts, c.overlap, i, ch.Lo, next)
			}
			if ch.Hi < ch.Lo || ch.Ext < ch.Hi || ch.Ext > c.n {
				t.Errorf("Plan(%d,%d,%d): bad chunk %+v", c.n, c.parts, c.overlap, ch)
			}
			if ch.Ext-ch.Hi > c.overlap {
				t.Errorf("Plan(%d,%d,%d): chunk %d read-ahead %d exceeds overlap", c.n, c.parts, c.overlap, i, ch.Ext-ch.Hi)
			}
			next = ch.Hi
		}
		if next != c.n && c.n > 0 {
			t.Errorf("Plan(%d,%d,%d): coverage ends at %d", c.n, c.parts, c.overlap, next)
		}
	}
}

func TestOwnMatches(t *testing.T) {
	ms := []arch.Match{{Start: 0, End: 3}, {Start: 5, End: 9}, {Start: 10, End: 12}}
	got := OwnMatches(ms, 100, 110)
	want := []arch.Match{{Start: 100, End: 103}, {Start: 105, End: 109}}
	if !sameMatches(got, want) {
		t.Errorf("OwnMatches = %v, want %v", got, want)
	}
	if out := OwnMatches(nil, 0, 10); out != nil {
		t.Errorf("OwnMatches(nil) = %v", out)
	}
}

func TestScannerAcrossBoundaries(t *testing.T) {
	p := compile(t, "ab+c")
	data := []byte(strings.Repeat("zzzz", 5) + "abbbc" + strings.Repeat("y", 9) + "abc" + "abbc")
	want := oneShot(t, p, data)
	for _, chunk := range []int{1, 2, 3, 5, 7, 16} {
		s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: chunk, Overlap: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.FindAll(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatches(got, want) {
			t.Errorf("chunk %d: %v, want %v", chunk, got, want)
		}
	}
}

func TestScannerTextWindow(t *testing.T) {
	p := compile(t, "[0-9]+")
	data := []byte("a1b22c333d4444e")
	s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: 4, Overlap: 6})
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	if _, err := s.Scan(bytes.NewReader(data), func(m arch.Match, text []byte) bool {
		if !bytes.Equal(text, data[m.Start:m.End]) {
			t.Errorf("text %q != data[%d:%d] %q", text, m.Start, m.End, data[m.Start:m.End])
		}
		texts = append(texts, string(text))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "22", "333", "4444"}
	if len(texts) != len(want) {
		t.Fatalf("texts = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("texts[%d] = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestScannerEarlyStop(t *testing.T) {
	p := compile(t, "x")
	data := []byte(strings.Repeat("ax", 1000))
	s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: 64, Overlap: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	if _, err := s.Scan(bytes.NewReader(data), func(arch.Match, []byte) bool {
		seen++
		return seen < 3
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("emitted %d matches after stop at 3", seen)
	}
}

func TestScannerEmptyAndTinyInputs(t *testing.T) {
	p := compile(t, "a*")
	for _, in := range []string{"", "b", "a", "aa"} {
		want := oneShot(t, p, []byte(in))
		s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: 3, Overlap: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.FindAll(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatches(got, want) {
			t.Errorf("%q: %v, want %v", in, got, want)
		}
	}
}

func TestScannerChunkSmallerThanOverlap(t *testing.T) {
	p := compile(t, "needle")
	data := []byte(strings.Repeat("hay", 40) + "needle" + strings.Repeat("hay", 40))
	s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: 5, Overlap: 64})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Count(bytes.NewReader(data))
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, err %v", n, err)
	}
}

// failReader returns some data, then an error.
type failReader struct {
	data []byte
	err  error
}

func (r *failReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestScannerReadError(t *testing.T) {
	p := compile(t, "x")
	boom := errors.New("boom")
	s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: 8, Overlap: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Scan(&failReader{data: []byte("axbxcx more to come"), err: boom}, func(arch.Match, []byte) bool { return true })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestScannerBytesConsumed(t *testing.T) {
	p := compile(t, "q")
	data := bytes.Repeat([]byte("pad"), 1000)
	s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: 100, Overlap: 10})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Scan(bytes.NewReader(data), func(arch.Match, []byte) bool { return true })
	if err != nil || n != int64(len(data)) {
		t.Errorf("consumed %d, err %v, want %d", n, err, len(data))
	}
}

// TestChunkingEquivalenceProperty is the streaming correctness
// property: over a pattern/input grid, Scanner with chunk sizes
// {7, 64, 256, 4096} and varying overlaps yields byte-identical
// matches to a one-shot FindAll, whenever the overlap is at least the
// longest match (the documented contract).
func TestChunkingEquivalenceProperty(t *testing.T) {
	patterns := []string{
		"ab", "a+b", "[a-f]{3}", "[^ ]+", "(cat|dog)", "x(a|b)*y",
		"[0-9]{2,4}", "a*", "q(w|e)+?r", "z?a{2}b{1,2}", "[a-z]+ ",
		"(ab|cd)+x",
	}
	r := rand.New(rand.NewSource(2024))
	alphabet := "abcdefqwrxyz0123 "
	var inputs [][]byte
	for i := 0; i < 8; i++ {
		buf := make([]byte, 50+r.Intn(3000))
		for j := range buf {
			buf[j] = alphabet[r.Intn(len(alphabet))]
		}
		// Plant witnesses so the corpus is match-dense.
		for _, w := range []string{"ab", "aabb", "catdog", "xaby", "0123", "qwwer", "zaabb", "abcdx"} {
			p := r.Intn(len(buf) - len(w) + 1)
			copy(buf[p:], w)
		}
		inputs = append(inputs, buf)
	}

	for _, pat := range patterns {
		prog := compile(t, pat)
		for _, data := range inputs {
			want := oneShot(t, prog, data)
			minOverlap := maxMatchLen(want)
			if minOverlap < 1 {
				minOverlap = 1
			}
			for _, chunk := range []int{7, 64, 256, 4096} {
				for _, overlap := range []int{minOverlap, minOverlap + 13, 300} {
					if overlap < minOverlap {
						continue
					}
					s, err := New(prog, arch.DefaultConfig(), Config{ChunkSize: chunk, Overlap: overlap})
					if err != nil {
						t.Fatal(err)
					}
					got, err := s.FindAll(bytes.NewReader(data))
					if err != nil {
						t.Fatalf("%q chunk=%d overlap=%d: %v", pat, chunk, overlap, err)
					}
					if !sameMatches(got, want) {
						t.Fatalf("%q chunk=%d overlap=%d len=%d:\n got %v\nwant %v",
							pat, chunk, overlap, len(data), got, want)
					}
				}
			}
		}
	}
}

// TestScannerOneByteReader exercises carry-over under the most
// fragmented reader possible (every Read returns one byte).
func TestScannerOneByteReader(t *testing.T) {
	p := compile(t, "ab+c")
	data := []byte("xxabbcxxabcx")
	want := oneShot(t, p, data)
	s, err := New(p, arch.DefaultConfig(), Config{ChunkSize: 4, Overlap: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.FindAll(iotest.OneByteReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
