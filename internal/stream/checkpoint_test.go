package stream

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"alveare/internal/arch"
)

// sessionRun drives a fresh session over data in chunk-sized pushes
// and returns every match plus the session, for tests that keep
// pushing or exporting afterwards.
func sessionRun(t *testing.T, f Finder, overlap int, data []byte, chunk int) []arch.Match {
	t.Helper()
	s := NewSession(f, Config{Overlap: overlap})
	var got []arch.Match
	emit := func(m arch.Match, _ []byte) bool { got = append(got, m); return true }
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := s.Push(context.Background(), data[off:end], emit); err != nil {
			t.Fatalf("Push(off=%d): %v", off, err)
		}
	}
	if _, err := s.Finish(context.Background(), emit); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return got
}

// TestSessionExportRestoreEveryBoundary is the checkpoint property at
// the session layer: exporting at ANY push boundary and restoring into
// a fresh session must finish the stream with exactly the matches the
// uninterrupted session would have emitted — same offsets, same order,
// for chunk sizes above and below the overlap and for overlaps small
// enough to exercise the blind-spot edge. The restored and
// uninterrupted runs share chunk boundaries, so the equivalence is
// exact for every overlap, blind spot included.
func TestSessionExportRestoreEveryBoundary(t *testing.T) {
	p := compile(t, "ax+b")
	core, err := arch.NewCore(p, arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("..axb..axxxxxxxxb..ax..axxb-axxxb=axb axxxxb..b..axxxxxxxxxxxxb..")
	for _, overlap := range []int{4, 8, 64} {
		for _, chunk := range []int{1, 3, 7, 16, len(data) + 1} {
			t.Run(fmt.Sprintf("overlap=%d/chunk=%d", overlap, chunk), func(t *testing.T) {
				want := sessionRun(t, core, overlap, data, chunk)
				// Walk one prefix session across the stream; at every push
				// boundary, export it, restore a twin, and let the twin
				// finish the remainder.
				prefix := NewSession(core, Config{Overlap: overlap})
				var before []arch.Match
				keep := func(m arch.Match, _ []byte) bool { before = append(before, m); return true }
				for off := 0; off <= len(data); off += chunk {
					end := off + chunk
					if end > len(data) {
						end = len(data)
					}
					if off < len(data) {
						if _, err := prefix.Push(context.Background(), data[off:end], keep); err != nil {
							t.Fatalf("Push(off=%d): %v", off, err)
						}
					}
					cp := prefix.Export()
					twin, err := RestoreSession(core, Config{}, cp)
					if err != nil {
						t.Fatalf("RestoreSession at boundary %d: %v", end, err)
					}
					if twin.Overlap() != prefix.Overlap() || twin.Consumed() != prefix.Consumed() {
						t.Fatalf("boundary %d: restored session overlap/consumed %d/%d, exporter %d/%d",
							end, twin.Overlap(), twin.Consumed(), prefix.Overlap(), prefix.Consumed())
					}
					got := append([]arch.Match(nil), before...)
					emit := func(m arch.Match, _ []byte) bool { got = append(got, m); return true }
					for r := end; r < len(data); r += chunk {
						rend := r + chunk
						if rend > len(data) {
							rend = len(data)
						}
						if _, err := twin.Push(context.Background(), data[r:rend], emit); err != nil {
							t.Fatalf("boundary %d: twin Push(off=%d): %v", end, r, err)
						}
					}
					if _, err := twin.Finish(context.Background(), emit); err != nil {
						t.Fatalf("boundary %d: twin Finish: %v", end, err)
					}
					if !sameMatches(got, want) {
						t.Fatalf("boundary %d: restored continuation diverged: got %d matches %v, want %d %v",
							end, len(got), got, len(want), want)
					}
					if off+chunk > len(data) {
						break
					}
				}
			})
		}
	}
}

// TestSessionRestoreFinished pins the done-flag round trip: a finished
// session exports a checkpoint that restores to a finished session,
// which refuses further pushes instead of silently rescanning.
func TestSessionRestoreFinished(t *testing.T) {
	p := compile(t, "ab")
	core, err := arch.NewCore(p, arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(core, Config{Overlap: 4})
	drop := func(arch.Match, []byte) bool { return true }
	if _, err := s.Push(context.Background(), []byte("xaby"), drop); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(context.Background(), drop); err != nil {
		t.Fatal(err)
	}
	twin, err := RestoreSession(core, Config{}, s.Export())
	if err != nil {
		t.Fatalf("RestoreSession(finished): %v", err)
	}
	if !twin.Finished() {
		t.Fatal("restored session lost the finished flag")
	}
	if _, err := twin.Push(context.Background(), []byte("ab"), drop); !errors.Is(err, ErrSessionFinished) {
		t.Fatalf("push into restored finished session: err %v, want ErrSessionFinished", err)
	}
}

// TestSessionRestoreGarbage feeds the restorer structurally broken
// checkpoints; every one must answer ErrBadCheckpoint — never a panic,
// never a session built on corrupt state.
func TestSessionRestoreGarbage(t *testing.T) {
	p := compile(t, "ab")
	core, err := arch.NewCore(p, arch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(core, Config{Overlap: 8})
	if _, err := s.Push(context.Background(), []byte("zzzzabzzzz"), func(arch.Match, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	valid := s.Export()
	mutate := func(f func(cp []byte) []byte) []byte {
		cp := append([]byte(nil), valid...)
		return f(cp)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short":        valid[:ckptHeaderLen-1],
		"bad version":  mutate(func(cp []byte) []byte { cp[0] = 99; return cp }),
		"bad flags":    mutate(func(cp []byte) []byte { cp[1] = 0xF0; return cp }),
		"trailing":     append(append([]byte(nil), valid...), 0),
		"zero overlap": mutate(func(cp []byte) []byte { cp[2], cp[3], cp[4], cp[5] = 0, 0, 0, 0; return cp }),
		"pos < base":   mutate(func(cp []byte) []byte { cp[14], cp[15] = 0xFF, 0xFF; return cp }),
		"length lie":   mutate(func(cp []byte) []byte { cp[25]++; return cp }),
	}
	for name, cp := range cases {
		if _, err := RestoreSession(core, Config{}, cp); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: err %v, want ErrBadCheckpoint", name, err)
		}
	}
	// The valid checkpoint still restores after all that mutation —
	// mutate copied, the battery did not corrupt its own baseline.
	if _, err := RestoreSession(core, Config{}, valid); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}
