package bench

import (
	"strings"
	"testing"
)

func TestTable2(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Pin the advanced counts and the reduction shape.
	wantAdvanced := map[string]int{
		"[a-zA-Z]":   1,
		"[DBEZX]{7}": 5,
		".{3,6}":     2,
		"[^ ]*":      2,
	}
	for _, r := range rows {
		if got := wantAdvanced[r.RE]; r.AdvancedOps != got {
			t.Errorf("%s: advanced = %d, want %d", r.RE, r.AdvancedOps, got)
		}
		if r.Reduction < 4 {
			t.Errorf("%s: reduction %.2f below 4x", r.RE, r.Reduction)
		}
		if r.MinimalOps <= r.AdvancedOps {
			t.Errorf("%s: no reduction", r.RE)
		}
	}
	// The big unfold dominates: .{3,6} must be the largest reduction,
	// as in the paper (580x).
	var best string
	bestRed := 0.0
	for _, r := range rows {
		if r.Reduction > bestRed {
			bestRed, best = r.Reduction, r.RE
		}
	}
	if best != ".{3,6}" {
		t.Errorf("largest reduction on %s, want .{3,6}", best)
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "580.00x") || !strings.Contains(out, "[DBEZX]{7}") {
		t.Errorf("render missing content:\n%s", out)
	}
}

// TestFigure4SmallShape runs the whole pipeline at test scale and
// checks the paper's ordering: the big ALVEARE is the fastest engine
// and GPUs are orders of magnitude slower.
func TestFigure4SmallShape(t *testing.T) {
	rs, err := Figure4(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("suites = %d, want 3", len(rs))
	}
	for _, sr := range rs {
		byName := map[string]EngineResult{}
		for _, e := range sr.Engines {
			byName[e.Engine] = e
			if e.Seconds <= 0 {
				t.Errorf("%s/%s: no time measured", sr.Suite, e.Engine)
			}
		}
		big := byName["ALVEARE-4"]
		one := byName[EngAlveare1]
		re2 := byName[EngRE2A53]
		inf := byName[EngINFAnt]
		obat := byName[EngOBAT]

		if big.Seconds >= one.Seconds {
			t.Errorf("%s: multi-core (%g) not faster than single (%g)", sr.Suite, big.Seconds, one.Seconds)
		}
		if one.Seconds >= re2.Seconds {
			t.Errorf("%s: single-core ALVEARE (%g) not faster than RE2 model (%g)", sr.Suite, one.Seconds, re2.Seconds)
		}
		// GPUs at least an order of magnitude behind the big ALVEARE
		// even at this small scale (launch overhead dominates).
		if inf.Seconds < 10*big.Seconds || obat.Seconds < 10*big.Seconds {
			t.Errorf("%s: GPU times not dominated: inf=%g obat=%g alveare=%g",
				sr.Suite, inf.Seconds, obat.Seconds, big.Seconds)
		}
		if obat.Seconds > inf.Seconds {
			t.Errorf("%s: OBAT (%g) slower than iNFAnt (%g)", sr.Suite, obat.Seconds, inf.Seconds)
		}
		// Every engine finds matches (witnesses are planted).
		for _, e := range sr.Engines {
			if e.Matches == 0 {
				t.Errorf("%s/%s: zero matches", sr.Suite, e.Engine)
			}
		}
		// Energy: the KPI must be populated and favour ALVEARE over the
		// GPU by a wide margin.
		if big.EnergyEff <= obat.EnergyEff {
			t.Errorf("%s: energy efficiency shape wrong", sr.Suite)
		}
	}
	f4 := RenderFigure4(rs)
	f5 := RenderFigure5(rs)
	sp := Speedups(rs)
	for _, s := range []string{"PowerEN", "Protomata", "Snort"} {
		if !strings.Contains(f4, s) || !strings.Contains(f5, s) || !strings.Contains(sp, s) {
			t.Errorf("render missing suite %s", s)
		}
	}
}

func TestExports(t *testing.T) {
	opt := Small()
	opt.Patterns = 2
	opt.DatasetSize = 4 << 10
	rs, err := Figure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, &Report{Options: opt, Table2: rows, Figures: rs}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"table2"`, `"figures"`, `"PowerEN"`, `"Engine"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}

	sb.Reset()
	if err := WriteFiguresCSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+3*6 { // header + 3 suites x 6 engines
		t.Errorf("CSV rows = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "suite,engine,seconds,matches,skipped,power_w,energy_eff" {
		t.Errorf("CSV header = %q", lines[0])
	}

	sc, err := Scaling(opt, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteScalingCSV(&sb, sc, []string{"PowerEN", "Protomata", "Snort"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cores,lut_pct") {
		t.Errorf("scaling CSV:\n%s", sb.String())
	}
}

func TestScalingSmall(t *testing.T) {
	opt := Small()
	opt.Patterns = 4
	opt.DatasetSize = 16 << 10
	rows, err := Scaling(opt, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Cores != 1 || rows[1].Cores != 4 {
		t.Errorf("core order wrong: %+v", rows)
	}
	for suite, sp := range rows[1].Speedup {
		if sp < 1.5 {
			t.Errorf("%s: 4-core speedup %.2f too small", suite, sp)
		}
	}
	if rows[1].LUTPct <= rows[0].LUTPct {
		t.Error("utilisation not increasing")
	}
	out := RenderScaling(rows, []string{"PowerEN", "Protomata", "Snort"})
	if !strings.Contains(out, "LUT%") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationSmall(t *testing.T) {
	opt := Small()
	opt.Patterns = 4
	opt.DatasetSize = 8 << 10
	rows, err := Ablation(opt, "PowerEN")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ablationConfigs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Slowdown != 1.0 {
		t.Errorf("baseline slowdown = %.2f", rows[0].Slowdown)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Config] = r
		if r.AvgCycles <= 0 {
			t.Errorf("%s: no cycles", r.Config)
		}
	}
	// Fewer compute units must cost cycles (scan ablation).
	if byName["1 compute unit"].AvgCycles <= rows[0].AvgCycles {
		t.Error("1 CU not slower than 4 CU")
	}
	// The minimal compiler must cost cycles relative to the full design
	// (the margin is modest at this tiny test scale).
	if byName["minimal compiler"].Slowdown < 1.02 {
		t.Errorf("minimal compiler slowdown = %.2f, want > 1.02", byName["minimal compiler"].Slowdown)
	}
	out := RenderAblation(rows)
	if !strings.Contains(out, "no fusion") {
		t.Errorf("render:\n%s", out)
	}
	if _, err := Ablation(opt, "nope"); err == nil {
		t.Error("unknown suite accepted")
	}
}
