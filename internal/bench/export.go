package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Report bundles every experiment's results for machine consumption
// (plotting scripts, CI trend tracking).
type Report struct {
	Options  Options       `json:"options"`
	Table2   []Table2Row   `json:"table2,omitempty"`
	Figures  []SuiteResult `json:"figures,omitempty"`
	Scaling  []ScalingRow  `json:"scaling,omitempty"`
	Ablation []AblationRow `json:"ablation,omitempty"`
}

// WriteJSON serialises the report with stable, indented formatting.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFiguresCSV emits the Figure 4/5 series in long form:
// suite,engine,seconds,matches,skipped,power_w,energy_eff — one row per
// engine, ready for any plotting tool.
func WriteFiguresCSV(w io.Writer, rs []SuiteResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"suite", "engine", "seconds", "matches", "skipped", "power_w", "energy_eff"}); err != nil {
		return err
	}
	for _, sr := range rs {
		for _, e := range sr.Engines {
			rec := []string{
				sr.Suite, e.Engine,
				strconv.FormatFloat(e.Seconds, 'g', -1, 64),
				strconv.FormatInt(e.Matches, 10),
				strconv.Itoa(e.Skipped),
				strconv.FormatFloat(e.PowerW, 'g', -1, 64),
				strconv.FormatFloat(e.EnergyEff, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV emits the scaling experiment in long form:
// cores,lut_pct,bram_pct,suite,speedup.
func WriteScalingCSV(w io.Writer, rows []ScalingRow, suites []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cores", "lut_pct", "bram_pct", "suite", "speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, s := range suites {
			rec := []string{
				strconv.Itoa(r.Cores),
				fmt.Sprintf("%.2f", r.LUTPct),
				fmt.Sprintf("%.2f", r.BRAMPct),
				s,
				fmt.Sprintf("%.4f", r.Speedup[s]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
