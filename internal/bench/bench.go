// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§7): Table 2 (ISA advanced
// primitives), Figure 4 (execution time per suite and engine), Figure 5
// (energy efficiency), the 1-to-10-core scaling with FPGA resource
// utilisation, and the ablation study over the design choices DESIGN.md
// calls out.
//
// Every experiment takes an Options value so the same code runs at
// test scale (a few rules over tens of kilobytes) and at paper scale
// (200 rules over 1 MB); cmd/alvearebench drives the latter and
// EXPERIMENTS.md records paper-versus-measured results.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"alveare/internal/anmlzoo"
	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/baseline/dpu"
	"alveare/internal/baseline/gpu"
	"alveare/internal/baseline/pikevm"
	"alveare/internal/multicore"
	"alveare/internal/perf"
)

// Options scales the experiments.
type Options struct {
	Patterns    int   // rules per suite
	DatasetSize int   // bytes per suite dataset
	Seed        int64 // generator seed
	Cores       int   // scale-out width of the big ALVEARE configuration

	// Progress, when non-nil, receives one line per completed
	// measurement step (suite x engine); long paper-scale runs use it
	// to show liveness.
	Progress func(format string, args ...any) `json:"-"`
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Paper returns the paper-scale setup: 200 REs, 1 MB, 10 cores.
func Paper() Options {
	return Options{Patterns: 200, DatasetSize: 1 << 20, Seed: 2024, Cores: perf.MaxCores}
}

// Small returns a fast setup for tests and smoke runs.
func Small() Options {
	return Options{Patterns: 6, DatasetSize: 24 << 10, Seed: 2024, Cores: 4}
}

func (o Options) normalize() Options {
	p := Paper()
	if o.Patterns <= 0 {
		o.Patterns = p.Patterns
	}
	if o.DatasetSize <= 0 {
		o.DatasetSize = p.DatasetSize
	}
	if o.Seed == 0 {
		o.Seed = p.Seed
	}
	if o.Cores <= 0 {
		o.Cores = p.Cores
	}
	return o
}

// ---------------------------------------------------------------------
// Table 2: ISA advanced primitives reduce code (and, being RISC-based,
// the cycles to execute the instruction set).

// Table2Row compares one microbenchmark RE under the minimal and the
// advanced compiler, next to the paper's reported numbers.
type Table2Row struct {
	RE          string
	MinimalOps  int
	AdvancedOps int
	Reduction   float64

	PaperMinimal   int
	PaperAdvanced  int
	PaperReduction float64
}

// table2Microbenchmarks are the paper's Table 2 REs with its reported
// counts.
var table2Microbenchmarks = []struct {
	re                string
	minimal, advanced int
	reduction         float64
}{
	{"[a-zA-Z]", 26, 1, 26.0},
	{"[DBEZX]{7}", 28, 6, 4.66},
	{".{3,6}", 1160, 2, 580.0},
	{"[^ ]*", 66, 2, 33.0},
}

// Table2 compiles the four microbenchmarks in both modes and reports
// instruction counts excluding the EoR, the paper's metric.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, m := range table2Microbenchmarks {
		min, err := backend.Compile(m.re, backend.Minimal())
		if err != nil {
			return nil, fmt.Errorf("minimal %q: %w", m.re, err)
		}
		adv, err := backend.Compile(m.re, backend.Options{})
		if err != nil {
			return nil, fmt.Errorf("advanced %q: %w", m.re, err)
		}
		row := Table2Row{
			RE:             m.re,
			MinimalOps:     min.OpCount(),
			AdvancedOps:    adv.OpCount(),
			PaperMinimal:   m.minimal,
			PaperAdvanced:  m.advanced,
			PaperReduction: m.reduction,
		}
		row.Reduction = float64(row.MinimalOps) / float64(row.AdvancedOps)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 renders the comparison as a text table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "RE\tMinimal Ops\tAdvanced Ops\tReduction\tPaper(Min->Adv)\tPaper Reduction")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2fx\t%d -> %d\t%.2fx\n",
			r.RE, r.MinimalOps, r.AdvancedOps, r.Reduction,
			r.PaperMinimal, r.PaperAdvanced, r.PaperReduction)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------
// Figures 4 and 5: per-suite average execution time and energy
// efficiency per engine.

// Engine labels, in the figures' presentation order.
const (
	EngAlveare1 = "ALVEARE-1"
	EngAlveareN = "ALVEARE-N" // N = Options.Cores, renamed in results
	EngRE2A53   = "RE2-A53"
	EngDPU      = "DPU"
	EngINFAnt   = "GPU-iNFAnt"
	EngOBAT     = "GPU-OBAT"
)

// EngineResult is one bar of Figure 4/5: the per-RE average execution
// time on the 1 MB stream, the system power, and the energy-efficiency
// KPI 1/(t*P).
type EngineResult struct {
	Engine    string
	Seconds   float64 // average per-RE execution time
	Matches   int64   // total matches found across the rule set
	Skipped   int     // rules this engine could not run
	PowerW    float64
	EnergyEff float64
}

// SuiteResult aggregates one benchmark suite.
type SuiteResult struct {
	Suite   string
	Rules   int
	Engines []EngineResult
}

// Figure4 runs every engine on every suite and returns the measured
// series; Figure 5 derives from the same data (RenderFigure5).
func Figure4(opt Options) ([]SuiteResult, error) {
	opt = opt.normalize()
	var out []SuiteResult
	for _, suite := range anmlzoo.All(opt.Patterns, opt.DatasetSize, opt.Seed) {
		sr, err := runSuite(suite, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", suite.Name, err)
		}
		out = append(out, sr)
	}
	return out, nil
}

func runSuite(suite *anmlzoo.Suite, opt Options) (SuiteResult, error) {
	sr := SuiteResult{Suite: suite.Name, Rules: len(suite.Patterns)}

	alv1, err := alveareEngine(suite, 1)
	if err != nil {
		return sr, err
	}
	opt.progress("%s: ALVEARE-1 done (avg %s)", suite.Name, fmtSeconds(alv1.Seconds))
	alvN, err := alveareEngine(suite, opt.Cores)
	if err != nil {
		return sr, err
	}
	alvN.Engine = fmt.Sprintf("ALVEARE-%d", opt.Cores)
	opt.progress("%s: %s done (avg %s)", suite.Name, alvN.Engine, fmtSeconds(alvN.Seconds))
	re2, err := re2Engine(suite)
	if err != nil {
		return sr, err
	}
	opt.progress("%s: RE2-A53 done (avg %s)", suite.Name, fmtSeconds(re2.Seconds))
	dpuRes, err := dpuEngine(suite)
	if err != nil {
		return sr, err
	}
	opt.progress("%s: DPU done (avg %s)", suite.Name, fmtSeconds(dpuRes.Seconds))
	inf, obat, err := gpuEngines(suite)
	if err != nil {
		return sr, err
	}
	opt.progress("%s: GPU models done (avg %s / %s)", suite.Name, fmtSeconds(inf.Seconds), fmtSeconds(obat.Seconds))
	sr.Engines = []EngineResult{alv1, alvN, re2, dpuRes, inf, obat}
	for i := range sr.Engines {
		e := &sr.Engines[i]
		e.EnergyEff = perf.EnergyEff(e.Seconds, e.PowerW)
	}
	return sr, nil
}

// StreamChunk is the input-chunk size every engine processes at a time:
// the paper adopts the DPU's 16 KiB job limit across the board "for
// fairness", which also bounds the per-chunk work each ALVEARE core
// receives (and with it the scale-out efficiency).
const StreamChunk = 16 << 10

// alveareEngine measures the per-RE average wall time of an n-core
// ALVEARE on the suite, processing the stream in 16 KiB chunks.
func alveareEngine(suite *anmlzoo.Suite, cores int) (EngineResult, error) {
	res := EngineResult{Engine: fmt.Sprintf("ALVEARE-%d", cores), PowerW: perf.AlvearePowerAt(cores)}
	var total float64
	ran := 0
	cfg := arch.DefaultConfig()
	// Bound pathological rules: a rule needing more than ~300 cycles
	// per byte of chunk is excluded, as the paper excludes bad-formed
	// rules from its random selection.
	cfg.MaxCycles = int64(StreamChunk) * 300
	for _, re := range suite.Patterns {
		p, err := backend.Compile(re, backend.Options{})
		if err != nil {
			return res, fmt.Errorf("compile %q: %w", re, err)
		}
		eng, err := multicore.New(p, cores, cfg, 0)
		if err != nil {
			return res, err
		}
		var wall int64
		var matches int64
		failed := false
		for off := 0; off < len(suite.Dataset); off += StreamChunk {
			end := off + StreamChunk
			if end > len(suite.Dataset) {
				end = len(suite.Dataset)
			}
			r, err := eng.Run(suite.Dataset[off:end])
			if err != nil {
				failed = true
				break
			}
			wall += r.WallCycles
			matches += int64(len(r.Matches))
		}
		if failed {
			res.Skipped++
			continue
		}
		total += perf.AlveareTime(wall)
		res.Matches += matches
		ran++
	}
	if ran > 0 {
		res.Seconds = total / float64(ran)
	}
	return res, nil
}

// re2Engine measures the Pike VM (RE2's core) and models A53 seconds
// from its thread-step count.
func re2Engine(suite *anmlzoo.Suite) (EngineResult, error) {
	res := EngineResult{Engine: EngRE2A53, PowerW: perf.A53PowerW}
	var total float64
	ran := 0
	for _, re := range suite.Patterns {
		p, err := pikevm.Compile(re)
		if err != nil {
			return res, fmt.Errorf("pikevm %q: %w", re, err)
		}
		n := p.Count(suite.Dataset)
		total += perf.A53Time(p.Steps)
		res.Matches += int64(n)
		ran++
	}
	if ran > 0 {
		res.Seconds = total / float64(ran)
	}
	return res, nil
}

// dpuEngine measures the BlueField-2 model per rule with the paper's
// 16 KiB chunk limit.
func dpuEngine(suite *anmlzoo.Suite) (EngineResult, error) {
	res := EngineResult{Engine: EngDPU, PowerW: perf.DPUPowerW}
	cfg := dpu.DefaultConfig()
	var total float64
	ran := 0
	for _, re := range suite.Patterns {
		e, err := dpu.New(re, cfg)
		if err != nil {
			return res, fmt.Errorf("dpu %q: %w", re, err)
		}
		r := e.Process(suite.Dataset)
		total += r.DeviceSeconds
		res.Matches += int64(r.Matches)
		ran++
	}
	if ran > 0 {
		res.Seconds = total / float64(ran)
	}
	return res, nil
}

// gpuEngines measures the NFA frontier once per rule and prices it
// under both GPU models.
func gpuEngines(suite *anmlzoo.Suite) (inf, obat EngineResult, err error) {
	inf = EngineResult{Engine: EngINFAnt, PowerW: perf.V100PowerW}
	obat = EngineResult{Engine: EngOBAT, PowerW: perf.V100PowerW}
	infCfg, obatCfg := gpu.INFAntConfig(), gpu.OBATConfig()
	var tInf, tObat float64
	ran := 0
	for _, re := range suite.Patterns {
		e, gerr := gpu.New(re, obatCfg)
		if gerr != nil {
			return inf, obat, fmt.Errorf("gpu %q: %w", re, gerr)
		}
		w := e.Measure(suite.Dataset)
		ri := infCfg.Model(w)
		ro := obatCfg.Model(w)
		tInf += ri.DeviceSeconds
		tObat += ro.DeviceSeconds
		inf.Matches += int64(w.Matches)
		obat.Matches += int64(w.Matches)
		ran++
	}
	if ran > 0 {
		inf.Seconds = tInf / float64(ran)
		obat.Seconds = tObat / float64(ran)
	}
	return inf, obat, nil
}

// RenderFigure4 renders the execution-time series (lower is better).
func RenderFigure4(rs []SuiteResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Suite\tEngine\tAvg exec time\tMatches\tSkipped")
	for _, sr := range rs {
		for _, e := range sr.Engines {
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\n", sr.Suite, e.Engine, fmtSeconds(e.Seconds), e.Matches, e.Skipped)
		}
	}
	w.Flush()
	return b.String()
}

// RenderFigure5 renders the energy-efficiency series (higher is
// better).
func RenderFigure5(rs []SuiteResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Suite\tEngine\tPower (W)\tEnergy eff (1/J)")
	for _, sr := range rs {
		for _, e := range sr.Engines {
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.3g\n", sr.Suite, e.Engine, e.PowerW, e.EnergyEff)
		}
	}
	w.Flush()
	return b.String()
}

// Speedups extracts the headline ratios of the paper's abstract from a
// Figure 4 run: the big ALVEARE versus each baseline per suite.
func Speedups(rs []SuiteResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Suite\tvs RE2-A53\tvs DPU\tvs iNFAnt\tvs OBAT\tvs ALVEARE-1\tEff vs A53\tEff vs DPU")
	for _, sr := range rs {
		get := func(name string) *EngineResult {
			for i := range sr.Engines {
				if sr.Engines[i].Engine == name {
					return &sr.Engines[i]
				}
			}
			return nil
		}
		var big *EngineResult
		for i := range sr.Engines {
			if strings.HasPrefix(sr.Engines[i].Engine, "ALVEARE-") && sr.Engines[i].Engine != EngAlveare1 {
				big = &sr.Engines[i]
			}
		}
		if big == nil {
			big = get(EngAlveare1)
		}
		row := func(name string) string {
			e := get(name)
			if e == nil || e.Seconds == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", perf.Speedup(e.Seconds, big.Seconds))
		}
		effRow := func(name string) string {
			e := get(name)
			if e == nil || e.EnergyEff == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2fx", big.EnergyEff/e.EnergyEff)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n", sr.Suite,
			row(EngRE2A53), row(EngDPU), row(EngINFAnt), row(EngOBAT), row(EngAlveare1),
			effRow(EngRE2A53), effRow(EngDPU))
	}
	w.Flush()
	return b.String()
}

func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-6:
		return fmt.Sprintf("%.1f ns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1f us", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2f ms", s*1e3)
	default:
		return fmt.Sprintf("%.2f s", s)
	}
}

// ---------------------------------------------------------------------
// Scaling: 1..10 cores — wall-time speedup per suite plus the FPGA
// resource model that bounds the scale-out.

// ScalingRow is one core count of the scaling experiment.
type ScalingRow struct {
	Cores   int
	LUTPct  float64
	BRAMPct float64
	// Speedup per suite versus the single core.
	Speedup map[string]float64
}

// Scaling measures the multi-core speedup on every suite at the given
// core counts (default 1, 2, 4, 8, 10) and attaches the utilisation
// model.
func Scaling(opt Options, coreCounts ...int) ([]ScalingRow, error) {
	opt = opt.normalize()
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 2, 4, 8, perf.MaxCores}
	}
	sort.Ints(coreCounts)
	suites := anmlzoo.All(opt.Patterns, opt.DatasetSize, opt.Seed)

	// wall[suite][cores] = average wall seconds.
	wall := map[string]map[int]float64{}
	for _, suite := range suites {
		wall[suite.Name] = map[int]float64{}
		for _, n := range coreCounts {
			er, err := alveareEngine(suite, n)
			if err != nil {
				return nil, err
			}
			wall[suite.Name][n] = er.Seconds
			opt.progress("scaling %s @ %d cores done (avg %s)", suite.Name, n, fmtSeconds(er.Seconds))
		}
	}
	var rows []ScalingRow
	for _, n := range coreCounts {
		lut, bram := perf.Utilization(n)
		row := ScalingRow{Cores: n, LUTPct: lut, BRAMPct: bram, Speedup: map[string]float64{}}
		for _, suite := range suites {
			base := wall[suite.Name][coreCounts[0]]
			row.Speedup[suite.Name] = perf.Speedup(base, wall[suite.Name][n])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling renders the scaling experiment.
func RenderScaling(rows []ScalingRow, suites []string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Cores\tLUT%%\tBRAM%%")
	for _, s := range suites {
		fmt.Fprintf(w, "\t%s speedup", s)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f", r.Cores, r.LUTPct, r.BRAMPct)
		for _, s := range suites {
			fmt.Fprintf(w, "\t%.2fx", r.Speedup[s])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------
// Ablation: the design choices DESIGN.md calls out, measured as average
// ALVEARE cycles per rule on one suite.

// AblationRow is one configuration of the ablation study.
type AblationRow struct {
	Config    string
	AvgCycles float64
	Slowdown  float64 // versus the full design
	Skipped   int
}

// ablationConfig is one compiler/architecture variant.
type ablationConfig struct {
	name     string
	compiler backend.Options
	arch     func(arch.Config) arch.Config
}

func ablationConfigs() []ablationConfig {
	id := func(c arch.Config) arch.Config { return c }
	return []ablationConfig{
		{"full design (4 CU, fused, all primitives)", backend.Options{}, id},
		{"no fusion", backend.Options{NoFusion: true}, id},
		{"no RANGE primitive", noRangeOptions(), id},
		{"no NOT primitive", noNotOptions(), id},
		{"no counters (unfolded)", noCountersOptions(), id},
		{"minimal compiler", backend.Minimal(), id},
		{"1 compute unit", backend.Options{}, func(c arch.Config) arch.Config { c.ComputeUnits = 1; return c }},
		{"2 compute units", backend.Options{}, func(c arch.Config) arch.Config { c.ComputeUnits = 2; return c }},
		{"literal prefilter (extension)", backend.Options{}, func(c arch.Config) arch.Config { c.EnablePrefilter = true; return c }},
	}
}

// Ablation runs the configurations on the named suite. The default is
// Snort, whose negated classes and counters exercise every advanced
// primitive (PowerEN's alternation-led rules barely use NOT/RANGE).
func Ablation(opt Options, suiteName string) ([]AblationRow, error) {
	opt = opt.normalize()
	if suiteName == "" {
		suiteName = "Snort"
	}
	suite, err := anmlzoo.ByName(suiteName, opt.Patterns, opt.DatasetSize, opt.Seed)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	var baseline float64
	for i, cfg := range ablationConfigs() {
		avg, skipped, err := ablationRun(suite, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		opt.progress("ablation %q done (avg %.0f cycles)", cfg.name, avg)
		row := AblationRow{Config: cfg.name, AvgCycles: avg, Skipped: skipped}
		if i == 0 {
			baseline = avg
		}
		if baseline > 0 {
			row.Slowdown = avg / baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func ablationRun(suite *anmlzoo.Suite, cfg ablationConfig) (avg float64, skipped int, err error) {
	acfg := cfg.arch(arch.DefaultConfig())
	var total int64
	ran := 0
	for _, re := range suite.Patterns {
		p, err := backend.Compile(re, cfg.compiler)
		if err != nil {
			return 0, 0, fmt.Errorf("compile %q: %w", re, err)
		}
		c, err := arch.NewCore(p, acfg)
		if err != nil {
			return 0, 0, err
		}
		if _, err := c.FindAll(suite.Dataset, 0); err != nil {
			skipped++
			continue
		}
		total += c.Stats().Cycles
		ran++
	}
	if ran > 0 {
		avg = float64(total) / float64(ran)
	}
	return avg, skipped, nil
}

func noRangeOptions() backend.Options {
	o := backend.Options{}
	o.IR.NoRange = true
	return o
}

func noNotOptions() backend.Options {
	o := backend.Options{}
	o.IR.NoNot = true
	return o
}

func noCountersOptions() backend.Options {
	o := backend.Options{}
	o.IR.NoCounters = true
	return o
}

// RenderAblation renders the ablation table.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Configuration\tAvg cycles/rule\tSlowdown\tSkipped")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.2fx\t%d\n", r.Config, r.AvgCycles, r.Slowdown, r.Skipped)
	}
	w.Flush()
	return b.String()
}
