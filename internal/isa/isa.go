// Package isa defines the ALVEARE regular-expression instruction set:
// a fixed-size 43-bit format that composes control, base (intra-character)
// and complex (intra-RE) operators in a single word, following the DAC'24
// paper "ALVEARE: a Domain-Specific Framework for Regular Expressions".
//
// Each instruction breaks into three fields:
//
//	bits 42..36  opcode (7 bits, composable)
//	bits 35..32  reference-enable bits ("0"-ended, one per reference byte)
//	bits 31..0   reference (characters for base ops, counters and relative
//	             jumps for the entering sub-RE operator)
//
// The opcode field itself is a composition of sub-fields:
//
//	bit 42       OPEN  — entering sub-RE operator "("
//	bit 41       NOT   — match inversion (composes with OR and RANGE)
//	bits 40..39  BASE  — 00 none, 01 OR, 10 AND, 11 RANGE
//	bits 38..36  CLOSE — 000 none, 001 ")"+lazy quantifier,
//	             010 ")"+greedy quantifier, 011 ")|", 100 plain ")"
//
// An all-zero word is the End-of-RE (EoR) control instruction; the zero
// value of Instr is therefore EoR and is ready to use.
//
// Operators from different classes may be active in the same instruction
// if and only if at most one of them uses the reference field: closing
// operators carry no reference and fuse with base operators, while OPEN
// owns the reference and never fuses.
package isa

import (
	"errors"
	"fmt"
	"strings"
)

// BaseOp selects the intra-character operation of an instruction.
type BaseOp uint8

// Base operator encodings (bits 40..39 of the opcode).
const (
	BaseNone  BaseOp = iota // no base operation in this instruction
	BaseOR                  // any enabled reference byte matches one char
	BaseAND                 // all enabled reference bytes match consecutively
	BaseRANGE               // char within [lo1,hi1] or, if enabled, [lo2,hi2]
)

// String returns the mnemonic of the base operator.
func (b BaseOp) String() string {
	switch b {
	case BaseNone:
		return "-"
	case BaseOR:
		return "OR"
	case BaseAND:
		return "AND"
	case BaseRANGE:
		return "RANGE"
	}
	return fmt.Sprintf("BaseOp(%d)", uint8(b))
}

// CloseOp selects the sub-RE-terminating operation of an instruction.
type CloseOp uint8

// Close operator encodings (bits 38..36 of the opcode).
const (
	CloseNone        CloseOp = iota // no closing operation
	CloseQuantLazy                  // ")" + lazy quantifier
	CloseQuantGreedy                // ")" + greedy quantifier
	CloseAlt                        // ")|" — end of a sub-RE alternative
	ClosePlain                      // plain ")" — simple sub-RE termination
)

// String returns the mnemonic of the close operator.
func (c CloseOp) String() string {
	switch c {
	case CloseNone:
		return "-"
	case CloseQuantLazy:
		return ")?L"
	case CloseQuantGreedy:
		return ")+G"
	case CloseAlt:
		return ")|"
	case ClosePlain:
		return ")"
	}
	return fmt.Sprintf("CloseOp(%d)", uint8(c))
}

// Unbounded is the reserved 6-bit counter value encoding an infinite upper
// bound: counters span 0..62 and 63 means "no maximum".
const Unbounded = 63

// MaxCounter is the largest representable bounded repetition count.
const MaxCounter = 62

// MaxOffset is the largest relative jump representable in the 43-bit
// binary encoding (6-bit bwd/fwd subfields). In-memory programs may hold
// larger offsets; Encode rejects them with ErrOffsetOverflow.
const MaxOffset = 63

// Instr is the decoded, in-memory form of one 43-bit ALVEARE instruction.
// The zero value is the End-of-RE control instruction.
//
// The Bwd and Fwd relative offsets are kept as full ints so that programs
// whose jumps exceed the 6-bit binary subfields can still be executed by
// the simulator; Encode reports ErrOffsetOverflow for such instructions.
type Instr struct {
	Open  bool    // entering sub-RE operator "("
	Not   bool    // match inversion, composes with OR/RANGE
	Base  BaseOp  // intra-character operation
	Close CloseOp // sub-RE-terminating operation

	// Base-operator payload: Chars[0..NChars-1] are the enabled reference
	// bytes ("0"-ended sequential enable bits). For RANGE, pairs
	// (Chars[0],Chars[1]) and (Chars[2],Chars[3]) are [lo,hi] ranges and
	// NChars is 2 or 4.
	Chars  [4]byte
	NChars int

	// OPEN payload (paper Fig. 2). MinEn/MaxEn validate the counters,
	// BwdEn/FwdEn validate the offsets, Lazy anticipates lazy matching.
	MinEn, MaxEn, BwdEn, FwdEn, Lazy bool
	Min, Max                         uint8 // 0..62; Max==Unbounded means no limit
	Bwd, Fwd                         int   // relative jumps, see package doc
}

// Errors reported by instruction validation and encoding.
var (
	ErrOffsetOverflow  = errors.New("isa: relative jump exceeds 6-bit encoding")
	ErrCounterOverflow = errors.New("isa: counter exceeds 6-bit encoding")
	ErrBadInstr        = errors.New("isa: malformed instruction")
)

// IsEoR reports whether the instruction is the End-of-RE control operator,
// i.e. no opcode bit is set.
func (in Instr) IsEoR() bool {
	return !in.Open && !in.Not && in.Base == BaseNone && in.Close == CloseNone
}

// IsQuantClose reports whether the instruction carries a quantifier close
// (greedy or lazy).
func (in Instr) IsQuantClose() bool {
	return in.Close == CloseQuantGreedy || in.Close == CloseQuantLazy
}

// HasBase reports whether the instruction carries a base operation.
func (in Instr) HasBase() bool { return in.Base != BaseNone }

// Consumes returns the number of data characters a successful base match
// consumes: len(chars) for AND, one for OR and RANGE, zero otherwise.
func (in Instr) Consumes() int {
	switch in.Base {
	case BaseAND:
		return in.NChars
	case BaseOR, BaseRANGE:
		return 1
	}
	return 0
}

// MatchBase evaluates the instruction's base operation against data,
// reading at most Consumes() bytes. It returns the number of bytes
// consumed and whether the operation matched. The NOT composition is
// applied for OR and RANGE (a negated match still consumes one byte).
// A zero-length data slice never matches an operation that consumes input.
func (in Instr) MatchBase(data []byte) (n int, ok bool) {
	switch in.Base {
	case BaseAND:
		if len(data) < in.NChars {
			return 0, false
		}
		for i := 0; i < in.NChars; i++ {
			if data[i] != in.Chars[i] {
				return 0, false
			}
		}
		return in.NChars, true
	case BaseOR:
		if len(data) == 0 {
			return 0, false
		}
		c := data[0]
		hit := false
		for i := 0; i < in.NChars; i++ {
			if c == in.Chars[i] {
				hit = true
				break
			}
		}
		if in.Not {
			hit = !hit
		}
		if hit {
			return 1, true
		}
		return 0, false
	case BaseRANGE:
		if len(data) == 0 {
			return 0, false
		}
		c := data[0]
		hit := c >= in.Chars[0] && c <= in.Chars[1]
		if !hit && in.NChars == 4 {
			hit = c >= in.Chars[2] && c <= in.Chars[3]
		}
		if in.Not {
			hit = !hit
		}
		if hit {
			return 1, true
		}
		return 0, false
	}
	return 0, false
}

// Validate checks the structural invariants of a single instruction:
// reference ownership (at most one reference user), composition rules,
// counter and enable-bit consistency. Program-level rules (jump targets,
// balancing, EoR placement) are checked by Program.Validate.
func (in Instr) Validate() error {
	if in.Open {
		if in.Base != BaseNone || in.NChars != 0 {
			return fmt.Errorf("%w: OPEN fused with base operator (both use the reference)", ErrBadInstr)
		}
		if in.Close != CloseNone {
			return fmt.Errorf("%w: OPEN fused with a closing operator", ErrBadInstr)
		}
		if in.Not {
			return fmt.Errorf("%w: NOT composed with OPEN", ErrBadInstr)
		}
		if in.MinEn && in.Min > MaxCounter {
			return fmt.Errorf("%w: min counter %d", ErrCounterOverflow, in.Min)
		}
		if in.MaxEn && in.Max > Unbounded {
			return fmt.Errorf("%w: max counter %d", ErrCounterOverflow, in.Max)
		}
		if in.MinEn && in.MaxEn && in.Max != Unbounded && in.Min > in.Max {
			return fmt.Errorf("%w: min %d > max %d", ErrBadInstr, in.Min, in.Max)
		}
		if in.Bwd < 0 || in.Fwd < 0 {
			return fmt.Errorf("%w: negative relative jump", ErrBadInstr)
		}
		return nil
	}
	if in.Not && in.Base != BaseOR && in.Base != BaseRANGE {
		return fmt.Errorf("%w: NOT composes only with OR and RANGE", ErrBadInstr)
	}
	switch in.Base {
	case BaseNone:
		if in.NChars != 0 {
			return fmt.Errorf("%w: reference bytes enabled without a base operator", ErrBadInstr)
		}
	case BaseAND, BaseOR:
		if in.NChars < 1 || in.NChars > 4 {
			return fmt.Errorf("%w: %s with %d enabled bytes", ErrBadInstr, in.Base, in.NChars)
		}
	case BaseRANGE:
		if in.NChars != 2 && in.NChars != 4 {
			return fmt.Errorf("%w: RANGE with %d enabled bytes (want 2 or 4)", ErrBadInstr, in.NChars)
		}
		if in.Chars[0] > in.Chars[1] {
			return fmt.Errorf("%w: RANGE lo1 %q > hi1 %q", ErrBadInstr, in.Chars[0], in.Chars[1])
		}
		if in.NChars == 4 && in.Chars[2] > in.Chars[3] {
			return fmt.Errorf("%w: RANGE lo2 %q > hi2 %q", ErrBadInstr, in.Chars[2], in.Chars[3])
		}
	default:
		return fmt.Errorf("%w: unknown base op %d", ErrBadInstr, in.Base)
	}
	if in.Close > ClosePlain {
		return fmt.Errorf("%w: unknown close op %d", ErrBadInstr, in.Close)
	}
	return nil
}

// String renders a one-line human-readable form of the instruction, the
// same syntax the disassembler emits.
func (in Instr) String() string {
	if in.IsEoR() {
		return "EOR"
	}
	var b strings.Builder
	if in.Open {
		b.WriteString("(")
		if in.MinEn || in.MaxEn {
			b.WriteString(" {")
			if in.MinEn {
				fmt.Fprintf(&b, "%d", in.Min)
			}
			b.WriteString(",")
			if in.MaxEn {
				if in.Max == Unbounded {
					b.WriteString("inf")
				} else {
					fmt.Fprintf(&b, "%d", in.Max)
				}
			}
			b.WriteString("}")
		}
		if in.Lazy {
			b.WriteString(" lazy")
		}
		if in.BwdEn {
			fmt.Fprintf(&b, " bwd=%d", in.Bwd)
		}
		if in.FwdEn {
			fmt.Fprintf(&b, " fwd=%d", in.Fwd)
		}
		return b.String()
	}
	if in.HasBase() {
		if in.Not {
			b.WriteString("NOT ")
		}
		b.WriteString(in.Base.String())
		b.WriteString(" ")
		switch in.Base {
		case BaseRANGE:
			fmt.Fprintf(&b, "[%s-%s", rangeByte(in.Chars[0]), rangeByte(in.Chars[1]))
			if in.NChars == 4 {
				fmt.Fprintf(&b, "%s-%s", rangeByte(in.Chars[2]), rangeByte(in.Chars[3]))
			}
			b.WriteString("]")
		default:
			b.WriteString("\"")
			for i := 0; i < in.NChars; i++ {
				b.WriteString(quoteByte(in.Chars[i]))
			}
			b.WriteString("\"")
		}
	}
	if in.Close != CloseNone {
		if in.HasBase() {
			b.WriteString(" + ")
		}
		b.WriteString(in.Close.String())
	}
	return b.String()
}

// rangeByte renders a RANGE bound, additionally escaping the bytes that
// are structural inside a range rendering ('-', '[' and ']') so the
// assembler can parse listings back unambiguously.
func rangeByte(c byte) string {
	switch c {
	case '-', '[', ']':
		return fmt.Sprintf("\\x%02x", c)
	}
	return quoteByte(c)
}

// quoteByte renders a byte printably, using \xHH for non-graphic bytes.
func quoteByte(c byte) string {
	if c >= 0x21 && c <= 0x7e && c != '"' && c != '\\' {
		return string(c)
	}
	switch c {
	case ' ':
		return "\\s"
	case '\n':
		return "\\n"
	case '\t':
		return "\\t"
	case '\r':
		return "\\r"
	}
	return fmt.Sprintf("\\x%02x", c)
}

// SetChars installs the enabled reference bytes of a base operator.
func (in *Instr) SetChars(cs ...byte) {
	in.NChars = len(cs)
	copy(in.Chars[:], cs)
}

// NewAND builds an AND instruction matching the given 1..4 literal bytes.
func NewAND(cs ...byte) Instr {
	in := Instr{Base: BaseAND}
	in.SetChars(cs...)
	return in
}

// NewOR builds an OR instruction matching any of the given 1..4 bytes.
func NewOR(cs ...byte) Instr {
	in := Instr{Base: BaseOR}
	in.SetChars(cs...)
	return in
}

// NewRANGE builds a RANGE instruction over one [lo,hi] pair.
func NewRANGE(lo, hi byte) Instr {
	in := Instr{Base: BaseRANGE}
	in.SetChars(lo, hi)
	return in
}

// NewRANGE2 builds a RANGE instruction packing two [lo,hi] pairs, the
// single-instruction form of classes such as [a-z0-9].
func NewRANGE2(lo1, hi1, lo2, hi2 byte) Instr {
	in := Instr{Base: BaseRANGE}
	in.SetChars(lo1, hi1, lo2, hi2)
	return in
}

// NewOpen builds an entering sub-RE instruction with a bounded or
// unbounded counter ({min,max}, max==Unbounded for no limit) and the
// forward offset to the instruction following the sub-RE's close.
func NewOpen(min, max uint8, lazy bool, fwd int) Instr {
	return Instr{
		Open:  true,
		MinEn: true, Min: min,
		MaxEn: true, Max: max,
		Lazy:  lazy,
		FwdEn: true, Fwd: fwd,
	}
}

// NewOpenAlt builds the entering instruction of one alternative in an
// alternation chain: fwd is the offset to the chain end, nextAlt the
// offset to the next alternative's OPEN (0 for the last alternative).
func NewOpenAlt(fwd, nextAlt int) Instr {
	in := Instr{Open: true, FwdEn: true, Fwd: fwd}
	if nextAlt != 0 {
		in.BwdEn = true
		in.Bwd = nextAlt
	}
	return in
}
