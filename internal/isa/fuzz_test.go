package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnmarshalBinaryNeverPanics: arbitrary byte mutations of a valid
// binary either load to a valid program or fail cleanly — the loader is
// the trust boundary of the instruction memory.
func TestUnmarshalBinaryNeverPanics(t *testing.T) {
	base := validProgram()
	bin, err := base.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		b := append([]byte(nil), bin...)
		// 1..4 random mutations: bit flips, truncations, extensions.
		for m := 0; m < 1+r.Intn(4); m++ {
			switch r.Intn(4) {
			case 0:
				if len(b) > 0 {
					b[r.Intn(len(b))] ^= 1 << r.Intn(8)
				}
			case 1:
				if len(b) > 1 {
					b = b[:r.Intn(len(b))]
				}
			case 2:
				b = append(b, byte(r.Intn(256)))
			case 3:
				if len(b) > 0 {
					b[r.Intn(len(b))] = byte(r.Intn(256))
				}
			}
		}
		var p Program
		if err := p.UnmarshalBinary(b); err == nil {
			// Accepted: must then be fully valid.
			if verr := p.Validate(); verr != nil {
				t.Fatalf("loader accepted an invalid program: %v", verr)
			}
		}
	}
}

// TestRandomWordsQuick: Decode of arbitrary 43-bit words never panics
// and only canonical words are accepted.
func TestRandomWordsQuick(t *testing.T) {
	f := func(w uint64) bool {
		in, err := Decode(w & WordMask)
		if err != nil {
			return true
		}
		w2, err := in.Encode()
		return err == nil && w2 == w&WordMask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30000}); err != nil {
		t.Error(err)
	}
}

// TestOpCountMatchesDisassembly: OpCount equals the number of non-EoR
// lines the disassembler prints.
func TestOpCountMatchesDisassembly(t *testing.T) {
	p := validProgram()
	if got, want := p.OpCount(), p.Len()-1; got != want {
		t.Errorf("OpCount = %d, want %d", got, want)
	}
}
