package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Program is a compiled ALVEARE executable: a sequence of instructions
// terminated by a single End-of-RE control instruction.
type Program struct {
	// Source is the regular expression the program was compiled from,
	// kept for diagnostics and disassembly headers. It does not affect
	// execution.
	Source string

	Code []Instr

	// Hint is optional compiler metadata (like an ELF note): a
	// necessary-factor prefilter the engine may use when configured to.
	// It is not part of the 43-bit binary encoding and is not
	// serialised by MarshalBinary.
	Hint *PrefilterHint
}

// PrefilterHint records a literal every match must contain, starting
// between PreMin and PreMax bytes after the match start (PreMax < 0
// when the prefix is unbounded, in which case only containment
// filtering is possible).
type PrefilterHint struct {
	Literal        []byte
	PreMin, PreMax int
}

// Errors reported by program-level validation and binary loading.
var (
	ErrNoEoR       = errors.New("isa: program does not end with EoR")
	ErrStrayEoR    = errors.New("isa: EoR before the last instruction")
	ErrBadTarget   = errors.New("isa: jump target outside program")
	ErrUnbalanced  = errors.New("isa: unbalanced sub-RE open/close")
	ErrBadMagic    = errors.New("isa: bad binary magic")
	ErrTruncated   = errors.New("isa: truncated binary")
	ErrEmptyProg   = errors.New("isa: empty program")
	ErrQuantNoOpen = errors.New("isa: quantifier close without matching OPEN counters")
)

// Len returns the number of instructions including the EoR.
func (p *Program) Len() int { return len(p.Code) }

// OpCount returns the instruction count excluding the EoR terminator,
// the metric the paper's Table 2 reports ("excluding the EoR").
func (p *Program) OpCount() int {
	n := 0
	for i := range p.Code {
		if !p.Code[i].IsEoR() {
			n++
		}
	}
	return n
}

// Validate checks program-level invariants: per-instruction validity, a
// single trailing EoR, in-range jump targets, and the sub-RE structure.
// Structure is span-based rather than depth-based because a complex OR
// chain has one entering operator but one ")|" per alternative: every
// OPEN's forward offset must delimit a non-empty span whose final
// instruction carries a closing operator, every closing operator must
// lie inside some OPEN's span, and every next-alternative (backward)
// address must target another entering operator.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return ErrEmptyProg
	}
	last := len(p.Code) - 1
	if !p.Code[last].IsEoR() {
		return ErrNoEoR
	}
	inSpan := make([]bool, len(p.Code))
	for pc := range p.Code {
		in := &p.Code[pc]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("pc %d: %w", pc, err)
		}
		if in.IsEoR() {
			if pc != last {
				return fmt.Errorf("%w: pc %d", ErrStrayEoR, pc)
			}
			continue
		}
		if !in.Open {
			continue
		}
		if !in.FwdEn {
			return fmt.Errorf("%w: OPEN at pc %d without forward address", ErrUnbalanced, pc)
		}
		end := pc + in.Fwd // first instruction after the sub-RE
		if in.Fwd < 2 || end > last {
			return fmt.Errorf("%w: pc %d fwd->%d", ErrBadTarget, pc, end)
		}
		if p.Code[end-1].Close == CloseNone {
			return fmt.Errorf("%w: sub-RE at pc %d does not end with a close (pc %d)", ErrUnbalanced, pc, end-1)
		}
		for i := pc + 1; i < end; i++ {
			inSpan[i] = true
		}
		if in.BwdEn {
			t := pc + in.Bwd
			if t <= pc || t > last || !p.Code[t].Open {
				return fmt.Errorf("%w: pc %d next-alt->%d is not an OPEN", ErrBadTarget, pc, t)
			}
		}
	}
	for pc := range p.Code {
		if p.Code[pc].Close != CloseNone && !inSpan[pc] {
			return fmt.Errorf("%w: close at pc %d with no open sub-RE", ErrUnbalanced, pc)
		}
	}
	return nil
}

// Disassemble renders the whole program as a human-readable listing, one
// instruction per line with its address and, when encodable, the 43-bit
// word in hexadecimal.
func (p *Program) Disassemble() string {
	var b strings.Builder
	if p.Source != "" {
		fmt.Fprintf(&b, "; regex: %s\n", p.Source)
	}
	for pc := range p.Code {
		in := &p.Code[pc]
		w, err := in.Encode()
		if err != nil {
			fmt.Fprintf(&b, "%04d:  %-14s %s\n", pc, "(wide)", in.String())
			continue
		}
		fmt.Fprintf(&b, "%04d:  %011x  %s\n", pc, w, in.String())
	}
	return b.String()
}

// binaryMagic identifies the ALVEARE loadable binary format: the magic,
// a format version and the instruction count precede the packed words.
var binaryMagic = [4]byte{'A', 'L', 'V', 'R'}

const binaryVersion = 1

// MarshalBinary serialises the program to the loadable format the
// instruction memory accepts: "ALVR", version byte, big-endian uint32
// count, then one 43-bit word per instruction packed in 6 bytes
// (big-endian, 48 bits with the top 5 clear). It fails if any instruction
// exceeds the binary field widths (e.g. ErrOffsetOverflow).
func (p *Program) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 9+6*len(p.Code))
	out = append(out, binaryMagic[:]...)
	out = append(out, binaryVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.Code)))
	var buf [8]byte
	for pc := range p.Code {
		w, err := p.Code[pc].Encode()
		if err != nil {
			return nil, fmt.Errorf("pc %d: %w", pc, err)
		}
		binary.BigEndian.PutUint64(buf[:], w)
		out = append(out, buf[2:]...) // low 48 bits, top 5 of them zero
	}
	return out, nil
}

// UnmarshalBinary loads a program previously produced by MarshalBinary,
// re-validating every instruction and the program structure.
func (p *Program) UnmarshalBinary(data []byte) error {
	if len(data) < 9 {
		return ErrTruncated
	}
	if [4]byte(data[:4]) != binaryMagic {
		return ErrBadMagic
	}
	if data[4] != binaryVersion {
		return fmt.Errorf("%w: version %d", ErrBadMagic, data[4])
	}
	n := int(binary.BigEndian.Uint32(data[5:9]))
	body := data[9:]
	if len(body) != 6*n {
		return fmt.Errorf("%w: want %d instruction bytes, have %d", ErrTruncated, 6*n, len(body))
	}
	code := make([]Instr, n)
	var buf [8]byte
	for i := 0; i < n; i++ {
		copy(buf[2:], body[6*i:6*i+6])
		buf[0], buf[1] = 0, 0
		w := binary.BigEndian.Uint64(buf[:])
		in, err := Decode(w)
		if err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
		code[i] = in
	}
	p.Code = code
	return p.Validate()
}

// OpTableRow describes one row of the paper's Table 1 (operation classes).
type OpTableRow struct {
	Class, Operator, Opcode, Description string
}

// OpTable returns the ISA operation classes exactly as the paper's
// Table 1 lays them out, with the opcode bit patterns of this
// implementation ("-" marks don't-care composition bits).
func OpTable() []OpTableRow {
	return []OpTableRow{
		{"Control", "EoR", "0000000", "End of RE"},
		{"Base", "AND", "0-10---", "Char-based And"},
		{"Base", "OR", "0-01---", "Char-based Or"},
		{"Base", "RANGE", "0-11---", "Char-based Range"},
		{"Base", "NOT", "01-----", "Match Inversion"},
		{"Complex", "(", "1000000", "New Sub-RE"},
		{"Complex", ")", "0----100", "End of Sub-RE"},
		{"Complex", "QUANT L", "0----001", ") + Lazy Quantifier"},
		{"Complex", "QUANT", "0----010", ") + Greedy Quantifier"},
		{"Complex", ")|", "0----011", ") + OR of Sub-RE"},
	}
}
