package isa

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	p := validProgram()
	var b strings.Builder
	if err := p.WriteDot(&b, "test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "test" {`,
		"regex: ([^A-Z])+",
		"house",        // OPEN node shape
		"doublecircle", // EoR
		`label="fwd"`,
		`label="loop"`, // quant close loops to the body
		"n0 -> n1",     // sequential
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}

	// Alternation: next-alternative edges.
	alt := &Program{Code: []Instr{
		NewOpenAlt(4, 2),
		func() Instr { i := NewAND('a'); i.Close = CloseAlt; return i }(),
		NewOpenAlt(2, 0),
		func() Instr { i := NewAND('b'); i.Close = ClosePlain; return i }(),
		{},
	}}
	if err := alt.Validate(); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := alt.WriteDot(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `label="alt"`) {
		t.Errorf("alternation edge missing:\n%s", b.String())
	}
}
