package isa

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestAssembleDisassembleRoundTrip: Assemble(Disassemble(p)) == p for
// compiled-shape programs.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	progs := []*Program{
		validProgram(),
		{
			Source: "hand-written",
			Code: []Instr{
				NewOpenAlt(3, 3),
				func() Instr { i := NewAND('G', 'E', 'T'); i.Close = CloseAlt; return i }(),
				NewOpenAlt(3, 0),
				func() Instr { i := NewAND('P', 'U', 'T'); i.Close = ClosePlain; return i }(),
				NewRANGE2('a', 'z', '0', '9'),
				{Close: ClosePlain}, // unreachable shape but line-parsable
				{},
			},
		},
	}
	// The second program's standalone close is structurally invalid
	// (no span), so restrict it to instruction-level round-trips.
	p := progs[0]
	text := p.Disassemble()
	q, err := Assemble(text)
	if err != nil {
		t.Fatalf("assemble:\n%s\n%v", text, err)
	}
	if !reflect.DeepEqual(q.Code, p.Code) {
		t.Errorf("roundtrip mismatch:\n in=%+v\nout=%+v", p.Code, q.Code)
	}
	if q.Source != p.Source {
		t.Errorf("source = %q, want %q", q.Source, p.Source)
	}
}

// TestParseInstrRoundTripRandom: ParseInstr(in.String()) == in for
// random valid instructions.
func TestParseInstrRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 4000; i++ {
		in := genInstr(r)
		got, err := ParseInstr(in.String())
		if err != nil {
			t.Fatalf("#%d: parse %q (%+v): %v", i, in.String(), in, err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("#%d: %q round-tripped to %+v, want %+v", i, in.String(), got, in)
		}
	}
}

func TestAssembleHandWritten(t *testing.T) {
	// The paper's example, written by hand without addresses.
	text := `
; regex: ([^A-Z])+
( {1,inf} fwd=2
NOT RANGE [A-Z] + )+G
EOR
`
	p, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != "([^A-Z])+" {
		t.Errorf("source = %q", p.Source)
	}
	want := validProgram()
	if !reflect.DeepEqual(p.Code, want.Code) {
		t.Errorf("assembled %+v, want %+v", p.Code, want.Code)
	}
}

func TestAssembleWithAddressesAndWords(t *testing.T) {
	// Full disassembler output including address and hex columns.
	text := "0000:  400d007f002  ( {1,inf} fwd=2\n" +
		"0001:  05e8415a000  NOT RANGE [A-Z] + )+G\n" +
		"0002:  00000000000  EOR\n"
	p, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 3 || !p.Code[1].Not {
		t.Errorf("assembled: %+v", p.Code)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown mnemonic", "FROB \"a\"\nEOR"},
		{"bad close", "AND \"a\" + )X\nEOR"},
		{"unterminated string", "AND \"a\nEOR"},
		{"bad escape", `AND "\q"` + "\nEOR"},
		{"too many bytes", `AND "abcde"` + "\nEOR"},
		{"malformed range", "RANGE [abc]\nEOR"},
		{"bad counter", "( {x,2} fwd=2\nAND \"a\" + )\nEOR"},
		{"unknown open field", "( wat fwd=2\nAND \"a\" + )\nEOR"},
		{"no EOR", "AND \"a\""},
		{"NOT on AND", "NOT AND \"a\"\nEOR"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.text); err == nil {
				t.Errorf("accepted:\n%s", c.text)
			}
		})
	}
}

func TestAssembleEscapedPayloads(t *testing.T) {
	in, err := ParseInstr(`AND "\x00\xff\s\n"`)
	if err != nil {
		t.Fatal(err)
	}
	want := NewAND(0, 0xff, ' ', '\n')
	if !reflect.DeepEqual(in, want) {
		t.Errorf("got %+v, want %+v", in, want)
	}
	// Structural bytes escaped inside ranges.
	in, err = ParseInstr(`RANGE [\x2d-\x5d]`)
	if err != nil {
		t.Fatal(err)
	}
	if in.Chars[0] != '-' || in.Chars[1] != ']' {
		t.Errorf("range bounds = %v", in.Chars[:2])
	}
	if !strings.Contains(NewRANGE('-', ']').String(), `\x2d`) {
		t.Error("disassembly does not escape structural range bounds")
	}
}
