package isa

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestPaperExampleEncoding pins the worked example of the paper's §4:
// ([^A-Z])+ compiles to three instructions whose opcodes are "1000000",
// "0111010" and "0000000", with enable bits "1100" and reference "AZ" on
// the middle one.
func TestPaperExampleEncoding(t *testing.T) {
	open := NewOpen(1, Unbounded, false, 2)
	body := NewRANGE('A', 'Z')
	body.Not = true
	body.Close = CloseQuantGreedy
	eor := Instr{}

	wOpen, err := open.Encode()
	if err != nil {
		t.Fatalf("encode open: %v", err)
	}
	wBody, err := body.Encode()
	if err != nil {
		t.Fatalf("encode body: %v", err)
	}
	wEoR, err := eor.Encode()
	if err != nil {
		t.Fatalf("encode EoR: %v", err)
	}

	if got := wOpen >> 36; got != 0b1000000 {
		t.Errorf("open opcode = %07b, want 1000000", got)
	}
	if got := wBody >> 36; got != 0b0111010 {
		t.Errorf("body opcode = %07b, want 0111010", got)
	}
	if wEoR != 0 {
		t.Errorf("EoR word = %#x, want 0", wEoR)
	}
	if got := (wBody >> 32) & 0xf; got != 0b1100 {
		t.Errorf("body enable bits = %04b, want 1100", got)
	}
	if b0, b1 := byte(wBody>>24), byte(wBody>>16); b0 != 'A' || b1 != 'Z' {
		t.Errorf("body reference bytes = %q %q, want 'A' 'Z'", b0, b1)
	}

	// Fig. 2 enabler bits for the open: min, max and fwd valid, greedy.
	if wOpen&(1<<openMinEnBit) == 0 || wOpen&(1<<openMaxEnBit) == 0 || wOpen&(1<<openFwdEnBit) == 0 {
		t.Errorf("open enablers missing: %043b", wOpen)
	}
	if wOpen&(1<<openLazyBit) != 0 {
		t.Errorf("open lazy bit set for a greedy quantifier")
	}
	if min := (wOpen >> openMinShift) & sixBitMask; min != 1 {
		t.Errorf("open min = %d, want 1", min)
	}
	if max := (wOpen >> openMaxShift) & sixBitMask; max != Unbounded {
		t.Errorf("open max = %d, want %d (unbounded)", max, Unbounded)
	}
	if fwd := (wOpen >> openFwdShift) & sixBitMask; fwd != 2 {
		t.Errorf("open fwd = %d, want 2", fwd)
	}
}

func TestOpcodeTableEncodings(t *testing.T) {
	cases := []struct {
		name string
		in   Instr
		top7 uint64
	}{
		{"EoR", Instr{}, 0b0000000},
		{"AND", NewAND('a'), 0b0010000},
		{"OR", NewOR('a', 'b'), 0b0001000},
		{"RANGE", NewRANGE('a', 'z'), 0b0011000},
		{"NOT OR", func() Instr { i := NewOR('a'); i.Not = true; return i }(), 0b0101000},
		{"open", NewOpenAlt(3, 0), 0b1000000},
		{"AND+close", func() Instr { i := NewAND('x'); i.Close = ClosePlain; return i }(), 0b0010100},
		{"AND+quantL", func() Instr { i := NewAND('x'); i.Close = CloseQuantLazy; return i }(), 0b0010001},
		{"AND+quantG", func() Instr { i := NewAND('x'); i.Close = CloseQuantGreedy; return i }(), 0b0010010},
		{"AND+altclose", func() Instr { i := NewAND('x'); i.Close = CloseAlt; return i }(), 0b0010011},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, err := c.in.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if got := w >> 36; got != c.top7 {
				t.Errorf("opcode = %07b, want %07b", got, c.top7)
			}
		})
	}
}

func TestMatchBase(t *testing.T) {
	notOR := NewOR(' ')
	notOR.Not = true
	notRange := NewRANGE('A', 'Z')
	notRange.Not = true
	r2 := NewRANGE2('a', 'z', '0', '9')

	cases := []struct {
		name string
		in   Instr
		data string
		n    int
		ok   bool
	}{
		{"AND hit", NewAND('a', 'b', 'c'), "abcd", 3, true},
		{"AND miss", NewAND('a', 'b', 'c'), "abd", 0, false},
		{"AND short data", NewAND('a', 'b', 'c'), "ab", 0, false},
		{"AND single", NewAND('x'), "x", 1, true},
		{"AND empty data", NewAND('x'), "", 0, false},
		{"OR hit first", NewOR('a', 'b'), "a", 1, true},
		{"OR hit last", NewOR('a', 'b', 'c', 'd'), "d", 1, true},
		{"OR miss", NewOR('a', 'b'), "c", 0, false},
		{"OR empty data", NewOR('a'), "", 0, false},
		{"NOT OR hit", notOR, "x", 1, true},
		{"NOT OR miss", notOR, " ", 0, false},
		{"RANGE low edge", NewRANGE('a', 'z'), "a", 1, true},
		{"RANGE high edge", NewRANGE('a', 'z'), "z", 1, true},
		{"RANGE below", NewRANGE('a', 'z'), "`", 0, false},
		{"RANGE above", NewRANGE('a', 'z'), "{", 0, false},
		{"RANGE2 second pair", r2, "5", 1, true},
		{"RANGE2 miss", r2, "_", 0, false},
		{"NOT RANGE hit", notRange, "a", 1, true},
		{"NOT RANGE miss", notRange, "M", 0, false},
		{"RANGE empty data", NewRANGE('a', 'z'), "", 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, ok := c.in.MatchBase([]byte(c.data))
			if n != c.n || ok != c.ok {
				t.Errorf("MatchBase(%q) = (%d,%v), want (%d,%v)", c.data, n, ok, c.n, c.ok)
			}
		})
	}
}

func TestConsumes(t *testing.T) {
	if got := NewAND('a', 'b', 'c').Consumes(); got != 3 {
		t.Errorf("AND consumes %d, want 3", got)
	}
	if got := NewOR('a', 'b', 'c', 'd').Consumes(); got != 1 {
		t.Errorf("OR consumes %d, want 1", got)
	}
	if got := NewRANGE2('a', 'z', '0', '9').Consumes(); got != 1 {
		t.Errorf("RANGE consumes %d, want 1", got)
	}
	eor := Instr{}
	if got := eor.Consumes(); got != 0 {
		t.Errorf("EoR consumes %d, want 0", got)
	}
}

func TestValidateRejections(t *testing.T) {
	openWithBase := NewOpen(0, 1, false, 2)
	openWithBase.Base = BaseAND
	openWithBase.NChars = 1

	openWithClose := NewOpen(0, 1, false, 2)
	openWithClose.Close = ClosePlain

	notAND := NewAND('a')
	notAND.Not = true

	openNot := NewOpen(0, 1, false, 2)
	openNot.Not = true

	badRange := NewRANGE('z', 'a')
	badRange2 := NewRANGE2('a', 'z', '9', '0')

	zeroAND := Instr{Base: BaseAND}
	fiveOR := Instr{Base: BaseOR, NChars: 5}
	threeRange := Instr{Base: BaseRANGE, NChars: 3, Chars: [4]byte{'a', 'z', 'x', 0}}

	minGtMax := NewOpen(5, 2, false, 2)
	negFwd := Instr{Open: true, FwdEn: true, Fwd: -1}

	strayChars := Instr{NChars: 2, Chars: [4]byte{'a', 'b'}}

	cases := []struct {
		name string
		in   Instr
	}{
		{"open fused with base", openWithBase},
		{"open fused with close", openWithClose},
		{"NOT with AND", notAND},
		{"NOT with OPEN", openNot},
		{"range lo>hi", badRange},
		{"range2 lo>hi", badRange2},
		{"AND zero chars", zeroAND},
		{"OR five chars", fiveOR},
		{"RANGE three chars", threeRange},
		{"min>max", minGtMax},
		{"negative fwd", negFwd},
		{"chars without base", strayChars},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.in.Validate(); err == nil {
				t.Errorf("Validate accepted malformed instruction %+v", c.in)
			}
		})
	}
}

func TestEncodeOffsetOverflow(t *testing.T) {
	in := NewOpen(0, Unbounded, false, MaxOffset+1)
	if _, err := in.Encode(); !errors.Is(err, ErrOffsetOverflow) {
		t.Errorf("Encode(fwd=%d) err = %v, want ErrOffsetOverflow", MaxOffset+1, err)
	}
	// In-memory validation still accepts it: the simulator can run wide
	// programs even when the binary encoding cannot hold them.
	if err := in.Validate(); err != nil {
		t.Errorf("Validate rejected wide offset: %v", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode(1 << 43); err == nil {
		t.Error("Decode accepted bits above 42")
	}
	// Non-"0"-ended enable bits: 1010.
	w := uint64(BaseOR) << baseShift
	w |= uint64(0b1010) << enShift
	w |= uint64('a') << 24
	if _, err := Decode(w); err == nil {
		t.Error("Decode accepted non-sequential enable bits")
	}
}

// genInstr produces a random valid instruction for property tests.
func genInstr(r *rand.Rand) Instr {
	switch r.Intn(5) {
	case 0: // EoR
		return Instr{}
	case 1: // AND
		n := 1 + r.Intn(4)
		cs := make([]byte, n)
		for i := range cs {
			cs[i] = byte(r.Intn(256))
		}
		in := NewAND(cs...)
		in.Close = CloseOp(r.Intn(5))
		return in
	case 2: // OR, maybe NOT
		n := 1 + r.Intn(4)
		cs := make([]byte, n)
		for i := range cs {
			cs[i] = byte(r.Intn(256))
		}
		in := NewOR(cs...)
		in.Not = r.Intn(2) == 0
		in.Close = CloseOp(r.Intn(5))
		return in
	case 3: // RANGE, maybe NOT, maybe two pairs
		lo1, hi1 := byte(r.Intn(200)), byte(0)
		hi1 = lo1 + byte(r.Intn(int(255-lo1)+1))
		in := NewRANGE(lo1, hi1)
		if r.Intn(2) == 0 {
			lo2 := byte(r.Intn(200))
			hi2 := lo2 + byte(r.Intn(int(255-lo2)+1))
			in = NewRANGE2(lo1, hi1, lo2, hi2)
		}
		in.Not = r.Intn(2) == 0
		in.Close = CloseOp(r.Intn(5))
		return in
	default: // OPEN
		min := uint8(r.Intn(MaxCounter + 1))
		max := min + uint8(r.Intn(int(MaxCounter-min)+1))
		if r.Intn(3) == 0 {
			max = Unbounded
		}
		in := NewOpen(min, max, r.Intn(2) == 0, 1+r.Intn(MaxOffset))
		if r.Intn(2) == 0 {
			in.BwdEn = true
			in.Bwd = 1 + r.Intn(MaxOffset)
		}
		return in
	}
}

// TestEncodeDecodeRoundTrip is the core property of the binary format:
// Decode(Encode(i)) == i for every valid instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := genInstr(r)
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("#%d: encode %+v: %v", i, in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("#%d: decode %011x: %v", i, w, err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("#%d: roundtrip mismatch:\n in=%+v\nout=%+v", i, in, got)
		}
	}
}

// TestDecodeEncodeRoundTripQuick drives the opposite direction with
// testing/quick: any word that decodes must re-encode to the same word.
func TestDecodeEncodeRoundTripQuick(t *testing.T) {
	f := func(w uint64) bool {
		w &= WordMask
		in, err := Decode(w)
		if err != nil {
			return true // invalid words are allowed to be rejected
		}
		w2, err := in.Encode()
		return err == nil && w2 == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func validProgram() *Program {
	body := NewRANGE('A', 'Z')
	body.Not = true
	body.Close = CloseQuantGreedy
	return &Program{
		Source: "([^A-Z])+",
		Code:   []Instr{NewOpen(1, Unbounded, false, 2), body, {}},
	}
}

func TestProgramValidate(t *testing.T) {
	p := validProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	if got := p.OpCount(); got != 2 {
		t.Errorf("OpCount = %d, want 2 (EoR excluded)", got)
	}

	t.Run("empty", func(t *testing.T) {
		p := &Program{}
		if err := p.Validate(); !errors.Is(err, ErrEmptyProg) {
			t.Errorf("err = %v, want ErrEmptyProg", err)
		}
	})
	t.Run("missing EoR", func(t *testing.T) {
		p := &Program{Code: []Instr{NewAND('a')}}
		if err := p.Validate(); !errors.Is(err, ErrNoEoR) {
			t.Errorf("err = %v, want ErrNoEoR", err)
		}
	})
	t.Run("stray EoR", func(t *testing.T) {
		p := &Program{Code: []Instr{{}, NewAND('a'), {}}}
		if err := p.Validate(); !errors.Is(err, ErrStrayEoR) {
			t.Errorf("err = %v, want ErrStrayEoR", err)
		}
	})
	t.Run("fwd out of range", func(t *testing.T) {
		p := validProgram()
		p.Code[0].Fwd = 9
		if err := p.Validate(); !errors.Is(err, ErrBadTarget) {
			t.Errorf("err = %v, want ErrBadTarget", err)
		}
	})
	t.Run("unbalanced close", func(t *testing.T) {
		c := NewAND('a')
		c.Close = ClosePlain
		p := &Program{Code: []Instr{c, {}}}
		if err := p.Validate(); !errors.Is(err, ErrUnbalanced) {
			t.Errorf("err = %v, want ErrUnbalanced", err)
		}
	})
	t.Run("unclosed open", func(t *testing.T) {
		p := &Program{Code: []Instr{NewOpen(0, 1, false, 1), {}}}
		err := p.Validate()
		if !errors.Is(err, ErrUnbalanced) && !errors.Is(err, ErrBadTarget) {
			t.Errorf("err = %v, want unbalanced/bad-target", err)
		}
	})
}

func TestProgramBinaryRoundTrip(t *testing.T) {
	p := validProgram()
	bin, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	wantLen := 9 + 6*len(p.Code)
	if len(bin) != wantLen {
		t.Errorf("binary length = %d, want %d", len(bin), wantLen)
	}
	var q Program
	if err := q.UnmarshalBinary(bin); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(q.Code, p.Code) {
		t.Errorf("roundtrip mismatch:\n in=%+v\nout=%+v", p.Code, q.Code)
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte{}, bin...)
		b[0] = 'X'
		var q Program
		if err := q.UnmarshalBinary(b); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		var q Program
		if err := q.UnmarshalBinary(bin[:len(bin)-1]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("short header", func(t *testing.T) {
		var q Program
		if err := q.UnmarshalBinary(bin[:5]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
}

func TestDisassemble(t *testing.T) {
	p := validProgram()
	d := p.Disassemble()
	for _, want := range []string{"; regex: ([^A-Z])+", "NOT RANGE", ")+G", "EOR", "{1,inf}", "fwd=2"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestInstrString(t *testing.T) {
	lazyOpen := NewOpen(3, 6, true, 2)
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{}, "EOR"},
		{NewAND('a', 'b'), `AND "ab"`},
		{NewRANGE2('a', 'z', '0', '9'), "RANGE [a-z0-9]"},
		{lazyOpen, "( {3,6} lazy fwd=2"},
		{NewOR('\n', ' '), `OR "\n\s"`},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpTable(t *testing.T) {
	rows := OpTable()
	if len(rows) != 10 {
		t.Fatalf("OpTable has %d rows, want 10", len(rows))
	}
	classes := map[string]int{}
	for _, r := range rows {
		classes[r.Class]++
	}
	if classes["Control"] != 1 || classes["Base"] != 4 || classes["Complex"] != 5 {
		t.Errorf("class distribution = %v, want Control:1 Base:4 Complex:5", classes)
	}
}
