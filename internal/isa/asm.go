package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a textual program in the disassembler's syntax back
// into a Program, so listings are a first-class interchange format and
// hand-written ISA programs can be loaded without the compiler.
//
// Grammar, one instruction per line:
//
//	[ADDR:] [HEXWORD] MNEMONIC
//	; comment — ignored, as are blank lines
//
//	MNEMONIC:
//	  EOR
//	  [NOT] AND "BYTES" [+ CLOSE]
//	  [NOT] OR  "BYTES" [+ CLOSE]
//	  [NOT] RANGE [LO-HI[LO-HI]] [+ CLOSE]
//	  ( [{MIN,MAX|inf}] [lazy] [bwd=N] [fwd=N]
//	  CLOSE                         (standalone close)
//
//	CLOSE: ")", ")|", ")+G", ")?L"
//	BYTES: printable characters or \xHH, \n, \t, \r, \s (space), \\, \"
//
// A leading "; regex: ..." comment, when present, becomes the program's
// Source.
func Assemble(text string) (*Program, error) {
	p := &Program{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if src, ok := strings.CutPrefix(strings.TrimSpace(line[1:]), "regex: "); ok && p.Source == "" {
				p.Source = src
			}
			continue
		}
		in, err := parseInstrLine(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		p.Code = append(p.Code, in)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseInstr parses a single instruction in the disassembler's syntax.
func ParseInstr(s string) (Instr, error) {
	return parseInstrLine(strings.TrimSpace(s))
}

func parseInstrLine(line string) (Instr, error) {
	// Strip the optional "ADDR:" prefix and hex word column.
	if i := strings.Index(line, ":"); i >= 0 {
		if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
			line = strings.TrimSpace(line[i+1:])
		}
	}
	fields := strings.Fields(line)
	if len(fields) > 0 {
		if _, err := strconv.ParseUint(fields[0], 16, 64); err == nil && len(fields[0]) == 11 {
			line = strings.TrimSpace(line[strings.Index(line, fields[0])+len(fields[0]):])
		}
	}
	if line == "" {
		return Instr{}, fmt.Errorf("empty instruction")
	}

	switch {
	case line == "EOR":
		return Instr{}, nil
	case strings.HasPrefix(line, "("):
		return parseOpen(line)
	}

	var in Instr
	rest := line
	if r, ok := strings.CutPrefix(rest, "NOT "); ok {
		in.Not = true
		rest = r
	}
	switch {
	case strings.HasPrefix(rest, "AND "):
		in.Base = BaseAND
		rest = rest[4:]
	case strings.HasPrefix(rest, "OR "):
		in.Base = BaseOR
		rest = rest[3:]
	case strings.HasPrefix(rest, "RANGE "):
		in.Base = BaseRANGE
		rest = rest[6:]
	default:
		// Standalone close.
		c, ok := parseClose(rest)
		if !ok || in.Not {
			return Instr{}, fmt.Errorf("unknown mnemonic %q", line)
		}
		return Instr{Close: c}, nil
	}

	rest = strings.TrimSpace(rest)
	var payload string
	var err error
	if in.Base == BaseRANGE {
		payload, rest, err = cutDelimited(rest, '[', ']')
		if err != nil {
			return Instr{}, err
		}
		bounds, err := unquoteBytes(payload)
		if err != nil {
			return Instr{}, err
		}
		// bounds = LO '-' HI [LO '-' HI] with structural dashes raw.
		switch len(bounds) {
		case 3:
			if bounds[1] != '-' {
				return Instr{}, fmt.Errorf("malformed range %q", payload)
			}
			in.SetChars(bounds[0], bounds[2])
		case 6:
			if bounds[1] != '-' || bounds[4] != '-' {
				return Instr{}, fmt.Errorf("malformed range %q", payload)
			}
			in.SetChars(bounds[0], bounds[2], bounds[3], bounds[5])
		default:
			return Instr{}, fmt.Errorf("malformed range %q", payload)
		}
	} else {
		payload, rest, err = cutDelimited(rest, '"', '"')
		if err != nil {
			return Instr{}, err
		}
		bs, err := unquoteBytes(payload)
		if err != nil {
			return Instr{}, err
		}
		if len(bs) < 1 || len(bs) > 4 {
			return Instr{}, fmt.Errorf("base operator with %d bytes", len(bs))
		}
		in.SetChars(bs...)
	}

	rest = strings.TrimSpace(rest)
	if rest != "" {
		r, ok := strings.CutPrefix(rest, "+ ")
		if !ok {
			return Instr{}, fmt.Errorf("trailing garbage %q", rest)
		}
		c, ok := parseClose(strings.TrimSpace(r))
		if !ok {
			return Instr{}, fmt.Errorf("unknown close %q", r)
		}
		in.Close = c
	}
	if err := in.Validate(); err != nil {
		return Instr{}, err
	}
	return in, nil
}

func parseClose(s string) (CloseOp, bool) {
	switch s {
	case ")":
		return ClosePlain, true
	case ")|":
		return CloseAlt, true
	case ")+G":
		return CloseQuantGreedy, true
	case ")?L":
		return CloseQuantLazy, true
	}
	return CloseNone, false
}

// parseOpen parses "( [{MIN,MAX}] [lazy] [bwd=N] [fwd=N]".
func parseOpen(line string) (Instr, error) {
	in := Instr{Open: true}
	rest := strings.TrimSpace(line[1:])
	for rest != "" {
		var tok string
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			tok, rest = rest[:i], strings.TrimSpace(rest[i+1:])
		} else {
			tok, rest = rest, ""
		}
		switch {
		case strings.HasPrefix(tok, "{"):
			body := strings.TrimSuffix(strings.TrimPrefix(tok, "{"), "}")
			lo, hi, ok := strings.Cut(body, ",")
			if !ok {
				return Instr{}, fmt.Errorf("malformed counter %q", tok)
			}
			if lo != "" {
				n, err := strconv.Atoi(lo)
				if err != nil {
					return Instr{}, fmt.Errorf("counter min %q", lo)
				}
				in.MinEn, in.Min = true, uint8(n)
			}
			switch {
			case hi == "inf":
				in.MaxEn, in.Max = true, Unbounded
			case hi != "":
				n, err := strconv.Atoi(hi)
				if err != nil {
					return Instr{}, fmt.Errorf("counter max %q", hi)
				}
				in.MaxEn, in.Max = true, uint8(n)
			}
		case tok == "lazy":
			in.Lazy = true
		case strings.HasPrefix(tok, "bwd="):
			n, err := strconv.Atoi(tok[4:])
			if err != nil {
				return Instr{}, fmt.Errorf("bwd %q", tok)
			}
			in.BwdEn, in.Bwd = true, n
		case strings.HasPrefix(tok, "fwd="):
			n, err := strconv.Atoi(tok[4:])
			if err != nil {
				return Instr{}, fmt.Errorf("fwd %q", tok)
			}
			in.FwdEn, in.Fwd = true, n
		default:
			return Instr{}, fmt.Errorf("unknown open field %q", tok)
		}
	}
	if err := in.Validate(); err != nil {
		return Instr{}, err
	}
	return in, nil
}

// cutDelimited extracts the text between the first open delimiter and
// the LAST close delimiter (payload bytes may themselves be delimiters
// only when escaped, which the quoting guarantees).
func cutDelimited(s string, open, close byte) (payload, rest string, err error) {
	if len(s) == 0 || s[0] != open {
		return "", "", fmt.Errorf("expected %q in %q", open, s)
	}
	// Scan for the closing delimiter, honouring backslash escapes.
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case close:
			return s[1:i], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated %q...%q in %q", open, close, s)
}

// unquoteBytes decodes the disassembler's byte quoting.
func unquoteBytes(s string) ([]byte, error) {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(s) {
			return nil, fmt.Errorf("trailing backslash in %q", s)
		}
		switch s[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case 'r':
			out = append(out, '\r')
		case 's':
			out = append(out, ' ')
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		case 'x':
			if i+2 >= len(s) {
				return nil, fmt.Errorf("incomplete \\x escape in %q", s)
			}
			hi, ok1 := hexVal(s[i+1])
			lo, ok2 := hexVal(s[i+2])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("bad \\x escape in %q", s)
			}
			out = append(out, hi<<4|lo)
			i += 2
		default:
			return nil, fmt.Errorf("unknown escape \\%c in %q", s[i], s)
		}
	}
	return out, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
