package isa

import "fmt"

// Bit positions of the 43-bit instruction word (paper Fig. 1 and Fig. 2).
const (
	bitOpen = 42
	bitNot  = 41

	baseShift = 39 // bits 40..39
	baseMask  = 0x3

	closeShift = 36 // bits 38..36
	closeMask  = 0x7

	enShift = 32 // bits 35..32, bit35 enables reference byte 0
	enMask  = 0xf

	refMask = 0xffffffff // bits 31..0

	// OPEN reference subfields (Fig. 2): 5 enabler bits then the
	// 27-bit payload whose 3 MSBs are unused.
	openMinEnBit = 31
	openMaxEnBit = 30
	openBwdEnBit = 29
	openFwdEnBit = 28
	openLazyBit  = 27
	openMinShift = 18 // bits 23..18
	openMaxShift = 12 // bits 17..12
	openBwdShift = 6  // bits 11..6
	openFwdShift = 0  // bits 5..0
	sixBitMask   = 0x3f
)

// WordMask covers the 43 significant bits of an encoded instruction.
const WordMask = (uint64(1) << 43) - 1

// Encode packs the instruction into its 43-bit binary word (returned in
// the low bits of a uint64). It fails with ErrOffsetOverflow or
// ErrCounterOverflow when an in-memory field exceeds its binary subfield,
// and with ErrBadInstr for structurally invalid instructions.
func (in Instr) Encode() (uint64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	var w uint64
	if in.Open {
		w |= 1 << bitOpen
	}
	if in.Not {
		w |= 1 << bitNot
	}
	w |= uint64(in.Base&baseMask) << baseShift
	w |= uint64(in.Close&closeMask) << closeShift

	if in.Open {
		var ref uint64
		if in.MinEn {
			ref |= 1 << openMinEnBit
			ref |= uint64(in.Min&sixBitMask) << openMinShift
		}
		if in.MaxEn {
			ref |= 1 << openMaxEnBit
			ref |= uint64(in.Max&sixBitMask) << openMaxShift
		}
		if in.BwdEn {
			if in.Bwd > MaxOffset {
				return 0, fmt.Errorf("%w: bwd=%d", ErrOffsetOverflow, in.Bwd)
			}
			ref |= 1 << openBwdEnBit
			ref |= uint64(in.Bwd&sixBitMask) << openBwdShift
		}
		if in.FwdEn {
			if in.Fwd > MaxOffset {
				return 0, fmt.Errorf("%w: fwd=%d", ErrOffsetOverflow, in.Fwd)
			}
			ref |= 1 << openFwdEnBit
			ref |= uint64(in.Fwd&sixBitMask) << openFwdShift
		}
		if in.Lazy {
			ref |= 1 << openLazyBit
		}
		w |= ref
		return w, nil
	}

	// Base payload: sequential "0"-ended enable bits, byte 0 in the
	// reference MSBs (bit35 -> bits 31..24).
	var en, ref uint64
	for i := 0; i < in.NChars; i++ {
		en |= 1 << (3 - i)
		ref |= uint64(in.Chars[i]) << (24 - 8*i)
	}
	w |= en << enShift
	w |= ref
	return w, nil
}

// Decode unpacks a 43-bit binary word into an Instr. Bits above position
// 42 must be zero. The decoded instruction is re-validated so that a
// malformed word cannot produce an executable instruction.
func Decode(w uint64) (Instr, error) {
	if w&^WordMask != 0 {
		return Instr{}, fmt.Errorf("%w: bits set above bit 42", ErrBadInstr)
	}
	var in Instr
	in.Open = w&(1<<bitOpen) != 0
	in.Not = w&(1<<bitNot) != 0
	in.Base = BaseOp((w >> baseShift) & baseMask)
	in.Close = CloseOp((w >> closeShift) & closeMask)

	if in.Open {
		in.MinEn = w&(1<<openMinEnBit) != 0
		in.MaxEn = w&(1<<openMaxEnBit) != 0
		in.BwdEn = w&(1<<openBwdEnBit) != 0
		in.FwdEn = w&(1<<openFwdEnBit) != 0
		in.Lazy = w&(1<<openLazyBit) != 0
		if in.MinEn {
			in.Min = uint8((w >> openMinShift) & sixBitMask)
		}
		if in.MaxEn {
			in.Max = uint8((w >> openMaxShift) & sixBitMask)
		}
		if in.BwdEn {
			in.Bwd = int((w >> openBwdShift) & sixBitMask)
		}
		if in.FwdEn {
			in.Fwd = int((w >> openFwdShift) & sixBitMask)
		}
		if err := in.Validate(); err != nil {
			return Instr{}, err
		}
		return in, canonical(in, w)
	}

	en := (w >> enShift) & enMask
	n := 0
	for i := 0; i < 4; i++ {
		if en&(1<<(3-i)) != 0 {
			if i != n {
				return Instr{}, fmt.Errorf("%w: enable bits not \"0\"-ended (%04b)", ErrBadInstr, en)
			}
			in.Chars[i] = byte(w >> (24 - 8*i))
			n++
		}
	}
	in.NChars = n
	if err := in.Validate(); err != nil {
		return Instr{}, err
	}
	return in, canonical(in, w)
}

// canonical rejects words that decode losslessly in the enabled fields but
// carry stray bits in disabled or unused subfields: every loadable word
// must be the canonical encoding of its instruction.
func canonical(in Instr, w uint64) error {
	w2, err := in.Encode()
	if err != nil {
		return err
	}
	if w2 != w {
		return fmt.Errorf("%w: stray bits in disabled subfields (%011x != canonical %011x)", ErrBadInstr, w, w2)
	}
	return nil
}
