package isa

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the program's control-flow graph in Graphviz DOT
// form: one node per instruction, solid edges for sequential flow,
// dashed edges for the entering operator's forward (exit) and
// next-alternative addresses, and dotted edges for the quantifier
// loop back to the sub-RE body.
func (p *Program) WriteDot(w io.Writer, name string) error {
	if name == "" {
		name = "alveare"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	if p.Source != "" {
		fmt.Fprintf(&b, "  label=%q;\n", "regex: "+p.Source)
	}

	openFor := make(map[int]int) // close pc -> open pc (for loop edges)
	for pc, in := range p.Code {
		label := fmt.Sprintf("%04d: %s", pc, in.String())
		shape := "box"
		switch {
		case in.IsEoR():
			shape = "doublecircle"
		case in.Open:
			shape = "house"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", pc, label, shape)
		if in.Open && in.FwdEn {
			// Remember which close terminates this sub-RE.
			openFor[pc+in.Fwd-1] = pc
		}
	}
	for pc, in := range p.Code {
		if in.IsEoR() {
			continue
		}
		// Sequential flow.
		if pc+1 < len(p.Code) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", pc, pc+1)
		}
		if in.Open {
			if in.FwdEn {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, label=\"fwd\"];\n", pc, pc+in.Fwd)
			}
			if in.BwdEn {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, label=\"alt\"];\n", pc, pc+in.Bwd)
			}
		}
		if in.IsQuantClose() {
			if open, ok := openFor[pc]; ok {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dotted, label=\"loop\"];\n", pc, open+1)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
