// Package anmlzoo generates the synthetic equivalents of the three
// ANMLZoo benchmarks the paper evaluates (§7.2): PowerEN (IBM's
// synthetic network-SoC rule set), Protomata (protein motif patterns)
// and Snort (production deep-packet-inspection rules from CISCO).
//
// The original suites and their 1 MB corpora are not redistributable,
// so each generator produces — deterministically from a seed — a rule
// set with the same operator mix (character classes, bounded and
// unbounded counters, alternations, binary escapes) and a dataset with
// planted matches, per the substitution policy in DESIGN.md: what
// drives every engine under test is the primitive-usage profile of the
// rules, not the exact bytes of the original corpora.
package anmlzoo

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"alveare/internal/syntax"
)

// Suite is one benchmark: a rule set and a data stream.
type Suite struct {
	Name     string
	Patterns []string
	Dataset  []byte
}

// Defaults of the paper's setup: 200 randomly selected well-formed REs
// over a 1 MB dataset.
const (
	DefaultPatterns    = 200
	DefaultDatasetSize = 1 << 20
)

// Names lists the available suites in evaluation order.
func Names() []string { return []string{"PowerEN", "Protomata", "Snort"} }

// ByName generates the named suite. Non-positive nPatterns or size
// select the paper defaults.
func ByName(name string, nPatterns, size int, seed int64) (*Suite, error) {
	if nPatterns <= 0 {
		nPatterns = DefaultPatterns
	}
	if size <= 0 {
		size = DefaultDatasetSize
	}
	switch strings.ToLower(name) {
	case "poweren":
		return PowerEN(nPatterns, size, seed), nil
	case "protomata":
		return Protomata(nPatterns, size, seed), nil
	case "snort":
		return Snort(nPatterns, size, seed), nil
	}
	return nil, fmt.Errorf("anmlzoo: unknown suite %q", name)
}

// All generates the three suites with consecutive seeds.
func All(nPatterns, size int, seed int64) []*Suite {
	return []*Suite{
		PowerEN(nPatterns, size, seed),
		Protomata(nPatterns, size, seed+1),
		Snort(nPatterns, size, seed+2),
	}
}

// LowMatch regenerates the named suite with a witness-free dataset:
// the same rules over pure filler traffic, the DPI steady state in
// which almost nothing fires. Some rules still match organically
// (Snort's header patterns match the HTTP-shaped filler), so the
// stream is low-match, not zero-match. This is the traffic profile
// the hybrid fast path is sized against.
func LowMatch(name string, nPatterns, size int, seed int64) (*Suite, error) {
	s, err := ByName(name, nPatterns, size, seed)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	s.Dataset = fillDatasetN(r, len(s.Dataset), nil, fillerFor(s.Name), 0)
	s.Name = s.Name + "-lowmatch"
	return s, nil
}

// fillerFor returns the suite's background-traffic generator, shared
// between the witness-planting and witness-free dataset builders.
func fillerFor(name string) func(*rand.Rand, *strings.Builder) {
	keywords := []string{
		"session", "token", "flow", "proto", "hdr", "chan", "frame",
		"crc", "seq", "ack", "mpls", "vlan", "ipsec", "tln",
	}
	methods := []string{"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS"}
	headers := []string{"Host: ", "User-Agent: ", "Cookie: ", "Content-Type: ", "Referer: "}
	switch strings.ToLower(strings.TrimSuffix(name, "-lowmatch")) {
	case "poweren":
		return func(r *rand.Rand, w *strings.Builder) {
			w.WriteString(pick(r, keywords))
			w.WriteString("=")
			for i := 0; i < 4+r.Intn(8); i++ {
				w.WriteByte("0123456789abcdefxyz_"[r.Intn(20)])
			}
			w.WriteString(" ")
		}
	case "protomata":
		return func(r *rand.Rand, w *strings.Builder) {
			for i := 0; i < 40; i++ {
				w.WriteByte(protAlphabet[r.Intn(20)])
			}
		}
	default: // snort
		return func(r *rand.Rand, w *strings.Builder) {
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(w, "%s /index%d.html HTTP/1.1\r\n", pick(r, methods), r.Intn(100))
			case 1:
				w.WriteString(pick(r, headers))
				for i := 0; i < 8+r.Intn(20); i++ {
					w.WriteByte(byte(0x21 + r.Intn(94)))
				}
				w.WriteString("\r\n")
			case 2:
				for i := 0; i < 16+r.Intn(32); i++ {
					w.WriteByte(byte(r.Intn(256)))
				}
			}
		}
	}
}

// PowerEN generates synthetic network-SoC patterns: keyword fragments
// combined with hex-class counters and small alternations, the profile
// of IBM's PowerEN regression rules.
func PowerEN(nPatterns, size int, seed int64) *Suite {
	r := rand.New(rand.NewSource(seed))
	keywords := []string{
		"session", "token", "flow", "proto", "hdr", "chan", "frame",
		"crc", "seq", "ack", "mpls", "vlan", "ipsec", "tln",
	}
	var pats []string
	for len(pats) < nPatterns {
		var b strings.Builder
		// Half of the rules lead with an alternation of keywords — the
		// real PowerEN suite stresses complex operators up front, which
		// also defeats single-instruction scan filtering.
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "(%s|%s|%s)", pick(r, keywords), pick(r, keywords), pick(r, keywords))
		} else {
			b.WriteString(pick(r, keywords))
		}
		switch r.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "[0-9a-f]{%d,%d}", 2+r.Intn(3), 6+r.Intn(6))
		case 1:
			fmt.Fprintf(&b, "=[0-9]{%d}", 2+r.Intn(4))
		case 2:
			b.WriteString("[_:-]")
			b.WriteString(pick(r, keywords))
		case 3:
			fmt.Fprintf(&b, "(%s|%s)", pick(r, keywords), pick(r, keywords))
		}
		if r.Intn(3) == 0 {
			fmt.Fprintf(&b, "\\.[a-z]{2,5}")
		}
		pats = append(pats, b.String())
	}
	data := fillDataset(r, size, pats, func(r *rand.Rand, w *strings.Builder) {
		// Filler: key=value token soup.
		w.WriteString(pick(r, keywords))
		w.WriteString("=")
		for i := 0; i < 4+r.Intn(8); i++ {
			w.WriteByte("0123456789abcdefxyz_"[r.Intn(20)])
		}
		w.WriteString(" ")
	})
	return &Suite{Name: "PowerEN", Patterns: pats, Dataset: data}
}

// protAlphabet is the 20-letter amino-acid alphabet of Protomata.
const protAlphabet = "ACDEFGHIKLMNPQRSTVWY"

// Protomata generates PROSITE-style protein motifs lowered to REs —
// classes of residues, any-residue gaps with bounded counters — the
// most backtracking-heavy suite of the three (the paper calls it one of
// the most complex in ANMLZoo).
func Protomata(nPatterns, size int, seed int64) *Suite {
	r := rand.New(rand.NewSource(seed))
	var pats []string
	for len(pats) < nPatterns {
		var b strings.Builder
		// Real PROSITE motifs are long: 8..15 elements with wide
		// bounded gaps. This is what makes Protomata the most complex
		// (and most DFA-hostile) suite in ANMLZoo.
		elems := 8 + r.Intn(8)
		for i := 0; i < elems; i++ {
			switch r.Intn(6) {
			case 0, 1: // single residue
				b.WriteByte(protAlphabet[r.Intn(20)])
			case 2: // residue class [LIVM]
				b.WriteString("[")
				n := 2 + r.Intn(5)
				seen := map[byte]bool{}
				for len(seen) < n {
					c := protAlphabet[r.Intn(20)]
					if !seen[c] {
						seen[c] = true
						b.WriteByte(c)
					}
				}
				b.WriteString("]")
			case 3, 4: // any-residue gap: x(n) mostly, x(n,m) sometimes
				n := 1 + r.Intn(5)
				if r.Intn(3) == 0 {
					fmt.Fprintf(&b, "[%s]{%d,%d}", protAlphabet, n, n+1+r.Intn(3))
				} else {
					fmt.Fprintf(&b, "[%s]{%d}", protAlphabet, n)
				}
			case 5: // excluded-residue class {P} -> [^P...]
				b.WriteString("[^")
				b.WriteByte(protAlphabet[r.Intn(20)])
				b.WriteString("]")
			}
		}
		pats = append(pats, b.String())
	}
	data := fillDataset(r, size, pats, func(r *rand.Rand, w *strings.Builder) {
		for i := 0; i < 40; i++ {
			w.WriteByte(protAlphabet[r.Intn(20)])
		}
	})
	return &Suite{Name: "Protomata", Patterns: pats, Dataset: data}
}

// Snort generates DPI-style rules: HTTP keywords, URI fragments, binary
// escape sequences (exercising the reference-enable bits), negated
// line classes with unbounded quantifiers.
func Snort(nPatterns, size int, seed int64) *Suite {
	r := rand.New(rand.NewSource(seed))
	methods := []string{"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS"}
	uriBits := []string{"/cgi-bin/", "/admin/", "/login", "/api/v", "/upload", "/shell", "/etc/passwd", "/cmd\\.exe"}
	headers := []string{"Host: ", "User-Agent: ", "Cookie: ", "Content-Type: ", "Referer: "}
	var pats []string
	for len(pats) < nPatterns {
		var b strings.Builder
		switch r.Intn(5) {
		case 0: // method + URI fragment
			fmt.Fprintf(&b, "(%s|%s) [^ ]*%s", pick(r, methods), pick(r, methods), pick(r, uriBits))
		case 1: // header + constrained value
			b.WriteString(pick(r, headers))
			fmt.Fprintf(&b, "[^\\r\\n]{%d,}", 4+r.Intn(12))
		case 2: // binary signature
			for i := 0; i < 3+r.Intn(4); i++ {
				fmt.Fprintf(&b, "\\x%02x", r.Intn(256))
			}
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, ".{0,%d}\\x%02x", 2+r.Intn(6), r.Intn(256))
			}
		case 3: // URI with hex-encoded bytes
			b.WriteString(pick(r, uriBits))
			fmt.Fprintf(&b, "(%%[0-9a-fA-F]{2})+")
		case 4: // keyword then anything then keyword on one line
			fmt.Fprintf(&b, "%s[^\\r\\n]*%s", pick(r, uriBits), pick(r, []string{"\\.php", "\\.asp", "\\.jsp", "=admin", "passwd"}))
		}
		pats = append(pats, b.String())
	}
	data := fillDataset(r, size, pats, func(r *rand.Rand, w *strings.Builder) {
		switch r.Intn(3) {
		case 0: // HTTP-ish line
			fmt.Fprintf(w, "%s /index%d.html HTTP/1.1\r\n", pick(r, methods), r.Intn(100))
		case 1: // header line
			w.WriteString(pick(r, headers))
			for i := 0; i < 8+r.Intn(20); i++ {
				w.WriteByte(byte(0x21 + r.Intn(94)))
			}
			w.WriteString("\r\n")
		case 2: // binary payload
			for i := 0; i < 16+r.Intn(32); i++ {
				w.WriteByte(byte(r.Intn(256)))
			}
		}
	})
	return &Suite{Name: "Snort", Patterns: pats, Dataset: data}
}

func pick(r *rand.Rand, ss []string) string { return ss[r.Intn(len(ss))] }

// fillDataset builds a size-byte stream from the filler generator and
// plants at least one witness of every pattern, so every rule has work
// to find. Witness positions are skewed toward the start of the stream
// (quadratic density): real corpora are not uniform, and the skew gives
// the multi-core divide-and-conquer realistic load imbalance.
func fillDataset(r *rand.Rand, size int, pats []string, filler func(*rand.Rand, *strings.Builder)) []byte {
	return fillDatasetN(r, size, pats, filler, witnessRepeat)
}

// fillDatasetN is fillDataset with an explicit witness count per
// pattern; 0 produces pure filler traffic (see LowMatch).
func fillDatasetN(r *rand.Rand, size int, pats []string, filler func(*rand.Rand, *strings.Builder), repeat int) []byte {
	nPlants := repeat * len(pats)
	positions := make([]int, nPlants)
	for i := range positions {
		u := r.Float64()
		positions[i] = int(u * u * float64(size) * 0.95)
	}
	sort.Ints(positions)

	var b strings.Builder
	b.Grow(size + 1024)
	planted := 0
	for b.Len() < size {
		for planted < nPlants && b.Len() >= positions[planted] {
			pat := pats[planted%len(pats)]
			if w, err := Witness(pat, r); err == nil {
				b.Write(w)
			}
			planted++
		}
		filler(r, &b)
	}
	out := []byte(b.String())
	if len(out) > size {
		out = out[:size]
	}
	return out
}

// witnessRepeat is how many witnesses of each pattern the dataset
// receives (spread across the stream).
const witnessRepeat = 2

// Witness samples one string from the language of the pattern, used to
// plant matches in the generated datasets. Unbounded quantifiers are
// capped at min+2 repetitions.
func Witness(re string, r *rand.Rand) ([]byte, error) {
	ast, err := syntax.Parse(re)
	if err != nil {
		return nil, err
	}
	var b []byte
	sample(ast, r, &b)
	return b, nil
}

func sample(n syntax.Node, r *rand.Rand, out *[]byte) {
	switch n := n.(type) {
	case *syntax.Empty:
	case *syntax.Literal:
		*out = append(*out, n.Bytes...)
	case *syntax.Class:
		*out = append(*out, sampleClass(n, r))
	case *syntax.Shorthand:
		rs, neg, _ := syntax.ShorthandRanges(n.Kind)
		*out = append(*out, sampleClass(&syntax.Class{Neg: neg, Ranges: rs}, r))
	case *syntax.Dot:
		c := byte(0x20 + r.Intn(95))
		*out = append(*out, c)
	case *syntax.Group:
		sample(n.Sub, r, out)
	case *syntax.Concat:
		for _, s := range n.Subs {
			sample(s, r, out)
		}
	case *syntax.Alternate:
		sample(n.Subs[r.Intn(len(n.Subs))], r, out)
	case *syntax.Repeat:
		max := n.Max
		if max == syntax.Unlimited {
			max = n.Min + 2
		}
		k := n.Min
		if max > n.Min {
			k += r.Intn(max - n.Min + 1)
		}
		for i := 0; i < k; i++ {
			sample(n.Sub, r, out)
		}
	}
}

func sampleClass(c *syntax.Class, r *rand.Rand) byte {
	in := func(b byte) bool {
		for _, rg := range c.Ranges {
			if b >= rg.Lo && b <= rg.Hi {
				return true
			}
		}
		return false
	}
	for {
		b := byte(r.Intn(256))
		if in(b) != c.Neg {
			return b
		}
	}
}
