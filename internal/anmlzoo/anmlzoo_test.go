package anmlzoo

import (
	"bytes"
	"math/rand"
	"regexp"
	"testing"

	"alveare/internal/backend"
	"alveare/internal/baseline/pikevm"
)

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, 50, 64<<10, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name, 50, 64<<10, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Patterns) != len(b.Patterns) {
			t.Fatalf("%s: pattern counts differ", name)
		}
		for i := range a.Patterns {
			if a.Patterns[i] != b.Patterns[i] {
				t.Fatalf("%s: pattern %d differs", name, i)
			}
		}
		if !bytes.Equal(a.Dataset, b.Dataset) {
			t.Errorf("%s: datasets differ for the same seed", name)
		}
		c, err := ByName(name, 50, 64<<10, 43)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a.Dataset, c.Dataset) {
			t.Errorf("%s: different seeds produced identical datasets", name)
		}
	}
}

func TestSizesAndDefaults(t *testing.T) {
	s, err := ByName("snort", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Patterns) != DefaultPatterns {
		t.Errorf("patterns = %d, want %d", len(s.Patterns), DefaultPatterns)
	}
	if len(s.Dataset) != DefaultDatasetSize {
		t.Errorf("dataset = %d bytes, want %d", len(s.Dataset), DefaultDatasetSize)
	}
	if _, err := ByName("nope", 0, 0, 1); err == nil {
		t.Error("unknown suite accepted")
	}
}

// TestPatternsCompile: every generated rule must be accepted by the
// ALVEARE compiler in both modes.
func TestPatternsCompile(t *testing.T) {
	for _, s := range All(60, 16<<10, 7) {
		for _, pat := range s.Patterns {
			if _, err := backend.Compile(pat, backend.Options{}); err != nil {
				t.Errorf("%s: %q does not compile: %v", s.Name, pat, err)
			}
		}
	}
}

// TestPlantedMatches: every rule must find at least one occurrence in
// its suite's dataset (the generator plants witnesses).
func TestPlantedMatches(t *testing.T) {
	for _, s := range All(40, 256<<10, 99) {
		missing := 0
		for _, pat := range s.Patterns {
			p, err := pikevm.Compile(pat)
			if err != nil {
				t.Fatalf("%s: %q: %v", s.Name, pat, err)
			}
			if !p.Match(s.Dataset) {
				missing++
			}
		}
		if missing > 0 {
			t.Errorf("%s: %d/%d rules have no match in the dataset", s.Name, missing, len(s.Patterns))
		}
	}
}

// TestWitness: sampled witnesses are members of the pattern language.
// Byte-oriented patterns (negated classes, binary escapes) are checked
// with the byte-oriented Pike VM; stdlib regexp is rune-oriented and
// would misjudge non-UTF-8 witnesses.
func TestWitness(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pats := []string{
		"abc", "[a-f]{3}", "(GET|POST) /x", "a+b?", "x[0-9]{2,4}y",
		"[^ ]{3}", "\\x41\\x00", "q(w|e)*r",
	}
	for _, pat := range pats {
		vm, err := pikevm.Compile(pat)
		if err != nil {
			t.Fatal(err)
		}
		var std *regexp.Regexp
		if pat != "[^ ]{3}" && pat != "\\x41\\x00" {
			std = regexp.MustCompile(pat)
		}
		for i := 0; i < 50; i++ {
			w, err := Witness(pat, r)
			if err != nil {
				t.Fatal(err)
			}
			if !vm.Match(w) {
				t.Errorf("%q: witness %q does not match (pikevm)", pat, w)
			}
			if std != nil && !std.Match(w) {
				t.Errorf("%q: witness %q does not match (stdlib)", pat, w)
			}
		}
	}
	if _, err := Witness("(", r); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestSuiteCharacters(t *testing.T) {
	prot := Protomata(20, 32<<10, 3)
	for _, c := range prot.Dataset {
		if !bytes.ContainsRune([]byte(protAlphabet), rune(c)) {
			// Witness bytes may fall outside the alphabet only for
			// negated classes; the bulk must be amino acids.
			continue
		}
	}
	// At least: dataset non-empty and mostly alphabet.
	inAlpha := 0
	for _, c := range prot.Dataset {
		if bytes.IndexByte([]byte(protAlphabet), c) >= 0 {
			inAlpha++
		}
	}
	if float64(inAlpha) < 0.9*float64(len(prot.Dataset)) {
		t.Errorf("Protomata dataset only %d/%d amino acids", inAlpha, len(prot.Dataset))
	}

	sn := Snort(20, 32<<10, 3)
	var hasBinary bool
	for _, c := range sn.Dataset {
		if c >= 0x80 {
			hasBinary = true
			break
		}
	}
	if !hasBinary {
		t.Error("Snort dataset has no binary payload bytes")
	}
}
