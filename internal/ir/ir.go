// Package ir implements the middle-end of the ALVEARE compilation flow
// (paper §5, "Middle-End: Lowering and Optimizing the REs"): it
// transforms the front-end AST into an ISA-oriented intermediate
// representation, removing over-parenthesised sub-REs, expanding
// ISA-unsupported primitives (\w, .) into supported ones, grouping
// characters by the four-byte reference limit, packing class ranges two
// per RANGE primitive, normalising Kleene operators to the single
// counter primitive, and decomposing counters that exceed the ISA's
// 6-bit bound.
//
// The IR is a tree whose leaves correspond one-to-one to base
// instructions and whose interior nodes correspond to the complex
// operator structures the back-end emits (counters, alternation chains,
// class OR-chains).
package ir

import (
	"fmt"
	"strings"

	"alveare/internal/isa"
	"alveare/internal/syntax"
)

// Unbounded marks a Quant with no upper repetition limit.
const Unbounded = -1

// Op is one IR node. Leaf implementations (And, Or, Range) map to single
// base instructions; structural implementations (Seq, Quant, Alt, Chain)
// map to complex-operator layouts.
type Op interface {
	dump(b *strings.Builder)
}

// And matches 1..4 literal bytes consecutively (vectorised AND).
type And struct {
	Bytes []byte
}

// Or matches one character against 1..4 alternatives, optionally negated
// (the composable NOT primitive).
type Or struct {
	Bytes []byte
	Not   bool
}

// Pair is one inclusive byte range of a RANGE primitive.
type Pair struct {
	Lo, Hi byte
}

// Range matches one character against one or two packed ranges,
// optionally negated.
type Range struct {
	Pairs []Pair
	Not   bool
}

// Seq is the concatenation of its operands (the ISA's implicit AND
// between consecutive instructions).
type Seq struct {
	Ops []Op
}

// Quant repeats Body between Min and Max times (Max == Unbounded for no
// limit) in greedy or lazy modality; it lowers to the single counter
// primitive of the ISA.
type Quant struct {
	Body     Op
	Min, Max int
	Lazy     bool
}

// Alt is a general alternation of sub-REs; each alternative lowers to an
// entering sub-RE operator plus its body and a ")|" (or final ")") close.
type Alt struct {
	Alts []Op
}

// Chain is the complex OR chain the middle-end builds for base
// expressions exceeding the four-character reference limit: a single
// entering operator followed by single-instruction alternatives, each a
// base OR or RANGE leaf. All elements consume exactly one character.
type Chain struct {
	Elems []Op
}

func (o *And) dump(b *strings.Builder) {
	b.WriteString("and{")
	dumpBytes(b, o.Bytes)
	b.WriteString("}")
}

func (o *Or) dump(b *strings.Builder) {
	if o.Not {
		b.WriteString("!")
	}
	b.WriteString("or{")
	dumpBytes(b, o.Bytes)
	b.WriteString("}")
}

func (o *Range) dump(b *strings.Builder) {
	if o.Not {
		b.WriteString("!")
	}
	b.WriteString("rng{")
	for i, p := range o.Pairs {
		if i > 0 {
			b.WriteString(" ")
		}
		dumpBytes(b, []byte{p.Lo})
		b.WriteString("-")
		dumpBytes(b, []byte{p.Hi})
	}
	b.WriteString("}")
}

func (o *Seq) dump(b *strings.Builder)   { dumpList(b, "seq", o.Ops) }
func (o *Alt) dump(b *strings.Builder)   { dumpList(b, "alt", o.Alts) }
func (o *Chain) dump(b *strings.Builder) { dumpList(b, "chain", o.Elems) }

func (o *Quant) dump(b *strings.Builder) {
	b.WriteString("q{")
	fmt.Fprintf(b, "%d,", o.Min)
	if o.Max == Unbounded {
		b.WriteString("inf")
	} else {
		fmt.Fprintf(b, "%d", o.Max)
	}
	if o.Lazy {
		b.WriteString(" lazy")
	}
	b.WriteString(" ")
	o.Body.dump(b)
	b.WriteString("}")
}

func dumpList(b *strings.Builder, tag string, ops []Op) {
	b.WriteString(tag)
	b.WriteString("(")
	for i, o := range ops {
		if i > 0 {
			b.WriteString(" ")
		}
		o.dump(b)
	}
	b.WriteString(")")
}

func dumpByte(b *strings.Builder, c byte) {
	switch {
	case c >= 0x21 && c <= 0x7e:
		b.WriteByte(c)
	case c == ' ':
		b.WriteString("\\s")
	case c == '\n':
		b.WriteString("\\n")
	case c == '\t':
		b.WriteString("\\t")
	case c == '\r':
		b.WriteString("\\r")
	default:
		fmt.Fprintf(b, "\\x%02x", c)
	}
}

func dumpBytes(b *strings.Builder, cs []byte) {
	for _, c := range cs {
		dumpByte(b, c)
	}
}

// Dump renders the IR in a stable s-expression form for tests.
func Dump(o Op) string {
	var b strings.Builder
	o.dump(&b)
	return b.String()
}

// Options selects the middle-end operating mode. The zero value is the
// full advanced-primitive compiler. Minimal reproduces the paper's §7.1
// baseline ("compiler-based unfolding" with the minimal regular-language
// operator set); the fine-grained switches drive the ablation study.
type Options struct {
	// Minimal disables every advanced primitive at once: RANGE, NOT and
	// bounded counters (Table 2's "Minimal Op." column). It implies
	// NoRange, NoNot and NoCounters.
	Minimal bool

	// NoRange unfolds RANGE primitives into OR alternations.
	NoRange bool
	// NoNot unfolds negated classes into their positive complement.
	NoNot bool
	// NoCounters unfolds bounded quantifiers into alternations of
	// repeated concatenations; unbounded quantifiers necessarily keep
	// the loop form.
	NoCounters bool

	// ASCIIAlphabet restricts class complements to bytes 0..127, the
	// alphabet the paper's microbenchmark arithmetic assumes. It is set
	// implicitly by Minimal so that unfolded counts are comparable with
	// the paper's Table 2.
	ASCIIAlphabet bool

	// CaseInsensitive folds ASCII letter case during lowering: literals
	// become per-letter two-character ORs and classes gain the folded
	// ranges.
	CaseInsensitive bool
}

func (o Options) noRange() bool    { return o.Minimal || o.NoRange }
func (o Options) noNot() bool      { return o.Minimal || o.NoNot }
func (o Options) noCounters() bool { return o.Minimal || o.NoCounters }
func (o Options) maxByte() byte {
	if o.Minimal || o.ASCIIAlphabet {
		return 127
	}
	return 255
}

// Lower transforms a front-end AST into the optimised IR, running the
// full middle-end pipeline: lowering, unsupported-primitive expansion,
// grouping, counter normalisation and decomposition.
func Lower(n syntax.Node, opt Options) (Op, error) {
	l := lowerer{opt: opt}
	op, err := l.lower(n)
	if err != nil {
		return nil, err
	}
	op = simplify(op)
	op, err = decomposeCounters(op, opt)
	if err != nil {
		return nil, err
	}
	return simplify(op), nil
}

type lowerer struct {
	opt Options
}

func (l *lowerer) lower(n syntax.Node) (Op, error) {
	switch n := n.(type) {
	case *syntax.Empty:
		return &Seq{}, nil
	case *syntax.Literal:
		return l.lowerLiteral(n.Bytes), nil
	case *syntax.Group:
		// Over-parenthesised sub-REs are removed: the ISA's default AND
		// between consecutive instructions makes the grouping implicit.
		return l.lower(n.Sub)
	case *syntax.Dot:
		// The "." translates into [^\n] (paper §5).
		return l.lowerClass([]syntax.ClassRange{{Lo: '\n', Hi: '\n'}}, true), nil
	case *syntax.Shorthand:
		rs, neg, ok := syntax.ShorthandRanges(n.Kind)
		if !ok {
			return nil, fmt.Errorf("ir: unknown shorthand \\%c", n.Kind)
		}
		return l.lowerClass(rs, neg), nil
	case *syntax.Class:
		return l.lowerClass(n.Ranges, n.Neg), nil
	case *syntax.Concat:
		seq := &Seq{}
		for _, s := range n.Subs {
			op, err := l.lower(s)
			if err != nil {
				return nil, err
			}
			seq.Ops = append(seq.Ops, op)
		}
		return seq, nil
	case *syntax.Alternate:
		// Alternations of single characters collapse into a class: the
		// middle-end groups OR expressions by four characters instead of
		// paying one sub-RE per alternative.
		if bytes, ok := singleByteAlts(n.Subs); ok {
			rs := make([]syntax.ClassRange, len(bytes))
			for i, c := range bytes {
				rs[i] = syntax.ClassRange{Lo: c, Hi: c}
			}
			return l.lowerClass(rs, false), nil
		}
		alt := &Alt{}
		for _, s := range n.Subs {
			op, err := l.lower(s)
			if err != nil {
				return nil, err
			}
			alt.Alts = append(alt.Alts, op)
		}
		return alt, nil
	case *syntax.Repeat:
		body, err := l.lower(n.Sub)
		if err != nil {
			return nil, err
		}
		max := n.Max
		if max == syntax.Unlimited {
			max = Unbounded
		}
		return &Quant{Body: body, Min: n.Min, Max: max, Lazy: n.Lazy}, nil
	}
	return nil, fmt.Errorf("ir: unknown AST node %T", n)
}

// lowerLiteral splits a literal run into AND leaves of at most four
// bytes; the implicit AND between consecutive instructions makes the
// groups behave as one long AND (paper §5). Under case folding, runs of
// letters become per-letter two-character ORs instead.
func (l *lowerer) lowerLiteral(bs []byte) Op {
	if len(bs) == 0 {
		return &Seq{}
	}
	if l.opt.CaseInsensitive {
		seq := &Seq{}
		run := make([]byte, 0, 4)
		flush := func() {
			if len(run) > 0 {
				seq.Ops = append(seq.Ops, l.lowerLiteralRun(run))
				run = run[:0]
			}
		}
		for _, c := range bs {
			if lo, hi, ok := foldLetter(c); ok {
				flush()
				seq.Ops = append(seq.Ops, &Or{Bytes: []byte{lo, hi}})
				continue
			}
			run = append(run, c)
		}
		flush()
		return simplify(seq)
	}
	return l.lowerLiteralRun(bs)
}

func (l *lowerer) lowerLiteralRun(bs []byte) Op {
	if len(bs) <= 4 {
		return &And{Bytes: append([]byte(nil), bs...)}
	}
	seq := &Seq{}
	for i := 0; i < len(bs); i += 4 {
		end := min(i+4, len(bs))
		seq.Ops = append(seq.Ops, &And{Bytes: append([]byte(nil), bs[i:end]...)})
	}
	return seq
}

// foldLetter returns the lower/upper pair of an ASCII letter.
func foldLetter(c byte) (lo, hi byte, ok bool) {
	switch {
	case c >= 'a' && c <= 'z':
		return c, c - 'a' + 'A', true
	case c >= 'A' && c <= 'Z':
		return c - 'A' + 'a', c, true
	}
	return 0, 0, false
}

// singleByteAlts reports whether every alternative is a one-byte literal
// and returns the byte set.
func singleByteAlts(subs []syntax.Node) ([]byte, bool) {
	var out []byte
	for _, s := range subs {
		lit, ok := s.(*syntax.Literal)
		if !ok || len(lit.Bytes) != 1 {
			return nil, false
		}
		out = append(out, lit.Bytes[0])
	}
	return out, true
}

// lowerClass is the class-lowering strategy selector described in
// DESIGN.md §4: it chooses the cheapest representation among a single
// (possibly negated) RANGE, a single (possibly negated) OR, and a
// complex OR chain over the positive character set.
func (l *lowerer) lowerClass(ranges []syntax.ClassRange, neg bool) Op {
	if l.opt.CaseInsensitive {
		ranges = foldRanges(ranges)
	}
	norm := normalizeRanges(ranges, l.opt.maxByte())
	if len(norm) == 0 {
		if neg {
			// Negation of the empty set: any character.
			norm = []Pair{{0, l.opt.maxByte()}}
			neg = false
		} else {
			// The front-end rejects empty classes; an empty set after
			// clipping matches nothing. Represent as an impossible OR.
			return &Or{Bytes: []byte{0}, Not: false}
		}
	}

	// Direct single-instruction representations.
	if !l.opt.noNot() || !neg {
		if op, ok := leafFor(norm, neg, l.opt); ok {
			return op
		}
	}

	// Fall back to the positive set (complementing if negated) and build
	// the complex OR chain.
	pos := norm
	if neg {
		pos = complement(norm, l.opt.maxByte())
		if len(pos) == 0 {
			return &Or{Bytes: []byte{0}, Not: false} // matches nothing
		}
		if op, ok := leafFor(pos, false, l.opt); ok {
			return op
		}
	}
	return l.chainFor(pos)
}

// leafFor returns a single-instruction leaf for the normalised range set
// when one exists under the active options.
func leafFor(pairs []Pair, neg bool, opt Options) (Op, bool) {
	if bs, ok := pairsToBytes(pairs, 4); ok {
		return &Or{Bytes: bs, Not: neg}, true
	}
	if len(pairs) <= 2 && !opt.noRange() {
		return &Range{Pairs: append([]Pair(nil), pairs...), Not: neg}, true
	}
	return nil, false
}

// chainFor packs a positive range set into a complex OR chain: single
// characters grouped four per OR instruction, ranges two per RANGE
// instruction (or unfolded to characters when RANGE is disabled).
func (l *lowerer) chainFor(pairs []Pair) Op {
	var singles []byte
	var wide []Pair
	for _, p := range pairs {
		if l.opt.noRange() || p.Lo == p.Hi {
			for c := int(p.Lo); c <= int(p.Hi); c++ {
				singles = append(singles, byte(c))
			}
		} else {
			wide = append(wide, p)
		}
	}
	var elems []Op
	for len(wide) >= 2 {
		elems = append(elems, &Range{Pairs: []Pair{wide[0], wide[1]}})
		wide = wide[2:]
	}
	if len(wide) == 1 {
		// Fill the half-empty RANGE slot with a single character when
		// one is available.
		ps := []Pair{wide[0]}
		if len(singles) > 0 {
			ps = append(ps, Pair{singles[0], singles[0]})
			singles = singles[1:]
		}
		elems = append(elems, &Range{Pairs: ps})
	}
	for i := 0; i < len(singles); i += 4 {
		end := min(i+4, len(singles))
		elems = append(elems, &Or{Bytes: append([]byte(nil), singles[i:end]...)})
	}
	if len(elems) == 1 {
		return elems[0]
	}
	return &Chain{Elems: elems}
}

// pairsToBytes flattens a range set to at most limit single bytes,
// reporting false if it is wider.
func pairsToBytes(pairs []Pair, limit int) ([]byte, bool) {
	var out []byte
	for _, p := range pairs {
		for c := int(p.Lo); c <= int(p.Hi); c++ {
			out = append(out, byte(c))
			if len(out) > limit {
				return nil, false
			}
		}
	}
	return out, true
}

// foldRanges adds the opposite-case image of every letter covered by
// the range set.
func foldRanges(ranges []syntax.ClassRange) []syntax.ClassRange {
	out := append([]syntax.ClassRange(nil), ranges...)
	for _, r := range ranges {
		for c := int(r.Lo); c <= int(r.Hi); c++ {
			if lo, hi, ok := foldLetter(byte(c)); ok {
				out = append(out, syntax.ClassRange{Lo: lo, Hi: lo}, syntax.ClassRange{Lo: hi, Hi: hi})
			}
		}
	}
	return out
}

// normalizeRanges sorts, clips to the alphabet and merges the range set.
func normalizeRanges(ranges []syntax.ClassRange, maxByte byte) []Pair {
	covered := [256]bool{}
	for _, r := range ranges {
		lo, hi := r.Lo, r.Hi
		if lo > maxByte {
			continue
		}
		if hi > maxByte {
			hi = maxByte
		}
		for c := int(lo); c <= int(hi); c++ {
			covered[c] = true
		}
	}
	var out []Pair
	c := 0
	for c <= int(maxByte) {
		if !covered[c] {
			c++
			continue
		}
		lo := c
		for c <= int(maxByte) && covered[c] {
			c++
		}
		out = append(out, Pair{byte(lo), byte(c - 1)})
	}
	return out
}

// complement returns the complement of a normalised range set over the
// alphabet 0..maxByte.
func complement(pairs []Pair, maxByte byte) []Pair {
	covered := [256]bool{}
	for _, p := range pairs {
		for c := int(p.Lo); c <= int(p.Hi); c++ {
			covered[c] = true
		}
	}
	var out []Pair
	c := 0
	for c <= int(maxByte) {
		if covered[c] {
			c++
			continue
		}
		lo := c
		for c <= int(maxByte) && !covered[c] {
			c++
		}
		out = append(out, Pair{byte(lo), byte(c - 1)})
	}
	return out
}

// simplify flattens nested sequences, unwraps trivial quantifiers and
// drops empty operands.
func simplify(op Op) Op {
	switch op := op.(type) {
	case *Seq:
		var ops []Op
		for _, s := range op.Ops {
			s = simplify(s)
			if sub, ok := s.(*Seq); ok {
				ops = append(ops, sub.Ops...)
				continue
			}
			ops = append(ops, s)
		}
		if len(ops) == 1 {
			return ops[0]
		}
		return &Seq{Ops: ops}
	case *Alt:
		for i, a := range op.Alts {
			op.Alts[i] = simplify(a)
		}
		if len(op.Alts) == 1 {
			return op.Alts[0]
		}
		return op
	case *Quant:
		op.Body = simplify(op.Body)
		if isEmpty(op.Body) {
			// Repetition of the empty expression matches the empty
			// string regardless of the bounds.
			return &Seq{}
		}
		if op.Min == 1 && op.Max == 1 {
			return op.Body
		}
		if op.Max == 0 {
			return &Seq{}
		}
		return op
	case *Chain:
		for i, e := range op.Elems {
			op.Elems[i] = simplify(e)
		}
		if len(op.Elems) == 1 {
			return op.Elems[0]
		}
		return op
	}
	return op
}

// isEmpty reports whether the op emits no instructions.
func isEmpty(op Op) bool {
	s, ok := op.(*Seq)
	return ok && len(s.Ops) == 0
}

// clone deep-copies an IR subtree; counter decomposition duplicates
// bodies and must not alias them.
func clone(op Op) Op {
	switch op := op.(type) {
	case *And:
		return &And{Bytes: append([]byte(nil), op.Bytes...)}
	case *Or:
		return &Or{Bytes: append([]byte(nil), op.Bytes...), Not: op.Not}
	case *Range:
		return &Range{Pairs: append([]Pair(nil), op.Pairs...), Not: op.Not}
	case *Seq:
		out := &Seq{Ops: make([]Op, len(op.Ops))}
		for i, s := range op.Ops {
			out.Ops[i] = clone(s)
		}
		return out
	case *Alt:
		out := &Alt{Alts: make([]Op, len(op.Alts))}
		for i, s := range op.Alts {
			out.Alts[i] = clone(s)
		}
		return out
	case *Chain:
		out := &Chain{Elems: make([]Op, len(op.Elems))}
		for i, s := range op.Elems {
			out.Elems[i] = clone(s)
		}
		return out
	case *Quant:
		return &Quant{Body: clone(op.Body), Min: op.Min, Max: op.Max, Lazy: op.Lazy}
	}
	panic(fmt.Sprintf("ir: clone of unknown op %T", op))
}

// decomposeCounters rewrites quantifiers whose bounds exceed the ISA's
// 6-bit counters into language-equivalent compositions of supported
// counters, and — under NoCounters — unfolds bounded quantifiers into
// alternations of repeated concatenations (the paper's minimal baseline).
func decomposeCounters(op Op, opt Options) (Op, error) {
	switch op := op.(type) {
	case *Seq:
		for i, s := range op.Ops {
			d, err := decomposeCounters(s, opt)
			if err != nil {
				return nil, err
			}
			op.Ops[i] = d
		}
		return op, nil
	case *Alt:
		for i, s := range op.Alts {
			d, err := decomposeCounters(s, opt)
			if err != nil {
				return nil, err
			}
			op.Alts[i] = d
		}
		return op, nil
	case *Chain:
		return op, nil // chain elements are leaves
	case *Quant:
		body, err := decomposeCounters(op.Body, opt)
		if err != nil {
			return nil, err
		}
		op.Body = body
		return rewriteQuant(op, opt)
	default:
		return op, nil
	}
}

// rewriteQuant implements the counter rewrites for one quantifier.
func rewriteQuant(q *Quant, opt Options) (Op, error) {
	if opt.noCounters() {
		return unfoldQuant(q)
	}
	if q.Min <= isa.MaxCounter && (q.Max == Unbounded || q.Max <= isa.MaxCounter) {
		return q, nil
	}
	// X{n,m} with wide bounds: X{n} · X{0,m-n} (or X{0,inf}), each part
	// recursively decomposed into <=62-wide counters.
	var seq Seq
	if q.Min > 0 {
		seq.Ops = append(seq.Ops, exactCopies(q.Body, q.Min)...)
	}
	switch {
	case q.Max == Unbounded:
		seq.Ops = append(seq.Ops, &Quant{Body: clone(q.Body), Min: 0, Max: Unbounded, Lazy: q.Lazy})
	case q.Max > q.Min:
		rest := q.Max - q.Min
		for rest > 0 {
			step := min(rest, isa.MaxCounter)
			seq.Ops = append(seq.Ops, &Quant{Body: clone(q.Body), Min: 0, Max: step, Lazy: q.Lazy})
			rest -= step
		}
	}
	return simplify(&seq), nil
}

// exactCopies emits X{n} as chained counters of at most 62 repetitions.
func exactCopies(body Op, n int) []Op {
	var ops []Op
	for n > 0 {
		step := min(n, isa.MaxCounter)
		if step == 1 {
			ops = append(ops, clone(body))
		} else {
			ops = append(ops, &Quant{Body: clone(body), Min: step, Max: step})
		}
		n -= step
	}
	return ops
}

// maxUnfold bounds the code-size explosion the minimal mode accepts when
// unfolding bounded quantifiers.
const maxUnfold = 1 << 16

// unfoldQuant implements the paper's minimal baseline: bounded
// repetitions become unfolded sequences of concatenations, bounded
// ranges {n,m} become alternations of the unfolded sequences, and
// unbounded quantifiers keep the loop form with the mandatory prefix
// unfolded.
func unfoldQuant(q *Quant) (Op, error) {
	rep := func(n int) Op {
		s := &Seq{}
		for i := 0; i < n; i++ {
			s.Ops = append(s.Ops, clone(q.Body))
		}
		return simplify(s)
	}
	if q.Max == Unbounded {
		// X{n,} -> X^n X{0,inf}: the loop itself cannot be unfolded.
		s := &Seq{Ops: []Op{rep(q.Min), &Quant{Body: clone(q.Body), Min: 0, Max: Unbounded, Lazy: q.Lazy}}}
		return simplify(s), nil
	}
	if q.Max == q.Min {
		if q.Min > maxUnfold {
			return nil, fmt.Errorf("ir: unfolding {%d} exceeds the code-size bound", q.Min)
		}
		return rep(q.Min), nil
	}
	if q.Max*2 > maxUnfold {
		return nil, fmt.Errorf("ir: unfolding {%d,%d} exceeds the code-size bound", q.Min, q.Max)
	}
	// Alternation ordered by the matching modality: greedy prefers the
	// longest unfolding first, lazy the shortest.
	alt := &Alt{}
	if q.Lazy {
		for n := q.Min; n <= q.Max; n++ {
			alt.Alts = append(alt.Alts, rep(n))
		}
	} else {
		for n := q.Max; n >= q.Min; n-- {
			alt.Alts = append(alt.Alts, rep(n))
		}
	}
	return simplify(alt), nil
}
