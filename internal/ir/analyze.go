package ir

// Analysis of IR trees used by the back-end to emit prefilter hints:
// match-length bounds and required literals (necessary factors).

// LenUnbounded marks an unbounded maximum match length.
const LenUnbounded = -1

// Lengths returns the minimum and maximum number of bytes any match of
// op consumes; max == LenUnbounded when no upper bound exists.
func Lengths(op Op) (min, max int) {
	switch op := op.(type) {
	case *And:
		return len(op.Bytes), len(op.Bytes)
	case *Or, *Range:
		return 1, 1
	case *Chain:
		return 1, 1
	case *Seq:
		for _, s := range op.Ops {
			lo, hi := Lengths(s)
			min += lo
			max = addLen(max, hi)
		}
		return min, max
	case *Alt:
		first := true
		for _, s := range op.Alts {
			lo, hi := Lengths(s)
			if first {
				min, max = lo, hi
				first = false
				continue
			}
			if lo < min {
				min = lo
			}
			max = maxLen(max, hi)
		}
		return min, max
	case *Quant:
		lo, hi := Lengths(op.Body)
		min = lo * op.Min
		if op.Max == Unbounded {
			if hi == 0 {
				return min, min
			}
			return min, LenUnbounded
		}
		return min, mulLen(hi, op.Max)
	}
	return 0, 0
}

func addLen(a, b int) int {
	if a == LenUnbounded || b == LenUnbounded {
		return LenUnbounded
	}
	return a + b
}

func mulLen(a, n int) int {
	if a == LenUnbounded {
		return LenUnbounded
	}
	return a * n
}

func maxLen(a, b int) int {
	if a == LenUnbounded || b == LenUnbounded {
		return LenUnbounded
	}
	if a > b {
		return a
	}
	return b
}

// Prefilter is a necessary-factor hint: every match of the pattern
// contains Literal, beginning between PreMin and PreMax bytes
// (PreMax == LenUnbounded when unbounded) after the match start. The
// engine can therefore reduce candidate starts to the neighbourhoods of
// the literal's occurrences — the software-side optimisation that costs
// the hardware nothing (paper §5's philosophy: complexity moves to the
// compiler).
type Prefilter struct {
	Literal        []byte
	PreMin, PreMax int
}

// Usable reports whether the hint can narrow candidate windows (a
// bounded prefix) rather than only answer containment.
func (p *Prefilter) Usable() bool {
	return p != nil && len(p.Literal) > 0 && p.PreMax != LenUnbounded
}

// FindPrefilter extracts the longest required literal of the pattern
// with its prefix-distance bounds. It returns nil when no literal of at
// least two bytes is mandatory.
func FindPrefilter(op Op) *Prefilter {
	best := &Prefilter{}
	walk(op, 0, 0, best)
	if len(best.Literal) < 2 {
		return nil
	}
	return best
}

// walk scans sequences for maximal runs of consecutive And leaves,
// tracking the length bounds of everything before the run. preMin and
// preMax are the bounds of the path from the match start to op.
func walk(op Op, preMin, preMax int, best *Prefilter) {
	switch op := op.(type) {
	case *And:
		consider(op.Bytes, preMin, preMax, best)
	case *Seq:
		// Merge adjacent And leaves into one literal run.
		i := 0
		for i < len(op.Ops) {
			if a, ok := op.Ops[i].(*And); ok {
				lit := append([]byte(nil), a.Bytes...)
				j := i + 1
				for j < len(op.Ops) {
					b, ok := op.Ops[j].(*And)
					if !ok {
						break
					}
					lit = append(lit, b.Bytes...)
					j++
				}
				consider(lit, preMin, preMax, best)
				preMin += len(lit)
				preMax = addLen(preMax, len(lit))
				i = j
				continue
			}
			sub := op.Ops[i]
			walk(sub, preMin, preMax, best)
			lo, hi := Lengths(sub)
			preMin += lo
			preMax = addLen(preMax, hi)
			i++
		}
	case *Quant:
		if op.Min >= 1 {
			// The first mandatory repetition contains the body's
			// literals at a known offset.
			walk(op.Body, preMin, preMax, best)
		}
	case *Alt, *Chain, *Or, *Range:
		// Branch-dependent content is not a required factor. (A common
		// factor across all alternatives would be; that refinement is
		// left to the compiler's future work, as in hyperscan's
		// dominant-path analysis.)
	}
}

// consider keeps the better literal: longer wins; on a tie, the one
// with a bounded, narrower prefix window wins.
func consider(lit []byte, preMin, preMax int, best *Prefilter) {
	if len(lit) < len(best.Literal) {
		return
	}
	window := func(pMax int) int {
		if pMax == LenUnbounded {
			return 1 << 30
		}
		return pMax
	}
	if len(lit) == len(best.Literal) &&
		window(preMax)-preMin >= window(best.PreMax)-best.PreMin {
		return
	}
	best.Literal = append(best.Literal[:0], lit...)
	best.PreMin, best.PreMax = preMin, preMax
}
