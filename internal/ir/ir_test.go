package ir

import (
	"strings"
	"testing"

	"alveare/internal/syntax"
)

func lower(t *testing.T, re string, opt Options) Op {
	t.Helper()
	ast, err := syntax.Parse(re)
	if err != nil {
		t.Fatalf("parse %q: %v", re, err)
	}
	op, err := Lower(ast, opt)
	if err != nil {
		t.Fatalf("lower %q: %v", re, err)
	}
	return op
}

// TestLowerGolden pins the middle-end output for representative REs in
// the full advanced-primitive mode.
func TestLowerGolden(t *testing.T) {
	cases := []struct{ re, want string }{
		{"abc", "and{abc}"},
		{"abcdefgh", "seq(and{abcd} and{efgh})"},
		{"abcdefghi", "seq(and{abcd} and{efgh} and{i})"},
		{"a|b", "or{ab}"},         // single-char alternation folds to a class
		{"a|b|c|d|e", "rng{a-e}"}, // contiguous chars merge into one RANGE
		{"a|b|x|y|z", "rng{a-b x-z}"},
		{"[a-z]", "rng{a-z}"},
		{"[a-z0-9]", "rng{0-9 a-z}"}, // two ranges pack into one RANGE
		{"[^a-z]", "!rng{a-z}"},      // NOT composes with RANGE
		{"[^abc]", "!or{abc}"},       // NOT composes with OR
		{".", "!or{\\n}"},            // dot lowers to [^\n]
		{"\\w", "chain(rng{0-9 A-Z} rng{a-z _-_})"},
		{"\\d", "rng{0-9}"},
		{"\\s", "rng{\\t-\\r \\s-\\s}"},
		{"[a-zA-Z]", "rng{A-Z a-z}"},
		{"(ab)", "and{ab}"}, // over-parenthesis removal
		{"((a))", "and{a}"},
		{"a*", "q{0,inf and{a}}"},
		{"a+", "q{1,inf and{a}}"},
		{"a?", "q{0,1 and{a}}"},
		{"a{3,6}?", "q{3,6 lazy and{a}}"},
		{"(ab)+", "q{1,inf and{ab}}"},
		{"(a|bc)", "alt(and{a} and{bc})"},
		{"[abc][def]", "seq(or{abc} or{def})"},
		{"x{1}", "and{x}"},
		{"(a|b|c)d", "seq(or{abc} and{d})"},
		{"", "seq()"},
		{"()*", "seq()"}, // quantified empty group vanishes
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			got := Dump(lower(t, c.re, Options{}))
			if got != c.want {
				t.Errorf("Lower(%q) = %s, want %s", c.re, got, c.want)
			}
		})
	}
}

// TestTable2Lowerings pins the IR of the paper's Table 2 microbenchmarks
// under the advanced-primitive compiler.
func TestTable2Lowerings(t *testing.T) {
	cases := []struct{ re, want string }{
		{"[a-zA-Z]", "rng{A-Z a-z}"},
		{"[DBEZX]{7}", "q{7,7 chain(rng{D-E B-B} or{XZ})}"},
		{".{3,6}", "q{3,6 !or{\\n}}"},
		{"[^ ]*", "q{0,inf !or{\\s}}"},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			if got := Dump(lower(t, c.re, Options{})); got != c.want {
				t.Errorf("Lower(%q) = %s, want %s", c.re, got, c.want)
			}
		})
	}
}

// TestMinimalModeUnfolds checks the §7.1 baseline: classes unfold to OR
// chains, negation unfolds to complements, bounded counters unfold to
// alternations of concatenations.
func TestMinimalModeUnfolds(t *testing.T) {
	min := Options{Minimal: true}

	t.Run("range unfolds to chain of ORs", func(t *testing.T) {
		got := Dump(lower(t, "[a-h]", min))
		want := "chain(or{abcd} or{efgh})"
		if got != want {
			t.Errorf("got %s, want %s", got, want)
		}
	})
	t.Run("negation unfolds to ASCII complement", func(t *testing.T) {
		op := lower(t, "[^ ]", min)
		ch, ok := op.(*Chain)
		if !ok {
			t.Fatalf("op = %T, want *Chain", op)
		}
		// 127 ASCII characters (0..127 minus space) in groups of four.
		if len(ch.Elems) != 32 {
			t.Errorf("chain has %d elements, want 32", len(ch.Elems))
		}
		for _, e := range ch.Elems {
			or, ok := e.(*Or)
			if !ok {
				t.Fatalf("chain element %T, want *Or", e)
			}
			if or.Not {
				t.Error("minimal mode emitted a NOT primitive")
			}
		}
	})
	t.Run("bounded quantifier unfolds to alternation", func(t *testing.T) {
		op := lower(t, "a{2,4}", min)
		alt, ok := op.(*Alt)
		if !ok {
			t.Fatalf("op = %T, want *Alt", op)
		}
		if len(alt.Alts) != 3 {
			t.Fatalf("alternation of %d branches, want 3", len(alt.Alts))
		}
		// Greedy: longest branch first.
		if got := Dump(alt.Alts[0]); got != "seq(and{a} and{a} and{a} and{a})" {
			t.Errorf("first branch = %s, want four a's", got)
		}
		if got := Dump(alt.Alts[2]); got != "seq(and{a} and{a})" {
			t.Errorf("last branch = %s, want two a's", got)
		}
	})
	t.Run("lazy unfold orders shortest first", func(t *testing.T) {
		op := lower(t, "a{2,3}?", min)
		alt := op.(*Alt)
		if got := Dump(alt.Alts[0]); got != "seq(and{a} and{a})" {
			t.Errorf("first branch = %s, want two a's", got)
		}
	})
	t.Run("exact bound unfolds to concatenation", func(t *testing.T) {
		got := Dump(lower(t, "a{3}", min))
		if got != "seq(and{a} and{a} and{a})" {
			t.Errorf("got %s", got)
		}
	})
	t.Run("unbounded keeps the loop", func(t *testing.T) {
		got := Dump(lower(t, "a{2,}", min))
		want := "seq(and{a} and{a} q{0,inf and{a}})"
		if got != want {
			t.Errorf("got %s, want %s", got, want)
		}
	})
	t.Run("kleene star survives minimal mode", func(t *testing.T) {
		got := Dump(lower(t, "a*", min))
		if got != "q{0,inf and{a}}" {
			t.Errorf("got %s", got)
		}
	})
}

// TestCounterDecomposition checks the rewrites for bounds exceeding the
// ISA's 6-bit counters (0..62).
func TestCounterDecomposition(t *testing.T) {
	cases := []struct{ re, want string }{
		{"a{62}", "q{62,62 and{a}}"},
		{"a{63}", "seq(q{62,62 and{a}} and{a})"},
		{"a{100}", "seq(q{62,62 and{a}} q{38,38 and{a}})"},
		{"a{124}", "seq(q{62,62 and{a}} q{62,62 and{a}})"},
		{"a{70,}", "seq(q{62,62 and{a}} q{8,8 and{a}} q{0,inf and{a}})"},
		{"a{0,100}", "seq(q{0,62 and{a}} q{0,38 and{a}})"},
		{"a{5,100}", "seq(q{5,5 and{a}} q{0,62 and{a}} q{0,33 and{a}})"},
		{"a{62,62}", "q{62,62 and{a}}"},
		{"a{0,62}", "q{0,62 and{a}}"},
		{"a{63,64}", "seq(q{62,62 and{a}} and{a} q{0,1 and{a}})"},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			if got := Dump(lower(t, c.re, Options{})); got != c.want {
				t.Errorf("Lower(%q) = %s, want %s", c.re, got, c.want)
			}
		})
	}
}

// TestCloneIndependence guards the unfolding passes against aliased
// bodies.
func TestCloneIndependence(t *testing.T) {
	orig := &Seq{Ops: []Op{&And{Bytes: []byte("ab")}, &Quant{Body: &Or{Bytes: []byte("xy")}, Min: 1, Max: 2}}}
	cp := clone(orig).(*Seq)
	cp.Ops[0].(*And).Bytes[0] = 'Z'
	cp.Ops[1].(*Quant).Body.(*Or).Bytes[0] = 'Z'
	if orig.Ops[0].(*And).Bytes[0] != 'a' {
		t.Error("clone aliases And bytes")
	}
	if orig.Ops[1].(*Quant).Body.(*Or).Bytes[0] != 'x' {
		t.Error("clone aliases nested Quant body")
	}
}

func TestUnfoldCodeSizeBound(t *testing.T) {
	ast, err := syntax.Parse("a{9999}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(ast, Options{}); err != nil {
		t.Errorf("advanced mode rejected a{9999}: %v", err)
	}
	// Minimal mode unfolds 9999 copies: within the bound, accepted.
	if _, err := Lower(ast, Options{Minimal: true}); err != nil {
		t.Errorf("minimal mode rejected a{9999}: %v", err)
	}
}

// TestChainElementInvariant: every chain element is a one-character
// leaf, the property the back-end and the controller rely on.
func TestChainElementInvariant(t *testing.T) {
	for _, re := range []string{"[^ ]", "\\w", "[a-zA-Z0-9%#@!]", "a|b|c|d|e|f"} {
		op := lower(t, re, Options{})
		var walk func(Op)
		walk = func(o Op) {
			switch o := o.(type) {
			case *Chain:
				for _, e := range o.Elems {
					switch leaf := e.(type) {
					case *Or:
						if len(leaf.Bytes) < 1 || len(leaf.Bytes) > 4 {
							t.Errorf("%q: chain OR with %d bytes", re, len(leaf.Bytes))
						}
					case *Range:
						if len(leaf.Pairs) < 1 || len(leaf.Pairs) > 2 {
							t.Errorf("%q: chain RANGE with %d pairs", re, len(leaf.Pairs))
						}
					default:
						t.Errorf("%q: chain element %T", re, e)
					}
				}
			case *Seq:
				for _, s := range o.Ops {
					walk(s)
				}
			case *Alt:
				for _, s := range o.Alts {
					walk(s)
				}
			case *Quant:
				walk(o.Body)
			}
		}
		walk(op)
	}
}

func TestNormalizeRanges(t *testing.T) {
	got := normalizeRanges([]syntax.ClassRange{{Lo: 'c', Hi: 'f'}, {Lo: 'a', Hi: 'd'}, {Lo: 'g', Hi: 'g'}}, 255)
	if len(got) != 1 || got[0] != (Pair{'a', 'g'}) {
		t.Errorf("merge failed: %v", got)
	}
	// Clipping to the ASCII alphabet.
	got = normalizeRanges([]syntax.ClassRange{{Lo: 'a', Hi: 0xff}}, 127)
	if len(got) != 1 || got[0] != (Pair{'a', 127}) {
		t.Errorf("clip failed: %v", got)
	}
	if got := normalizeRanges([]syntax.ClassRange{{Lo: 0x90, Hi: 0xff}}, 127); len(got) != 0 {
		t.Errorf("out-of-alphabet range survived: %v", got)
	}
}

func TestComplement(t *testing.T) {
	got := complement([]Pair{{0, 'a' - 1}, {'z' + 1, 255}}, 255)
	if len(got) != 1 || got[0] != (Pair{'a', 'z'}) {
		t.Errorf("complement = %v, want [a-z]", got)
	}
}

// TestSeparateAblationSwitches verifies that each advanced primitive can
// be disabled independently for the ablation study.
func TestSeparateAblationSwitches(t *testing.T) {
	if got := Dump(lower(t, "[a-d]", Options{NoRange: true})); got != "or{abcd}" {
		t.Errorf("NoRange [a-d] = %s, want or{abcd}", got)
	}
	got := Dump(lower(t, "[^a]", Options{NoNot: true}))
	if strings.Contains(got, "!") {
		t.Errorf("NoNot [^a] still uses NOT: %s", got)
	}
	got = Dump(lower(t, "a{2}", Options{NoCounters: true}))
	if got != "seq(and{a} and{a})" {
		t.Errorf("NoCounters a{2} = %s", got)
	}
	// Advanced primitives stay on where not disabled.
	if got := Dump(lower(t, "[^a-z]", Options{NoCounters: true})); got != "!rng{a-z}" {
		t.Errorf("NoCounters should keep NOT/RANGE: %s", got)
	}
}
