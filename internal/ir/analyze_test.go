package ir

import (
	"testing"
)

func analyzeOf(t *testing.T, re string) Op {
	t.Helper()
	return lower(t, re, Options{})
}

func TestLengths(t *testing.T) {
	cases := []struct {
		re       string
		min, max int
	}{
		{"abc", 3, 3},
		{"[a-z]", 1, 1},
		{"a|bc", 1, 2},
		{"a*", 0, LenUnbounded},
		{"a{2,5}", 2, 5},
		{"(ab){3}", 6, 6},
		{"a?b", 1, 2},
		{"(GET|POST) /", 5, 6},
		{"", 0, 0},
		{"x[0-9]{2,4}y", 4, 6},
		{"a+", 1, LenUnbounded},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			lo, hi := Lengths(analyzeOf(t, c.re))
			if lo != c.min || hi != c.max {
				t.Errorf("Lengths(%q) = (%d,%d), want (%d,%d)", c.re, lo, hi, c.min, c.max)
			}
		})
	}
}

func TestFindPrefilter(t *testing.T) {
	cases := []struct {
		re             string
		lit            string // "" = no usable prefilter
		preMin, preMax int
	}{
		{"(GET|POST) /index", " /index", 3, 4},
		{"abcdef", "abcdef", 0, 0},
		{"[a-z]+needle", "needle", 1, LenUnbounded},
		{"(a|b)(c|d)", "", 0, 0}, // no mandatory literal
		{"x?hello", "hello", 0, 1},
		{"(foo|bar)baz(qux|quux)", "baz", 3, 3},
		{"a{2,4}WORD", "WORD", 2, 4},
		{"(ab)+tail", "tail", 2, LenUnbounded}, // unbounded prefix: containment-only hint
		{"ab", "ab", 0, 0},
		{"a", "", 0, 0}, // single byte: too weak
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			pf := FindPrefilter(analyzeOf(t, c.re))
			if c.lit == "" {
				if pf != nil {
					t.Fatalf("unexpected prefilter %q", pf.Literal)
				}
				return
			}
			if pf == nil {
				t.Fatalf("no prefilter, want %q", c.lit)
			}
			if string(pf.Literal) != c.lit || pf.PreMin != c.preMin || pf.PreMax != c.preMax {
				t.Errorf("prefilter = %q @ [%d,%d], want %q @ [%d,%d]",
					pf.Literal, pf.PreMin, pf.PreMax, c.lit, c.preMin, c.preMax)
			}
		})
	}
}

func TestPrefilterMandatoryQuantBody(t *testing.T) {
	// The first mandatory repetition pins the body literal's offset.
	pf := FindPrefilter(analyzeOf(t, "(hello){2,5}"))
	if pf == nil || string(pf.Literal) != "hello" || pf.PreMin != 0 || pf.PreMax != 0 {
		t.Errorf("prefilter = %+v", pf)
	}
	// Optional bodies guarantee nothing.
	if pf := FindPrefilter(analyzeOf(t, "(hello)?x?")); pf != nil {
		t.Errorf("optional body produced %q", pf.Literal)
	}
}
