package prefilter

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// The dispatcher's one invariant: a filtered rule is a candidate iff
// its literal occurs. Checked against bytes.Contains over random
// inputs, with literal sets that are prefixes/suffixes of each other —
// the shapes that exercise the failure links.
func TestCandidatesMatchesBytesContains(t *testing.T) {
	litSets := [][]string{
		{"foobar", "foo", "foobaz", "oba", "ba"},
		{"abc", "bc", "c", "cab", "abcabc"},
		{"he", "she", "his", "hers"},
		{"xx", "xxx", "xxxx"},
		{"needle"},
	}
	r := rand.New(rand.NewSource(17))
	for _, set := range litSets {
		var lits []Literal
		for i, l := range set {
			lits = append(lits, Literal{Rule: i, Bytes: []byte(l)})
		}
		s, err := NewSet(len(set), lits)
		if err != nil {
			t.Fatalf("NewSet(%v): %v", set, err)
		}
		if s.Filtered() != len(set) {
			t.Fatalf("Filtered() = %d, want %d", s.Filtered(), len(set))
		}
		bits := NewBits(len(set))
		inputs := []string{"", "a", "foobarbaz", "shers", "xxxxx", "abcabcab", "needle in a haystack"}
		for i := 0; i < 40; i++ {
			n := r.Intn(60)
			var b strings.Builder
			for j := 0; j < n; j++ {
				b.WriteByte("abcfoxhersne"[r.Intn(12)])
			}
			inputs = append(inputs, b.String())
		}
		for _, in := range inputs {
			got := s.Candidates([]byte(in), bits)
			count := 0
			for i, l := range set {
				want := bytes.Contains([]byte(in), []byte(l))
				if bits.Has(i) != want {
					t.Fatalf("set %v input %q rule %d (%q): candidate=%v want %v",
						set, in, i, l, bits.Has(i), want)
				}
				if want {
					count++
				}
			}
			if got != count {
				t.Fatalf("set %v input %q: Candidates returned %d, want %d", set, in, got, count)
			}
		}
	}
}

// Rules without a literal are always candidates; rules with one are
// gated. Mixed sets are the common case (not every pattern has a
// mandatory factor).
func TestAlwaysDispatchedRules(t *testing.T) {
	s, err := NewSet(4, []Literal{
		{Rule: 1, Bytes: []byte("alpha")},
		{Rule: 3, Bytes: []byte("omega")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Filtered() != 2 {
		t.Fatalf("Filtered() = %d, want 2", s.Filtered())
	}
	bits := NewBits(4)
	n := s.Candidates([]byte("nothing relevant"), bits)
	if n != 2 || !bits.Has(0) || bits.Has(1) || !bits.Has(2) || bits.Has(3) {
		t.Fatalf("candidates on miss: n=%d bits=%v", n, bits)
	}
	n = s.Candidates([]byte("the alpha case"), bits)
	if n != 3 || !bits.Has(1) || bits.Has(3) {
		t.Fatalf("candidates on alpha: n=%d bits=%v", n, bits)
	}
}

// Duplicate literals across rules must mark every owning rule.
func TestSharedLiteral(t *testing.T) {
	s, err := NewSet(3, []Literal{
		{Rule: 0, Bytes: []byte("dup")},
		{Rule: 1, Bytes: []byte("dup")},
		{Rule: 2, Bytes: []byte("other")},
	})
	if err != nil {
		t.Fatal(err)
	}
	bits := NewBits(3)
	if n := s.Candidates([]byte("a dup here"), bits); n != 2 || !bits.Has(0) || !bits.Has(1) || bits.Has(2) {
		t.Fatalf("shared literal: n=%d bits=%v", n, bits)
	}
}

func TestEmptySetAndBounds(t *testing.T) {
	s, err := NewSet(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	bits := NewBits(2)
	if n := s.Candidates([]byte("anything"), bits); n != 2 || !bits.Has(0) || !bits.Has(1) {
		t.Fatalf("no-literal set must dispatch everything: n=%d", n)
	}
	if _, err := NewSet(1, []Literal{{Rule: 5, Bytes: []byte("x")}}); err == nil {
		t.Fatal("out-of-range rule id must error")
	}
}

func TestTooLarge(t *testing.T) {
	var lits []Literal
	b := make([]byte, 256)
	for i := 0; i < 200; i++ {
		for j := range b {
			b[j] = byte(rand.New(rand.NewSource(int64(i))).Intn(256))
		}
		lits = append(lits, Literal{Rule: i, Bytes: append([]byte(nil), b...)})
	}
	if _, err := NewSet(200, lits); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("NewSet on %d distinct 256-byte literals = %v, want ErrTooLarge", len(lits), err)
	}
}

func TestContains(t *testing.T) {
	s, err := NewSet(1, []Literal{{Rule: 0, Bytes: []byte("ab")}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains([]byte("slab"), 0) || s.Contains([]byte("ba"), 0) {
		t.Fatal("Contains disagrees with substring search")
	}
}
