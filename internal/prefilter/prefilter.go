// Package prefilter implements the cross-rule dispatch filter of the
// hybrid fast path: one multi-pattern Aho–Corasick automaton built
// over the necessary literal factors of a whole rule set (the
// per-rule hints internal/ir.FindPrefilter extracts and the backend
// attaches as isa.PrefilterHint). A single pass over an input window
// marks every rule whose required literal occurs; rules whose literal
// is absent provably cannot match inside the window and are never
// dispatched to a scanning core.
//
// The filter is exact under the same contract as the streaming overlap
// discipline: a match that lies within the window contains its
// rule's necessary literal within the window, so a literal miss is a
// proof of absence — never a heuristic. Rules without a usable literal
// hint are always dispatched.
package prefilter

import (
	"errors"
	"fmt"
)

// maxNodes bounds the dense automaton (1 KiB of transition table per
// node). Rule sets beyond it fall back to dispatch-everything.
const maxNodes = 1 << 15

// ErrTooLarge reports a literal set whose trie exceeds maxNodes.
var ErrTooLarge = errors.New("prefilter: literal set exceeds the node bound")

// Literal is one rule's necessary factor: every match of rule Rule
// contains Bytes.
type Literal struct {
	Rule  int
	Bytes []byte
}

// Bits is a fixed-width bitset over rule ids — the candidate mask one
// Candidates pass fills. Instances are reusable across windows.
type Bits []uint64

// NewBits returns a mask sized for n rules.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set marks rule i.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether rule i is marked.
func (b Bits) Has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset clears the mask.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// matcher is a dense (goto-and-fail precomputed into one table)
// Aho–Corasick automaton: next holds numNodes rows of 256 next-node
// entries, out the merged rule outputs per node.
type matcher struct {
	next []int32
	out  [][]int32
}

// Set is the rule-set dispatcher: the automaton over the filtered
// rules' literals plus the list of rules that must always scan.
type Set struct {
	m        *matcher
	always   []int32
	nRules   int
	filtered int
}

// NewSet builds the dispatcher for a rule set of n rules from the
// rules' literal hints. Rules absent from lits (no usable hint, or an
// empty literal) are always dispatched. When the combined literal trie
// would exceed the node bound, ErrTooLarge is returned and callers
// should dispatch every rule.
func NewSet(n int, lits []Literal) (*Set, error) {
	s := &Set{nRules: n}
	hasLit := make([]bool, n)
	var usable []Literal
	for _, l := range lits {
		if l.Rule < 0 || l.Rule >= n {
			return nil, fmt.Errorf("prefilter: literal rule %d out of range [0,%d)", l.Rule, n)
		}
		if len(l.Bytes) == 0 {
			continue
		}
		hasLit[l.Rule] = true
		usable = append(usable, l)
	}
	for i := 0; i < n; i++ {
		if !hasLit[i] {
			s.always = append(s.always, int32(i))
		}
	}
	s.filtered = n - len(s.always)
	if s.filtered > 0 {
		m, err := compile(usable)
		if err != nil {
			return nil, err
		}
		s.m = m
	}
	return s, nil
}

// Rules returns the rule-set width the dispatcher was built for.
func (s *Set) Rules() int { return s.nRules }

// Filtered returns the number of rules gated by a literal (the rest
// are always dispatched).
func (s *Set) Filtered() int { return s.filtered }

// compile builds the dense automaton: trie insertion, breadth-first
// failure links, and goto/fail collapsed into one next table (the
// classic construction, materialised because the scan loop must be one
// load per input byte).
func compile(lits []Literal) (*matcher, error) {
	type node struct {
		child [256]int32 // 0 = none (root is never a child)
		out   []int32
		fail  int32
	}
	nodes := []*node{{}}
	for _, l := range lits {
		cur := int32(0)
		for _, c := range l.Bytes {
			nxt := nodes[cur].child[c]
			if nxt == 0 {
				if len(nodes) >= maxNodes {
					return nil, fmt.Errorf("%w: %d nodes", ErrTooLarge, len(nodes))
				}
				nxt = int32(len(nodes))
				nodes = append(nodes, &node{})
				nodes[cur].child[c] = nxt
			}
			cur = nxt
		}
		nodes[cur].out = append(nodes[cur].out, int32(l.Rule))
	}
	// BFS: fill failure links and merge suffix outputs.
	queue := make([]int32, 0, len(nodes))
	for c := 0; c < 256; c++ {
		if v := nodes[0].child[c]; v != 0 {
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for c := 0; c < 256; c++ {
			v := nodes[u].child[c]
			if v == 0 {
				continue
			}
			f := nodes[u].fail
			for f != 0 && nodes[f].child[c] == 0 {
				f = nodes[f].fail
			}
			if w := nodes[f].child[c]; w != 0 && w != v {
				f = w
			} else {
				f = 0
			}
			nodes[v].fail = f
			nodes[v].out = append(nodes[v].out, nodes[f].out...)
			queue = append(queue, v)
		}
	}
	// Collapse goto+fail into the dense next table, in BFS order so a
	// parent's (and fail target's) row is complete before its children.
	m := &matcher{next: make([]int32, len(nodes)*256), out: make([][]int32, len(nodes))}
	for c := 0; c < 256; c++ {
		m.next[c] = nodes[0].child[c]
	}
	m.out[0] = nodes[0].out
	for _, u := range queue {
		m.out[u] = nodes[u].out
		row := int(u) * 256
		frow := int(nodes[u].fail) * 256
		for c := 0; c < 256; c++ {
			if v := nodes[u].child[c]; v != 0 {
				m.next[row+c] = v
			} else {
				m.next[row+c] = m.next[frow+c]
			}
		}
	}
	return m, nil
}

// Candidates fills bits (which must be NewBits(Rules()) wide) with the
// rules that may match inside data: every always-dispatched rule plus
// every filtered rule whose literal occurs. It returns the number of
// candidate rules. The pass early-exits once every filtered rule has
// been seen.
func (s *Set) Candidates(data []byte, bits Bits) int {
	bits.Reset()
	for _, r := range s.always {
		bits.Set(int(r))
	}
	n := len(s.always)
	if s.m == nil || s.filtered == 0 {
		return n
	}
	remaining := s.filtered
	cur := int32(0)
	nxt := s.m.next
	for _, c := range data {
		cur = nxt[int(cur)*256+int(c)]
		if out := s.m.out[cur]; len(out) != 0 {
			for _, r := range out {
				if !bits.Has(int(r)) {
					bits.Set(int(r))
					n++
					remaining--
				}
			}
			if remaining == 0 {
				break
			}
		}
	}
	return n
}

// Contains reports whether any of rule r's literal occurrences appear
// in data — a convenience for single-rule queries and tests.
func (s *Set) Contains(data []byte, rule int) bool {
	bits := NewBits(s.nRules)
	s.Candidates(data, bits)
	return bits.Has(rule)
}
