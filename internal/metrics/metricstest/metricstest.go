// Package metricstest is the deterministic-replay harness for the
// metrics layer: it runs the same workload twice and asserts the
// counter snapshots agree, which pins down nondeterminism the moment
// it leaks into the single-core execution paths (map iteration,
// time-dependent sampling, pointer hashing).
//
// Two strictness levels match the two execution disciplines:
//
//   - Replay asserts byte identity of the serialised snapshots — the
//     contract for single-core paths, whose cycle-level model is fully
//     deterministic.
//   - ReplayTotals asserts equality of selected counter totals — the
//     contract for concurrent paths (rule-set worker pools, multi-core
//     divide and conquer), where scheduling may reorder work but every
//     roll-up total must still land on the same value.
package metricstest

import (
	"bytes"
	"testing"

	"alveare/internal/metrics"
)

// Replay runs the workload twice and fails the test unless the two
// snapshots serialise to byte-identical JSON. run must build its world
// from scratch (or reset it) so both executions start equal.
func Replay(t *testing.T, run func() *metrics.Snapshot) {
	t.Helper()
	a := encode(t, run())
	b := encode(t, run())
	if !bytes.Equal(a, b) {
		t.Errorf("replay diverged:\nfirst:  %s\nsecond: %s", a, b)
	}
}

// ReplayTotals runs the workload twice and fails the test unless every
// named total matches across the runs. Use it for concurrent paths
// where per-worker ordering is free but the roll-ups are not.
func ReplayTotals(t *testing.T, run func() map[string]int64) {
	t.Helper()
	a := run()
	b := run()
	for name, va := range a {
		if vb, ok := b[name]; !ok || va != vb {
			t.Errorf("replay total %q diverged: first %d, second %d (present %v)", name, va, vb, ok)
		}
	}
	for name := range b {
		if _, ok := a[name]; !ok {
			t.Errorf("replay total %q appeared only in the second run", name)
		}
	}
}

func encode(t *testing.T, s *metrics.Snapshot) []byte {
	t.Helper()
	if s == nil {
		t.Fatal("metricstest: nil snapshot")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("metricstest: encode: %v", err)
	}
	return buf.Bytes()
}
