package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("a.b") != c {
		t.Error("Counter did not return the same handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Max(3)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge after Max(3) = %d, want 7", got)
	}
	g.Max(10)
	if got := g.Load(); got != 10 {
		t.Errorf("gauge after Max(10) = %d, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket index is bits.Len64: 0→0, 1→1, [2,3]→2, [4,7]→3, ...
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1 << 40, -9} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	wantSum := int64(0 + 1 + 2 + 3 + 4 + 7 + 8 + (1 << 40) + 0)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 41: 1}
	for i, n := range want {
		if got := h.buckets[i].Load(); got != n {
			t.Errorf("bucket %d = %d, want %d", i, got, n)
		}
	}
	if BucketBound(0) != 0 || BucketBound(3) != 7 || BucketBound(64) != math.MaxUint64 {
		t.Error("BucketBound bounds wrong")
	}
}

func TestSnapshotStableAndVersioned(t *testing.T) {
	r := New()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Gauge("m.middle").Set(3)
	r.Histogram("h.hist").Observe(5)

	s := r.Snapshot()
	if s.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", s.Schema, SchemaVersion)
	}
	var names []string
	for _, m := range s.Metrics {
		names = append(names, m.Name)
	}
	want := []string{"a.first", "h.hist", "m.middle", "z.last"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", names, want)
	}

	// Serialisation is byte-stable across repeated snapshots.
	var b1, b2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("snapshots differ:\n%s\n%s", b1.String(), b2.String())
	}
	if !json.Valid(b1.Bytes()) {
		t.Error("snapshot JSON invalid")
	}
	if s.Get("a.first") != 2 || s.Get("absent") != 0 {
		t.Error("Snapshot.Get wrong")
	}

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"schema 1\n", "a.first 2\n", "h.hist count=1 sum=5 le7:1\n"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}
}

// TestRegistryConcurrent exercises concurrent registration, update and
// snapshotting; run under -race it is the registry's thread-safety
// gate (make race / make check).
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("shared").Inc()
				r.Gauge("depth").Max(int64(i))
				r.Histogram("lat").Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != workers*per {
		t.Errorf("shared = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("lat").Count(); got != workers*per {
		t.Errorf("lat count = %d, want %d", got, workers*per)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Kind: 1, TS: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.TS != want {
			t.Errorf("event %d TS = %d, want %d (oldest-first)", i, ev.TS, want)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Append(Event{Kind: uint8(w), TS: int64(i)})
				if i%50 == 0 {
					_ = r.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("len = %d, want 64", r.Len())
	}
	if got := r.Dropped(); got != 4*500-64 {
		t.Errorf("dropped = %d, want %d", got, 4*500-64)
	}
}

func TestChromeTrace(t *testing.T) {
	events := []Event{
		{Kind: 0, TS: 1, A: 2, B: 3, C: 0},
		{Kind: 1, TS: 5, A: 0, B: 9, C: 2},
	}
	names := func(k uint8) string { return []string{"exec", "push"}[k] }
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, names); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 || doc.TraceEvents[0].Name != "exec" || doc.TraceEvents[1].TS != 5 {
		t.Errorf("unexpected trace: %+v", doc.TraceEvents)
	}
}

// TestSnapshotFindAndQuantile pins the histogram quantile helper the
// load generator's p50/p95/p99 reporting uses: the bound is the upper
// edge of the power-of-two bucket holding the rank-th observation.
func TestSnapshotFindAndQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	// 90 observations in [1,1] (bucket le=1), 10 in [64,127] (le=127).
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	snap := r.Snapshot()
	m, ok := snap.Find("lat")
	if !ok || m.Kind != "histogram" {
		t.Fatalf("Find = %+v, %v", m, ok)
	}
	if _, ok := snap.Find("absent"); ok {
		t.Fatal("Find matched an absent metric")
	}
	if q := m.Quantile(0.50); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
	if q := m.Quantile(0.90); q != 1 {
		t.Errorf("p90 = %d, want 1 (rank 90 is the last le=1 observation)", q)
	}
	if q := m.Quantile(0.95); q != 127 {
		t.Errorf("p95 = %d, want 127", q)
	}
	if q := m.Quantile(1.0); q != 127 {
		t.Errorf("p100 = %d, want 127", q)
	}
	if q := (Metric{}).Quantile(0.5); q != 0 {
		t.Errorf("empty metric quantile = %d, want 0", q)
	}
}
