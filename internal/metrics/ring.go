package metrics

import "sync"

// Event is one record of the execution-event ring: a small, fixed-size
// struct so the ring is one flat allocation. Kind is
// producer-defined (internal/arch maps its trace-event kinds onto it),
// TS is the producer's timeline (simulated cycles), and A/B/C carry
// kind-specific payload (for arch events: pc, dp, stack depth).
type Event struct {
	Kind    uint8
	TS      int64
	A, B, C int64
}

// DefaultRingCapacity bounds the speculation-timeline ring when the
// caller does not choose: 1 Mi events ≈ 40 MB, enough for a window of
// a few million simulated cycles.
const DefaultRingCapacity = 1 << 20

// Ring is a fixed-capacity event buffer: appends past the capacity
// overwrite the oldest events, so a trace always holds the most recent
// window of the execution. Appends are mutex-guarded — the ring serves
// the tracing path, where throughput is secondary to being shareable
// across a worker pool's cores.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever appended
}

// NewRing returns a ring holding up to capacity events; non-positive
// selects DefaultRingCapacity.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, evicting the oldest when full.
func (r *Ring) Append(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = ev
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events were evicted by wraparound.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Events returns a copy of the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	head := int(r.total % uint64(cap(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}
