// Package metrics is the observability substrate of the simulator: a
// small registry of named counters, gauges and power-of-two-bucket
// histograms, plus a fixed-capacity event ring buffer and a Chrome
// trace-event exporter.
//
// The package is designed around the execution stack's hot-loop
// constraint: nothing here is consulted on the hot path. Producers
// (internal/arch, internal/core, internal/stream, internal/multicore)
// keep their own plain counters behind a nil/bool enable check and
// publish into a Registry only at snapshot points — scan boundaries,
// tool exit — so a disabled run pays a single predictable branch and an
// enabled run pays no allocation per sample. Registry metrics
// themselves are atomics, safe for concurrent publication from worker
// pools and safe to snapshot while a scan is running.
//
// Snapshots serialise with a versioned schema field and byte-stable
// ordering (names sorted, struct field order fixed), which is what lets
// the deterministic-replay harness (metricstest) compare two runs for
// byte identity.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SchemaVersion identifies the snapshot wire format. Bump it when a
// field is added, renamed or re-typed; golden tests pin it.
const SchemaVersion = 1

// Counter is a monotonically increasing int64. The zero value is ready
// to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only move forward).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Store overwrites the value. It exists for snapshot publication —
// copying an already-aggregated roll-up (arch.Stats) into the registry
// — not for hot-path accumulation.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value-wins int64.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Max raises the gauge to n when n exceeds it (high-water marks).
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the bucket count of a power-of-two histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i); bucket 0 holds v == 0.
const histBuckets = 65

// Histogram accumulates int64 observations into power-of-two buckets.
// Observation is one atomic add — no allocation, no locking.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Registry is a namespace of metrics. Get-or-create accessors take a
// lock; the returned handles are lock-free, so producers resolve names
// once and then update atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Metric is one serialised metric of a snapshot.
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter", "gauge" or "histogram"
	Value int64  `json:"value,omitempty"`
	Count int64  `json:"count,omitempty"`
	Sum   int64  `json:"sum,omitempty"`
	// Buckets lists the non-empty power-of-two buckets; Le is the
	// inclusive upper bound of the bucket's value range.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, ordered by kind-free
// metric name so its serialisations are byte-stable.
type Snapshot struct {
	Schema  int      `json:"schema"`
	Metrics []Metric `json:"metrics"`
}

// Snapshot copies the registry's current values, sorted by name.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{Schema: SchemaVersion}
	for name, c := range r.counters {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: "counter", Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Metrics = append(s.Metrics, Metric{Name: name, Kind: "gauge", Value: g.Load()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				m.Buckets = append(m.Buckets, Bucket{Le: BucketBound(i), Count: n})
			}
		}
		s.Metrics = append(s.Metrics, m)
	}
	sort.Slice(s.Metrics, func(a, b int) bool {
		if s.Metrics[a].Name != s.Metrics[b].Name {
			return s.Metrics[a].Name < s.Metrics[b].Name
		}
		return s.Metrics[a].Kind < s.Metrics[b].Kind
	})
	return s
}

// Get returns the value of the named counter or gauge in the snapshot,
// or 0 when absent — a convenience for tests and invariant checks.
func (s *Snapshot) Get(name string) int64 {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return s.Metrics[i].Value
		}
	}
	return 0
}

// Find returns the named metric of the snapshot, preferring an exact
// name match regardless of kind.
func (s *Snapshot) Find(name string) (Metric, bool) {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return s.Metrics[i], true
		}
	}
	return Metric{}, false
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of a
// histogram metric: the inclusive upper bound of the power-of-two
// bucket holding the ceil(q·Count)-th observation. The bound is exact
// to within the bucket's factor-of-two resolution — good enough for
// the latency reporting the load generator does. Zero when the metric
// is not a histogram or holds no observations.
func (m Metric) Quantile(q float64) uint64 {
	if m.Count <= 0 || len(m.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(m.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range m.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Le
		}
	}
	return m.Buckets[len(m.Buckets)-1].Le
}

// WriteJSON serialises the snapshot as one JSON document with a
// trailing newline. The byte stream is deterministic: schema first,
// metrics sorted by name, struct field order fixed.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(s)
}

// WriteText serialises the snapshot as aligned "name value" lines, the
// human side of the -metrics flag. Histograms render their count, sum
// and non-empty buckets on one line.
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "schema %d\n", s.Schema); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		var err error
		switch m.Kind {
		case "histogram":
			var b strings.Builder
			for i, bk := range m.Buckets {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "le%d:%d", bk.Le, bk.Count)
			}
			_, err = fmt.Fprintf(w, "%s count=%d sum=%d %s\n", m.Name, m.Count, m.Sum, b.String())
		default:
			_, err = fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
