package metrics

import (
	"encoding/json"
	"io"
)

// chromeEvent is one record of the Chrome trace-event format
// (the JSON consumed by chrome://tracing and Perfetto's legacy
// importer). We emit complete events ("ph":"X") of one-cycle duration
// so every architectural event shows as a block on the timeline.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace serialises events as a Chrome trace-event JSON
// document. name maps an event kind to its display name; the timeline
// unit is one simulated cycle rendered as one microsecond (the format
// has no cycle unit). A/B/C ride along as pc/dp/stack args so the
// trace viewer's selection panel shows where each event happened.
func WriteChromeTrace(w io.Writer, events []Event, name func(uint8) string) error {
	tr := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"clock": "simulated-cycles", "schema": SchemaVersion},
	}
	for _, ev := range events {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name(ev.Kind),
			Ph:   "X",
			TS:   ev.TS,
			Dur:  1,
			PID:  0,
			TID:  0,
			Args: map[string]any{"pc": ev.A, "dp": ev.B, "stack": ev.C},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(&tr)
}
