// Package approx derives a small over-approximating admission
// automaton from a rule set: a deterministic filter whose language is
// a provable superset of the union of all rules, cheap enough to run
// over every byte ahead of the exact engine. It mirrors the staged
// discipline of "Deep Packet Inspection in FPGAs via Approximate
// Nondeterministic Automata": the approximate stage may admit windows
// that contain no match (imprecision costs only wasted exact-engine
// work) but provably never rejects a window that does (a miss would be
// a correctness bug, and the construction makes one impossible).
//
// The reduction is depth truncation. Label every state of the union
// Thompson NFA with its minimum consumed-byte distance from the start;
// redirect every edge whose target lies at depth >= k to the accept
// state. Any accepting path of the original NFA either stays within
// depth < k — and survives intact — or crosses the frontier and is
// redirected straight to accept after a shorter prefix. Either way the
// truncated automaton accepts, so its language contains the original:
// over-approximation is structural, not probabilistic. The truncated
// NFA is then determinized (unanchored, capped) and minimized. The
// language shrinks monotonically as k grows (deeper truncation
// redirects fewer paths), so Build binary-searches for the deepest k
// whose subset construction fits the state budget; when no depth fits,
// it degenerates at k=0 to "admit everything" — still sound, just
// useless, and reported as such.
//
// The final artifact is a flat 256-entry-per-state byte table: with at
// most 256 DFA states, state ids fit in a byte and the scan loop is
// one load plus one accept-bit test per input byte, no per-byte
// branching on structure. Build cost is paid once per rule-set
// snapshot; the filter itself is immutable and safe for concurrent use.
package approx

import (
	"alveare/internal/automata"
)

// DefaultStates is the default DFA state budget. 256 is the largest
// budget the byte-indexed transition table supports and small enough
// that the whole table (64 KiB) stays cache-resident.
const DefaultStates = 256

// maxStates is the hard ceiling imposed by byte-sized state ids.
const maxStates = 256

// initialDepth caps the first truncation attempt. Depth k admits every
// string whose first k bytes look like a rule prefix; beyond a few
// dozen bytes of exact prefix the filter's precision gains flatten
// while determinization cost grows, so the search starts here and only
// halves downward.
const initialDepth = 64

// Filter is an immutable admission automaton for one rule-set
// snapshot. The zero value is not valid; use Build.
type Filter struct {
	admitAll bool
	states   int
	depth    int
	// tab is the flat transition table: tab[s<<8|c] is the successor
	// of state s on byte c. Full 64 KiB regardless of the state count:
	// the fixed size lets the compiler prove every index in range
	// (state ids are uint8), so the walk has no bounds checks.
	tab *[1 << 16]uint8
	// accept marks admitting states; indexed by state id.
	accept [maxStates]bool
}

// Build derives the admission filter for the given patterns under a
// DFA state budget (clamped to [2, 256]; non-positive selects
// DefaultStates). Build never fails: any construction problem — empty
// rule set, un-unionable pattern, state blowup at every depth —
// degrades to an admit-all filter, which is sound by vacuity.
func Build(patterns []string, budget int) *Filter {
	if budget <= 0 {
		budget = DefaultStates
	}
	if budget > maxStates {
		budget = maxStates
	}
	if budget < 2 {
		budget = 2
	}
	if len(patterns) == 0 {
		return &Filter{admitAll: true}
	}
	nfa, err := automata.Union(patterns...)
	if err != nil {
		return &Filter{admitAll: true}
	}
	depths := bfsDepths(nfa)
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth && d != unreachable {
			maxDepth = d
		}
	}
	kmax := maxDepth + 1
	if kmax > initialDepth {
		kmax = initialDepth
	}
	// Binary search for the deepest truncation the budget affords.
	// Feasibility is not strictly monotone in k (minimization can
	// shrink a deeper automaton below a shallower one), so the search
	// is a heuristic for build speed — but every k it probes yields a
	// sound filter, so the worst case is precision left on the table,
	// never a miss. A depth whose DFA admits from the start state
	// (some rule matches the empty string, or truncation collapsed to
	// the frontier) is vacuous; the search treats it as feasible and
	// keeps probing deeper, where the language only shrinks.
	var best *automata.DFA
	bestK := 0
	for lo, hi := 1, kmax; lo <= hi; {
		mid := (lo + hi + 1) / 2
		dfa, err := determinizeTruncated(nfa, depths, mid, budget)
		if err != nil {
			hi = mid - 1 // state blowup: only shallower can fit
			continue
		}
		if !dfa.Accept[0] {
			best, bestK = dfa, mid
		}
		lo = mid + 1 // fits: try deeper for a tighter language
	}
	if best == nil {
		return &Filter{admitAll: true, depth: 0}
	}
	return expand(best, bestK)
}

// unreachable marks states with no consuming path from the start.
const unreachable = int(^uint(0) >> 1)

// bfsDepths labels every NFA state with the minimum number of consumed
// bytes on any path from the start: epsilon edges cost 0, consuming
// edges cost 1. Level-order BFS with in-level epsilon closure — each
// state is visited once, so the labelling is linear in the automaton.
func bfsDepths(n *automata.NFA) []int {
	depths := make([]int, len(n.States))
	for i := range depths {
		depths[i] = unreachable
	}
	var frontier []int
	visit := func(i, d int) {
		if depths[i] == unreachable {
			depths[i] = d
			frontier = append(frontier, i)
		}
	}
	visit(n.Start, 0)
	for d := 0; len(frontier) > 0; d++ {
		// Epsilon-close the level: closure members join the frontier
		// and are themselves expanded in the same pass.
		for qi := 0; qi < len(frontier); qi++ {
			st := &n.States[frontier[qi]]
			if st.Consume != nil {
				continue
			}
			for _, e := range st.Eps {
				if e >= 0 {
					visit(e, d)
				}
			}
		}
		cur := frontier
		frontier = nil
		for _, i := range cur {
			st := &n.States[i]
			if st.Consume != nil && st.Next >= 0 {
				visit(st.Next, d+1)
			}
		}
	}
	return depths
}

// determinizeTruncated builds the depth-k truncation of the NFA and
// runs the capped subset construction on it.
func determinizeTruncated(n *automata.NFA, depths []int, k, budget int) (*automata.DFA, error) {
	deep := func(i int) bool { return i != n.Accept && depths[i] >= k }
	states := make([]automata.State, len(n.States))
	for i, st := range n.States {
		if deep(i) {
			// Unreachable after redirection; neuter it so its consume
			// set cannot pollute the alphabet classes.
			states[i] = automata.State{Eps: []int{n.Accept}}
			continue
		}
		if st.Consume != nil {
			next := st.Next
			if next >= 0 && deep(next) {
				next = n.Accept
			}
			set := *st.Consume
			states[i] = automata.State{Consume: &set, Next: next}
			continue
		}
		eps := make([]int, len(st.Eps))
		for j, e := range st.Eps {
			if e >= 0 && deep(e) {
				e = n.Accept
			}
			eps[j] = e
		}
		states[i] = automata.State{Eps: eps}
	}
	trunc := &automata.NFA{States: states, Start: n.Start, Accept: n.Accept}
	dfa, err := automata.Determinize(trunc, budget)
	if err != nil {
		return nil, err
	}
	dfa = dfa.Minimize()
	if dfa.NumStates() > budget {
		return nil, automata.ErrDFATooLarge
	}
	return dfa, nil
}

// expand flattens the class-compressed DFA into the byte-indexed
// table the scan loop walks.
func expand(d *automata.DFA, depth int) *Filter {
	f := &Filter{states: d.NumStates(), depth: depth, tab: new([1 << 16]uint8)}
	for s := 0; s < f.states; s++ {
		f.accept[s] = d.Accept[s]
		row := f.tab[s<<8 : (s+1)<<8]
		for c := 0; c < 256; c++ {
			row[c] = uint8(d.Trans[s*d.NumClasses+int(d.Classes[c])])
		}
	}
	return f
}

// Suspect reports whether the window could contain a match of any rule:
// false is a proof that the exact engine would find nothing in data,
// true means "run the exact engine". The walk is one table load per
// byte with an early exit at the first admitting state.
func (f *Filter) Suspect(data []byte) bool {
	if f.admitAll {
		return true
	}
	if f.accept[0] {
		return true
	}
	tab := f.tab
	s := uint8(0)
	for _, c := range data {
		s = tab[uint32(s)<<8|uint32(c)]
		if f.accept[s] {
			return true
		}
	}
	return false
}

// AdmitAll reports whether the build degraded to the vacuous filter
// (state budget blown at every depth, or no patterns).
func (f *Filter) AdmitAll() bool { return f.admitAll }

// States returns the DFA state count (0 for an admit-all filter) — the
// capacity metric the snapshot publishes per rule set.
func (f *Filter) States() int { return f.states }

// Depth returns the truncation depth the build settled on: how many
// leading bytes of rule structure the filter discriminates on.
func (f *Filter) Depth() int { return f.depth }
