package approx

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// nfaMatchers compiles patterns with Go's regexp as the oracle.
func oracles(t *testing.T, patterns []string) []*regexp.Regexp {
	t.Helper()
	out := make([]*regexp.Regexp, len(patterns))
	for i, p := range patterns {
		re, err := regexp.Compile(p)
		if err != nil {
			t.Fatalf("oracle compile %q: %v", p, err)
		}
		out[i] = re
	}
	return out
}

// TestNeverMiss is the core soundness property: any input some rule
// matches must be admitted by the filter, at every state budget and
// on every suite of patterns.
func TestNeverMiss(t *testing.T) {
	suites := [][]string{
		{"abc", "def[0-9]+", "(GET|POST) /admin"},
		{"session[0-9a-f]{2,8}", "token=[0-9]{4}", "flow[_:-]crc"},
		{"a+b", "x.*y", "[^\\r\\n]{8,}z"},
		{"\\x00\\x01\\x02", "(%[0-9a-fA-F]{2})+"},
	}
	inputs := []string{
		"", "abc", "xxabcxx", "def01234", "GET /admin HTTP/1.1",
		"session0abc", "token=1234", "flow-crc", "aaab", "x123y",
		"nothing here at all", "\x00\x01\x02", "%2e%2f",
		strings.Repeat("q", 100) + "z",
	}
	for _, budget := range []int{0, 2, 16, 64, 256} {
		for si, pats := range suites {
			f := Build(pats, budget)
			res := oracles(t, pats)
			for _, in := range inputs {
				matched := false
				for _, re := range res {
					if re.MatchString(in) {
						matched = true
						break
					}
				}
				if matched && !f.Suspect([]byte(in)) {
					t.Errorf("budget=%d suite=%d: filter rejected matching input %q", budget, si, in)
				}
			}
		}
	}
}

// TestNeverMissRandom fuzzes the property with seeded random inputs
// over a DPI-shaped rule set.
func TestNeverMissRandom(t *testing.T) {
	pats := []string{
		"(GET|POST|HEAD) [^ ]*/admin/",
		"Host: [^\\r\\n]{4,}",
		"\\x41\\x42.{0,4}\\x43",
		"passwd",
	}
	f := Build(pats, 256)
	res := oracles(t, pats)
	r := rand.New(rand.NewSource(99))
	alphabet := []byte("GET POST Host: ABC/admin/passwd\r\n\x41\x42\x43qz")
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(80)
		in := make([]byte, n)
		for i := range in {
			in[i] = alphabet[r.Intn(len(alphabet))]
		}
		matched := false
		for _, re := range res {
			if re.Match(in) {
				matched = true
				break
			}
		}
		if matched && !f.Suspect(in) {
			t.Fatalf("filter rejected matching input %q", in)
		}
	}
}

// TestRejectsCleanTraffic checks the filter is not vacuous on a
// workload it should discriminate: distinctive literals over unrelated
// filler must screen out.
func TestRejectsCleanTraffic(t *testing.T) {
	pats := []string{"MALWARE_SIG_7f", "exploit\\x90\\x90", "/etc/shadow"}
	f := Build(pats, 256)
	if f.AdmitAll() {
		t.Fatalf("filter degraded to admit-all on 3 literal-ish rules")
	}
	if f.States() == 0 || f.States() > 256 {
		t.Fatalf("implausible state count %d", f.States())
	}
	clean := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog 0123456789 ", 50))
	if f.Suspect(clean) {
		t.Errorf("clean filler admitted; filter has no discrimination")
	}
	if !f.Suspect([]byte("xx/etc/shadowyy")) {
		t.Errorf("planted witness rejected")
	}
}

// TestTinyBudgetDegradesSound shows the budget-blown path: at budget 2
// almost any rule set collapses, and the collapse must be to admit-all
// (or an equally sound coarse filter), never to wrong answers.
func TestTinyBudgetDegradesSound(t *testing.T) {
	pats := []string{"session[0-9a-f]{2,8}", "(GET|POST) /x", "a.*b.*c"}
	f := Build(pats, 2)
	res := oracles(t, pats)
	inputs := []string{"sessionab", "GET /x", "a_b_c", "zzz"}
	for _, in := range inputs {
		matched := false
		for _, re := range res {
			if re.MatchString(in) {
				matched = true
			}
		}
		if matched && !f.Suspect([]byte(in)) {
			t.Fatalf("tiny budget produced a miss on %q", in)
		}
	}
}

// TestEmptyAndBadPatterns: Build never fails.
func TestEmptyAndBadPatterns(t *testing.T) {
	if f := Build(nil, 256); !f.AdmitAll() || !f.Suspect([]byte("x")) {
		t.Fatalf("empty rule set must admit everything")
	}
	if f := Build([]string{"("}, 256); !f.AdmitAll() {
		t.Fatalf("unparseable pattern must degrade to admit-all")
	}
}

// TestEmptyMatchingRuleAdmitsAll: a rule that matches the empty string
// makes every window suspect; the build must report that as admit-all
// rather than pretending to discriminate.
func TestEmptyMatchingRuleAdmitsAll(t *testing.T) {
	f := Build([]string{"a*"}, 256)
	if !f.AdmitAll() {
		t.Fatalf("a* matches everywhere; filter must be admit-all, got %d states", f.States())
	}
	if !f.Suspect(nil) || !f.Suspect([]byte("zzz")) {
		t.Fatalf("admit-all filter rejected input")
	}
}

// TestDepthTruncationAdmitsPrefixes: once an input carries k bytes of
// a rule's prefix the truncated automaton must admit, even if the full
// rule would need more bytes — that is what over-approximation means.
func TestDepthTruncationAdmitsPrefixes(t *testing.T) {
	long := strings.Repeat("ab", 200) // depth ~400, far past initialDepth
	f := Build([]string{long}, 256)
	if f.AdmitAll() {
		t.Skip("construction degraded to admit-all on this machine's budget")
	}
	// The full witness is certainly admitted...
	if !f.Suspect([]byte(long)) {
		t.Fatalf("full witness rejected")
	}
	// ...and so is a prefix longer than the truncation depth.
	if f.Depth() > 0 && !f.Suspect([]byte(long[:f.Depth()+2])) {
		t.Fatalf("prefix past truncation depth %d rejected", f.Depth())
	}
}

func BenchmarkSuspectClean(b *testing.B) {
	pats := []string{"MALWARE_SIG_7f", "exploit90", "/etc/shadow", "token=[0-9]{4}"}
	f := Build(pats, 256)
	if f.AdmitAll() {
		b.Skip("admit-all")
	}
	data := []byte(strings.Repeat("GET /index.html HTTP/1.1\r\nHost: example\r\n", 400))
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if f.Suspect(data) {
			b.Fatal("clean data admitted")
		}
	}
}
