package cli

import (
	"flag"
	"fmt"
	"os"
	"time"

	"alveare/internal/core"
)

// CommonFlags holds the values of the guardrail and observability
// flags every tool shares: -timeout and -metrics, plus -policy and
// -budget for the tools that scan. Register them with RegisterCommon
// or RegisterScan instead of copy-pasting the flag.* calls — the
// flag names, defaults and help strings stay identical across tools.
type CommonFlags struct {
	// Timeout aborts the run after this duration (exit status 124;
	// 0 = no deadline). Feed it to Context.
	Timeout time.Duration
	// Metrics is the -metrics snapshot mode; see MetricsUsage.
	Metrics string
	// Policy is the -policy spelling; parse it with MustPolicy.
	Policy string
	// Budget is the -budget per-attempt cycle cap (0 = unbounded).
	Budget int64
	// NoDFA disables the hybrid fast path (lazy-DFA probe gate plus
	// the rule-set literal prefilter), which the scanning tools enable
	// by default. The slow path is the exact reference engine; results
	// are byte-identical either way.
	NoDFA bool
	// NoApprox disables the over-approximating admission stage
	// (internal/approx), which the scanning tools enable by default.
	// The filter only ever proves absence; results are byte-identical
	// either way.
	NoApprox bool
	// ApproxStates bounds the admission automaton's DFA state budget
	// (0 = the approx.DefaultStates default of 256; smaller budgets
	// trade precision, never correctness).
	ApproxStates int
}

// RegisterCommon registers the -timeout and -metrics flags on fs.
func RegisterCommon(fs *flag.FlagSet) *CommonFlags {
	c := &CommonFlags{}
	fs.DurationVar(&c.Timeout, "timeout", 0, "abort after this duration (exit status 124)")
	fs.StringVar(&c.Metrics, "metrics", "", MetricsUsage)
	return c
}

// RegisterScan registers the full scanning-tool set: -timeout,
// -metrics, -policy and -budget.
func RegisterScan(fs *flag.FlagSet) *CommonFlags {
	c := RegisterCommon(fs)
	fs.StringVar(&c.Policy, "policy", "failfast", "runaway containment: failfast, degrade or skip")
	fs.Int64Var(&c.Budget, "budget", 0, "cycle budget per scan attempt; pathological backtracking past it trips the -policy containment (0 = effectively unbounded)")
	fs.BoolVar(&c.NoDFA, "no-dfa", false, "disable the lazy-DFA fast path and literal prefilter (scan on the exact engine only; results are identical)")
	fs.BoolVar(&c.NoApprox, "no-approx", false, "disable the over-approximating admission filter that screens windows ahead of the exact engine (results are identical)")
	fs.IntVar(&c.ApproxStates, "approx-states", 0, "admission-filter DFA state budget, max 256 (0 = default 256; smaller budgets trade precision, never correctness)")
	return c
}

// MustPolicy parses the -policy value, exiting with the usage code on
// an unknown spelling (tool prefixes the message, tool-style).
func (c *CommonFlags) MustPolicy(tool string) core.Policy {
	p, err := core.ParsePolicy(c.Policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(ExitUsage)
	}
	return p
}

// EngineOptions translates the scan flags into engine/rule-set
// options: the parsed policy, the cycle budget, the detailed metrics
// tier when -metrics requested a snapshot, the hybrid fast path
// (lazy DFA + literal prefilter, on by default, disabled by -no-dfa)
// and the admission stage (on by default, disabled by -no-approx,
// state budget from -approx-states).
func (c *CommonFlags) EngineOptions(tool string) []core.Option {
	opts := []core.Option{core.WithPolicy(c.MustPolicy(tool)), core.WithBudget(c.Budget)}
	if c.Metrics != "" {
		opts = append(opts, core.WithMetrics())
	}
	if !c.NoDFA {
		opts = append(opts, core.WithDFA())
	}
	if !c.NoApprox {
		opts = append(opts, core.WithApprox())
	}
	if c.ApproxStates > 0 {
		opts = append(opts, core.WithApproxStates(c.ApproxStates))
	}
	return opts
}
