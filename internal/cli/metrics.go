package cli

import (
	"os"

	"alveare/internal/metrics"
)

// MetricsUsage is the shared help text of the tools' -metrics flag.
const MetricsUsage = "write a metrics snapshot after the run: 'text' or 'json' to stdout, anything else names a file (JSON)"

// WriteMetrics serialises snap per the -metrics flag value: "" does
// nothing, "text" and "json" write to stdout, any other value names a
// file that receives the JSON form. The snapshot's schema is versioned
// (metrics.SchemaVersion) and its key order deterministic, so the
// output is byte-stable across runs over identical inputs — the
// property the golden-snapshot tests and the replay harness pin.
func WriteMetrics(mode string, snap *metrics.Snapshot) error {
	switch mode {
	case "":
		return nil
	case "text":
		return snap.WriteText(os.Stdout)
	case "json":
		return snap.WriteJSON(os.Stdout)
	}
	f, err := os.Create(mode)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
