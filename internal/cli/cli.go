// Package cli holds the guardrail plumbing shared by the command-line
// tools: a signal-aware root context with an optional deadline, the
// exit-code convention for interrupted and timed-out runs, and a
// watchdog for work that cannot poll a context.
//
// Exit codes follow the coreutils timeout(1) convention: 0 success,
// 1 no-match/failure, 2 usage, 124 deadline expired, 130 interrupted
// (128 + SIGINT).
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"
)

// Exit codes shared by every tool.
const (
	ExitOK        = 0
	ExitError     = 1 // failure, or no match anywhere
	ExitUsage     = 2
	ExitDeadline  = 124 // -timeout expired (timeout(1) convention)
	ExitInterrupt = 130 // 128 + SIGINT
)

// Context returns the tool's root context: cancelled by SIGINT or
// SIGTERM, and by the deadline when timeout is positive. The returned
// stop must be deferred; it releases the signal handler so a second
// Ctrl-C kills the process the hard way.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancel(); stop() }
}

// ExitCode maps a scan error to the tool's exit status. A nil error is
// success; deadline expiry and interrupts get their conventional codes
// so scripts can tell a timed-out scan from a failed one.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.DeadlineExceeded):
		return ExitDeadline
	case errors.Is(err, context.Canceled):
		return ExitInterrupt
	}
	return ExitError
}

// Exit prints err (when the exit is not clean) and terminates with
// ExitCode(err). name prefixes the message, tool-style.
func Exit(name string, err error) {
	code := ExitCode(err)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	os.Exit(code)
}

// Watch guards a stretch of work that cannot poll ctx (the compiler,
// the workload generator, the benchmark harness): if ctx ends before
// the returned finish func runs, the process exits with the
// conventional code for the cause. Call finish (idempotent) as soon as
// the guarded work completes; defer it AFTER deferring the context's
// cancel func, so normal completion marks done before cancellation
// fires.
func Watch(ctx context.Context, name string) (finish func()) {
	var done atomic.Bool
	go func() {
		<-ctx.Done()
		if done.Load() {
			return
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, ctx.Err())
		os.Exit(ExitCode(ctx.Err()))
	}()
	return func() { done.Store(true) }
}
