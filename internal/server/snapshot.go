// Rule snapshots and the ad-hoc pattern cache.
//
// The server's rule database is immutable once compiled: a snapshot
// bundles the pattern sources with the RuleSet built from them, and
// the live snapshot is swapped atomically (atomic.Pointer) by Reload.
// In-flight requests keep scanning the snapshot they dispatched
// against — a reload never stalls the data path behind a lock, and a
// half-reloaded state is unrepresentable. The RuleSet itself is safe
// for concurrent scans (bounded worker pool over pooled cores), so one
// snapshot serves every server worker at once.
package server

import (
	"bufio"
	"container/list"
	"fmt"
	"strings"
	"sync"

	"alveare/internal/backend"
	"alveare/internal/core"
)

// snapshot is one immutable compiled rule-set generation.
type snapshot struct {
	generation uint32
	patterns   []string
	rules      *core.RuleSet
}

// compileSnapshot builds a snapshot from pattern sources with the
// server's scan options applied.
func compileSnapshot(patterns []string, generation uint32, opts []core.Option) (*snapshot, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("server: empty rule set")
	}
	rs, err := core.NewRuleSet(patterns, backend.Options{}, opts...)
	if err != nil {
		return nil, err
	}
	return &snapshot{
		generation: generation,
		patterns:   append([]string(nil), patterns...),
		rules:      rs,
	}, nil
}

// ParseRules extracts the rule list from a rules document: one regular
// expression per line, blank lines and '#' comments skipped — the same
// format alvearescan's -rules flag and the OpReload body use.
func ParseRules(text string) []string {
	var rules []string
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rules = append(rules, line)
	}
	return rules
}

// programCache is an LRU of compiled ad-hoc engines keyed by pattern
// source, so repeated OpScanPattern requests for the same expression
// pay compilation once. Engines are not safe for concurrent scans, so
// the cache hands out exclusive leases: a Get while the entry's engine
// is leased compiles a throwaway engine rather than blocking the
// worker (the cache is an optimisation, never a serialisation point).
type programCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

type cacheEntry struct {
	pattern string
	eng     *core.Engine
	leased  bool
}

// newProgramCache returns an LRU holding up to capacity compiled
// engines; capacity <= 0 disables caching (every Get compiles).
func newProgramCache(capacity int) *programCache {
	return &programCache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// get returns an engine for pattern, compiling on miss, and reports
// whether the engine came from the cache. The caller owns the engine
// until it calls put.
func (c *programCache) get(pattern string, opts []core.Option) (*core.Engine, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[pattern]; ok {
		e := el.Value.(*cacheEntry)
		if !e.leased {
			e.leased = true
			c.order.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			e.eng.ResetStats()
			return e.eng, true, nil
		}
	}
	c.misses++
	c.mu.Unlock()

	prog, err := core.Compile(pattern)
	if err != nil {
		return nil, false, err
	}
	eng, err := core.NewEngine(prog, opts...)
	if err != nil {
		return nil, false, err
	}
	return eng, false, nil
}

// put returns an engine leased or compiled by get. Cached engines are
// released; fresh ones are admitted (evicting the least recently used
// unleased entry when full) unless their pattern is already cached.
func (c *programCache) put(pattern string, eng *core.Engine, cached bool) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached {
		if el, ok := c.entries[pattern]; ok {
			el.Value.(*cacheEntry).leased = false
		}
		return
	}
	if _, ok := c.entries[pattern]; ok {
		return // a concurrent request already cached this pattern
	}
	for c.order.Len() >= c.cap {
		evicted := false
		for el := c.order.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*cacheEntry); !e.leased {
				c.order.Remove(el)
				delete(c.entries, e.pattern)
				evicted = true
				break
			}
		}
		if !evicted {
			return // every entry leased; drop the newcomer instead
		}
	}
	c.entries[pattern] = c.order.PushFront(&cacheEntry{pattern: pattern, eng: eng, leased: false})
}

// stats returns the hit/miss counters.
func (c *programCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
