package server

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// mustTenant builds a TENANT envelope body or fails the test.
func mustTenant(t *testing.T, h TenantHeader, op byte, inner []byte) []byte {
	t.Helper()
	body, err := EncodeTenant(h, op, inner)
	if err != nil {
		t.Fatalf("EncodeTenant: %v", err)
	}
	return body
}

// Golden bytes for the gateway extensions: TENANT envelopes,
// MATCHES-PARTIAL and reasoned SHED. Changing any of these bytes is a
// protocol break — docs/PROTOCOL.md documents each layout.
func TestGoldenTenantFrames(t *testing.T) {
	tenantBody := []byte{
		4, 'a', 'c', 'm', 'e', // u8 len, tenant
		2, 'n', 's', // u8 len, namespace
		0x02,          // inner op SCAN
		'p', 'a', 'y', // inner body
	}
	cases := []struct {
		name  string
		frame Frame
		wire  []byte
	}{
		{
			name:  "tenant-scan",
			frame: Frame{Op: OpTenant, ID: 6, Body: tenantBody},
			wire:  append([]byte{0, 0, 0, 17, 0x08, 0, 0, 0, 6}, tenantBody...),
		},
		{
			name: "tenant-empty-namespace",
			frame: Frame{Op: OpTenant, ID: 7,
				Body: []byte{1, 't', 0, 0x03, 'x'}},
			wire: []byte{0, 0, 0, 10, 0x08, 0, 0, 0, 7, 1, 't', 0, 0x03, 'x'},
		},
		{
			name: "matches-partial",
			frame: Frame{Op: OpMatchesPartial, ID: 8,
				Body: EncodeMatchesPartial(true, 2, 1, []RuleMatch{{Rule: 1, Start: 2, End: 5}})},
			wire: []byte{0, 0, 0, 34, 0x8A, 0, 0, 0, 8,
				0x01, // flags: partial
				0, 2, // shards answered
				0, 1, // shards missed
				0, 0, 0, 1, // match count
				0, 0, 0, 1, // rule
				0, 0, 0, 0, 0, 0, 0, 2, // start
				0, 0, 0, 0, 0, 0, 0, 5, // end
			},
		},
		{
			name:  "shed-reason-quota",
			frame: Frame{Op: OpShed, ID: 9, Body: []byte{ShedReasonQuota}},
			wire:  []byte{0, 0, 0, 6, 0xEE, 0, 0, 0, 9, 0x02},
		},
		{
			name:  "shed-reason-capacity",
			frame: Frame{Op: OpShed, ID: 10, Body: []byte{ShedReasonCapacity}},
			wire:  []byte{0, 0, 0, 6, 0xEE, 0, 0, 0, 10, 0x04},
		},
		{
			name:  "error-unknown-tenant",
			frame: Frame{Op: OpError, ID: 11, Body: EncodeError(ErrCodeUnknownTenant, "unknown tenant x")},
			wire: append([]byte{0, 0, 0, 22, 0xE0, 0, 0, 0, 11, 5},
				[]byte("unknown tenant x")...),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.frame); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), tc.wire) {
				t.Errorf("wire bytes\n got %v\nwant %v", buf.Bytes(), tc.wire)
			}
			got, err := ReadFrame(bytes.NewReader(tc.wire), 0)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.Op != tc.frame.Op || got.ID != tc.frame.ID || !bytes.Equal(got.Body, tc.frame.Body) {
				t.Errorf("ReadFrame round-trip mismatch: %+v", got)
			}
		})
	}
}

func TestTenantRoundTrip(t *testing.T) {
	h := TenantHeader{Tenant: "acme", Namespace: "prod"}
	body := mustTenant(t, h, OpScanPattern, []byte{0, 2, 'a', 'b', 'x'})
	got, op, inner, err := DecodeTenant(body)
	if err != nil {
		t.Fatalf("DecodeTenant: %v", err)
	}
	if got != h || op != OpScanPattern || !bytes.Equal(inner, []byte{0, 2, 'a', 'b', 'x'}) {
		t.Errorf("round trip: %+v op 0x%02X inner %v", got, op, inner)
	}
	if got.Key() != "acme/prod" {
		t.Errorf("Key() = %q, want acme/prod", got.Key())
	}
}

// Every truncation and garbage shape of a TENANT envelope must decode
// to ErrMalformedFrame — not a panic, not a silent misparse.
func TestDecodeTenantMalformed(t *testing.T) {
	long := strings.Repeat("x", MaxTenantName+1)
	ok := mustTenant(t, TenantHeader{Tenant: "ab", Namespace: "cd"}, OpScan, []byte("p"))
	cases := []struct {
		name string
		body []byte
	}{
		{"empty envelope", nil},
		{"empty tenant", []byte{0, 0, OpScan}},
		{"oversized tenant length", append([]byte{65}, long...)},
		{"truncated in tenant", []byte{4, 'a', 'b'}},
		{"tenant only, no namespace length", []byte{2, 'a', 'b'}},
		{"oversized namespace length", []byte{1, 't', 65}},
		{"truncated in namespace", []byte{1, 't', 4, 'n', 'n'}},
		{"missing inner opcode", []byte{1, 't', 1, 'n'}},
		{"non-queue-class inner op PING", []byte{1, 't', 0, OpPing}},
		{"non-queue-class inner op STATS", []byte{1, 't', 0, OpStats}},
		{"response opcode as inner op", []byte{1, 't', 0, OpMatches}},
		{"nested tenant envelope", []byte{1, 't', 0, OpTenant, 1, 'u', 0, OpScan}},
		{"truncated golden", ok[:len(ok)-3]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := DecodeTenant(tc.body)
			if !errors.Is(err, ErrMalformedFrame) {
				t.Errorf("DecodeTenant(%v) err = %v, want ErrMalformedFrame", tc.body, err)
			}
		})
	}
	// The truncated-golden case above loses inner-body bytes silently
	// only if the envelope still parses; assert it does not round-trip
	// to the same inner body.
	if _, _, inner, err := DecodeTenant(ok); err != nil || string(inner) != "p" {
		t.Fatalf("golden envelope no longer parses: %v", err)
	}
}

func TestEncodeTenantRejects(t *testing.T) {
	long := strings.Repeat("x", MaxTenantName+1)
	cases := []struct {
		name string
		h    TenantHeader
		op   byte
	}{
		{"empty tenant", TenantHeader{}, OpScan},
		{"oversized tenant", TenantHeader{Tenant: long}, OpScan},
		{"oversized namespace", TenantHeader{Tenant: "t", Namespace: long}, OpScan},
		{"non-queue-class op", TenantHeader{Tenant: "t"}, OpPing},
		{"response op", TenantHeader{Tenant: "t"}, OpMatches},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := EncodeTenant(tc.h, tc.op, nil); !errors.Is(err, ErrMalformedFrame) {
				t.Errorf("EncodeTenant err = %v, want ErrMalformedFrame", err)
			}
		})
	}
}

func TestMatchesPartialRoundTrip(t *testing.T) {
	ms := []RuleMatch{{Rule: 0, Start: 1, End: 4}, {Rule: 3, Start: 9, End: 12}}
	body := EncodeMatchesPartial(true, 2, 1, ms)
	partial, ok, failed, got, err := DecodeMatchesPartial(body)
	if err != nil {
		t.Fatalf("DecodeMatchesPartial: %v", err)
	}
	if !partial || ok != 2 || failed != 1 || len(got) != 2 || got[0] != ms[0] || got[1] != ms[1] {
		t.Errorf("round trip: partial=%v ok=%d failed=%d ms=%v", partial, ok, failed, got)
	}
	// The complete form (flag clear) also round-trips.
	body = EncodeMatchesPartial(false, 3, 0, ms)
	partial, ok, failed, _, err = DecodeMatchesPartial(body)
	if err != nil || partial || ok != 3 || failed != 0 {
		t.Errorf("complete form: partial=%v ok=%d failed=%d err=%v", partial, ok, failed, err)
	}
}

func TestDecodeMatchesPartialMalformed(t *testing.T) {
	good := EncodeMatchesPartial(true, 1, 0, []RuleMatch{{Rule: 1, Start: 2, End: 3}})
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"short header", []byte{1, 0, 1, 0}},
		{"unknown flag bits", append([]byte{0x82}, good[1:]...)},
		{"truncated match list", good[:len(good)-5]},
		{"garbage count", []byte{1, 0, 1, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, _, err := DecodeMatchesPartial(tc.body); !errors.Is(err, ErrMalformedFrame) {
				t.Errorf("DecodeMatchesPartial(%v) err = %v, want ErrMalformedFrame", tc.body, err)
			}
		})
	}
}

func TestShedReasonNames(t *testing.T) {
	cases := map[byte]string{
		0:                  "unspecified",
		ShedReasonQueue:    "queue-full",
		ShedReasonQuota:    "quota",
		ShedReasonFairQ:    "fair-queue",
		ShedReasonCapacity: "capacity",
		0x7F:               "reason-0x7F",
	}
	for r, want := range cases {
		if got := ShedReasonName(r); got != want {
			t.Errorf("ShedReasonName(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestTenantOpNames(t *testing.T) {
	if got := OpName(OpTenant); got != "TENANT" {
		t.Errorf("OpName(OpTenant) = %q", got)
	}
	if got := OpName(OpMatchesPartial); got != "MATCHES-PARTIAL" {
		t.Errorf("OpName(OpMatchesPartial) = %q", got)
	}
}
