package server

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// goldenStreamFrames pins the byte-level wire format of the batch and
// streaming-session extensions against docs/PROTOCOL.md. Changing any
// of these bytes is a protocol break.
var goldenStreamFrames = []struct {
	name  string
	frame Frame
	wire  []byte
}{
	{
		name:  "scan-batch",
		frame: Frame{Op: OpScanBatch, ID: 13, Body: mustScanBatch([][]byte{[]byte("ab"), nil})},
		wire: []byte{0, 0, 0, 19, 0x09, 0, 0, 0, 13,
			0, 0, 0, 2, // item count
			0, 0, 0, 2, 'a', 'b', // item 0
			0, 0, 0, 0, // item 1 (empty payload)
		},
	},
	{
		name:  "scan-batch-empty",
		frame: Frame{Op: OpScanBatch, ID: 14, Body: mustScanBatch(nil)},
		wire:  []byte{0, 0, 0, 9, 0x09, 0, 0, 0, 14, 0, 0, 0, 0},
	},
	{
		name: "batch-resp",
		frame: Frame{Op: OpBatchResp, ID: 15, Body: EncodeBatchResults([]BatchItemResult{
			{Matches: []RuleMatch{{Rule: 1, Start: 2, End: 5}}},
			{Code: ErrCodeScan, Msg: "no"},
		})},
		wire: []byte{0, 0, 0, 40, 0x8B, 0, 0, 0, 15,
			0, 0, 0, 2, // item count
			0,          // item 0: ok
			0, 0, 0, 1, // match count
			0, 0, 0, 1, // rule
			0, 0, 0, 0, 0, 0, 0, 2, // start
			0, 0, 0, 0, 0, 0, 0, 5, // end
			1,    // item 1: failed
			3,    // error code (scan)
			0, 2, // message length
			'n', 'o',
		},
	},
	{
		name:  "session-open",
		frame: Frame{Op: OpSessionOpen, ID: 16, Body: EncodeSessionOpen(256)},
		wire:  []byte{0, 0, 0, 9, 0x0A, 0, 0, 0, 16, 0, 0, 1, 0},
	},
	{
		name:  "session-ok",
		frame: Frame{Op: OpSessionOK, ID: 16, Body: EncodeSessionOK(7, 256)},
		wire: []byte{0, 0, 0, 17, 0x8C, 0, 0, 0, 16,
			0, 0, 0, 0, 0, 0, 0, 7, // session id
			0, 0, 1, 0, // effective overlap
		},
	},
	{
		name:  "session-data",
		frame: Frame{Op: OpSessionData, ID: 17, Body: EncodeSessionData(7, []byte("abc"))},
		wire: []byte{0, 0, 0, 16, 0x0B, 0, 0, 0, 17,
			0, 0, 0, 0, 0, 0, 0, 7, // session id
			'a', 'b', 'c',
		},
	},
	{
		name:  "session-close",
		frame: Frame{Op: OpSessionClose, ID: 18, Body: EncodeSessionClose(7)},
		wire: []byte{0, 0, 0, 13, 0x0C, 0, 0, 0, 18,
			0, 0, 0, 0, 0, 0, 0, 7, // session id
		},
	},
	{
		name: "session-matches",
		frame: Frame{Op: OpSessionMatches, ID: 17,
			Body: EncodeSessionMatches(false, 1024, []RuleMatch{{Rule: 1, Start: 2, End: 5}})},
		wire: []byte{0, 0, 0, 38, 0x8D, 0, 0, 0, 17,
			0,                      // flags: not final
			0, 0, 0, 0, 0, 0, 4, 0, // consumed
			0, 0, 0, 1, // match count
			0, 0, 0, 1, // rule
			0, 0, 0, 0, 0, 0, 0, 2, // start
			0, 0, 0, 0, 0, 0, 0, 5, // end
		},
	},
	{
		name:  "session-matches-final",
		frame: Frame{Op: OpSessionMatches, ID: 18, Body: EncodeSessionMatches(true, 3, nil)},
		wire: []byte{0, 0, 0, 18, 0x8D, 0, 0, 0, 18,
			1,                      // flags: final
			0, 0, 0, 0, 0, 0, 0, 3, // consumed
			0, 0, 0, 0, // match count
		},
	},
	{
		name:  "error-unknown-session",
		frame: Frame{Op: OpError, ID: 19, Body: EncodeError(ErrCodeUnknownSession, "unknown session 9")},
		wire: append([]byte{0, 0, 0, 23, 0xE0, 0, 0, 0, 19, 6},
			[]byte("unknown session 9")...),
	},
}

func mustScanBatch(items [][]byte) []byte {
	b, err := EncodeScanBatch(items)
	if err != nil {
		panic(err)
	}
	return b
}

func TestGoldenStreamFrames(t *testing.T) {
	for _, tc := range goldenStreamFrames {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.frame); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), tc.wire) {
				t.Fatalf("wire bytes\n got %v\nwant %v", buf.Bytes(), tc.wire)
			}
			got, err := ReadFrame(bytes.NewReader(tc.wire), 0)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.Op != tc.frame.Op || got.ID != tc.frame.ID || !bytes.Equal(got.Body, tc.frame.Body) {
				t.Fatalf("round-trip mismatch: got %+v want %+v", got, tc.frame)
			}
		})
	}
}

// Every strict prefix of every new frame must read as a torn frame
// (io.ErrUnexpectedEOF), or a clean io.EOF only at offset 0 — exactly
// the contract TestReadFrameTruncated pins for the original opcodes.
func TestReadFrameTruncatedStream(t *testing.T) {
	for _, tc := range goldenStreamFrames {
		for cut := 0; cut < len(tc.wire); cut++ {
			_, err := ReadFrame(bytes.NewReader(tc.wire[:cut]), 0)
			if cut == 0 {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("%s cut=0: got %v, want io.EOF", tc.name, err)
				}
				continue
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%s cut=%d: got %v, want EOF-class error", tc.name, cut, err)
			}
			if cut > 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%s cut=%d: got %v, want io.ErrUnexpectedEOF", tc.name, cut, err)
			}
		}
	}
}

// Every truncation, overrun, oversize and garbage shape of the new
// bodies must decode to ErrMalformedFrame — not a panic, not a silent
// misparse.
func TestDecodeMalformedStreamBodies(t *testing.T) {
	okBatch := mustScanBatch([][]byte{[]byte("a")})
	okResp := EncodeBatchResults([]BatchItemResult{{}})
	cases := []struct {
		name string
		err  error
	}{
		{"scan-batch-short", func() error { _, err := DecodeScanBatch([]byte{0, 0}); return err }()},
		{"scan-batch-count-oversize", func() error {
			_, err := DecodeScanBatch([]byte{0, 0, 0x10, 0x01}) // 4097 > MaxBatchItems
			return err
		}()},
		{"scan-batch-truncated-header", func() error {
			_, err := DecodeScanBatch([]byte{0, 0, 0, 1, 0, 0})
			return err
		}()},
		{"scan-batch-item-overrun", func() error {
			_, err := DecodeScanBatch([]byte{0, 0, 0, 1, 0, 0, 0, 5, 'a'})
			return err
		}()},
		{"scan-batch-trailing", func() error {
			_, err := DecodeScanBatch(append(append([]byte(nil), okBatch...), 0xFF))
			return err
		}()},
		{"batch-resp-short", func() error { _, err := DecodeBatchResults([]byte{0}); return err }()},
		{"batch-resp-count-oversize", func() error {
			_, err := DecodeBatchResults([]byte{0, 0, 0x10, 0x01})
			return err
		}()},
		{"batch-resp-missing-status", func() error {
			_, err := DecodeBatchResults([]byte{0, 0, 0, 1})
			return err
		}()},
		{"batch-resp-unknown-status", func() error {
			_, err := DecodeBatchResults([]byte{0, 0, 0, 1, 9})
			return err
		}()},
		{"batch-resp-truncated-matches", func() error {
			_, err := DecodeBatchResults([]byte{0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 2})
			return err
		}()},
		{"batch-resp-truncated-error", func() error {
			_, err := DecodeBatchResults([]byte{0, 0, 0, 1, 1, 3})
			return err
		}()},
		{"batch-resp-message-overrun", func() error {
			_, err := DecodeBatchResults([]byte{0, 0, 0, 1, 1, 3, 0, 9, 'x'})
			return err
		}()},
		{"batch-resp-trailing", func() error {
			_, err := DecodeBatchResults(append(append([]byte(nil), okResp...), 0xFF))
			return err
		}()},
		{"session-open-short", func() error { _, err := DecodeSessionOpen([]byte{0, 0, 1}); return err }()},
		{"session-open-long", func() error { _, err := DecodeSessionOpen([]byte{0, 0, 0, 1, 0}); return err }()},
		{"session-open-overlap-oversize", func() error {
			_, err := DecodeSessionOpen([]byte{0xFF, 0xFF, 0xFF, 0xFF})
			return err
		}()},
		{"session-ok-short", func() error { _, _, err := DecodeSessionOK([]byte{1, 2, 3}); return err }()},
		{"session-data-short", func() error { _, _, err := DecodeSessionData([]byte{1, 2, 3, 4, 5, 6, 7}); return err }()},
		{"session-close-short", func() error { _, err := DecodeSessionClose([]byte{1, 2, 3}); return err }()},
		{"session-close-long", func() error {
			_, err := DecodeSessionClose([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0})
			return err
		}()},
		{"session-matches-short", func() error { _, _, _, err := DecodeSessionMatches([]byte{0, 1, 2}); return err }()},
		{"session-matches-reserved-flag", func() error {
			body := EncodeSessionMatches(false, 0, nil)
			body[0] = 0x02
			_, _, _, err := DecodeSessionMatches(body)
			return err
		}()},
		{"session-matches-bad-inner", func() error {
			body := EncodeSessionMatches(false, 0, nil)
			_, _, _, err := DecodeSessionMatches(append(body, 0xAA))
			return err
		}()},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, ErrMalformedFrame) {
			t.Errorf("%s: got %v, want ErrMalformedFrame", tc.name, tc.err)
		}
	}
	if _, err := EncodeScanBatch(make([][]byte, MaxBatchItems+1)); err == nil {
		t.Error("EncodeScanBatch over MaxBatchItems: want error")
	}
}

func TestStreamEncodeDecodeRoundTrips(t *testing.T) {
	items := [][]byte{[]byte("log line one"), {}, []byte{0, 1, 2, 0xFF}}
	got, err := DecodeScanBatch(mustScanBatch(items))
	if err != nil {
		t.Fatalf("scan-batch: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("scan-batch items: got %d want %d", len(got), len(items))
	}
	for i := range items {
		if !bytes.Equal(got[i], items[i]) {
			t.Fatalf("scan-batch item %d: got %v want %v", i, got[i], items[i])
		}
	}

	results := []BatchItemResult{
		{Matches: []RuleMatch{{Rule: 2, Start: 10, End: 20}, {Rule: 3, Start: 0, End: 1}}},
		{},
		{Code: ErrCodeScan, Msg: "rule 1 fault"},
	}
	gotR, err := DecodeBatchResults(EncodeBatchResults(results))
	if err != nil || !reflect.DeepEqual(gotR, results) {
		t.Fatalf("batch-resp round trip: %+v %v", gotR, err)
	}
	if results[0].Failed() || !results[2].Failed() {
		t.Fatal("Failed() misreports item status")
	}

	if ov, err := DecodeSessionOpen(EncodeSessionOpen(4096)); err != nil || ov != 4096 {
		t.Fatalf("session-open: %d %v", ov, err)
	}
	if id, ov, err := DecodeSessionOK(EncodeSessionOK(1<<40, 256)); err != nil || id != 1<<40 || ov != 256 {
		t.Fatalf("session-ok: %d %d %v", id, ov, err)
	}
	id, chunk, err := DecodeSessionData(EncodeSessionData(9, []byte("chunk")))
	if err != nil || id != 9 || string(chunk) != "chunk" {
		t.Fatalf("session-data: %d %q %v", id, chunk, err)
	}
	if id, err := DecodeSessionClose(EncodeSessionClose(9)); err != nil || id != 9 {
		t.Fatalf("session-close: %d %v", id, err)
	}
	ms := []RuleMatch{{Rule: 0, Start: 5, End: 9}}
	fin, consumed, gotMs, err := DecodeSessionMatches(EncodeSessionMatches(true, 1<<33, ms))
	if err != nil || !fin || consumed != 1<<33 || !reflect.DeepEqual(gotMs, ms) {
		t.Fatalf("session-matches: %v %d %+v %v", fin, consumed, gotMs, err)
	}
	// long error messages are truncated to the u16 field, not corrupted
	long := EncodeBatchResults([]BatchItemResult{{Code: 1, Msg: strings.Repeat("x", 1<<17)}})
	gotL, err := DecodeBatchResults(long)
	if err != nil || len(gotL) != 1 || len(gotL[0].Msg) != 0xFFFF {
		t.Fatalf("batch-resp long message: %d %v", len(gotL), err)
	}
}

// Session opcodes are queue-class: they pass admission control and a
// TENANT envelope may wrap them (the gateway meters session traffic
// per tenant like any other scan work).
func TestStreamOpsQueueClass(t *testing.T) {
	for _, op := range []byte{OpScanBatch, OpSessionOpen, OpSessionData, OpSessionClose} {
		if !QueueClass(op) {
			t.Errorf("%s: want queue-class", OpName(op))
		}
		if _, err := EncodeTenant(TenantHeader{Tenant: "t"}, op, []byte{0, 0, 0, 0}); err != nil {
			t.Errorf("%s: TENANT wrap failed: %v", OpName(op), err)
		}
	}
	for _, op := range []byte{OpBatchResp, OpSessionOK, OpSessionMatches} {
		if QueueClass(op) {
			t.Errorf("%s: response opcode must not be queue-class", OpName(op))
		}
	}
}

// goldenCheckpointFrames pins the byte-level wire format of the
// checkpoint-handoff extension (SESSION-OPEN flags byte,
// SESSION-RESTORE, the generation form of SESSION-OK, and the
// SESSION-MATCHES checkpoint piggyback) against docs/PROTOCOL.md.
// Changing any of these bytes is a protocol break.
var goldenCheckpointFrames = []struct {
	name  string
	frame Frame
	wire  []byte
}{
	{
		name:  "session-open-ckpt",
		frame: Frame{Op: OpSessionOpen, ID: 20, Body: EncodeSessionOpenFlags(256, SessionOpenFlagCheckpoint)},
		wire: []byte{0, 0, 0, 10, 0x0A, 0, 0, 0, 20,
			0, 0, 1, 0, // requested overlap
			0x01, // flags: checkpoint negotiation
		},
	},
	{
		name:  "session-restore",
		frame: Frame{Op: OpSessionRestore, ID: 21, Body: EncodeSessionRestore(SessionOpenFlagCheckpoint, []byte{0xCA, 0xFE})},
		wire: []byte{0, 0, 0, 8, 0x0D, 0, 0, 0, 21,
			0x01,       // flags: checkpoint negotiation stays on
			0xCA, 0xFE, // opaque checkpoint bytes (engine-validated)
		},
	},
	{
		name:  "session-ok-gen",
		frame: Frame{Op: OpSessionOK, ID: 20, Body: EncodeSessionOKGen(7, 256, 3)},
		wire: []byte{0, 0, 0, 21, 0x8C, 0, 0, 0, 20,
			0, 0, 0, 0, 0, 0, 0, 7, // session id
			0, 0, 1, 0, // effective overlap
			0, 0, 0, 3, // rule generation
		},
	},
	{
		name: "session-matches-ckpt",
		frame: Frame{Op: OpSessionMatches, ID: 22,
			Body: EncodeSessionMatchesCkpt(false, 1024, []RuleMatch{{Rule: 1, Start: 2, End: 5}}, []byte{9, 9})},
		wire: []byte{0, 0, 0, 44, 0x8D, 0, 0, 0, 22,
			0x02,                   // flags: checkpoint piggyback, not final
			0, 0, 0, 0, 0, 0, 4, 0, // consumed
			0, 0, 0, 1, // match count
			0, 0, 0, 1, // rule
			0, 0, 0, 0, 0, 0, 0, 2, // start
			0, 0, 0, 0, 0, 0, 0, 5, // end
			0, 0, 0, 2, // checkpoint length
			9, 9, // checkpoint bytes
		},
	},
}

func TestGoldenCheckpointFrames(t *testing.T) {
	for _, tc := range goldenCheckpointFrames {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.frame); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), tc.wire) {
				t.Fatalf("wire bytes\n got %v\nwant %v", buf.Bytes(), tc.wire)
			}
			got, err := ReadFrame(bytes.NewReader(tc.wire), 0)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.Op != tc.frame.Op || got.ID != tc.frame.ID || !bytes.Equal(got.Body, tc.frame.Body) {
				t.Fatalf("round-trip mismatch: got %+v want %+v", got, tc.frame)
			}
		})
	}
}

// Every strict prefix of every checkpoint frame must read as a torn
// frame, mirroring TestReadFrameTruncatedStream.
func TestReadFrameTruncatedCheckpoint(t *testing.T) {
	for _, tc := range goldenCheckpointFrames {
		for cut := 1; cut < len(tc.wire); cut++ {
			_, err := ReadFrame(bytes.NewReader(tc.wire[:cut]), 0)
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%s cut=%d: got %v, want EOF-class error", tc.name, cut, err)
			}
		}
	}
}

// Every truncation, flag violation and length lie on the checkpoint
// bodies must decode to ErrMalformedFrame.
func TestDecodeMalformedCheckpointBodies(t *testing.T) {
	ckptBody := EncodeSessionMatchesCkpt(false, 7, nil, []byte{1, 2, 3})
	cases := []struct {
		name string
		err  error
	}{
		{"open-flags-unknown", func() error {
			_, _, err := DecodeSessionOpenFlags([]byte{0, 0, 0, 1, 0x80})
			return err
		}()},
		{"open-flags-overlong", func() error {
			_, _, err := DecodeSessionOpenFlags([]byte{0, 0, 0, 1, 0, 0})
			return err
		}()},
		{"restore-empty", func() error { _, _, err := DecodeSessionRestore(nil); return err }()},
		{"restore-flags-only", func() error { _, _, err := DecodeSessionRestore([]byte{0x01}); return err }()},
		{"restore-unknown-flags", func() error {
			_, _, err := DecodeSessionRestore([]byte{0x80, 1, 2})
			return err
		}()},
		{"ok-gen-short", func() error {
			_, _, _, err := DecodeSessionOKGen(make([]byte, 15))
			return err
		}()},
		{"ok-gen-long", func() error {
			_, _, _, err := DecodeSessionOKGen(make([]byte, 17))
			return err
		}()},
		{"matches-ckpt-unknown-flags", func() error {
			body := append([]byte(nil), ckptBody...)
			body[0] |= 0x04
			_, _, _, _, err := DecodeSessionMatchesCkpt(body)
			return err
		}()},
		{"matches-ckpt-truncated-length", func() error {
			body := EncodeSessionMatches(false, 0, nil)
			body[0] |= 0x02
			_, _, _, _, err := DecodeSessionMatchesCkpt(body)
			return err
		}()},
		{"matches-ckpt-zero-length", func() error {
			plain := EncodeSessionMatches(false, 0, nil)
			body := append(append([]byte(nil), plain...), 0, 0, 0, 0)
			body[0] |= 0x02
			_, _, _, _, err := DecodeSessionMatchesCkpt(body)
			return err
		}()},
		{"matches-ckpt-overrun", func() error {
			plain := EncodeSessionMatches(false, 0, nil)
			body := append(append([]byte(nil), plain...), 0, 0, 0, 9, 1)
			body[0] |= 0x02
			_, _, _, _, err := DecodeSessionMatchesCkpt(body)
			return err
		}()},
		{"matches-ckpt-trailing", func() error {
			_, _, _, _, err := DecodeSessionMatchesCkpt(append(append([]byte(nil), ckptBody...), 0xFF))
			return err
		}()},
		{"matches-plain-rejects-ckpt-flag", func() error {
			_, _, _, err := DecodeSessionMatches(ckptBody)
			return err
		}()},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, ErrMalformedFrame) {
			t.Errorf("%s: got %v, want ErrMalformedFrame", tc.name, tc.err)
		}
	}
}

func TestCheckpointEncodeDecodeRoundTrips(t *testing.T) {
	// SESSION-OPEN: both forms parse through the flags-aware decoder.
	if ov, fl, err := DecodeSessionOpenFlags(EncodeSessionOpen(512)); err != nil || ov != 512 || fl != 0 {
		t.Fatalf("open flagless: %d %d %v", ov, fl, err)
	}
	if ov, fl, err := DecodeSessionOpenFlags(EncodeSessionOpenFlags(512, SessionOpenFlagCheckpoint)); err != nil ||
		ov != 512 || fl != SessionOpenFlagCheckpoint {
		t.Fatalf("open flagged: %d %d %v", ov, fl, err)
	}

	// SESSION-RESTORE round trip.
	ck := []byte{1, 0, 0, 0, 16, 7}
	fl, gotCk, err := DecodeSessionRestore(EncodeSessionRestore(SessionOpenFlagCheckpoint, ck))
	if err != nil || fl != SessionOpenFlagCheckpoint || !bytes.Equal(gotCk, ck) {
		t.Fatalf("restore: %d %v %v", fl, gotCk, err)
	}

	// SESSION-OK generation form; the flagless decoder must reject its
	// length rather than misparse the generation as part of the id.
	id, ov, gen, err := DecodeSessionOKGen(EncodeSessionOKGen(1<<40, 256, 9))
	if err != nil || id != 1<<40 || ov != 256 || gen != 9 {
		t.Fatalf("ok-gen: %d %d %d %v", id, ov, gen, err)
	}
	if _, _, err := DecodeSessionOK(EncodeSessionOKGen(1, 2, 3)); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("flagless SESSION-OK decoder accepted the generation form: %v", err)
	}

	// SESSION-MATCHES piggyback: nil checkpoint degrades to the plain
	// form byte for byte; the ckpt-aware decoder handles both.
	ms := []RuleMatch{{Rule: 2, Start: 3, End: 9}}
	if !bytes.Equal(EncodeSessionMatchesCkpt(true, 77, ms, nil), EncodeSessionMatches(true, 77, ms)) {
		t.Fatal("nil-checkpoint piggyback encoding diverged from the plain form")
	}
	fin, consumed, gotMs, gotCk2, err := DecodeSessionMatchesCkpt(EncodeSessionMatches(false, 5, ms))
	if err != nil || fin || consumed != 5 || gotCk2 != nil || !reflect.DeepEqual(gotMs, ms) {
		t.Fatalf("ckpt decoder on plain form: %v %d %+v %v %v", fin, consumed, gotMs, gotCk2, err)
	}
	fin, consumed, gotMs, gotCk2, err = DecodeSessionMatchesCkpt(EncodeSessionMatchesCkpt(false, 5, ms, ck))
	if err != nil || fin || consumed != 5 || !bytes.Equal(gotCk2, ck) || !reflect.DeepEqual(gotMs, ms) {
		t.Fatalf("ckpt round trip: %v %d %+v %v %v", fin, consumed, gotMs, gotCk2, err)
	}
}

// SESSION-RESTORE is queue-class like the other session opcodes: it
// passes admission control and a TENANT envelope may wrap it, so the
// gateway can restore under a tenant's quota.
func TestSessionRestoreQueueClass(t *testing.T) {
	if !QueueClass(OpSessionRestore) {
		t.Error("OpSessionRestore: want queue-class")
	}
	if _, err := EncodeTenant(TenantHeader{Tenant: "t"}, OpSessionRestore, EncodeSessionRestore(1, []byte{1})); err != nil {
		t.Errorf("TENANT wrap of SESSION-RESTORE failed: %v", err)
	}
	if OpName(OpSessionRestore) != "SESSION-RESTORE" {
		t.Errorf("OpName(OpSessionRestore) = %q", OpName(OpSessionRestore))
	}
}
