// Streaming sessions: the server side of SESSION-OPEN / SESSION-DATA /
// SESSION-CLOSE. A session pins a core.Stream — the push-mode
// carry-over state of the chunked overlap discipline — so a client can
// scan an unbounded flow through the service with byte-identical
// semantics to a local RuleSet.ScanReader, including matches that
// straddle frame boundaries and fast-path gating across chunks.
//
// Ordering and concurrency: a session's frames must execute in arrival
// order, one at a time (the stream state is sequential), but the
// server must not dedicate a worker per session or let one session
// block unrelated work. Each session therefore keeps a small FIFO of
// its admitted frames and schedules at most one runner job into the
// shared bounded queue; the runner drains the FIFO and retires. Admission
// control is preserved end to end — a full queue or a full session
// FIFO answers SHED, and an admitted frame is always answered (the
// drain waits on the same per-connection accounting as every other
// request).
//
// Lifecycle: a session is bound to the connection that opened it (no
// cross-connection hijack; the conn's close reaps it), pinned to the
// rule snapshot at open (a RELOAD never splits one flow across two
// generations), bounded in memory (overlap tail + bounded FIFO of
// frame-capped chunks), and reaped after SessionIdleTimeout without
// traffic.
package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"alveare/internal/core"
)

// session is one open streaming session.
type session struct {
	id    uint64
	owner *conn
	st    *core.Stream
	ckpt  bool // piggyback a post-frame checkpoint on SESSION-MATCHES

	mu      sync.Mutex
	pending []*job // admitted frames awaiting the runner, FIFO
	running bool   // a runner job is queued or draining the FIFO
	closed  bool
	last    time.Time // last activity, for idle reaping
}

// openSession executes an admitted SESSION-OPEN: allocate the session
// against the current snapshot and reply SESSION-OK. The session limit
// sheds (an authoritative refusal before any state was created — safe
// to retry after backoff).
func (s *Server) openSession(j *job) {
	overlap, flags, err := DecodeSessionOpenFlags(j.f.Body)
	if err != nil {
		s.replyErr(j.c, j.f.ID, ErrCodeBadFrame, err)
		return
	}
	snap := s.snap.Load()
	sess := &session{owner: j.c, st: snap.rules.NewStream(int(overlap)),
		ckpt: flags&SessionOpenFlagCheckpoint != 0, last: time.Now()}
	if !s.registerSession(j, sess) {
		return
	}
	s.met.sessOpens.Inc()
	s.replySessionOK(j, sess, snap)
}

// restoreSession executes an admitted SESSION-RESTORE: rebuild the
// stream from the carried checkpoint against the current snapshot and
// register it like a fresh open. A checkpoint that fails validation —
// garbage bytes, a rule count that disagrees with the snapshot, broken
// carry invariants — answers a parseable ERROR on this frame alone;
// the connection never desyncs and no session state is created.
func (s *Server) restoreSession(j *job) {
	flags, ckpt, err := DecodeSessionRestore(j.f.Body)
	if err != nil {
		s.replyErr(j.c, j.f.ID, ErrCodeBadFrame, err)
		return
	}
	snap := s.snap.Load()
	st, err := snap.rules.RestoreStream(ckpt)
	if err != nil {
		s.replyErr(j.c, j.f.ID, ErrCodeBadFrame, err)
		return
	}
	if st.Overlap() > MaxSessionOverlap {
		s.replyErr(j.c, j.f.ID, ErrCodeBadFrame,
			fmt.Errorf("%w: checkpoint overlap %d exceeds %d", ErrMalformedFrame, st.Overlap(), MaxSessionOverlap))
		return
	}
	sess := &session{owner: j.c, st: st,
		ckpt: flags&SessionOpenFlagCheckpoint != 0, last: time.Now()}
	if !s.registerSession(j, sess) {
		return
	}
	s.met.sessRestores.Inc()
	s.replySessionOK(j, sess, snap)
}

// registerSession installs a freshly built session in the registry,
// shedding at the MaxSessions cap (an authoritative refusal before any
// state escaped — safe to retry after backoff).
func (s *Server) registerSession(j *job, sess *session) bool {
	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		s.met.shed.Inc()
		s.writeFrame(j.c, Frame{Op: OpShed, ID: j.f.ID})
		return false
	}
	s.sessNext++
	sess.id = s.sessNext
	s.sessions[sess.id] = sess
	active := len(s.sessions)
	s.sessMu.Unlock()
	s.met.sessActive.Set(int64(active))
	return true
}

// replySessionOK answers an open or restore: the plain 12-byte form,
// or the extended form carrying the rule generation when the caller
// negotiated checkpoints (the generation is the failover fence — a
// checkpoint may only be restored under the generation it was exported
// under).
func (s *Server) replySessionOK(j *job, sess *session, snap *snapshot) {
	body := EncodeSessionOK(sess.id, uint32(sess.st.Overlap()))
	if sess.ckpt {
		body = EncodeSessionOKGen(sess.id, uint32(sess.st.Overlap()), snap.generation)
	}
	s.writeFrame(j.c, Frame{Op: OpSessionOK, ID: j.f.ID, Body: body})
}

// dispatchSession admits one SESSION-DATA/SESSION-CLOSE frame on the
// reader goroutine: look the session up, append the frame to its FIFO,
// and schedule a runner into the bounded queue if none is active. A
// full FIFO or a full queue answers SHED — the frame was not absorbed
// into the stream, so the client may resend the same chunk after
// backoff without corrupting the flow.
func (s *Server) dispatchSession(c *conn, f Frame, start time.Time) {
	if len(f.Body) < sessionIDLen {
		s.replyErr(c, f.ID, ErrCodeBadFrame,
			fmt.Errorf("%w: %s body %d bytes", ErrMalformedFrame, OpName(f.Op), len(f.Body)))
		return
	}
	var id uint64
	for _, b := range f.Body[:sessionIDLen] {
		id = id<<8 | uint64(b)
	}
	s.sessMu.Lock()
	sess := s.sessions[id]
	s.sessMu.Unlock()
	// The owner check makes a session id useless off its connection: a
	// stray or hostile frame cannot read another flow's matches or
	// corrupt its carry state.
	if sess == nil || sess.owner != c {
		s.replyErr(c, f.ID, ErrCodeUnknownSession, fmt.Errorf("unknown session %d", id))
		return
	}
	j := &job{c: c, f: f, admitted: start, sess: sess}
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		s.replyErr(c, f.ID, ErrCodeUnknownSession, fmt.Errorf("unknown session %d", id))
		return
	}
	if len(sess.pending) >= s.cfg.SessionPending {
		sess.mu.Unlock()
		s.met.shed.Inc()
		s.writeFrame(c, Frame{Op: OpShed, ID: f.ID})
		return
	}
	c.pending.Add(1)
	sess.pending = append(sess.pending, j)
	if !sess.running {
		runner := &job{c: c, sess: sess, runner: true}
		select {
		case s.queue <- runner:
			c.pending.Add(1)
			sess.running = true
			d := s.qdepth.Add(1)
			s.met.queueDepth.Set(d)
			s.met.queueHigh.Max(d)
		default:
			sess.pending = sess.pending[:len(sess.pending)-1]
			sess.mu.Unlock()
			c.pending.Done()
			s.met.shed.Inc()
			s.writeFrame(c, Frame{Op: OpShed, ID: f.ID})
			return
		}
	}
	sess.mu.Unlock()
}

// runSession drains one session's FIFO in arrival order. It holds one
// worker while frames are queued, then retires; the next frame
// schedules a fresh runner. Frames that raced in behind a CLOSE are
// answered unknown-session.
func (s *Server) runSession(sess *session) {
	for {
		sess.mu.Lock()
		if len(sess.pending) == 0 {
			sess.running = false
			sess.last = time.Now()
			sess.mu.Unlock()
			return
		}
		j := sess.pending[0]
		sess.pending = sess.pending[1:]
		closed := sess.closed
		sess.mu.Unlock()
		if closed {
			s.replyErr(j.c, j.f.ID, ErrCodeUnknownSession, fmt.Errorf("unknown session %d", sess.id))
		} else {
			s.executeSession(sess, j)
		}
		j.c.pending.Done()
	}
}

// executeSession runs one admitted session frame under the per-request
// timeout and writes its response. A scan fault (guardrail, timeout,
// cancellation) is terminal: the carry state past it is unreliable, so
// the session closes and the client must re-open — it can never
// silently lose or duplicate matches across the fault.
func (s *Server) executeSession(sess *session, j *job) {
	if s.cfg.ScanHook != nil {
		s.cfg.ScanHook()
	}
	ctx := s.baseCtx
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	var ms []RuleMatch
	emit := func(rule int, m core.Match, _ []byte) bool {
		ms = append(ms, RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
		return true
	}
	switch j.f.Op {
	case OpSessionData:
		chunk := j.f.Body[sessionIDLen:]
		s.met.sessData.requests.Inc()
		s.met.sessData.bytes.Add(int64(len(chunk)))
		if _, err := sess.st.PushCtx(ctx, chunk, emit); err != nil {
			s.closeSession(sess)
			s.replyErr(j.c, j.f.ID, ErrCodeScan, err)
			return
		}
		s.met.matches.Add(int64(len(ms)))
		var ckpt []byte
		if sess.ckpt {
			// Post-frame carry state, exactly what SESSION-RESTORE
			// accepts: a relay holding this can move the session to a
			// replica after losing this shard.
			ckpt = sess.st.Export()
		}
		s.writeFrame(j.c, Frame{Op: OpSessionMatches, ID: j.f.ID,
			Body: EncodeSessionMatchesCkpt(false, uint64(sess.st.Consumed()), ms, ckpt)})
		s.met.sessData.latency.Observe(time.Since(j.admitted).Microseconds())
	case OpSessionClose:
		if len(j.f.Body) != sessionIDLen {
			s.replyErr(j.c, j.f.ID, ErrCodeBadFrame,
				fmt.Errorf("%w: session-close body %d bytes", ErrMalformedFrame, len(j.f.Body)))
			return
		}
		_, err := sess.st.FinishCtx(ctx, emit)
		s.closeSession(sess)
		s.met.sessCloses.Inc()
		if err != nil {
			s.replyErr(j.c, j.f.ID, ErrCodeScan, err)
			return
		}
		s.met.matches.Add(int64(len(ms)))
		s.writeFrame(j.c, Frame{Op: OpSessionMatches, ID: j.f.ID,
			Body: EncodeSessionMatches(true, uint64(sess.st.Consumed()), ms)})
	}
}

// closeSession marks the session closed and drops it from the
// registry. Idempotent; pending frames answer unknown-session.
func (s *Server) closeSession(sess *session) {
	sess.mu.Lock()
	was := sess.closed
	sess.closed = true
	sess.mu.Unlock()
	if was {
		return
	}
	s.sessMu.Lock()
	delete(s.sessions, sess.id)
	active := len(s.sessions)
	s.sessMu.Unlock()
	s.met.sessActive.Set(int64(active))
}

// closeConnSessions reaps every session the closing connection owns.
// It runs after the connection's admitted jobs were answered, so no
// runner can still be draining these sessions.
func (s *Server) closeConnSessions(c *conn) {
	s.sessMu.Lock()
	var own []*session
	for _, sess := range s.sessions {
		if sess.owner == c {
			own = append(own, sess)
		}
	}
	s.sessMu.Unlock()
	for _, sess := range own {
		s.closeSession(sess)
	}
}

// sessionReaper closes sessions idle past SessionIdleTimeout — an
// abandoned flow (a client that died without SESSION-CLOSE on a
// connection that stays up) must not hold registry slots and overlap
// memory forever.
func (s *Server) sessionReaper() {
	defer s.wgWorkers.Done()
	sweep := s.cfg.SessionIdleTimeout / 4
	if sweep <= 0 {
		sweep = time.Second
	}
	t := time.NewTicker(sweep)
	defer t.Stop()
	for {
		select {
		case <-s.sessStop:
			return
		case <-t.C:
			s.reapIdleSessions(time.Now())
		}
	}
}

// reapIdleSessions closes sessions whose last activity predates the
// idle timeout. A session with queued frames or an active runner is
// never reaped — only truly idle ones.
func (s *Server) reapIdleSessions(now time.Time) {
	s.sessMu.Lock()
	var idle []*session
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if !sess.running && len(sess.pending) == 0 && !sess.closed &&
			now.Sub(sess.last) > s.cfg.SessionIdleTimeout {
			idle = append(idle, sess)
		}
		sess.mu.Unlock()
	}
	s.sessMu.Unlock()
	for _, sess := range idle {
		s.closeSession(sess)
		s.met.sessReaped.Inc()
	}
}

// SessionCount reports the open-session count (tests and diagnostics).
func (s *Server) SessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// executeBatch runs one admitted SCAN-BATCH: every item scanned
// against one snapshot capture (a concurrent RELOAD never splits a
// batch across generations), per-item fault isolation — one payload
// hitting a guardrail fault or timeout fails that item alone.
func (s *Server) executeBatch(ctx context.Context, j *job) {
	items, err := DecodeScanBatch(j.f.Body)
	if err != nil {
		s.replyErr(j.c, j.f.ID, ErrCodeBadFrame, err)
		return
	}
	s.met.batch.requests.Inc()
	s.met.batchItems.Add(int64(len(items)))
	snap := s.snap.Load()
	results := make([]BatchItemResult, len(items))
	var matched int64
	for i, payload := range items {
		s.met.batch.bytes.Add(int64(len(payload)))
		out, err := scanRules(ctx, snap, payload)
		if err != nil {
			results[i] = BatchItemResult{Code: ErrCodeScan, Msg: err.Error()}
			continue
		}
		results[i] = BatchItemResult{Matches: out}
		matched += int64(len(out))
	}
	s.met.matches.Add(matched)
	s.writeFrame(j.c, Frame{Op: OpBatchResp, ID: j.f.ID, Body: EncodeBatchResults(results)})
	s.met.batch.latency.Observe(time.Since(j.admitted).Microseconds())
}

// scanRules runs one payload against a pinned snapshot.
func scanRules(ctx context.Context, snap *snapshot, payload []byte) ([]RuleMatch, error) {
	out, err := snap.rules.ScanCtx(ctx, payload)
	if err != nil {
		return nil, err
	}
	var ms []RuleMatch
	for _, rm := range out {
		for _, m := range rm.Matches {
			ms = append(ms, RuleMatch{Rule: uint32(rm.Rule), Start: uint64(m.Start), End: uint64(m.End)})
		}
	}
	return ms, nil
}
