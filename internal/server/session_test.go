package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// streamRules and streamPayload build a corpus dense in matches that
// straddle arbitrary chunk boundaries: repeated runs whose matches
// (e.g. "ab+c" over "abbbbbc") span more bytes than the small frame
// sizes the tests push.
var streamRules = []string{"ab+c", "needle", "x[0-9]+y", "GET /[a-z/]+"}

func streamPayload(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	var b bytes.Buffer
	pieces := []string{
		"abc", "abbbbbbbbbbbc", "needle", "x12345y", "GET /index/html",
		"..", "nee", "ab", "x9", "filler filler",
	}
	for b.Len() < n {
		b.WriteString(pieces[rng.Intn(len(pieces))])
	}
	return b.Bytes()
}

// localStreamMatches is the ground truth: the local engine's streaming
// scan over the same payload and overlap.
func localStreamMatches(t *testing.T, rules []string, payload []byte, overlap int) []server.RuleMatch {
	t.Helper()
	opts := []core.Option{core.WithDFA()}
	if overlap > 0 {
		opts = append(opts, core.WithOverlap(overlap))
	}
	rs, err := core.NewRuleSet(rules, backend.Options{}, opts...)
	if err != nil {
		t.Fatalf("NewRuleSet: %v", err)
	}
	var want []server.RuleMatch
	if _, err := rs.ScanReaderCtx(context.Background(), bytes.NewReader(payload),
		func(rule int, m core.Match, _ []byte) bool {
			want = append(want, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
			return true
		}); err != nil {
		t.Fatalf("ScanReaderCtx: %v", err)
	}
	sortMatches(want)
	return want
}

// TestServerSessionMatchesLocalStreaming pins the tentpole invariant:
// a session fed arbitrary-sized frames returns exactly the matches the
// local streaming engine produces over the concatenated stream —
// including matches straddling frame boundaries.
func TestServerSessionMatchesLocalStreaming(t *testing.T) {
	t.Cleanup(leakCheck(t))
	payload := streamPayload(64 << 10)
	_, addr := startServer(t, server.Config{Rules: streamRules})
	c := dial(t, addr)

	for _, chunk := range []int{7, 64, 1024, 100_000 /* single frame > payload */} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			sess, err := c.OpenSession(0)
			if err != nil {
				t.Fatalf("OpenSession: %v", err)
			}
			var got []server.RuleMatch
			for off := 0; off < len(payload); off += chunk {
				end := off + chunk
				if end > len(payload) {
					end = len(payload)
				}
				ms, consumed, err := sess.Write(payload[off:end])
				if err != nil {
					t.Fatalf("Write at %d: %v", off, err)
				}
				if consumed != uint64(end) {
					t.Fatalf("consumed = %d, want %d", consumed, end)
				}
				got = append(got, ms...)
			}
			ms, consumed, err := sess.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			if consumed != uint64(len(payload)) {
				t.Fatalf("final consumed = %d, want %d", consumed, len(payload))
			}
			got = append(got, ms...)
			sortMatches(got)
			want := localStreamMatches(t, streamRules, payload, 0)
			if len(got) == 0 || len(got) != len(want) {
				t.Fatalf("match count: session %d, local %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("match %d: session %+v, local %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestServerSessionStraddle pins one match that spans a frame boundary
// exactly: no frame alone contains it, only the overlap carry finds it.
func TestServerSessionStraddle(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: []string{"needle"}})
	c := dial(t, addr)
	sess, err := c.OpenSession(64)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if sess.Overlap() != 64 {
		t.Fatalf("negotiated overlap = %d, want 64", sess.Overlap())
	}
	var got []server.RuleMatch
	for _, frame := range []string{"....nee", "dle...."} {
		ms, _, err := sess.Write([]byte(frame))
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		got = append(got, ms...)
	}
	ms, _, err := sess.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	got = append(got, ms...)
	if len(got) != 1 || got[0] != (server.RuleMatch{Rule: 0, Start: 4, End: 10}) {
		t.Fatalf("straddling match = %+v, want [{0 4 10}]", got)
	}
}

// TestServerSessionPinnedAcrossReload: a streaming session is bound to
// the rule snapshot it opened against — a RELOAD mid-session must not
// leak the new generation's rules into the flow (nor lose the old
// ones). Every DATA frame after the reload still scans with the
// opening generation; only sessions opened afterwards see the new
// rules.
func TestServerSessionPinnedAcrossReload(t *testing.T) {
	t.Cleanup(leakCheck(t))
	srv, addr := startServer(t, server.Config{Rules: []string{"foo"}})
	c := dial(t, addr)

	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	chunk := []byte("..foo..bar..")
	collect := func(ms []server.RuleMatch, err error) []server.RuleMatch {
		t.Helper()
		if err != nil {
			t.Fatalf("session op: %v", err)
		}
		return ms
	}
	var got []server.RuleMatch
	ms, _, err := sess.Write(chunk)
	got = append(got, collect(ms, err)...)

	// Swap the rule set under the open session.
	if gen, err := srv.Reload([]string{"bar"}); err != nil || gen != 1 {
		t.Fatalf("Reload: gen %d err %v", gen, err)
	}

	// Frames after the reload still scan with generation 0: "foo"
	// matches keep coming, "bar" never appears.
	for i := 0; i < 3; i++ {
		ms, _, err := sess.Write(chunk)
		got = append(got, collect(ms, err)...)
	}
	ms, _, err = sess.Close()
	got = append(got, collect(ms, err)...)

	if len(got) != 4 {
		t.Fatalf("pinned session matches = %d, want 4 (one foo per frame): %+v", len(got), got)
	}
	for i, m := range got {
		if m.Rule != 0 {
			t.Fatalf("match %d rule = %d, want 0 (opening generation)", i, m.Rule)
		}
		off := uint64(i * len(chunk))
		if m.Start != off+2 || m.End != off+5 {
			t.Fatalf("match %d = [%d,%d), want foo at [%d,%d)", i, m.Start, m.End, off+2, off+5)
		}
	}

	// A session opened after the reload scans with the new generation.
	sess2, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession after reload: %v", err)
	}
	var got2 []server.RuleMatch
	ms, _, err = sess2.Write(chunk)
	got2 = append(got2, collect(ms, err)...)
	ms, _, err = sess2.Close()
	got2 = append(got2, collect(ms, err)...)
	if len(got2) != 1 || got2[0] != (server.RuleMatch{Rule: 0, Start: 7, End: 10}) {
		t.Fatalf("post-reload session matches = %+v, want [{0 7 10}] (bar)", got2)
	}
}

// TestServerSessionUnknownID: data for a session that never existed is
// an authoritative unknown-session error, not a hang or a scan.
func TestServerSessionUnknownID(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: streamRules})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if err := server.WriteFrame(nc, server.Frame{Op: server.OpSessionData, ID: 1,
		Body: server.EncodeSessionData(12345, []byte("abc"))}); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := server.ReadFrame(nc, server.DefaultMaxFrame)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	code, _, err := server.DecodeError(f.Body)
	if f.Op != server.OpError || err != nil || code != server.ErrCodeUnknownSession {
		t.Fatalf("got op %s code %d err %v, want ERROR/unknown-session", server.OpName(f.Op), code, err)
	}
}

// TestServerSessionCrossConnRejected: a session id is bound to the
// connection that opened it — another connection presenting the same
// id gets unknown-session, never the other flow's state.
func TestServerSessionCrossConnRejected(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: streamRules})
	c := dial(t, addr)
	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if err := server.WriteFrame(nc, server.Frame{Op: server.OpSessionData, ID: 9,
		Body: server.EncodeSessionData(sess.ID(), []byte("abc"))}); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := server.ReadFrame(nc, server.DefaultMaxFrame)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	code, _, _ := server.DecodeError(f.Body)
	if f.Op != server.OpError || code != server.ErrCodeUnknownSession {
		t.Fatalf("cross-conn data answered %s code %d, want ERROR/unknown-session", server.OpName(f.Op), code)
	}
	// The rightful owner is unaffected.
	if _, _, err := sess.Write([]byte("needle")); err != nil {
		t.Fatalf("owner Write after hijack attempt: %v", err)
	}
	if _, _, err := sess.Close(); err != nil {
		t.Fatalf("owner Close: %v", err)
	}
}

// TestServerSessionLimit: MaxSessions is a hard cap answered with SHED
// (retryable after backoff), and closing a session frees its slot.
func TestServerSessionLimit(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: streamRules, MaxSessions: 1})
	c := dial(t, addr)
	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if _, err := c.OpenSession(0); !errors.Is(err, client.ErrShed) {
		t.Fatalf("second open err = %v, want ErrShed", err)
	}
	if _, _, err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sess2, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	sess2.Close()
}

// TestServerSessionIdleReap: an abandoned session is reaped after the
// idle timeout and its id answers unknown-session afterwards.
func TestServerSessionIdleReap(t *testing.T) {
	t.Cleanup(leakCheck(t))
	srv, addr := startServer(t, server.Config{Rules: streamRules, SessionIdleTimeout: 50 * time.Millisecond})
	c := dial(t, addr)
	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not reaped; count = %d", srv.SessionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, _, err = sess.Write([]byte("abc"))
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != server.ErrCodeUnknownSession {
		t.Fatalf("write after reap err = %v, want unknown-session", err)
	}
}

// TestServerSessionConnCloseReaps: the owner connection going away
// reaps its sessions — no leak from clients that die mid-stream.
func TestServerSessionConnCloseReaps(t *testing.T) {
	t.Cleanup(leakCheck(t))
	srv, addr := startServer(t, server.Config{Rules: streamRules})
	c := dial(t, addr)
	if _, err := c.OpenSession(0); err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d, want 1", n)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session survived its connection; count = %d", srv.SessionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerSessionPipelinedFIFO pipelines many DATA frames without
// waiting for responses and asserts the session executed them in
// arrival order: consumed offsets come back strictly increasing and
// the union of matches equals the local streaming scan.
func TestServerSessionPipelinedFIFO(t *testing.T) {
	t.Cleanup(leakCheck(t))
	payload := streamPayload(8 << 10)
	const chunk = 512
	nFrames := (len(payload) + chunk - 1) / chunk
	_, addr := startServer(t, server.Config{Rules: streamRules, Workers: 4, SessionPending: nFrames + 1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()

	if err := server.WriteFrame(nc, server.Frame{Op: server.OpSessionOpen, ID: 1,
		Body: server.EncodeSessionOpen(0)}); err != nil {
		t.Fatalf("open: %v", err)
	}
	f, err := server.ReadFrame(nc, server.DefaultMaxFrame)
	if err != nil || f.Op != server.OpSessionOK {
		t.Fatalf("open answer: op %s err %v", server.OpName(f.Op), err)
	}
	sid, _, err := server.DecodeSessionOK(f.Body)
	if err != nil {
		t.Fatalf("DecodeSessionOK: %v", err)
	}

	// Blast every frame, then the close, before reading anything.
	id := uint32(1)
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		id++
		if err := server.WriteFrame(nc, server.Frame{Op: server.OpSessionData, ID: id,
			Body: server.EncodeSessionData(sid, payload[off:end])}); err != nil {
			t.Fatalf("data write: %v", err)
		}
	}
	id++
	if err := server.WriteFrame(nc, server.Frame{Op: server.OpSessionClose, ID: id,
		Body: server.EncodeSessionClose(sid)}); err != nil {
		t.Fatalf("close write: %v", err)
	}

	var got []server.RuleMatch
	var lastConsumed uint64
	for i := 0; i < nFrames+1; i++ {
		f, err := server.ReadFrame(nc, server.DefaultMaxFrame)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if f.Op != server.OpSessionMatches {
			t.Fatalf("response %d: op %s body %q", i, server.OpName(f.Op), f.Body)
		}
		if f.ID != uint32(i+2) {
			t.Fatalf("response %d: id %d, want %d (FIFO order violated)", i, f.ID, i+2)
		}
		final, consumed, ms, err := server.DecodeSessionMatches(f.Body)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if consumed < lastConsumed {
			t.Fatalf("consumed went backwards: %d after %d", consumed, lastConsumed)
		}
		lastConsumed = consumed
		if final != (i == nFrames) {
			t.Fatalf("response %d: final = %v", i, final)
		}
		got = append(got, ms...)
	}
	sortMatches(got)
	want := localStreamMatches(t, streamRules, payload, 0)
	if len(got) != len(want) {
		t.Fatalf("match count: pipelined session %d, local %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: session %+v, local %+v", i, got[i], want[i])
		}
	}
}

// TestServerSessionPendingSheds: a session's FIFO bound answers SHED
// once the pipelined backlog exceeds SessionPending — per-session
// memory stays bounded no matter how fast the client pushes.
func TestServerSessionPendingSheds(t *testing.T) {
	t.Cleanup(leakCheck(t))
	release := make(chan struct{})
	var hooked sync.Once
	started := make(chan struct{})
	var block atomic.Bool // armed after OPEN so only DATA frames stall
	_, addr := startServer(t, server.Config{
		Rules: streamRules, Workers: 1, SessionPending: 2,
		ScanHook: func() {
			if !block.Load() {
				return
			}
			hooked.Do(func() { close(started) })
			<-release
		},
	})
	defer close(release)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if err := server.WriteFrame(nc, server.Frame{Op: server.OpSessionOpen, ID: 1,
		Body: server.EncodeSessionOpen(0)}); err != nil {
		t.Fatalf("open: %v", err)
	}
	f, _ := server.ReadFrame(nc, server.DefaultMaxFrame)
	sid, _, err := server.DecodeSessionOK(f.Body)
	if err != nil {
		t.Fatalf("DecodeSessionOK: %v", err)
	}
	block.Store(true)
	// First data frame occupies the lone worker (ScanHook blocks).
	server.WriteFrame(nc, server.Frame{Op: server.OpSessionData, ID: 2,
		Body: server.EncodeSessionData(sid, []byte("abc"))})
	<-started
	// The FIFO now absorbs SessionPending frames; the next must shed.
	sawShed := false
	for i := uint32(0); i < 8 && !sawShed; i++ {
		server.WriteFrame(nc, server.Frame{Op: server.OpSessionData, ID: 3 + i,
			Body: server.EncodeSessionData(sid, []byte("abc"))})
		nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		f, err := server.ReadFrame(nc, server.DefaultMaxFrame)
		if err == nil && f.Op == server.OpShed {
			sawShed = true
		}
	}
	nc.SetReadDeadline(time.Time{})
	if !sawShed {
		t.Fatal("pipelined past SessionPending without a SHED")
	}
}

// TestServerSessionDraining: session traffic during a drain answers
// ERROR draining; the open session's already-admitted work completes.
func TestServerSessionDraining(t *testing.T) {
	srv, err := server.New(server.Config{Rules: streamRules})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	sess, err := c.OpenSessionCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if _, _, err := sess.Write([]byte("needle")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if _, _, err := sess.Write([]byte("more")); err == nil {
		t.Fatal("Write after drain succeeded")
	}
}

// TestServerBatchMatchesPerItem pins SCAN-BATCH semantics: per-item
// results equal individual SCANs in order, empty payloads included.
func TestServerBatchMatchesPerItem(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: streamRules})
	c := dial(t, addr)
	payloads := [][]byte{
		[]byte("..abc.."),
		{},
		[]byte("needle x42y needle"),
		[]byte(strings.Repeat("GET /a/b abbbc ", 100)),
		[]byte("no hits here"),
	}
	got, err := c.ScanBatch(payloads)
	if err != nil {
		t.Fatalf("ScanBatch: %v", err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("item count = %d, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		want, err := c.Scan(p)
		if err != nil {
			t.Fatalf("Scan item %d: %v", i, err)
		}
		if got[i].Err != nil {
			t.Fatalf("item %d failed: %v", i, got[i].Err)
		}
		sortMatches(got[i].Matches)
		sortMatches(want)
		if len(got[i].Matches) != len(want) {
			t.Fatalf("item %d: batch %d matches, scan %d", i, len(got[i].Matches), len(want))
		}
		for j := range want {
			if got[i].Matches[j] != want[j] {
				t.Fatalf("item %d match %d: batch %+v, scan %+v", i, j, got[i].Matches[j], want[j])
			}
		}
	}
}

// TestServerSessionRestoreHandoff is the checkpoint tentpole at the
// protocol layer: a checkpointed session streams half its flow into
// server A, the last acked piggyback is SESSION-RESTOREd on server B
// (same rules), and the second half plus close completes there. The
// combined transcript must be byte-identical to the local streaming
// engine over the uninterrupted flow — the client-visible definition
// of a lossless handoff.
func TestServerSessionRestoreHandoff(t *testing.T) {
	t.Cleanup(leakCheck(t))
	payload := streamPayload(32 << 10)
	want := localStreamMatches(t, streamRules, payload, 0)
	_, addrA := startServer(t, server.Config{Rules: streamRules})
	_, addrB := startServer(t, server.Config{Rules: streamRules})
	ca := dial(t, addrA)
	cb := dial(t, addrB)

	for _, chunk := range []int{97, 1024, 8192} {
		sa, err := ca.OpenSessionCheckpointCtx(context.Background(), 0)
		if err != nil {
			t.Fatalf("chunk=%d open on A: %v", chunk, err)
		}
		var got []server.RuleMatch
		half := len(payload) / 2
		for off := 0; off < half; off += chunk {
			end := off + chunk
			if end > half {
				end = half
			}
			ms, _, err := sa.WriteCtx(context.Background(), payload[off:end])
			if err != nil {
				t.Fatalf("chunk=%d write A at %d: %v", chunk, off, err)
			}
			got = append(got, ms...)
		}
		ckpt := sa.Checkpoint()
		if ckpt == nil {
			t.Fatalf("chunk=%d: no checkpoint piggybacked after %d writes", chunk, (half+chunk-1)/chunk)
		}
		info, err := core.PeekCheckpoint(ckpt)
		if err != nil {
			t.Fatalf("chunk=%d: piggybacked checkpoint unparseable: %v", chunk, err)
		}
		if info.Consumed != uint64(half) {
			t.Fatalf("chunk=%d: checkpoint consumed %d, want %d", chunk, info.Consumed, half)
		}

		// Hand off to B. A's half-open session is abandoned (its reaper's
		// problem); B continues the stream from the checkpoint.
		sb, err := cb.RestoreSessionCtx(context.Background(), ckpt)
		if err != nil {
			t.Fatalf("chunk=%d restore on B: %v", chunk, err)
		}
		if sb.Generation() != sa.Generation() {
			t.Fatalf("chunk=%d: generation changed across handoff: %d -> %d", chunk, sa.Generation(), sb.Generation())
		}
		if sb.Overlap() != sa.Overlap() {
			t.Fatalf("chunk=%d: overlap changed across handoff: %d -> %d", chunk, sa.Overlap(), sb.Overlap())
		}
		for off := half; off < len(payload); off += chunk {
			end := off + chunk
			if end > len(payload) {
				end = len(payload)
			}
			ms, _, err := sb.WriteCtx(context.Background(), payload[off:end])
			if err != nil {
				t.Fatalf("chunk=%d write B at %d: %v", chunk, off, err)
			}
			got = append(got, ms...)
		}
		if sb.Checkpoint() == nil {
			t.Fatalf("chunk=%d: restored session stopped piggybacking checkpoints", chunk)
		}
		ms, consumed, err := sb.CloseCtx(context.Background())
		if err != nil {
			t.Fatalf("chunk=%d close on B: %v", chunk, err)
		}
		if consumed != uint64(len(payload)) {
			t.Fatalf("chunk=%d: consumed %d, want %d", chunk, consumed, len(payload))
		}
		got = append(got, ms...)
		sortMatches(got)
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: handoff transcript %d matches, local %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d match %d: handoff %+v, local %+v", chunk, i, got[i], want[i])
			}
		}
	}
	snap, err := cb.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if snap.Get("server.session.restores") < 3 {
		t.Fatalf("server.session.restores = %d, want >= 3", snap.Get("server.session.restores"))
	}
}

// TestServerSessionRestoreGarbage: a SESSION-RESTORE carrying garbage —
// truncated frames, corrupt checkpoints, or a checkpoint exported under
// a different rule set — must answer a parseable typed ERROR on that
// frame alone, create no session state, and leave the connection in
// sync for subsequent requests.
func TestServerSessionRestoreGarbage(t *testing.T) {
	t.Cleanup(leakCheck(t))
	srv, addr := startServer(t, server.Config{Rules: streamRules})
	c := dial(t, addr)

	// A structurally valid checkpoint from a ONE-rule server: the rule
	// count disagrees with this server's four.
	_, addrOther := startServer(t, server.Config{Rules: []string{"needle"}})
	co := dial(t, addrOther)
	so, err := co.OpenSessionCheckpointCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("open on one-rule server: %v", err)
	}
	if _, _, err := so.WriteCtx(context.Background(), []byte("..needle..")); err != nil {
		t.Fatalf("write on one-rule server: %v", err)
	}
	foreign := append([]byte(nil), so.Checkpoint()...)

	// A checkpoint from THIS rule set, corrupted after export.
	sv, err := c.OpenSessionCheckpointCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, _, err := sv.WriteCtx(context.Background(), streamPayload(4096)); err != nil {
		t.Fatalf("write: %v", err)
	}
	valid := append([]byte(nil), sv.Checkpoint()...)
	truncated := valid[:len(valid)-1]
	badVersion := append([]byte(nil), valid...)
	badVersion[0] = 99
	badFlags := append([]byte(nil), valid...)
	badFlags[1] = 0xFF

	for name, ckpt := range map[string][]byte{
		"empty":         {},
		"one-byte":      {1},
		"junk":          []byte("this is not a checkpoint"),
		"truncated":     truncated,
		"bad-version":   badVersion,
		"bad-flags":     badFlags,
		"foreign-rules": foreign,
	} {
		_, err := c.RestoreSessionCtx(context.Background(), ckpt)
		if err == nil {
			t.Fatalf("%s: garbage restore succeeded", name)
		}
		var se *client.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("%s: garbage restore failed without a typed server error: %v", name, err)
		}
		if se.Code != server.ErrCodeBadFrame {
			t.Fatalf("%s: error code %d, want bad-frame %d", name, se.Code, server.ErrCodeBadFrame)
		}
	}

	// No state leaked: only the one valid session remains, and the
	// connection never desynced — a fresh restore of the intact
	// checkpoint and a plain scan both still work.
	if got := srv.SessionCount(); got != 1 {
		t.Fatalf("garbage restores leaked sessions: %d, want 1", got)
	}
	sr, err := c.RestoreSessionCtx(context.Background(), valid)
	if err != nil {
		t.Fatalf("valid restore after garbage barrage: %v", err)
	}
	if _, _, err := sr.CloseCtx(context.Background()); err != nil {
		t.Fatalf("close restored session: %v", err)
	}
	if _, err := c.Scan([]byte("..needle..")); err != nil {
		t.Fatalf("scan after garbage barrage: %v", err)
	}
}

// TestServerSessionPlainNoCheckpoint: a session opened WITHOUT the
// checkpoint flag must never see a piggyback (the strict decode in the
// plain client would reject it) and answers the 12-byte SESSION-OK.
func TestServerSessionPlainNoCheckpoint(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: streamRules})
	c := dial(t, addr)
	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	// The plain client decodes with the strict DecodeSessionMatches: a
	// stray piggyback would fail this write loudly.
	if _, _, err := sess.Write(streamPayload(8192)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, _, err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
