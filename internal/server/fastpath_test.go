// Fast-path e2e: the scan service runs the hybrid engine (lazy-DFA
// gates plus the cross-rule literal prefilter) by default, and the
// acceptance bar is unchanged — every response that survives network
// chaos must be byte-identical to a direct scan on the exact slow
// path, and RELOAD must swap the prefilter atomically with the rule
// generation (no window where the old generation's literal automaton
// dispatches — or suppresses — the new generation's rules).
package server_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/faultinject/netchaos"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// TestServerFastPathChaosByteIdentical soaks a default (fast-path)
// server through a mid-frame-reset chaos proxy and holds every
// completed response to the slow path's ground truth.
func TestServerFastPathChaosByteIdentical(t *testing.T) {
	t.Cleanup(leakCheck(t))
	rules := []string{"ab+c", "needle", "x.z"}
	payload := bytes.Repeat([]byte("..abc..needle..xyz..abbbbc.."), 50)

	// Ground truth from the exact engine: no WithDFA, no prefilter.
	slow, err := core.NewRuleSet(rules, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.FastEnabled() {
		t.Fatal("ground-truth rule set unexpectedly runs the fast path")
	}
	var want []server.RuleMatch
	for _, rm := range mustScan(t, slow, payload) {
		want = append(want, rm)
	}
	sortMatches(want)
	wantBytes := server.EncodeMatches(want)

	srv, addr := startServer(t, server.Config{Rules: rules, Workers: 2})

	reset := netchaos.NewScenario("reset-midframe")
	reset.ResetAfter = 900
	proxy, err := netchaos.New(addr, chaosSeed+10, []netchaos.Scenario{reset, netchaos.NewScenario("clean")})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	pool, err := client.NewPool([]string{proxy.Addr()},
		client.PoolSeed(chaosSeed+10),
		client.PoolRetries(10),
		client.PoolBackoff(time.Millisecond, 40*time.Millisecond),
		client.PoolAttemptTimeout(2*time.Second),
		client.PoolBreaker(8, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const goroutines, perG = 4, 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				got, err := pool.Scan(payload)
				if err != nil {
					errCh <- fmt.Errorf("scan (g%d,i%d): %w", g, i, err)
					continue
				}
				sortMatches(got)
				if !bytes.Equal(server.EncodeMatches(got), wantBytes) {
					errCh <- fmt.Errorf("scan (g%d,i%d): fast-path response not byte-identical to the slow path", g, i)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The service really served from the fast path: the gate counters
	// in its own snapshot moved.
	snap := srv.MetricsSnapshot()
	if snap.Get("ruleset.fast.probes") == 0 {
		t.Fatal("server snapshot shows no fast-path probes; the hybrid engine never engaged")
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// mustScan collects a rule set's streaming matches in wire shape.
func mustScan(t *testing.T, rs *core.RuleSet, payload []byte) []server.RuleMatch {
	t.Helper()
	var out []server.RuleMatch
	if _, err := rs.ScanReader(bytes.NewReader(payload),
		func(rule int, m core.Match, _ []byte) bool {
			out = append(out, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
			return true
		}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerReloadSwapsPrefilterAtomically hot-swaps a rule set whose
// necessary literal changes completely (alpha → omega) under live
// traffic. Every in-flight response must be exactly one generation's
// result — a stale Aho–Corasick prefilter would either suppress the
// new rule (empty responses) or blend generations — and every scan
// issued after the RELOAD ack must dispatch on the new literal.
func TestServerReloadSwapsPrefilterAtomically(t *testing.T) {
	t.Cleanup(leakCheck(t))
	payload := []byte(strings.Repeat("alpha7 omega7 ", 30))
	const period = 14 // "alpha7 omega7 " — alpha matches at 14k, omega at 14k+7

	_, addr := startServer(t, server.Config{Rules: []string{`alpha[0-9]`}, Workers: 4})

	classify := func(ms []server.RuleMatch) string {
		if len(ms) != 30 {
			return fmt.Sprintf("bad-count-%d", len(ms))
		}
		mod := ms[0].Start % period
		for _, m := range ms {
			if m.Rule != 0 || m.Start%period != mod {
				return "blend"
			}
		}
		switch mod {
		case 0:
			return "alpha"
		case 7:
			return "omega"
		}
		return "blend"
	}

	var alphaGen, omegaGen atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms, err := c.Scan(payload)
				if err != nil {
					t.Errorf("scan during reload: %v", err)
					return
				}
				sortMatches(ms)
				switch classify(ms) {
				case "alpha":
					alphaGen.Add(1)
				case "omega":
					omegaGen.Add(1)
				default:
					t.Errorf("response is not one generation's result: %s (%d matches)", classify(ms), len(ms))
					return
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	rc := dial(t, addr)
	gen, n, err := rc.Reload("omega[0-9]\n")
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if gen != 1 || n != 1 {
		t.Fatalf("Reload = gen %d, %d rules; want 1, 1", gen, n)
	}
	// No stale-dispatch window: from the ack on, the new generation's
	// literal automaton must be serving. A leftover alpha prefilter
	// would skip every window of this omega-only payload.
	omegaOnly := []byte(strings.Repeat("omega7 ......... ", 20))
	for i := 0; i < 20; i++ {
		ms, err := rc.Scan(omegaOnly)
		if err != nil {
			t.Fatalf("post-reload scan %d: %v", i, err)
		}
		if len(ms) != 20 {
			t.Fatalf("post-reload scan %d: %d matches, want 20 (stale prefilter suppressed the new rule?)", i, len(ms))
		}
	}
	// And the old literal must no longer dispatch anything.
	if ms, err := rc.Scan([]byte(strings.Repeat("alpha7 ", 20))); err != nil || len(ms) != 0 {
		t.Fatalf("old generation still matching after reload: %d matches, err %v", len(ms), err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	if alphaGen.Load() == 0 || omegaGen.Load() == 0 {
		t.Logf("generation mix: %d alpha, %d omega (timing-dependent)", alphaGen.Load(), omegaGen.Load())
	}
	info, err := rc.RulesInfo()
	if err != nil {
		t.Fatalf("RulesInfo: %v", err)
	}
	if info.Generation != 1 || len(info.Patterns) != 1 || info.Patterns[0] != "omega[0-9]" {
		t.Fatalf("RulesInfo = %+v", info)
	}
}
