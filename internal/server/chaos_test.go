// Chaos e2e: real servers behind deterministic netchaos proxies, a
// failover Pool in front, and the acceptance invariants of the
// resilience layer: every successful response is byte-identical to a
// direct RuleSet scan, the retry budget hides resets/truncations/a
// dead backend completely, circuit breakers open under the dead
// backend and close again after it revives, and nothing leaks.
//
// Every random decision — proxy jitter, scenario assignment, backoff
// schedules — derives from chaosSeed, printed on entry so a failing
// run can be replayed.
package server_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/faultinject/netchaos"
	"alveare/internal/metrics"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

const chaosSeed int64 = 20260806

// directMatches computes the ground truth the chaos runs are compared
// against: the matches a direct RuleSet scan produces, sorted, plus
// their canonical wire encoding.
func directMatches(t *testing.T, rules []string, payload []byte) ([]server.RuleMatch, []byte) {
	t.Helper()
	rs, err := core.NewRuleSet(rules, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []server.RuleMatch
	if _, err := rs.ScanReaderCtx(context.Background(), bytes.NewReader(payload),
		func(rule int, m core.Match, _ []byte) bool {
			want = append(want, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
			return true
		}); err != nil {
		t.Fatal(err)
	}
	sortMatches(want)
	if len(want) == 0 {
		t.Fatal("chaos ground truth is empty; the test would prove nothing")
	}
	return want, server.EncodeMatches(want)
}

// TestChaosPoolEndToEnd runs the same seeded chaos scenario twice; the
// outcome — 100% of idempotent requests completed within the retry
// budget, byte-identical to direct scans, breaker opened and recovered
// — must hold on both runs.
func TestChaosPoolEndToEnd(t *testing.T) {
	for _, run := range []string{"run-a", "run-b"} {
		t.Run(run, func(t *testing.T) { chaosPoolRun(t) })
	}
}

func chaosPoolRun(t *testing.T) {
	t.Cleanup(leakCheck(t))
	t.Logf("chaos seed %d (edit chaosSeed to replay a variant)", chaosSeed)

	rules := []string{"ab+c", "needle", "x.z"}
	payload := bytes.Repeat([]byte("..abc..needle..xyz..abbbbc.."), 50)
	want, wantBytes := directMatches(t, rules, payload)

	// Three real servers; the full response frame is ~4KiB, so the
	// reset and truncation offsets below land mid-frame.
	var addrs []string
	for i := 0; i < 3; i++ {
		_, addr := startServer(t, server.Config{Rules: rules, Workers: 2})
		addrs = append(addrs, addr)
	}

	// Backend A: first connection dies with a reset 900 bytes into a
	// response, later ones suffer latency+jitter. Backend B: dead until
	// revived below. Backend C: first connection's response is
	// truncated mid-frame, later ones are clean.
	reset := netchaos.NewScenario("reset-midframe")
	reset.ResetAfter = 900
	lat := netchaos.NewScenario("latency")
	lat.Latency = 200 * time.Microsecond
	lat.Jitter = 300 * time.Microsecond
	trunc := netchaos.NewScenario("trunc-midframe")
	trunc.TruncateAfter = 700

	pA, err := netchaos.New(addrs[0], chaosSeed, []netchaos.Scenario{reset, lat})
	if err != nil {
		t.Fatal(err)
	}
	defer pA.Close()
	pB, err := netchaos.New(addrs[1], chaosSeed+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pB.Close()
	pB.SetDown(true)
	pC, err := netchaos.New(addrs[2], chaosSeed+2, []netchaos.Scenario{trunc, netchaos.NewScenario("clean")})
	if err != nil {
		t.Fatal(err)
	}
	defer pC.Close()

	reg := metrics.New()
	pool, err := client.NewPool([]string{pA.Addr(), pB.Addr(), pC.Addr()},
		client.PoolSeed(chaosSeed),
		// One mid-frame reset fails every request pipelined on that
		// connection at once, so the failure threshold must exceed the
		// worst-case in-flight batch (4 goroutines) or a single fault
		// would open a live backend's breaker; and the cooldown must sit
		// well inside the cumulative backoff span so a request can
		// outwait an all-breakers-open moment within its budget.
		client.PoolRetries(10),
		client.PoolBackoff(time.Millisecond, 40*time.Millisecond),
		client.PoolAttemptTimeout(2*time.Second),
		client.PoolBreaker(5, 30*time.Millisecond),
		client.PoolMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Soak: concurrent idempotent traffic through the chaos. Every
	// request must succeed within the retry budget, and every SCAN
	// response must encode to exactly the direct scan's bytes — no
	// silent loss, duplication, or corruption survives.
	const goroutines, perG = 4, 15
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if (g+i)%3 == 0 {
					n, err := pool.Count(payload)
					if err != nil {
						errCh <- fmt.Errorf("seed %d: count (g%d,i%d): %w", chaosSeed, g, i, err)
						continue
					}
					if n != uint64(len(want)) {
						errCh <- fmt.Errorf("seed %d: count (g%d,i%d) = %d, want %d", chaosSeed, g, i, n, len(want))
					}
					continue
				}
				got, err := pool.Scan(payload)
				if err != nil {
					errCh <- fmt.Errorf("seed %d: scan (g%d,i%d): %w", chaosSeed, g, i, err)
					continue
				}
				sortMatches(got)
				if !bytes.Equal(server.EncodeMatches(got), wantBytes) {
					errCh <- fmt.Errorf("seed %d: scan (g%d,i%d): response not byte-identical to direct scan", chaosSeed, g, i)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	failed := 0
	for err := range errCh {
		failed++
		t.Error(err)
	}
	if failed > 0 {
		t.Fatalf("seed %d: %d/%d requests failed; want 100%% completion within the retry budget",
			chaosSeed, failed, goroutines*perG)
	}

	// The faults were real: retries happened, and the dead backend's
	// breaker is open (or mid-probe), never closed.
	snap := pool.MetricsSnapshot()
	if snap.Get("client.retries") == 0 {
		t.Errorf("seed %d: no retries recorded; the chaos injected nothing", chaosSeed)
	}
	if snap.Get("client.breaker.transitions") == 0 {
		t.Errorf("seed %d: no breaker transitions under a dead backend", chaosSeed)
	}
	if st := pool.States()[1]; st == client.BreakerClosed {
		t.Fatalf("seed %d: dead backend's breaker is closed (gauge %d)",
			chaosSeed, snap.Get("client.backend.1.breaker_state"))
	}

	// Revive backend B; request-path probes must walk the breaker
	// half-open → closed without operator intervention.
	pB.SetDown(false)
	deadline := time.Now().Add(10 * time.Second)
	for pool.States()[1] != client.BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: breaker never closed after revival (state %v)", chaosSeed, pool.States()[1])
		}
		pool.Ping()
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		got, err := pool.Scan(payload)
		if err != nil {
			t.Fatalf("seed %d: scan %d after revival: %v", chaosSeed, i, err)
		}
		sortMatches(got)
		if !bytes.Equal(server.EncodeMatches(got), wantBytes) {
			t.Fatalf("seed %d: post-revival response not byte-identical", chaosSeed)
		}
	}

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	// leakCheck (cleanup) verifies the pool, proxies and servers left
	// no goroutines behind.
}

// TestServerDrainWithMidFrameResets: clients that die mid-frame with a
// hard RST — the chaos proxy's signature move — must not wedge a
// graceful drain.
func TestServerDrainWithMidFrameResets(t *testing.T) {
	t.Cleanup(leakCheck(t))
	srv, addr := startServer(t, server.Config{Rules: []string{"abc"}})

	// A valid header promising a 100-byte body, followed by only 30
	// bytes and a reset; plus one straggler that just goes quiet.
	partial := make([]byte, 9+30)
	binary.BigEndian.PutUint32(partial[0:4], 5+100)
	partial[4] = server.OpScan
	binary.BigEndian.PutUint32(partial[5:9], 1)
	for i := 0; i < 5; i++ {
		nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(partial); err != nil {
			t.Fatal(err)
		}
		if i < 4 {
			nc.(*net.TCPConn).SetLinger(0) // RST, not FIN
			nc.Close()
		} else {
			defer nc.Close() // mid-frame and silent: drain must not wait for it
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with mid-frame resets: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("drain took %v; resets must not stall shutdown", d)
	}
}

// oneConnListener serves exactly one pre-made connection — the harness
// for driving a Server over a net.Pipe, whose unbuffered writes make
// a non-reading client block the server instantly.
type oneConnListener struct {
	mu     sync.Mutex
	c      net.Conn
	served bool
	done   chan struct{}
	once   sync.Once
}

func newOneConnListener(c net.Conn) *oneConnListener {
	return &oneConnListener{c: c, done: make(chan struct{})}
}

func (l *oneConnListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if !l.served {
		l.served = true
		c := l.c
		l.mu.Unlock()
		return c, nil
	}
	l.mu.Unlock()
	<-l.done
	return nil, net.ErrClosed
}

func (l *oneConnListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *oneConnListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// TestWriteTimeoutUnwedgesBlackholedClient: a client that sends a
// request and then never reads (a blackholed peer) must not hold a
// response write — and therefore a drain — hostage; the write
// deadline breaks the connection instead.
func TestWriteTimeoutUnwedgesBlackholedClient(t *testing.T) {
	t.Cleanup(leakCheck(t))
	cli, srvEnd := net.Pipe()
	defer cli.Close()

	srv, err := server.New(server.Config{
		Rules:        []string{"abc"},
		Workers:      1,
		WriteTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln := newOneConnListener(srvEnd)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// One PING the server will answer into the unbuffered pipe; we
	// never read, so the PONG write blocks the reader goroutine until
	// the write deadline kills the connection. The pipe is synchronous,
	// so once our write returns the server has consumed the request.
	if err := server.WriteFrame(cli, server.Frame{Op: server.OpPing, ID: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server reach the blocked PONG write

	// Without the write deadline this drain would wedge on the stuck
	// writer until the 5s context force-closed everything; with it, the
	// connection dies at ~WriteTimeout and the drain finishes cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown wedged behind a blackholed client: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("drain took %v; the write timeout should have freed it in ~100ms", d)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
