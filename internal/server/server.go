// The scan service: a TCP listener speaking the framed protocol, a
// bounded admission queue feeding a worker pool, rule hot-reload by
// atomic snapshot swap, and graceful drain.
//
// Admission control and backpressure: every connection reader parses
// frames under a read deadline and a frame-size cap, answers the cheap
// control requests (PING, RULES-INFO, STATS) inline, and hands scan
// work to a bounded queue. A full queue yields an immediate SHED
// response — the client learns it must back off; the server never
// buffers unbounded work or blocks its readers. Workers execute scans
// under the configured guardrail policy and per-request timeout, so
// one adversarial payload cannot wedge a worker (the runaway trips the
// cycle budget, the policy contains it, the worker moves on).
//
// Drain: Shutdown stops the accept loop, wakes every connection
// reader, lets each connection's in-flight responses complete, then
// retires the workers. No request that was admitted is dropped; no
// goroutine outlives the drain (the leak-check tests pin this).
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"alveare/internal/arch"
	"alveare/internal/core"
	"alveare/internal/metrics"
)

// faultDrainTimeout bounds how long a reader spends discarding the
// peer's leftover bytes after a framing fault before closing.
const faultDrainTimeout = 500 * time.Millisecond

// Config parameterises a Server. Zero values select the defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe (e.g. ":7171").
	Addr string
	// Rules is the initial rule database (generation 0); required.
	Rules []string

	// Workers is the service worker-pool width (default GOMAXPROCS).
	// Each worker executes one admitted request at a time; the RuleSet
	// underneath fans one request's rules out over its own bounded pool
	// of recycled cores.
	Workers int
	// QueueDepth bounds the admission queue (default 128). A request
	// arriving while the queue is full is answered with SHED.
	QueueDepth int
	// MaxFrame bounds one request frame (default DefaultMaxFrame);
	// larger frames are rejected before their body is buffered.
	MaxFrame int
	// ReadTimeout is the per-frame read deadline (default 30s): an idle
	// connection is closed after this long without a complete frame.
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 30s): a
	// client that stops reading (a blackholed peer, a dead NAT entry)
	// fails its connection instead of wedging a reader or worker in a
	// blocked write — which would otherwise stall a graceful drain
	// forever. Negative disables the deadline.
	WriteTimeout time.Duration
	// RequestTimeout bounds one scan's execution, queue wait excluded
	// (default 0: unbounded). An expired request is answered with an
	// ERROR frame carrying the deadline cause.
	RequestTimeout time.Duration

	// Policy is the guardrail containment for runaway scans (default
	// FailFast); Budget caps the speculative cycle budget per attempt
	// (0 = effectively unbounded), exactly as the tools' -policy and
	// -budget flags.
	Policy core.Policy
	Budget int64
	// RuleWorkers bounds each request's rule-level fan-out inside the
	// RuleSet (default GOMAXPROCS).
	RuleWorkers int

	// NoDFA disables the hybrid fast path (lazy-DFA probe gates plus
	// the cross-rule literal prefilter), which the server enables by
	// default — the tools' -no-dfa escape hatch. Results are
	// byte-identical either way; only the cost model changes. The
	// prefilter lives inside the compiled snapshot, so RELOAD swaps it
	// atomically with the rules.
	NoDFA bool

	// NoApprox disables the over-approximating admission stage
	// (internal/approx), which the server enables by default — the
	// tools' -no-approx escape hatch. The filter only ever proves match
	// absence, so results are byte-identical either way; like the
	// prefilter it lives inside the compiled snapshot, and RELOAD
	// rebuilds it for the new rules and swaps it atomically.
	NoApprox bool
	// ApproxStates bounds the admission automaton's DFA state budget
	// (0 = the default of 256, also the maximum). Smaller budgets
	// coarsen the filter — more windows admitted — but never change
	// results.
	ApproxStates int

	// PatternCache is the LRU capacity for ad-hoc SCAN-PATTERN engines
	// (default 64; negative disables caching).
	PatternCache int

	// MaxSessions bounds the open streaming sessions (default 256). A
	// SESSION-OPEN past the bound is answered with SHED — each session
	// holds an overlap tail resident, so the bound is a memory cap.
	MaxSessions int
	// SessionIdleTimeout reaps sessions with no traffic for this long
	// (default 60s); a reaped id answers ERROR unknown-session.
	SessionIdleTimeout time.Duration
	// SessionPending bounds one session's admitted-but-unexecuted
	// frames (default 8). A frame past the bound is answered with SHED;
	// it was not absorbed, so resending the same chunk is safe.
	SessionPending int

	// Registry receives the server's metrics; nil allocates a private
	// one (exposed by MetricsSnapshot and the STATS endpoint).
	Registry *metrics.Registry

	// ScanHook, when set, runs at the start of every admitted request's
	// execution — a test seam for making workers observably slow.
	ScanHook func()
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.PatternCache == 0 {
		c.PatternCache = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = 60 * time.Second
	}
	if c.SessionPending <= 0 {
		c.SessionPending = 8
	}
	return c
}

// Server is one scan service instance.
type Server struct {
	cfg  Config
	opts []core.Option

	snap   atomic.Pointer[snapshot]
	cache  *programCache
	reg    *metrics.Registry
	met    serverMetrics
	reload sync.Mutex // serialises Reload's compile-and-swap

	queue  chan *job
	qdepth atomic.Int64

	sessMu   sync.Mutex
	sessions map[uint64]*session
	sessNext uint64
	sessStop chan struct{} // closed when the drain begins; stops the reaper

	baseCtx context.Context
	abort   context.CancelFunc // hard stop: cancels in-flight scans

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	closed   bool

	stopOnce  sync.Once
	stopped   chan struct{} // closed once the drain completes
	wgConns   sync.WaitGroup
	wgWorkers sync.WaitGroup
}

// job is one admitted request awaiting a worker. Session frames carry
// their session; a runner job (no frame of its own) drains one
// session's FIFO in arrival order.
type job struct {
	c        *conn
	f        Frame
	admitted time.Time
	sess     *session
	runner   bool
}

// conn is one accepted connection: frames are read by its reader
// goroutine and responses written by workers under the write mutex, so
// pipelined requests from one client interleave safely.
type conn struct {
	nc      net.Conn
	wmu     sync.Mutex
	pending sync.WaitGroup // admitted jobs not yet answered
	broken  atomic.Bool    // a response write failed; drop the rest
}

// endpointMetrics is one request type's counter block.
type endpointMetrics struct {
	requests *metrics.Counter
	bytes    *metrics.Counter
	latency  *metrics.Histogram
}

// serverMetrics resolves every metric handle once, at construction, so
// the request path touches only atomics.
type serverMetrics struct {
	scan, count, pattern, ping, info, reload, stats endpointMetrics
	batch, sessData                                 endpointMetrics

	batchItems   *metrics.Counter
	sessOpens    *metrics.Counter
	sessRestores *metrics.Counter
	sessCloses   *metrics.Counter
	sessReaped   *metrics.Counter
	sessActive   *metrics.Gauge

	matches    *metrics.Counter
	shed       *metrics.Counter
	errs       *metrics.Counter
	bytesIn    *metrics.Counter
	bytesOut   *metrics.Counter
	connsOpen  *metrics.Gauge
	connsTotal *metrics.Counter
	queueDepth *metrics.Gauge
	queueHigh  *metrics.Gauge
	reloads    *metrics.Counter
	generation *metrics.Gauge
}

func newEndpoint(r *metrics.Registry, name string) endpointMetrics {
	return endpointMetrics{
		requests: r.Counter("server." + name + ".requests"),
		bytes:    r.Counter("server." + name + ".bytes"),
		latency:  r.Histogram("server." + name + ".latency_us"),
	}
}

func resolveMetrics(r *metrics.Registry) serverMetrics {
	return serverMetrics{
		scan:         newEndpoint(r, "scan"),
		count:        newEndpoint(r, "count"),
		pattern:      newEndpoint(r, "pattern"),
		ping:         newEndpoint(r, "ping"),
		info:         newEndpoint(r, "info"),
		reload:       newEndpoint(r, "reload"),
		stats:        newEndpoint(r, "stats"),
		batch:        newEndpoint(r, "batch"),
		sessData:     newEndpoint(r, "session.data"),
		batchItems:   r.Counter("server.batch.items"),
		sessOpens:    r.Counter("server.session.opens"),
		sessRestores: r.Counter("server.session.restores"),
		sessCloses:   r.Counter("server.session.closes"),
		sessReaped:   r.Counter("server.session.reaped"),
		sessActive:   r.Gauge("server.session.active"),
		matches:      r.Counter("server.matches"),
		shed:         r.Counter("server.shed"),
		errs:         r.Counter("server.errors"),
		bytesIn:      r.Counter("server.bytes.in"),
		bytesOut:     r.Counter("server.bytes.out"),
		connsOpen:    r.Gauge("server.conns.open"),
		connsTotal:   r.Counter("server.conns.total"),
		queueDepth:   r.Gauge("server.queue.depth"),
		queueHigh:    r.Gauge("server.queue.highwater"),
		reloads:      r.Counter("server.reloads"),
		generation:   r.Gauge("server.generation"),
	}
}

// New compiles the initial rule snapshot and builds the service. The
// server does not listen until Serve or ListenAndServe.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	opts := []core.Option{
		core.WithPolicy(cfg.Policy),
		core.WithBudget(cfg.Budget),
		core.WithWorkers(cfg.RuleWorkers),
	}
	if !cfg.NoDFA {
		opts = append(opts, core.WithDFA())
	}
	if !cfg.NoApprox {
		opts = append(opts, core.WithApprox())
	}
	if cfg.ApproxStates > 0 {
		opts = append(opts, core.WithApproxStates(cfg.ApproxStates))
	}
	snap, err := compileSnapshot(cfg.Rules, 0, opts)
	if err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		opts:     opts,
		cache:    newProgramCache(cfg.PatternCache),
		reg:      reg,
		met:      resolveMetrics(reg),
		queue:    make(chan *job, cfg.QueueDepth),
		baseCtx:  ctx,
		abort:    cancel,
		conns:    map[*conn]struct{}{},
		sessions: map[uint64]*session{},
		sessStop: make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	s.snap.Store(snap)
	s.met.generation.Set(0)
	return s, nil
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown/Close.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener's address (the resolved port for ":0"
// listeners), or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve runs the accept loop on ln until Shutdown or Close; it owns
// the listener. The error is nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for i := 0; i < s.cfg.Workers; i++ {
		s.wgWorkers.Add(1)
		go s.worker()
	}
	s.wgWorkers.Add(1)
	go s.sessionReaper()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		c := &conn{nc: nc}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.met.connsTotal.Inc()
		s.met.connsOpen.Set(int64(s.openConns()))
		s.wgConns.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) openConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Reload compiles patterns into a fresh snapshot and swaps it live.
// In-flight requests finish on the snapshot they started with; the
// swap is atomic, so no request ever observes a partial rule set. The
// new generation number is returned; a compile failure leaves the
// serving snapshot untouched.
func (s *Server) Reload(patterns []string) (uint32, error) {
	s.reload.Lock()
	defer s.reload.Unlock()
	gen := s.snap.Load().generation + 1
	snap, err := compileSnapshot(patterns, gen, s.opts)
	if err != nil {
		return 0, err
	}
	s.snap.Store(snap)
	s.met.reloads.Inc()
	s.met.generation.Set(int64(gen))
	return gen, nil
}

// Info describes the currently serving snapshot.
func (s *Server) Info() Info {
	snap := s.snap.Load()
	return Info{Generation: snap.generation, Patterns: append([]string(nil), snap.patterns...)}
}

// MetricsSnapshot publishes the serving rule set's scan roll-up and
// the pattern-cache counters into the server registry and returns the
// deterministic snapshot — the body of the STATS response and what
// alvearesrv's -metrics flag flushes on exit.
func (s *Server) MetricsSnapshot() *metrics.Snapshot {
	snap := s.snap.Load()
	snap.rules.PublishMetrics(s.reg)
	hits, misses := s.cache.stats()
	s.reg.Counter("server.cache.hits").Store(hits)
	s.reg.Counter("server.cache.misses").Store(misses)
	return s.reg.Snapshot()
}

// Shutdown drains the service: the listener closes, connection readers
// wake and stop parsing new requests, every admitted request's
// response is written, then workers retire. It returns nil on a clean
// drain, or ctx's error after escalating to a hard Close when ctx
// expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	for _, c := range s.beginStop() {
		// Wake every blocked reader; each drains its own pending
		// responses before closing its socket.
		c.nc.SetReadDeadline(time.Now())
	}
	s.ensureDrainLoop()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		s.Close()
		return ctx.Err()
	}
}

// Close stops the service immediately: in-flight scans are cancelled,
// connections closed. Prefer Shutdown.
func (s *Server) Close() error {
	conns := s.beginStop()
	s.abort() // cancel in-flight scans
	for _, c := range conns {
		c.broken.Store(true)
		c.nc.Close()
	}
	s.ensureDrainLoop()
	<-s.stopped
	return nil
}

// beginStop flips the server into draining, closes the listener, and
// returns the open connections (idempotent; later calls return the
// still-open set).
func (s *Server) beginStop() []*conn {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	return conns
}

// ensureDrainLoop runs the terminal drain exactly once: wait for the
// readers (the queue's only producers), close the queue, wait for the
// workers, then mark the server stopped.
func (s *Server) ensureDrainLoop() {
	s.stopOnce.Do(func() {
		go func() {
			close(s.sessStop)
			s.wgConns.Wait()
			close(s.queue)
			s.wgWorkers.Wait()
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
			s.abort()
			close(s.stopped)
		}()
	})
}

// isDraining reports whether Shutdown or Close has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// serveConn is one connection's reader loop: parse a frame, answer
// control requests inline, admit scan work to the queue. On exit it
// waits for the connection's admitted jobs to be answered, then closes
// the socket.
func (s *Server) serveConn(c *conn) {
	defer s.wgConns.Done()
	defer func() {
		c.pending.Wait()
		// Every admitted frame is answered; now reap the connection's
		// streaming sessions — their owner is gone, so their ids are
		// dead (a reconnecting client must re-open and replay).
		s.closeConnSessions(c)
		c.nc.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.met.connsOpen.Set(int64(s.openConns()))
	}()

	for {
		if s.isDraining() {
			return
		}
		c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		f, err := ReadFrame(c.nc, s.cfg.MaxFrame)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				return // clean close
			case errors.Is(err, os.ErrDeadlineExceeded):
				return // drain wake-up or idle timeout
			case errors.Is(err, ErrFrameTooLarge), errors.Is(err, ErrMalformedFrame):
				// The stream cannot be resynchronised after a framing
				// fault; report and close. Closing with bytes of the bad
				// frame still unread would turn into a TCP RST that can
				// destroy the queued ERROR before the client reads it, so
				// half-close and briefly drain the peer first (the same
				// dance net/http does when rejecting a request early).
				s.met.errs.Inc()
				s.writeFrame(c, Frame{Op: OpError, Body: EncodeError(ErrCodeBadFrame, err.Error())})
				if tc, ok := c.nc.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				c.nc.SetReadDeadline(time.Now().Add(faultDrainTimeout))
				io.Copy(io.Discard, io.LimitReader(c.nc, int64(s.cfg.MaxFrame)))
				return
			default:
				return
			}
		}
		s.met.bytesIn.Add(int64(frameHeader + len(f.Body)))
		s.dispatch(c, f)
	}
}

// dispatch routes one parsed request: control requests answer inline
// on the reader goroutine (they never block on scan work); scan
// requests pass admission control into the bounded queue.
func (s *Server) dispatch(c *conn, f Frame) {
	start := time.Now()
	switch f.Op {
	case OpPing:
		s.met.ping.requests.Inc()
		s.writeFrame(c, Frame{Op: OpPong, ID: f.ID})
		s.met.ping.latency.Observe(time.Since(start).Microseconds())
	case OpRulesInfo:
		s.met.info.requests.Inc()
		body, err := EncodeInfo(s.Info())
		if err != nil {
			s.replyErr(c, f.ID, ErrCodeBadFrame, err)
			return
		}
		s.writeFrame(c, Frame{Op: OpInfo, ID: f.ID, Body: body})
		s.met.info.latency.Observe(time.Since(start).Microseconds())
	case OpStats:
		s.met.stats.requests.Inc()
		var buf bytes.Buffer
		if err := s.MetricsSnapshot().WriteJSON(&buf); err != nil {
			s.replyErr(c, f.ID, ErrCodeScan, err)
			return
		}
		s.writeFrame(c, Frame{Op: OpStatsResp, ID: f.ID, Body: buf.Bytes()})
		s.met.stats.latency.Observe(time.Since(start).Microseconds())
	case OpSessionData, OpSessionClose:
		// Session frames must execute in arrival order, one at a time:
		// they join the session's FIFO, not the queue directly.
		if s.isDraining() {
			s.replyErr(c, f.ID, ErrCodeDraining, errors.New("server draining"))
			return
		}
		s.dispatchSession(c, f, start)
	case OpScan, OpCount, OpScanPattern, OpReload, OpScanBatch, OpSessionOpen, OpSessionRestore:
		if s.isDraining() {
			s.replyErr(c, f.ID, ErrCodeDraining, errors.New("server draining"))
			return
		}
		j := &job{c: c, f: f, admitted: start}
		c.pending.Add(1)
		select {
		case s.queue <- j:
			d := s.qdepth.Add(1)
			s.met.queueDepth.Set(d)
			s.met.queueHigh.Max(d)
		default:
			// Queue full: shed immediately, never block the reader.
			c.pending.Done()
			s.met.shed.Inc()
			s.writeFrame(c, Frame{Op: OpShed, ID: f.ID})
		}
	default:
		s.met.errs.Inc()
		s.writeFrame(c, Frame{Op: OpError, ID: f.ID,
			Body: EncodeError(ErrCodeBadFrame, "unknown opcode "+OpName(f.Op))})
	}
}

// worker executes admitted requests until the queue closes.
func (s *Server) worker() {
	defer s.wgWorkers.Done()
	for j := range s.queue {
		s.met.queueDepth.Set(s.qdepth.Add(-1))
		if j.runner {
			s.runSession(j.sess)
		} else {
			s.execute(j)
		}
		j.c.pending.Done()
	}
}

// execute runs one admitted request under the per-request timeout and
// writes its response.
func (s *Server) execute(j *job) {
	if s.cfg.ScanHook != nil {
		s.cfg.ScanHook()
	}
	ctx := s.baseCtx
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	switch j.f.Op {
	case OpScan:
		s.met.scan.requests.Inc()
		s.met.scan.bytes.Add(int64(len(j.f.Body)))
		ms, err := s.scanSnapshot(ctx, j.f.Body)
		if err != nil {
			s.replyErr(j.c, j.f.ID, ErrCodeScan, err)
			break
		}
		s.met.matches.Add(int64(len(ms)))
		s.writeFrame(j.c, Frame{Op: OpMatches, ID: j.f.ID, Body: EncodeMatches(ms)})
		s.met.scan.latency.Observe(time.Since(j.admitted).Microseconds())
	case OpCount:
		s.met.count.requests.Inc()
		s.met.count.bytes.Add(int64(len(j.f.Body)))
		ms, err := s.scanSnapshot(ctx, j.f.Body)
		if err != nil {
			s.replyErr(j.c, j.f.ID, ErrCodeScan, err)
			break
		}
		s.met.matches.Add(int64(len(ms)))
		s.writeFrame(j.c, Frame{Op: OpCountResp, ID: j.f.ID, Body: EncodeCount(uint64(len(ms)))})
		s.met.count.latency.Observe(time.Since(j.admitted).Microseconds())
	case OpScanPattern:
		s.met.pattern.requests.Inc()
		pattern, payload, err := DecodeScanPattern(j.f.Body)
		if err != nil {
			s.replyErr(j.c, j.f.ID, ErrCodeBadFrame, err)
			break
		}
		s.met.pattern.bytes.Add(int64(len(payload)))
		ms, err := s.scanPattern(ctx, pattern, payload)
		if err != nil {
			code := ErrCodeScan
			if !isScanFailure(err) {
				code = ErrCodeCompile
			}
			s.replyErr(j.c, j.f.ID, code, err)
			break
		}
		s.met.matches.Add(int64(len(ms)))
		s.writeFrame(j.c, Frame{Op: OpMatches, ID: j.f.ID, Body: EncodeMatches(ms)})
		s.met.pattern.latency.Observe(time.Since(j.admitted).Microseconds())
	case OpReload:
		s.met.reload.requests.Inc()
		rules := ParseRules(string(j.f.Body))
		gen, err := s.Reload(rules)
		if err != nil {
			s.replyErr(j.c, j.f.ID, ErrCodeCompile, err)
			break
		}
		s.writeFrame(j.c, Frame{Op: OpReloadOK, ID: j.f.ID, Body: EncodeReloadOK(gen, uint32(len(rules)))})
		s.met.reload.latency.Observe(time.Since(j.admitted).Microseconds())
	case OpScanBatch:
		s.executeBatch(ctx, j)
	case OpSessionOpen:
		s.openSession(j)
	case OpSessionRestore:
		s.restoreSession(j)
	}
}

// scanSnapshot runs the serving rule set over payload. The snapshot is
// captured once, so a concurrent Reload never splits one request
// across two rule-set generations.
func (s *Server) scanSnapshot(ctx context.Context, payload []byte) ([]RuleMatch, error) {
	return scanRules(ctx, s.snap.Load(), payload)
}

// scanPattern runs one ad-hoc pattern over payload through the LRU
// compiled-engine cache.
func (s *Server) scanPattern(ctx context.Context, pattern string, payload []byte) ([]RuleMatch, error) {
	eng, cached, err := s.cache.get(pattern, s.opts)
	if err != nil {
		return nil, err
	}
	found, err := eng.FindAllCtx(ctx, payload)
	s.cache.put(pattern, eng, cached)
	if err != nil {
		return nil, err
	}
	var ms []RuleMatch
	for _, m := range found {
		ms = append(ms, RuleMatch{Rule: 0, Start: uint64(m.Start), End: uint64(m.End)})
	}
	return ms, nil
}

// isScanFailure reports whether err arose from scan execution (as
// opposed to pattern compilation).
func isScanFailure(err error) bool {
	var se *core.ScanError
	var ee *arch.ExecError
	return errors.As(err, &se) || errors.As(err, &ee) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// replyErr writes an ERROR response and counts it.
func (s *Server) replyErr(c *conn, id uint32, code byte, err error) {
	s.met.errs.Inc()
	s.writeFrame(c, Frame{Op: OpError, ID: id, Body: EncodeError(code, err.Error())})
}

// writeFrame serialises one response under the connection's write
// mutex. A connection whose write failed is marked broken and closed;
// later responses for it are dropped (their requests were answered as
// far as the dead peer is concerned).
func (s *Server) writeFrame(c *conn, f Frame) {
	if c.broken.Load() {
		return
	}
	c.wmu.Lock()
	if s.cfg.WriteTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	err := WriteFrame(c.nc, f)
	c.wmu.Unlock()
	if err != nil {
		if c.broken.CompareAndSwap(false, true) {
			c.nc.Close()
		}
		return
	}
	s.met.bytesOut.Add(int64(frameHeader + len(f.Body)))
}
