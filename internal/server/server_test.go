package server_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// leakCheck snapshots the goroutine count; the returned func asserts
// the count returned to it (same discipline as the repo-level fault
// matrix tests — the server's accept/worker/drain goroutines must not
// outlive Shutdown).
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		for i := 0; i < 100; i++ {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// startServer builds a server on a loopback port and returns it with
// its address. Cleanup shuts it down and waits for Serve to return.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func sortMatches(ms []server.RuleMatch) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Rule != ms[b].Rule {
			return ms[a].Rule < ms[b].Rule
		}
		return ms[a].Start < ms[b].Start
	})
}

// TestServerScanMatchesDirect pins the acceptance invariant: a scan
// through the service returns exactly the matches a direct RuleSet
// scan of the same rules over the same payload produces.
func TestServerScanMatchesDirect(t *testing.T) {
	rules := []string{"ab+c", "needle", "x.z"}
	payload := []byte(strings.Repeat("..abc..needle..xyz..abbbbc..", 50))

	_, addr := startServer(t, server.Config{Rules: rules})
	c := dial(t, addr)
	got, err := c.Scan(payload)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}

	rs, err := core.NewRuleSet(rules, backend.Options{})
	if err != nil {
		t.Fatalf("NewRuleSet: %v", err)
	}
	var want []server.RuleMatch
	if _, err := rs.ScanReaderCtx(context.Background(), bytes.NewReader(payload),
		func(rule int, m core.Match, _ []byte) bool {
			want = append(want, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
			return true
		}); err != nil {
		t.Fatalf("ScanReaderCtx: %v", err)
	}

	sortMatches(got)
	sortMatches(want)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("match count: server %d, direct %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: server %+v, direct %+v", i, got[i], want[i])
		}
	}

	// COUNT over the same payload agrees with the match list.
	n, err := c.Count(payload)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if n != uint64(len(want)) {
		t.Fatalf("Count = %d, want %d", n, len(want))
	}
}

// TestServerHotReloadMidTraffic swaps the rule set while scans are in
// flight and asserts every response is internally consistent: it is
// exactly the result of one generation's rule set — never empty, never
// a blend of both.
func TestServerHotReloadMidTraffic(t *testing.T) {
	t.Cleanup(leakCheck(t))
	payload := []byte(strings.Repeat(" foo bar ", 20))
	oldWant := 20 // rule 0 = foo
	newWant := 40 // rule 0 = foo, rule 1 = bar

	_, addr := startServer(t, server.Config{Rules: []string{"foo"}, Workers: 4})

	var wg sync.WaitGroup
	var oldGen, newGen, bad atomic.Int64
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms, err := c.Scan(payload)
				if err != nil {
					t.Errorf("Scan during reload: %v", err)
					return
				}
				switch len(ms) {
				case oldWant:
					oldGen.Add(1)
				case newWant:
					newGen.Add(1)
				default:
					bad.Add(1)
					t.Errorf("scan saw %d matches, want %d or %d", len(ms), oldWant, newWant)
				}
			}
		}()
	}

	// Let traffic build, then hot-swap mid-stream via the protocol.
	time.Sleep(20 * time.Millisecond)
	rc := dial(t, addr)
	gen, n, err := rc.Reload("foo\nbar\n")
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if gen != 1 || n != 2 {
		t.Fatalf("Reload = gen %d, %d rules; want 1, 2", gen, n)
	}
	// Scans issued after the reload response must see the new rules.
	ms, err := rc.Scan(payload)
	if err != nil {
		t.Fatalf("post-reload Scan: %v", err)
	}
	if len(ms) != newWant {
		t.Fatalf("post-reload scan saw %d matches, want %d", len(ms), newWant)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	if bad.Load() > 0 {
		t.Fatalf("%d responses blended generations", bad.Load())
	}
	if oldGen.Load() == 0 || newGen.Load() == 0 {
		t.Logf("generation mix: %d old, %d new (timing-dependent)", oldGen.Load(), newGen.Load())
	}
	info, err := rc.RulesInfo()
	if err != nil {
		t.Fatalf("RulesInfo: %v", err)
	}
	if info.Generation != 1 || len(info.Patterns) != 2 || info.Patterns[1] != "bar" {
		t.Fatalf("RulesInfo = %+v", info)
	}
}

// TestServerShedsWhenQueueFull wedges the single worker and overflows
// the one-deep queue: the surplus requests must come back SHED
// immediately — not hang, not queue unboundedly — and the wedged
// requests must still complete once the worker resumes.
func TestServerShedsWhenQueueFull(t *testing.T) {
	t.Cleanup(leakCheck(t))
	release := make(chan struct{})
	var gate sync.Once
	blocked := make(chan struct{})
	srv, addr := startServer(t, server.Config{
		Rules:      []string{"foo"},
		Workers:    1,
		QueueDepth: 1,
		ScanHook: func() {
			gate.Do(func() { close(blocked) })
			<-release
		},
	})

	c := dial(t, addr)
	payload := []byte("a foo b")

	// First request occupies the worker; second fills the queue.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Scan(payload)
			results <- err
		}()
		if i == 0 {
			<-blocked // worker is provably wedged before the next send
		} else {
			waitQueued(t, srv)
		}
	}

	// Everything past worker+queue must shed, and promptly.
	shed := 0
	for i := 0; i < 8; i++ {
		start := time.Now()
		_, err := c.Scan(payload)
		if errors.Is(err, client.ErrShed) {
			shed++
			if d := time.Since(start); d > 2*time.Second {
				t.Fatalf("SHED took %s; admission control must not block", d)
			}
		} else if err != nil {
			t.Fatalf("overflow scan: %v", err)
		}
	}
	if shed == 0 {
		t.Fatal("queue overflow produced no SHED responses")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("wedged request %d failed after release: %v", i, err)
		}
	}

	snap := srv.MetricsSnapshot()
	if got := snap.Get("server.shed"); got < int64(shed) {
		t.Fatalf("server.shed = %d, want >= %d", got, shed)
	}
}

// waitQueued blocks until the admission queue reports depth > 0.
func waitQueued(t *testing.T, srv *server.Server) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if srv.MetricsSnapshot().Get("server.queue.depth") > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("request never reached the queue")
}

// TestServerShutdownDrainsInFlight starts slow scans, begins Shutdown
// while they are mid-execution, and asserts their responses still
// arrive — an admitted request is never dropped — with no goroutine
// left behind.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	defer leakCheck(t)()
	started := make(chan struct{}, 8)
	srv, err := server.New(server.Config{
		Rules:   []string{"foo"},
		Workers: 2,
		ScanHook: func() {
			started <- struct{}{}
			time.Sleep(50 * time.Millisecond)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			ms, err := c.Scan([]byte("a foo b"))
			if err == nil && len(ms) != 1 {
				err = errors.New("drained scan lost its matches")
			}
			results <- err
		}()
		<-started // the request is in a worker before shutdown begins
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight request %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// The drained server accepts nothing new.
	if _, err := client.Dial(ln.Addr().String()); err == nil {
		t.Fatal("post-shutdown dial succeeded")
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after shutdown succeeded")
	}
}

// TestServerCloseUnderLoad is the hard-stop path: Close while clients
// are mid-request must terminate promptly and leak nothing; clients
// see connection errors, not hangs.
func TestServerCloseUnderLoad(t *testing.T) {
	defer leakCheck(t)()
	srv, err := server.New(server.Config{
		Rules:    []string{"foo"},
		Workers:  2,
		ScanHook: func() { time.Sleep(5 * time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(ln.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			for j := 0; j < 100; j++ {
				if _, err := c.Scan([]byte("a foo b")); err != nil {
					return // close tore the connection; that's the contract
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()
}

// TestServerPipelining issues concurrent mixed requests over ONE
// client connection; the id-demultiplexed responses must all come back
// to their callers intact.
func TestServerPipelining(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: []string{"ab+c"}, Workers: 4})
	c := dial(t, addr)
	payload := []byte("xxabcxxabbcxx")

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0:
				ms, err := c.Scan(payload)
				if err == nil && len(ms) != 2 {
					err = errors.New("scan match count")
				}
				errs <- err
			case 1:
				n, err := c.Count(payload)
				if err == nil && n != 2 {
					err = errors.New("count value")
				}
				errs <- err
			case 2:
				errs <- c.Ping()
			default:
				ms, err := c.ScanPattern("ab+c", payload)
				if err == nil && len(ms) != 2 {
					err = errors.New("scan-pattern match count")
				}
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerPatternCache pins the ad-hoc LRU: repeated SCAN-PATTERN
// requests for one expression compile once and hit the cache after.
func TestServerPatternCache(t *testing.T) {
	srv, addr := startServer(t, server.Config{Rules: []string{"zz"}})
	c := dial(t, addr)
	for i := 0; i < 5; i++ {
		ms, err := c.ScanPattern("nee+dle", []byte("a needle b neeedle c"))
		if err != nil {
			t.Fatalf("ScanPattern: %v", err)
		}
		if len(ms) != 2 {
			t.Fatalf("ScanPattern found %d matches, want 2", len(ms))
		}
	}
	snap := srv.MetricsSnapshot()
	if hits := snap.Get("server.cache.hits"); hits < 4 {
		t.Fatalf("server.cache.hits = %d, want >= 4", hits)
	}
	if misses := snap.Get("server.cache.misses"); misses != 1 {
		t.Fatalf("server.cache.misses = %d, want 1", misses)
	}

	// A broken pattern is a compile error, not a scan error.
	_, err := c.ScanPattern("(", []byte("x"))
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != server.ErrCodeCompile {
		t.Fatalf("bad pattern: got %v, want compile ServerError", err)
	}
}

// TestServerRejectsOversizedFrame sends a frame past the configured
// limit on a raw socket: the server must answer ERROR and close the
// connection without buffering the body.
func TestServerRejectsOversizedFrame(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: []string{"zz"}, MaxFrame: 64})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := server.WriteFrame(nc, server.Frame{Op: server.OpScan, ID: 1, Body: make([]byte, 128)}); err != nil {
		t.Fatal(err)
	}
	f, err := server.ReadFrame(nc, 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if f.Op != server.OpError {
		t.Fatalf("got %s, want ERROR", server.OpName(f.Op))
	}
	code, _, err := server.DecodeError(f.Body)
	if err != nil || code != server.ErrCodeBadFrame {
		t.Fatalf("error code %d (%v), want bad-frame", code, err)
	}
	// The stream is unrecoverable; the server closes it.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := server.ReadFrame(nc, 0); err == nil {
		t.Fatal("connection stayed open after framing fault")
	}
}

// TestServerBadFrameErrorDelivered pins the teardown after a framing
// fault: the ERROR frame must reach the client even when the bad
// frame's own bytes are still unread server-side — a close with a
// non-empty receive queue becomes a TCP RST that would destroy the
// queued response, so the server must drain before closing.
func TestServerBadFrameErrorDelivered(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, addr := startServer(t, server.Config{Rules: []string{"zz"}})
	for i := 0; i < 10; i++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// length=2 is malformed from the length field alone; the two
		// trailing bytes land unread in the server's receive queue.
		if _, err := nc.Write([]byte{0, 0, 0, 2, 0x01, 0x02}); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, err := server.ReadFrame(nc, 0)
		if err != nil {
			t.Fatalf("attempt %d: ERROR frame lost to connection teardown: %v", i, err)
		}
		if f.Op != server.OpError {
			t.Fatalf("got %s, want ERROR", server.OpName(f.Op))
		}
		if code, _, err := server.DecodeError(f.Body); err != nil || code != server.ErrCodeBadFrame {
			t.Fatalf("error code %d (%v), want bad-frame", code, err)
		}
		nc.Close()
	}
}

// TestServerStats exercises the STATS endpoint end to end: the decoded
// snapshot must carry the request counters the traffic just generated.
func TestServerStats(t *testing.T) {
	_, addr := startServer(t, server.Config{Rules: []string{"foo"}})
	c := dial(t, addr)
	for i := 0; i < 3; i++ {
		if _, err := c.Scan([]byte("a foo b")); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if got := snap.Get("server.scan.requests"); got != 3 {
		t.Fatalf("server.scan.requests = %d, want 3", got)
	}
	if got := snap.Get("server.matches"); got != 3 {
		t.Fatalf("server.matches = %d, want 3", got)
	}
	m, ok := snap.Find("server.scan.latency_us")
	if !ok || m.Count != 3 {
		t.Fatalf("scan latency histogram = %+v (ok=%v), want 3 observations", m, ok)
	}
	if q := m.Quantile(0.99); q == 0 {
		t.Fatal("latency p99 quantile is zero")
	}
}
