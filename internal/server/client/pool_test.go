package client

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/faultinject/netchaos"
	"alveare/internal/metrics"
	"alveare/internal/server"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestPoolRoundRobin(t *testing.T) {
	var na, nb atomic.Int64
	fsA := newFakeSrv(t, func(c net.Conn, f server.Frame) bool { na.Add(1); return pongHandler(c, f) })
	fsB := newFakeSrv(t, func(c net.Conn, f server.Frame) bool { nb.Add(1); return pongHandler(c, f) })
	p, err := NewPool([]string{fsA.addr(), fsB.addr()}, PoolSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 4; i++ {
		if err := p.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if na.Load() != 2 || nb.Load() != 2 {
		t.Fatalf("round-robin split = %d/%d, want 2/2", na.Load(), nb.Load())
	}
}

// TestPoolFailoverOpensBreaker: with one dead backend in the pool,
// every request still succeeds via failover, and the dead backend's
// breaker opens after the configured run of failures.
func TestPoolFailoverOpensBreaker(t *testing.T) {
	fs := newFakeSrv(t, pongHandler)
	reg := metrics.New()
	rec := &sleepRecorder{}
	p, err := NewPool([]string{deadAddr(t), fs.addr()},
		PoolSeed(2), PoolRetries(3), PoolSleep(rec.sleep), PoolMetrics(reg),
		PoolBreaker(2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 6; i++ {
		if err := p.Ping(); err != nil {
			t.Fatalf("ping %d: %v (failover should mask the dead backend)", i, err)
		}
	}
	if st := p.States(); st[0] != BreakerOpen || st[1] != BreakerClosed {
		t.Fatalf("breaker states = %v, want [open closed]", st)
	}
	if got := reg.Counter("client.failovers").Load(); got < 2 {
		t.Fatalf("client.failovers = %d, want >= 2", got)
	}
	if got := reg.Counter("client.breaker.transitions").Load(); got < 1 {
		t.Fatalf("client.breaker.transitions = %d, want >= 1", got)
	}
	if snap := p.MetricsSnapshot(); snap.Get("client.backend.0.breaker_state") != int64(BreakerOpen) {
		t.Fatalf("backend 0 breaker gauge = %d, want %d (open)",
			snap.Get("client.backend.0.breaker_state"), BreakerOpen)
	}
}

// TestPoolAllBreakersOpen: once every backend's breaker is open and
// cooling down, requests fail fast with ErrNoBackend instead of
// hammering dead hosts.
func TestPoolAllBreakersOpen(t *testing.T) {
	p, err := NewPool([]string{deadAddr(t)},
		PoolSeed(3), PoolBreaker(1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rec := &sleepRecorder{}
	p.sleep = rec.sleep
	if err := p.Ping(); err == nil {
		t.Fatal("ping against a dead backend succeeded")
	}
	if st := p.States(); st[0] != BreakerOpen {
		t.Fatalf("breaker state = %v after threshold failures, want open", st[0])
	}
	if err := p.Ping(); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("got %v, want ErrNoBackend while every breaker is open", err)
	}
}

// TestPoolRecoversThroughProbe kills a backend behind a chaos proxy,
// watches its breaker open, revives it, and waits for the background
// prober to close the breaker again — the full
// closed → open → half-open → closed cycle with no live traffic.
func TestPoolRecoversThroughProbe(t *testing.T) {
	fs := newFakeSrv(t, pongHandler)
	proxy, err := netchaos.New(fs.addr(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	p, err := NewPool([]string{proxy.Addr()},
		PoolSeed(4), PoolBreaker(1, 20*time.Millisecond), PoolProbe(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	proxy.SetDown(true)
	if err := p.Ping(); err == nil {
		t.Fatal("ping through a downed proxy succeeded")
	}
	if st := p.States(); st[0] != BreakerOpen {
		t.Fatalf("breaker = %v after backend death, want open", st[0])
	}

	proxy.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for p.States()[0] != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %v: prober never recovered the revived backend", p.States()[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Ping(); err != nil {
		t.Fatalf("ping after recovery: %v", err)
	}
}

// TestPoolReloadFansOut: RELOAD goes to every backend (replicas must
// serve the same rules), exactly once each.
func TestPoolReloadFansOut(t *testing.T) {
	var ra, rb atomic.Int64
	reload := func(n *atomic.Int64) func(net.Conn, server.Frame) bool {
		return func(c net.Conn, f server.Frame) bool {
			if f.Op == server.OpReload {
				n.Add(1)
				return server.WriteFrame(c, server.Frame{
					Op: server.OpReloadOK, ID: f.ID, Body: server.EncodeReloadOK(2, 5),
				}) == nil
			}
			return pongHandler(c, f)
		}
	}
	fsA := newFakeSrv(t, reload(&ra))
	fsB := newFakeSrv(t, reload(&rb))
	p, err := NewPool([]string{fsA.addr(), fsB.addr()}, PoolSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	gen, rules, err := p.Reload("abc\nxyz\n")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || rules != 5 {
		t.Fatalf("reload returned gen=%d rules=%d, want 2/5", gen, rules)
	}
	if ra.Load() != 1 || rb.Load() != 1 {
		t.Fatalf("reload fan-out = %d/%d, want exactly 1/1", ra.Load(), rb.Load())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	fs := newFakeSrv(t, pongHandler)
	p, err := NewPool([]string{fs.addr()}, PoolSeed(6), PoolProbe(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v (must be idempotent)", err)
	}
	if err := p.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("ping after Close = %v, want ErrClosed", err)
	}
}

// TestResilienceMetricsGolden pins the schema-v1 snapshot rendering of
// the resilience metrics — breaker-state gauges, retry/reconnect/
// failover counters, attempt-latency histogram — byte for byte, in
// both wire forms. Regenerate with -update.
func TestResilienceMetricsGolden(t *testing.T) {
	reg := metrics.New()
	p, err := NewPool([]string{"127.0.0.1:1", "127.0.0.1:2"},
		PoolSeed(7), PoolMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Deterministic values in place of live traffic.
	reg.Counter("client.attempts").Store(12)
	reg.Counter("client.retries").Store(3)
	reg.Counter("client.reconnects").Store(2)
	reg.Counter("client.failovers").Store(1)
	reg.Counter("client.breaker.transitions").Store(4)
	reg.Gauge("client.backend.0.breaker_state").Set(int64(BreakerOpen))
	reg.Gauge("client.backend.1.breaker_state").Set(int64(BreakerClosed))
	for _, v := range []int64{100, 200, 400, 400, 1600} {
		reg.Histogram("client.attempt_latency_us").Observe(v)
	}

	var json1, json2, text bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&json1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot().WriteJSON(&json2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
		t.Fatal("snapshot JSON is not byte-deterministic across renders")
	}
	if err := reg.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "resilience_metrics.json"), json1.Bytes())
	checkGolden(t, filepath.Join("testdata", "resilience_metrics.txt"), text.Bytes())
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update to regenerate)\n got: %s\nwant: %s",
			path, got, want)
	}
}

// TestBreakerLifecycle drives the state machine with a fake clock:
// closed → open at the failure threshold, open → half-open after the
// cooldown admitting exactly one probe, probe outcome deciding the
// next state, and cancellation releasing the probe slot neutrally.
func TestBreakerLifecycle(t *testing.T) {
	reg := metrics.New()
	trans := reg.Counter("t")
	gauge := reg.Gauge("g")
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Second, trans, gauge)
	b.now = func() time.Time { return now }

	if !b.allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.onFailure()
	if b.current() != BreakerClosed {
		t.Fatal("one failure under threshold 2 must not open")
	}
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatal("second consecutive failure must open")
	}
	if gauge.Load() != int64(BreakerOpen) {
		t.Fatalf("gauge = %d, want %d", gauge.Load(), BreakerOpen)
	}
	if b.allow() {
		t.Fatal("open breaker inside cooldown must refuse")
	}

	now = now.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("open breaker past cooldown must admit a probe")
	}
	if b.current() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.current())
	}
	if b.allow() {
		t.Fatal("half-open breaker must admit exactly one probe")
	}
	b.onCancel() // probe's caller went away: slot freed, no judgment
	if b.current() != BreakerHalfOpen {
		t.Fatal("cancellation must not change state")
	}
	if !b.allow() {
		t.Fatal("cancelled probe slot must be reusable")
	}
	b.onFailure()
	if b.current() != BreakerOpen {
		t.Fatal("failed probe must re-open")
	}

	now = now.Add(2 * time.Second)
	if !b.allow() {
		t.Fatal("re-opened breaker past cooldown must admit a probe")
	}
	b.onSuccess()
	if b.current() != BreakerClosed {
		t.Fatal("successful probe must close")
	}
	b.onFailure()
	if b.current() != BreakerClosed {
		t.Fatal("failure run must restart after a close")
	}
	if trans.Load() != 5 {
		// closed→open, open→half, half→open, open→half, half→closed
		t.Fatalf("transitions = %d, want 5", trans.Load())
	}
}

// TestSettleClassification pins which outcomes count against a
// backend's breaker.
func TestSettleClassification(t *testing.T) {
	mk := func() *backend {
		return &backend{brk: newBreaker(1, time.Minute, nil, nil)}
	}
	bg := context.Background()

	b := mk()
	b.settle(bg, nil)
	if b.brk.current() != BreakerClosed {
		t.Fatal("success must not trip the breaker")
	}
	b.settle(bg, ErrShed)
	if b.brk.current() != BreakerClosed {
		t.Fatal("SHED is an authoritative answer: backend alive, breaker closed")
	}
	b.settle(bg, &ServerError{Code: server.ErrCodeScan, Msg: "x"})
	if b.brk.current() != BreakerClosed {
		t.Fatal("a server error is an authoritative answer: breaker closed")
	}
	b.settle(bg, errors.New("dial tcp: connection refused"))
	if b.brk.current() != BreakerOpen {
		t.Fatal("a transport failure past threshold must open the breaker")
	}

	b2 := mk()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b2.settle(ctx, ctx.Err())
	if b2.brk.current() != BreakerClosed {
		t.Fatal("caller cancellation proves nothing: breaker untouched")
	}
}
