// Backends: the shared fleet substrate under Pool and the gateway's
// routing tier — one Client, one circuit breaker and one breaker-state
// gauge per backend address, plus the background health prober that
// rediscovers dead backends without taxing live traffic.
//
// The prober's interval is FULL-JITTERED (uniform over the configured
// window, same shape as the reconnect backoff): a fleet of gateways
// configured with the same probe interval must not synchronise into a
// probe storm against a backend that just came back — with a fixed
// ticker they all fire at the same phase once the backend's revival
// resets their breakers together. Each cycle independently draws its
// sleep from (0, interval], so fleet members decorrelate within one
// window and stay decorrelated.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
)

// BackendsConfig parameterises NewBackends. Zero values select the
// defaults noted per field.
type BackendsConfig struct {
	// Seed drives the probe-interval jitter and each backend client's
	// backoff jitter (0: time-based).
	Seed int64
	// Registry receives the per-backend breaker-state gauges and the
	// shared transition counter (nil: a private registry).
	Registry *metrics.Registry
	// GaugePrefix names the per-backend state gauges
	// ("<prefix><index>.breaker_state"); default "client.backend.".
	GaugePrefix string
	// BreakerFailures consecutive transport failures open a backend's
	// breaker (default 3); BreakerCooldown is the open → half-open
	// delay (default 1s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// ProbeInterval enables the background health prober: each cycle
	// sleeps a full-jittered draw from (0, ProbeInterval], then pings
	// every backend whose breaker is not closed. 0 disables probing.
	ProbeInterval time.Duration
	// AttemptTimeout bounds each request attempt on a backend (0: only
	// the caller's context bounds it).
	AttemptTimeout time.Duration
	// ClientOptions are appended to every backend Client.
	ClientOptions []Option
}

// Backends is a fixed set of scan-service backends with per-backend
// circuit breakers and an optional shared health prober. Safe for
// concurrent use. It does not route — Pool round-robins over it and
// the gateway consistent-hashes over it.
type Backends struct {
	members     []*backend
	reg         *metrics.Registry
	transitions *metrics.Counter

	probeEvery time.Duration
	probeStop  chan struct{}
	probeDone  chan struct{}
	closeOnce  sync.Once

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewBackends builds the fleet substrate. No backend is dialed until
// the first request (or probe) touches it.
func NewBackends(addrs []string, cfg BackendsConfig) (*Backends, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: backends need at least one address")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	prefix := cfg.GaugePrefix
	if prefix == "" {
		prefix = "client.backend."
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	bs := &Backends{
		reg:         reg,
		transitions: reg.Counter("client.breaker.transitions"),
		probeEvery:  cfg.ProbeInterval,
		rng:         rand.New(rand.NewSource(seed)),
	}
	for i, addr := range addrs {
		copts := []Option{
			WithMetrics(reg), // shared: attempts/reconnects aggregate
			WithRetries(0),   // the routing layer owns the retry budget
			WithSeed(seed + int64(i) + 1),
		}
		if cfg.AttemptTimeout > 0 {
			copts = append(copts, WithAttemptTimeout(cfg.AttemptTimeout))
		}
		copts = append(copts, cfg.ClientOptions...)
		gauge := reg.Gauge(fmt.Sprintf("%s%d.breaker_state", prefix, i))
		gauge.Set(int64(BreakerClosed))
		bs.members = append(bs.members, &backend{
			addr: addr,
			c:    New(addr, copts...),
			brk:  newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown, bs.transitions, gauge),
		})
	}
	if bs.probeEvery > 0 {
		bs.probeStop = make(chan struct{})
		bs.probeDone = make(chan struct{})
		go bs.probeLoop()
	}
	return bs, nil
}

// Len returns the backend count.
func (bs *Backends) Len() int { return len(bs.members) }

// Addr returns backend i's address.
func (bs *Backends) Addr(i int) string { return bs.members[i].addr }

// Addrs returns every backend address, in index order.
func (bs *Backends) Addrs() []string {
	out := make([]string, len(bs.members))
	for i, b := range bs.members {
		out[i] = b.addr
	}
	return out
}

// State returns backend i's breaker state.
func (bs *Backends) State(i int) BreakerState { return bs.members[i].brk.current() }

// States returns every backend's breaker state, in index order.
func (bs *Backends) States() []BreakerState {
	out := make([]BreakerState, len(bs.members))
	for i, b := range bs.members {
		out[i] = b.brk.current()
	}
	return out
}

// Acquire asks backend i's breaker to admit one request. An open
// breaker past its cooldown flips half-open and admits the caller as
// its single probe, so a true return MUST be followed by exactly one
// Do (or Settle) — dropping the slot on the floor wedges the breaker
// half-open until the prober rescues it.
func (bs *Backends) Acquire(i int) bool { return bs.members[i].brk.allow() }

// Do issues one attempt of one request on backend i (no retries —
// the routing layer owns the budget) and settles the breaker with the
// outcome. The caller must hold an Acquire admission.
func (bs *Backends) Do(ctx context.Context, i int, op, wantOp byte, body []byte) (server.Frame, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b := bs.members[i]
	f, err := b.c.do(ctx, op, wantOp, body, false)
	b.settle(ctx, err)
	return f, err
}

// Settle releases an Acquire admission without issuing a request,
// feeding err's verdict (nil = success) to the breaker.
func (bs *Backends) Settle(ctx context.Context, i int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bs.members[i].settle(ctx, err)
}

// Client returns backend i's Client, for callers that need the full
// request API (fan-out RELOAD, STATS). Requests issued through it
// bypass the breaker — pair them with Acquire/Settle when the outcome
// should count.
func (bs *Backends) Client(i int) *Client { return bs.members[i].c }

// probeLoop pings every non-closed breaker's backend once per
// full-jittered interval, respecting the half-open single-probe
// discipline via allow().
func (bs *Backends) probeLoop() {
	defer close(bs.probeDone)
	for {
		t := time.NewTimer(bs.jitteredProbeDelay())
		select {
		case <-bs.probeStop:
			t.Stop()
			return
		case <-t.C:
		}
		for _, b := range bs.members {
			if b.brk.current() == BreakerClosed {
				continue
			}
			if !b.brk.allow() {
				continue
			}
			pctx, cancel := context.WithTimeout(context.Background(), bs.probeEvery)
			_, err := b.c.do(pctx, server.OpPing, server.OpPong, nil, false)
			cancel()
			b.settle(context.Background(), err)
		}
	}
}

// jitteredProbeDelay draws one probe cycle's sleep: full jitter over
// (0, interval], floored at interval/16 so a tiny draw cannot turn
// the prober into a hot loop (the same floor as the reconnect
// backoff).
func (bs *Backends) jitteredProbeDelay() time.Duration {
	window := bs.probeEvery
	if window <= 0 {
		return 0
	}
	bs.rngMu.Lock()
	d := time.Duration(bs.rng.Int63n(int64(window))) + 1
	bs.rngMu.Unlock()
	if floor := window / 16; d < floor {
		d = floor
	}
	return d
}

// Close stops the prober and closes every backend connection.
// Idempotent; in-flight requests fail.
func (bs *Backends) Close() error {
	bs.closeOnce.Do(func() {
		if bs.probeStop != nil {
			close(bs.probeStop)
			<-bs.probeDone
		}
		for _, b := range bs.members {
			b.c.Close()
		}
	})
	return nil
}
