// The per-backend circuit breaker: closed → open after a run of
// consecutive transport failures, open → half-open after a cooldown,
// half-open admits exactly one probe whose outcome closes or re-opens
// the breaker. The breaker sees only transport-level outcomes — an
// authoritative server answer (even an error) proves the backend
// alive and counts as success; a cancelled caller proves nothing and
// counts as neither.
package client

import (
	"sync"
	"time"

	"alveare/internal/metrics"
)

// BreakerState is one backend's circuit-breaker position. The numeric
// values are the breaker-state gauge's encoding in metrics snapshots.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = 0
	// BreakerHalfOpen: the cooldown elapsed; one probe request is in
	// flight to decide whether the backend recovered.
	BreakerHalfOpen BreakerState = 1
	// BreakerOpen: the backend is presumed dead; requests skip it
	// until the cooldown elapses.
	BreakerOpen BreakerState = 2
)

// String spells the state for reports and errors.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is one backend's circuit breaker.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open after this long
	now       func() time.Time

	transitions *metrics.Counter // shared across the pool
	stateGauge  *metrics.Gauge   // this backend's state, by BreakerState value

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, transitions *metrics.Counter, gauge *metrics.Gauge) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{
		threshold:   threshold,
		cooldown:    cooldown,
		now:         time.Now,
		transitions: transitions,
		stateGauge:  gauge,
	}
}

// setState transitions and publishes; callers hold b.mu.
func (b *breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.transitions != nil {
		b.transitions.Inc()
	}
	if b.stateGauge != nil {
		b.stateGauge.Set(int64(s))
	}
}

// allow reports whether a request may be sent to this backend right
// now. An open breaker past its cooldown flips to half-open and
// admits the calling request as the probe; a half-open breaker admits
// nothing while its probe is outstanding.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records an authoritative answer: the breaker closes and
// the failure run resets.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails = 0
	b.setState(BreakerClosed)
}

// onFailure records a transport failure: a closed breaker opens after
// threshold consecutive failures; a half-open probe failure re-opens
// immediately and re-arms the cooldown.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.openedAt = b.now()
			b.setState(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.openedAt = b.now()
		b.setState(BreakerOpen)
	default: // already open: re-arm the cooldown
		b.openedAt = b.now()
	}
}

// onCancel releases a probe slot without judging the backend: the
// caller went away before the outcome was known.
func (b *breaker) onCancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// current returns the state for reports.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
