// Pool: failover across several scan-service backends. Requests pick
// backends round-robin, skipping any whose circuit breaker is open;
// transport failures count against the backend's breaker and the
// request fails over to the next backend under the pool's retry
// budget (with the same jittered backoff as a single Client, so a
// flapping fleet is never hammered in a hot loop). An optional health
// prober pings tripped backends in the background so breakers recover
// without waiting for live traffic to probe them.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
)

// ErrNoBackend reports that every backend's circuit breaker was open
// when a request tried to pick one. It is retryable: a later attempt
// (after backoff) may find a breaker past its cooldown and willing to
// probe.
var ErrNoBackend = errors.New("client: no backend available (all circuit breakers open)")

// PoolOption configures NewPool.
type PoolOption func(*Pool)

// PoolRetries sets the pool's retry budget for idempotent requests:
// up to n additional attempts after the first, each on the next
// healthy backend, each preceded by a jittered backoff sleep.
// Default 2.
func PoolRetries(n int) PoolOption {
	return func(p *Pool) { p.retries = n }
}

// PoolBackoff sets the failover backoff window (see WithBackoff).
func PoolBackoff(base, max time.Duration) PoolOption {
	return func(p *Pool) { p.boBase, p.boMax = base, max }
}

// PoolSeed seeds the pool's backoff jitter and the per-backend client
// jitter, for reproducible chaos runs.
func PoolSeed(seed int64) PoolOption {
	return func(p *Pool) { p.seed, p.seeded = seed, true }
}

// PoolMetrics publishes the pool's resilience metrics (retries,
// failovers, breaker transitions, per-backend breaker-state gauges —
// backends are indexed, not named, so snapshots stay byte-stable)
// into reg.
func PoolMetrics(reg *metrics.Registry) PoolOption {
	return func(p *Pool) { p.reg = reg }
}

// PoolBreaker parameterises the per-backend circuit breakers:
// `failures` consecutive transport failures open a breaker, which
// half-opens for a single probe after `cooldown`. Defaults: 3
// failures, 1s cooldown.
func PoolBreaker(failures int, cooldown time.Duration) PoolOption {
	return func(p *Pool) { p.brkThreshold, p.brkCooldown = failures, cooldown }
}

// PoolProbe starts a background health prober: each cycle sleeps a
// FULL-JITTERED draw from (0, interval] — not a fixed ticker — then
// pings every backend whose breaker is not closed (respecting the
// breaker's half-open single-probe discipline), so dead backends are
// rediscovered without taxing live traffic and a fleet of pools
// sharing one configured interval cannot synchronise into a probe
// storm against a recovering backend. 0 (the default) disables
// probing; breakers then recover only via request-path probes.
func PoolProbe(interval time.Duration) PoolOption {
	return func(p *Pool) { p.probeEvery = interval }
}

// PoolAttemptTimeout bounds each individual attempt, so one stalled
// backend costs one attempt rather than the whole request.
func PoolAttemptTimeout(d time.Duration) PoolOption {
	return func(p *Pool) { p.attemptTO = d }
}

// PoolClientOptions appends extra options to every backend Client
// (frame limits, dial timeouts, ...).
func PoolClientOptions(opts ...Option) PoolOption {
	return func(p *Pool) { p.clientOpts = append(p.clientOpts, opts...) }
}

// PoolSleep replaces the backoff sleep (test seam).
func PoolSleep(sleep func(context.Context, time.Duration) error) PoolOption {
	return func(p *Pool) { p.sleep = sleep }
}

// backend is one pool member.
type backend struct {
	addr string
	c    *Client
	brk  *breaker
}

// settle feeds one attempt's outcome to the backend's breaker. An
// authoritative server answer — success, ServerError, SHED, or a
// gateway's explicit partial result — proves the backend alive; a
// caller-side cancellation proves nothing; everything else is a
// transport failure.
func (b *backend) settle(parent context.Context, err error) {
	switch {
	case err == nil, errors.Is(err, ErrShed):
		b.brk.onSuccess()
	case isServerError(err):
		b.brk.onSuccess()
	case parent.Err() != nil:
		b.brk.onCancel()
	default:
		b.brk.onFailure()
	}
}

func isServerError(err error) bool {
	var se *ServerError
	var pe *PartialError
	return errors.As(err, &se) || errors.As(err, &pe)
}

// poolMetrics resolves the pool-level handles once.
type poolMetrics struct {
	retries     *metrics.Counter
	failovers   *metrics.Counter
	transitions *metrics.Counter
}

// Pool is a multi-backend scan-service client. Safe for concurrent
// use. The fleet substrate — per-backend clients, breakers, gauges
// and the jittered health prober — lives in Backends; the Pool adds
// round-robin selection and the failover retry loop.
type Pool struct {
	bs         *Backends
	retries    int
	boBase     time.Duration
	boMax      time.Duration
	attemptTO  time.Duration
	probeEvery time.Duration
	sleep      func(context.Context, time.Duration) error

	brkThreshold int
	brkCooldown  time.Duration

	seed   int64
	seeded bool

	reg        *metrics.Registry
	met        poolMetrics
	clientOpts []Option

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	next   int // round-robin cursor
	closed bool

	closeOnce sync.Once
}

// NewPool builds a failover pool over addrs. No backend is dialed
// until the first request touches it, so a pool can be built while
// some of its fleet is down.
func NewPool(addrs []string, opts ...PoolOption) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: pool needs at least one backend address")
	}
	p := &Pool{
		retries: 2,
		boBase:  20 * time.Millisecond,
		boMax:   2 * time.Second,
		sleep:   sleepCtx,
	}
	for _, o := range opts {
		o(p)
	}
	if p.reg == nil {
		p.reg = metrics.New()
	}
	p.met = poolMetrics{
		retries:     p.reg.Counter("client.retries"),
		failovers:   p.reg.Counter("client.failovers"),
		transitions: p.reg.Counter("client.breaker.transitions"),
	}
	seed := p.seed
	if !p.seeded {
		seed = time.Now().UnixNano()
	}
	p.rng = rand.New(rand.NewSource(seed))
	bs, err := NewBackends(addrs, BackendsConfig{
		Seed:            seed,
		Registry:        p.reg,
		BreakerFailures: p.brkThreshold,
		BreakerCooldown: p.brkCooldown,
		ProbeInterval:   p.probeEvery,
		AttemptTimeout:  p.attemptTO,
		ClientOptions:   p.clientOpts,
	})
	if err != nil {
		return nil, err
	}
	p.bs = bs
	return p, nil
}

// Addrs returns the backend addresses in pool order.
func (p *Pool) Addrs() []string { return p.bs.Addrs() }

// States returns each backend's breaker state, in pool order.
func (p *Pool) States() []BreakerState { return p.bs.States() }

// MetricsSnapshot returns the pool's resilience metrics snapshot.
func (p *Pool) MetricsSnapshot() *metrics.Snapshot { return p.reg.Snapshot() }

// pick returns the next backend whose breaker admits a request,
// round-robin from the cursor; ErrNoBackend when every breaker is
// open and still cooling down.
func (p *Pool) pick() (*backend, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	start := p.next
	p.next = (p.next + 1) % p.bs.Len()
	p.mu.Unlock()
	for i := 0; i < p.bs.Len(); i++ {
		b := p.bs.members[(start+i)%p.bs.Len()]
		if b.brk.allow() {
			return b, nil
		}
	}
	return nil, ErrNoBackend
}

// backoffFor mirrors Client.backoffFor for the pool's own loop.
func (p *Pool) backoffFor(attempt int) time.Duration {
	window := p.boBase
	for i := 1; i < attempt && window < p.boMax; i++ {
		window <<= 1
	}
	if window > p.boMax {
		window = p.boMax
	}
	if window <= 0 {
		return 0
	}
	p.rngMu.Lock()
	d := time.Duration(p.rng.Int63n(int64(window)))
	p.rngMu.Unlock()
	if floor := window / 16; d < floor {
		d = floor
	}
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return d
}

// do runs one request with failover: each attempt goes to the next
// healthy backend; transport failures feed that backend's breaker.
// Non-idempotent requests (RELOAD) get exactly one attempt.
func (p *Pool) do(ctx context.Context, op, wantOp byte, body []byte, idempotent bool) (server.Frame, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := 0
	var prev *backend
	for {
		b, err := p.pick()
		var f server.Frame
		if err == nil {
			if prev != nil && b != prev {
				p.met.failovers.Inc()
			}
			prev = b
			f, err = b.c.do(ctx, op, wantOp, body, false)
			b.settle(ctx, err)
			if err == nil {
				return f, nil
			}
			if !retryable(err) {
				return server.Frame{}, err
			}
		} else if errors.Is(err, ErrClosed) {
			return server.Frame{}, err
		}
		attempts++
		if !idempotent {
			return server.Frame{}, err
		}
		if ctx.Err() != nil {
			return server.Frame{}, err
		}
		if attempts > p.retries {
			if p.retries > 0 {
				return server.Frame{}, &RetryError{Attempts: attempts, Err: err}
			}
			return server.Frame{}, err
		}
		p.met.retries.Inc()
		if serr := p.sleep(ctx, p.backoffFor(attempts)); serr != nil {
			return server.Frame{}, &RetryError{Attempts: attempts, Err: err}
		}
	}
}

// Close stops the prober and closes every backend connection.
// Idempotent; in-flight requests fail.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		p.bs.Close()
	})
	return nil
}

// PingCtx probes one healthy backend.
func (p *Pool) PingCtx(ctx context.Context) error {
	_, err := p.do(ctx, server.OpPing, server.OpPong, nil, true)
	return err
}

// Ping probes one healthy backend.
func (p *Pool) Ping() error { return p.PingCtx(context.Background()) }

// ScanCtx scans payload against the loaded rule set on one healthy
// backend, failing over under the retry budget.
func (p *Pool) ScanCtx(ctx context.Context, payload []byte) ([]server.RuleMatch, error) {
	f, err := p.do(ctx, server.OpScan, server.OpMatches, payload, true)
	if err != nil {
		return nil, err
	}
	return server.DecodeMatches(f.Body)
}

// Scan scans payload against the loaded rule set.
func (p *Pool) Scan(payload []byte) ([]server.RuleMatch, error) {
	return p.ScanCtx(context.Background(), payload)
}

// CountCtx counts rule matches in payload.
func (p *Pool) CountCtx(ctx context.Context, payload []byte) (uint64, error) {
	f, err := p.do(ctx, server.OpCount, server.OpCountResp, payload, true)
	if err != nil {
		return 0, err
	}
	return server.DecodeCount(f.Body)
}

// Count counts rule matches in payload.
func (p *Pool) Count(payload []byte) (uint64, error) {
	return p.CountCtx(context.Background(), payload)
}

// ScanPatternCtx runs one ad-hoc pattern over payload.
func (p *Pool) ScanPatternCtx(ctx context.Context, pattern string, payload []byte) ([]server.RuleMatch, error) {
	body, err := server.EncodeScanPattern(pattern, payload)
	if err != nil {
		return nil, err
	}
	f, err := p.do(ctx, server.OpScanPattern, server.OpMatches, body, true)
	if err != nil {
		return nil, err
	}
	return server.DecodeMatches(f.Body)
}

// ScanPattern runs one ad-hoc pattern over payload.
func (p *Pool) ScanPattern(pattern string, payload []byte) ([]server.RuleMatch, error) {
	return p.ScanPatternCtx(context.Background(), pattern, payload)
}

// RulesInfoCtx describes one healthy backend's serving snapshot.
func (p *Pool) RulesInfoCtx(ctx context.Context) (server.Info, error) {
	f, err := p.do(ctx, server.OpRulesInfo, server.OpInfo, nil, true)
	if err != nil {
		return server.Info{}, err
	}
	return server.DecodeInfo(f.Body)
}

// RulesInfo describes one healthy backend's serving snapshot.
func (p *Pool) RulesInfo() (server.Info, error) {
	return p.RulesInfoCtx(context.Background())
}

// ReloadCtx hot-swaps the rule set on EVERY backend — a pool's
// replicas are only useful if they serve the same rules. RELOAD is
// not idempotent, so no backend's reload is retried; the aggregated
// error reports every backend that failed (the others did reload —
// check RulesInfo per backend before re-issuing).
func (p *Pool) ReloadCtx(ctx context.Context, rulesText string) (generation, rules uint32, err error) {
	var errs []error
	for _, b := range p.bs.members {
		f, rerr := b.c.do(ctx, server.OpReload, server.OpReloadOK, []byte(rulesText), false)
		b.settle(ctx, rerr)
		if rerr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", b.addr, rerr))
			continue
		}
		generation, rules, rerr = server.DecodeReloadOK(f.Body)
		if rerr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", b.addr, rerr))
		}
	}
	return generation, rules, errors.Join(errs...)
}

// Reload hot-swaps the rule set on every backend.
func (p *Pool) Reload(rulesText string) (generation, rules uint32, err error) {
	return p.ReloadCtx(context.Background(), rulesText)
}

// StatsJSONCtx fetches one healthy backend's metrics snapshot (JSON).
func (p *Pool) StatsJSONCtx(ctx context.Context) ([]byte, error) {
	f, err := p.do(ctx, server.OpStats, server.OpStatsResp, nil, true)
	if err != nil {
		return nil, err
	}
	return f.Body, nil
}

// StatsCtx fetches and decodes one healthy backend's metrics
// snapshot.
func (p *Pool) StatsCtx(ctx context.Context) (*metrics.Snapshot, error) {
	raw, err := p.StatsJSONCtx(ctx)
	if err != nil {
		return nil, err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("client: stats snapshot: %w", err)
	}
	return &snap, nil
}

// Stats fetches and decodes one healthy backend's metrics snapshot.
func (p *Pool) Stats() (*metrics.Snapshot, error) { return p.StatsCtx(context.Background()) }
