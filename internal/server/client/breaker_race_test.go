// Race coverage for the breaker's half-open single-probe slot: many
// concurrent callers fight for the probe while success, failure and
// backend revival race each other. Run with -race; the invariants are
// checked on every interleaving.
package client

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/faultinject/netchaos"
	"alveare/internal/metrics"
	"alveare/internal/server"
)

// fakeNow is a hand-stepped clock for breaker tests.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeNow) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func openBreaker(clk *fakeNow) *breaker {
	b := newBreaker(1, 50*time.Millisecond, nil, nil)
	b.now = clk.now
	b.onFailure() // threshold 1: one failure opens it
	return b
}

// Exactly one of N concurrent allow() callers may win the half-open
// probe slot; the rest are refused until the probe settles.
func TestBreakerHalfOpenSingleProbeSlot(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	b := openBreaker(clk)
	clk.advance(60 * time.Millisecond) // past cooldown: next allow flips half-open

	const callers = 64
	var admitted atomic.Int32
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			if b.allow() {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d callers admitted into half-open, want exactly 1 probe slot", got)
	}
	if st := b.current(); st != BreakerHalfOpen {
		t.Fatalf("state %v after probe admission, want half-open", st)
	}

	// Probe success closes; now everyone flows.
	b.onSuccess()
	if st := b.current(); st != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", st)
	}
	for i := 0; i < 4; i++ {
		if !b.allow() {
			t.Fatal("closed breaker refused a request")
		}
	}
}

// A failed probe re-opens and re-arms the cooldown: no caller gets in
// until it elapses again, then exactly one does.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	b := openBreaker(clk)
	clk.advance(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe slot refused")
	}
	b.onFailure()
	if st := b.current(); st != BreakerOpen {
		t.Fatalf("state %v after probe failure, want open", st)
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted before the re-armed cooldown")
	}
	clk.advance(60 * time.Millisecond)
	var admitted int
	for i := 0; i < 8; i++ {
		if b.allow() {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("%d admitted after re-armed cooldown, want 1", admitted)
	}
}

// A cancelled probe releases the slot without judging the backend:
// the breaker stays half-open and the next caller becomes the probe.
func TestBreakerProbeCancelReleasesSlot(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	b := openBreaker(clk)
	clk.advance(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("probe slot refused")
	}
	if b.allow() {
		t.Fatal("second caller admitted while probe outstanding")
	}
	b.onCancel()
	if st := b.current(); st != BreakerHalfOpen {
		t.Fatalf("state %v after cancel, want half-open (no verdict)", st)
	}
	if !b.allow() {
		t.Fatal("slot not released after cancel")
	}
}

// Hammer the breaker from many goroutines with racing success,
// failure and cancel verdicts while the clock advances. The pinned
// invariant: every admitted caller holds the slot exclusively until
// it settles — the admitted-minus-settled count never exceeds one
// while not closed — and the breaker never deadlocks into a state
// where nobody can be admitted.
func TestBreakerConcurrentVerdictRace(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	reg := metrics.New()
	b := newBreaker(3, 10*time.Millisecond, reg.Counter("transitions"), reg.Gauge("state"))
	b.now = clk.now

	const goroutines = 16
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if !b.allow() {
					clk.advance(time.Millisecond)
					continue
				}
				admitted.Add(1)
				switch (g + i) % 3 {
				case 0:
					b.onSuccess()
				case 1:
					b.onFailure()
				default:
					b.onCancel()
				}
			}
		}(g)
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("no caller ever admitted")
	}
	// Terminal liveness: after a final success the breaker serves.
	b.onSuccess()
	if !b.allow() {
		t.Fatal("breaker wedged after concurrent verdict race")
	}
}

// End-to-end: concurrent callers through Backends race a shard's
// death and revival (netchaos SetDown). The breaker must open while
// the shard is down, the half-open discipline must hold under
// concurrent Acquire, and revival must close it again — with -race
// watching every interleaving.
func TestBackendsBreakerSetDownRevivalRace(t *testing.T) {
	srv := newFakeSrv(t, pongHandler)
	p, err := netchaos.New(srv.addr(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bs, err := NewBackends([]string{p.Addr()}, BackendsConfig{
		Seed:            42,
		BreakerFailures: 3,
		BreakerCooldown: 5 * time.Millisecond,
		AttemptTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()

	errSlot := errors.New("breaker refused the slot")
	ping := func() error {
		if !bs.Acquire(0) {
			return errSlot
		}
		_, err := bs.Do(nil, 0, server.OpPing, server.OpPong, nil)
		return err
	}

	// Healthy: ping flows.
	if err := ping(); err != nil {
		t.Fatalf("ping while healthy: %v", err)
	}

	// Kill the shard under concurrent traffic; the breaker must open.
	p.SetDown(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ping()
			}
		}()
	}
	wg.Wait()
	if st := bs.State(0); st == BreakerClosed {
		t.Fatalf("breaker closed after 160 failures against a dead shard")
	}

	// Revive mid-probing; concurrent callers must walk it closed.
	p.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for bs.State(0) != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after revival (state %v)", bs.State(0))
		}
		ping()
		time.Sleep(time.Millisecond)
	}
	if err := ping(); err != nil {
		t.Fatalf("ping after revival: %v", err)
	}
}
