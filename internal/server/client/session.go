package client

import (
	"context"
	"errors"
	"fmt"
	"io"

	"alveare/internal/server"
)

// ErrSessionClosed reports a write into a client session after Close
// or after a terminal failure ended it.
var ErrSessionClosed = errors.New("client: session closed")

// Session is one server-side streaming scan: chunks pushed with Write
// are absorbed into the server's carry-over state, and the matches come
// back with absolute stream offsets, byte-identical to a local
// Engine.ScanReader over the concatenated stream — including matches
// that straddle Write boundaries (up to the negotiated overlap).
//
// Sessions are stateful and therefore live OUTSIDE the client's retry
// budget: a retried SESSION-DATA could double-absorb its chunk, so no
// session request is ever retried automatically. The failure contract
// is explicit instead — a SHED means the chunk was NOT absorbed (the
// caller may resend the same chunk after backoff); any other error is
// terminal for the session (the server dropped the carry state; the
// caller re-opens and replays from its own source). A session is bound
// to the TCP connection that opened it, so a client reconnect kills it
// — the next Write answers unknown-session.
//
// A Session is single-goroutine, like the local scanners it mirrors;
// the Client underneath stays safe for concurrent use by other
// requests.
type Session struct {
	c       *Client
	id      uint64
	overlap uint32
	done    bool

	// Checkpoint negotiation (OpenSessionCheckpointCtx /
	// RestoreSessionCtx): gen is the shard rule generation the stream
	// runs under, ckpt the post-frame carry state the last acked
	// SESSION-MATCHES piggybacked — together everything a caller needs
	// to SESSION-RESTORE the stream on a replica after losing this
	// server.
	ckptOn bool
	gen    uint32
	ckpt   []byte
}

// OpenSessionCtx opens a streaming session against the server's
// current rule snapshot. overlap is the boundary carry in bytes (the
// longest match reported identically to a one-shot scan); non-positive
// selects the server's default. The session is pinned to the snapshot
// at open — a concurrent RELOAD never splits one stream across two
// rule-set generations.
func (c *Client) OpenSessionCtx(ctx context.Context, overlap int) (*Session, error) {
	if overlap < 0 {
		overlap = 0
	}
	f, err := c.do(ctx, server.OpSessionOpen, server.OpSessionOK, server.EncodeSessionOpen(uint32(overlap)), false)
	if err != nil {
		return nil, err
	}
	id, neg, err := server.DecodeSessionOK(f.Body)
	if err != nil {
		return nil, fmt.Errorf("client: protocol desync: %w", err)
	}
	return &Session{c: c, id: id, overlap: neg}, nil
}

// OpenSession opens a streaming session.
func (c *Client) OpenSession(overlap int) (*Session, error) {
	return c.OpenSessionCtx(context.Background(), overlap)
}

// OpenSessionCheckpointCtx opens a streaming session with checkpoint
// negotiation: the server answers with its rule generation and
// piggybacks a post-frame checkpoint on every SESSION-MATCHES ack
// (Checkpoint/Generation expose them). A relay — or the caller itself —
// can RestoreSessionCtx that checkpoint on a replica running the same
// rule generation and continue the stream byte-identically.
func (c *Client) OpenSessionCheckpointCtx(ctx context.Context, overlap int) (*Session, error) {
	if overlap < 0 {
		overlap = 0
	}
	body := server.EncodeSessionOpenFlags(uint32(overlap), server.SessionOpenFlagCheckpoint)
	f, err := c.do(ctx, server.OpSessionOpen, server.OpSessionOK, body, false)
	if err != nil {
		return nil, err
	}
	id, neg, gen, derr := server.DecodeSessionOKGen(f.Body)
	if derr != nil {
		return nil, fmt.Errorf("client: protocol desync: %w", derr)
	}
	return &Session{c: c, id: id, overlap: neg, ckptOn: true, gen: gen}, nil
}

// RestoreSessionCtx opens a streaming session seeded from an exported
// checkpoint (SESSION-RESTORE). The server must hold a rule set
// equivalent to the checkpoint's exporter — callers enforce that with
// Generation. The restored session keeps checkpoint negotiation on, so
// it can itself be checkpointed onward. A garbage checkpoint answers a
// clean typed error; no session is created.
func (c *Client) RestoreSessionCtx(ctx context.Context, ckpt []byte) (*Session, error) {
	body := server.EncodeSessionRestore(server.SessionOpenFlagCheckpoint, ckpt)
	f, err := c.do(ctx, server.OpSessionRestore, server.OpSessionOK, body, false)
	if err != nil {
		return nil, err
	}
	id, neg, gen, derr := server.DecodeSessionOKGen(f.Body)
	if derr != nil {
		return nil, fmt.Errorf("client: protocol desync: %w", derr)
	}
	return &Session{c: c, id: id, overlap: neg, ckptOn: true, gen: gen,
		ckpt: append([]byte(nil), ckpt...)}, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Overlap returns the negotiated boundary carry in bytes.
func (s *Session) Overlap() int { return int(s.overlap) }

// Generation returns the server rule generation the session runs under
// (0 unless the session negotiated checkpoints). A checkpoint may only
// be restored onto a server at the same generation.
func (s *Session) Generation() uint32 { return s.gen }

// Checkpoint returns the post-frame checkpoint the last acked write
// piggybacked (nil before the first ack, or when the session did not
// negotiate checkpoints). The bytes are owned by the session and
// overwritten by the next ack; copy to retain.
func (s *Session) Checkpoint() []byte { return s.ckpt }

// WriteCtx pushes one chunk into the stream and returns the matches it
// finalised (absolute stream offsets) plus the total bytes the server
// has absorbed. On ErrShed the chunk was not absorbed and may be
// resent as-is after backoff; any other error ends the session.
func (s *Session) WriteCtx(ctx context.Context, chunk []byte) (ms []server.RuleMatch, consumed uint64, err error) {
	if s.done {
		return nil, 0, ErrSessionClosed
	}
	f, err := s.c.do(ctx, server.OpSessionData, server.OpSessionMatches, server.EncodeSessionData(s.id, chunk), false)
	if err != nil {
		if !errors.Is(err, ErrShed) {
			s.done = true
		}
		return nil, 0, err
	}
	if s.ckptOn {
		final, consumed, ms, ckpt, derr := server.DecodeSessionMatchesCkpt(f.Body)
		if derr != nil || final {
			s.done = true
			if derr != nil {
				return nil, 0, fmt.Errorf("client: protocol desync: %w", derr)
			}
			return nil, 0, errors.New("client: protocol desync: final session answer to a data frame")
		}
		if ckpt != nil {
			s.ckpt = append(s.ckpt[:0], ckpt...)
		}
		return ms, consumed, nil
	}
	final, consumed, ms, derr := server.DecodeSessionMatches(f.Body)
	if derr != nil || final {
		s.done = true
		if derr != nil {
			return nil, 0, fmt.Errorf("client: protocol desync: %w", derr)
		}
		return nil, 0, errors.New("client: protocol desync: final session answer to a data frame")
	}
	return ms, consumed, nil
}

// Write pushes one chunk into the stream.
func (s *Session) Write(chunk []byte) (ms []server.RuleMatch, consumed uint64, err error) {
	return s.WriteCtx(context.Background(), chunk)
}

// CloseCtx finalises the stream: the server scans the carry-over tail
// as the final window, returns its last matches, and drops the
// session. Close is terminal whatever the outcome.
func (s *Session) CloseCtx(ctx context.Context) (ms []server.RuleMatch, consumed uint64, err error) {
	if s.done {
		return nil, 0, ErrSessionClosed
	}
	s.done = true
	f, err := s.c.do(ctx, server.OpSessionClose, server.OpSessionMatches, server.EncodeSessionClose(s.id), false)
	if err != nil {
		return nil, 0, err
	}
	final, consumed, ms, derr := server.DecodeSessionMatches(f.Body)
	if derr != nil {
		return nil, 0, fmt.Errorf("client: protocol desync: %w", derr)
	}
	if !final {
		return nil, 0, errors.New("client: protocol desync: non-final session answer to a close frame")
	}
	return ms, consumed, nil
}

// Close finalises the stream.
func (s *Session) Close() (ms []server.RuleMatch, consumed uint64, err error) {
	return s.CloseCtx(context.Background())
}

// ScanStreamCtx scans r to EOF through a server-side session: open,
// push chunkSize-sized reads, close, emitting every match in stream
// order as it arrives. It is the remote counterpart of
// Engine.ScanReader — byte-identical matches over the same stream —
// and returns the total bytes scanned. A SHED mid-stream is retried
// here by resending the unabsorbed chunk after the client's backoff
// (safe: the server never saw it); any other failure aborts.
func (c *Client) ScanStreamCtx(ctx context.Context, r io.Reader, chunkSize, overlap int, emit func(m server.RuleMatch) bool) (int64, error) {
	if chunkSize <= 0 {
		chunkSize = 64 * 1024
	}
	sess, err := c.OpenSessionCtx(ctx, overlap)
	if err != nil {
		return 0, err
	}
	flush := func(ms []server.RuleMatch) bool {
		for _, m := range ms {
			if !emit(m) {
				return false
			}
		}
		return true
	}
	var consumed uint64
	buf := make([]byte, chunkSize)
	for {
		n, rerr := io.ReadFull(r, buf)
		if n > 0 {
			ms, cons, werr := pushChunk(ctx, sess, c, buf[:n])
			if werr != nil {
				return int64(consumed), werr
			}
			consumed = cons
			if !flush(ms) {
				sess.CloseCtx(ctx)
				return int64(consumed), nil
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			sess.CloseCtx(ctx)
			return int64(consumed), rerr
		}
	}
	ms, cons, err := sess.CloseCtx(ctx)
	if err != nil {
		return int64(consumed), err
	}
	flush(ms)
	return int64(cons), nil
}

// pushChunk pushes one chunk, absorbing SHED by backing off and
// resending — safe precisely because a shed chunk was never absorbed
// server-side.
func pushChunk(ctx context.Context, sess *Session, c *Client, chunk []byte) ([]server.RuleMatch, uint64, error) {
	for attempt := 1; ; attempt++ {
		ms, cons, err := sess.WriteCtx(ctx, chunk)
		if err == nil {
			return ms, cons, nil
		}
		if !errors.Is(err, ErrShed) || attempt > c.retries {
			return nil, 0, err
		}
		if serr := c.sleep(ctx, c.backoffFor(attempt)); serr != nil {
			return nil, 0, err
		}
	}
}
