// Package client is the Go client of the alveare scan service: one
// TCP connection speaking the framed protocol of internal/server,
// reused across requests and safe for concurrent callers — requests
// from multiple goroutines pipeline on the single connection and
// responses are matched back by request id, so a slow scan never
// blocks an unrelated caller's PING. The load generator (cmd/
// alveareload) and the end-to-end tests drive the service through this
// package.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
)

// ErrShed reports that the server's admission queue was full and the
// request was rejected without being scanned; the caller should back
// off and retry.
var ErrShed = errors.New("client: request shed by server admission control")

// ServerError is a structured failure the server reported for one
// request (compile error, scan fault, draining).
type ServerError struct {
	Code byte
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error %d: %s", e.Code, e.Msg)
}

// Option configures Dial.
type Option func(*Client)

// WithMaxFrame bounds response frames (default server.DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(c *Client) { c.maxFrame = n }
}

// WithDialTimeout bounds the TCP connect (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) { c.dialTimeout = d }
}

// Client is one connection to the scan service.
type Client struct {
	maxFrame    int
	dialTimeout time.Duration

	nc  net.Conn
	wmu sync.Mutex // serialises frame writes

	mu      sync.Mutex
	waiters map[uint32]chan server.Frame
	nextID  uint32
	readErr error // terminal; set once the reader exits

	readerDone chan struct{}
}

// Dial connects to a scan service.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		maxFrame:    server.DefaultMaxFrame,
		dialTimeout: 10 * time.Second,
		waiters:     map[uint32]chan server.Frame{},
		readerDone:  make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	nc, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, err
	}
	c.nc = nc
	go c.readLoop()
	return c, nil
}

// readLoop is the demultiplexer: every response frame is routed to the
// request that carries its id. A read failure is terminal — every
// in-flight and future request fails with the cause.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		f, err := server.ReadFrame(c.nc, c.maxFrame)
		if err != nil {
			c.mu.Lock()
			c.readErr = fmt.Errorf("client: connection lost: %w", err)
			for id, ch := range c.waiters {
				close(ch)
				delete(c.waiters, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.waiters[f.ID]
		if ok {
			delete(c.waiters, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// Close tears the connection down; in-flight requests fail.
func (c *Client) Close() error {
	err := c.nc.Close()
	<-c.readerDone
	return err
}

// do issues one request and waits for its response, translating the
// protocol-level failures (SHED, ERROR) into Go errors.
func (c *Client) do(op byte, body []byte) (server.Frame, error) {
	ch := make(chan server.Frame, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return server.Frame{}, err
	}
	c.nextID++
	id := c.nextID
	c.waiters[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := server.WriteFrame(c.nc, server.Frame{Op: op, ID: id, Body: body})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return server.Frame{}, fmt.Errorf("client: write: %w", err)
	}

	f, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return server.Frame{}, err
	}
	switch f.Op {
	case server.OpShed:
		return server.Frame{}, ErrShed
	case server.OpError:
		code, msg, derr := server.DecodeError(f.Body)
		if derr != nil {
			return server.Frame{}, derr
		}
		return server.Frame{}, &ServerError{Code: code, Msg: msg}
	}
	return f, nil
}

// expect asserts the response opcode.
func expect(f server.Frame, op byte) error {
	if f.Op != op {
		return fmt.Errorf("client: unexpected %s response (want %s)", server.OpName(f.Op), server.OpName(op))
	}
	return nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	f, err := c.do(server.OpPing, nil)
	if err != nil {
		return err
	}
	return expect(f, server.OpPong)
}

// Scan runs the server's loaded rule set over payload and returns the
// matches in rule order.
func (c *Client) Scan(payload []byte) ([]server.RuleMatch, error) {
	f, err := c.do(server.OpScan, payload)
	if err != nil {
		return nil, err
	}
	if err := expect(f, server.OpMatches); err != nil {
		return nil, err
	}
	return server.DecodeMatches(f.Body)
}

// Count returns the total number of rule matches in payload.
func (c *Client) Count(payload []byte) (uint64, error) {
	f, err := c.do(server.OpCount, payload)
	if err != nil {
		return 0, err
	}
	if err := expect(f, server.OpCountResp); err != nil {
		return 0, err
	}
	return server.DecodeCount(f.Body)
}

// ScanPattern runs one ad-hoc pattern (compiled server-side through
// the LRU program cache) over payload.
func (c *Client) ScanPattern(pattern string, payload []byte) ([]server.RuleMatch, error) {
	body, err := server.EncodeScanPattern(pattern, payload)
	if err != nil {
		return nil, err
	}
	f, err := c.do(server.OpScanPattern, body)
	if err != nil {
		return nil, err
	}
	if err := expect(f, server.OpMatches); err != nil {
		return nil, err
	}
	return server.DecodeMatches(f.Body)
}

// RulesInfo describes the serving rule snapshot.
func (c *Client) RulesInfo() (server.Info, error) {
	f, err := c.do(server.OpRulesInfo, nil)
	if err != nil {
		return server.Info{}, err
	}
	if err := expect(f, server.OpInfo); err != nil {
		return server.Info{}, err
	}
	return server.DecodeInfo(f.Body)
}

// Reload hot-swaps the server's rule set with the given rules document
// (one RE per line, '#' comments); it returns the new generation and
// rule count. A compile failure leaves the serving rules untouched.
func (c *Client) Reload(rulesText string) (generation, rules uint32, err error) {
	f, err := c.do(server.OpReload, []byte(rulesText))
	if err != nil {
		return 0, 0, err
	}
	if err := expect(f, server.OpReloadOK); err != nil {
		return 0, 0, err
	}
	return server.DecodeReloadOK(f.Body)
}

// StatsJSON fetches the server's metrics snapshot as its JSON wire
// form (schema-versioned, byte-deterministic).
func (c *Client) StatsJSON() ([]byte, error) {
	f, err := c.do(server.OpStats, nil)
	if err != nil {
		return nil, err
	}
	if err := expect(f, server.OpStatsResp); err != nil {
		return nil, err
	}
	return f.Body, nil
}

// Stats fetches and decodes the server's metrics snapshot.
func (c *Client) Stats() (*metrics.Snapshot, error) {
	raw, err := c.StatsJSON()
	if err != nil {
		return nil, err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("client: stats snapshot: %w", err)
	}
	return &snap, nil
}
