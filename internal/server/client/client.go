// Package client is the Go client of the alveare scan service,
// speaking the framed protocol of internal/server and built for the
// networks a deployed scanner actually meets: connections drop
// mid-frame, servers restart, backends blackhole. A Client owns one
// logical connection that it re-establishes transparently
// (exponential backoff, full jitter) and multiplexes across
// concurrent callers — requests pipeline and responses are matched
// back by request id, so a slow scan never blocks an unrelated
// caller's PING. Every request takes a context.Context; idempotent
// requests (everything but RELOAD) can be retried under a configured
// budget. Pool layers failover across several backends with
// round-robin selection, health probes and a per-backend circuit
// breaker.
//
// Request ids are allocated from one counter that survives
// reconnects, and the response demultiplexer is per-connection, so a
// straggling response from a torn connection can never be delivered
// to a request issued after the reconnect.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
)

// ErrShed reports that the server's admission queue was full and the
// request was rejected without being scanned; the caller should back
// off and retry (WithRetries does both automatically).
var ErrShed = errors.New("client: request shed by server admission control")

// ErrClosed reports a request issued against a Client or Pool after
// Close.
var ErrClosed = errors.New("client: closed")

// ShedError is a SHED that carried a gateway reason byte (quota,
// fair-queue, capacity, ...). It matches errors.Is(err, ErrShed), so
// callers that only care about back-pressure need not distinguish.
type ShedError struct{ Reason byte }

func (e *ShedError) Error() string {
	return fmt.Sprintf("client: request shed (%s)", server.ShedReasonName(e.Reason))
}

// Is makes every reasoned shed an ErrShed.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// ServerError is a structured failure the server reported for one
// request (compile error, scan fault, draining). It is authoritative
// — the backend was reachable and answered — so it is never retried,
// except for the draining code, which Pool treats as an invitation to
// fail over to another backend.
type ServerError struct {
	Code byte
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error %d: %s", e.Code, e.Msg)
}

// PartialError reports a gateway scatter-gather answer that covered
// only part of the fleet (MATCHES-PARTIAL with the partial flag set).
// The matches that WERE gathered are carried here — the caller
// decides whether a partial view is usable — and the shard accounting
// says exactly how much is missing; nothing is silently dropped. It
// is authoritative (the gateway answered after exhausting its own
// per-shard budgets) and therefore never retried.
type PartialError struct {
	Matches      []server.RuleMatch
	ShardsOK     int
	ShardsFailed int
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("client: partial result: %d/%d shards answered (%d matches gathered)",
		e.ShardsOK, e.ShardsOK+e.ShardsFailed, len(e.Matches))
}

// RetryError reports an idempotent request that failed every attempt
// its retry budget allowed. Err is the final attempt's failure;
// errors.Is/As look through it, so errors.Is(err, ErrShed) still
// identifies a request that was shed on its last attempt.
type RetryError struct {
	Attempts int
	Err      error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("client: retry budget exhausted after %d attempts: %v", e.Attempts, e.Err)
}

func (e *RetryError) Unwrap() error { return e.Err }

// retryable reports whether err is a transport-level failure worth
// another attempt, possibly on another backend: connection loss, dial
// failure, protocol desync, attempt timeout, SHED. Authoritative
// server answers and a closed client are not.
func retryable(err error) bool {
	if err == nil || errors.Is(err, ErrClosed) {
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		// A draining backend answered, but will not take the work;
		// the request is still safe to send elsewhere.
		return se.Code == server.ErrCodeDraining
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		// The gateway already exhausted its per-shard budgets to
		// produce this; re-asking immediately reproduces it.
		return false
	}
	return true
}

// Option configures a Client (and, through PoolClientOptions, the
// Clients inside a Pool).
type Option func(*Client)

// WithMaxFrame bounds response frames (default server.DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(c *Client) { c.maxFrame = n }
}

// WithDialTimeout bounds one TCP connect attempt (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) { c.dialTimeout = d }
}

// WithRetries sets the retry budget for idempotent requests (PING,
// SCAN, COUNT, SCAN-PATTERN, RULES-INFO, STATS): up to n additional
// attempts after the first, each preceded by an exponential-backoff
// sleep with full jitter. RELOAD is never retried — see
// docs/PROTOCOL.md. Default 0: fail fast on the first error.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the retry backoff window: attempt k sleeps a
// uniformly random duration in (0, min(base<<(k-1), max)). Defaults:
// base 20ms, max 2s.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.boBase, c.boMax = base, max }
}

// WithAttemptTimeout bounds each individual attempt (dial + write +
// response), independently of the request context's deadline. A
// stalled backend then costs one attempt, not the whole request —
// the next attempt may find a healthier connection or backend.
// Default 0: only the request context bounds an attempt.
func WithAttemptTimeout(d time.Duration) Option {
	return func(c *Client) { c.attemptTO = d }
}

// WithSeed seeds the backoff jitter, making retry schedules
// reproducible (chaos tests print the seed they used).
func WithSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithMetrics publishes the client's resilience counters (attempts,
// retries, reconnects, per-attempt latency) into reg instead of a
// private registry.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *Client) { c.reg = reg }
}

// WithSleep replaces the backoff sleep (a test seam for fake clocks;
// the default honours ctx cancellation).
func WithSleep(sleep func(context.Context, time.Duration) error) Option {
	return func(c *Client) { c.sleep = sleep }
}

// WithTenant stamps every queue-class request (SCAN, COUNT,
// SCAN-PATTERN, RELOAD) with a TENANT envelope naming the tenant and
// rule namespace — how a client addresses a multi-tenant gateway.
// Control requests (PING, RULES-INFO, STATS) stay bare; a plain
// alvearesrv answers enveloped requests with ERROR (unknown opcode),
// so only point a tenant-configured client at a gateway.
func WithTenant(tenant, namespace string) Option {
	return func(c *Client) {
		c.tenant = server.TenantHeader{Tenant: tenant, Namespace: namespace}
	}
}

// clientMetrics resolves the resilience metric handles once.
type clientMetrics struct {
	attempts   *metrics.Counter
	retries    *metrics.Counter
	reconnects *metrics.Counter
	attemptLat *metrics.Histogram
}

func resolveClientMetrics(reg *metrics.Registry) clientMetrics {
	return clientMetrics{
		attempts:   reg.Counter("client.attempts"),
		retries:    reg.Counter("client.retries"),
		reconnects: reg.Counter("client.reconnects"),
		attemptLat: reg.Histogram("client.attempt_latency_us"),
	}
}

// connState is one live TCP connection: its writer lock, its waiter
// table, and its reader goroutine's lifecycle. Reconnecting replaces
// the whole connState, so waiters can never leak across connections.
type connState struct {
	nc  net.Conn
	wmu sync.Mutex // serialises frame writes

	mu      sync.Mutex
	waiters map[uint32]chan server.Frame
	readErr error // terminal; set once the reader exits

	readerDone chan struct{}
}

func (cs *connState) dead() bool {
	select {
	case <-cs.readerDone:
		return true
	default:
		return false
	}
}

// Client is one logical connection to a scan service, re-established
// on demand after connection loss. Safe for concurrent use.
type Client struct {
	addr        string
	maxFrame    int
	dialTimeout time.Duration
	attemptTO   time.Duration
	retries     int
	boBase      time.Duration
	boMax       time.Duration
	sleep       func(context.Context, time.Duration) error
	tenant      server.TenantHeader // zero: no envelope

	reg *metrics.Registry
	met clientMetrics

	rngMu sync.Mutex
	rng   *rand.Rand

	dialMu sync.Mutex // serialises reconnect attempts

	mu        sync.Mutex
	cs        *connState // nil until dialed; replaced on reconnect
	nextID    uint32     // monotonic across reconnects: ids are never reused
	connected bool       // a connection has been established at least once
	closed    bool
}

// New builds a Client without connecting; the first request dials.
// Use Dial to connect eagerly and surface unreachable backends at
// construction.
func New(addr string, opts ...Option) *Client {
	c := &Client{
		addr:        addr,
		maxFrame:    server.DefaultMaxFrame,
		dialTimeout: 10 * time.Second,
		boBase:      20 * time.Millisecond,
		boMax:       2 * time.Second,
		sleep:       sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if c.reg == nil {
		c.reg = metrics.New()
	}
	c.met = resolveClientMetrics(c.reg)
	return c
}

// Dial connects to a scan service, failing if the backend is
// unreachable right now.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := New(addr, opts...)
	if _, err := c.conn(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// Addr returns the backend address the client targets.
func (c *Client) Addr() string { return c.addr }

// Pending returns the number of requests waiting for a response on
// the current connection — zero once every request has completed or
// failed (the regression tests pin that a deadline leaves no waiter
// entry behind).
func (c *Client) Pending() int {
	c.mu.Lock()
	cs := c.cs
	c.mu.Unlock()
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.waiters)
}

// conn returns the live connection, dialing (or re-dialing) if
// necessary. Dials are serialised so a burst of concurrent requests
// after a connection loss produces one reconnect, not a stampede.
func (c *Client) conn(ctx context.Context) (*connState, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if cs := c.cs; cs != nil && !cs.dead() {
		c.mu.Unlock()
		return cs, nil
	}
	c.mu.Unlock()

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// Another caller may have reconnected while we waited.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if cs := c.cs; cs != nil && !cs.dead() {
		c.mu.Unlock()
		return cs, nil
	}
	c.mu.Unlock()

	d := net.Dialer{Timeout: c.dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	cs := &connState{
		nc:         nc,
		waiters:    map[uint32]chan server.Frame{},
		readerDone: make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return nil, ErrClosed
	}
	if c.connected {
		c.met.reconnects.Inc()
	}
	c.connected = true
	c.cs = cs
	c.mu.Unlock()
	go c.readLoop(cs)
	return cs, nil
}

// invalidate retires a connection the caller observed failing; the
// next request reconnects. Only the current connState is cleared, so
// a stale failure can never tear down a fresh connection.
func (c *Client) invalidate(cs *connState) {
	c.mu.Lock()
	if c.cs == cs {
		c.cs = nil
	}
	c.mu.Unlock()
	cs.nc.Close()
}

// readLoop is one connection's demultiplexer: every response frame is
// routed to the request carrying its id. A read failure is terminal
// for the connection — every in-flight request on it fails with the
// cause — but not for the Client, which reconnects on the next
// request.
func (c *Client) readLoop(cs *connState) {
	defer close(cs.readerDone)
	for {
		f, err := server.ReadFrame(cs.nc, c.maxFrame)
		if err != nil {
			cs.mu.Lock()
			cs.readErr = fmt.Errorf("client: connection lost: %w", err)
			for id, ch := range cs.waiters {
				close(ch)
				delete(cs.waiters, id)
			}
			cs.mu.Unlock()
			return
		}
		cs.mu.Lock()
		ch, ok := cs.waiters[f.ID]
		if ok {
			delete(cs.waiters, f.ID)
		}
		cs.mu.Unlock()
		if ok {
			ch <- f // buffered: never blocks, even if the waiter left
		}
	}
}

// Close tears the connection down; in-flight requests fail. It is
// idempotent and safe to race with concurrent requests — later calls
// return nil, later requests fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	cs := c.cs
	c.cs = nil
	c.mu.Unlock()
	if cs != nil {
		cs.nc.Close()
		<-cs.readerDone
	}
	return nil
}

// sleepCtx is the default backoff sleep: d, or until ctx cancels.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffFor sizes the sleep before retry attempt k (1-based):
// exponential window base<<(k-1) capped at max, full jitter (uniform
// over the window) with a small floor so a shed request is never
// hot-looped.
func (c *Client) backoffFor(attempt int) time.Duration {
	window := c.boBase
	for i := 1; i < attempt && window < c.boMax; i++ {
		window <<= 1
	}
	if window > c.boMax {
		window = c.boMax
	}
	if window <= 0 {
		return 0
	}
	c.rngMu.Lock()
	d := time.Duration(c.rng.Int63n(int64(window)))
	c.rngMu.Unlock()
	if floor := window / 16; d < floor {
		d = floor
	}
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return d
}

// attemptCtx derives the per-attempt context.
func (c *Client) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.attemptTO <= 0 {
		return ctx, nil
	}
	return context.WithTimeout(ctx, c.attemptTO)
}

// attempt issues one request on the current (or a fresh) connection
// and waits for its response, translating protocol-level failures
// (SHED, ERROR, desync) into Go errors. On ctx expiry the waiter
// entry is removed before returning, so an abandoned request leaks
// nothing.
func (c *Client) attempt(ctx context.Context, op, wantOp byte, body []byte) (server.Frame, error) {
	start := time.Now()
	wireOp, wireBody := op, body
	if c.tenant.Tenant != "" && server.QueueClass(op) {
		wrapped, werr := server.EncodeTenant(c.tenant, op, body)
		if werr != nil {
			return server.Frame{}, fmt.Errorf("client: tenant envelope: %w", werr)
		}
		wireOp, wireBody = server.OpTenant, wrapped
	}
	cs, err := c.conn(ctx)
	if err != nil {
		return server.Frame{}, err
	}
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	ch := make(chan server.Frame, 1)
	cs.mu.Lock()
	if cs.readErr != nil {
		err := cs.readErr
		cs.mu.Unlock()
		return server.Frame{}, err
	}
	cs.waiters[id] = ch
	cs.mu.Unlock()

	cs.wmu.Lock()
	werr := server.WriteFrame(cs.nc, server.Frame{Op: wireOp, ID: id, Body: wireBody})
	cs.wmu.Unlock()
	c.met.attempts.Inc()
	if werr != nil {
		cs.mu.Lock()
		delete(cs.waiters, id)
		cs.mu.Unlock()
		c.invalidate(cs)
		return server.Frame{}, fmt.Errorf("client: write: %w", werr)
	}

	select {
	case f, ok := <-ch:
		c.met.attemptLat.Observe(time.Since(start).Microseconds())
		if !ok {
			cs.mu.Lock()
			err := cs.readErr
			cs.mu.Unlock()
			if err == nil {
				err = errors.New("client: connection lost")
			}
			return server.Frame{}, err
		}
		switch f.Op {
		case server.OpShed:
			if len(f.Body) >= 1 && f.Body[0] != 0 {
				return server.Frame{}, &ShedError{Reason: f.Body[0]}
			}
			return server.Frame{}, ErrShed
		case server.OpError:
			code, msg, derr := server.DecodeError(f.Body)
			if derr != nil {
				c.invalidate(cs)
				return server.Frame{}, fmt.Errorf("client: protocol desync: %w", derr)
			}
			return server.Frame{}, &ServerError{Code: code, Msg: msg}
		}
		if f.Op == server.OpMatchesPartial && wantOp == server.OpMatches {
			// A gateway's scatter-gather answer. Complete coverage
			// translates to a plain MATCHES; partial coverage is an
			// explicit, non-retryable error carrying what was gathered.
			partial, okSh, failSh, ms, derr := server.DecodeMatchesPartial(f.Body)
			if derr != nil {
				c.invalidate(cs)
				return server.Frame{}, fmt.Errorf("client: protocol desync: %w", derr)
			}
			if partial {
				return server.Frame{}, &PartialError{Matches: ms, ShardsOK: int(okSh), ShardsFailed: int(failSh)}
			}
			return server.Frame{Op: server.OpMatches, ID: f.ID, Body: server.EncodeMatches(ms)}, nil
		}
		if f.Op != wantOp {
			// The stream answered with an opcode this request cannot
			// have produced: framing has desynchronised (e.g. a
			// corrupted length field realigned on garbage). The
			// connection cannot be trusted; drop it and let the retry
			// layer re-issue on a fresh one.
			c.invalidate(cs)
			return server.Frame{}, fmt.Errorf("client: protocol desync: unexpected %s response (want %s)",
				server.OpName(f.Op), server.OpName(wantOp))
		}
		return f, nil
	case <-ctx.Done():
		cs.mu.Lock()
		delete(cs.waiters, id)
		cs.mu.Unlock()
		c.met.attemptLat.Observe(time.Since(start).Microseconds())
		return server.Frame{}, ctx.Err()
	}
}

// do runs one request under the retry budget. Only idempotent
// requests retry; each retry sleeps the jittered backoff first and
// reconnects if the connection was lost.
func (c *Client) do(ctx context.Context, op, wantOp byte, body []byte, idempotent bool) (server.Frame, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := 0
	for {
		actx, cancel := c.attemptCtx(ctx)
		f, err := c.attempt(actx, op, wantOp, body)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return f, nil
		}
		attempts++
		if !idempotent || c.retries <= 0 || !retryable(err) {
			return server.Frame{}, err
		}
		if ctx.Err() != nil {
			// The request's own deadline expired; the attempt error is
			// the more useful cause.
			return server.Frame{}, err
		}
		if attempts > c.retries {
			return server.Frame{}, &RetryError{Attempts: attempts, Err: err}
		}
		c.met.retries.Inc()
		if serr := c.sleep(ctx, c.backoffFor(attempts)); serr != nil {
			return server.Frame{}, &RetryError{Attempts: attempts, Err: err}
		}
	}
}

// PingCtx round-trips a liveness probe.
func (c *Client) PingCtx(ctx context.Context) error {
	_, err := c.do(ctx, server.OpPing, server.OpPong, nil, true)
	return err
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error { return c.PingCtx(context.Background()) }

// ScanCtx runs the server's loaded rule set over payload and returns
// the matches in rule order.
func (c *Client) ScanCtx(ctx context.Context, payload []byte) ([]server.RuleMatch, error) {
	f, err := c.do(ctx, server.OpScan, server.OpMatches, payload, true)
	if err != nil {
		return nil, err
	}
	return server.DecodeMatches(f.Body)
}

// Scan runs the server's loaded rule set over payload.
func (c *Client) Scan(payload []byte) ([]server.RuleMatch, error) {
	return c.ScanCtx(context.Background(), payload)
}

// CountCtx returns the total number of rule matches in payload.
func (c *Client) CountCtx(ctx context.Context, payload []byte) (uint64, error) {
	f, err := c.do(ctx, server.OpCount, server.OpCountResp, payload, true)
	if err != nil {
		return 0, err
	}
	return server.DecodeCount(f.Body)
}

// Count returns the total number of rule matches in payload.
func (c *Client) Count(payload []byte) (uint64, error) {
	return c.CountCtx(context.Background(), payload)
}

// ScanPatternCtx runs one ad-hoc pattern (compiled server-side
// through the LRU program cache) over payload.
func (c *Client) ScanPatternCtx(ctx context.Context, pattern string, payload []byte) ([]server.RuleMatch, error) {
	body, err := server.EncodeScanPattern(pattern, payload)
	if err != nil {
		return nil, err
	}
	f, err := c.do(ctx, server.OpScanPattern, server.OpMatches, body, true)
	if err != nil {
		return nil, err
	}
	return server.DecodeMatches(f.Body)
}

// ScanPattern runs one ad-hoc pattern over payload.
func (c *Client) ScanPattern(pattern string, payload []byte) ([]server.RuleMatch, error) {
	return c.ScanPatternCtx(context.Background(), pattern, payload)
}

// RulesInfoCtx describes the serving rule snapshot.
func (c *Client) RulesInfoCtx(ctx context.Context) (server.Info, error) {
	f, err := c.do(ctx, server.OpRulesInfo, server.OpInfo, nil, true)
	if err != nil {
		return server.Info{}, err
	}
	return server.DecodeInfo(f.Body)
}

// RulesInfo describes the serving rule snapshot.
func (c *Client) RulesInfo() (server.Info, error) {
	return c.RulesInfoCtx(context.Background())
}

// ReloadCtx hot-swaps the server's rule set with the given rules
// document (one RE per line, '#' comments); it returns the new
// generation and rule count. A compile failure leaves the serving
// rules untouched. RELOAD is NOT idempotent — a retried reload that
// had already been applied would bump the generation twice — so it is
// never retried regardless of the retry budget; on a connection loss
// mid-reload the caller must inspect RULES-INFO before re-issuing.
func (c *Client) ReloadCtx(ctx context.Context, rulesText string) (generation, rules uint32, err error) {
	f, err := c.do(ctx, server.OpReload, server.OpReloadOK, []byte(rulesText), false)
	if err != nil {
		return 0, 0, err
	}
	return server.DecodeReloadOK(f.Body)
}

// Reload hot-swaps the server's rule set.
func (c *Client) Reload(rulesText string) (generation, rules uint32, err error) {
	return c.ReloadCtx(context.Background(), rulesText)
}

// StatsJSONCtx fetches the server's metrics snapshot as its JSON wire
// form (schema-versioned, byte-deterministic).
func (c *Client) StatsJSONCtx(ctx context.Context) ([]byte, error) {
	f, err := c.do(ctx, server.OpStats, server.OpStatsResp, nil, true)
	if err != nil {
		return nil, err
	}
	return f.Body, nil
}

// StatsJSON fetches the server's metrics snapshot as JSON bytes.
func (c *Client) StatsJSON() ([]byte, error) { return c.StatsJSONCtx(context.Background()) }

// StatsCtx fetches and decodes the server's metrics snapshot.
func (c *Client) StatsCtx(ctx context.Context) (*metrics.Snapshot, error) {
	raw, err := c.StatsJSONCtx(ctx)
	if err != nil {
		return nil, err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("client: stats snapshot: %w", err)
	}
	return &snap, nil
}

// Stats fetches and decodes the server's metrics snapshot.
func (c *Client) Stats() (*metrics.Snapshot, error) { return c.StatsCtx(context.Background()) }
