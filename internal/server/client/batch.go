package client

import (
	"context"
	"fmt"

	"alveare/internal/server"
)

// BatchResult is one SCAN-BATCH item's outcome: its matches, or the
// per-item failure the server isolated (a *ServerError — authoritative,
// not retryable on its own; resend just that payload if it matters).
type BatchResult struct {
	Matches []server.RuleMatch
	Err     error
}

// ScanBatchCtx scans many payloads in one round trip: one frame in,
// one frame out, per-item results in order. Framing, admission control
// and dispatch are paid once for the whole batch, which is what makes
// small-payload scanning (log records, packet payloads) cheap — see
// docs/PROTOCOL.md for the measured amortisation. All items scan
// against one rule snapshot: a concurrent RELOAD never splits a batch
// across generations. The request is idempotent and retried under the
// configured budget, like SCAN.
func (c *Client) ScanBatchCtx(ctx context.Context, payloads [][]byte) ([]BatchResult, error) {
	body, err := server.EncodeScanBatch(payloads)
	if err != nil {
		return nil, err
	}
	f, err := c.do(ctx, server.OpScanBatch, server.OpBatchResp, body, true)
	if err != nil {
		return nil, err
	}
	items, err := server.DecodeBatchResults(f.Body)
	if err != nil {
		return nil, fmt.Errorf("client: protocol desync: %w", err)
	}
	if len(items) != len(payloads) {
		return nil, fmt.Errorf("client: protocol desync: batch answered %d items for %d payloads",
			len(items), len(payloads))
	}
	out := make([]BatchResult, len(items))
	for i, it := range items {
		if it.Failed() {
			out[i] = BatchResult{Err: &ServerError{Code: it.Code, Msg: it.Msg}}
		} else {
			out[i] = BatchResult{Matches: it.Matches}
		}
	}
	return out, nil
}

// ScanBatch scans many payloads in one round trip.
func (c *Client) ScanBatch(payloads [][]byte) ([]BatchResult, error) {
	return c.ScanBatchCtx(context.Background(), payloads)
}
