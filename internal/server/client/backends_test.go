package client

import (
	"testing"
	"time"
)

// The health-probe interval must be full-jittered — uniform draws
// over (0, interval] with an interval/16 floor — so a fleet of
// gateways sharing a config cannot synchronise into a probe storm
// against a recovering shard. This pins the jitter's bounds, spread
// and determinism.
func TestBackendsProbeJitter(t *testing.T) {
	srv := newFakeSrv(t, pongHandler)
	const interval = 160 * time.Millisecond
	bs, err := NewBackends([]string{srv.addr()}, BackendsConfig{
		Seed: 99,
		// ProbeInterval deliberately unset: the loop must not start,
		// but jitteredProbeDelay still draws from probeEvery.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	bs.probeEvery = interval

	floor := interval / 16
	seen := map[time.Duration]bool{}
	var prev time.Duration
	monotone := true
	for i := 0; i < 200; i++ {
		d := bs.jitteredProbeDelay()
		if d < floor || d > interval+1 {
			t.Fatalf("draw %d: %v outside (%v, %v]", i, d, floor, interval)
		}
		seen[d] = true
		if i > 0 && d != prev {
			monotone = false
		}
		prev = d
	}
	if len(seen) < 50 {
		t.Errorf("only %d distinct draws in 200; the interval is not jittered", len(seen))
	}
	if monotone {
		t.Error("every draw identical; a fixed ticker in disguise")
	}

	// Same seed, same schedule: the jitter is replayable.
	bs2, err := NewBackends([]string{srv.addr()}, BackendsConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer bs2.Close()
	bs2.probeEvery = interval
	for i := 0; i < 20; i++ {
		// bs has consumed 200 draws; use a third fresh instance to
		// compare against bs2 from the start.
	}
	bs3, err := NewBackends([]string{srv.addr()}, BackendsConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer bs3.Close()
	bs3.probeEvery = interval
	for i := 0; i < 50; i++ {
		if a, b := bs2.jitteredProbeDelay(), bs3.jitteredProbeDelay(); a != b {
			t.Fatalf("draw %d: seeds equal but draws differ (%v vs %v)", i, a, b)
		}
	}
	// Different seeds decorrelate.
	bs4, err := NewBackends([]string{srv.addr()}, BackendsConfig{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer bs4.Close()
	bs4.probeEvery = interval
	same := 0
	for i := 0; i < 50; i++ {
		if bs2.jitteredProbeDelay() == bs4.jitteredProbeDelay() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("%d/50 draws collide across different seeds; fleet members would synchronise", same)
	}
}

// The prober actually drives a non-closed breaker back to closed
// without any request traffic.
func TestBackendsProberRecoversBreaker(t *testing.T) {
	srv := newFakeSrv(t, pongHandler)
	bs, err := NewBackends([]string{srv.addr()}, BackendsConfig{
		Seed:            7,
		BreakerFailures: 1,
		BreakerCooldown: 2 * time.Millisecond,
		ProbeInterval:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()

	// Fail the breaker open by hand; the prober must rescue it.
	bs.members[0].brk.onFailure()
	if bs.State(0) != BreakerOpen {
		t.Fatalf("breaker not open after forced failure")
	}
	deadline := time.Now().Add(5 * time.Second)
	for bs.State(0) != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("prober never closed the breaker (state %v)", bs.State(0))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
