package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
)

// fakeSrv is a scripted scan-service stand-in: every accepted
// connection reads frames and feeds them to the handler, which
// answers on the same conn (or returns false to slam it shut).
type fakeSrv struct {
	ln      net.Listener
	accepts atomic.Int64
	handler func(c net.Conn, f server.Frame) bool
}

func newFakeSrv(t *testing.T, handler func(net.Conn, server.Frame) bool) *fakeSrv {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeSrv{ln: ln, handler: handler}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fs.accepts.Add(1)
			go func() {
				defer c.Close()
				for {
					f, err := server.ReadFrame(c, 0)
					if err != nil {
						return
					}
					if !fs.handler(c, f) {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func (fs *fakeSrv) addr() string { return fs.ln.Addr().String() }

// pongHandler answers every request with PONG.
func pongHandler(c net.Conn, f server.Frame) bool {
	return server.WriteFrame(c, server.Frame{Op: server.OpPong, ID: f.ID}) == nil
}

// sleepRecorder is a WithSleep hook that records backoff durations
// without actually sleeping.
type sleepRecorder struct {
	mu sync.Mutex
	ds []time.Duration
}

func (r *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	r.mu.Lock()
	r.ds = append(r.ds, d)
	r.mu.Unlock()
	return ctx.Err()
}

func (r *sleepRecorder) durations() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.ds...)
}

// deadAddr reserves a loopback port and closes it, yielding an
// address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestStalledServerFailsAtDeadline is the regression test for the
// blocked-forever bug: a server that accepts a request but never
// answers must fail the request at its context deadline and leave no
// waiter entry behind.
func TestStalledServerFailsAtDeadline(t *testing.T) {
	fs := newFakeSrv(t, func(net.Conn, server.Frame) bool { return true }) // read, never answer
	c, err := Dial(fs.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.PingCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled request returned %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline took %s to fire", d)
	}
	if n := c.Pending(); n != 0 {
		t.Fatalf("%d waiter entries left behind after deadline", n)
	}
}

// TestAttemptTimeoutRetries pins that WithAttemptTimeout bounds one
// attempt, not the request: the stalled first attempt times out, the
// retry succeeds.
func TestAttemptTimeoutRetries(t *testing.T) {
	var n atomic.Int64
	fs := newFakeSrv(t, func(c net.Conn, f server.Frame) bool {
		if n.Add(1) == 1 {
			return true // stall the first request only
		}
		return pongHandler(c, f)
	})
	rec := &sleepRecorder{}
	c, err := Dial(fs.addr(),
		WithAttemptTimeout(80*time.Millisecond), WithRetries(2), WithSeed(1), WithSleep(rec.sleep))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after stalled attempt: %v", err)
	}
	if len(rec.durations()) == 0 {
		t.Fatal("no backoff sleep before the retry")
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("%d waiters left after attempt timeout", got)
	}
}

// TestCloseIdempotentAndRacesInflight pins the double-close contract:
// Close twice returns nil both times, and a Close racing an in-flight
// request fails the request instead of hanging or panicking.
func TestCloseIdempotentAndRacesInflight(t *testing.T) {
	fs := newFakeSrv(t, func(net.Conn, server.Frame) bool { return true }) // stall
	c, err := Dial(fs.addr())
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- c.PingCtx(context.Background()) }()
	for i := 0; i < 500 && c.Pending() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if c.Pending() == 0 {
		t.Fatal("request never became pending")
	}

	if err := c.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v (must be idempotent)", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight request survived Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request hung across Close")
	}
	if err := c.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("request after Close returned %v, want ErrClosed", err)
	}
}

// TestReconnectAfterConnectionLoss: a server that drops the
// connection after every response forces a redial per request; the
// retry budget makes that invisible to the caller.
func TestReconnectAfterConnectionLoss(t *testing.T) {
	fs := newFakeSrv(t, func(c net.Conn, f server.Frame) bool {
		server.WriteFrame(c, server.Frame{Op: server.OpPong, ID: f.ID})
		return false // hang up after each answer
	})
	reg := metrics.New()
	rec := &sleepRecorder{}
	c, err := Dial(fs.addr(), WithRetries(3), WithSeed(7), WithSleep(rec.sleep), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if got := fs.accepts.Load(); got < 2 {
		t.Fatalf("server saw %d connections, want >= 2 (reconnects)", got)
	}
	if got := reg.Counter("client.reconnects").Load(); got < 1 {
		t.Fatalf("client.reconnects = %d, want >= 1", got)
	}
}

// TestRetryBudgetExhausted: against a dead backend the client makes
// exactly 1+budget attempts with a backoff sleep between each, then
// reports RetryError.
func TestRetryBudgetExhausted(t *testing.T) {
	reg := metrics.New()
	rec := &sleepRecorder{}
	c := New(deadAddr(t), WithRetries(3), WithSeed(11), WithSleep(rec.sleep), WithMetrics(reg))
	defer c.Close()

	err := c.Ping()
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RetryError", err)
	}
	if re.Attempts != 4 {
		t.Fatalf("RetryError.Attempts = %d, want 4 (1 + budget 3)", re.Attempts)
	}
	if got := rec.durations(); len(got) != 3 {
		t.Fatalf("%d backoff sleeps, want 3", len(got))
	}
	if got := reg.Counter("client.retries").Load(); got != 3 {
		t.Fatalf("client.retries = %d, want 3", got)
	}
}

// TestShedRetriedOnlyAfterBackoff pins the satellite contract: a shed
// request is retried, but every retry is preceded by a non-zero
// backoff sleep — never a hot loop — and the final error still
// answers errors.Is(err, ErrShed).
func TestShedRetriedOnlyAfterBackoff(t *testing.T) {
	var served atomic.Int64
	fs := newFakeSrv(t, func(c net.Conn, f server.Frame) bool {
		served.Add(1)
		return server.WriteFrame(c, server.Frame{Op: server.OpShed, ID: f.ID}) == nil
	})
	rec := &sleepRecorder{}
	c, err := Dial(fs.addr(), WithRetries(2), WithSeed(3), WithSleep(rec.sleep))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Scan([]byte("payload"))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed through the retry wrapper", err)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.Attempts != 3 {
		t.Fatalf("got %v, want RetryError with 3 attempts", err)
	}
	ds := rec.durations()
	if len(ds) != 2 {
		t.Fatalf("%d backoff sleeps for 2 retries, want 2", len(ds))
	}
	for i, d := range ds {
		if d <= 0 {
			t.Fatalf("retry %d slept %v: shed retries must back off, never hot-loop", i, d)
		}
	}
	if got := served.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestReloadNeverRetried: RELOAD is not idempotent; even with a retry
// budget and a retryable (connection-lost) failure it must be sent
// exactly once and never slept for.
func TestReloadNeverRetried(t *testing.T) {
	var reloads atomic.Int64
	fs := newFakeSrv(t, func(c net.Conn, f server.Frame) bool {
		if f.Op == server.OpReload {
			reloads.Add(1)
			return false // die mid-request: retryable if anything is
		}
		return pongHandler(c, f)
	})
	rec := &sleepRecorder{}
	c, err := Dial(fs.addr(), WithRetries(5), WithSeed(5), WithSleep(rec.sleep))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Reload("foo\n"); err == nil {
		t.Fatal("reload against a dying server succeeded")
	}
	if got := reloads.Load(); got != 1 {
		t.Fatalf("server saw %d RELOAD frames, want exactly 1", got)
	}
	if got := rec.durations(); len(got) != 0 {
		t.Fatalf("reload slept %d times for retries, want 0", len(got))
	}
}

// TestDesyncResponseTearsConnection: a response whose opcode cannot
// answer the request means the stream is desynchronised; the client
// must drop the connection and dial fresh for the next request.
func TestDesyncResponseTearsConnection(t *testing.T) {
	var n atomic.Int64
	fs := newFakeSrv(t, func(c net.Conn, f server.Frame) bool {
		if n.Add(1) == 1 {
			// Nonsense: COUNT-RESP to a PING.
			return server.WriteFrame(c, server.Frame{Op: server.OpCountResp, ID: f.ID, Body: make([]byte, 8)}) == nil
		}
		return pongHandler(c, f)
	})
	c, err := Dial(fs.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err == nil {
		t.Fatal("desynced response did not error")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after desync teardown: %v", err)
	}
	if got := fs.accepts.Load(); got != 2 {
		t.Fatalf("server saw %d connections, want 2 (desync must redial)", got)
	}
}

// TestBackoffWindows pins the backoff shape: deterministic under one
// seed, exponentially widening, capped at max, never zero.
func TestBackoffWindows(t *testing.T) {
	mk := func() *Client {
		return New("127.0.0.1:1", WithSeed(42), WithBackoff(10*time.Millisecond, 80*time.Millisecond))
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := a.backoffFor(attempt), b.backoffFor(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
		if da <= 0 {
			t.Fatalf("attempt %d: zero backoff", attempt)
		}
		if da > 80*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds max", attempt, da)
		}
	}
}

// TestRetryableClassification pins which failures are worth another
// attempt.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrClosed, false},
		{&ServerError{Code: server.ErrCodeScan, Msg: "boom"}, false},
		{&ServerError{Code: server.ErrCodeCompile, Msg: "paren"}, false},
		{&ServerError{Code: server.ErrCodeDraining, Msg: "bye"}, true},
		{ErrShed, true},
		{context.DeadlineExceeded, true},
		{errors.New("client: connection lost: EOF"), true},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
