// Package server turns the scanning library into a long-running
// network service: a TCP listener speaking a small length-prefixed
// binary protocol, a worker pool with bounded admission feeding the
// concurrent RuleSet scanner, and a rule database that hot-reloads by
// atomic snapshot swap — the library-to-appliance step the paper's
// deep-packet-inspection deployment model implies (Snort rule sets
// over network traffic, the BlueField-2 DPU baseline's niche).
//
// This file is the wire format. Every message is one frame:
//
//	offset  size  field
//	0       4     length  — uint32 big-endian, bytes after this field
//	4       1     opcode
//	5       4     id      — request id, echoed verbatim in the response
//	9       ...   body    — length-5 bytes, opcode-specific
//
// The length field covers the opcode, id and body, so the smallest
// legal frame has length 5 (empty body). Frames above the receiver's
// limit (DefaultMaxFrame unless configured) are rejected without
// buffering the body. docs/PROTOCOL.md documents the byte-level layout
// of every body; the golden tests in protocol_test.go pin it.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request opcodes (client → server).
const (
	OpPing        byte = 0x01 // liveness probe, empty body
	OpScan        byte = 0x02 // body = payload; scan against the loaded rule set
	OpCount       byte = 0x03 // body = payload; respond with the total match count
	OpScanPattern byte = 0x04 // body = u16 pattern-len, pattern, payload; ad-hoc single pattern
	OpRulesInfo   byte = 0x05 // empty body; describe the loaded rule snapshot
	OpReload      byte = 0x06 // body = rules text (one RE per line); hot-swap the rule set
	OpStats       byte = 0x07 // empty body; respond with the server metrics snapshot
	OpTenant      byte = 0x08 // gateway envelope: tenant header + inner queue-class request
	OpScanBatch   byte = 0x09 // body = u32 count, count × (u32 len, payload); per-item results
	OpSessionOpen byte = 0x0A // body = u32 requested overlap; open a streaming session
	OpSessionData byte = 0x0B // body = u64 session id, chunk bytes; push one stream chunk
	// OpSessionClose finalises a streaming session: the overlap tail is
	// scanned as the stream's final window and the session is released.
	OpSessionClose byte = 0x0C // body = u64 session id
	// OpSessionRestore opens a streaming session seeded from an exported
	// checkpoint (the body a SESSION-MATCHES piggyback carried): u8
	// flags (same bits as the SESSION-OPEN flags byte), then the
	// checkpoint bytes. Answered like SESSION-OPEN; a garbage checkpoint
	// answers a parseable ERROR without desyncing the connection.
	OpSessionRestore byte = 0x0D
)

// Response opcodes (server → client; high bit set).
const (
	OpPong      byte = 0x81 // answers OpPing, empty body
	OpMatches   byte = 0x82 // answers OpScan/OpScanPattern; body = match list
	OpCountResp byte = 0x83 // answers OpCount; body = u64 count
	OpInfo      byte = 0x85 // answers OpRulesInfo; body = generation + patterns
	OpReloadOK  byte = 0x86 // answers OpReload; body = u32 generation, u32 rule count
	OpStatsResp byte = 0x87 // answers OpStats; body = metrics snapshot JSON
	// OpMatchesPartial answers a gateway scatter-gather OpScanPattern
	// whose fan-out did not cover every shard: u8 flags, u16 shards
	// answered, u16 shards missed, then a standard MATCHES body. A
	// shard that failed or was excluded is always accounted here —
	// never silently dropped.
	OpMatchesPartial byte = 0x8A
	OpBatchResp      byte = 0x8B // answers OpScanBatch; body = per-item results
	OpSessionOK      byte = 0x8C // answers OpSessionOpen; body = u64 id, u32 overlap
	// OpSessionMatches answers OpSessionData and OpSessionClose: u8
	// flags (bit 0 final), u64 consumed stream bytes, then a standard
	// MATCHES body whose offsets are absolute stream positions.
	OpSessionMatches byte = 0x8D
	OpError          byte = 0xE0 // any request; body = 1-byte code + utf-8 message
	// OpShed: admission control rejected the request. The body is
	// empty from a plain server; a gateway appends one optional reason
	// byte (see ShedReason*). Either form is a SHED.
	OpShed byte = 0xEE
)

// OpError body codes.
const (
	ErrCodeBadFrame      byte = 1 // malformed or unparseable request body
	ErrCodeCompile       byte = 2 // rule or ad-hoc pattern failed to compile
	ErrCodeScan          byte = 3 // the scan itself failed (fault, timeout)
	ErrCodeDraining      byte = 4 // server is shutting down, not accepting work
	ErrCodeUnknownTenant byte = 5 // gateway: TENANT names a tenant it does not serve
	// ErrCodeUnknownSession: a SESSION-DATA or SESSION-CLOSE named a
	// session the receiver does not hold — never opened here, already
	// closed, reaped idle, owned by another connection, or lost with a
	// dead shard. The stream state is gone; the client must re-open and
	// replay from its own copy of the flow.
	ErrCodeUnknownSession byte = 6
)

// SHED reason codes, the optional single body byte of a gateway SHED.
const (
	ShedReasonQueue    byte = 1 // a backend's admission queue was full
	ShedReasonQuota    byte = 2 // the tenant's rate quota was exhausted
	ShedReasonFairQ    byte = 3 // the tenant's fair-queue slot was full (noisy tenant)
	ShedReasonCapacity byte = 4 // no healthy shard accepted the work within the retry budget
)

// ShedReasonName spells a SHED reason for diagnostics; 0 is the plain
// server's reasonless SHED.
func ShedReasonName(r byte) string {
	switch r {
	case 0:
		return "unspecified"
	case ShedReasonQueue:
		return "queue-full"
	case ShedReasonQuota:
		return "quota"
	case ShedReasonFairQ:
		return "fair-queue"
	case ShedReasonCapacity:
		return "capacity"
	}
	return fmt.Sprintf("reason-0x%02X", r)
}

// DefaultMaxFrame bounds one frame (opcode + id + body) unless the
// server or client is configured otherwise: 1 MiB, comfortably above
// the DPI deployment's packet-sized payloads.
const DefaultMaxFrame = 1 << 20

// frameHeader is the fixed prefix: u32 length, u8 opcode, u32 id.
const frameHeader = 9

// minFrameLen is the smallest legal value of the length field
// (opcode + id, empty body).
const minFrameLen = 5

// Wire-format errors.
var (
	// ErrFrameTooLarge reports a frame whose length field exceeds the
	// receiver's limit; the body is never read.
	ErrFrameTooLarge = errors.New("server: frame exceeds size limit")
	// ErrMalformedFrame reports a structurally invalid frame: a length
	// below the opcode+id minimum, or a body that does not parse as its
	// opcode demands.
	ErrMalformedFrame = errors.New("server: malformed frame")
)

// Frame is one protocol message, either direction.
type Frame struct {
	Op   byte
	ID   uint32
	Body []byte
}

// WriteFrame serialises f to w as one length-prefixed frame.
func WriteFrame(w io.Writer, f Frame) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(minFrameLen+len(f.Body)))
	hdr[4] = f.Op
	binary.BigEndian.PutUint32(hdr[5:9], f.ID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Body) == 0 {
		return nil
	}
	_, err := w.Write(f.Body)
	return err
}

// ReadFrame reads one frame from r, rejecting frames whose length field
// exceeds max (non-positive max selects DefaultMaxFrame) before any
// body byte is buffered. A clean EOF at a frame boundary returns
// io.EOF; EOF inside a frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) (Frame, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n < minFrameLen {
		return Frame{}, fmt.Errorf("%w: length %d below minimum %d", ErrMalformedFrame, n, minFrameLen)
	}
	if int64(n) > int64(max) {
		return Frame{}, fmt.Errorf("%w: length %d > limit %d", ErrFrameTooLarge, n, max)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return Frame{}, unexpectedEOF(err)
	}
	f := Frame{Op: hdr[4], ID: binary.BigEndian.Uint32(hdr[5:9])}
	if body := int(n) - minFrameLen; body > 0 {
		f.Body = make([]byte, body)
		if _, err := io.ReadFull(r, f.Body); err != nil {
			return Frame{}, unexpectedEOF(err)
		}
	}
	return f, nil
}

// unexpectedEOF maps a mid-frame EOF to io.ErrUnexpectedEOF so callers
// can tell a torn frame from a clean close.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// RuleMatch is one match in an OpMatches body: the matching rule's
// index in the loaded snapshot (always 0 for OpScanPattern) and the
// half-open byte interval in the scanned payload.
type RuleMatch struct {
	Rule       uint32
	Start, End uint64
}

// matchRecord is one RuleMatch on the wire: u32 rule, u64 start, u64 end.
const matchRecord = 4 + 8 + 8

// EncodeMatches serialises an OpMatches body: u32 count, then count
// records of (u32 rule, u64 start, u64 end).
func EncodeMatches(ms []RuleMatch) []byte {
	body := make([]byte, 4+matchRecord*len(ms))
	binary.BigEndian.PutUint32(body, uint32(len(ms)))
	off := 4
	for _, m := range ms {
		binary.BigEndian.PutUint32(body[off:], m.Rule)
		binary.BigEndian.PutUint64(body[off+4:], m.Start)
		binary.BigEndian.PutUint64(body[off+12:], m.End)
		off += matchRecord
	}
	return body
}

// DecodeMatches parses an OpMatches body.
func DecodeMatches(body []byte) ([]RuleMatch, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: matches body %d bytes", ErrMalformedFrame, len(body))
	}
	n := binary.BigEndian.Uint32(body)
	if uint64(len(body)-4) != uint64(n)*matchRecord {
		return nil, fmt.Errorf("%w: matches body %d bytes for count %d", ErrMalformedFrame, len(body), n)
	}
	if n == 0 {
		return nil, nil
	}
	ms := make([]RuleMatch, n)
	off := 4
	for i := range ms {
		ms[i] = RuleMatch{
			Rule:  binary.BigEndian.Uint32(body[off:]),
			Start: binary.BigEndian.Uint64(body[off+4:]),
			End:   binary.BigEndian.Uint64(body[off+12:]),
		}
		off += matchRecord
	}
	return ms, nil
}

// EncodeCount serialises an OpCountResp body: u64 total.
func EncodeCount(n uint64) []byte {
	body := make([]byte, 8)
	binary.BigEndian.PutUint64(body, n)
	return body
}

// DecodeCount parses an OpCountResp body.
func DecodeCount(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: count body %d bytes", ErrMalformedFrame, len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}

// EncodeScanPattern serialises an OpScanPattern body: u16 pattern
// length, the pattern, then the payload.
func EncodeScanPattern(pattern string, payload []byte) ([]byte, error) {
	if len(pattern) > 0xFFFF {
		return nil, fmt.Errorf("%w: pattern %d bytes exceeds u16", ErrMalformedFrame, len(pattern))
	}
	body := make([]byte, 2+len(pattern)+len(payload))
	binary.BigEndian.PutUint16(body, uint16(len(pattern)))
	copy(body[2:], pattern)
	copy(body[2+len(pattern):], payload)
	return body, nil
}

// DecodeScanPattern parses an OpScanPattern body. payload aliases body.
func DecodeScanPattern(body []byte) (pattern string, payload []byte, err error) {
	if len(body) < 2 {
		return "", nil, fmt.Errorf("%w: scan-pattern body %d bytes", ErrMalformedFrame, len(body))
	}
	plen := int(binary.BigEndian.Uint16(body))
	if len(body)-2 < plen {
		return "", nil, fmt.Errorf("%w: scan-pattern length %d exceeds body", ErrMalformedFrame, plen)
	}
	return string(body[2 : 2+plen]), body[2+plen:], nil
}

// Info describes the loaded rule snapshot: the hot-reload generation
// (0 for the rules the server started with, +1 per accepted OpReload)
// and the patterns in rule order.
type Info struct {
	Generation uint32
	Patterns   []string
}

// EncodeInfo serialises an OpInfo body: u32 generation, u32 rule
// count, then per rule u16 length + pattern bytes.
func EncodeInfo(info Info) ([]byte, error) {
	size := 8
	for _, p := range info.Patterns {
		if len(p) > 0xFFFF {
			return nil, fmt.Errorf("%w: pattern %d bytes exceeds u16", ErrMalformedFrame, len(p))
		}
		size += 2 + len(p)
	}
	body := make([]byte, size)
	binary.BigEndian.PutUint32(body, info.Generation)
	binary.BigEndian.PutUint32(body[4:], uint32(len(info.Patterns)))
	off := 8
	for _, p := range info.Patterns {
		binary.BigEndian.PutUint16(body[off:], uint16(len(p)))
		copy(body[off+2:], p)
		off += 2 + len(p)
	}
	return body, nil
}

// DecodeInfo parses an OpInfo body.
func DecodeInfo(body []byte) (Info, error) {
	if len(body) < 8 {
		return Info{}, fmt.Errorf("%w: info body %d bytes", ErrMalformedFrame, len(body))
	}
	info := Info{Generation: binary.BigEndian.Uint32(body)}
	n := binary.BigEndian.Uint32(body[4:])
	off := 8
	for i := uint32(0); i < n; i++ {
		if len(body)-off < 2 {
			return Info{}, fmt.Errorf("%w: info truncated at pattern %d", ErrMalformedFrame, i)
		}
		plen := int(binary.BigEndian.Uint16(body[off:]))
		off += 2
		if len(body)-off < plen {
			return Info{}, fmt.Errorf("%w: info pattern %d length %d exceeds body", ErrMalformedFrame, i, plen)
		}
		info.Patterns = append(info.Patterns, string(body[off:off+plen]))
		off += plen
	}
	if off != len(body) {
		return Info{}, fmt.Errorf("%w: info body has %d trailing bytes", ErrMalformedFrame, len(body)-off)
	}
	return info, nil
}

// EncodeReloadOK serialises an OpReloadOK body: u32 generation, u32
// rule count.
func EncodeReloadOK(generation, rules uint32) []byte {
	body := make([]byte, 8)
	binary.BigEndian.PutUint32(body, generation)
	binary.BigEndian.PutUint32(body[4:], rules)
	return body
}

// DecodeReloadOK parses an OpReloadOK body.
func DecodeReloadOK(body []byte) (generation, rules uint32, err error) {
	if len(body) != 8 {
		return 0, 0, fmt.Errorf("%w: reload-ok body %d bytes", ErrMalformedFrame, len(body))
	}
	return binary.BigEndian.Uint32(body), binary.BigEndian.Uint32(body[4:]), nil
}

// EncodeError serialises an OpError body: 1-byte code + utf-8 message.
func EncodeError(code byte, msg string) []byte {
	body := make([]byte, 1+len(msg))
	body[0] = code
	copy(body[1:], msg)
	return body
}

// DecodeError parses an OpError body.
func DecodeError(body []byte) (code byte, msg string, err error) {
	if len(body) < 1 {
		return 0, "", fmt.Errorf("%w: empty error body", ErrMalformedFrame)
	}
	return body[0], string(body[1:]), nil
}

// MaxTenantName bounds the tenant and namespace fields of a TENANT
// envelope. The wire format could carry 255 bytes (u8 lengths); the
// protocol caps both at 64 so a hostile header cannot bloat every
// routing key, metric name and log line downstream.
const MaxTenantName = 64

// TenantHeader is the routing header of a TENANT envelope: which
// tenant the inner request belongs to and which of its rule
// namespaces it targets. Namespace may be empty (the tenant's default
// namespace); Tenant may not.
type TenantHeader struct {
	Tenant    string
	Namespace string
}

// Key returns the consistent-hashing routing key.
func (h TenantHeader) Key() string { return h.Tenant + "/" + h.Namespace }

// EncodeTenant serialises a TENANT envelope body: u8 tenant length,
// tenant, u8 namespace length, namespace, u8 inner opcode, inner
// body. Only queue-class opcodes (SCAN, COUNT, SCAN-PATTERN, RELOAD)
// may be wrapped.
func EncodeTenant(h TenantHeader, innerOp byte, innerBody []byte) ([]byte, error) {
	if h.Tenant == "" {
		return nil, fmt.Errorf("%w: empty tenant", ErrMalformedFrame)
	}
	if len(h.Tenant) > MaxTenantName || len(h.Namespace) > MaxTenantName {
		return nil, fmt.Errorf("%w: tenant header field exceeds %d bytes", ErrMalformedFrame, MaxTenantName)
	}
	if !queueClassOp(innerOp) {
		return nil, fmt.Errorf("%w: %s cannot carry a tenant header", ErrMalformedFrame, OpName(innerOp))
	}
	body := make([]byte, 0, 3+len(h.Tenant)+len(h.Namespace)+len(innerBody))
	body = append(body, byte(len(h.Tenant)))
	body = append(body, h.Tenant...)
	body = append(body, byte(len(h.Namespace)))
	body = append(body, h.Namespace...)
	body = append(body, innerOp)
	body = append(body, innerBody...)
	return body, nil
}

// DecodeTenant parses a TENANT envelope body; innerBody aliases body.
func DecodeTenant(body []byte) (h TenantHeader, innerOp byte, innerBody []byte, err error) {
	if len(body) < 1 {
		return h, 0, nil, fmt.Errorf("%w: empty tenant envelope", ErrMalformedFrame)
	}
	tlen := int(body[0])
	if tlen == 0 {
		return h, 0, nil, fmt.Errorf("%w: empty tenant", ErrMalformedFrame)
	}
	if tlen > MaxTenantName {
		return h, 0, nil, fmt.Errorf("%w: tenant %d bytes exceeds %d", ErrMalformedFrame, tlen, MaxTenantName)
	}
	if len(body) < 1+tlen+1 {
		return h, 0, nil, fmt.Errorf("%w: tenant envelope truncated in tenant", ErrMalformedFrame)
	}
	h.Tenant = string(body[1 : 1+tlen])
	rest := body[1+tlen:]
	nlen := int(rest[0])
	if nlen > MaxTenantName {
		return TenantHeader{}, 0, nil, fmt.Errorf("%w: namespace %d bytes exceeds %d", ErrMalformedFrame, nlen, MaxTenantName)
	}
	if len(rest) < 1+nlen+1 {
		return TenantHeader{}, 0, nil, fmt.Errorf("%w: tenant envelope truncated in namespace", ErrMalformedFrame)
	}
	h.Namespace = string(rest[1 : 1+nlen])
	innerOp = rest[1+nlen]
	if !queueClassOp(innerOp) {
		return TenantHeader{}, 0, nil, fmt.Errorf("%w: tenant envelope wraps %s", ErrMalformedFrame, OpName(innerOp))
	}
	return h, innerOp, rest[1+nlen+1:], nil
}

// QueueClass reports whether op passes admission control into the
// worker queue — the class a TENANT envelope may wrap. PING,
// RULES-INFO and STATS answer inline and carry no tenant header.
// SESSION-DATA and SESSION-CLOSE are queue-class too, but serialise
// per session: a session's frames execute in arrival order, one at a
// time, through the same bounded queue.
func QueueClass(op byte) bool {
	switch op {
	case OpScan, OpCount, OpScanPattern, OpReload,
		OpScanBatch, OpSessionOpen, OpSessionRestore, OpSessionData, OpSessionClose:
		return true
	}
	return false
}

func queueClassOp(op byte) bool { return QueueClass(op) }

// PartialFlag bits of a MATCHES-PARTIAL body.
const partialFlagPartial byte = 1 << 0

// EncodeMatchesPartial serialises an OpMatchesPartial body: u8 flags
// (bit 0: at least one shard is missing from the result), u16 shards
// answered, u16 shards missed, then the standard MATCHES body.
func EncodeMatchesPartial(partial bool, shardsOK, shardsFailed uint16, ms []RuleMatch) []byte {
	inner := EncodeMatches(ms)
	body := make([]byte, 5+len(inner))
	if partial {
		body[0] |= partialFlagPartial
	}
	binary.BigEndian.PutUint16(body[1:3], shardsOK)
	binary.BigEndian.PutUint16(body[3:5], shardsFailed)
	copy(body[5:], inner)
	return body
}

// DecodeMatchesPartial parses an OpMatchesPartial body.
func DecodeMatchesPartial(body []byte) (partial bool, shardsOK, shardsFailed uint16, ms []RuleMatch, err error) {
	if len(body) < 5 {
		return false, 0, 0, nil, fmt.Errorf("%w: matches-partial body %d bytes", ErrMalformedFrame, len(body))
	}
	if body[0]&^partialFlagPartial != 0 {
		return false, 0, 0, nil, fmt.Errorf("%w: matches-partial unknown flags 0x%02X", ErrMalformedFrame, body[0])
	}
	ms, err = DecodeMatches(body[5:])
	if err != nil {
		return false, 0, 0, nil, err
	}
	return body[0]&partialFlagPartial != 0,
		binary.BigEndian.Uint16(body[1:3]), binary.BigEndian.Uint16(body[3:5]), ms, nil
}

// OpName returns the opcode's protocol name, for diagnostics.
func OpName(op byte) string {
	switch op {
	case OpPing:
		return "PING"
	case OpScan:
		return "SCAN"
	case OpCount:
		return "COUNT"
	case OpScanPattern:
		return "SCAN-PATTERN"
	case OpRulesInfo:
		return "RULES-INFO"
	case OpReload:
		return "RELOAD"
	case OpStats:
		return "STATS"
	case OpTenant:
		return "TENANT"
	case OpScanBatch:
		return "SCAN-BATCH"
	case OpSessionOpen:
		return "SESSION-OPEN"
	case OpSessionData:
		return "SESSION-DATA"
	case OpSessionClose:
		return "SESSION-CLOSE"
	case OpSessionRestore:
		return "SESSION-RESTORE"
	case OpPong:
		return "PONG"
	case OpMatches:
		return "MATCHES"
	case OpCountResp:
		return "COUNT-RESP"
	case OpInfo:
		return "INFO"
	case OpReloadOK:
		return "RELOAD-OK"
	case OpStatsResp:
		return "STATS-RESP"
	case OpMatchesPartial:
		return "MATCHES-PARTIAL"
	case OpBatchResp:
		return "BATCH-RESP"
	case OpSessionOK:
		return "SESSION-OK"
	case OpSessionMatches:
		return "SESSION-MATCHES"
	case OpError:
		return "ERROR"
	case OpShed:
		return "SHED"
	}
	return fmt.Sprintf("OP-0x%02X", op)
}
