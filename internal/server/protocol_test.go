package server

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// goldenFrames pins the byte-level wire format of every frame type,
// request and response, against docs/PROTOCOL.md. Changing any of
// these bytes is a protocol break.
var goldenFrames = []struct {
	name  string
	frame Frame
	wire  []byte
}{
	{
		name:  "ping",
		frame: Frame{Op: OpPing, ID: 1},
		wire:  []byte{0, 0, 0, 5, 0x01, 0, 0, 0, 1},
	},
	{
		name:  "scan",
		frame: Frame{Op: OpScan, ID: 0x01020304, Body: []byte("abc")},
		wire:  []byte{0, 0, 0, 8, 0x02, 1, 2, 3, 4, 'a', 'b', 'c'},
	},
	{
		name:  "count",
		frame: Frame{Op: OpCount, ID: 7, Body: []byte("x")},
		wire:  []byte{0, 0, 0, 6, 0x03, 0, 0, 0, 7, 'x'},
	},
	{
		name:  "scan-pattern",
		frame: Frame{Op: OpScanPattern, ID: 2, Body: mustScanPattern("ab", []byte("payload"))},
		wire: []byte{0, 0, 0, 16, 0x04, 0, 0, 0, 2,
			0, 2, 'a', 'b', 'p', 'a', 'y', 'l', 'o', 'a', 'd'},
	},
	{
		name:  "rules-info",
		frame: Frame{Op: OpRulesInfo, ID: 3},
		wire:  []byte{0, 0, 0, 5, 0x05, 0, 0, 0, 3},
	},
	{
		name:  "reload",
		frame: Frame{Op: OpReload, ID: 4, Body: []byte("foo\n")},
		wire:  []byte{0, 0, 0, 9, 0x06, 0, 0, 0, 4, 'f', 'o', 'o', '\n'},
	},
	{
		name:  "stats",
		frame: Frame{Op: OpStats, ID: 5},
		wire:  []byte{0, 0, 0, 5, 0x07, 0, 0, 0, 5},
	},
	{
		name:  "pong",
		frame: Frame{Op: OpPong, ID: 1},
		wire:  []byte{0, 0, 0, 5, 0x81, 0, 0, 0, 1},
	},
	{
		name: "matches",
		frame: Frame{Op: OpMatches, ID: 6, Body: EncodeMatches([]RuleMatch{
			{Rule: 1, Start: 2, End: 0x0102030405060708},
		})},
		wire: []byte{0, 0, 0, 29, 0x82, 0, 0, 0, 6,
			0, 0, 0, 1, // count
			0, 0, 0, 1, // rule
			0, 0, 0, 0, 0, 0, 0, 2, // start
			1, 2, 3, 4, 5, 6, 7, 8, // end
		},
	},
	{
		name:  "matches-empty",
		frame: Frame{Op: OpMatches, ID: 6, Body: EncodeMatches(nil)},
		wire:  []byte{0, 0, 0, 9, 0x82, 0, 0, 0, 6, 0, 0, 0, 0},
	},
	{
		name:  "count-resp",
		frame: Frame{Op: OpCountResp, ID: 7, Body: EncodeCount(258)},
		wire:  []byte{0, 0, 0, 13, 0x83, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 1, 2},
	},
	{
		name:  "info",
		frame: Frame{Op: OpInfo, ID: 8, Body: mustInfo(Info{Generation: 2, Patterns: []string{"a", "bc"}})},
		wire: []byte{0, 0, 0, 20, 0x85, 0, 0, 0, 8,
			0, 0, 0, 2, // generation
			0, 0, 0, 2, // rule count
			0, 1, 'a',
			0, 2, 'b', 'c',
		},
	},
	{
		name:  "reload-ok",
		frame: Frame{Op: OpReloadOK, ID: 9, Body: EncodeReloadOK(3, 17)},
		wire:  []byte{0, 0, 0, 13, 0x86, 0, 0, 0, 9, 0, 0, 0, 3, 0, 0, 0, 17},
	},
	{
		name:  "stats-resp",
		frame: Frame{Op: OpStatsResp, ID: 10, Body: []byte(`{"schema":1}`)},
		wire: []byte{0, 0, 0, 17, 0x87, 0, 0, 0, 10,
			'{', '"', 's', 'c', 'h', 'e', 'm', 'a', '"', ':', '1', '}'},
	},
	{
		name:  "error",
		frame: Frame{Op: OpError, ID: 11, Body: EncodeError(ErrCodeScan, "no")},
		wire:  []byte{0, 0, 0, 8, 0xE0, 0, 0, 0, 11, 3, 'n', 'o'},
	},
	{
		name:  "shed",
		frame: Frame{Op: OpShed, ID: 12},
		wire:  []byte{0, 0, 0, 5, 0xEE, 0, 0, 0, 12},
	},
}

func mustScanPattern(p string, payload []byte) []byte {
	b, err := EncodeScanPattern(p, payload)
	if err != nil {
		panic(err)
	}
	return b
}

func mustInfo(i Info) []byte {
	b, err := EncodeInfo(i)
	if err != nil {
		panic(err)
	}
	return b
}

func TestGoldenFrames(t *testing.T) {
	for _, tc := range goldenFrames {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.frame); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), tc.wire) {
				t.Fatalf("wire bytes\n got %v\nwant %v", buf.Bytes(), tc.wire)
			}
			got, err := ReadFrame(bytes.NewReader(tc.wire), 0)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.Op != tc.frame.Op || got.ID != tc.frame.ID || !bytes.Equal(got.Body, tc.frame.Body) {
				t.Fatalf("round-trip mismatch: got %+v want %+v", got, tc.frame)
			}
		})
	}
}

// TestReadFrameTruncated feeds every strict prefix of every golden
// frame: a prefix inside a frame must yield io.ErrUnexpectedEOF (or a
// clean io.EOF only at offset 0 — no bytes at all is a clean close).
func TestReadFrameTruncated(t *testing.T) {
	for _, tc := range goldenFrames {
		for cut := 0; cut < len(tc.wire); cut++ {
			_, err := ReadFrame(bytes.NewReader(tc.wire[:cut]), 0)
			if cut == 0 {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("%s cut=0: got %v, want io.EOF", tc.name, err)
				}
				continue
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%s cut=%d: got %v, want EOF-class error", tc.name, cut, err)
			}
			// A cut inside the header-after-length or the body must be the
			// torn-frame error, not a clean close.
			if cut > 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%s cut=%d: got %v, want io.ErrUnexpectedEOF", tc.name, cut, err)
			}
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Op: OpScan, ID: 1, Body: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf, 64)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// The limit must be enforced from the length field alone — a huge
	// advertised length with no body behind it still fails fast.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(huge), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("advertised 4GiB frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameGarbage(t *testing.T) {
	// Length below the opcode+id minimum is structurally invalid.
	for _, n := range []byte{0, 1, 4} {
		wire := []byte{0, 0, 0, n, 0xAA, 0, 0, 0, 0}
		if _, err := ReadFrame(bytes.NewReader(wire), 0); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("length %d: got %v, want ErrMalformedFrame", n, err)
		}
	}
	// An unknown opcode is not a framing error — it parses and the
	// dispatcher rejects it; the frame layer stays opcode-agnostic.
	wire := []byte{0, 0, 0, 5, 0x7F, 0, 0, 0, 9}
	f, err := ReadFrame(bytes.NewReader(wire), 0)
	if err != nil || f.Op != 0x7F || f.ID != 9 {
		t.Fatalf("unknown opcode: frame %+v err %v", f, err)
	}
}

func TestDecodeMalformedBodies(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"matches-short", func() error { _, err := DecodeMatches([]byte{0, 0}); return err }()},
		{"matches-count-mismatch", func() error { _, err := DecodeMatches([]byte{0, 0, 0, 2, 1, 2, 3}); return err }()},
		{"count-short", func() error { _, err := DecodeCount([]byte{1, 2, 3}); return err }()},
		{"scan-pattern-short", func() error { _, _, err := DecodeScanPattern([]byte{9}); return err }()},
		{"scan-pattern-overrun", func() error { _, _, err := DecodeScanPattern([]byte{0, 5, 'a'}); return err }()},
		{"info-short", func() error { _, err := DecodeInfo([]byte{0, 0, 0}); return err }()},
		{"info-truncated-pattern", func() error {
			_, err := DecodeInfo([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0})
			return err
		}()},
		{"info-pattern-overrun", func() error {
			_, err := DecodeInfo([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 9, 'a'})
			return err
		}()},
		{"info-trailing", func() error {
			body := append(mustInfo(Info{Patterns: []string{"a"}}), 0xFF)
			_, err := DecodeInfo(body)
			return err
		}()},
		{"reload-ok-short", func() error { _, _, err := DecodeReloadOK([]byte{0}); return err }()},
		{"error-empty", func() error { _, _, err := DecodeError(nil); return err }()},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, ErrMalformedFrame) {
			t.Errorf("%s: got %v, want ErrMalformedFrame", tc.name, tc.err)
		}
	}
}

func TestEncodeDecodeRoundTrips(t *testing.T) {
	ms := []RuleMatch{{Rule: 0, Start: 0, End: 1}, {Rule: 9, Start: 100, End: 200}}
	got, err := DecodeMatches(EncodeMatches(ms))
	if err != nil || !reflect.DeepEqual(got, ms) {
		t.Fatalf("matches: %v %v", got, err)
	}
	if n, err := DecodeCount(EncodeCount(1 << 40)); err != nil || n != 1<<40 {
		t.Fatalf("count: %d %v", n, err)
	}
	body := mustScanPattern("a+b", []byte{0, 1, 2})
	p, payload, err := DecodeScanPattern(body)
	if err != nil || p != "a+b" || !bytes.Equal(payload, []byte{0, 1, 2}) {
		t.Fatalf("scan-pattern: %q %v %v", p, payload, err)
	}
	info := Info{Generation: 7, Patterns: []string{"", "a", strings.Repeat("x", 300)}}
	gotInfo, err := DecodeInfo(mustInfo(info))
	if err != nil || !reflect.DeepEqual(gotInfo, info) {
		t.Fatalf("info: %+v %v", gotInfo, err)
	}
	g, r, err := DecodeReloadOK(EncodeReloadOK(5, 6))
	if err != nil || g != 5 || r != 6 {
		t.Fatalf("reload-ok: %d %d %v", g, r, err)
	}
	code, msg, err := DecodeError(EncodeError(ErrCodeCompile, "bad pattern"))
	if err != nil || code != ErrCodeCompile || msg != "bad pattern" {
		t.Fatalf("error: %d %q %v", code, msg, err)
	}
	if _, err := EncodeScanPattern(strings.Repeat("x", 1<<16), nil); err == nil {
		t.Fatal("oversized pattern: want error")
	}
	if _, err := EncodeInfo(Info{Patterns: []string{strings.Repeat("x", 1<<16)}}); err == nil {
		t.Fatal("oversized info pattern: want error")
	}
}

func TestOpNames(t *testing.T) {
	ops := []byte{OpPing, OpScan, OpCount, OpScanPattern, OpRulesInfo, OpReload, OpStats,
		OpTenant, OpScanBatch, OpSessionOpen, OpSessionData, OpSessionClose,
		OpPong, OpMatches, OpCountResp, OpInfo, OpReloadOK, OpStatsResp,
		OpMatchesPartial, OpBatchResp, OpSessionOK, OpSessionMatches, OpError, OpShed}
	seen := map[string]bool{}
	for _, op := range ops {
		name := OpName(op)
		if strings.HasPrefix(name, "OP-0x") {
			t.Errorf("opcode 0x%02X has no name", op)
		}
		if seen[name] {
			t.Errorf("duplicate opcode name %s", name)
		}
		seen[name] = true
	}
	if got := OpName(0x42); got != "OP-0x42" {
		t.Errorf("unknown opcode name = %q", got)
	}
}
