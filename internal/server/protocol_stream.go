// Wire format of the batched and streaming-session extensions. One
// SCAN-BATCH frame carries many small payloads and returns per-item
// results, amortizing framing, admission and dispatch over the batch —
// the shape of log-line and message-bus traffic. A streaming session
// (SESSION-OPEN / SESSION-DATA / SESSION-CLOSE) carries the chunked
// overlap-window state of internal/stream across frames, so a client
// can push an unbounded flow (pcap, tail -f) and receive matches with
// byte-identical semantics to a local Engine.ScanReader — including
// matches that straddle frame boundaries. docs/PROTOCOL.md documents
// every layout; protocol_stream_test.go pins the bytes.
package server

import (
	"encoding/binary"
	"fmt"
)

// MaxBatchItems bounds one SCAN-BATCH frame. The frame size cap already
// bounds the bytes; this bounds the per-item bookkeeping a hostile
// count field could otherwise demand before any payload is parsed.
const MaxBatchItems = 4096

// EncodeScanBatch serialises an OpScanBatch body: u32 item count, then
// per item u32 length + payload bytes.
func EncodeScanBatch(items [][]byte) ([]byte, error) {
	if len(items) > MaxBatchItems {
		return nil, fmt.Errorf("%w: batch of %d items exceeds %d", ErrMalformedFrame, len(items), MaxBatchItems)
	}
	size := 4
	for _, it := range items {
		size += 4 + len(it)
	}
	body := make([]byte, size)
	binary.BigEndian.PutUint32(body, uint32(len(items)))
	off := 4
	for _, it := range items {
		binary.BigEndian.PutUint32(body[off:], uint32(len(it)))
		copy(body[off+4:], it)
		off += 4 + len(it)
	}
	return body, nil
}

// DecodeScanBatch parses an OpScanBatch body; the items alias body.
func DecodeScanBatch(body []byte) ([][]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: scan-batch body %d bytes", ErrMalformedFrame, len(body))
	}
	n := binary.BigEndian.Uint32(body)
	if n > MaxBatchItems {
		return nil, fmt.Errorf("%w: scan-batch count %d exceeds %d", ErrMalformedFrame, n, MaxBatchItems)
	}
	items := make([][]byte, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if len(body)-off < 4 {
			return nil, fmt.Errorf("%w: scan-batch truncated at item %d", ErrMalformedFrame, i)
		}
		ilen := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if len(body)-off < ilen {
			return nil, fmt.Errorf("%w: scan-batch item %d length %d exceeds body", ErrMalformedFrame, i, ilen)
		}
		items = append(items, body[off:off+ilen])
		off += ilen
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: scan-batch body has %d trailing bytes", ErrMalformedFrame, len(body)-off)
	}
	return items, nil
}

// BatchItemResult is one payload's outcome inside an OpBatchResp body:
// either its match list (Code 0) or its isolated failure. One item
// failing never discards its neighbours' results.
type BatchItemResult struct {
	Matches []RuleMatch
	Code    byte // 0 = ok, otherwise an ERROR code
	Msg     string
}

// Failed reports whether the item carries an error instead of matches.
func (r BatchItemResult) Failed() bool { return r.Code != 0 }

// EncodeBatchResults serialises an OpBatchResp body: u32 item count,
// then per item u8 status — 0 followed by a standard MATCHES body, or
// 1 followed by u8 code, u16 message length, message bytes.
func EncodeBatchResults(results []BatchItemResult) []byte {
	size := 4
	for _, r := range results {
		if r.Failed() {
			msg := r.Msg
			if len(msg) > 0xFFFF {
				msg = msg[:0xFFFF]
			}
			size += 1 + 1 + 2 + len(msg)
		} else {
			size += 1 + 4 + matchRecord*len(r.Matches)
		}
	}
	body := make([]byte, 0, size)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(results)))
	body = append(body, u32[:]...)
	for _, r := range results {
		if r.Failed() {
			msg := r.Msg
			if len(msg) > 0xFFFF {
				msg = msg[:0xFFFF]
			}
			body = append(body, 1, r.Code)
			var u16 [2]byte
			binary.BigEndian.PutUint16(u16[:], uint16(len(msg)))
			body = append(body, u16[:]...)
			body = append(body, msg...)
			continue
		}
		body = append(body, 0)
		body = append(body, EncodeMatches(r.Matches)...)
	}
	return body
}

// DecodeBatchResults parses an OpBatchResp body.
func DecodeBatchResults(body []byte) ([]BatchItemResult, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: batch-resp body %d bytes", ErrMalformedFrame, len(body))
	}
	n := binary.BigEndian.Uint32(body)
	if n > MaxBatchItems {
		return nil, fmt.Errorf("%w: batch-resp count %d exceeds %d", ErrMalformedFrame, n, MaxBatchItems)
	}
	out := make([]BatchItemResult, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if len(body)-off < 1 {
			return nil, fmt.Errorf("%w: batch-resp truncated at item %d", ErrMalformedFrame, i)
		}
		status := body[off]
		off++
		switch status {
		case 0:
			if len(body)-off < 4 {
				return nil, fmt.Errorf("%w: batch-resp item %d match count truncated", ErrMalformedFrame, i)
			}
			mn := binary.BigEndian.Uint32(body[off:])
			mlen := 4 + int(mn)*matchRecord
			if mn > uint32(len(body)) || len(body)-off < mlen {
				return nil, fmt.Errorf("%w: batch-resp item %d matches exceed body", ErrMalformedFrame, i)
			}
			ms, err := DecodeMatches(body[off : off+mlen])
			if err != nil {
				return nil, err
			}
			out = append(out, BatchItemResult{Matches: ms})
			off += mlen
		case 1:
			if len(body)-off < 3 {
				return nil, fmt.Errorf("%w: batch-resp item %d error truncated", ErrMalformedFrame, i)
			}
			code := body[off]
			mlen := int(binary.BigEndian.Uint16(body[off+1:]))
			off += 3
			if len(body)-off < mlen {
				return nil, fmt.Errorf("%w: batch-resp item %d message exceeds body", ErrMalformedFrame, i)
			}
			out = append(out, BatchItemResult{Code: code, Msg: string(body[off : off+mlen])})
			off += mlen
		default:
			return nil, fmt.Errorf("%w: batch-resp item %d unknown status %d", ErrMalformedFrame, i, status)
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: batch-resp body has %d trailing bytes", ErrMalformedFrame, len(body)-off)
	}
	return out, nil
}

// MaxSessionOverlap caps the per-session overlap a SESSION-OPEN may
// request: the overlap is carry-over memory the server holds for the
// session's whole lifetime, so a hostile open cannot demand more than
// one frame's worth.
const MaxSessionOverlap = DefaultMaxFrame

// EncodeSessionOpen serialises an OpSessionOpen body: u32 requested
// overlap in bytes (0 selects the server's default — the longest match
// guaranteed to be reported identically to a one-shot scan).
func EncodeSessionOpen(overlap uint32) []byte {
	body := make([]byte, 4)
	binary.BigEndian.PutUint32(body, overlap)
	return body
}

// DecodeSessionOpen parses an OpSessionOpen body.
func DecodeSessionOpen(body []byte) (overlap uint32, err error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: session-open body %d bytes", ErrMalformedFrame, len(body))
	}
	overlap = binary.BigEndian.Uint32(body)
	if overlap > MaxSessionOverlap {
		return 0, fmt.Errorf("%w: session overlap %d exceeds %d", ErrMalformedFrame, overlap, MaxSessionOverlap)
	}
	return overlap, nil
}

// SessionOpenFlagCheckpoint, set in the optional flags byte of
// SESSION-OPEN (and in the flags byte of SESSION-RESTORE), asks the
// server to (a) answer with the extended SESSION-OK carrying the rule
// generation and (b) piggyback a post-frame checkpoint on every
// non-final SESSION-MATCHES — the state a relay needs to restore the
// session elsewhere after losing this shard.
const SessionOpenFlagCheckpoint byte = 1 << 0

// sessionOpenKnownFlags guards the flags byte: unknown bits are a
// malformed frame, so a future flag can never be silently ignored.
const sessionOpenKnownFlags = SessionOpenFlagCheckpoint

// EncodeSessionOpenFlags serialises the extended OpSessionOpen body:
// u32 requested overlap, u8 flags. The 4-byte flagless form
// (EncodeSessionOpen) remains valid and means flags = 0.
func EncodeSessionOpenFlags(overlap uint32, flags byte) []byte {
	body := make([]byte, 5)
	binary.BigEndian.PutUint32(body, overlap)
	body[4] = flags
	return body
}

// DecodeSessionOpenFlags parses either OpSessionOpen form: the 4-byte
// flagless body or the 5-byte body with a trailing flags byte.
func DecodeSessionOpenFlags(body []byte) (overlap uint32, flags byte, err error) {
	switch len(body) {
	case 4:
	case 5:
		flags = body[4]
		if flags&^sessionOpenKnownFlags != 0 {
			return 0, 0, fmt.Errorf("%w: session-open unknown flags 0x%02X", ErrMalformedFrame, flags)
		}
	default:
		return 0, 0, fmt.Errorf("%w: session-open body %d bytes", ErrMalformedFrame, len(body))
	}
	overlap = binary.BigEndian.Uint32(body)
	if overlap > MaxSessionOverlap {
		return 0, 0, fmt.Errorf("%w: session overlap %d exceeds %d", ErrMalformedFrame, overlap, MaxSessionOverlap)
	}
	return overlap, flags, nil
}

// EncodeSessionRestore serialises an OpSessionRestore body: u8 flags
// (same bits as the SESSION-OPEN flags byte), then the checkpoint
// bytes a SESSION-MATCHES piggyback carried. The checkpoint's own
// framing is validated by the restoring engine, not here.
func EncodeSessionRestore(flags byte, ckpt []byte) []byte {
	body := make([]byte, 1+len(ckpt))
	body[0] = flags
	copy(body[1:], ckpt)
	return body
}

// DecodeSessionRestore parses an OpSessionRestore body; ckpt aliases
// body. An empty checkpoint is malformed — there is nothing to restore.
func DecodeSessionRestore(body []byte) (flags byte, ckpt []byte, err error) {
	if len(body) < 2 {
		return 0, nil, fmt.Errorf("%w: session-restore body %d bytes", ErrMalformedFrame, len(body))
	}
	flags = body[0]
	if flags&^sessionOpenKnownFlags != 0 {
		return 0, nil, fmt.Errorf("%w: session-restore unknown flags 0x%02X", ErrMalformedFrame, flags)
	}
	return flags, body[1:], nil
}

// EncodeSessionOK serialises an OpSessionOK body: u64 session id, u32
// effective overlap.
func EncodeSessionOK(id uint64, overlap uint32) []byte {
	body := make([]byte, 12)
	binary.BigEndian.PutUint64(body, id)
	binary.BigEndian.PutUint32(body[8:], overlap)
	return body
}

// DecodeSessionOK parses an OpSessionOK body.
func DecodeSessionOK(body []byte) (id uint64, overlap uint32, err error) {
	if len(body) != 12 {
		return 0, 0, fmt.Errorf("%w: session-ok body %d bytes", ErrMalformedFrame, len(body))
	}
	return binary.BigEndian.Uint64(body), binary.BigEndian.Uint32(body[8:]), nil
}

// EncodeSessionOKGen serialises the extended OpSessionOK body answering
// a checkpoint-flagged open or restore: u64 session id, u32 effective
// overlap, u32 rule generation. The generation lets a relay fence
// failover: a checkpoint may only be restored onto a shard running the
// same rule generation it was exported under.
func EncodeSessionOKGen(id uint64, overlap, generation uint32) []byte {
	body := make([]byte, 16)
	binary.BigEndian.PutUint64(body, id)
	binary.BigEndian.PutUint32(body[8:], overlap)
	binary.BigEndian.PutUint32(body[12:], generation)
	return body
}

// DecodeSessionOKGen parses the extended OpSessionOK body.
func DecodeSessionOKGen(body []byte) (id uint64, overlap, generation uint32, err error) {
	if len(body) != 16 {
		return 0, 0, 0, fmt.Errorf("%w: session-ok-gen body %d bytes", ErrMalformedFrame, len(body))
	}
	return binary.BigEndian.Uint64(body), binary.BigEndian.Uint32(body[8:]), binary.BigEndian.Uint32(body[12:]), nil
}

// sessionIDLen prefixes every SESSION-DATA and SESSION-CLOSE body.
const sessionIDLen = 8

// EncodeSessionData serialises an OpSessionData body: u64 session id,
// then the chunk bytes (may be empty — an empty push is a no-op probe).
func EncodeSessionData(id uint64, chunk []byte) []byte {
	body := make([]byte, sessionIDLen+len(chunk))
	binary.BigEndian.PutUint64(body, id)
	copy(body[sessionIDLen:], chunk)
	return body
}

// DecodeSessionData parses an OpSessionData body; chunk aliases body.
func DecodeSessionData(body []byte) (id uint64, chunk []byte, err error) {
	if len(body) < sessionIDLen {
		return 0, nil, fmt.Errorf("%w: session-data body %d bytes", ErrMalformedFrame, len(body))
	}
	return binary.BigEndian.Uint64(body), body[sessionIDLen:], nil
}

// EncodeSessionClose serialises an OpSessionClose body: u64 session id.
func EncodeSessionClose(id uint64) []byte {
	body := make([]byte, sessionIDLen)
	binary.BigEndian.PutUint64(body, id)
	return body
}

// DecodeSessionClose parses an OpSessionClose body.
func DecodeSessionClose(body []byte) (id uint64, err error) {
	if len(body) != sessionIDLen {
		return 0, fmt.Errorf("%w: session-close body %d bytes", ErrMalformedFrame, len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}

// sessionFlagFinal marks the SESSION-MATCHES answering SESSION-CLOSE:
// the tail window has been scanned and the session is gone.
const sessionFlagFinal byte = 1 << 0

// sessionFlagCkpt marks a SESSION-MATCHES carrying a checkpoint
// piggyback: after the MATCHES body, u32 checkpoint length then the
// checkpoint bytes — the session's post-frame carry state, exactly
// what SESSION-RESTORE accepts. Only sent when the session was opened
// with SessionOpenFlagCheckpoint.
const sessionFlagCkpt byte = 1 << 1

// EncodeSessionMatches serialises an OpSessionMatches body: u8 flags
// (bit 0: final — answers SESSION-CLOSE), u64 consumed (total stream
// bytes the session has absorbed), then a standard MATCHES body whose
// offsets are absolute stream positions.
func EncodeSessionMatches(final bool, consumed uint64, ms []RuleMatch) []byte {
	inner := EncodeMatches(ms)
	body := make([]byte, 9+len(inner))
	if final {
		body[0] |= sessionFlagFinal
	}
	binary.BigEndian.PutUint64(body[1:9], consumed)
	copy(body[9:], inner)
	return body
}

// DecodeSessionMatches parses an OpSessionMatches body.
func DecodeSessionMatches(body []byte) (final bool, consumed uint64, ms []RuleMatch, err error) {
	if len(body) < 9 {
		return false, 0, nil, fmt.Errorf("%w: session-matches body %d bytes", ErrMalformedFrame, len(body))
	}
	if body[0]&^sessionFlagFinal != 0 {
		return false, 0, nil, fmt.Errorf("%w: session-matches unknown flags 0x%02X", ErrMalformedFrame, body[0])
	}
	ms, err = DecodeMatches(body[9:])
	if err != nil {
		return false, 0, nil, err
	}
	return body[0]&sessionFlagFinal != 0, binary.BigEndian.Uint64(body[1:9]), ms, nil
}

// EncodeSessionMatchesCkpt serialises an OpSessionMatches body with a
// checkpoint piggyback appended after the MATCHES body (u32 length,
// checkpoint bytes). A nil checkpoint degrades to the plain form.
func EncodeSessionMatchesCkpt(final bool, consumed uint64, ms []RuleMatch, ckpt []byte) []byte {
	plain := EncodeSessionMatches(final, consumed, ms)
	if ckpt == nil {
		return plain
	}
	body := make([]byte, len(plain)+4+len(ckpt))
	copy(body, plain)
	body[0] |= sessionFlagCkpt
	binary.BigEndian.PutUint32(body[len(plain):], uint32(len(ckpt)))
	copy(body[len(plain)+4:], ckpt)
	return body
}

// DecodeSessionMatchesCkpt parses an OpSessionMatches body in either
// form; ckpt is nil when no piggyback rode the frame and aliases body
// otherwise. Clients that negotiated the checkpoint flag must decode
// with this; DecodeSessionMatches stays strict and rejects the flag.
func DecodeSessionMatchesCkpt(body []byte) (final bool, consumed uint64, ms []RuleMatch, ckpt []byte, err error) {
	if len(body) < 13 {
		return false, 0, nil, nil, fmt.Errorf("%w: session-matches body %d bytes", ErrMalformedFrame, len(body))
	}
	if body[0]&^(sessionFlagFinal|sessionFlagCkpt) != 0 {
		return false, 0, nil, nil, fmt.Errorf("%w: session-matches unknown flags 0x%02X", ErrMalformedFrame, body[0])
	}
	mn := binary.BigEndian.Uint32(body[9:13])
	if mn > uint32(len(body)) {
		return false, 0, nil, nil, fmt.Errorf("%w: session-matches count %d exceeds body", ErrMalformedFrame, mn)
	}
	mlen := 4 + int(mn)*matchRecord
	if len(body)-9 < mlen {
		return false, 0, nil, nil, fmt.Errorf("%w: session-matches truncated match list", ErrMalformedFrame)
	}
	ms, err = DecodeMatches(body[9 : 9+mlen])
	if err != nil {
		return false, 0, nil, nil, err
	}
	off := 9 + mlen
	if body[0]&sessionFlagCkpt != 0 {
		if len(body)-off < 4 {
			return false, 0, nil, nil, fmt.Errorf("%w: session-matches truncated checkpoint length", ErrMalformedFrame)
		}
		clen := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if clen == 0 || len(body)-off < clen {
			return false, 0, nil, nil, fmt.Errorf("%w: session-matches checkpoint length %d exceeds body", ErrMalformedFrame, clen)
		}
		ckpt = body[off : off+clen]
		off += clen
	}
	if off != len(body) {
		return false, 0, nil, nil, fmt.Errorf("%w: session-matches body has %d trailing bytes", ErrMalformedFrame, len(body)-off)
	}
	return body[0]&sessionFlagFinal != 0, binary.BigEndian.Uint64(body[1:9]), ms, ckpt, nil
}
