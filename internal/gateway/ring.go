// Consistent-hash ring over backend shard indices. The gateway keys
// routing on "tenant/namespace", so one tenant's scans land on one
// shard (cache locality for its rule working set) while the fleet as a
// whole spreads tenants evenly. Virtual nodes smooth the distribution;
// Order walks the ring past the owner so the router can fail over to
// the next distinct shard when a breaker has the owner excluded — the
// rebalance after a shard death is just "everyone's walk skips it".
package gateway

import (
	"fmt"
	"sort"
)

// ringReplicas is the default virtual-node count per backend: high
// enough that 3 backends split keys within a few percent of even.
const ringReplicas = 64

// ring is an immutable consistent-hash ring over backend indices
// [0, n). Safe for concurrent use once built.
type ring struct {
	points []ringPoint // sorted by hash
	n      int
}

type ringPoint struct {
	hash  uint64
	owner int
}

// newRing hashes replicas virtual nodes per backend (replicas <= 0
// selects ringReplicas). Vnode labels depend only on (index, replica),
// so the layout is deterministic across processes — every gateway in a
// fleet agrees on key placement.
func newRing(n, replicas int) *ring {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	r := &ring{n: n, points: make([]ringPoint, 0, n*replicas)}
	for i := 0; i < n; i++ {
		for v := 0; v < replicas; v++ {
			h := fnv1a(fmt.Sprintf("shard-%d-vnode-%d", i, v))
			r.points = append(r.points, ringPoint{hash: h, owner: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.owner < q.owner
	})
	return r
}

// Owner returns the backend index owning key: the first vnode at or
// clockwise of the key's hash.
func (r *ring) Owner(key string) int {
	return r.points[r.at(key)].owner
}

// Order returns all n backend indices in ring-walk order from key: the
// owner first, then each further distinct backend as the walk meets
// it. The router tries them in this order, so failover is sticky (the
// same key always spills to the same second choice) and total (every
// backend is eventually tried).
func (r *ring) Order(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i, start := 0, r.at(key); i < len(r.points) && len(out) < r.n; i++ {
		o := r.points[(start+i)%len(r.points)].owner
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// at returns the index in points of the first vnode at or clockwise of
// key's hash.
func (r *ring) at(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// fnv1a is the 64-bit FNV-1a hash — stable across runs and platforms,
// unlike hash/maphash.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
