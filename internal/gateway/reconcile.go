// Rule-generation anti-entropy. A RELOAD is fanned to every shard
// exactly once; a shard that was dark at that moment comes back serving
// the old rule set, and the fleet has silently diverged. The breakers
// make the divergence invisible to routing (replicas answer anything),
// but it is fatal to session failover: the generation fence refuses to
// restore a checkpointed stream onto a shard whose rules differ from
// the checkpoint's exporter. The reconciler closes that gap from the
// gateway side: it remembers the last fleet-visible RELOAD (body and
// target generation), periodically probes each shard's generation with
// RULES-INFO, and re-drives the reload onto any shard that lags.
// Generations are per-shard monotonic counters, so "re-drive until
// gen >= target" converges even when a shard missed several reloads —
// the rules text is the same each time, and applying it is idempotent
// in content while bumping the counter.
package gateway

import (
	"context"
	"time"

	"alveare/internal/server/client"
)

// reconciler is the background anti-entropy loop; it runs until the
// drain begins (sharing the session reaper's stop signal).
func (g *Gateway) reconciler() {
	defer g.wgWorkers.Done()
	t := time.NewTicker(g.cfg.ReconcileInterval)
	defer t.Stop()
	for {
		select {
		case <-g.sessStop:
			return
		case <-t.C:
			g.reconcileOnce()
		}
	}
}

// reconcileOnce probes every shard the breakers admit and re-drives the
// remembered reload onto those that lag the target generation. It
// returns the number of shards it converged (also counted into
// gateway.reload.reconciled); tests drive it directly to avoid timing
// races.
func (g *Gateway) reconcileOnce() int {
	g.reconMu.Lock()
	rules := g.reconRules
	target := g.reconGen
	g.reconMu.Unlock()
	if rules == nil {
		// No reload has succeeded anywhere yet: there is no target state
		// to converge on.
		return 0
	}
	fixed := 0
	for i := 0; i < g.bs.Len(); i++ {
		if g.bs.State(i) == client.BreakerOpen {
			// A dead shard rejoins through the prober first; probing it
			// here would just burn timeouts.
			continue
		}
		ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		info, err := g.bs.Client(i).RulesInfoCtx(ctx)
		cancel()
		if err != nil || info.Generation >= target {
			continue
		}
		ctx, cancel = context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		_, _, rerr := g.bs.Client(i).ReloadCtx(ctx, string(rules))
		cancel()
		if rerr != nil {
			// Still unhealthy; the next tick retries.
			continue
		}
		g.met.reconciled.Inc()
		fixed++
	}
	return fixed
}
