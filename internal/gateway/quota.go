// Per-tenant rate quota: a classic token bucket, refilled lazily at
// take() time so idle tenants cost nothing. The quota is the first
// admission gate — cheaper than a fair-queue slot — so a tenant
// hammering past its contract is SHED (ShedReasonQuota) before its
// requests consume queue memory.
package gateway

import (
	"sync"
	"time"
)

// tokenBucket admits up to burst requests instantly and rate requests
// per second sustained. rate <= 0 means unlimited (take always
// succeeds). Safe for concurrent use.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens added per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // test seam
}

// newTokenBucket starts full (a tenant's first burst is free). A
// non-positive burst is raised to 1 so a limited tenant can always
// make at least single requests.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	tb := &tokenBucket{rate: rate, burst: b, tokens: b, now: time.Now}
	return tb
}

// take consumes one token, refilling first from elapsed wall time.
// Returns false when the bucket is empty — the caller SHEDs.
func (tb *tokenBucket) take() bool {
	if tb.rate <= 0 {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	if !tb.last.IsZero() {
		if dt := now.Sub(tb.last).Seconds(); dt > 0 {
			tb.tokens += dt * tb.rate
			if tb.tokens > tb.burst {
				tb.tokens = tb.burst
			}
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// give returns one token taken by take(), for callers whose request
// was rejected by a later admission stage (e.g. the fair queue) — a
// shed request should not also burn rate quota. Capped at burst so a
// spurious give cannot mint capacity.
func (tb *tokenBucket) give() {
	if tb.rate <= 0 {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.tokens++
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}
