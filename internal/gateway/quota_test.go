package gateway

import (
	"testing"
	"time"
)

// fakeClock steps a token bucket's time by hand.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestQuotaBurstThenRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tb := newTokenBucket(10, 3) // 10 rps, burst 3
	tb.now = clk.now

	for i := 0; i < 3; i++ {
		if !tb.take() {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	if tb.take() {
		t.Fatal("take past burst admitted")
	}
	// 100ms at 10 rps refills exactly one token.
	clk.advance(100 * time.Millisecond)
	if !tb.take() {
		t.Fatal("take after refill refused")
	}
	if tb.take() {
		t.Fatal("second take after single-token refill admitted")
	}
}

func TestQuotaRefillCapsAtBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tb := newTokenBucket(100, 2)
	tb.now = clk.now
	tb.take()
	tb.take()
	clk.advance(time.Hour) // refills far past the cap
	admitted := 0
	for tb.take() {
		admitted++
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after long idle, want burst 2", admitted)
	}
}

func TestQuotaUnlimited(t *testing.T) {
	tb := newTokenBucket(0, 1)
	for i := 0; i < 10000; i++ {
		if !tb.take() {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestQuotaGiveRefunds(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tb := newTokenBucket(10, 2)
	tb.now = clk.now

	// Drain the burst, refund one: exactly one more take is admitted.
	tb.take()
	tb.take()
	if tb.take() {
		t.Fatal("take past burst admitted")
	}
	tb.give()
	if !tb.take() {
		t.Fatal("take after give refused")
	}
	if tb.take() {
		t.Fatal("second take after single give admitted")
	}

	// give never mints past the burst cap.
	tb.give()
	tb.give()
	tb.give()
	tb.give()
	admitted := 0
	for tb.take() {
		admitted++
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after over-giving, want burst cap 2", admitted)
	}

	// give on an unlimited bucket is a no-op, not a panic.
	unl := newTokenBucket(0, 1)
	unl.give()
	if !unl.take() {
		t.Fatal("unlimited bucket refused after give")
	}
}

func TestQuotaMinimumBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tb := newTokenBucket(1, 0) // burst raised to 1
	tb.now = clk.now
	if !tb.take() {
		t.Fatal("rate-limited tenant cannot make even one request")
	}
}
