package gateway

import (
	"sync"
	"testing"
	"time"
)

func nopJob() *job { return &job{run: func() {}} }

// Weighted round robin: with both FIFOs saturated, a weight-3 tenant
// gets three serves per round to a weight-1 tenant's one.
func TestFairQueueWeightedShares(t *testing.T) {
	fq := newFairQueue()
	fq.addTenant("gold", 3, 100)
	fq.addTenant("free", 1, 100)
	for i := 0; i < 40; i++ {
		if !fq.push("gold", nopJob()) || !fq.push("free", nopJob()) {
			t.Fatal("push within depth refused")
		}
	}
	served := map[string]int{}
	// Tag jobs by draining 40 pops and watching which queue shrank.
	for i := 0; i < 40; i++ {
		gBefore, fBefore := fq.depthOf("gold"), fq.depthOf("free")
		if _, ok := fq.pop(); !ok {
			t.Fatal("pop on non-empty queue returned closed")
		}
		switch {
		case fq.depthOf("gold") == gBefore-1:
			served["gold"]++
		case fq.depthOf("free") == fBefore-1:
			served["free"]++
		default:
			t.Fatal("pop served no tenant")
		}
	}
	if served["gold"] != 30 || served["free"] != 10 {
		t.Fatalf("served %v over 40 pops, want gold=30 free=10 (3:1 weights)", served)
	}
}

// A noisy tenant fills its own FIFO and gets push=false (the caller
// SHEDs); a quiet tenant keeps pushing.
func TestFairQueueDepthIsolation(t *testing.T) {
	fq := newFairQueue()
	fq.addTenant("noisy", 1, 4)
	fq.addTenant("quiet", 1, 4)
	for i := 0; i < 4; i++ {
		if !fq.push("noisy", nopJob()) {
			t.Fatalf("push %d within depth refused", i)
		}
	}
	if fq.push("noisy", nopJob()) {
		t.Fatal("push past depth admitted")
	}
	if !fq.push("quiet", nopJob()) {
		t.Fatal("quiet tenant starved by noisy tenant's backlog")
	}
}

func TestFairQueueUnknownTenant(t *testing.T) {
	fq := newFairQueue()
	fq.addTenant("a", 1, 4)
	if fq.push("ghost", nopJob()) {
		t.Fatal("push for unregistered tenant admitted")
	}
}

// pop blocks while open-and-empty, serves the backlog after close,
// and only then reports closed.
func TestFairQueueCloseDrains(t *testing.T) {
	fq := newFairQueue()
	fq.addTenant("a", 1, 10)
	for i := 0; i < 3; i++ {
		fq.push("a", nopJob())
	}
	fq.close()
	for i := 0; i < 3; i++ {
		if _, ok := fq.pop(); !ok {
			t.Fatalf("pop %d after close dropped an admitted job", i)
		}
	}
	if _, ok := fq.pop(); ok {
		t.Fatal("pop past the drained backlog returned a job")
	}
	if fq.push("a", nopJob()) {
		t.Fatal("push after close admitted")
	}
}

// close must wake every blocked pop (workers exit the drain).
func TestFairQueueCloseWakesBlockedPop(t *testing.T) {
	fq := newFairQueue()
	fq.addTenant("a", 1, 10)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := fq.pop(); !ok {
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	fq.close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked pops not woken by close")
	}
}

// Concurrent producers and consumers under the race detector: every
// admitted job is served exactly once.
func TestFairQueueConcurrent(t *testing.T) {
	fq := newFairQueue()
	fq.addTenant("x", 2, 1000)
	fq.addTenant("y", 1, 1000)
	var served sync.WaitGroup
	var admitted int64
	var mu sync.Mutex

	var consumers sync.WaitGroup
	for i := 0; i < 4; i++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				j, ok := fq.pop()
				if !ok {
					return
				}
				j.run()
			}
		}()
	}
	var producers sync.WaitGroup
	for _, name := range []string{"x", "y"} {
		producers.Add(1)
		go func(name string) {
			defer producers.Done()
			for i := 0; i < 500; i++ {
				served.Add(1)
				j := &job{run: func() { served.Done() }}
				if fq.push(name, j) {
					mu.Lock()
					admitted++
					mu.Unlock()
				} else {
					served.Done()
				}
			}
		}(name)
	}
	producers.Wait()
	served.Wait() // every admitted job ran
	fq.close()
	consumers.Wait()
	mu.Lock()
	defer mu.Unlock()
	if admitted == 0 {
		t.Fatal("no jobs admitted")
	}
}
