// Fleet chaos e2e: three real shards behind deterministic netchaos
// proxies, the gateway in front, one shard killed mid-traffic. The
// acceptance invariants of the fleet tier:
//
//   - zero wrong-tenant results — every completed scan is
//     byte-identical to that tenant's direct ground truth;
//   - 100% of admitted requests complete or SHED within the gateway's
//     budget — never an unexplained error, never a hang;
//   - the dead shard's breaker opens (the ring routes around it) and
//     closes again after revival without operator intervention;
//   - no goroutine outlives the drain.
//
// The same seeded scenario runs twice (run-a/run-b) under -race; the
// invariants must hold on both runs.
package gateway_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/faultinject/netchaos"
	"alveare/internal/gateway"
	"alveare/internal/metrics"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

const gwChaosSeed int64 = 20260808

var chaosRules = []string{
	`tenant-a-[0-9]+`,
	`tenant-b-[0-9]+`,
	`tenant-c-[0-9]+`,
	`common-x+yz`,
}

// chaosTenant is one tenant's identity in the chaos run: its name and
// a payload only it sends, so a response delivered to the wrong
// tenant cannot match that tenant's ground truth.
type chaosTenant struct {
	name      string
	payload   []byte
	want      []server.RuleMatch
	wantBytes []byte
}

func chaosTenants(t *testing.T) []*chaosTenant {
	t.Helper()
	rs, err := core.NewRuleSet(chaosRules, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out []*chaosTenant
	for _, name := range []string{"tenant-a", "tenant-b", "tenant-c"} {
		payload := bytes.Repeat([]byte(fmt.Sprintf("..%s-7..common-xxyz..%s-42..", name, name)), 40)
		var want []server.RuleMatch
		if _, err := rs.ScanReaderCtx(context.Background(), bytes.NewReader(payload),
			func(rule int, m core.Match, _ []byte) bool {
				want = append(want, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
				return true
			}); err != nil {
			t.Fatal(err)
		}
		sortMatches(want)
		if len(want) == 0 {
			t.Fatalf("tenant %s ground truth is empty; the test would prove nothing", name)
		}
		out = append(out, &chaosTenant{
			name:      name,
			payload:   payload,
			want:      want,
			wantBytes: server.EncodeMatches(want),
		})
	}
	return out
}

// TestGatewayChaosKillShard runs the same seeded kill-a-shard
// scenario twice; the invariants must hold on both runs.
func TestGatewayChaosKillShard(t *testing.T) {
	for _, run := range []string{"run-a", "run-b"} {
		t.Run(run, func(t *testing.T) { gatewayChaosRun(t) })
	}
}

func gatewayChaosRun(t *testing.T) {
	t.Cleanup(leakCheck(t))
	t.Logf("gateway chaos seed %d (edit gwChaosSeed to replay a variant)", gwChaosSeed)
	tenants := chaosTenants(t)

	// Three real shards, each a replica of the same rules, behind
	// chaos proxies. Shard 0 suffers latency jitter on every
	// connection; shard 1 is the one we kill mid-traffic; shard 2 is
	// clean.
	var proxies []*netchaos.Proxy
	var addrs []string
	lat := netchaos.NewScenario("latency")
	lat.Latency = 200 * time.Microsecond
	lat.Jitter = 300 * time.Microsecond
	scenarios := [][]netchaos.Scenario{{lat}, nil, nil}
	for i := 0; i < 3; i++ {
		_, saddr := startShard(t, server.Config{Rules: chaosRules, Workers: 2})
		p, err := netchaos.New(saddr, gwChaosSeed+int64(i), scenarios[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
		addrs = append(addrs, p.Addr())
	}

	reg := metrics.New()
	gw, gaddr := startGateway(t, gateway.Config{
		Backends: addrs,
		Tenants: []gateway.Tenant{
			{Name: "tenant-a", Weight: 2, QueueDepth: 64},
			{Name: "tenant-b", Weight: 1, QueueDepth: 64},
			{Name: "tenant-c", Weight: 1, QueueDepth: 64},
		},
		// The cooldown must sit well inside the kill window so the
		// breaker demonstrably opens, and the probe interval must be
		// tight so revival is rediscovered quickly.
		BreakerFailures: 3,
		BreakerCooldown: 30 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ShardTimeout:    2 * time.Second,
		Seed:            gwChaosSeed,
		Registry:        reg,
	})

	clients := make(map[string]*client.Client)
	for _, tn := range tenants {
		c := client.New(gaddr, client.WithTenant(tn.name, "default"))
		t.Cleanup(func() { c.Close() })
		clients[tn.name] = c
	}

	// Phase 1 — fleet healthy: every tenant's scans and pattern scans
	// must complete byte-identical.
	for _, tn := range tenants {
		got, err := clients[tn.name].Scan(tn.payload)
		if err != nil {
			t.Fatalf("seed %d: phase1 %s scan: %v", gwChaosSeed, tn.name, err)
		}
		sortMatches(got)
		if !bytes.Equal(server.EncodeMatches(got), tn.wantBytes) {
			t.Fatalf("seed %d: phase1 %s scan not byte-identical to direct", gwChaosSeed, tn.name)
		}
	}

	// Phase 2 — concurrent multi-tenant traffic with shard 1 killed a
	// few milliseconds in. Every request must complete (byte-identical)
	// or SHED; any other outcome fails.
	const goroutinesPerTenant, perG = 3, 25
	var wg sync.WaitGroup
	errCh := make(chan error, len(tenants)*goroutinesPerTenant*perG)
	var shed, completed int64
	var cmu sync.Mutex
	for _, tn := range tenants {
		for g := 0; g < goroutinesPerTenant; g++ {
			wg.Add(1)
			go func(tn *chaosTenant, g int) {
				defer wg.Done()
				// Each goroutine gets its own connection so one torn
				// stream cannot poison its siblings.
				c := client.New(gaddr, client.WithTenant(tn.name, "default"))
				defer c.Close()
				for i := 0; i < perG; i++ {
					time.Sleep(time.Millisecond)
					if (g+i)%4 == 3 {
						n, err := c.Count(tn.payload)
						switch {
						case err == nil && n == uint64(len(tn.want)):
							cmu.Lock()
							completed++
							cmu.Unlock()
						case err == nil:
							errCh <- fmt.Errorf("%s count = %d, want %d (wrong-tenant or lossy result)", tn.name, n, len(tn.want))
						case isShed(err):
							cmu.Lock()
							shed++
							cmu.Unlock()
						default:
							errCh <- fmt.Errorf("%s count (g%d,i%d): %w", tn.name, g, i, err)
						}
						continue
					}
					got, err := c.Scan(tn.payload)
					switch {
					case err == nil:
						sortMatches(got)
						if !bytes.Equal(server.EncodeMatches(got), tn.wantBytes) {
							errCh <- fmt.Errorf("%s scan (g%d,i%d): not byte-identical (wrong-tenant or lossy result)", tn.name, g, i)
						} else {
							cmu.Lock()
							completed++
							cmu.Unlock()
						}
					case isShed(err):
						cmu.Lock()
						shed++
						cmu.Unlock()
					default:
						errCh <- fmt.Errorf("%s scan (g%d,i%d): %w", tn.name, g, i, err)
					}
				}
			}(tn, g)
		}
	}
	// Kill shard 1 mid-traffic.
	time.Sleep(5 * time.Millisecond)
	proxies[1].SetDown(true)
	wg.Wait()
	close(errCh)
	failed := 0
	for err := range errCh {
		failed++
		t.Error(err)
	}
	if failed > 0 {
		t.Fatalf("seed %d: %d requests neither completed nor shed; the complete-or-SHED contract broke", gwChaosSeed, failed)
	}
	if completed == 0 {
		t.Fatalf("seed %d: nothing completed during the kill window", gwChaosSeed)
	}
	t.Logf("seed %d: kill window: %d completed, %d shed", gwChaosSeed, completed, shed)

	// The dead shard's breaker must be routed around: open (or probing
	// half-open), never closed, while the proxy is down.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("gateway.backend.1.breaker_state").Load() == int64(client.BreakerClosed) {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: dead shard's breaker never left closed", gwChaosSeed)
		}
		clients["tenant-b"].Scan(tenants[1].payload)
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 3 — revive. The jittered prober must walk the breaker
	// half-open → closed without any client traffic.
	proxies[1].SetDown(false)
	deadline = time.Now().Add(10 * time.Second)
	for reg.Gauge("gateway.backend.1.breaker_state").Load() != int64(client.BreakerClosed) {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: breaker never closed after revival (state %d)",
				gwChaosSeed, reg.Gauge("gateway.backend.1.breaker_state").Load())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 4 — the ring includes the revived shard again: traffic
	// completes for every tenant, the fleet reports all shards
	// reachable, and the kill window demonstrably rerouted requests.
	for _, tn := range tenants {
		for i := 0; i < 4; i++ {
			got, err := clients[tn.name].Scan(tn.payload)
			if err != nil {
				t.Fatalf("seed %d: post-revival %s scan: %v", gwChaosSeed, tn.name, err)
			}
			sortMatches(got)
			if !bytes.Equal(server.EncodeMatches(got), tn.wantBytes) {
				t.Fatalf("seed %d: post-revival %s scan not byte-identical", gwChaosSeed, tn.name)
			}
		}
	}
	snap := gw.MetricsSnapshot()
	if got := snap.Get("fleet.shards.reachable"); got != 3 {
		t.Errorf("seed %d: fleet.shards.reachable = %d after revival, want 3", gwChaosSeed, got)
	}
	if snap.Get("client.breaker.transitions") == 0 {
		t.Errorf("seed %d: no breaker transitions under a killed shard", gwChaosSeed)
	}
	for _, tn := range tenants {
		if snap.Get("gateway.tenant."+tn.name+".ok") == 0 {
			t.Errorf("seed %d: tenant %s completed nothing", gwChaosSeed, tn.name)
		}
	}
	// leakCheck (cleanup) verifies the gateway, shards and proxies
	// left no goroutines behind.
}

// isShed reports whether err is a SHED outcome (reasoned or not).
func isShed(err error) bool {
	return errors.Is(err, client.ErrShed)
}
