package gateway

import (
	"fmt"
	"testing"
)

// The ring must be deterministic across constructions — every gateway
// in a fleet agrees on key placement.
func TestRingDeterministic(t *testing.T) {
	a, b := newRing(5, 0), newRing(5, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("tenant-%d/ns-%d", i%7, i%3)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owners diverge (%d vs %d)", key, a.Owner(key), b.Owner(key))
		}
	}
}

// Vnodes must spread keys roughly evenly: with 64 vnodes per backend
// no backend should own more than ~2x its fair share of keys.
func TestRingBalance(t *testing.T) {
	const n, keys = 3, 3000
	r := newRing(n, 0)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("tenant-%d/default", i))]++
	}
	fair := keys / n
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("backend %d owns %d of %d keys (fair %d): imbalanced", i, c, keys, fair)
		}
	}
}

// Order must list every backend exactly once, owner first, and stay
// stable per key (sticky failover).
func TestRingOrder(t *testing.T) {
	r := newRing(4, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("t-%d/ns", i)
		order := r.Order(key)
		if len(order) != 4 {
			t.Fatalf("key %q: order %v misses backends", key, order)
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("key %q: order %v does not start at owner %d", key, order, r.Owner(key))
		}
		seen := map[int]bool{}
		for _, o := range order {
			if seen[o] {
				t.Fatalf("key %q: order %v repeats backend %d", key, order, o)
			}
			seen[o] = true
		}
		again := r.Order(key)
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("key %q: order not stable (%v vs %v)", key, order, again)
			}
		}
	}
}

// A single-backend ring routes everything to backend 0.
func TestRingSingle(t *testing.T) {
	r := newRing(1, 0)
	if got := r.Owner("anything"); got != 0 {
		t.Fatalf("Owner = %d, want 0", got)
	}
	if got := r.Order("anything"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Order = %v, want [0]", got)
	}
}
