// Sticky streaming sessions through the gateway. A stream's carry
// state lives on exactly one shard, so unlike the stateless ops a
// session cannot fail over: SESSION-OPEN walks the tenant's ring order
// once to place the stream, and every later frame of that session is
// pinned to the shard that holds it. The gateway speaks its own id
// space to clients — the SESSION-OK a client sees carries a gateway id,
// and each forwarded frame is rewritten to the shard's id — so a client
// never learns (or depends on) fleet topology.
//
// Failure contract, end to end: a shard SHED is forwarded as SHED
// (the chunk was not absorbed; the client may resend it); everything
// else that interrupts the pinned shard — transport loss, timeout, the
// shard dying mid-stream — terminally ends the session with a clean
// ERROR, because the carry state is unrecoverable and silently
// re-placing the stream on another shard would drop the bytes already
// absorbed. The client re-opens and replays from its own source.
// Frames of one session execute in arrival order through the same
// FIFO-plus-runner scheme the scan server uses, so pipelined frames
// keep a coherent stream while sharing the worker pool fairly.
package gateway

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"alveare/internal/server"
	"alveare/internal/server/client"
)

// gwSession is one client stream pinned to one shard.
type gwSession struct {
	id        uint64 // gateway-assigned, what the client holds
	backendID uint64 // shard-assigned, what the shard holds
	backend   int    // pinned shard index
	owner     *conn
	ts        *tenantState

	mu      sync.Mutex
	pending []func() // admitted frames awaiting the runner, FIFO
	running bool
	closed  bool
	last    time.Time
}

// openGwSession places one new stream: walk the tenant's ring order to
// the first shard that accepts the SESSION-OPEN, register the mapping,
// and answer SESSION-OK carrying the gateway's id. A shard that sheds
// or is unreachable just moves the walk on — no state was created that
// the client could observe. The gateway's own session cap sheds with
// reason capacity.
func (g *Gateway) openGwSession(c *conn, ts *tenantState, key string, body []byte, id uint32) {
	g.sessMu.Lock()
	full := len(g.sessions) >= g.cfg.MaxSessions
	g.sessMu.Unlock()
	if full {
		g.shedReply(c, id, ts, server.ShedReasonCapacity)
		return
	}
	order := g.ring.Order(key)
	for attempt := 0; attempt < g.cfg.Retries; attempt++ {
		idx := order[attempt%len(order)]
		if !g.bs.Acquire(idx) {
			continue
		}
		ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		f, err := g.bs.Do(ctx, idx, server.OpSessionOpen, server.OpSessionOK, body)
		cancel()
		if err != nil {
			var se *client.ServerError
			if errors.As(err, &se) && se.Code != server.ErrCodeDraining {
				g.replyErr(c, id, ts, se.Code, errors.New(se.Msg))
				return
			}
			// Shed, draining or transport failure: the stream was never
			// placed as far as the client knows; walk on. A session the
			// shard DID open before the failure is orphaned there and
			// falls to its idle reaper.
			continue
		}
		backendID, overlap, derr := server.DecodeSessionOK(f.Body)
		if derr != nil {
			g.replyErr(c, id, ts, server.ErrCodeScan, fmt.Errorf("shard session-ok: %w", derr))
			return
		}
		sess := &gwSession{backendID: backendID, backend: idx, owner: c, ts: ts, last: time.Now()}
		g.sessMu.Lock()
		g.sessNext++
		sess.id = g.sessNext
		g.sessions[sess.id] = sess
		active := len(g.sessions)
		g.sessMu.Unlock()
		g.met.sessOpens.Inc()
		g.met.sessActive.Set(int64(active))
		ts.ok.Inc()
		g.met.ok.Inc()
		g.writeFrame(c, server.Frame{Op: server.OpSessionOK, ID: id,
			Body: server.EncodeSessionOK(sess.id, overlap)})
		return
	}
	g.shedReply(c, id, ts, server.ShedReasonCapacity)
}

// dispatchSessionFrame admits one SESSION-DATA/SESSION-CLOSE on the
// reader goroutine (quota already taken): resolve the gateway id, join
// the session's FIFO, schedule a runner into the fair queue if none is
// active. A full FIFO or fair queue refunds the quota token and sheds
// — the frame was not forwarded, so the client may resend it.
func (g *Gateway) dispatchSessionFrame(c *conn, ts *tenantState, tenant string, op byte, body []byte, id uint32) {
	if len(body) < 8 {
		ts.quota.give()
		g.replyErr(c, id, ts, server.ErrCodeBadFrame,
			fmt.Errorf("%s body %d bytes", server.OpName(op), len(body)))
		return
	}
	gwID := binary.BigEndian.Uint64(body)
	g.sessMu.Lock()
	sess := g.sessions[gwID]
	g.sessMu.Unlock()
	if sess == nil || sess.owner != c || sess.ts != ts {
		ts.quota.give()
		g.replyErr(c, id, ts, server.ErrCodeUnknownSession, fmt.Errorf("unknown session %d", gwID))
		return
	}
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		ts.quota.give()
		g.replyErr(c, id, ts, server.ErrCodeUnknownSession, fmt.Errorf("unknown session %d", gwID))
		return
	}
	if len(sess.pending) >= g.cfg.SessionPending {
		sess.mu.Unlock()
		ts.quota.give()
		g.shedReply(c, id, ts, server.ShedReasonFairQ)
		return
	}
	c.pending.Add(1)
	sess.pending = append(sess.pending, func() {
		defer c.pending.Done()
		g.forwardSessionFrame(sess, c, op, body, id)
	})
	if !sess.running {
		c.pending.Add(1)
		runner := &job{run: func() {
			defer c.pending.Done()
			g.runGwSession(sess)
		}}
		if g.fq.push(tenant, runner) {
			sess.running = true
		} else {
			sess.pending = sess.pending[:len(sess.pending)-1]
			sess.mu.Unlock()
			c.pending.Done() // the runner's
			c.pending.Done() // the item's
			ts.quota.give()
			g.shedReply(c, id, ts, server.ShedReasonFairQ)
			return
		}
	}
	sess.mu.Unlock()
}

// runGwSession drains one session's FIFO in arrival order, then
// retires; the next admitted frame schedules a fresh runner.
func (g *Gateway) runGwSession(sess *gwSession) {
	for {
		sess.mu.Lock()
		if len(sess.pending) == 0 {
			sess.running = false
			sess.last = time.Now()
			sess.mu.Unlock()
			return
		}
		item := sess.pending[0]
		sess.pending = sess.pending[1:]
		sess.mu.Unlock()
		item()
	}
}

// forwardSessionFrame relays one session frame to its pinned shard,
// rewriting the leading id to the shard's own. One attempt, no
// failover: the stream state lives on that shard alone.
func (g *Gateway) forwardSessionFrame(sess *gwSession, c *conn, op byte, body []byte, id uint32) {
	wire := make([]byte, len(body))
	binary.BigEndian.PutUint64(wire, sess.backendID)
	copy(wire[8:], body[8:])
	if !g.bs.Acquire(sess.backend) {
		// The pinned shard's breaker is open: the stream is gone for
		// any practical purpose. End it cleanly rather than queue
		// against a dead shard.
		g.closeGwSession(sess)
		g.replyErr(c, id, sess.ts, server.ErrCodeScan,
			fmt.Errorf("session %d: shard %s unreachable; re-open and replay", sess.id, g.bs.Addr(sess.backend)))
		return
	}
	ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
	f, err := g.bs.Do(ctx, sess.backend, op, server.OpSessionMatches, wire)
	cancel()
	if err != nil {
		if errors.Is(err, client.ErrShed) {
			// The shard refused the frame without absorbing it; the
			// session is intact and the client may resend the chunk.
			g.shedReply(c, id, sess.ts, server.ShedReasonCapacity)
			return
		}
		g.closeGwSession(sess)
		var se *client.ServerError
		if errors.As(err, &se) {
			// Authoritative shard verdict (unknown session after a shard
			// restart, a scan fault that killed the stream): forward it;
			// either way the session is over.
			g.replyErr(c, id, sess.ts, se.Code, errors.New(se.Msg))
			return
		}
		g.replyErr(c, id, sess.ts, server.ErrCodeScan,
			fmt.Errorf("session %d: shard %s lost mid-stream; re-open and replay: %v",
				sess.id, g.bs.Addr(sess.backend), err))
		return
	}
	if op == server.OpSessionClose {
		g.closeGwSession(sess)
		g.met.sessCloses.Inc()
	}
	sess.ts.ok.Inc()
	g.met.ok.Inc()
	g.writeFrame(c, server.Frame{Op: f.Op, ID: id, Body: f.Body})
}

// closeGwSession drops the mapping (idempotent). The shard side is not
// chased: a CLOSE already closed it, and every other path (shard lost,
// shard restarted) has no shard state left worth a round trip — the
// shard's own idle reaper covers the remainder.
func (g *Gateway) closeGwSession(sess *gwSession) {
	sess.mu.Lock()
	was := sess.closed
	sess.closed = true
	sess.mu.Unlock()
	if was {
		return
	}
	g.sessMu.Lock()
	delete(g.sessions, sess.id)
	active := len(g.sessions)
	g.sessMu.Unlock()
	g.met.sessActive.Set(int64(active))
}

// closeConnGwSessions reaps every session the closing connection owns;
// it runs after the connection's admitted frames were answered.
func (g *Gateway) closeConnGwSessions(c *conn) {
	g.sessMu.Lock()
	var own []*gwSession
	for _, sess := range g.sessions {
		if sess.owner == c {
			own = append(own, sess)
		}
	}
	g.sessMu.Unlock()
	for _, sess := range own {
		g.closeGwSession(sess)
	}
}

// sessionReaper drops mappings idle past SessionIdleTimeout, so
// abandoned streams do not pin gateway memory (the shard reaps its own
// side independently).
func (g *Gateway) sessionReaper() {
	defer g.wgWorkers.Done()
	sweep := g.cfg.SessionIdleTimeout / 4
	if sweep <= 0 {
		sweep = time.Second
	}
	t := time.NewTicker(sweep)
	defer t.Stop()
	for {
		select {
		case <-g.sessStop:
			return
		case <-t.C:
			now := time.Now()
			g.sessMu.Lock()
			var idle []*gwSession
			for _, sess := range g.sessions {
				sess.mu.Lock()
				if !sess.running && len(sess.pending) == 0 && !sess.closed &&
					now.Sub(sess.last) > g.cfg.SessionIdleTimeout {
					idle = append(idle, sess)
				}
				sess.mu.Unlock()
			}
			g.sessMu.Unlock()
			for _, sess := range idle {
				g.closeGwSession(sess)
				g.met.sessReaped.Inc()
			}
		}
	}
}

// SessionCount reports the open mapping count (tests and diagnostics).
func (g *Gateway) SessionCount() int {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	return len(g.sessions)
}
