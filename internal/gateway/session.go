// Streaming sessions through the gateway, with transparent failover. A
// stream's carry state lives on one shard at a time, but the gateway
// always negotiates checkpoints with that shard: every SESSION-MATCHES
// ack piggybacks the post-frame carry state, so the gateway holds
// everything needed to rebuild the stream elsewhere. The gateway speaks
// its own id space to clients — the SESSION-OK a client sees carries a
// gateway id, and each forwarded frame is rewritten to the shard's id —
// so a client never learns (or depends on) fleet topology.
//
// Failure contract, end to end: a shard SHED is forwarded as SHED (the
// chunk was not absorbed; the client may resend it). Transport loss, a
// breaker-open shard, or an unknown-session verdict after a shard
// restart triggers FAILOVER instead of a dead session: the gateway
// walks the ring to the next replica, SESSION-RESTOREs the last acked
// checkpoint there (fenced to the same rule generation it was exported
// under), replays only the in-flight unacked frame, and forwards its
// matches — deduplicated against the finalised-prefix high-water mark,
// so the client transcript stays byte-identical to an uninterrupted
// stream. If no replica at the right generation is reachable the frame
// answers SHED (the chunk was absorbed nowhere — the restore point
// predates it), and the session stays alive for the client's resend.
// Only an authoritative shard verdict about the stream itself (a scan
// fault) terminally ends the session. Frames of one session execute in
// arrival order through the same FIFO-plus-runner scheme the scan
// server uses, so pipelined frames keep a coherent stream while
// sharing the worker pool fairly.
package gateway

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"alveare/internal/core"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// gwSession is one client stream, currently placed on one shard. The
// placement fields (backend, backendID) and the failover state (ckpt,
// fin, gen) are only touched by the session's single runner — frames
// of one session execute strictly in arrival order — so they need no
// lock of their own; mu guards the FIFO/lifecycle fields the reader
// and reaper share.
type gwSession struct {
	id        uint64 // gateway-assigned, what the client holds
	backendID uint64 // shard-assigned, what the current shard holds
	backend   int    // current shard index
	owner     *conn
	ts        *tenantState

	key        string // ring placement key, reused for failover walks
	overlap    uint32 // negotiated carry, reused for fresh-open failover
	gen        uint32 // rule generation fence for SESSION-RESTORE
	ckpt       []byte // last acked post-frame checkpoint (nil: none acked)
	fin        uint64 // finalised-prefix offset: every forwarded match starts before it
	clientCkpt bool   // the client itself negotiated checkpoint piggybacks

	mu      sync.Mutex
	pending []func() // admitted frames awaiting the runner, FIFO
	running bool
	closed  bool
	last    time.Time
}

// openGwSession places one new stream — a fresh SESSION-OPEN or a
// client-carried SESSION-RESTORE: walk the tenant's ring order to the
// first shard that accepts it, register the mapping, and answer
// SESSION-OK carrying the gateway's id. The shard-side open ALWAYS
// negotiates checkpoints, whatever the client asked — the piggybacked
// carry state is what makes failover possible. A shard that sheds or
// is unreachable just moves the walk on — no state was created that
// the client could observe. The gateway's own session cap sheds with
// reason capacity.
func (g *Gateway) openGwSession(c *conn, ts *tenantState, key string, body []byte, id uint32, restore bool) {
	g.sessMu.Lock()
	full := len(g.sessions) >= g.cfg.MaxSessions
	g.sessMu.Unlock()
	if full {
		g.shedReply(c, id, ts, server.ShedReasonCapacity)
		return
	}

	// Parse the client's request and build the shard-side body with the
	// checkpoint flag forced on.
	var (
		op         byte
		wire       []byte
		seedCkpt   []byte
		clientCkpt bool
	)
	if restore {
		cflags, ckpt, err := server.DecodeSessionRestore(body)
		if err != nil {
			g.replyErr(c, id, ts, server.ErrCodeBadFrame, err)
			return
		}
		clientCkpt = cflags&server.SessionOpenFlagCheckpoint != 0
		seedCkpt = append([]byte(nil), ckpt...)
		op = server.OpSessionRestore
		wire = server.EncodeSessionRestore(server.SessionOpenFlagCheckpoint, ckpt)
	} else {
		overlap, cflags, err := server.DecodeSessionOpenFlags(body)
		if err != nil {
			g.replyErr(c, id, ts, server.ErrCodeBadFrame, err)
			return
		}
		clientCkpt = cflags&server.SessionOpenFlagCheckpoint != 0
		op = server.OpSessionOpen
		wire = server.EncodeSessionOpenFlags(overlap, server.SessionOpenFlagCheckpoint)
	}

	order := g.ring.Order(key)
	for attempt := 0; attempt < g.cfg.Retries; attempt++ {
		idx := order[attempt%len(order)]
		if !g.bs.Acquire(idx) {
			continue
		}
		ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		f, err := g.bs.Do(ctx, idx, op, server.OpSessionOK, wire)
		cancel()
		if err != nil {
			var se *client.ServerError
			if errors.As(err, &se) && se.Code != server.ErrCodeDraining {
				// Authoritative verdict (for a restore: a garbage
				// checkpoint, answered as a parseable ERROR); replicas
				// would repeat it.
				g.replyErr(c, id, ts, se.Code, errors.New(se.Msg))
				return
			}
			// Shed, draining or transport failure: the stream was never
			// placed as far as the client knows; walk on. A session the
			// shard DID open before the failure is orphaned there and
			// falls to its idle reaper.
			continue
		}
		backendID, overlap, gen, derr := server.DecodeSessionOKGen(f.Body)
		if derr != nil {
			g.replyErr(c, id, ts, server.ErrCodeScan, fmt.Errorf("shard session-ok: %w", derr))
			return
		}
		sess := &gwSession{backendID: backendID, backend: idx, owner: c, ts: ts,
			key: key, overlap: overlap, gen: gen, ckpt: seedCkpt, clientCkpt: clientCkpt,
			last: time.Now()}
		if seedCkpt != nil {
			if info, perr := core.PeekCheckpoint(seedCkpt); perr == nil {
				sess.fin = info.Consumed - info.Buffered
			}
		}
		g.sessMu.Lock()
		g.sessNext++
		sess.id = g.sessNext
		g.sessions[sess.id] = sess
		active := len(g.sessions)
		g.sessMu.Unlock()
		g.met.sessOpens.Inc()
		if restore {
			g.met.sessRestores.Inc()
		}
		g.met.sessActive.Set(int64(active))
		ts.ok.Inc()
		g.met.ok.Inc()
		okBody := server.EncodeSessionOK(sess.id, overlap)
		if clientCkpt {
			okBody = server.EncodeSessionOKGen(sess.id, overlap, gen)
		}
		g.writeFrame(c, server.Frame{Op: server.OpSessionOK, ID: id, Body: okBody})
		return
	}
	g.shedReply(c, id, ts, server.ShedReasonCapacity)
}

// dispatchSessionFrame admits one SESSION-DATA/SESSION-CLOSE on the
// reader goroutine (quota already taken): resolve the gateway id, join
// the session's FIFO, schedule a runner into the fair queue if none is
// active. A full FIFO or fair queue refunds the quota token and sheds
// — the frame was not forwarded, so the client may resend it.
func (g *Gateway) dispatchSessionFrame(c *conn, ts *tenantState, tenant string, op byte, body []byte, id uint32) {
	if len(body) < 8 {
		ts.quota.give()
		g.replyErr(c, id, ts, server.ErrCodeBadFrame,
			fmt.Errorf("%s body %d bytes", server.OpName(op), len(body)))
		return
	}
	gwID := binary.BigEndian.Uint64(body)
	g.sessMu.Lock()
	sess := g.sessions[gwID]
	g.sessMu.Unlock()
	if sess == nil || sess.owner != c || sess.ts != ts {
		ts.quota.give()
		g.replyErr(c, id, ts, server.ErrCodeUnknownSession, fmt.Errorf("unknown session %d", gwID))
		return
	}
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		ts.quota.give()
		g.replyErr(c, id, ts, server.ErrCodeUnknownSession, fmt.Errorf("unknown session %d", gwID))
		return
	}
	if len(sess.pending) >= g.cfg.SessionPending {
		sess.mu.Unlock()
		ts.quota.give()
		g.shedReply(c, id, ts, server.ShedReasonFairQ)
		return
	}
	c.pending.Add(1)
	sess.pending = append(sess.pending, func() {
		defer c.pending.Done()
		g.forwardSessionFrame(sess, c, op, body, id)
	})
	if !sess.running {
		c.pending.Add(1)
		runner := &job{run: func() {
			defer c.pending.Done()
			g.runGwSession(sess)
		}}
		if g.fq.push(tenant, runner) {
			sess.running = true
		} else {
			sess.pending = sess.pending[:len(sess.pending)-1]
			sess.mu.Unlock()
			c.pending.Done() // the runner's
			c.pending.Done() // the item's
			ts.quota.give()
			g.shedReply(c, id, ts, server.ShedReasonFairQ)
			return
		}
	}
	sess.mu.Unlock()
}

// runGwSession drains one session's FIFO in arrival order, then
// retires; the next admitted frame schedules a fresh runner.
func (g *Gateway) runGwSession(sess *gwSession) {
	for {
		sess.mu.Lock()
		if len(sess.pending) == 0 {
			sess.running = false
			sess.last = time.Now()
			sess.mu.Unlock()
			return
		}
		item := sess.pending[0]
		sess.pending = sess.pending[1:]
		sess.mu.Unlock()
		item()
	}
}

// forwardSessionFrame relays one session frame to its current shard,
// rewriting the leading id to the shard's own. Transport loss, an open
// breaker, or an unknown-session verdict (shard restarted or reaped the
// stream) does not kill the session: the frame fails over.
func (g *Gateway) forwardSessionFrame(sess *gwSession, c *conn, op byte, body []byte, id uint32) {
	if !g.bs.Acquire(sess.backend) {
		// The current shard's breaker is open: move the stream instead
		// of queueing against a dead shard.
		g.failoverSessionFrame(sess, c, op, body, id)
		return
	}
	ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
	f, err := g.bs.Do(ctx, sess.backend, op, server.OpSessionMatches, g.rewriteSessionID(sess, body))
	cancel()
	if err != nil {
		if errors.Is(err, client.ErrShed) {
			// The shard refused the frame without absorbing it; the
			// session is intact and the client may resend the chunk.
			g.shedReply(c, id, sess.ts, server.ShedReasonCapacity)
			return
		}
		var se *client.ServerError
		if errors.As(err, &se) &&
			se.Code != server.ErrCodeUnknownSession && se.Code != server.ErrCodeDraining {
			// Authoritative shard verdict about the stream itself (a
			// scan fault that killed it): the carry state is gone on
			// every replica equally; forward it, the session is over.
			g.closeGwSession(sess)
			g.replyErr(c, id, sess.ts, se.Code, errors.New(se.Msg))
			return
		}
		// Transport loss mid-stream, a draining shard, or a shard that
		// restarted/reaped and no longer knows the stream: fail over.
		g.failoverSessionFrame(sess, c, op, body, id)
		return
	}
	g.ackSessionReply(sess, c, op, f, id, false)
}

// rewriteSessionID swaps the client-facing gateway id at the head of a
// session frame body for the current shard's own id.
func (g *Gateway) rewriteSessionID(sess *gwSession, body []byte) []byte {
	wire := make([]byte, len(body))
	binary.BigEndian.PutUint64(wire, sess.backendID)
	copy(wire[8:], body[8:])
	return wire
}

// failoverSessionFrame moves a stream whose shard was lost mid-frame:
// walk the ring order for the session's key, SESSION-RESTORE the last
// acked checkpoint on the next replica (or a fresh checkpointed open
// when nothing was acked yet — the stream had absorbed nothing), fence
// the restore to the generation the checkpoint was exported under, and
// replay the one in-flight frame there. The replayed matches are
// deduplicated against the finalised-prefix high-water mark before
// forwarding, so a client transcript can never carry a match twice.
// When no replica at the right generation is reachable within the
// attempt budget the frame answers SHED — the chunk was absorbed
// nowhere (the restore point predates it), the client may resend it,
// and the session stays alive for the next attempt.
func (g *Gateway) failoverSessionFrame(sess *gwSession, c *conn, op byte, body []byte, id uint32) {
	g.met.sessFailovers.Inc()
	lost := sess.backend
	order := g.ring.Order(sess.key)
	for attempt := 0; attempt < g.cfg.Retries; attempt++ {
		idx := order[attempt%len(order)]
		if idx == lost && attempt < len(order) {
			// First pass: prefer any other replica over the shard that
			// just failed. Later passes re-admit it — a shard that
			// restarted (answered unknown-session) is reachable and may
			// be the only replica at the checkpoint's generation.
			continue
		}
		if !g.bs.Acquire(idx) {
			continue
		}

		// Rebuild the stream on the candidate replica.
		var (
			rop  byte
			wire []byte
		)
		if sess.ckpt != nil {
			rop = server.OpSessionRestore
			wire = server.EncodeSessionRestore(server.SessionOpenFlagCheckpoint, sess.ckpt)
		} else {
			rop = server.OpSessionOpen
			wire = server.EncodeSessionOpenFlags(sess.overlap, server.SessionOpenFlagCheckpoint)
		}
		ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		f, err := g.bs.Do(ctx, idx, rop, server.OpSessionOK, wire)
		cancel()
		if err != nil {
			// Shed, transport loss, or an ERROR (a replica whose rule
			// set disagrees with the checkpoint answers one): walk on.
			continue
		}
		backendID, _, gen, derr := server.DecodeSessionOKGen(f.Body)
		if derr != nil {
			continue
		}
		if gen != sess.gen {
			// Generation fence: the replica serves a different rule set
			// than the checkpoint was exported under; restoring there
			// could change results mid-stream. Refuse it — the orphaned
			// restore falls to the shard's idle reaper — and let the
			// anti-entropy reconciler converge the fleet.
			g.met.sessGenRefused.Inc()
			continue
		}
		sess.backend, sess.backendID = idx, backendID
		g.met.sessRestores.Inc()

		// Replay the one in-flight frame on the replacement shard.
		if !g.bs.Acquire(idx) {
			continue
		}
		ctx, cancel = context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		rf, rerr := g.bs.Do(ctx, idx, op, server.OpSessionMatches, g.rewriteSessionID(sess, body))
		cancel()
		if rerr != nil {
			if errors.Is(rerr, client.ErrShed) {
				// The replica holds the restored stream but refused the
				// chunk; the session is intact there.
				g.shedReply(c, id, sess.ts, server.ShedReasonCapacity)
				return
			}
			var se *client.ServerError
			if errors.As(rerr, &se) &&
				se.Code != server.ErrCodeUnknownSession && se.Code != server.ErrCodeDraining {
				g.closeGwSession(sess)
				g.replyErr(c, id, sess.ts, se.Code, errors.New(se.Msg))
				return
			}
			// The replacement died too; keep walking — the checkpoint
			// still restores the same stream on the next replica.
			continue
		}
		g.met.sessReplays.Inc()
		g.ackSessionReply(sess, c, op, rf, id, true)
		return
	}
	// No replica absorbed the frame: SHED this chunk only. The session
	// mapping survives — the next frame (a resend, or the next chunk)
	// re-attempts the failover.
	g.shedReply(c, id, sess.ts, server.ShedReasonCapacity)
}

// ackSessionReply forwards one shard SESSION-MATCHES to the client:
// harvest the checkpoint piggyback (the state the next failover would
// restore), advance the finalised-prefix high-water mark, dedup
// replayed matches against it, and re-encode for the client — plain
// unless the client negotiated checkpoints itself.
func (g *Gateway) ackSessionReply(sess *gwSession, c *conn, op byte, f server.Frame, id uint32, replayed bool) {
	final, consumed, ms, ckpt, derr := server.DecodeSessionMatchesCkpt(f.Body)
	if derr != nil {
		// The shard broke the protocol; nothing downstream can be
		// trusted. Terminal.
		g.closeGwSession(sess)
		g.replyErr(c, id, sess.ts, server.ErrCodeScan, fmt.Errorf("shard session-matches: %w", derr))
		return
	}
	if replayed && sess.fin > 0 {
		// Every match already forwarded to the client starts before the
		// finalised prefix (the checkpoint's window base); every match a
		// correctly restored replay emits starts at or past it. Matches
		// below the mark are re-emissions and must not reach the client
		// twice.
		kept := ms[:0]
		for _, m := range ms {
			if m.Start < sess.fin {
				g.met.sessDedup.Inc()
				continue
			}
			kept = append(kept, m)
		}
		ms = kept
	}
	if ckpt != nil {
		sess.ckpt = append(sess.ckpt[:0], ckpt...)
		if info, perr := core.PeekCheckpoint(ckpt); perr == nil {
			sess.fin = info.Consumed - info.Buffered
		}
	}
	if op == server.OpSessionClose {
		g.closeGwSession(sess)
		g.met.sessCloses.Inc()
	}
	sess.ts.ok.Inc()
	g.met.ok.Inc()
	var out []byte
	if sess.clientCkpt {
		out = server.EncodeSessionMatchesCkpt(final, consumed, ms, ckpt)
	} else {
		out = server.EncodeSessionMatches(final, consumed, ms)
	}
	g.writeFrame(c, server.Frame{Op: server.OpSessionMatches, ID: id, Body: out})
}

// closeGwSession drops the mapping (idempotent). The shard side is not
// chased: a CLOSE already closed it, and every other path (shard lost,
// shard restarted) has no shard state left worth a round trip — the
// shard's own idle reaper covers the remainder.
func (g *Gateway) closeGwSession(sess *gwSession) {
	sess.mu.Lock()
	was := sess.closed
	sess.closed = true
	sess.mu.Unlock()
	if was {
		return
	}
	g.sessMu.Lock()
	delete(g.sessions, sess.id)
	active := len(g.sessions)
	g.sessMu.Unlock()
	g.met.sessActive.Set(int64(active))
}

// closeConnGwSessions reaps every session the closing connection owns;
// it runs after the connection's admitted frames were answered.
func (g *Gateway) closeConnGwSessions(c *conn) {
	g.sessMu.Lock()
	var own []*gwSession
	for _, sess := range g.sessions {
		if sess.owner == c {
			own = append(own, sess)
		}
	}
	g.sessMu.Unlock()
	for _, sess := range own {
		g.closeGwSession(sess)
	}
}

// sessionReaper drops mappings idle past SessionIdleTimeout, so
// abandoned streams do not pin gateway memory (the shard reaps its own
// side independently).
func (g *Gateway) sessionReaper() {
	defer g.wgWorkers.Done()
	sweep := g.cfg.SessionIdleTimeout / 4
	if sweep <= 0 {
		sweep = time.Second
	}
	t := time.NewTicker(sweep)
	defer t.Stop()
	for {
		select {
		case <-g.sessStop:
			return
		case <-t.C:
			now := time.Now()
			g.sessMu.Lock()
			var idle []*gwSession
			for _, sess := range g.sessions {
				sess.mu.Lock()
				if !sess.running && len(sess.pending) == 0 && !sess.closed &&
					now.Sub(sess.last) > g.cfg.SessionIdleTimeout {
					idle = append(idle, sess)
				}
				sess.mu.Unlock()
			}
			g.sessMu.Unlock()
			for _, sess := range idle {
				g.closeGwSession(sess)
				g.met.sessReaped.Inc()
			}
		}
	}
}

// SessionCount reports the open mapping count (tests and diagnostics).
func (g *Gateway) SessionCount() int {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	return len(g.sessions)
}
