// Sticky streaming sessions and batched scans through the fleet tier:
// byte-identity against the local streaming engine, the gateway id
// remap, and the kill-a-shard-mid-session chaos proof. The chaos
// scenario runs the same seed twice (run-a/run-b) under -race; every
// session — including those pinned to the shard that dies mid-stream —
// must complete byte-identical to the local ground truth, without the
// client re-opening anything: the gateway restores the last acked
// checkpoint on a surviving replica, replays only the in-flight frame,
// and the transcript carries no duplicate and no lost match.
package gateway_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/faultinject/netchaos"
	"alveare/internal/gateway"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

var sessRules = []string{"ab+c", "needle", "sess-[a-f]-[0-9]+"}

// sessPayload is one tenant's stream, dense in matches that straddle
// the chunk sizes the tests push.
func sessPayload(tenant string, n int) []byte {
	var b bytes.Buffer
	for b.Len() < n {
		fmt.Fprintf(&b, "..abc..%s-7..needle..abbbbbbbbbbbbbbbbc..%s-42..", tenant, tenant)
	}
	return b.Bytes()
}

// localSessionMatches is the ground truth: the local streaming engine
// over the same stream with the server's default overlap.
func localSessionMatches(t *testing.T, payload []byte) []server.RuleMatch {
	t.Helper()
	rs, err := core.NewRuleSet(sessRules, backend.Options{}, core.WithDFA())
	if err != nil {
		t.Fatal(err)
	}
	var want []server.RuleMatch
	if _, err := rs.ScanReaderCtx(context.Background(), bytes.NewReader(payload),
		func(rule int, m core.Match, _ []byte) bool {
			want = append(want, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
			return true
		}); err != nil {
		t.Fatal(err)
	}
	sortMatches(want)
	if len(want) == 0 {
		t.Fatal("ground truth empty; the test would prove nothing")
	}
	return want
}

// streamSession pushes payload through one gateway session in
// chunk-sized frames and returns all matches, sorted.
func streamSession(t *testing.T, c *client.Client, payload []byte, chunk int) []server.RuleMatch {
	t.Helper()
	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	var got []server.RuleMatch
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		ms, _, err := sess.Write(payload[off:end])
		if err != nil {
			t.Fatalf("Write at %d: %v", off, err)
		}
		got = append(got, ms...)
	}
	ms, consumed, err := sess.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if consumed != uint64(len(payload)) {
		t.Fatalf("consumed = %d, want %d", consumed, len(payload))
	}
	got = append(got, ms...)
	sortMatches(got)
	return got
}

// TestGatewaySessionSticky pins the fleet-tier tentpole invariant: a
// session through the gateway (id-remapped, pinned to one shard)
// returns byte-identical matches to the local streaming engine,
// across frame sizes, and the mapping table drains back to zero.
func TestGatewaySessionSticky(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, a0 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, a1 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	gw, gaddr := startGateway(t, gateway.Config{
		Backends: []string{a0, a1},
		Tenants:  []gateway.Tenant{{Name: "tenant-a"}, {Name: "tenant-b"}},
	})
	for _, tn := range []string{"tenant-a", "tenant-b"} {
		c := client.New(gaddr, client.WithTenant(tn, "default"))
		defer c.Close()
		payload := sessPayload(tn, 32<<10)
		want := localSessionMatches(t, payload)
		for _, chunk := range []int{13, 1024, 64 << 10} {
			got := streamSession(t, c, payload, chunk)
			if !bytes.Equal(server.EncodeMatches(got), server.EncodeMatches(want)) {
				t.Fatalf("%s chunk=%d: session through gateway not byte-identical to local", tn, chunk)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for gw.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gateway session mappings leaked: %d", gw.SessionCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGatewayBatch: SCAN-BATCH routes like SCAN (ring walk, failover)
// and its per-item results equal individual scans through the gateway.
func TestGatewayBatch(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, a0 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, a1 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, gaddr := startGateway(t, gateway.Config{
		Backends: []string{a0, a1},
		Tenants:  []gateway.Tenant{{Name: "tenant-a"}},
	})
	c := client.New(gaddr, client.WithTenant("tenant-a", "default"))
	defer c.Close()
	payloads := [][]byte{
		[]byte("..abc.."), {}, []byte("needle sess-a-1 needle"), sessPayload("tenant-a", 4096),
	}
	got, err := c.ScanBatch(payloads)
	if err != nil {
		t.Fatalf("ScanBatch: %v", err)
	}
	for i, p := range payloads {
		want, err := c.Scan(p)
		if err != nil {
			t.Fatalf("Scan item %d: %v", i, err)
		}
		if got[i].Err != nil {
			t.Fatalf("batch item %d failed: %v", i, got[i].Err)
		}
		sortMatches(got[i].Matches)
		sortMatches(want)
		if !bytes.Equal(server.EncodeMatches(got[i].Matches), server.EncodeMatches(want)) {
			t.Fatalf("batch item %d differs from SCAN through gateway", i)
		}
	}
}

// TestGatewaySessionChaosKillShard is the chaos proof: several tenants
// stream through sessions pinned across two shards; one shard dies
// mid-stream. EVERY session must complete byte-identical to the local
// ground truth — the ones pinned to the dead shard transparently, via
// checkpointed failover onto the survivor, with no client-visible
// re-open and no duplicate or lost match. The gateway's failover
// counters must prove the kill actually exercised the handoff. Same
// seed, two runs, -race.
func TestGatewaySessionChaosKillShard(t *testing.T) {
	for _, run := range []string{"run-a", "run-b"} {
		t.Run(run, func(t *testing.T) { gatewaySessionChaosRun(t) })
	}
}

func gatewaySessionChaosRun(t *testing.T) {
	t.Cleanup(leakCheck(t))
	t.Logf("gateway session chaos seed %d (edit gwChaosSeed to replay a variant)", gwChaosSeed)

	// Two real shards behind chaos proxies; shard 0 gets latency
	// jitter, shard 1 is the one killed mid-stream.
	var proxies []*netchaos.Proxy
	var addrs []string
	lat := netchaos.NewScenario("latency")
	lat.Latency = 200 * time.Microsecond
	lat.Jitter = 300 * time.Microsecond
	scenarios := [][]netchaos.Scenario{{lat}, nil}
	for i := 0; i < 2; i++ {
		_, saddr := startShard(t, server.Config{Rules: sessRules, Workers: 2})
		p, err := netchaos.New(saddr, gwChaosSeed+int64(i), scenarios[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
		addrs = append(addrs, p.Addr())
	}

	// Enough tenants that the ring deterministically places sessions on
	// both shards (the placement depends only on the seeded ring).
	names := []string{"sess-a", "sess-b", "sess-c", "sess-d", "sess-e", "sess-f"}
	tenants := make([]gateway.Tenant, len(names))
	for i, n := range names {
		tenants[i] = gateway.Tenant{Name: n, QueueDepth: 64}
	}
	gw, gaddr := startGateway(t, gateway.Config{
		Backends:        addrs,
		Tenants:         tenants,
		BreakerFailures: 3,
		BreakerCooldown: 30 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ShardTimeout:    2 * time.Second,
		Seed:            gwChaosSeed,
	})

	const chunk = 512
	type flow struct {
		name    string
		c       *client.Client
		sess    *client.Session
		payload []byte
		want    []server.RuleMatch
		got     []server.RuleMatch
		off     int
	}
	var flows []*flow
	for _, n := range names {
		c := client.New(gaddr, client.WithTenant(n, "default"))
		t.Cleanup(func() { c.Close() })
		payload := sessPayload(n, 16<<10)
		fl := &flow{name: n, c: c, payload: payload, want: localSessionMatches(t, payload)}
		sess, err := c.OpenSessionCtx(context.Background(), 0)
		if err != nil {
			t.Fatalf("seed %d: %s open: %v", gwChaosSeed, n, err)
		}
		fl.sess = sess
		flows = append(flows, fl)
	}

	// Stream the first half of every flow, then kill shard 1.
	push := func(fl *flow, until int) error {
		for fl.off < until {
			end := fl.off + chunk
			if end > until {
				end = until
			}
			ms, _, err := fl.sess.WriteCtx(context.Background(), fl.payload[fl.off:end])
			if err != nil {
				if errors.Is(err, client.ErrShed) {
					continue // chunk not absorbed; resend
				}
				return err
			}
			fl.off = end
			fl.got = append(fl.got, ms...)
		}
		return nil
	}
	for _, fl := range flows {
		if err := push(fl, len(fl.payload)/2); err != nil {
			t.Fatalf("seed %d: %s first half: %v", gwChaosSeed, fl.name, err)
		}
	}
	proxies[1].SetDown(true)

	// Stream the second half. EVERY flow — pinned to the survivor or to
	// the corpse — must complete byte-identical, with no re-open: the
	// gateway restores the dead shard's streams from their last acked
	// checkpoints on the survivor and replays only the in-flight frame.
	// A SHED mid-failover is allowed (the chunk was absorbed nowhere)
	// and the resend must eventually land.
	for _, fl := range flows {
		if err := push(fl, len(fl.payload)); err != nil {
			t.Fatalf("seed %d: %s second half: %v", gwChaosSeed, fl.name, err)
		}
		ms, consumed, err := fl.sess.CloseCtx(context.Background())
		if err != nil {
			t.Fatalf("seed %d: %s close: %v", gwChaosSeed, fl.name, err)
		}
		if consumed != uint64(len(fl.payload)) {
			t.Fatalf("seed %d: %s consumed %d, want %d", gwChaosSeed, fl.name, consumed, len(fl.payload))
		}
		fl.got = append(fl.got, ms...)
		sortMatches(fl.got)
		if !bytes.Equal(server.EncodeMatches(fl.got), server.EncodeMatches(fl.want)) {
			t.Fatalf("seed %d: %s not byte-identical across the kill (lossy or duplicated stream)", gwChaosSeed, fl.name)
		}
	}

	// The kill must actually have exercised the handoff, or the chaos
	// proved nothing: at least one frame hit a dead shard and at least
	// one stream was rebuilt from its checkpoint on the survivor.
	snap := gw.MetricsSnapshot()
	failovers := snap.Get("gateway.sessions.failovers")
	restores := snap.Get("gateway.sessions.restores")
	replays := snap.Get("gateway.sessions.replays")
	if failovers == 0 || restores == 0 {
		t.Fatalf("seed %d: no session failed over (failovers=%d restores=%d); the chaos proved nothing (re-seed)",
			gwChaosSeed, failovers, restores)
	}
	t.Logf("seed %d: kill window: %d failovers, %d restores, %d replays, all %d sessions byte-identical",
		gwChaosSeed, failovers, restores, replays, len(flows))

	// No mapping leaks: every session ended through CLOSE.
	deadline := time.Now().Add(5 * time.Second)
	for gw.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: gateway session mappings leaked: %d", gwChaosSeed, gw.SessionCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	proxies[1].SetDown(false)
	// leakCheck (cleanup) pins that gateway, shards and proxies left no
	// goroutines behind.
}

// sessRulesText is the reload document equivalent to sessRules: same
// patterns, same order — reloading it bumps a shard's generation
// without changing results.
const sessRulesText = "ab+c\nneedle\nsess-[a-f]-[0-9]+\n"

// TestGatewaySessionFailoverGenerationFence: a checkpoint may only be
// restored onto a replica at the generation it was exported under.
// With the fleet diverged (the survivor reloaded behind the gateway's
// back), failover must REFUSE the wrong-generation survivor and answer
// SHED — never silently continue the stream under different rules —
// while keeping the session alive. When the right-generation shard
// rejoins, the resend restores there (the walk re-admits the lost
// shard after the first pass) and the stream completes byte-identical.
func TestGatewaySessionFailoverGenerationFence(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, a0 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, a1 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	p, err := netchaos.New(a1, gwChaosSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	names := []string{"sess-a", "sess-b", "sess-c", "sess-d", "sess-e", "sess-f"}
	tenants := make([]gateway.Tenant, len(names))
	for i, n := range names {
		tenants[i] = gateway.Tenant{Name: n, QueueDepth: 64}
	}
	gw, gaddr := startGateway(t, gateway.Config{
		Backends:          []string{a0, p.Addr()},
		Tenants:           tenants,
		BreakerFailures:   3,
		BreakerCooldown:   30 * time.Millisecond,
		ProbeInterval:     25 * time.Millisecond,
		ShardTimeout:      2 * time.Second,
		Seed:              gwChaosSeed,
		ReconcileInterval: -1, // keep the fleet diverged; the fence is under test
	})

	// Diverge the fleet behind the gateway's back: shard 0 moves to
	// generation 2 (same patterns, so checkpoints stay structurally
	// compatible — only the fence can tell the difference).
	d0 := client.New(a0)
	defer d0.Close()
	if _, _, err := d0.Reload(sessRulesText); err != nil {
		t.Fatalf("direct reload shard 0: %v", err)
	}

	const chunk = 512
	type flow struct {
		name    string
		sess    *client.Session
		payload []byte
		want    []server.RuleMatch
		got     []server.RuleMatch
		off     int
	}
	var flows []*flow
	for _, n := range names {
		c := client.New(gaddr, client.WithTenant(n, "default"))
		t.Cleanup(func() { c.Close() })
		payload := sessPayload(n, 8<<10)
		fl := &flow{name: n, payload: payload, want: localSessionMatches(t, payload)}
		sess, err := c.OpenSessionCtx(context.Background(), 0)
		if err != nil {
			t.Fatalf("%s open: %v", n, err)
		}
		fl.sess = sess
		flows = append(flows, fl)
	}
	writeOnce := func(fl *flow) error {
		end := fl.off + chunk
		if end > len(fl.payload) {
			end = len(fl.payload)
		}
		ms, _, err := fl.sess.WriteCtx(context.Background(), fl.payload[fl.off:end])
		if err != nil {
			return err
		}
		fl.off = end
		fl.got = append(fl.got, ms...)
		return nil
	}
	for _, fl := range flows {
		for fl.off < len(fl.payload)/2 {
			if err := writeOnce(fl); err != nil {
				t.Fatalf("%s first half: %v", fl.name, err)
			}
		}
	}

	// Kill shard 1. Its sessions exported checkpoints at generation 1;
	// the only reachable replica is at generation 2, so failover must
	// refuse it and SHED.
	p.SetDown(true)
	var fenced []*flow
	for _, fl := range flows {
		err := writeOnce(fl)
		switch {
		case err == nil:
			// Pinned to the survivor; untouched by the kill.
		case errors.Is(err, client.ErrShed):
			fenced = append(fenced, fl)
		default:
			t.Fatalf("%s write during fence: %v", fl.name, err)
		}
	}
	if len(fenced) == 0 {
		t.Fatalf("seed %d: no session was pinned to the killed shard; the fence was never tested (re-seed)", gwChaosSeed)
	}
	snap := gw.MetricsSnapshot()
	if snap.Get("gateway.sessions.genrefused") == 0 {
		t.Fatalf("generation fence never refused a replica (genrefused = 0)")
	}
	if snap.Get("gateway.sessions.restores") != 0 {
		t.Fatalf("a stream was restored across generations (restores = %d)", snap.Get("gateway.sessions.restores"))
	}
	if got := gw.SessionCount(); got != len(flows) {
		t.Fatalf("fenced SHED killed sessions: %d mappings, want %d", got, len(flows))
	}

	// Revive shard 1 — the only replica at generation 1. Its original
	// streams died with their connections, so the resends go
	// unknown-session → failover → fence refuses shard 0 → second pass
	// restores onto revived shard 1 itself. Every flow then completes
	// byte-identical.
	p.SetDown(false)
	for _, fl := range flows {
		deadline := time.Now().Add(10 * time.Second)
		for fl.off < len(fl.payload) {
			err := writeOnce(fl)
			if err == nil {
				continue
			}
			if !errors.Is(err, client.ErrShed) {
				t.Fatalf("%s post-revival write: %v", fl.name, err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never recovered after the right-generation shard rejoined", fl.name)
			}
			time.Sleep(5 * time.Millisecond)
		}
		ms, consumed, err := fl.sess.CloseCtx(context.Background())
		if err != nil {
			t.Fatalf("%s close: %v", fl.name, err)
		}
		if consumed != uint64(len(fl.payload)) {
			t.Fatalf("%s consumed %d, want %d", fl.name, consumed, len(fl.payload))
		}
		fl.got = append(fl.got, ms...)
		sortMatches(fl.got)
		if !bytes.Equal(server.EncodeMatches(fl.got), server.EncodeMatches(fl.want)) {
			t.Fatalf("%s not byte-identical across the fence round-trip", fl.name)
		}
	}
}

// TestGatewayReloadReconcile: a RELOAD that misses a dark shard leaves
// the fleet diverged; the anti-entropy reconciler must notice the
// lagging generation via RULES-INFO once the shard rejoins and re-drive
// the remembered reload until the fleet converges.
func TestGatewayReloadReconcile(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, a0 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, a1 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	p, err := netchaos.New(a1, gwChaosSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	gw, gaddr := startGateway(t, gateway.Config{
		Backends:          []string{a0, p.Addr()},
		Tenants:           []gateway.Tenant{{Name: "sess-a"}},
		BreakerFailures:   3,
		BreakerCooldown:   30 * time.Millisecond,
		ProbeInterval:     25 * time.Millisecond,
		ShardTimeout:      2 * time.Second,
		Seed:              gwChaosSeed,
		ReconcileInterval: 20 * time.Millisecond,
	})
	c := client.New(gaddr, client.WithTenant("sess-a", "default"))
	defer c.Close()

	// Reload with shard 1 dark: the gateway reports the divergence...
	p.SetDown(true)
	if _, _, err := c.Reload(sessRulesText); err == nil {
		t.Fatal("reload with a dark shard reported success")
	}
	// ...and shard 0 has already moved past the boot generation.
	d0 := client.New(a0)
	defer d0.Close()
	if info, err := d0.RulesInfo(); err != nil || info.Generation != 1 {
		t.Fatalf("shard 0 after partial reload: gen %d err %v, want gen 1", info.Generation, err)
	}

	// Revive shard 1 (still at the boot generation). The reconciler
	// must converge it without any operator action.
	p.SetDown(false)
	d1 := client.New(a1)
	defer d1.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if info, err := d1.RulesInfo(); err == nil && info.Generation >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard 1 never converged to the fleet generation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := gw.MetricsSnapshot().Get("gateway.reload.reconciled"); got == 0 {
		t.Fatal("reconciler converged nothing (gateway.reload.reconciled = 0)")
	}
}
