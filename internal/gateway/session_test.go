// Sticky streaming sessions and batched scans through the fleet tier:
// byte-identity against the local streaming engine, the gateway id
// remap, and the kill-a-shard-mid-session chaos proof. The chaos
// scenario runs the same seed twice (run-a/run-b) under -race; every
// session must either complete byte-identical to the local ground
// truth or fail with a clean, typed error — never a hang, never a
// silently lossy stream — and a failed session's replacement must
// re-place onto a surviving shard and replay to the identical result.
package gateway_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/faultinject/netchaos"
	"alveare/internal/gateway"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

var sessRules = []string{"ab+c", "needle", "sess-[a-f]-[0-9]+"}

// sessPayload is one tenant's stream, dense in matches that straddle
// the chunk sizes the tests push.
func sessPayload(tenant string, n int) []byte {
	var b bytes.Buffer
	for b.Len() < n {
		fmt.Fprintf(&b, "..abc..%s-7..needle..abbbbbbbbbbbbbbbbc..%s-42..", tenant, tenant)
	}
	return b.Bytes()
}

// localSessionMatches is the ground truth: the local streaming engine
// over the same stream with the server's default overlap.
func localSessionMatches(t *testing.T, payload []byte) []server.RuleMatch {
	t.Helper()
	rs, err := core.NewRuleSet(sessRules, backend.Options{}, core.WithDFA())
	if err != nil {
		t.Fatal(err)
	}
	var want []server.RuleMatch
	if _, err := rs.ScanReaderCtx(context.Background(), bytes.NewReader(payload),
		func(rule int, m core.Match, _ []byte) bool {
			want = append(want, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
			return true
		}); err != nil {
		t.Fatal(err)
	}
	sortMatches(want)
	if len(want) == 0 {
		t.Fatal("ground truth empty; the test would prove nothing")
	}
	return want
}

// streamSession pushes payload through one gateway session in
// chunk-sized frames and returns all matches, sorted.
func streamSession(t *testing.T, c *client.Client, payload []byte, chunk int) []server.RuleMatch {
	t.Helper()
	sess, err := c.OpenSession(0)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	var got []server.RuleMatch
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		ms, _, err := sess.Write(payload[off:end])
		if err != nil {
			t.Fatalf("Write at %d: %v", off, err)
		}
		got = append(got, ms...)
	}
	ms, consumed, err := sess.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if consumed != uint64(len(payload)) {
		t.Fatalf("consumed = %d, want %d", consumed, len(payload))
	}
	got = append(got, ms...)
	sortMatches(got)
	return got
}

// TestGatewaySessionSticky pins the fleet-tier tentpole invariant: a
// session through the gateway (id-remapped, pinned to one shard)
// returns byte-identical matches to the local streaming engine,
// across frame sizes, and the mapping table drains back to zero.
func TestGatewaySessionSticky(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, a0 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, a1 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	gw, gaddr := startGateway(t, gateway.Config{
		Backends: []string{a0, a1},
		Tenants:  []gateway.Tenant{{Name: "tenant-a"}, {Name: "tenant-b"}},
	})
	for _, tn := range []string{"tenant-a", "tenant-b"} {
		c := client.New(gaddr, client.WithTenant(tn, "default"))
		defer c.Close()
		payload := sessPayload(tn, 32<<10)
		want := localSessionMatches(t, payload)
		for _, chunk := range []int{13, 1024, 64 << 10} {
			got := streamSession(t, c, payload, chunk)
			if !bytes.Equal(server.EncodeMatches(got), server.EncodeMatches(want)) {
				t.Fatalf("%s chunk=%d: session through gateway not byte-identical to local", tn, chunk)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for gw.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gateway session mappings leaked: %d", gw.SessionCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGatewayBatch: SCAN-BATCH routes like SCAN (ring walk, failover)
// and its per-item results equal individual scans through the gateway.
func TestGatewayBatch(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, a0 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, a1 := startShard(t, server.Config{Rules: sessRules, Workers: 2})
	_, gaddr := startGateway(t, gateway.Config{
		Backends: []string{a0, a1},
		Tenants:  []gateway.Tenant{{Name: "tenant-a"}},
	})
	c := client.New(gaddr, client.WithTenant("tenant-a", "default"))
	defer c.Close()
	payloads := [][]byte{
		[]byte("..abc.."), {}, []byte("needle sess-a-1 needle"), sessPayload("tenant-a", 4096),
	}
	got, err := c.ScanBatch(payloads)
	if err != nil {
		t.Fatalf("ScanBatch: %v", err)
	}
	for i, p := range payloads {
		want, err := c.Scan(p)
		if err != nil {
			t.Fatalf("Scan item %d: %v", i, err)
		}
		if got[i].Err != nil {
			t.Fatalf("batch item %d failed: %v", i, got[i].Err)
		}
		sortMatches(got[i].Matches)
		sortMatches(want)
		if !bytes.Equal(server.EncodeMatches(got[i].Matches), server.EncodeMatches(want)) {
			t.Fatalf("batch item %d differs from SCAN through gateway", i)
		}
	}
}

// TestGatewaySessionChaosKillShard is the chaos proof: several tenants
// stream through sessions pinned across two shards; one shard dies
// mid-stream. Sessions pinned to the dead shard must fail with a
// clean, typed error (never a hang, never a wrong result); their
// replacements must re-place onto the surviving shard and replay to
// byte-identical results; sessions on the survivor must complete
// byte-identical without interruption. Same seed, two runs, -race.
func TestGatewaySessionChaosKillShard(t *testing.T) {
	for _, run := range []string{"run-a", "run-b"} {
		t.Run(run, func(t *testing.T) { gatewaySessionChaosRun(t) })
	}
}

func gatewaySessionChaosRun(t *testing.T) {
	t.Cleanup(leakCheck(t))
	t.Logf("gateway session chaos seed %d (edit gwChaosSeed to replay a variant)", gwChaosSeed)

	// Two real shards behind chaos proxies; shard 0 gets latency
	// jitter, shard 1 is the one killed mid-stream.
	var proxies []*netchaos.Proxy
	var addrs []string
	lat := netchaos.NewScenario("latency")
	lat.Latency = 200 * time.Microsecond
	lat.Jitter = 300 * time.Microsecond
	scenarios := [][]netchaos.Scenario{{lat}, nil}
	for i := 0; i < 2; i++ {
		_, saddr := startShard(t, server.Config{Rules: sessRules, Workers: 2})
		p, err := netchaos.New(saddr, gwChaosSeed+int64(i), scenarios[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		proxies = append(proxies, p)
		addrs = append(addrs, p.Addr())
	}

	// Enough tenants that the ring deterministically places sessions on
	// both shards (the placement depends only on the seeded ring).
	names := []string{"sess-a", "sess-b", "sess-c", "sess-d", "sess-e", "sess-f"}
	tenants := make([]gateway.Tenant, len(names))
	for i, n := range names {
		tenants[i] = gateway.Tenant{Name: n, QueueDepth: 64}
	}
	gw, gaddr := startGateway(t, gateway.Config{
		Backends:        addrs,
		Tenants:         tenants,
		BreakerFailures: 3,
		BreakerCooldown: 30 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ShardTimeout:    2 * time.Second,
		Seed:            gwChaosSeed,
	})

	const chunk = 512
	type flow struct {
		name    string
		c       *client.Client
		sess    *client.Session
		payload []byte
		want    []server.RuleMatch
		got     []server.RuleMatch
		off     int
		failed  bool
	}
	var flows []*flow
	for _, n := range names {
		c := client.New(gaddr, client.WithTenant(n, "default"))
		t.Cleanup(func() { c.Close() })
		payload := sessPayload(n, 16<<10)
		fl := &flow{name: n, c: c, payload: payload, want: localSessionMatches(t, payload)}
		sess, err := c.OpenSessionCtx(context.Background(), 0)
		if err != nil {
			t.Fatalf("seed %d: %s open: %v", gwChaosSeed, n, err)
		}
		fl.sess = sess
		flows = append(flows, fl)
	}

	// Stream the first half of every flow, then kill shard 1.
	push := func(fl *flow, until int) error {
		for fl.off < until {
			end := fl.off + chunk
			if end > until {
				end = until
			}
			ms, _, err := fl.sess.WriteCtx(context.Background(), fl.payload[fl.off:end])
			if err != nil {
				if errors.Is(err, client.ErrShed) {
					continue // chunk not absorbed; resend
				}
				return err
			}
			fl.off = end
			fl.got = append(fl.got, ms...)
		}
		return nil
	}
	for _, fl := range flows {
		if err := push(fl, len(fl.payload)/2); err != nil {
			t.Fatalf("seed %d: %s first half: %v", gwChaosSeed, fl.name, err)
		}
	}
	proxies[1].SetDown(true)

	// Stream the second half. A flow pinned to the dead shard must
	// fail with a clean, typed error; a flow on the survivor must
	// complete byte-identical.
	var killed, survived int
	for _, fl := range flows {
		err := push(fl, len(fl.payload))
		if err == nil {
			ms, consumed, cerr := fl.sess.CloseCtx(context.Background())
			if cerr != nil {
				err = cerr
			} else {
				if consumed != uint64(len(fl.payload)) {
					t.Fatalf("seed %d: %s consumed %d, want %d", gwChaosSeed, fl.name, consumed, len(fl.payload))
				}
				fl.got = append(fl.got, ms...)
			}
		}
		if err != nil {
			var se *client.ServerError
			if !errors.As(err, &se) && !errors.Is(err, client.ErrShed) {
				t.Fatalf("seed %d: %s mid-stream failure is not a clean typed error: %v", gwChaosSeed, fl.name, err)
			}
			fl.failed = true
			killed++
			continue
		}
		sortMatches(fl.got)
		if !bytes.Equal(server.EncodeMatches(fl.got), server.EncodeMatches(fl.want)) {
			t.Fatalf("seed %d: %s survived the kill but is not byte-identical (lossy stream)", gwChaosSeed, fl.name)
		}
		survived++
	}
	if killed == 0 {
		t.Fatalf("seed %d: no session was pinned to the killed shard; the chaos proved nothing (re-seed)", gwChaosSeed)
	}
	if survived == 0 {
		t.Fatalf("seed %d: no session survived on the healthy shard (re-seed)", gwChaosSeed)
	}
	t.Logf("seed %d: kill window: %d sessions killed cleanly, %d survived byte-identical", gwChaosSeed, killed, survived)

	// Replacement sessions for every killed flow must re-place onto the
	// surviving shard (ring walk skips the open breaker) and replay the
	// whole stream to the identical result.
	for _, fl := range flows {
		if !fl.failed {
			continue
		}
		var got []server.RuleMatch
		deadline := time.Now().Add(10 * time.Second)
		for {
			sess, err := fl.c.OpenSessionCtx(context.Background(), 0)
			if err != nil {
				// The breaker may still be settling; re-try until the
				// walk lands on the survivor.
				if time.Now().After(deadline) {
					t.Fatalf("seed %d: %s re-open never succeeded: %v", gwChaosSeed, fl.name, err)
				}
				time.Sleep(5 * time.Millisecond)
				continue
			}
			fl.sess, fl.off, fl.got = sess, 0, nil
			if err := push(fl, len(fl.payload)); err != nil {
				t.Fatalf("seed %d: %s replay: %v", gwChaosSeed, fl.name, err)
			}
			ms, _, err := fl.sess.CloseCtx(context.Background())
			if err != nil {
				t.Fatalf("seed %d: %s replay close: %v", gwChaosSeed, fl.name, err)
			}
			got = append(fl.got, ms...)
			break
		}
		sortMatches(got)
		if !bytes.Equal(server.EncodeMatches(got), server.EncodeMatches(fl.want)) {
			t.Fatalf("seed %d: %s replayed stream not byte-identical", gwChaosSeed, fl.name)
		}
	}

	// No mapping leaks: killed sessions were dropped on failure, closed
	// ones on CLOSE.
	deadline := time.Now().Add(5 * time.Second)
	for gw.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: gateway session mappings leaked: %d", gwChaosSeed, gw.SessionCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	proxies[1].SetDown(false)
	// leakCheck (cleanup) pins that gateway, shards and proxies left no
	// goroutines behind.
}
