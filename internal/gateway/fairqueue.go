// Weighted fair queue: the gateway's admission stage between quota
// and the worker pool. Each tenant owns a bounded FIFO; workers drain
// tenants round-robin by deficit counter (DRR with unit job cost, so
// deficit == weighted round robin), which upper-bounds any tenant's
// share of worker time at weight/Σweights no matter how deep its
// queue is. A noisy tenant therefore fills its own FIFO and SHEDs
// (ShedReasonFairQ) while quiet tenants' jobs keep flowing — the
// "degrade to SHED, never starve" contract of the gateway.
package gateway

import "sync"

// job is one queued unit of gateway work.
type job struct {
	run func()
}

// tenantQueue is one tenant's slot in the fair queue.
type tenantQueue struct {
	name   string
	weight int
	depth  int // FIFO capacity
	jobs   []*job
	credit int  // DRR deficit counter
	active bool // currently in fq.active
}

// fairQueue multiplexes per-tenant FIFOs to the worker pool. Safe for
// concurrent use; pop blocks until a job is available or the queue is
// closed and fully drained.
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	active  []*tenantQueue // tenants with queued jobs, visit order
	cursor  int            // next active slot to visit
	closed  bool
}

func newFairQueue() *fairQueue {
	fq := &fairQueue{tenants: make(map[string]*tenantQueue)}
	fq.cond = sync.NewCond(&fq.mu)
	return fq
}

// addTenant registers a tenant's slot. Weight < 1 is raised to 1,
// depth < 1 to 1. Must be called before push for that tenant.
func (fq *fairQueue) addTenant(name string, weight, depth int) {
	if weight < 1 {
		weight = 1
	}
	if depth < 1 {
		depth = 1
	}
	fq.mu.Lock()
	defer fq.mu.Unlock()
	fq.tenants[name] = &tenantQueue{name: name, weight: weight, depth: depth}
}

// push enqueues a job for tenant name. Returns false — caller SHEDs —
// when the tenant's FIFO is at capacity, the tenant is unknown, or
// the queue is closed.
func (fq *fairQueue) push(name string, j *job) bool {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.closed {
		return false
	}
	tq := fq.tenants[name]
	if tq == nil || len(tq.jobs) >= tq.depth {
		return false
	}
	tq.jobs = append(tq.jobs, j)
	if !tq.active {
		tq.active = true
		fq.active = append(fq.active, tq)
	}
	fq.cond.Signal()
	return true
}

// pop dequeues the next job by deficit round robin, blocking while the
// queue is open and empty. After close it keeps draining queued jobs
// (graceful drain serves what was admitted) and returns false only
// once closed and empty.
func (fq *fairQueue) pop() (*job, bool) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for {
		if len(fq.active) > 0 {
			if fq.cursor >= len(fq.active) {
				fq.cursor = 0
			}
			tq := fq.active[fq.cursor]
			if tq.credit <= 0 {
				tq.credit += tq.weight
			}
			j := tq.jobs[0]
			tq.jobs = tq.jobs[1:]
			tq.credit--
			if len(tq.jobs) == 0 {
				// Tenant exhausted: retire it from the active list
				// without advancing the cursor (the slot's successor
				// shifts into this index).
				tq.active = false
				tq.credit = 0
				fq.active = append(fq.active[:fq.cursor], fq.active[fq.cursor+1:]...)
			} else if tq.credit <= 0 {
				fq.cursor++
			}
			return j, true
		}
		if fq.closed {
			return nil, false
		}
		fq.cond.Wait()
	}
}

// depthOf returns tenant name's current queue depth (0 if unknown).
func (fq *fairQueue) depthOf(name string) int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if tq := fq.tenants[name]; tq != nil {
		return len(tq.jobs)
	}
	return 0
}

// close stops admission and wakes every blocked pop. Queued jobs are
// still served; pop returns false once the backlog drains.
func (fq *fairQueue) close() {
	fq.mu.Lock()
	fq.closed = true
	fq.mu.Unlock()
	fq.cond.Broadcast()
}
