// Package gateway is the fleet tier: a front-end speaking the framed
// protocol (extended with the TENANT envelope) that routes requests
// across a fleet of scan-service shards by consistent hashing over
// (tenant, rule-namespace).
//
// Robustness model. Every shard is a replica of the same rule set; the
// ring partitions load, not data, so any shard can answer any request
// and failover never changes results. Admission is three gates deep —
// token-bucket quota (SHED quota), weighted fair queue (SHED
// fair-queue), then the worker pool — so a noisy tenant degrades to
// SHED instead of starving the fleet. Routing walks the key's ring
// order through the per-backend circuit breakers from PR 5: an open
// breaker refuses Acquire and the walk skips to the next shard, which
// is exactly "the ring excludes open-breaker backends"; the shared
// health prober flips a revived shard's breaker closed and the walk
// naturally re-includes it. Retries are idempotent-only (SCAN, COUNT,
// SCAN-PATTERN; RELOAD is fanned out once, never retried) and spend a
// bounded budget of shard attempts before degrading to a SHED with
// reason "capacity" — an admitted request always terminates with an
// answer within its budget.
//
// SCAN-PATTERN scatter-gathers across every shard the breakers admit,
// each leg under its own deadline, and merges the replies. A fan-out
// that missed any shard is reported as MATCHES-PARTIAL with explicit
// answered/missed shard counts — a shard is never silently dropped.
package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// faultDrainTimeout bounds draining a peer's leftover bytes after a
// framing fault, as in the scan server.
const faultDrainTimeout = 500 * time.Millisecond

// Tenant is one row of the gateway's static tenant table.
type Tenant struct {
	// Name keys the TENANT envelope; required, at most
	// server.MaxTenantName bytes.
	Name string
	// Weight is the tenant's fair-queue share (default 1). A tenant
	// with weight 3 gets three worker visits per round to a
	// weight-1 tenant's one.
	Weight int
	// RateRPS sustains this many requests per second through the
	// tenant's token bucket (0: unlimited); Burst is the bucket depth
	// (default 1 when rate-limited).
	RateRPS float64
	Burst   int
	// QueueDepth bounds the tenant's fair-queue FIFO (default 32).
	// A full FIFO SHEDs with reason fair-queue.
	QueueDepth int
}

// Config parameterises a Gateway. Zero values select the defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe.
	Addr string
	// Backends lists the shard addresses; required.
	Backends []string
	// Tenants is the static tenant table; required.
	Tenants []Tenant
	// DefaultTenant, when set, is assumed for queue-class requests
	// that arrive without a TENANT envelope (it must name a table
	// row). When empty such requests are rejected as unknown-tenant.
	DefaultTenant string

	// Workers is the routing worker-pool width (default GOMAXPROCS).
	Workers int
	// MaxFrame bounds one request frame (default server.DefaultMaxFrame).
	MaxFrame int
	// ReadTimeout / WriteTimeout are the per-frame deadlines on client
	// connections (default 30s each).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// ShardTimeout bounds each attempt against one shard (default 2s).
	ShardTimeout time.Duration
	// Retries is the shard-attempt budget per routed request (default
	// 2×len(Backends)): when it runs out the request SHEDs with
	// reason capacity.
	Retries int

	// BreakerFailures / BreakerCooldown / ProbeInterval parameterise
	// the per-shard circuit breakers and the shared full-jittered
	// health prober (defaults 3, 1s, 500ms).
	BreakerFailures int
	BreakerCooldown time.Duration
	ProbeInterval   time.Duration

	// RingReplicas is the virtual-node count per shard (default 64).
	RingReplicas int

	// MaxSessions bounds the open sticky streaming sessions across all
	// tenants (default 1024); an OPEN past it sheds with reason
	// capacity.
	MaxSessions int
	// SessionIdleTimeout drops session mappings with no traffic for
	// this long (default 60s); a dropped id answers unknown-session.
	SessionIdleTimeout time.Duration
	// SessionPending bounds one session's admitted-but-unforwarded
	// frames (default 8); past it the frame sheds without being
	// forwarded, so the client may resend it.
	SessionPending int
	// ReconcileInterval is the period of the rule-generation
	// anti-entropy reconciler: a background loop that probes each
	// shard's generation via RULES-INFO and re-drives the last
	// successful RELOAD onto shards that lag the fleet — the
	// counterpart of the session failover generation fence, which
	// refuses to restore a stream onto a lagging replica. Default 5s;
	// negative disables the loop.
	ReconcileInterval time.Duration
	// Seed makes the probe jitter and retry backoff deterministic in
	// tests (0: time-based).
	Seed int64
	// Registry receives the gateway's metrics; nil allocates a
	// private one (served by STATS, flushed by alvearegw -metrics).
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = server.DefaultMaxFrame
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 2 * len(c.Backends)
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = 60 * time.Second
	}
	if c.SessionPending <= 0 {
		c.SessionPending = 8
	}
	if c.ReconcileInterval == 0 {
		c.ReconcileInterval = 5 * time.Second
	}
	return c
}

// tenantState is one tenant's runtime: its quota bucket and its
// pre-resolved metric handles.
type tenantState struct {
	name     string
	quota    *tokenBucket
	requests *metrics.Counter // queue-class arrivals
	ok       *metrics.Counter // answered with a success response
	shed     *metrics.Counter // SHED for any reason
	errs     *metrics.Counter // answered with ERROR
	qdepth   *metrics.Gauge   // fair-queue FIFO depth
}

// gwMetrics is the gateway's pre-resolved metric handles.
type gwMetrics struct {
	requests       *metrics.Counter
	ok             *metrics.Counter
	errs           *metrics.Counter
	shed           *metrics.Counter
	shedQuota      *metrics.Counter
	shedFairq      *metrics.Counter
	shedCapacity   *metrics.Counter
	rerouted       *metrics.Counter // answered by a shard other than the ring owner
	partial        *metrics.Counter // scatter-gathers that missed a shard
	sessOpens      *metrics.Counter
	sessCloses     *metrics.Counter
	sessReaped     *metrics.Counter
	sessActive     *metrics.Gauge
	sessRestores   *metrics.Counter // streams rebuilt on a replica (failover or client restore)
	sessFailovers  *metrics.Counter // frames that triggered a failover walk
	sessReplays    *metrics.Counter // in-flight frames replayed on a replacement shard
	sessDedup      *metrics.Counter // replayed matches suppressed by the finalised-prefix mark
	sessGenRefused *metrics.Counter // restore candidates refused by the generation fence
	reconciled     *metrics.Counter // lagging shards converged by the anti-entropy loop
	bytesIn        *metrics.Counter
	bytesOut       *metrics.Counter
	connsOpen      *metrics.Gauge
	connsTotal     *metrics.Counter
	reachable      *metrics.Gauge // fleet.shards.reachable
}

func resolveMetrics(r *metrics.Registry) gwMetrics {
	return gwMetrics{
		requests:       r.Counter("gateway.requests"),
		ok:             r.Counter("gateway.ok"),
		errs:           r.Counter("gateway.errors"),
		shed:           r.Counter("gateway.shed"),
		shedQuota:      r.Counter("gateway.shed.quota"),
		shedFairq:      r.Counter("gateway.shed.fairqueue"),
		shedCapacity:   r.Counter("gateway.shed.capacity"),
		rerouted:       r.Counter("gateway.rerouted"),
		partial:        r.Counter("gateway.partial"),
		sessOpens:      r.Counter("gateway.session.opens"),
		sessCloses:     r.Counter("gateway.session.closes"),
		sessReaped:     r.Counter("gateway.session.reaped"),
		sessActive:     r.Gauge("gateway.session.active"),
		sessRestores:   r.Counter("gateway.sessions.restores"),
		sessFailovers:  r.Counter("gateway.sessions.failovers"),
		sessReplays:    r.Counter("gateway.sessions.replays"),
		sessDedup:      r.Counter("gateway.sessions.dedup"),
		sessGenRefused: r.Counter("gateway.sessions.genrefused"),
		reconciled:     r.Counter("gateway.reload.reconciled"),
		bytesIn:        r.Counter("gateway.bytes.in"),
		bytesOut:       r.Counter("gateway.bytes.out"),
		connsOpen:      r.Gauge("gateway.conns.open"),
		connsTotal:     r.Counter("gateway.conns.total"),
		reachable:      r.Gauge("fleet.shards.reachable"),
	}
}

// Gateway is one fleet front-end instance.
type Gateway struct {
	cfg     Config
	bs      *client.Backends
	ring    *ring
	fq      *fairQueue
	tenants map[string]*tenantState
	reg     *metrics.Registry
	met     gwMetrics

	baseCtx context.Context
	abort   context.CancelFunc

	rngMu sync.Mutex
	rng   *rand.Rand

	sessMu   sync.Mutex
	sessions map[uint64]*gwSession
	sessNext uint64
	sessStop chan struct{} // closed when the drain begins; stops the reaper

	// Anti-entropy state: the last fleet-visible RELOAD body and the
	// highest generation any shard reached applying it. The reconciler
	// re-drives this reload onto shards that lag the target.
	reconMu    sync.Mutex
	reconRules []byte
	reconGen   uint32

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	closed   bool

	stopOnce  sync.Once
	stopped   chan struct{}
	wgConns   sync.WaitGroup
	wgWorkers sync.WaitGroup
}

// conn mirrors the scan server's connection bookkeeping: one reader
// goroutine, responses written under the write mutex, admitted jobs
// tracked so drain can finish them.
type conn struct {
	nc      net.Conn
	wmu     sync.Mutex
	pending sync.WaitGroup
	broken  atomic.Bool
}

// New builds the gateway. No shard is dialed until traffic (or the
// prober) touches it; the gateway does not listen until Serve.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("gateway: at least one tenant required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	bs, err := client.NewBackends(cfg.Backends, client.BackendsConfig{
		Seed:            seed,
		Registry:        reg,
		GaugePrefix:     "gateway.backend.",
		BreakerFailures: cfg.BreakerFailures,
		BreakerCooldown: cfg.BreakerCooldown,
		ProbeInterval:   cfg.ProbeInterval,
		AttemptTimeout:  cfg.ShardTimeout,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:      cfg,
		bs:       bs,
		ring:     newRing(len(cfg.Backends), cfg.RingReplicas),
		fq:       newFairQueue(),
		tenants:  make(map[string]*tenantState, len(cfg.Tenants)),
		reg:      reg,
		met:      resolveMetrics(reg),
		baseCtx:  ctx,
		abort:    cancel,
		rng:      rand.New(rand.NewSource(seed ^ 0x5deece66d)),
		sessions: map[uint64]*gwSession{},
		sessStop: make(chan struct{}),
		conns:    map[*conn]struct{}{},
		stopped:  make(chan struct{}),
	}
	for _, t := range cfg.Tenants {
		if t.Name == "" || len(t.Name) > server.MaxTenantName {
			bs.Close()
			cancel()
			return nil, fmt.Errorf("gateway: invalid tenant name %q", t.Name)
		}
		if _, dup := g.tenants[t.Name]; dup {
			bs.Close()
			cancel()
			return nil, fmt.Errorf("gateway: duplicate tenant %q", t.Name)
		}
		depth := t.QueueDepth
		if depth <= 0 {
			depth = 32
		}
		g.fq.addTenant(t.Name, t.Weight, depth)
		g.tenants[t.Name] = &tenantState{
			name:     t.Name,
			quota:    newTokenBucket(t.RateRPS, t.Burst),
			requests: reg.Counter("gateway.tenant." + t.Name + ".requests"),
			ok:       reg.Counter("gateway.tenant." + t.Name + ".ok"),
			shed:     reg.Counter("gateway.tenant." + t.Name + ".shed"),
			errs:     reg.Counter("gateway.tenant." + t.Name + ".errors"),
			qdepth:   reg.Gauge("gateway.tenant." + t.Name + ".queue.depth"),
		}
	}
	if cfg.DefaultTenant != "" && g.tenants[cfg.DefaultTenant] == nil {
		bs.Close()
		cancel()
		return nil, fmt.Errorf("gateway: default tenant %q not in tenant table", cfg.DefaultTenant)
	}
	return g, nil
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown/Close.
func (g *Gateway) ListenAndServe() error {
	ln, err := net.Listen("tcp", g.cfg.Addr)
	if err != nil {
		return err
	}
	return g.Serve(ln)
}

// Addr returns the listener's address, or nil before Serve.
func (g *Gateway) Addr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ln == nil {
		return nil
	}
	return g.ln.Addr()
}

// Serve runs the accept loop on ln until Shutdown or Close; it owns
// the listener. The error is nil after a clean shutdown.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed || g.draining {
		g.mu.Unlock()
		ln.Close()
		return errors.New("gateway: already shut down")
	}
	g.ln = ln
	g.mu.Unlock()

	for i := 0; i < g.cfg.Workers; i++ {
		g.wgWorkers.Add(1)
		go g.worker()
	}
	g.wgWorkers.Add(1)
	go g.sessionReaper()
	if g.cfg.ReconcileInterval > 0 {
		g.wgWorkers.Add(1)
		go g.reconciler()
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			stopping := g.draining || g.closed
			g.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		c := &conn{nc: nc}
		g.mu.Lock()
		if g.draining || g.closed {
			g.mu.Unlock()
			nc.Close()
			continue
		}
		g.conns[c] = struct{}{}
		open := len(g.conns)
		g.mu.Unlock()
		g.met.connsTotal.Inc()
		g.met.connsOpen.Set(int64(open))
		g.wgConns.Add(1)
		go g.serveConn(c)
	}
}

// Shutdown drains the gateway: listener closed, readers woken, every
// admitted request answered, workers retired, shard connections
// closed. Returns nil on a clean drain, or ctx's error after
// escalating to Close.
func (g *Gateway) Shutdown(ctx context.Context) error {
	for _, c := range g.beginStop() {
		c.nc.SetReadDeadline(time.Now())
	}
	g.ensureDrainLoop()
	select {
	case <-g.stopped:
		return nil
	case <-ctx.Done():
		g.Close()
		return ctx.Err()
	}
}

// Close stops the gateway immediately: in-flight routing is cancelled
// and client connections closed. Prefer Shutdown.
func (g *Gateway) Close() error {
	conns := g.beginStop()
	g.abort()
	for _, c := range conns {
		c.broken.Store(true)
		c.nc.Close()
	}
	g.ensureDrainLoop()
	<-g.stopped
	return nil
}

func (g *Gateway) beginStop() []*conn {
	g.mu.Lock()
	g.draining = true
	ln := g.ln
	conns := make([]*conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	return conns
}

// ensureDrainLoop runs the terminal drain exactly once: readers (the
// fair queue's only producers) exit, the queue closes and its backlog
// is served, workers retire, shard connections close.
func (g *Gateway) ensureDrainLoop() {
	g.stopOnce.Do(func() {
		go func() {
			close(g.sessStop)
			g.wgConns.Wait()
			g.fq.close()
			g.wgWorkers.Wait()
			g.bs.Close()
			g.mu.Lock()
			g.closed = true
			g.mu.Unlock()
			g.abort()
			close(g.stopped)
		}()
	})
}

func (g *Gateway) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// MetricsSnapshot refreshes the fleet gauges and returns the gateway
// registry's deterministic snapshot — the STATS response body.
func (g *Gateway) MetricsSnapshot() *metrics.Snapshot {
	g.pollFleet()
	g.mu.Lock()
	open := len(g.conns)
	g.mu.Unlock()
	g.met.connsOpen.Set(int64(open))
	for name, ts := range g.tenants {
		ts.qdepth.Set(int64(g.fq.depthOf(name)))
	}
	return g.reg.Snapshot()
}

// fleetSums lists the shard counters the gateway aggregates into
// fleet.* (summed across reachable shards at each STATS).
var fleetSums = []string{
	"server.scan.requests",
	"server.count.requests",
	"server.pattern.requests",
	"server.matches",
	"server.shed",
	"server.errors",
	"ruleset.approx.windows.screened",
	"ruleset.approx.bytes.screened",
	"ruleset.approx.windows.admitted",
	"ruleset.approx.windows.exacthit",
	"server.session.opens",
	"server.session.closes",
	"server.session.reaped",
	"server.session.restores",
}

// pollFleet asks every shard whose breaker is not open for its STATS
// snapshot (in parallel, each under the shard timeout), sums the
// fleet counters, and sets fleet.shards.reachable. Open-breaker
// shards are counted unreachable without being dialed, so STATS stays
// fast while a shard is dead.
func (g *Gateway) pollFleet() {
	n := g.bs.Len()
	snaps := make([]*metrics.Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if g.bs.State(i) == client.BreakerOpen {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
			defer cancel()
			snap, err := g.bs.Client(i).StatsCtx(ctx)
			if err == nil {
				snaps[i] = snap
			}
		}(i)
	}
	wg.Wait()
	reachable := 0
	sums := make([]int64, len(fleetSums))
	var sessOpen int64
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		reachable++
		for j, name := range fleetSums {
			sums[j] += snap.Get(name)
		}
		sessOpen += snap.Get("server.session.active")
	}
	g.met.reachable.Set(int64(reachable))
	for j, name := range fleetSums {
		g.reg.Counter("fleet." + name).Store(sums[j])
	}
	// Streams resident across reachable shards — a gauge, not a counter,
	// so it is summed here instead of riding fleetSums.
	g.reg.Gauge("fleet.sessions.open").Set(sessOpen)
}

// serveConn is one client connection's reader loop, mirroring the scan
// server's: parse a frame, answer control requests inline, pass
// queue-class requests through admission.
func (g *Gateway) serveConn(c *conn) {
	defer g.wgConns.Done()
	defer func() {
		c.pending.Wait()
		g.closeConnGwSessions(c)
		c.nc.Close()
		g.mu.Lock()
		delete(g.conns, c)
		open := len(g.conns)
		g.mu.Unlock()
		g.met.connsOpen.Set(int64(open))
	}()

	for {
		if g.isDraining() {
			return
		}
		c.nc.SetReadDeadline(time.Now().Add(g.cfg.ReadTimeout))
		f, err := server.ReadFrame(c.nc, g.cfg.MaxFrame)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				return
			case errors.Is(err, os.ErrDeadlineExceeded):
				return
			case errors.Is(err, server.ErrFrameTooLarge), errors.Is(err, server.ErrMalformedFrame):
				g.met.errs.Inc()
				g.writeFrame(c, server.Frame{Op: server.OpError, Body: server.EncodeError(server.ErrCodeBadFrame, err.Error())})
				if tc, ok := c.nc.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				c.nc.SetReadDeadline(time.Now().Add(faultDrainTimeout))
				io.Copy(io.Discard, io.LimitReader(c.nc, int64(g.cfg.MaxFrame)))
				return
			default:
				return
			}
		}
		g.met.bytesIn.Add(int64(9 + len(f.Body)))
		g.dispatch(c, f)
	}
}

// dispatch routes one parsed request. PING answers locally; RULES-INFO
// forwards to the first admitting shard; STATS aggregates the fleet —
// all inline on the reader. Queue-class requests resolve their tenant
// and run the admission gates.
func (g *Gateway) dispatch(c *conn, f server.Frame) {
	switch f.Op {
	case server.OpPing:
		g.writeFrame(c, server.Frame{Op: server.OpPong, ID: f.ID})
		return
	case server.OpRulesInfo:
		g.forwardControl(c, f.ID, server.OpRulesInfo, server.OpInfo, nil)
		return
	case server.OpStats:
		var buf bytes.Buffer
		if err := g.MetricsSnapshot().WriteJSON(&buf); err != nil {
			g.replyErr(c, f.ID, nil, server.ErrCodeScan, err)
			return
		}
		g.writeFrame(c, server.Frame{Op: server.OpStatsResp, ID: f.ID, Body: buf.Bytes()})
		return
	}

	// Queue-class work, bare or TENANT-wrapped.
	var (
		hdr   server.TenantHeader
		op    byte
		body  []byte
		named bool
	)
	switch {
	case f.Op == server.OpTenant:
		var err error
		hdr, op, body, err = server.DecodeTenant(f.Body)
		if err != nil {
			g.met.errs.Inc()
			g.replyErr(c, f.ID, nil, server.ErrCodeBadFrame, err)
			return
		}
		named = true
	case server.QueueClass(f.Op):
		op, body = f.Op, f.Body
		hdr = server.TenantHeader{Tenant: g.cfg.DefaultTenant}
	default:
		g.met.errs.Inc()
		g.writeFrame(c, server.Frame{Op: server.OpError, ID: f.ID,
			Body: server.EncodeError(server.ErrCodeBadFrame, "unknown opcode "+server.OpName(f.Op))})
		return
	}

	g.met.requests.Inc()
	ts := g.tenants[hdr.Tenant]
	if ts == nil {
		g.met.errs.Inc()
		what := hdr.Tenant
		if !named && what == "" {
			what = "(no TENANT header)"
		}
		g.writeFrame(c, server.Frame{Op: server.OpError, ID: f.ID,
			Body: server.EncodeError(server.ErrCodeUnknownTenant, "unknown tenant "+what)})
		return
	}
	ts.requests.Inc()
	if g.isDraining() {
		g.replyErr(c, f.ID, ts, server.ErrCodeDraining, errors.New("gateway draining"))
		return
	}
	if !ts.quota.take() {
		g.shedReply(c, f.ID, ts, server.ShedReasonQuota)
		return
	}
	if op == server.OpSessionData || op == server.OpSessionClose {
		// Session frames must reach their pinned shard in arrival
		// order: they join the session's FIFO, not the fair queue
		// directly.
		g.dispatchSessionFrame(c, ts, hdr.Tenant, op, body, f.ID)
		return
	}
	id, key := f.ID, hdr.Key()
	c.pending.Add(1)
	j := &job{run: func() {
		defer c.pending.Done()
		g.execute(c, ts, key, op, body, id)
	}}
	if !g.fq.push(hdr.Tenant, j) {
		c.pending.Done()
		// Refund the quota token: a fair-queue shed must not also
		// burn the tenant's contracted rate.
		ts.quota.give()
		g.shedReply(c, f.ID, ts, server.ShedReasonFairQ)
		return
	}
	ts.qdepth.Max(int64(g.fq.depthOf(hdr.Tenant)))
}

// worker serves the fair queue until it closes and drains.
func (g *Gateway) worker() {
	defer g.wgWorkers.Done()
	for {
		j, ok := g.fq.pop()
		if !ok {
			return
		}
		j.run()
	}
}

// execute routes one admitted queue-class request.
func (g *Gateway) execute(c *conn, ts *tenantState, key string, op byte, body []byte, id uint32) {
	switch op {
	case server.OpScan:
		g.routeSingle(c, ts, key, op, server.OpMatches, body, id)
	case server.OpCount:
		g.routeSingle(c, ts, key, op, server.OpCountResp, body, id)
	case server.OpScanBatch:
		g.routeSingle(c, ts, key, op, server.OpBatchResp, body, id)
	case server.OpSessionOpen:
		g.openGwSession(c, ts, key, body, id, false)
	case server.OpSessionRestore:
		g.openGwSession(c, ts, key, body, id, true)
	case server.OpScanPattern:
		g.scatterGather(c, ts, body, id)
	case server.OpReload:
		g.reloadAll(c, ts, body, id)
	}
}

// routeSingle walks the key's ring order, skipping shards whose
// breaker refuses admission, until a shard answers or the attempt
// budget runs out. Shard SHEDs and transport failures move to the
// next shard (these ops are idempotent); an authoritative ERROR is
// forwarded as-is. Budget exhaustion degrades to SHED capacity — the
// client learns "the fleet is saturated or dark", not a hang.
func (g *Gateway) routeSingle(c *conn, ts *tenantState, key string, op, wantOp byte, body []byte, id uint32) {
	order := g.ring.Order(key)
	for attempt := 0; attempt < g.cfg.Retries; attempt++ {
		idx := order[attempt%len(order)]
		if attempt > 0 && attempt%len(order) == 0 {
			// A full pass over the fleet failed; back off briefly
			// (full jitter) before the next pass instead of spinning.
			// The exponent is capped so a large retry budget over a
			// small fleet cannot overflow the shift into a negative or
			// multi-year sleep.
			exp := attempt / len(order)
			if exp > 10 {
				exp = 10 // 2^10 ms ≈ 1s ceiling per inter-pass backoff
			}
			g.sleepJitter(time.Duration(1<<uint(exp)) * time.Millisecond)
		}
		if !g.bs.Acquire(idx) {
			continue
		}
		ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		f, err := g.bs.Do(ctx, idx, op, wantOp, body)
		cancel()
		if err == nil {
			if idx != order[0] {
				g.met.rerouted.Inc()
			}
			ts.ok.Inc()
			g.met.ok.Inc()
			g.writeFrame(c, server.Frame{Op: f.Op, ID: id, Body: f.Body})
			return
		}
		var se *client.ServerError
		if errors.As(err, &se) && se.Code != server.ErrCodeDraining {
			// The shard answered authoritatively; retrying elsewhere
			// would repeat the same verdict (replicas).
			g.replyErr(c, id, ts, se.Code, errors.New(se.Msg))
			return
		}
		// Shard SHED, shard draining, or transport failure: spend the
		// attempt, walk on.
	}
	g.shedReply(c, id, ts, server.ShedReasonCapacity)
}

// scatterGather fans one SCAN-PATTERN out to every shard the breakers
// admit, each leg under its own deadline, merges the replies
// (deduplicated — shards are replicas, so agreement is the common
// case), and accounts every shard explicitly: full coverage answers
// MATCHES, anything less answers MATCHES-PARTIAL with answered/missed
// counts, and zero coverage SHEDs with reason capacity.
func (g *Gateway) scatterGather(c *conn, ts *tenantState, body []byte, id uint32) {
	n := g.bs.Len()
	legs := make([][]server.RuleMatch, n)
	// ok and failed are tracked separately from legs: a healthy shard
	// can legitimately answer an empty MATCHES body (legs[i] == nil),
	// which must count as coverage, not as a failed leg.
	ok := make([]bool, n)
	failed := make([]bool, n)
	var authErr atomic.Pointer[client.ServerError]
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if !g.bs.Acquire(i) {
			failed[i] = true
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
			defer cancel()
			f, err := g.bs.Do(ctx, i, server.OpScanPattern, server.OpMatches, body)
			if err != nil {
				var se *client.ServerError
				if errors.As(err, &se) && se.Code != server.ErrCodeDraining {
					// Authoritative rejection (compile error, bad
					// frame). A draining shard is transient — it counts
					// as a failed leg, not a fleet-wide verdict.
					authErr.Store(se)
				}
				failed[i] = true
				return
			}
			ms, err := server.DecodeMatches(f.Body)
			if err != nil {
				failed[i] = true
				return
			}
			legs[i] = ms
			ok[i] = true
		}(i)
	}
	wg.Wait()
	if se := authErr.Load(); se != nil {
		// At least one replica rejected the pattern itself (compile
		// error, bad frame): that verdict holds fleet-wide.
		g.replyErr(c, id, ts, se.Code, errors.New(se.Msg))
		return
	}
	var shardsOK, shardsFailed uint16
	merged := make(map[server.RuleMatch]struct{})
	for i := 0; i < n; i++ {
		if failed[i] || !ok[i] {
			shardsFailed++
			continue
		}
		shardsOK++
		for _, m := range legs[i] {
			merged[m] = struct{}{}
		}
	}
	if shardsOK == 0 {
		g.shedReply(c, id, ts, server.ShedReasonCapacity)
		return
	}
	ms := make([]server.RuleMatch, 0, len(merged))
	for m := range merged {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Rule != ms[b].Rule {
			return ms[a].Rule < ms[b].Rule
		}
		if ms[a].Start != ms[b].Start {
			return ms[a].Start < ms[b].Start
		}
		return ms[a].End < ms[b].End
	})
	ts.ok.Inc()
	g.met.ok.Inc()
	if shardsFailed == 0 {
		g.writeFrame(c, server.Frame{Op: server.OpMatches, ID: id, Body: server.EncodeMatches(ms)})
		return
	}
	g.met.partial.Inc()
	g.writeFrame(c, server.Frame{Op: server.OpMatchesPartial, ID: id,
		Body: server.EncodeMatchesPartial(true, shardsOK, shardsFailed, ms)})
}

// reloadAll fans a RELOAD out to every shard — replicas must stay
// identical — with a single attempt each (RELOAD is not idempotent
// across retries of a partially-applied fleet). All shards succeeding
// answers RELOAD-OK with the highest generation; any failure answers
// an ERROR naming every shard that missed the reload, so the operator
// knows the fleet has diverged and must retry.
func (g *Gateway) reloadAll(c *conn, ts *tenantState, body []byte, id uint32) {
	n := g.bs.Len()
	type result struct {
		gen, rules uint32
		err        error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
			defer cancel()
			gen, rules, err := g.bs.Client(i).ReloadCtx(ctx, string(body))
			results[i] = result{gen: gen, rules: rules, err: err}
		}(i)
	}
	wg.Wait()
	var fails []string
	var gen, rules uint32
	seen := false
	for i, r := range results {
		if r.err != nil {
			fails = append(fails, fmt.Sprintf("shard %d (%s): %v", i, g.bs.Addr(i), r.err))
			continue
		}
		// Report the (generation, rules) pair from the shard with the
		// highest generation so the two values stay consistent even if
		// shards were at different generations before the reload.
		if !seen || r.gen > gen {
			gen, rules = r.gen, r.rules
			seen = true
		}
	}
	if seen {
		// Remember the rules text and the target generation even when
		// some shards missed the reload: the anti-entropy reconciler
		// converges the laggards from exactly this state.
		g.reconMu.Lock()
		g.reconRules = append([]byte(nil), body...)
		g.reconGen = gen
		g.reconMu.Unlock()
	}
	if len(fails) > 0 {
		g.replyErr(c, id, ts, server.ErrCodeScan,
			fmt.Errorf("reload incomplete, fleet diverged: %s", strings.Join(fails, "; ")))
		return
	}
	ts.ok.Inc()
	g.met.ok.Inc()
	g.writeFrame(c, server.Frame{Op: server.OpReloadOK, ID: id, Body: server.EncodeReloadOK(gen, rules)})
}

// forwardControl forwards one control request to the first shard the
// breakers admit, inline on the reader (control requests are cheap and
// never queue).
func (g *Gateway) forwardControl(c *conn, id uint32, op, wantOp byte, body []byte) {
	for i := 0; i < g.bs.Len(); i++ {
		if !g.bs.Acquire(i) {
			continue
		}
		ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ShardTimeout)
		f, err := g.bs.Do(ctx, i, op, wantOp, body)
		cancel()
		if err == nil {
			g.writeFrame(c, server.Frame{Op: f.Op, ID: id, Body: f.Body})
			return
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			g.replyErr(c, id, nil, se.Code, errors.New(se.Msg))
			return
		}
	}
	g.met.errs.Inc()
	g.writeFrame(c, server.Frame{Op: server.OpError, ID: id,
		Body: server.EncodeError(server.ErrCodeScan, "no shard reachable")})
}

// shedReply answers one request with a reasoned SHED and counts it.
func (g *Gateway) shedReply(c *conn, id uint32, ts *tenantState, reason byte) {
	g.met.shed.Inc()
	switch reason {
	case server.ShedReasonQuota:
		g.met.shedQuota.Inc()
	case server.ShedReasonFairQ:
		g.met.shedFairq.Inc()
	case server.ShedReasonCapacity:
		g.met.shedCapacity.Inc()
	}
	if ts != nil {
		ts.shed.Inc()
	}
	g.writeFrame(c, server.Frame{Op: server.OpShed, ID: id, Body: []byte{reason}})
}

// replyErr writes an ERROR response and counts it.
func (g *Gateway) replyErr(c *conn, id uint32, ts *tenantState, code byte, err error) {
	g.met.errs.Inc()
	if ts != nil {
		ts.errs.Inc()
	}
	g.writeFrame(c, server.Frame{Op: server.OpError, ID: id, Body: server.EncodeError(code, err.Error())})
}

// writeFrame serialises one response under the connection's write
// mutex, exactly as the scan server does.
func (g *Gateway) writeFrame(c *conn, f server.Frame) {
	if c.broken.Load() {
		return
	}
	c.wmu.Lock()
	if g.cfg.WriteTimeout > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout))
	}
	err := server.WriteFrame(c.nc, f)
	c.wmu.Unlock()
	if err != nil {
		if c.broken.CompareAndSwap(false, true) {
			c.nc.Close()
		}
		return
	}
	g.met.bytesOut.Add(int64(9 + len(f.Body)))
}

// sleepJitter sleeps a full-jittered draw from (0, d], bounded by the
// gateway lifecycle (Close aborts the sleep).
func (g *Gateway) sleepJitter(d time.Duration) {
	if d <= 0 {
		return
	}
	g.rngMu.Lock()
	d = time.Duration(g.rng.Int63n(int64(d))) + 1
	g.rngMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-g.baseCtx.Done():
	}
}
