package gateway_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"alveare/internal/gateway"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

var testRules = []string{
	`alpha[0-9]+`,
	`beta-(secret|token)`,
	`[a-f0-9]{8}-dead`,
}

// leakCheck snapshots the goroutine count; the returned func asserts
// it returned — the gateway's accept/worker/prober goroutines must
// not outlive Shutdown.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		for i := 0; i < 200; i++ {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// startShard runs one scan-service replica on a loopback port.
func startShard(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.Rules == nil {
		cfg.Rules = testRules
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, ln.Addr().String()
}

// startGateway runs a gateway over the given shard addresses.
func startGateway(t *testing.T, cfg gateway.Config) (*gateway.Gateway, string) {
	t.Helper()
	if cfg.Tenants == nil {
		cfg.Tenants = []gateway.Tenant{{Name: "t0"}, {Name: "t1"}, {Name: "t2"}}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- gw.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			t.Errorf("gateway Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("gateway Serve: %v", err)
		}
	})
	return gw, ln.Addr().String()
}

func sortMatches(ms []server.RuleMatch) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].Rule != ms[b].Rule {
			return ms[a].Rule < ms[b].Rule
		}
		if ms[a].Start != ms[b].Start {
			return ms[a].Start < ms[b].Start
		}
		return ms[a].End < ms[b].End
	})
}

func matchesEqual(a, b []server.RuleMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Routed scans through the gateway must be byte-identical to a direct
// scan on a shard, for every tenant and op.
func TestGatewayRoutesIdentically(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, s0 := startShard(t, server.Config{})
	_, s1 := startShard(t, server.Config{})
	_, s2 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{Backends: []string{s0, s1, s2}})

	payload := []byte("xx alpha42 yy beta-token zz deadbeef-dead")
	direct := client.New(s0)
	defer direct.Close()
	want, err := direct.Scan(payload)
	if err != nil {
		t.Fatalf("direct Scan: %v", err)
	}
	sortMatches(want)
	if len(want) == 0 {
		t.Fatal("test payload matches no rules")
	}

	for _, tenant := range []string{"t0", "t1", "t2"} {
		c := client.New(gaddr, client.WithTenant(tenant, "default"))
		got, err := c.Scan(payload)
		if err != nil {
			t.Fatalf("tenant %s Scan via gateway: %v", tenant, err)
		}
		sortMatches(got)
		if !matchesEqual(got, want) {
			t.Errorf("tenant %s: gateway scan %v != direct %v", tenant, got, want)
		}
		n, err := c.Count(payload)
		if err != nil {
			t.Fatalf("tenant %s Count via gateway: %v", tenant, err)
		}
		if int(n) != len(want) {
			t.Errorf("tenant %s: gateway count %d != %d", tenant, n, len(want))
		}
		if err := c.Ping(); err != nil {
			t.Errorf("tenant %s Ping via gateway: %v", tenant, err)
		}
		info, err := c.RulesInfo()
		if err != nil {
			t.Fatalf("tenant %s RulesInfo via gateway: %v", tenant, err)
		}
		if len(info.Patterns) != len(testRules) {
			t.Errorf("tenant %s: RulesInfo %d patterns, want %d", tenant, len(info.Patterns), len(testRules))
		}
		c.Close()
	}
}

// An unregistered tenant gets ERROR unknown-tenant, not a scan.
func TestGatewayUnknownTenant(t *testing.T) {
	_, s0 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{Backends: []string{s0}})

	c := client.New(gaddr, client.WithTenant("ghost", ""))
	defer c.Close()
	_, err := c.Scan([]byte("alpha1"))
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != server.ErrCodeUnknownTenant {
		t.Fatalf("Scan as unknown tenant: got %v, want ServerError code %d", err, server.ErrCodeUnknownTenant)
	}

	// A bare request with no DefaultTenant configured is rejected too.
	bare := client.New(gaddr)
	defer bare.Close()
	_, err = bare.Scan([]byte("alpha1"))
	if !errors.As(err, &se) || se.Code != server.ErrCodeUnknownTenant {
		t.Fatalf("bare Scan with no default tenant: got %v, want ServerError code %d", err, server.ErrCodeUnknownTenant)
	}
}

// DefaultTenant adopts bare queue-class requests, so pre-gateway
// clients keep working.
func TestGatewayDefaultTenant(t *testing.T) {
	_, s0 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{
		Backends:      []string{s0},
		DefaultTenant: "t0",
	})
	c := client.New(gaddr)
	defer c.Close()
	ms, err := c.Scan([]byte("alpha7"))
	if err != nil {
		t.Fatalf("bare Scan with default tenant: %v", err)
	}
	if len(ms) != 1 {
		t.Fatalf("bare Scan: %d matches, want 1", len(ms))
	}
}

// A tenant past its token bucket SHEDs with reason quota; the bucket
// refills and the tenant recovers.
func TestGatewayQuotaShed(t *testing.T) {
	_, s0 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{
		Backends: []string{s0},
		Tenants: []gateway.Tenant{
			{Name: "limited", RateRPS: 5, Burst: 2},
			{Name: "free"},
		},
	})
	c := client.New(gaddr, client.WithTenant("limited", ""))
	defer c.Close()
	for i := 0; i < 2; i++ {
		if _, err := c.Scan([]byte("alpha1")); err != nil {
			t.Fatalf("Scan %d within burst: %v", i, err)
		}
	}
	_, err := c.Scan([]byte("alpha1"))
	var shed *client.ShedError
	if !errors.As(err, &shed) || shed.Reason != server.ShedReasonQuota {
		t.Fatalf("Scan past quota: got %v, want SHED reason quota", err)
	}
	if !errors.Is(err, client.ErrShed) {
		t.Fatalf("reasoned SHED does not satisfy errors.Is(err, ErrShed): %v", err)
	}
	// The free tenant is unaffected.
	free := client.New(gaddr, client.WithTenant("free", ""))
	defer free.Close()
	if _, err := free.Scan([]byte("alpha1")); err != nil {
		t.Fatalf("free tenant Scan while limited tenant sheds: %v", err)
	}
	// ~400ms at 5 rps refills enough for one more.
	time.Sleep(400 * time.Millisecond)
	if _, err := c.Scan([]byte("alpha1")); err != nil {
		t.Fatalf("Scan after quota refill: %v", err)
	}
}

// A noisy tenant overflowing its fair-queue FIFO SHEDs with reason
// fair-queue while a quiet tenant's requests still complete.
func TestGatewayFairQueueShed(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	_, s0 := startShard(t, server.Config{
		Workers: 1,
		ScanHook: func() {
			// Park the first scan until released, wedging the single
			// worker so the gateway's queue backs up.
			select {
			case <-release:
			default:
				<-release
			}
		},
	})
	t.Cleanup(func() { once.Do(func() { close(release) }) })
	_, gaddr := startGateway(t, gateway.Config{
		Backends: []string{s0},
		Workers:  1,
		Tenants: []gateway.Tenant{
			{Name: "noisy", QueueDepth: 2},
			{Name: "quiet", QueueDepth: 8},
		},
		ShardTimeout: 10 * time.Second,
	})

	// Saturate: 1 in the gateway worker + 2 in noisy's FIFO; the rest
	// must shed with reason fair-queue.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fairqSheds, oks int
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(gaddr, client.WithTenant("noisy", ""))
			defer c.Close()
			_, err := c.Scan([]byte("alpha1"))
			mu.Lock()
			defer mu.Unlock()
			var shed *client.ShedError
			switch {
			case err == nil:
				oks++
			case errors.As(err, &shed) && shed.Reason == server.ShedReasonFairQ:
				fairqSheds++
			default:
				t.Errorf("noisy Scan: unexpected outcome %v", err)
			}
		}()
	}
	// Give the noisy requests time to stack up, then release the shard.
	time.Sleep(300 * time.Millisecond)
	once.Do(func() { close(release) })
	wg.Wait()
	if fairqSheds == 0 {
		t.Errorf("no fair-queue sheds despite FIFO depth 2 and 8 concurrent requests (ok=%d)", oks)
	}
	if oks == 0 {
		t.Error("every noisy request shed; expected the FIFO's worth to complete")
	}
}

// Scatter-gather: with the whole fleet up SCAN-PATTERN answers plain
// MATCHES identical to a direct scan; with one shard dark it answers
// MATCHES-PARTIAL carrying the same matches and explicit accounting.
func TestGatewayScatterGather(t *testing.T) {
	_, s0 := startShard(t, server.Config{})
	_, s1 := startShard(t, server.Config{})
	dead, s2 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{
		Backends:     []string{s0, s1, s2},
		ShardTimeout: time.Second,
	})

	payload := []byte("one alpha1 two alpha22 three")
	direct := client.New(s0)
	defer direct.Close()
	want, err := direct.ScanPattern(`alpha[0-9]+`, payload)
	if err != nil {
		t.Fatalf("direct ScanPattern: %v", err)
	}
	sortMatches(want)

	c := client.New(gaddr, client.WithTenant("t0", "ns"))
	defer c.Close()
	got, err := c.ScanPattern(`alpha[0-9]+`, payload)
	if err != nil {
		t.Fatalf("gateway ScanPattern, fleet up: %v", err)
	}
	sortMatches(got)
	if !matchesEqual(got, want) {
		t.Fatalf("fleet-up scatter-gather %v != direct %v", got, want)
	}

	// Kill shard 2: the fan-out must report partial, not silently
	// shrink.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	dead.Shutdown(ctx)
	cancel()

	_, err = c.ScanPattern(`alpha[0-9]+`, payload)
	var pe *client.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("gateway ScanPattern with dead shard: got %v, want PartialError", err)
	}
	if pe.ShardsOK != 2 || pe.ShardsFailed != 1 {
		t.Errorf("partial accounting %d ok / %d failed, want 2/1", pe.ShardsOK, pe.ShardsFailed)
	}
	sortMatches(pe.Matches)
	if !matchesEqual(pe.Matches, want) {
		t.Errorf("partial matches %v != direct %v (replicas: partial coverage must still agree)", pe.Matches, want)
	}

	// A bad pattern is an authoritative compile error, not a partial.
	_, err = c.ScanPattern(`((`, payload)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != server.ErrCodeCompile {
		t.Fatalf("bad pattern via gateway: got %v, want compile error", err)
	}
}

// A valid pattern that matches nothing must answer plain MATCHES with
// zero matches from a healthy fleet — an empty reply is coverage, not
// a failed leg, so it must never degrade to SHED or partial.
func TestGatewayScatterGatherNoMatches(t *testing.T) {
	_, s0 := startShard(t, server.Config{})
	_, s1 := startShard(t, server.Config{})
	dead, s2 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{
		Backends:     []string{s0, s1, s2},
		ShardTimeout: time.Second,
	})

	c := client.New(gaddr, client.WithTenant("t0", "ns"))
	defer c.Close()
	payload := []byte("nothing here matches")
	got, err := c.ScanPattern(`zzz-never-present`, payload)
	if err != nil {
		t.Fatalf("gateway ScanPattern with zero matches: %v (want empty MATCHES)", err)
	}
	if len(got) != 0 {
		t.Fatalf("zero-match pattern returned %d matches: %v", len(got), got)
	}

	// With one shard dark the same pattern is partial with explicit
	// accounting — still not a SHED.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	dead.Shutdown(ctx)
	cancel()
	_, err = c.ScanPattern(`zzz-never-present`, payload)
	var pe *client.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("zero-match with dead shard: got %v, want PartialError", err)
	}
	if pe.ShardsOK != 2 || pe.ShardsFailed != 1 {
		t.Errorf("partial accounting %d ok / %d failed, want 2/1", pe.ShardsOK, pe.ShardsFailed)
	}
	if len(pe.Matches) != 0 {
		t.Errorf("zero-match partial carried %d matches", len(pe.Matches))
	}
}

// RELOAD fans out to every replica; a fleet with a dead shard reports
// divergence instead of claiming success.
func TestGatewayReloadFanout(t *testing.T) {
	sv0, s0 := startShard(t, server.Config{})
	sv1, s1 := startShard(t, server.Config{})
	dead, s2 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{
		Backends:     []string{s0, s1, s2},
		ShardTimeout: time.Second,
	})
	c := client.New(gaddr, client.WithTenant("t0", ""))
	defer c.Close()

	gen, rules, err := c.Reload("gamma[0-9]+\nalpha[0-9]+\n")
	if err != nil {
		t.Fatalf("Reload via gateway: %v", err)
	}
	if gen != 1 || rules != 2 {
		t.Errorf("Reload: gen %d rules %d, want 1/2", gen, rules)
	}
	for i, sv := range []*server.Server{sv0, sv1, dead} {
		if got := sv.Info().Generation; got != 1 {
			t.Errorf("shard %d at generation %d after fleet reload, want 1", i, got)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	dead.Shutdown(ctx)
	cancel()
	_, _, err = c.Reload("delta\n")
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "diverged") {
		t.Fatalf("Reload with dead shard: got %v, want fleet-diverged error", err)
	}
}

// STATS aggregates: fleet.shards.reachable, per-tenant counters and
// per-shard breaker gauges all appear in one schema-v1 snapshot.
func TestGatewayStatsAggregation(t *testing.T) {
	_, s0 := startShard(t, server.Config{})
	_, s1 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{Backends: []string{s0, s1}})

	c := client.New(gaddr, client.WithTenant("t1", ""))
	defer c.Close()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := c.Scan([]byte(fmt.Sprintf("alpha%d", i))); err != nil {
			t.Fatalf("Scan %d: %v", i, err)
		}
	}
	snap, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats via gateway: %v", err)
	}
	if got := snap.Get("fleet.shards.reachable"); got != 2 {
		t.Errorf("fleet.shards.reachable = %d, want 2", got)
	}
	if got := snap.Get("gateway.tenant.t1.requests"); got < n {
		t.Errorf("gateway.tenant.t1.requests = %d, want >= %d", got, n)
	}
	if got := snap.Get("fleet.server.scan.requests"); got < n {
		t.Errorf("fleet.server.scan.requests = %d, want >= %d", got, n)
	}
	if _, ok := snap.Find("gateway.backend.0.breaker_state"); !ok {
		t.Error("snapshot missing gateway.backend.0.breaker_state gauge")
	}
	if _, ok := snap.Find("gateway.tenant.t1.queue.depth"); !ok {
		t.Error("snapshot missing gateway.tenant.t1.queue.depth gauge")
	}
}

// An oversized tenant name is a malformed envelope: the gateway
// answers ERROR bad-frame rather than routing or hanging.
func TestGatewayOversizedTenantHeader(t *testing.T) {
	_, s0 := startShard(t, server.Config{})
	_, gaddr := startGateway(t, gateway.Config{Backends: []string{s0}})

	nc, err := net.Dial("tcp", gaddr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// Hand-build a TENANT body with a 65-byte tenant name, which
	// EncodeTenant would refuse.
	name := strings.Repeat("x", server.MaxTenantName+1)
	body := append([]byte{byte(len(name))}, name...)
	body = append(body, 0)             // empty namespace
	body = append(body, server.OpScan) // inner op
	body = append(body, []byte("alpha1")...)
	if err := server.WriteFrame(nc, server.Frame{Op: server.OpTenant, ID: 9, Body: body}); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := server.ReadFrame(nc, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if f.Op != server.OpError || f.ID != 9 {
		t.Fatalf("got op 0x%02X id %d, want ERROR id 9", f.Op, f.ID)
	}
	code, _, err := server.DecodeError(f.Body)
	if err != nil || code != server.ErrCodeBadFrame {
		t.Fatalf("error body code %d (%v), want bad-frame", code, err)
	}
}

// Graceful drain answers every admitted request before the gateway
// exits; nothing leaks.
func TestGatewayDrainCompletes(t *testing.T) {
	t.Cleanup(leakCheck(t))
	_, s0 := startShard(t, server.Config{})
	gw, gaddr := startGateway(t, gateway.Config{Backends: []string{s0}})

	var wg sync.WaitGroup
	var mu sync.Mutex
	var completed, refused int
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(gaddr, client.WithTenant("t0", ""))
			defer c.Close()
			_, err := c.Scan([]byte("alpha1"))
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				completed++
			} else {
				refused++ // drain raced the request; a clean refusal is fine
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if completed == 0 {
		t.Errorf("no request completed before drain (refused=%d)", refused)
	}
	// Shutdown again is idempotent.
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
