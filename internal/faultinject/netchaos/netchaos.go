// Package netchaos extends the faultinject philosophy — deterministic,
// seeded, composable failure injection — from io.Readers to the wire.
// A Proxy sits between a scan-service client and its backend as a TCP
// man-in-the-middle and applies a scripted Scenario to each accepted
// connection: added latency with seeded jitter, bandwidth caps,
// connection resets at configurable byte offsets, frame truncation
// (clean close mid-stream), single-byte corruption, blackholes (the
// connection accepts but nothing ever comes back) and outright
// connection refusal. Scenarios are assigned by accept order from a
// fixed table, and every random decision derives from (seed, accept
// index), so a failing chaos run replays from its printed seed.
//
// The proxy also models whole-backend failure: SetDown(true) refuses
// new connections and severs the live ones, SetDown(false) revives
// the backend — which is how the circuit-breaker recovery tests kill
// and resurrect a backend without restarting a server.
package netchaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Scenario scripts one connection's misbehaviour. The zero value
// forwards faithfully. Byte offsets count the server→client response
// stream, where a scan client actually hurts: a reset mid-response
// frame models a backend dying with an answer half-delivered.
type Scenario struct {
	// Name labels the scenario in String() and parse round-trips.
	Name string

	// Refuse closes the client connection immediately on accept,
	// modelling a dead listener behind a live address.
	Refuse bool

	// Blackhole accepts and swallows the client's bytes but never
	// forwards or answers, modelling a hung backend. Only a client
	// deadline gets out of it.
	Blackhole bool

	// Latency delays each forwarded response chunk; Jitter adds a
	// seeded uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// BandwidthBPS caps the response stream's throughput in bytes per
	// second (0 = unlimited).
	BandwidthBPS int

	// ResetAfter tears the connection down with a TCP RST after that
	// many response bytes (0 = never). The bytes before the reset are
	// delivered intact.
	ResetAfter int64

	// TruncateAfter closes the connection cleanly after that many
	// response bytes (0 = never) — the client sees a torn frame
	// (io.ErrUnexpectedEOF), not an error code.
	TruncateAfter int64

	// CorruptAt XOR-flips the response byte at this stream offset
	// (-1 = never; note 0 is a valid offset — the first byte of the
	// first frame's length field).
	CorruptAt int64
}

// NewScenario returns a Scenario that forwards faithfully and never
// corrupts (CorruptAt -1).
func NewScenario(name string) Scenario {
	return Scenario{Name: name, CorruptAt: -1}
}

// String renders the scenario in the ParseScenarios syntax.
func (s Scenario) String() string {
	var parts []string
	if s.Refuse {
		parts = append(parts, "refuse")
	}
	if s.Blackhole {
		parts = append(parts, "blackhole")
	}
	if s.Latency > 0 {
		parts = append(parts, "latency="+s.Latency.String())
	}
	if s.Jitter > 0 {
		parts = append(parts, "jitter="+s.Jitter.String())
	}
	if s.BandwidthBPS > 0 {
		parts = append(parts, "bw="+strconv.Itoa(s.BandwidthBPS))
	}
	if s.ResetAfter > 0 {
		parts = append(parts, "reset="+strconv.FormatInt(s.ResetAfter, 10))
	}
	if s.TruncateAfter > 0 {
		parts = append(parts, "trunc="+strconv.FormatInt(s.TruncateAfter, 10))
	}
	if s.CorruptAt >= 0 {
		parts = append(parts, "corrupt="+strconv.FormatInt(s.CorruptAt, 10))
	}
	if len(parts) == 0 {
		parts = []string{"clean"}
	}
	return strings.Join(parts, ",")
}

// ParseScenarios parses a scenario table from its flag spelling:
// scenarios separated by ';', fields by ',', each field one of
//
//	clean | refuse | blackhole | latency=DUR | jitter=DUR | bw=BPS |
//	reset=BYTES | trunc=BYTES | corrupt=OFFSET
//
// e.g. "latency=2ms,jitter=1ms;reset=4096;clean;blackhole". The
// proxy assigns table entries to connections round-robin by accept
// order.
func ParseScenarios(spec string) ([]Scenario, error) {
	var out []Scenario
	for _, chunk := range strings.Split(spec, ";") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		sc := NewScenario(chunk)
		for _, field := range strings.Split(chunk, ",") {
			field = strings.TrimSpace(field)
			key, val, hasVal := strings.Cut(field, "=")
			switch key {
			case "clean":
				// explicit no-op entry
			case "refuse":
				sc.Refuse = true
			case "blackhole":
				sc.Blackhole = true
			case "latency", "jitter":
				d, err := time.ParseDuration(val)
				if err != nil || !hasVal {
					return nil, fmt.Errorf("netchaos: bad %s %q", key, val)
				}
				if key == "latency" {
					sc.Latency = d
				} else {
					sc.Jitter = d
				}
			case "bw", "reset", "trunc", "corrupt":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || !hasVal || n < 0 {
					return nil, fmt.Errorf("netchaos: bad %s %q", key, val)
				}
				switch key {
				case "bw":
					sc.BandwidthBPS = int(n)
				case "reset":
					sc.ResetAfter = n
				case "trunc":
					sc.TruncateAfter = n
				case "corrupt":
					sc.CorruptAt = n
				}
			default:
				return nil, fmt.Errorf("netchaos: unknown scenario field %q", field)
			}
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, errors.New("netchaos: empty scenario spec")
	}
	return out, nil
}

// Proxy is one chaos man-in-the-middle in front of one backend.
type Proxy struct {
	backend   string
	seed      int64
	scenarios []Scenario

	ln       net.Listener
	accepted atomic.Int64

	mu    sync.Mutex
	down  bool
	conns map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
}

// New starts a chaos proxy on an ephemeral loopback port in front of
// backend. Connection i (accept order, 0-based) runs
// scenarios[i % len(scenarios)] with randomness derived from
// (seed, i); an empty table forwards everything faithfully.
func New(backend string, seed int64, scenarios []Scenario) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if len(scenarios) == 0 {
		scenarios = []Scenario{NewScenario("clean")}
	}
	p := &Proxy{
		backend:   backend,
		seed:      seed,
		scenarios: scenarios,
		ln:        ln,
		conns:     map[net.Conn]struct{}{},
		closed:    make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — point the client here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Seed returns the seed, for failure reports ("replay with -seed N").
func (p *Proxy) Seed() int64 { return p.seed }

// Accepted returns how many connections the proxy has accepted.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// SetDown marks the backend dead (refuse new connections, sever live
// ones) or revives it.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	var sever []net.Conn
	if down {
		for c := range p.conns {
			sever = append(sever, c)
		}
	}
	p.mu.Unlock()
	for _, c := range sever {
		abortConn(c)
	}
}

// Close stops the proxy and severs every connection.
func (p *Proxy) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	err := p.ln.Close()
	p.mu.Lock()
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// track registers c for teardown; false if the proxy is closing.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.closed:
		return false
	default:
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// connRand derives the per-connection RNG. SplitMix-style mixing
// keeps neighbouring accept indices uncorrelated.
func connRand(seed, idx int64) *rand.Rand {
	z := uint64(seed) + uint64(idx)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.accepted.Add(1) - 1
		sc := p.scenarios[idx%int64(len(p.scenarios))]
		if p.isDown() || sc.Refuse {
			abortConn(c)
			continue
		}
		p.wg.Add(1)
		go p.handle(c, sc, connRand(p.seed, idx))
	}
}

// abortConn closes with a pending RST (SO_LINGER 0) so the peer sees
// a hard reset, not a graceful FIN — the difference between "backend
// died" and "backend finished".
func abortConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// handle proxies one connection under its scenario.
func (p *Proxy) handle(cc net.Conn, sc Scenario, rng *rand.Rand) {
	defer p.wg.Done()
	if !p.track(cc) {
		cc.Close()
		return
	}
	defer func() { p.untrack(cc); cc.Close() }()

	if sc.Blackhole {
		// Swallow the request stream; answer nothing. The client's
		// deadline is the only way out.
		io.Copy(io.Discard, cc)
		return
	}

	bc, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		abortConn(cc)
		return
	}
	if !p.track(bc) {
		bc.Close()
		return
	}
	defer func() { p.untrack(bc); bc.Close() }()

	done := make(chan struct{}, 2)
	// Request direction: forward faithfully.
	go func() {
		io.Copy(bc, cc)
		if tc, ok := bc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// Response direction: apply the scenario's shaping.
	go func() {
		p.shapedCopy(cc, bc, sc, rng)
		done <- struct{}{}
	}()
	<-done
	<-done
}

// shapedCopy forwards src→dst applying latency, jitter, bandwidth
// caps, corruption, truncation and resets at their configured
// response-stream offsets.
func (p *Proxy) shapedCopy(dst, src net.Conn, sc Scenario, rng *rand.Rand) {
	buf := make([]byte, 2048)
	var written int64
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			b := buf[:n]
			// Clip the chunk at the first configured boundary so the
			// byte count delivered before the fault is exact.
			action := byte(0)
			if sc.ResetAfter > 0 && written+int64(len(b)) >= sc.ResetAfter {
				b = b[:sc.ResetAfter-written]
				action = 'r'
			}
			if sc.TruncateAfter > 0 && written+int64(len(b)) >= sc.TruncateAfter {
				b = b[:sc.TruncateAfter-written]
				action = 't'
			}
			if sc.CorruptAt >= written && sc.CorruptAt < written+int64(len(b)) {
				b[sc.CorruptAt-written] ^= 0xFF
			}
			if sc.Latency > 0 || sc.Jitter > 0 {
				d := sc.Latency
				if sc.Jitter > 0 {
					d += time.Duration(rng.Int63n(int64(sc.Jitter)))
				}
				if !p.sleep(d) {
					return
				}
			}
			if sc.BandwidthBPS > 0 && len(b) > 0 {
				d := time.Duration(int64(len(b)) * int64(time.Second) / int64(sc.BandwidthBPS))
				if !p.sleep(d) {
					return
				}
			}
			if len(b) > 0 {
				if _, werr := dst.Write(b); werr != nil {
					return
				}
				written += int64(len(b))
			}
			switch action {
			case 'r':
				abortConn(dst)
				abortConn(src)
				return
			case 't':
				dst.Close()
				src.Close()
				return
			}
		}
		if rerr != nil {
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// sleep waits d unless the proxy closes first; false means closing.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.closed:
		return false
	}
}

// Fleet is a convenience for chaos tests: one proxy per backend
// address, all sharing a seed (offset per proxy index so their
// schedules differ deterministically).
type Fleet struct {
	Proxies []*Proxy
}

// NewFleet builds one proxy per backend with per-proxy derived seeds.
func NewFleet(backends []string, seed int64, scenarios []Scenario) (*Fleet, error) {
	f := &Fleet{}
	for i, b := range backends {
		pr, err := New(b, seed+int64(i)*7919, scenarios)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Proxies = append(f.Proxies, pr)
	}
	return f, nil
}

// Addrs returns the proxy addresses, in backend order.
func (f *Fleet) Addrs() []string {
	out := make([]string, len(f.Proxies))
	for i, pr := range f.Proxies {
		out[i] = pr.Addr()
	}
	return out
}

// Close closes every proxy.
func (f *Fleet) Close() error {
	var errs []error
	for _, pr := range f.Proxies {
		if pr != nil {
			errs = append(errs, pr.Close())
		}
	}
	return errors.Join(errs...)
}
