package netchaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// writerBackend writes data to every accepted connection and closes
// cleanly; any rougher ending the client observes was injected by the
// proxy.
func writerBackend(t *testing.T, data []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(data)
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// echoBackend copies every byte back to the sender.
func echoBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(5 * time.Second))
	t.Cleanup(func() { c.Close() })
	return c
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestForwardsFaithfully(t *testing.T) {
	p, err := New(echoBackend(t), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	msg := []byte("through the looking glass")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
}

// TestResetDeliversExactPrefix: a reset=N scenario delivers exactly N
// response bytes intact, then a hard error — never N-1, never N+1.
func TestResetDeliversExactPrefix(t *testing.T) {
	data := pattern(64)
	sc := NewScenario("reset")
	sc.ResetAfter = 10
	p, err := New(writerBackend(t, data), 2, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	got, rerr := io.ReadAll(c)
	if rerr == nil {
		t.Fatal("reset connection ended with clean EOF, want a read error")
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d bytes before the reset, want exactly 10", len(got))
	}
	if !bytes.Equal(got, data[:10]) {
		t.Fatal("bytes before the reset were not delivered intact")
	}
}

// TestTruncateEndsWithCleanEOF: trunc=N delivers exactly N bytes and
// then a clean close — a torn frame, not an error code.
func TestTruncateEndsWithCleanEOF(t *testing.T) {
	data := pattern(64)
	sc := NewScenario("trunc")
	sc.TruncateAfter = 7
	p, err := New(writerBackend(t, data), 3, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	got, rerr := io.ReadAll(c)
	if rerr != nil {
		t.Fatalf("truncation must end in clean EOF, got %v", rerr)
	}
	if !bytes.Equal(got, data[:7]) {
		t.Fatalf("delivered %d bytes %v, want the exact 7-byte prefix", len(got), got)
	}
}

// TestCorruptFlipsExactlyOneByte: corrupt=N XOR-flips the response
// byte at offset N and nothing else.
func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	data := pattern(64)
	sc := NewScenario("corrupt")
	sc.CorruptAt = 5
	p, err := New(writerBackend(t, data), 4, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	got := make([]byte, len(data))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		want := data[i]
		if i == 5 {
			want ^= 0xFF
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

// TestBlackholeSwallowsForever: the connection accepts and the request
// is consumed, but nothing ever comes back; only the client's own
// deadline escapes.
func TestBlackholeSwallowsForever(t *testing.T) {
	sc := NewScenario("blackhole")
	sc.Blackhole = true
	p, err := New(echoBackend(t), 5, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if _, err := c.Write([]byte("anyone home?")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	_, rerr := c.Read(make([]byte, 1))
	ne, ok := rerr.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("blackhole read ended with %v, want a deadline timeout", rerr)
	}
}

// TestRefuseAbortsOnAccept: refuse aborts the connection on accept —
// depending on timing the client sees the reset at dial, at write, or
// at read, but it never gets a byte back.
func TestRefuseAbortsOnAccept(t *testing.T) {
	sc := NewScenario("refuse")
	sc.Refuse = true
	p, err := New(echoBackend(t), 6, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, derr := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if derr != nil {
		return // reset during the handshake: refusal observed
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	c.Write([]byte("hello?"))
	got, rerr := io.ReadAll(c)
	if len(got) != 0 {
		t.Fatalf("refused connection delivered %d bytes", len(got))
	}
	_ = rerr // EOF or ECONNRESET, both fine: nothing was answered
}

// TestSetDownSeversAndRevives models whole-backend death and
// resurrection: live connections are severed, new ones refused, and
// after revival traffic flows again.
func TestSetDownSeversAndRevives(t *testing.T) {
	p, err := New(echoBackend(t), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c1 := dialProxy(t, p)
	if _, err := c1.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c1, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}

	p.SetDown(true)
	if _, rerr := io.ReadAll(c1); rerr == nil {
		t.Fatal("live connection survived SetDown(true)")
	}
	// A new connection is aborted on accept; the reset may be consumed
	// by the write, so the invariant is that no byte ever comes back.
	c2 := dialProxy(t, p)
	c2.Write([]byte("hi"))
	if got, _ := io.ReadAll(c2); len(got) != 0 {
		t.Fatalf("downed backend delivered %d bytes", len(got))
	}

	p.SetDown(false)
	c3 := dialProxy(t, p)
	if _, err := c3.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c3, buf); err != nil {
		t.Fatalf("revived backend did not answer: %v", err)
	}
}

// TestScenarioTableRoundRobin: table entries are assigned by accept
// order, cycling.
func TestScenarioTableRoundRobin(t *testing.T) {
	data := pattern(8)
	reset := NewScenario("reset")
	reset.ResetAfter = 4
	p, err := New(writerBackend(t, data), 8, []Scenario{reset, NewScenario("clean")})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 4; i++ {
		c := dialProxy(t, p)
		got, rerr := io.ReadAll(c)
		if i%2 == 0 {
			if rerr == nil || len(got) != 4 {
				t.Fatalf("conn %d: %d bytes, err %v; want 4 bytes then reset", i, len(got), rerr)
			}
		} else {
			if rerr != nil || len(got) != 8 {
				t.Fatalf("conn %d: %d bytes, err %v; want clean 8 bytes", i, len(got), rerr)
			}
		}
		c.Close()
	}
	if got := p.Accepted(); got != 4 {
		t.Fatalf("accepted = %d, want 4", got)
	}
}

func TestLatencyDelaysResponse(t *testing.T) {
	sc := NewScenario("latency")
	sc.Latency = 50 * time.Millisecond
	p, err := New(echoBackend(t), 9, []Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	start := time.Now()
	c.Write([]byte("x"))
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~50ms of injected latency", d)
	}
}

func TestParseScenarios(t *testing.T) {
	scs, err := ParseScenarios("latency=2ms,jitter=1ms;reset=4096;clean;blackhole;trunc=7,corrupt=0,bw=1024;refuse")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 6 {
		t.Fatalf("parsed %d scenarios, want 6", len(scs))
	}
	if scs[0].Latency != 2*time.Millisecond || scs[0].Jitter != time.Millisecond {
		t.Fatalf("scenario 0 = %+v", scs[0])
	}
	if scs[1].ResetAfter != 4096 {
		t.Fatalf("scenario 1 = %+v", scs[1])
	}
	if scs[2].String() != "clean" {
		t.Fatalf("scenario 2 renders %q", scs[2].String())
	}
	if !scs[3].Blackhole {
		t.Fatalf("scenario 3 = %+v", scs[3])
	}
	if scs[4].TruncateAfter != 7 || scs[4].CorruptAt != 0 || scs[4].BandwidthBPS != 1024 {
		t.Fatalf("scenario 4 = %+v", scs[4])
	}
	if !scs[5].Refuse {
		t.Fatalf("scenario 5 = %+v", scs[5])
	}

	// Every parsed scenario re-parses from its own rendering.
	for _, sc := range scs {
		again, err := ParseScenarios(sc.String())
		if err != nil {
			t.Fatalf("%q did not round-trip: %v", sc.String(), err)
		}
		if len(again) != 1 || again[0].String() != sc.String() {
			t.Fatalf("%q round-tripped to %q", sc.String(), again[0].String())
		}
	}

	for _, bad := range []string{"", "latency=pancake", "bogus", "reset=-1", "corrupt="} {
		if _, err := ParseScenarios(bad); err == nil {
			t.Errorf("ParseScenarios(%q) accepted, want error", bad)
		}
	}
}

// TestConnRandDeterministic: the per-connection RNG is a pure function
// of (seed, accept index) — same inputs, same stream; different
// indices, different streams.
func TestConnRandDeterministic(t *testing.T) {
	draw := func(seed, idx int64) [8]int64 {
		r := connRand(seed, idx)
		var out [8]int64
		for i := range out {
			out[i] = r.Int63()
		}
		return out
	}
	if draw(42, 3) != draw(42, 3) {
		t.Fatal("same (seed, idx) produced different streams")
	}
	if draw(42, 3) == draw(42, 4) {
		t.Fatal("neighbouring accept indices produced identical streams")
	}
	if draw(42, 3) == draw(43, 3) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	p, err := New(echoBackend(t), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := dialProxy(t, p)
	c.Write([]byte("x"))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
