// Package faultinject is the guardrail layer's test harness: reader
// wrappers that inject the stream failure modes a deployed scanner
// meets (short reads, torn reads, hard I/O errors at a chosen byte,
// slow producers) and hooks into the simulated microarchitecture that
// force a runaway at a chosen cycle. The fault matrix in the repo root
// drives every public scan path through every one of these faults and
// asserts the error taxonomy, partial-result and goroutine-hygiene
// contracts.
//
// The wrappers are deliberately allocation-light and deterministic so
// they compose with fuzzing: the same (input, fault position) pair
// always fails at the same absolute offset.
package faultinject

import (
	"errors"
	"io"
	"time"

	"alveare/internal/arch"
)

// ErrInjected is the default fault surfaced by ErrAt when the caller
// does not supply one. Tests assert errors.Is against it.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrAt returns a reader that delivers the first k bytes of r intact
// and fails with err on the read that would cross byte k (err defaults
// to ErrInjected). If r ends before byte k the underlying io.EOF
// propagates — the fault never fires.
func ErrAt(r io.Reader, k int64, err error) io.Reader {
	if err == nil {
		err = ErrInjected
	}
	return &errAtReader{r: r, remain: k, err: err}
}

type errAtReader struct {
	r      io.Reader
	remain int64
	err    error
}

func (e *errAtReader) Read(p []byte) (int, error) {
	if e.remain <= 0 {
		return 0, e.err
	}
	if int64(len(p)) > e.remain {
		p = p[:e.remain]
	}
	n, err := e.r.Read(p)
	e.remain -= int64(n)
	if err == nil && e.remain <= 0 {
		// Deliver the boundary bytes cleanly; the next call faults.
		return n, nil
	}
	return n, err
}

// Short returns a reader that never delivers more than max bytes per
// Read call, exercising every io.ReadFull retry path in the scanners.
func Short(r io.Reader, max int) io.Reader {
	if max < 1 {
		max = 1
	}
	return &shortReader{r: r, max: max}
}

type shortReader struct {
	r   io.Reader
	max int
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) > s.max {
		p = p[:s.max]
	}
	return s.r.Read(p)
}

// Torn returns a reader that delivers exactly one byte per Read — the
// worst-case short read, tearing every multi-byte token across calls.
func Torn(r io.Reader) io.Reader { return Short(r, 1) }

// Slow returns a reader that sleeps d before every Read, modelling a
// slow producer so deadline and cancellation paths engage mid-stream.
func Slow(r io.Reader, d time.Duration) io.Reader {
	return &slowReader{r: r, d: d}
}

type slowReader struct {
	r io.Reader
	d time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	time.Sleep(s.d)
	return s.r.Read(p)
}

// RunawayConfig returns cfg with the microarchitecture's fault hook
// armed: execution trips arch.ErrRunaway once the core has accumulated
// k simulated cycles, regardless of the real cycle budget. Engines
// built from the returned config fault deterministically, which is how
// the matrix drives the runaway-containment policies without crafting
// adversarial patterns.
func RunawayConfig(cfg arch.Config, k int64) arch.Config {
	cfg.ForceRunawayAt = k
	return cfg
}

// InjectRunaway arms the same fault hook on an already-built core.
func InjectRunaway(c *arch.Core, k int64) { c.InjectRunawayAt(k) }
