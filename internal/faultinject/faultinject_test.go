package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestErrAtDeliversPrefixThenFails(t *testing.T) {
	src := strings.Repeat("abc", 100)
	r := ErrAt(strings.NewReader(src), 100, nil)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != src[:100] {
		t.Fatalf("delivered %d bytes %q, want the first 100", len(got), got)
	}
}

func TestErrAtCustomError(t *testing.T) {
	boom := errors.New("boom")
	r := ErrAt(strings.NewReader("xyz"), 1, boom)
	got, err := io.ReadAll(r)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if string(got) != "x" {
		t.Fatalf("delivered %q, want \"x\"", got)
	}
}

func TestErrAtPastEOFNeverFires(t *testing.T) {
	r := ErrAt(strings.NewReader("short"), 1000, nil)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("err = %v, want nil (EOF before fault)", err)
	}
	if string(got) != "short" {
		t.Fatalf("delivered %q", got)
	}
}

func TestShortBoundsEveryRead(t *testing.T) {
	r := Short(bytes.NewReader(make([]byte, 64)), 7)
	buf := make([]byte, 32)
	for {
		n, err := r.Read(buf)
		if n > 7 {
			t.Fatalf("read delivered %d bytes, max 7", n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTornDeliversOneByte(t *testing.T) {
	r := Torn(strings.NewReader("hello"))
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if err != nil || n != 1 {
		t.Fatalf("Read = (%d, %v), want (1, nil)", n, err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(buf[:1])+string(got) != "hello" {
		t.Fatalf("reassembled %q (err %v)", string(buf[:1])+string(got), err)
	}
}

func TestSlowPassesDataThrough(t *testing.T) {
	r := Slow(strings.NewReader("data"), time.Millisecond)
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadAll = (%q, %v)", got, err)
	}
}
