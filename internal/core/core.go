// Package core assembles the paper's primary contribution into one
// engine: the RE-tailored ISA (internal/isa), the three-stage
// compilation flow (internal/syntax, internal/ir, internal/backend) and
// the speculative microarchitecture (internal/arch), with the optional
// multi-core scale-out (internal/multicore).
//
// The root package alveare re-exports this API for library users; the
// internal packages remain importable by the benchmark harness and the
// command-line tools.
package core

import (
	"fmt"

	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/isa"
	"alveare/internal/multicore"
)

// Program is a compiled, loadable ALVEARE executable.
type Program = isa.Program

// Match is one pattern occurrence, [Start, End) in the data stream.
type Match = arch.Match

// Stats are the microarchitecture performance counters.
type Stats = arch.Stats

// Compile runs the full compilation flow (front-end, middle-end,
// back-end) with all advanced primitives enabled.
func Compile(re string) (*Program, error) {
	return backend.Compile(re, backend.Options{})
}

// CompileWith runs the compilation flow with explicit compiler options
// (minimal mode, ablation switches).
func CompileWith(re string, opt backend.Options) (*Program, error) {
	return backend.Compile(re, opt)
}

// Option configures an Engine.
type Option func(*settings)

type settings struct {
	cores   int
	overlap int
	cfg     arch.Config
}

// WithCores selects the scale-out width (default 1, the single core).
func WithCores(n int) Option {
	return func(s *settings) { s.cores = n }
}

// WithArchConfig overrides the microarchitecture parameters (compute
// units, data-memory window, speculation-stack depth, cycle budget).
func WithArchConfig(cfg arch.Config) Option {
	return func(s *settings) { s.cfg = cfg }
}

// WithOverlap sets the multi-core chunk-boundary overlap in bytes.
func WithOverlap(n int) Option {
	return func(s *settings) { s.overlap = n }
}

// WithPrefilter enables the compiler's necessary-factor hint: when the
// program opens with a complex operator, candidate start offsets are
// narrowed to the neighbourhoods of a required literal's occurrences.
// Results are unchanged; only cycles drop.
func WithPrefilter() Option {
	return func(s *settings) { s.cfg.EnablePrefilter = true }
}

// Engine executes one compiled RE over data streams, on a single core
// or on the scale-out configuration.
type Engine struct {
	prog   *Program
	single *arch.Core
	multi  *multicore.Engine
}

// NewEngine loads a compiled program.
func NewEngine(p *Program, opts ...Option) (*Engine, error) {
	s := settings{cores: 1, cfg: arch.DefaultConfig()}
	for _, o := range opts {
		o(&s)
	}
	if s.cores < 1 {
		return nil, fmt.Errorf("core: %d cores", s.cores)
	}
	e := &Engine{prog: p}
	single, err := arch.NewCore(p, s.cfg)
	if err != nil {
		return nil, err
	}
	e.single = single
	if s.cores > 1 {
		multi, err := multicore.New(p, s.cores, s.cfg, s.overlap)
		if err != nil {
			return nil, err
		}
		e.multi = multi
	}
	return e, nil
}

// Program returns the loaded executable.
func (e *Engine) Program() *Program { return e.prog }

// Cores returns the scale-out width.
func (e *Engine) Cores() int {
	if e.multi != nil {
		return e.multi.Cores()
	}
	return 1
}

// Find returns the leftmost match.
func (e *Engine) Find(data []byte) (Match, bool, error) {
	return e.single.Find(data)
}

// Match reports whether the pattern occurs in data.
func (e *Engine) Match(data []byte) (bool, error) {
	_, ok, err := e.single.Find(data)
	return ok, err
}

// FindAll returns all non-overlapping matches. On a multi-core engine
// the stream is divided among the cores.
func (e *Engine) FindAll(data []byte) ([]Match, error) {
	if e.multi != nil {
		res, err := e.multi.Run(data)
		return res.Matches, err
	}
	return e.single.FindAll(data, 0)
}

// Count returns the number of non-overlapping matches.
func (e *Engine) Count(data []byte) (int, error) {
	ms, err := e.FindAll(data)
	return len(ms), err
}

// Run executes a full multi-core pass and returns the detailed result
// (wall cycles, per-core counters). On a single-core engine it wraps
// the core's counters in the same shape.
func (e *Engine) Run(data []byte) (multicore.Result, error) {
	if e.multi != nil {
		return e.multi.Run(data)
	}
	e.single.ResetStats()
	ms, err := e.single.FindAll(data, 0)
	if err != nil {
		return multicore.Result{}, err
	}
	st := e.single.Stats()
	return multicore.Result{
		Matches:     ms,
		WallCycles:  st.Cycles,
		TotalCycles: st.Cycles,
		PerCore:     []arch.Stats{st},
	}, nil
}

// Stats returns the single-core counters (aggregate counters for
// multi-core runs come from Run's result).
func (e *Engine) Stats() Stats { return e.single.Stats() }
