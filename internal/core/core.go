// Package core assembles the paper's primary contribution into one
// engine: the RE-tailored ISA (internal/isa), the three-stage
// compilation flow (internal/syntax, internal/ir, internal/backend) and
// the speculative microarchitecture (internal/arch), with the optional
// multi-core scale-out (internal/multicore).
//
// The root package alveare re-exports this API for library users; the
// internal packages remain importable by the benchmark harness and the
// command-line tools.
package core

import (
	"context"
	"fmt"
	"io"
	"sort"

	"alveare/internal/approx"
	"alveare/internal/arch"
	"alveare/internal/automata"
	"alveare/internal/backend"
	"alveare/internal/isa"
	"alveare/internal/multicore"
	"alveare/internal/stream"
)

// Program is a compiled, loadable ALVEARE executable.
type Program = isa.Program

// Match is one pattern occurrence, [Start, End) in the data stream.
type Match = arch.Match

// Stats are the microarchitecture performance counters.
type Stats = arch.Stats

// Compile runs the full compilation flow (front-end, middle-end,
// back-end) with all advanced primitives enabled.
func Compile(re string) (*Program, error) {
	return backend.Compile(re, backend.Options{})
}

// CompileWith runs the compilation flow with explicit compiler options
// (minimal mode, ablation switches).
func CompileWith(re string, opt backend.Options) (*Program, error) {
	return backend.Compile(re, opt)
}

// Option configures an Engine.
type Option func(*settings)

type settings struct {
	cores        int
	overlap      int
	chunk        int
	workers      int
	policy       Policy
	cfg          arch.Config
	tracer       arch.Tracer
	dfa          bool
	dfaCache     int
	approx       bool
	approxStates int
}

// WithCores selects the scale-out width (default 1, the single core).
func WithCores(n int) Option {
	return func(s *settings) { s.cores = n }
}

// WithArchConfig overrides the microarchitecture parameters (compute
// units, data-memory window, speculation-stack depth, cycle budget).
func WithArchConfig(cfg arch.Config) Option {
	return func(s *settings) { s.cfg = cfg }
}

// WithOverlap sets the chunk-boundary overlap in bytes, for both the
// multi-core divide and conquer and the streaming reader scan. It
// bounds the longest match the chunked disciplines report identically
// to a one-shot scan (see internal/stream).
func WithOverlap(n int) Option {
	return func(s *settings) { s.overlap = n }
}

// WithChunkSize sets the refill granularity of the streaming reader
// scan (FindReader, CountReader, ScanReader); the default is
// stream.DefaultChunkSize.
func WithChunkSize(n int) Option {
	return func(s *settings) { s.chunk = n }
}

// WithWorkers bounds the rule-level scan concurrency of a RuleSet
// (default GOMAXPROCS). It has no effect on a single Engine.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithBudget caps the speculative core's cycle budget per scan attempt
// (default arch.DefaultConfig's effectively-unbounded 2^40). A tight
// budget turns pathological backtracking into ErrRunaway quickly,
// which is what makes Degrade and Skip bite; n <= 0 leaves the default.
func WithBudget(n int64) Option {
	return func(s *settings) {
		if n > 0 {
			s.cfg.MaxCycles = n
		}
	}
}

// WithPolicy selects the failure policy for recoverable execution
// faults — a core tripping its cycle budget (ErrRunaway) or
// speculation-stack capacity (ErrStackOverflow): FailFast (the
// default) aborts the scan with a *ScanError, Degrade retries the
// faulting window on the safe linear-time engine, Skip drops the
// poisoned region and continues. See Policy.
func WithPolicy(p Policy) Option {
	return func(s *settings) { s.policy = p }
}

// WithMetrics enables the detailed observability counters (per-stage
// cycle attribution, speculation pop/flush accounting, L1 hit/miss
// classification, per-compute-unit utilization). Off by default: the
// hot execution loop then pays only one nil check per sample site.
// Snapshots are published with PublishMetrics / MetricsSnapshot.
func WithMetrics() Option {
	return func(s *settings) { s.cfg.Metrics = true }
}

// WithTracer installs an execution tracer on every core of the engine
// (the single core and, with WithCores, each scale-out core — which run
// concurrently, so the tracer must be safe for concurrent use;
// arch.RingTracer over a shared ring is). For a RuleSet the tracer is
// also installed on every pooled scanning core.
func WithTracer(t arch.Tracer) Option {
	return func(s *settings) { s.tracer = t }
}

// WithPrefilter enables the compiler's necessary-factor hint: when the
// program opens with a complex operator, candidate start offsets are
// narrowed to the neighbourhoods of a required literal's occurrences.
// Results are unchanged; only cycles drop.
func WithPrefilter() Option {
	return func(s *settings) { s.cfg.EnablePrefilter = true }
}

// WithDFA enables the hybrid fast path: a lazy (on-the-fly
// determinised) DFA gates every probe — proving absence in one linear
// pass — before the precise speculative engine runs, and a RuleSet
// additionally builds one cross-rule Aho–Corasick literal prefilter
// that dispatches only candidate rules per input window. Match offsets
// are byte-identical to the slow path: the DFA only ever answers
// existence, the precise engine still produces every offset, and on
// cache blowup the scan falls back to the exact path (FastStats counts
// gate outcomes, cache behaviour and fallbacks). Patterns whose NFA
// exceeds the lazy-DFA bound silently run without the gate.
//
// Off by default at the library level; the CLI tools and the scan
// server enable it unless their -no-dfa flag is set.
func WithDFA() Option {
	return func(s *settings) { s.dfa = true }
}

// WithoutDFA disables the hybrid fast path (the library default),
// undoing an earlier WithDFA in the option list.
func WithoutDFA() Option {
	return func(s *settings) { s.dfa = false }
}

// WithDFACache bounds the lazy DFA's state cache (default
// automata.DefaultLazyCacheStates). Tiny caches force clear-on-full
// flushes and, when the live working set still does not fit, bail to
// the exact engine — the knob fault-injection tests use to exercise
// the fallback seam deterministically.
func WithDFACache(n int) Option {
	return func(s *settings) { s.dfaCache = n }
}

// WithApprox enables the over-approximating admission stage: a small
// deterministic automaton (internal/approx) whose language provably
// contains the pattern's (for a RuleSet, the union of every rule's)
// screens each input — whole buffers for one-shot scans, each overlap
// window for streaming scans, each chunk for multi-core runs — and a
// clean verdict skips all downstream work for that unit. The filter
// never decides matches, only absence, so results are byte-identical
// with or without it; when its state budget cannot hold even a
// truncated approximation it degrades to admitting everything (sound,
// reported via ApproxStats / the approx.* metrics).
//
// Off by default at the library level; the CLI tools and the scan
// server enable it unless their -no-approx flag is set.
func WithApprox() Option {
	return func(s *settings) { s.approx = true }
}

// WithoutApprox disables the admission stage (the library default),
// undoing an earlier WithApprox in the option list.
func WithoutApprox() Option {
	return func(s *settings) { s.approx = false }
}

// WithApproxStates bounds the admission automaton's DFA state budget
// (default approx.DefaultStates = 256, the maximum the byte-indexed
// table supports). Smaller budgets force deeper truncation — coarser
// filters that admit more — and at the limit degrade to admit-all;
// they never affect results, only precision.
func WithApproxStates(n int) Option {
	return func(s *settings) { s.approxStates = n }
}

// Engine executes one compiled RE over data streams, on a single core
// or on the scale-out configuration.
type Engine struct {
	prog   *Program
	single *arch.Core
	multi  *multicore.Engine
	stream stream.Config
	policy Policy
	safe   *safeVM
	// guard accumulates the engine-layer guardrail counters (Fallbacks,
	// CancelledScans); Stats() merges them with the core's counters. It
	// follows the engine's single-goroutine discipline.
	guard Stats
	// streamCtr accumulates reader-scan throughput (windows searched,
	// bytes consumed, matches emitted) across ScanReader calls.
	streamCtr stream.Counters

	// lazy/dfa are the hybrid fast path (WithDFA): the shareable
	// determinisation program and this engine's private gate instance.
	// Nil when the fast path is off or the pattern is unsupported.
	lazy    *automata.LazyProg
	dfa     *automata.LazyDFA
	fastCtr FastStats

	// admit is the over-approximating admission stage (WithApprox):
	// nil when off. approxCtr follows the engine's single-goroutine
	// discipline, like guard.
	admit     *approx.Filter
	approxCtr ApproxStats
}

// NewEngine loads a compiled program.
func NewEngine(p *Program, opts ...Option) (*Engine, error) {
	s := settings{cores: 1, cfg: arch.DefaultConfig()}
	for _, o := range opts {
		o(&s)
	}
	if s.cores < 1 {
		return nil, fmt.Errorf("core: %d cores", s.cores)
	}
	e := &Engine{
		prog:   p,
		stream: stream.Config{ChunkSize: s.chunk, Overlap: s.overlap},
		policy: s.policy,
		safe:   newSafeVM(p.Source),
	}
	single, err := arch.NewCore(p, s.cfg)
	if err != nil {
		return nil, err
	}
	e.single = single
	if s.tracer != nil {
		single.SetTracer(s.tracer)
	}
	if s.cores > 1 {
		multi, err := multicore.New(p, s.cores, s.cfg, s.overlap)
		if err != nil {
			return nil, err
		}
		if s.tracer != nil {
			multi.SetTracer(s.tracer)
		}
		e.multi = multi
	}
	if s.dfa && p.Source != "" {
		// Unsupported (oversized) patterns run without the gate: the
		// fast path is an optimisation, never a capability change.
		if lp, lerr := automata.CompileLazy(p.Source); lerr == nil {
			e.lazy = lp
			e.dfa = lp.NewDFA(s.dfaCache)
			if e.multi != nil {
				e.multi.EnableFastGate(lp, s.dfaCache)
			}
		}
	}
	if s.approx && p.Source != "" {
		f := approx.Build([]string{p.Source}, s.approxStates)
		if !f.AdmitAll() {
			// An admit-all filter screens nothing; leaving it out keeps
			// the scan loops free of dead per-window walks.
			e.admit = f
			if e.multi != nil {
				e.multi.EnableApproxScreen(f)
			}
		}
	}
	return e, nil
}

// ApproxEnabled reports whether the admission stage (WithApprox) is
// active on this engine — false when it was not requested or the
// filter degraded to admit-all at build time.
func (e *Engine) ApproxEnabled() bool { return e.admit != nil }

// ApproxFilter returns the engine's admission filter, nil when off.
func (e *Engine) ApproxFilter() *approx.Filter { return e.admit }

// ApproxStats reports the admission stage's accumulated counters,
// including chunk-level screening on multi-core engines.
func (e *Engine) ApproxStats() ApproxStats { return e.approxCtr }

// FastEnabled reports whether the hybrid fast path (WithDFA) is active
// on this engine — false when it was not requested or the pattern is
// unsupported by the lazy DFA.
func (e *Engine) FastEnabled() bool { return e.dfa != nil }

// FastStats reports the hybrid fast path's accumulated counters: gate
// outcomes, DFA cache behaviour, and (on multi-core engines) the
// per-chunk gates' cache counters. Zero when the fast path is off.
func (e *Engine) FastStats() FastStats {
	st := e.fastCtr
	if e.dfa != nil {
		st.addLazy(e.dfa.Stats())
	}
	if e.multi != nil {
		st.addLazy(e.multi.FastGateStats())
	}
	return st
}

// Program returns the loaded executable.
func (e *Engine) Program() *Program { return e.prog }

// Cores returns the scale-out width.
func (e *Engine) Cores() int {
	if e.multi != nil {
		return e.multi.Cores()
	}
	return 1
}

// guarded builds a policy-applying finder over the engine's single
// core, crediting fallbacks to the engine's guard counters. Each call
// returns a fresh finder so sticky degradation is scoped to one scan.
func (e *Engine) guarded() *guarded {
	return &guarded{
		core:       e.single,
		vm:         e.safe,
		policy:     e.policy,
		onFallback: func() { e.guard.Fallbacks++ },
	}
}

// finder builds the per-scan finder: the policy-applying guarded
// engine, wrapped by the lazy-DFA gate when the fast path is enabled.
// Gate stickiness (a cache bail disabling the gate) is scoped to one
// scan, like the guarded finder's sticky degradation.
func (e *Engine) finder() stream.Finder {
	g := e.guarded()
	if e.dfa == nil {
		return g
	}
	return &fastFinder{dfa: e.dfa, slow: g, st: &e.fastCtr}
}

// fail folds err into the ScanError taxonomy (rule -1: single-pattern
// engine) and maintains the cancellation counter. nil passes through.
func (e *Engine) fail(err error) error {
	if err == nil {
		return nil
	}
	if isCancel(err) {
		e.guard.CancelledScans++
	}
	return scanErrFor(-1, err)
}

// Find returns the leftmost match.
func (e *Engine) Find(data []byte) (Match, bool, error) {
	return e.FindCtx(context.Background(), data)
}

// FindCtx is Find with cooperative cancellation: the core polls ctx
// between match attempts and every few thousand simulated cycles.
func (e *Engine) FindCtx(ctx context.Context, data []byte) (Match, bool, error) {
	if e.admit != nil && !e.screenData(data) {
		return Match{}, false, nil
	}
	m, ok, err := e.finder().FindFromCtx(ctx, data, 0)
	if e.admit != nil && ok {
		e.approxCtr.ExactHitWindows++
	}
	return m, ok, e.fail(err)
}

// Match reports whether the pattern occurs in data.
func (e *Engine) Match(data []byte) (bool, error) {
	_, ok, err := e.Find(data)
	return ok, err
}

// MatchCtx is Match with cooperative cancellation.
func (e *Engine) MatchCtx(ctx context.Context, data []byte) (bool, error) {
	_, ok, err := e.FindCtx(ctx, data)
	return ok, err
}

// FindAll returns all non-overlapping matches. On a multi-core engine
// the stream is divided among the cores.
func (e *Engine) FindAll(data []byte) ([]Match, error) {
	return e.FindAllCtx(context.Background(), data)
}

// FindAllCtx is FindAll with cooperative cancellation and the failure
// policy applied: with Degrade, faulting regions are re-scanned on the
// safe linear-time engine; with Skip, they are dropped; with FailFast
// (the default) the first fault aborts the scan, returning the matches
// completed before it together with a *ScanError.
func (e *Engine) FindAllCtx(ctx context.Context, data []byte) ([]Match, error) {
	if e.multi != nil {
		// Multi-core runs screen chunk by chunk inside the scale-out
		// engine (EnableApproxScreen); runMultiCtx folds the per-chunk
		// admission counters back into approxCtr.
		res, err := e.runMultiCtx(ctx, data)
		return res.Matches, err
	}
	if e.admit != nil && !e.screenData(data) {
		return nil, nil
	}
	ms, err := e.findAllSingle(ctx, data)
	if e.admit != nil && len(ms) > 0 {
		e.approxCtr.ExactHitWindows++
	}
	return ms, e.fail(err)
}

// findAllSingle runs the one-shot FindAll discipline on the single
// core: through the DFA gate when the fast path is on, straight
// through the resilient policy loop otherwise. Both paths apply the
// same failure policy (it lives in the guarded finder) and return
// byte-identical matches.
func (e *Engine) findAllSingle(ctx context.Context, data []byte) ([]Match, error) {
	if e.dfa != nil {
		return findAllWith(ctx, e.finder(), data)
	}
	return resilientFindAll(ctx, e.single, e.safe, e.policy, data, func() { e.guard.Fallbacks++ })
}

// Count returns the number of non-overlapping matches.
func (e *Engine) Count(data []byte) (int, error) {
	return e.CountCtx(context.Background(), data)
}

// CountCtx is Count with cooperative cancellation.
func (e *Engine) CountCtx(ctx context.Context, data []byte) (int, error) {
	ms, err := e.FindAllCtx(ctx, data)
	return len(ms), err
}

// ScanReader scans r to EOF in chunks (WithChunkSize) with overlap
// carry-over (WithOverlap), calling emit for every match in stream
// order; only one window is buffered, so the input may be arbitrarily
// large. text aliases the window buffer and is valid only during the
// call. emit returning false stops the scan early without error.
//
// Results are byte-identical to FindAll over the whole input provided
// no match exceeds the overlap — longer matches are the chunking
// scheme's documented blind spot (see internal/stream). Reader scans
// run on the engine's single core regardless of WithCores: divide and
// conquer needs random access, a stream is consumed once.
func (e *Engine) ScanReader(r io.Reader, emit func(m Match, text []byte) bool) (int64, error) {
	return e.ScanReaderCtx(context.Background(), r, emit)
}

// ScanReaderCtx is ScanReader with cooperative cancellation (checked at
// every window boundary and inside each window's search) and the
// failure policy applied per window. A cancelled scan returns the bytes
// consumed so far together with a *ScanError wrapping ctx.Err().
func (e *Engine) ScanReaderCtx(ctx context.Context, r io.Reader, emit func(m Match, text []byte) bool) (int64, error) {
	cfg := e.stream
	if e.admit != nil {
		// Screen each overlap window; windows proven clean never reach
		// the finder. The settle bookkeeping attributes emitted matches
		// to the admitted window they arrived in (windows are scanned
		// strictly in order on this one goroutine).
		admitted, hits := false, 0
		settle := func() {
			if admitted && hits > 0 {
				e.approxCtr.ExactHitWindows++
			}
			admitted, hits = false, 0
		}
		cfg.Screen = func(buf []byte) bool {
			settle()
			admitted = e.screenData(buf)
			return admitted
		}
		inner := emit
		emit = func(m Match, text []byte) bool { hits++; return inner(m, text) }
		defer settle()
	}
	sc := stream.ForFinder(e.finder(), cfg)
	sc.SetCounters(&e.streamCtr)
	n, err := sc.ScanCtx(ctx, r, stream.EmitFunc(emit))
	return n, e.fail(err)
}

// FindReader returns every match in the stream, reading r to EOF one
// window at a time (only the match list is buffered).
func (e *Engine) FindReader(r io.Reader) ([]Match, error) {
	return e.FindReaderCtx(context.Background(), r)
}

// FindReaderCtx is FindReader with cooperative cancellation.
func (e *Engine) FindReaderCtx(ctx context.Context, r io.Reader) ([]Match, error) {
	var out []Match
	_, err := e.ScanReaderCtx(ctx, r, func(m Match, _ []byte) bool {
		out = append(out, m)
		return true
	})
	return out, err
}

// CountReader returns the number of matches in the stream.
func (e *Engine) CountReader(r io.Reader) (int, error) {
	return e.CountReaderCtx(context.Background(), r)
}

// CountReaderCtx is CountReader with cooperative cancellation.
func (e *Engine) CountReaderCtx(ctx context.Context, r io.Reader) (int, error) {
	n := 0
	_, err := e.ScanReaderCtx(ctx, r, func(Match, []byte) bool { n++; return true })
	return n, err
}

// runMultiCtx executes the multi-core pass and contains chunk faults
// per the failure policy: recoverable faults (runaway, stack overflow)
// are re-scanned on the safe engine (Degrade) or reduced to the chunk's
// partial matches (Skip); cancellation and integrity faults propagate.
// Contained chunks stay listed in Result.Failed for observability even
// when the returned error is nil.
func (e *Engine) runMultiCtx(ctx context.Context, data []byte) (multicore.Result, error) {
	res, err := e.multi.RunCtx(ctx, data)
	if e.admit != nil {
		e.approxCtr.ScreenedWindows += int64(res.Chunks)
		e.approxCtr.ScreenedBytes += int64(len(data))
		e.approxCtr.AdmittedWindows += int64(res.Chunks - res.ApproxSkips)
		e.approxCtr.ExactHitWindows += int64(res.ApproxHits)
	}
	if err == nil {
		return res, nil
	}
	if e.policy == FailFast {
		return res, e.fail(err)
	}
	for _, f := range res.Failed {
		if !recoverable(f.Err) {
			return res, e.fail(fmt.Errorf("core %d: %w", f.Core, f.Err))
		}
	}
	for _, f := range res.Failed {
		if e.policy == Degrade && e.safe.available() {
			e.guard.Fallbacks++
			// Re-scan the whole extended window on the safe engine; the
			// ownership filter keeps the result set disjoint from the
			// neighbouring chunks exactly as it does for healthy cores.
			ms, ferr := e.safe.findAll(ctx, data[f.Chunk.Lo:f.Chunk.Ext], 0)
			res.Matches = append(res.Matches, stream.OwnMatches(ms, f.Chunk.Lo, f.Chunk.Hi)...)
			if ferr != nil {
				return res, e.fail(ferr)
			}
		} else {
			// Skip (or Degrade without a safe engine): keep what the core
			// completed before its fault.
			res.Matches = append(res.Matches, f.Partial...)
		}
	}
	sort.Slice(res.Matches, func(a, b int) bool { return res.Matches[a].Start < res.Matches[b].Start })
	return res, nil
}

// Run executes a full multi-core pass and returns the detailed result
// (wall cycles, per-core counters). On a single-core engine it wraps
// the core's counters in the same shape.
func (e *Engine) Run(data []byte) (multicore.Result, error) {
	return e.RunCtx(context.Background(), data)
}

// RunCtx is Run with cooperative cancellation and the failure policy
// applied (see FindAllCtx).
func (e *Engine) RunCtx(ctx context.Context, data []byte) (multicore.Result, error) {
	if e.multi != nil {
		return e.runMultiCtx(ctx, data)
	}
	e.single.ResetStats()
	if e.admit != nil && !e.screenData(data) {
		return multicore.Result{Chunks: 1}, nil
	}
	ms, err := e.findAllSingle(ctx, data)
	if e.admit != nil && len(ms) > 0 {
		e.approxCtr.ExactHitWindows++
	}
	st := e.single.Stats()
	res := multicore.Result{
		Matches:     ms,
		WallCycles:  st.Cycles,
		TotalCycles: st.Cycles,
		PerCore:     []arch.Stats{st},
		Chunks:      1,
	}
	return res, e.fail(err)
}

// Stats returns the single-core counters merged with the engine-layer
// guardrail counters (Fallbacks, CancelledScans); aggregate counters
// for multi-core runs come from Run's result.
func (e *Engine) Stats() Stats {
	st := e.single.Stats()
	st.Fallbacks += e.guard.Fallbacks
	st.CancelledScans += e.guard.CancelledScans
	return st
}

// StreamCounters reports the reader-scan throughput accumulated across
// ScanReader / FindReader / CountReader calls.
func (e *Engine) StreamCounters() stream.Counters { return e.streamCtr }

// ResetStats clears the single-core counters, the engine-layer guard
// counters, the stream throughput accumulators, and releases the core's
// references to the previous input (multi-core cores reset per Run).
func (e *Engine) ResetStats() {
	e.single.Reset()
	e.guard = Stats{}
	e.streamCtr = stream.Counters{}
	e.fastCtr = FastStats{}
	e.approxCtr = ApproxStats{}
	if e.dfa != nil {
		e.dfa.TakeStats()
	}
	if e.multi != nil {
		e.multi.TakeFastGateStats()
	}
}
