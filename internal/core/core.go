// Package core assembles the paper's primary contribution into one
// engine: the RE-tailored ISA (internal/isa), the three-stage
// compilation flow (internal/syntax, internal/ir, internal/backend) and
// the speculative microarchitecture (internal/arch), with the optional
// multi-core scale-out (internal/multicore).
//
// The root package alveare re-exports this API for library users; the
// internal packages remain importable by the benchmark harness and the
// command-line tools.
package core

import (
	"fmt"
	"io"

	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/isa"
	"alveare/internal/multicore"
	"alveare/internal/stream"
)

// Program is a compiled, loadable ALVEARE executable.
type Program = isa.Program

// Match is one pattern occurrence, [Start, End) in the data stream.
type Match = arch.Match

// Stats are the microarchitecture performance counters.
type Stats = arch.Stats

// Compile runs the full compilation flow (front-end, middle-end,
// back-end) with all advanced primitives enabled.
func Compile(re string) (*Program, error) {
	return backend.Compile(re, backend.Options{})
}

// CompileWith runs the compilation flow with explicit compiler options
// (minimal mode, ablation switches).
func CompileWith(re string, opt backend.Options) (*Program, error) {
	return backend.Compile(re, opt)
}

// Option configures an Engine.
type Option func(*settings)

type settings struct {
	cores   int
	overlap int
	chunk   int
	workers int
	cfg     arch.Config
}

// WithCores selects the scale-out width (default 1, the single core).
func WithCores(n int) Option {
	return func(s *settings) { s.cores = n }
}

// WithArchConfig overrides the microarchitecture parameters (compute
// units, data-memory window, speculation-stack depth, cycle budget).
func WithArchConfig(cfg arch.Config) Option {
	return func(s *settings) { s.cfg = cfg }
}

// WithOverlap sets the chunk-boundary overlap in bytes, for both the
// multi-core divide and conquer and the streaming reader scan. It
// bounds the longest match the chunked disciplines report identically
// to a one-shot scan (see internal/stream).
func WithOverlap(n int) Option {
	return func(s *settings) { s.overlap = n }
}

// WithChunkSize sets the refill granularity of the streaming reader
// scan (FindReader, CountReader, ScanReader); the default is
// stream.DefaultChunkSize.
func WithChunkSize(n int) Option {
	return func(s *settings) { s.chunk = n }
}

// WithWorkers bounds the rule-level scan concurrency of a RuleSet
// (default GOMAXPROCS). It has no effect on a single Engine.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithPrefilter enables the compiler's necessary-factor hint: when the
// program opens with a complex operator, candidate start offsets are
// narrowed to the neighbourhoods of a required literal's occurrences.
// Results are unchanged; only cycles drop.
func WithPrefilter() Option {
	return func(s *settings) { s.cfg.EnablePrefilter = true }
}

// Engine executes one compiled RE over data streams, on a single core
// or on the scale-out configuration.
type Engine struct {
	prog   *Program
	single *arch.Core
	multi  *multicore.Engine
	stream stream.Config
}

// NewEngine loads a compiled program.
func NewEngine(p *Program, opts ...Option) (*Engine, error) {
	s := settings{cores: 1, cfg: arch.DefaultConfig()}
	for _, o := range opts {
		o(&s)
	}
	if s.cores < 1 {
		return nil, fmt.Errorf("core: %d cores", s.cores)
	}
	e := &Engine{prog: p, stream: stream.Config{ChunkSize: s.chunk, Overlap: s.overlap}}
	single, err := arch.NewCore(p, s.cfg)
	if err != nil {
		return nil, err
	}
	e.single = single
	if s.cores > 1 {
		multi, err := multicore.New(p, s.cores, s.cfg, s.overlap)
		if err != nil {
			return nil, err
		}
		e.multi = multi
	}
	return e, nil
}

// Program returns the loaded executable.
func (e *Engine) Program() *Program { return e.prog }

// Cores returns the scale-out width.
func (e *Engine) Cores() int {
	if e.multi != nil {
		return e.multi.Cores()
	}
	return 1
}

// Find returns the leftmost match.
func (e *Engine) Find(data []byte) (Match, bool, error) {
	return e.single.Find(data)
}

// Match reports whether the pattern occurs in data.
func (e *Engine) Match(data []byte) (bool, error) {
	_, ok, err := e.single.Find(data)
	return ok, err
}

// FindAll returns all non-overlapping matches. On a multi-core engine
// the stream is divided among the cores.
func (e *Engine) FindAll(data []byte) ([]Match, error) {
	if e.multi != nil {
		res, err := e.multi.Run(data)
		return res.Matches, err
	}
	return e.single.FindAll(data, 0)
}

// Count returns the number of non-overlapping matches.
func (e *Engine) Count(data []byte) (int, error) {
	ms, err := e.FindAll(data)
	return len(ms), err
}

// ScanReader scans r to EOF in chunks (WithChunkSize) with overlap
// carry-over (WithOverlap), calling emit for every match in stream
// order; only one window is buffered, so the input may be arbitrarily
// large. text aliases the window buffer and is valid only during the
// call. emit returning false stops the scan early without error.
//
// Results are byte-identical to FindAll over the whole input provided
// no match exceeds the overlap — longer matches are the chunking
// scheme's documented blind spot (see internal/stream). Reader scans
// run on the engine's single core regardless of WithCores: divide and
// conquer needs random access, a stream is consumed once.
func (e *Engine) ScanReader(r io.Reader, emit func(m Match, text []byte) bool) (int64, error) {
	sc := stream.ForCore(e.single, e.stream)
	return sc.Scan(r, stream.EmitFunc(emit))
}

// FindReader returns every match in the stream, reading r to EOF one
// window at a time (only the match list is buffered).
func (e *Engine) FindReader(r io.Reader) ([]Match, error) {
	var out []Match
	_, err := e.ScanReader(r, func(m Match, _ []byte) bool {
		out = append(out, m)
		return true
	})
	return out, err
}

// CountReader returns the number of matches in the stream.
func (e *Engine) CountReader(r io.Reader) (int, error) {
	n := 0
	_, err := e.ScanReader(r, func(Match, []byte) bool { n++; return true })
	return n, err
}

// Run executes a full multi-core pass and returns the detailed result
// (wall cycles, per-core counters). On a single-core engine it wraps
// the core's counters in the same shape.
func (e *Engine) Run(data []byte) (multicore.Result, error) {
	if e.multi != nil {
		return e.multi.Run(data)
	}
	e.single.ResetStats()
	ms, err := e.single.FindAll(data, 0)
	if err != nil {
		return multicore.Result{}, err
	}
	st := e.single.Stats()
	return multicore.Result{
		Matches:     ms,
		WallCycles:  st.Cycles,
		TotalCycles: st.Cycles,
		PerCore:     []arch.Stats{st},
	}, nil
}

// Stats returns the single-core counters (aggregate counters for
// multi-core runs come from Run's result).
func (e *Engine) Stats() Stats { return e.single.Stats() }

// ResetStats clears the single-core counters and releases the core's
// references to the previous input (multi-core cores reset per Run).
func (e *Engine) ResetStats() { e.single.Reset() }
