package core

// The over-approximating admission stage: a small deterministic filter
// (internal/approx) derived per rule set whose language provably
// contains the union of all rules. It runs as a first stage ahead of
// everything else — one branch-free table walk over each window — and
// a negative answer skips the prefilter, the lazy-DFA gates and the
// exact engine for that window entirely. The filter only ever answers
// "certainly clean" or "maybe"; matches always come from the exact
// engine, so approx-on and approx-off results are byte-identical by
// construction (the differential battery holds both paths to that).

// ApproxStats counts the admission stage's behaviour. Precision is
// ExactHitWindows / AdmittedWindows: the fraction of admitted windows
// in which the exact engine actually found something (1.0 means the
// filter never wasted exact-engine work; low values mean the rule set
// over-approximates coarsely at the configured state budget).
type ApproxStats struct {
	// ScreenedWindows / ScreenedBytes count the windows (and their
	// bytes) the admission automaton walked.
	ScreenedWindows int64
	ScreenedBytes   int64
	// AdmittedWindows counts windows the filter flagged suspect — the
	// exact engine ran. ScreenedWindows - AdmittedWindows windows were
	// proven clean and skipped outright.
	AdmittedWindows int64
	// ExactHitWindows counts admitted windows where the exact engine
	// reported at least one match.
	ExactHitWindows int64
}

// Add folds o into s.
func (s *ApproxStats) Add(o ApproxStats) {
	s.ScreenedWindows += o.ScreenedWindows
	s.ScreenedBytes += o.ScreenedBytes
	s.AdmittedWindows += o.AdmittedWindows
	s.ExactHitWindows += o.ExactHitWindows
}

// screenData runs the engine's admission filter over one whole input,
// maintaining the engine-layer counters (single-goroutine, like guard).
// True means "scan it"; callers treat false as a proof of no match.
func (e *Engine) screenData(data []byte) bool {
	e.approxCtr.ScreenedWindows++
	e.approxCtr.ScreenedBytes += int64(len(data))
	if !e.admit.Suspect(data) {
		return false
	}
	e.approxCtr.AdmittedWindows++
	return true
}

// screenWindow screens one whole rule-set window, maintaining the
// mutex-guarded roll-up. The returned admitted flag lets the caller
// credit ExactHitWindows once the window's matches are known.
func (rs *RuleSet) screenWindow(buf []byte) (admitted bool) {
	suspect := rs.admit.Suspect(buf)
	rs.mu.Lock()
	rs.approxCtr.ScreenedWindows++
	rs.approxCtr.ScreenedBytes += int64(len(buf))
	if suspect {
		rs.approxCtr.AdmittedWindows++
	}
	rs.mu.Unlock()
	return suspect
}

// creditExactHit records that an admitted unit produced exact matches.
func (rs *RuleSet) creditExactHit() {
	rs.mu.Lock()
	rs.approxCtr.ExactHitWindows++
	rs.mu.Unlock()
}
