package core

import (
	"context"
	"errors"
	"sync"

	"alveare/internal/arch"
	"alveare/internal/stream"
)

// Stream is a resumable push-mode scan of one unbounded flow against
// every rule — the rule-set counterpart of stream.Session, and the
// state a scan-service streaming session carries across frames. Each
// pushed chunk is scanned as one window of the overlap discipline with
// one resume position per rule, the cross-rule literal prefilter run
// per window, fast-path gating intact and per-rule degraded/retired
// state carried between pushes; the emitted matches are byte-identical
// to RuleSet.ScanReader over the concatenated flow (matches longer
// than the overlap are the scheme's documented blind spot, exactly as
// there).
//
// ScanReaderCtx is the pull-mode loop over this same state machine, so
// the two paths cannot diverge. A Stream is single-caller: pushes must
// be serialised (the scan service's session registry enforces this);
// the RuleSet underneath stays safe for concurrent use by other scans.
type Stream struct {
	rs      *RuleSet
	overlap int
	buf     []byte
	base    int   // stream offset of buf[0]
	pos     []int // per-rule resume offsets
	sticky  []bool
	dead    []error
	done    bool
}

// NewStream opens push-mode carry-over state for the rule set.
// Non-positive overlap selects the rule set's configured overlap
// (WithOverlap, default stream.DefaultOverlap).
func (rs *RuleSet) NewStream(overlap int) *Stream {
	if overlap <= 0 {
		overlap = rs.stream.Overlap
	}
	if overlap <= 0 {
		overlap = stream.DefaultOverlap
	}
	n := rs.Len()
	return &Stream{
		rs:      rs,
		overlap: overlap,
		pos:     make([]int, n),
		sticky:  make([]bool, n),
		dead:    make([]error, n),
	}
}

// Overlap returns the boundary carry in bytes — the longest match the
// stream is guaranteed to report identically to a one-shot scan.
func (st *Stream) Overlap() int { return st.overlap }

// Consumed returns the total stream bytes absorbed so far.
func (st *Stream) Consumed() int64 { return int64(st.base + len(st.buf)) }

// Buffered returns the resident carry-over tail in bytes (at most
// Overlap after each completed push).
func (st *Stream) Buffered() int { return len(st.buf) }

// Finished reports whether the stream has been finalised (FinishCtx
// ran, a fault aborted it, or emit stopped it).
func (st *Stream) Finished() bool { return st.done }

// grow extends the window by n bytes and returns the scratch region
// for the caller to fill — the zero-copy refill path ScanReaderCtx
// uses. commit trims the region to the bytes actually delivered.
func (st *Stream) grow(n int) []byte {
	have := len(st.buf)
	if cap(st.buf) < have+n {
		nb := make([]byte, have, have+n+st.overlap)
		copy(nb, st.buf)
		st.buf = nb
	}
	st.buf = st.buf[:have+n]
	return st.buf[have:]
}

func (st *Stream) commit(have, n int) { st.buf = st.buf[:have+n] }

// PushCtx scans chunk as the flow's next window. emit is called
// sequentially, rules in rule order, with absolute stream offsets;
// text aliases the window buffer and is valid only during the call.
// cont is false when emit stopped the scan (the stream is then
// finished). Under FailFast a rule fault aborts and finishes the
// stream; under Degrade/Skip the faulting rule is retired and its
// error surfaces from FinishCtx. An empty chunk is a no-op window.
func (st *Stream) PushCtx(ctx context.Context, chunk []byte, emit func(rule int, m Match, text []byte) bool) (cont bool, err error) {
	if st.done {
		return false, stream.ErrSessionFinished
	}
	if cerr := ctx.Err(); cerr != nil {
		rs := st.rs
		rs.mu.Lock()
		rs.agg.CancelledScans++
		rs.mu.Unlock()
		st.done = true
		return false, scanErrFor(-1, &stream.ReadError{Offset: st.Consumed(), Err: cerr})
	}
	copy(st.grow(len(chunk)), chunk)
	return st.window(ctx, len(chunk), false, emit)
}

// FinishCtx scans the carry-over tail as the flow's final window and
// returns the joined retirement errors of rules the policy contained
// mid-stream. The stream cannot be pushed to afterwards.
func (st *Stream) FinishCtx(ctx context.Context, emit func(rule int, m Match, text []byte) bool) (cont bool, err error) {
	if st.done {
		return false, stream.ErrSessionFinished
	}
	cont, werr := st.window(ctx, 0, true, emit)
	st.done = true
	if werr != nil {
		return false, werr
	}
	return cont, errors.Join(st.dead...)
}

// window runs one window pass over the buffered bytes: prefilter, rule
// fan-out to the worker pool, telemetry merge, deterministic emission,
// and (on a non-final continuing window) the overlap carry. nr is the
// byte count this window added, for the throughput roll-up.
func (st *Stream) window(ctx context.Context, nr int, final bool, emit func(rule int, m Match, text []byte) bool) (bool, error) {
	rs := st.rs
	n := rs.Len()
	buf, base := st.buf, st.base
	limit := base + len(buf)
	ownEnd := limit
	if !final {
		ownEnd = limit - st.overlap
		if ownEnd < base {
			ownEnd = base
		}
	}

	// Admission first: one filter walk over the whole buffered window
	// (carry tail plus new bytes) stands in for every rule's window
	// scan when it proves the window clean. Live rules' resume offsets
	// then advance exactly as a no-match ScanWindowCtx pass would, so
	// the skip is byte-identical; a match straddling the window
	// boundary starts inside the carry tail and reappears whole — and
	// is screened again — in the next window.
	screened := rs.screening()
	if screened && !rs.screenWindow(buf) {
		for i := 0; i < n; i++ {
			if st.dead[i] != nil {
				continue
			}
			if final {
				st.pos[i] = limit + 1
			} else if st.pos[i] < ownEnd {
				st.pos[i] = ownEnd
			}
		}
		rs.merge(nil, nil, 0, 1, int64(nr))
		if final {
			st.done = true
			return true, nil
		}
		st.carryTail(limit)
		return true, nil
	}

	// One prefilter pass over the window buffer picks the candidate
	// rules. A skipped rule's resume offset advances exactly as a
	// no-match window scan would (stream.ScanWindowCtx's contract):
	// the literal's absence from the buffer proves no match lies in
	// the window, so the two are byte-identical.
	cand := rs.candidates(buf)

	// Fan the window out to the workers; collect per rule so the
	// emission below is deterministic.
	wins := make([][]Match, n)
	errs := make([]error, n)
	per := make([]arch.Stats, n)
	occ := make([]int64, rs.workerCount(n))
	var sent, skipped int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := range occ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				ms, stats, npos, deg, err := rs.scanRuleWindow(ctx, i, buf, base, final, st.overlap, st.pos[i], st.sticky[i])
				wins[i], errs[i] = ms, err
				st.pos[i], st.sticky[i] = npos, deg
				per[i] = stats
				occ[w]++
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		if st.dead[i] != nil {
			continue
		}
		if cand != nil && !cand.Has(i) {
			if final {
				st.pos[i] = limit + 1
			} else if st.pos[i] < ownEnd {
				st.pos[i] = ownEnd
			}
			skipped++
			continue
		}
		jobs <- i
		sent++
	}
	close(jobs)
	wg.Wait()
	rs.putBits(cand)
	if rs.useDFA {
		rs.mu.Lock()
		rs.fast.PrefilterPasses += sent
		rs.fast.PrefilterSkips += skipped
		rs.mu.Unlock()
	}

	rs.merge(per, occ, sent, 1, int64(nr))
	for i, err := range errs {
		if err == nil {
			continue
		}
		if isCancel(err) || rs.policy == FailFast {
			if isCancel(err) {
				rs.mu.Lock()
				rs.agg.CancelledScans++
				rs.mu.Unlock()
			}
			st.done = true
			return false, err
		}
		// Retire the rule; the stream scan outlives it. Park its
		// resume offset past the stream so a stale offset can never
		// fault the carry-over arithmetic.
		st.dead[i] = err
		st.pos[i] = limit
	}
	if screened {
		for _, ms := range wins {
			if len(ms) > 0 {
				rs.creditExactHit()
				break
			}
		}
	}
	var emitted int64
	flushEmitted := func() {
		rs.mu.Lock()
		rs.streamCtr.Matches += emitted
		rs.mu.Unlock()
	}
	for i, ms := range wins {
		for _, m := range ms {
			emitted++
			if !emit(i, m, buf[m.Start-base:m.End-base]) {
				flushEmitted()
				st.done = true
				return false, nil
			}
		}
	}
	flushEmitted()
	if final {
		st.done = true
		return true, nil
	}
	st.carryTail(limit)
	return true, nil
}

// carryTail retains the shared overlap tail for the next window; every
// rule's resume offset is at or past it (ScanWindow guarantees
// pos >= limit-overlap).
func (st *Stream) carryTail(limit int) {
	carry := limit - st.overlap
	if carry < st.base {
		carry = st.base
	}
	copy(st.buf, st.buf[carry-st.base:])
	st.buf = st.buf[:limit-carry]
	st.base = carry
}
