package core

import (
	"fmt"

	"alveare/internal/approx"
	"alveare/internal/arch"
	"alveare/internal/metrics"
)

// PublishMetrics writes the engine's roll-up into r under the "engine"
// prefix: the merged architectural counters (arch.Publish's naming
// contract), per-compute-unit utilization, and the reader-scan
// throughput accumulators. Detailed counters are populated only when
// the engine was built WithMetrics; the classic counters (cycles,
// instructions, speculation pushes) publish regardless.
func (e *Engine) PublishMetrics(r *metrics.Registry) {
	arch.Publish(r, "engine", e.Stats())
	arch.PublishCU(r, "engine", e.single.CUUtilization())
	if e.multi != nil {
		arch.PublishCU(r, "engine.multi", e.multi.CUUtilization())
	}
	r.Counter("engine.stream.windows").Store(e.streamCtr.Windows)
	r.Counter("engine.stream.bytes").Store(e.streamCtr.Bytes)
	r.Counter("engine.stream.matches").Store(e.streamCtr.Matches)
	if e.FastEnabled() {
		publishFast(r, "engine", e.FastStats(), false)
	}
	if e.admit != nil {
		publishApprox(r, "engine", e.ApproxStats(), e.admit)
	}
}

// publishApprox writes one admission-stage roll-up under prefix
// ("<prefix>.approx.*"): screening volume, admitted and exact-hit
// window counts (their ratio is the stage's precision), and the
// filter's shape (DFA states, truncation depth, admit-all
// degradation). Published only when the stage is enabled, so
// default-path snapshots are unchanged.
func publishApprox(r *metrics.Registry, prefix string, as ApproxStats, f *approx.Filter) {
	r.Counter(prefix + ".approx.windows.screened").Store(as.ScreenedWindows)
	r.Counter(prefix + ".approx.bytes.screened").Store(as.ScreenedBytes)
	r.Counter(prefix + ".approx.windows.admitted").Store(as.AdmittedWindows)
	r.Counter(prefix + ".approx.windows.exacthit").Store(as.ExactHitWindows)
	r.Gauge(prefix + ".approx.states").Set(int64(f.States()))
	r.Gauge(prefix + ".approx.depth").Set(int64(f.Depth()))
	admitAll := int64(0)
	if f.AdmitAll() {
		admitAll = 1
	}
	r.Gauge(prefix + ".approx.admitall").Set(admitAll)
}

// publishFast writes one FastStats roll-up under prefix: the gate
// outcome counters ("<prefix>.fast.*"), the DFA cache counters
// ("<prefix>.dfa.cache.*", "<prefix>.dfa.bails") and, for rule sets,
// the cross-rule prefilter dispatch counters ("<prefix>.prefilter.*").
// Published only when the fast path is enabled, so default-path
// snapshots are unchanged.
func publishFast(r *metrics.Registry, prefix string, fs FastStats, prefilter bool) {
	r.Counter(prefix + ".fast.probes").Store(fs.Probes)
	r.Counter(prefix + ".fast.negatives").Store(fs.Negatives)
	r.Counter(prefix + ".fast.confirms").Store(fs.Confirms)
	r.Counter(prefix + ".fast.fallback.probes").Store(fs.FallbackProbes)
	r.Counter(prefix + ".dfa.cache.hits").Store(fs.CacheHits)
	r.Counter(prefix + ".dfa.cache.misses").Store(fs.CacheMisses)
	r.Counter(prefix + ".dfa.cache.flushes").Store(fs.CacheFlushes)
	r.Counter(prefix + ".dfa.cache.evicted").Store(fs.CacheEvicted)
	r.Counter(prefix + ".dfa.bails").Store(fs.Bails)
	if prefilter {
		r.Counter(prefix + ".prefilter.passes").Store(fs.PrefilterPasses)
		r.Counter(prefix + ".prefilter.skips").Store(fs.PrefilterSkips)
	}
}

// MetricsSnapshot publishes into a fresh registry and returns the
// deterministic snapshot (sorted names, versioned schema) — what the
// tools' -metrics flag serialises.
func (e *Engine) MetricsSnapshot() *metrics.Snapshot {
	r := metrics.New()
	e.PublishMetrics(r)
	return r.Snapshot()
}

// PublishMetrics writes the rule set's roll-up into r under the
// "ruleset" prefix: the aggregate architectural counters, a per-rule
// cycle/instruction/speculation/fallback breakdown ("ruleset.rule<i>.*"),
// worker-pool occupancy ("ruleset.worker<i>.jobs", which sums to
// "ruleset.jobs.dispatched"), and the reader-scan window throughput.
func (rs *RuleSet) PublishMetrics(r *metrics.Registry) {
	rs.mu.Lock()
	agg := rs.agg
	per := append([]arch.Stats(nil), rs.perRule...)
	occ := append([]int64(nil), rs.occ...)
	dispatched := rs.dispatched
	ctr := rs.streamCtr
	rs.mu.Unlock()

	arch.Publish(r, "ruleset", agg)
	for i := range per {
		p := fmt.Sprintf("ruleset.rule%03d.", i)
		r.Counter(p + "cycles").Store(per[i].Cycles)
		r.Counter(p + "instructions").Store(per[i].Instructions)
		r.Counter(p + "spec.pushes").Store(per[i].Speculations)
		r.Counter(p + "fallbacks").Store(per[i].Fallbacks)
	}
	for w, c := range occ {
		r.Counter(fmt.Sprintf("ruleset.worker%02d.jobs", w)).Store(c)
	}
	r.Counter("ruleset.jobs.dispatched").Store(dispatched)
	r.Counter("ruleset.stream.windows").Store(ctr.Windows)
	r.Counter("ruleset.stream.bytes").Store(ctr.Bytes)
	r.Counter("ruleset.stream.matches").Store(ctr.Matches)
	if rs.FastEnabled() {
		publishFast(r, "ruleset", rs.FastStats(), true)
		r.Counter("ruleset.prefilter.rules.filtered").Store(int64(rs.PrefilteredRules()))
	}
	if rs.ApproxEnabled() {
		publishApprox(r, "ruleset", rs.ApproxStats(), rs.admit)
	}
}

// MetricsSnapshot publishes into a fresh registry and returns the
// deterministic snapshot.
func (rs *RuleSet) MetricsSnapshot() *metrics.Snapshot {
	r := metrics.New()
	rs.PublishMetrics(r)
	return r.Snapshot()
}
