package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/stream"
)

func TestPolicyStringAndParse(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"failfast", FailFast},
		{"fail-fast", FailFast},
		{"", FailFast},
		{"degrade", Degrade},
		{"skip", Skip},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = (%v, %v), want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePolicy("explode"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	for _, p := range []Policy{FailFast, Degrade, Skip} {
		round, err := ParsePolicy(p.String())
		if err != nil || round != p {
			t.Errorf("round-trip of %v failed: (%v, %v)", p, round, err)
		}
	}
}

func TestScanErrForLiftsOffsets(t *testing.T) {
	cause := errors.New("boom")
	err := scanErrFor(3, &arch.ExecError{Offset: 42, Cycle: 7, Err: cause})
	var se *ScanError
	if !errors.As(err, &se) || se.Rule != 3 || se.Offset != 42 {
		t.Fatalf("from ExecError: %+v", se)
	}
	if !errors.Is(err, cause) {
		t.Fatal("cause lost through ScanError")
	}

	err = scanErrFor(-1, &stream.ReadError{Offset: 99, Err: cause})
	if !errors.As(err, &se) || se.Rule != -1 || se.Offset != 99 {
		t.Fatalf("from ReadError: %+v", se)
	}

	err = scanErrFor(5, cause)
	if !errors.As(err, &se) || se.Rule != 5 || se.Offset != -1 {
		t.Fatalf("from bare error: %+v", se)
	}

	// A ScanError passes through, gaining the rule index if it had none.
	inner := &ScanError{Rule: -1, Offset: 7, Cause: cause}
	err = scanErrFor(2, inner)
	if !errors.As(err, &se) || se.Rule != 2 || se.Offset != 7 {
		t.Fatalf("rule upgrade: %+v", se)
	}
	if scanErrFor(0, nil) != nil {
		t.Fatal("scanErrFor(0, nil) != nil")
	}
}

// TestRuleSetPanicIsolation corrupts one rule's core pool so that
// borrowing a core panics, and asserts the panic is recovered into
// that rule's Err slot without disturbing its neighbours.
func TestRuleSetPanicIsolation(t *testing.T) {
	rs, err := NewRuleSet([]string{`ab+c`, `xx`}, backend.Options{}, WithPolicy(Skip))
	if err != nil {
		t.Fatal(err)
	}
	rs.pools[0].New = func() any { panic("injected core fault") }
	out, serr := rs.Scan([]byte("xxabbcxx"))
	if serr != nil {
		t.Fatalf("scan err = %v, want nil under Skip", serr)
	}
	byRule := map[int]RuleMatches{}
	for _, rm := range out {
		byRule[rm.Rule] = rm
	}
	var se *ScanError
	if rm := byRule[0]; !errors.As(rm.Err, &se) || se.Rule != 0 {
		t.Fatalf("poisoned rule: err = %v, want its own *ScanError", rm.Err)
	}
	if rm := byRule[1]; rm.Err != nil || len(rm.Matches) != 2 {
		t.Fatalf("healthy rule: %d matches, err %v; want 2, nil", len(rm.Matches), rm.Err)
	}

	// Under FailFast the same fault aborts the whole scan.
	rsf, err := NewRuleSet([]string{`ab+c`, `xx`}, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rsf.pools[0].New = func() any { panic("injected core fault") }
	if _, serr := rsf.Scan([]byte("xxabbcxx")); serr == nil {
		t.Fatal("FailFast swallowed a rule panic")
	}
}

// TestDegradeWithoutSourceFallsBackToSkip: a program with no pattern
// source (hand-assembled or deserialised without provenance) cannot
// feed the safe engine, so Degrade must contain the fault like Skip
// instead of failing.
func TestDegradeWithoutSourceFallsBackToSkip(t *testing.T) {
	p, err := Compile(`(a|aa)+b`)
	if err != nil {
		t.Fatal(err)
	}
	p.Source = ""
	cfg := arch.DefaultConfig()
	cfg.MaxCycles = 2000
	e, err := NewEngine(p, WithArchConfig(cfg), WithPolicy(Degrade))
	if err != nil {
		t.Fatal(err)
	}
	ms, ferr := e.FindAll([]byte(strings.Repeat("aab", 5) + strings.Repeat("a", 64)))
	if ferr != nil {
		t.Fatalf("err = %v, want nil (Degrade should degrade to Skip)", ferr)
	}
	if len(ms) == 0 {
		t.Fatal("the pre-fault matches were dropped")
	}
	if e.Stats().Fallbacks != 0 {
		t.Fatalf("Stats.Fallbacks = %d with no safe engine", e.Stats().Fallbacks)
	}
}

// TestEngineStatsMergeGuardCounters: Fallbacks and CancelledScans live
// in the engine layer and must survive Stats()/ResetStats().
func TestEngineStatsMergeGuardCounters(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.MaxCycles = 2000
	p, err := Compile(`(a|aa)+b`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p, WithArchConfig(cfg), WithPolicy(Degrade))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FindAll([]byte(strings.Repeat("a", 64))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.FindAllCtx(ctx, []byte("aab")); err == nil {
		t.Fatal("cancelled scan returned nil error")
	}
	st := e.Stats()
	if st.Fallbacks != 1 || st.CancelledScans != 1 {
		t.Fatalf("Stats = {Fallbacks:%d CancelledScans:%d}, want 1/1", st.Fallbacks, st.CancelledScans)
	}
	e.ResetStats()
	st = e.Stats()
	if st.Fallbacks != 0 || st.CancelledScans != 0 {
		t.Fatalf("counters survived ResetStats: %+v", st)
	}
}
