package core

import (
	"context"
	"errors"
	"sync"

	"alveare/internal/arch"
	"alveare/internal/baseline/pikevm"
)

// safeVM is the graceful-degradation engine: a Pike VM compiled lazily
// from the rule's pattern source, guaranteed linear time with no
// speculation, substituted for a speculative core when the Degrade
// policy contains a runaway. Compilation happens at most once; the VM
// itself is serialised by a mutex because the degraded path's
// throughput does not matter, its availability does.
type safeVM struct {
	source string

	once sync.Once
	prog *pikevm.Prog
	err  error
	mu   sync.Mutex
}

func newSafeVM(source string) *safeVM { return &safeVM{source: source} }

// vm compiles the fallback program on first use.
func (s *safeVM) vm() (*pikevm.Prog, error) {
	s.once.Do(func() {
		if s.source == "" {
			s.err = errors.New("core: no pattern source for safe-engine fallback")
			return
		}
		s.prog, s.err = pikevm.Compile(s.source)
	})
	return s.prog, s.err
}

// available reports whether the safe engine can serve this rule.
func (s *safeVM) available() bool {
	_, err := s.vm()
	return err == nil
}

// FindFromCtx implements stream.Finder on the safe engine. The VM is
// linear-time, so one coarse cancellation poll per probe suffices.
func (s *safeVM) FindFromCtx(ctx context.Context, data []byte, from int) (arch.Match, bool, error) {
	p, err := s.vm()
	if err != nil {
		return arch.Match{}, false, err
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return arch.Match{}, false, &arch.ExecError{Offset: from, Err: cerr}
		}
	}
	s.mu.Lock()
	m, ok := p.FindFrom(data, from)
	s.mu.Unlock()
	return arch.Match{Start: m.Start, End: m.End}, ok, nil
}

// findAll collects every match starting at or after from, polling ctx
// between matches.
func (s *safeVM) findAll(ctx context.Context, data []byte, from int) ([]Match, error) {
	var out []Match
	pos := from
	for pos <= len(data) {
		m, ok, err := s.FindFromCtx(ctx, data, pos)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, m)
		if m.End > m.Start {
			pos = m.End
		} else {
			pos = m.End + 1
		}
	}
	return out, nil
}

// guarded wraps an execution core with the failure policy, implementing
// stream.Finder: recoverable faults (runaway, speculation-stack
// overflow) are retried on the safe engine (Degrade) or skipped past
// (Skip); cancellation, integrity and I/O faults propagate untouched.
// After the first fallback a guarded finder goes sticky — subsequent
// probes run straight on the safe engine, so a degraded window does not
// re-pay the runaway budget on every probe.
type guarded struct {
	core       *arch.Core
	vm         *safeVM
	policy     Policy
	onFallback func()
	degraded   bool
}

func (g *guarded) FindFromCtx(ctx context.Context, data []byte, from int) (arch.Match, bool, error) {
	if g.degraded {
		return g.vm.FindFromCtx(ctx, data, from)
	}
	for {
		m, ok, err := g.core.FindFromCtx(ctx, data, from)
		if err == nil {
			return m, ok, nil
		}
		if g.policy == FailFast || !recoverable(err) {
			return m, ok, err
		}
		off := failOffset(err, from)
		if g.policy == Degrade && g.vm != nil && g.vm.available() {
			g.degraded = true
			if g.onFallback != nil {
				g.onFallback()
			}
			// Resume on the safe engine from the probe's own origin: the
			// offsets the core cleared before the fault hold no match, so
			// re-examining them is redundant but never wrong.
			return g.vm.FindFromCtx(ctx, data, from)
		}
		// Skip (or Degrade without a safe engine): drop the poisoned
		// offset and keep searching.
		from = off + 1
		if from > len(data) {
			return arch.Match{}, false, nil
		}
	}
}

// resilientFindAll runs the one-shot FindAll discipline on core with
// the policy applied: FailFast propagates the first fault, Degrade
// hands the remainder of the scan to the safe engine, Skip resumes past
// each poisoned attempt offset (each resume re-arms the cycle budget).
// onFallback is invoked once per safe-engine engagement.
func resilientFindAll(ctx context.Context, core *arch.Core, vm *safeVM, policy Policy, data []byte, onFallback func()) ([]Match, error) {
	ms, err := core.FindAllFromCtx(ctx, data, 0, 0)
	for err != nil {
		if policy == FailFast || !recoverable(err) {
			return ms, err
		}
		off := failOffset(err, len(data))
		if policy == Degrade && vm != nil && vm.available() {
			if onFallback != nil {
				onFallback()
			}
			// The failing attempt's offset is the exact resume point: every
			// earlier offset was either matched or cleared by the core, and
			// the two engines agree on the supported semantics.
			rest, ferr := vm.findAll(ctx, data, off)
			return append(ms, rest...), ferr
		}
		var more []Match
		more, err = core.FindAllFromCtx(ctx, data, off+1, 0)
		ms = append(ms, more...)
	}
	return ms, nil
}
