package core

import (
	"bytes"
	"strings"
	"testing"

	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/metrics"
	"alveare/internal/metrics/metricstest"
)

// TestEngineMetricsReplay pins the deterministic-replay contract on a
// single-core engine: the same input scanned twice yields byte-identical
// metrics snapshots.
func TestEngineMetricsReplay(t *testing.T) {
	p, err := Compile(`[a-z]+@[a-z]+\.(com|org)`)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("mail bob@acme.com and eve@evil.org now ", 40))
	metricstest.Replay(t, func() *metrics.Snapshot {
		eng, err := NewEngine(p, WithMetrics())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.FindAll(data); err != nil {
			t.Fatal(err)
		}
		return eng.MetricsSnapshot()
	})
}

// TestEngineMetricsReplayStream is the replay contract over the chunked
// reader scan, including the stream throughput counters.
func TestEngineMetricsReplayStream(t *testing.T) {
	p, err := Compile(`err(or)?`)
	if err != nil {
		t.Fatal(err)
	}
	data := strings.Repeat("boot ok\nerror: disk\nerr 12\n", 300)
	metricstest.Replay(t, func() *metrics.Snapshot {
		eng, err := NewEngine(p, WithMetrics(), WithChunkSize(512), WithOverlap(64))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.FindReader(strings.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		snap := eng.MetricsSnapshot()
		ctr := eng.StreamCounters()
		if ctr.Windows == 0 || ctr.Bytes != int64(len(data)) || ctr.Matches != 600 {
			t.Fatalf("stream counters %+v (want bytes=%d matches=600)", ctr, len(data))
		}
		return snap
	})
}

// TestMulticoreMetricsTotals pins the order-insensitive contract on the
// scale-out engine: per-run totals (summed over cores) replay exactly
// even though the cores race.
func TestMulticoreMetricsTotals(t *testing.T) {
	p, err := Compile(`ab+a`)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("x abba y abbba ", 500))
	metricstest.ReplayTotals(t, func() map[string]int64 {
		eng, err := NewEngine(p, WithCores(4), WithMetrics())
		if err != nil {
			t.Fatal(err)
		}
		res, runErr := eng.Run(data)
		if runErr != nil {
			t.Fatal(runErr)
		}
		if res.Chunks != 4 {
			t.Fatalf("Chunks = %d, want 4", res.Chunks)
		}
		var sum arch.Stats
		for _, st := range res.PerCore {
			sum.Add(st)
		}
		return map[string]int64{
			"matches":       int64(len(res.Matches)),
			"chunks":        int64(res.Chunks),
			"cycles":        sum.Cycles,
			"instructions":  sum.Instructions,
			"spec.pushes":   sum.Speculations,
			"spec.flushes":  sum.SpecFlushes,
			"dmem.accesses": sum.DMemAccesses,
			"l1.hits":       sum.L1Hits,
			"l1.misses":     sum.L1Misses,
		}
	})
}

// TestRuleSetOccupancyInvariant ties the worker-pool roll-ups to ground
// truth: every dispatched job lands on exactly one worker slot, so the
// occupancy counters sum to the dispatch count, for both the one-shot
// and the streaming scan.
func TestRuleSetOccupancyInvariant(t *testing.T) {
	rules := []string{"cat", "[0-9]+", "do+r", "x{3,5}y"}
	rs, err := NewRuleSet(rules, backend.Options{}, WithWorkers(3), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("cat 42 door xxxxy ", 100))
	const scans = 5
	for range [scans]struct{}{} {
		if _, err := rs.Scan(data); err != nil {
			t.Fatal(err)
		}
	}
	sum := int64(0)
	for _, c := range rs.WorkerOccupancy() {
		sum += c
	}
	if want := int64(scans * len(rules)); sum != want || rs.Dispatched() != want {
		t.Fatalf("occupancy sum %d, dispatched %d, want %d", sum, rs.Dispatched(), want)
	}

	// Streaming: dispatched grows by one job per live rule per window.
	before := rs.Dispatched()
	stream := strings.Repeat("cat 7 door xxxxy pad pad ", 400)
	if _, err := rs.ScanReader(strings.NewReader(stream), func(int, Match, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	windows := rs.StreamCounters().Windows
	if windows == 0 {
		t.Fatal("no windows recorded")
	}
	sum = 0
	for _, c := range rs.WorkerOccupancy() {
		sum += c
	}
	if sum != rs.Dispatched() {
		t.Fatalf("occupancy sum %d != dispatched %d", sum, rs.Dispatched())
	}
	if got, want := rs.Dispatched()-before, windows*int64(len(rules)); got != want {
		t.Fatalf("stream dispatched %d, want windows(%d) * rules(%d) = %d", got, windows, len(rules), want)
	}
	if rs.StreamCounters().Bytes != int64(len(stream)) {
		t.Fatalf("stream bytes %d, want %d", rs.StreamCounters().Bytes, len(stream))
	}
}

// TestRuleSetPerRuleRollup checks the per-rule breakdown decomposes the
// aggregate and survives ResetStats.
func TestRuleSetPerRuleRollup(t *testing.T) {
	rules := []string{"aa+", "zz"}
	rs, err := NewRuleSet(rules, backend.Options{}, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Scan([]byte(strings.Repeat("aaa b ", 50))); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := range rules {
		st := rs.RuleStats(i)
		if st.Cycles <= 0 {
			t.Errorf("rule %d cycles = %d, want > 0", i, st.Cycles)
		}
		sum += st.Cycles
	}
	if agg := rs.Stats().Cycles; sum != agg {
		t.Errorf("per-rule cycle sum %d != aggregate %d", sum, agg)
	}
	snap := rs.MetricsSnapshot()
	if snap.Get("ruleset.rule000.cycles") != rs.RuleStats(0).Cycles {
		t.Error("snapshot rule000.cycles diverges from RuleStats")
	}
	rs.ResetStats()
	if rs.RuleStats(0).Cycles != 0 || rs.Dispatched() != 0 || len(rs.WorkerOccupancy()) != 0 {
		t.Error("ResetStats left per-rule/occupancy roll-ups populated")
	}
}

// TestRuleSetMetricsReplayTotals pins order-insensitive replay on a
// concurrent rule-set scan: worker scheduling varies run to run, but
// every total in the snapshot is a sum of per-rule contributions and so
// replays exactly. (Per-worker occupancy is scheduling-dependent and is
// deliberately excluded.)
func TestRuleSetMetricsReplayTotals(t *testing.T) {
	rules := []string{"GET|POST", "[0-9]{1,3}(\\.[0-9]{1,3}){3}", "admin"}
	data := []byte(strings.Repeat("GET /admin from 10.0.0.1\n", 200))
	metricstest.ReplayTotals(t, func() map[string]int64 {
		rs, err := NewRuleSet(rules, backend.Options{}, WithWorkers(4), WithMetrics())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Scan(data); err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, m := range rs.MetricsSnapshot().Metrics {
			if strings.HasPrefix(m.Name, "ruleset.worker") {
				continue // scheduling-dependent by design
			}
			out[m.Name] = m.Value
		}
		return out
	})
}

// TestEngineTracerOption checks WithTracer reaches the engine's core
// and the rule set's pooled cores.
func TestEngineTracerOption(t *testing.T) {
	p, err := Compile(`(a|ab)c`)
	if err != nil {
		t.Fatal(err)
	}
	ring := metrics.NewRing(1 << 10)
	eng, err := NewEngine(p, WithTracer(arch.RingTracer(ring)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FindAll([]byte("xx abc ac yy")); err != nil {
		t.Fatal(err)
	}
	if ring.Len() == 0 {
		t.Error("engine tracer captured no events")
	}

	ring2 := metrics.NewRing(1 << 10)
	rs, err := NewRuleSet([]string{"abc"}, backend.Options{}, WithTracer(arch.RingTracer(ring2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Scan([]byte("zz abc")); err != nil {
		t.Fatal(err)
	}
	if ring2.Len() == 0 {
		t.Error("rule-set tracer captured no events")
	}
	var buf bytes.Buffer
	if err := arch.WriteChromeTrace(&buf, ring2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Error("chrome trace missing traceEvents")
	}
}
