package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"alveare/internal/backend"
)

func testRules() []string {
	return []string{
		`GET [^ ]*\.php`,
		`passwd`,
		`[0-9]{3}-[0-9]{4}`,
		`(cat|dog|bird)`,
		`x[a-f]+y`,
		`ERROR|WARN`,
		`a{3,}`,
		`[^ ]+@[a-z]+\.com`,
		`--+`,
		`0x[0-9a-f]{2,8}`,
		`q(w|e)+?r`,
		`needle`,
	}
}

func testTraffic(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	alphabet := "abcdefqwrxy0123456789 .-@"
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = alphabet[r.Intn(len(alphabet))]
	}
	for _, w := range []string{
		"GET /index.php", "passwd", "555-1234", "catdog", "xabcdefy",
		"ERROR", "aaaa", "bob@acme.com", "----", "0xdeadbeef", "qweer", "needle",
	} {
		p := r.Intn(len(buf) - len(w))
		copy(buf[p:], w)
	}
	return buf
}

// scanSerialReference computes per-rule results the pre-concurrency
// way: one engine per rule, sequential FindAll.
func scanSerialReference(t *testing.T, rules []string, data []byte) []RuleMatches {
	t.Helper()
	var out []RuleMatches
	for i, re := range rules {
		p, err := CompileWith(re, backend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := eng.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) > 0 {
			out = append(out, RuleMatches{Rule: i, Matches: ms})
		}
	}
	return out
}

func sameRuleMatches(a, b []RuleMatches) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d rules hit", len(a), len(b))
	}
	for i := range a {
		if a[i].Rule != b[i].Rule {
			return fmt.Errorf("hit %d: rule %d vs %d", i, a[i].Rule, b[i].Rule)
		}
		if len(a[i].Matches) != len(b[i].Matches) {
			return fmt.Errorf("rule %d: %d vs %d matches", a[i].Rule, len(a[i].Matches), len(b[i].Matches))
		}
		for j := range a[i].Matches {
			if a[i].Matches[j] != b[i].Matches[j] {
				return fmt.Errorf("rule %d match %d: %v vs %v", a[i].Rule, j, a[i].Matches[j], b[i].Matches[j])
			}
		}
	}
	return nil
}

// TestRuleSetConcurrentScan checks that the worker-pool scan returns
// exactly the sequential per-rule results, at several worker widths.
func TestRuleSetConcurrentScan(t *testing.T) {
	rules := testRules()
	data := testTraffic(7, 20000)
	want := scanSerialReference(t, rules, data)
	if len(want) == 0 {
		t.Fatal("corpus hit no rules; test is vacuous")
	}
	for _, workers := range []int{1, 2, 8, 32} {
		rs, err := NewRuleSet(rules, backend.Options{}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if rs.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", rs.Workers(), workers)
		}
		got, err := rs.Scan(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameRuleMatches(got, want); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		if rs.Stats().Cycles == 0 {
			t.Errorf("workers=%d: no aggregate cycles", workers)
		}
	}
}

// TestRuleSetParallelCallers hammers one RuleSet from many goroutines —
// the sync.Pool recycling and stats merging must be race-free (run
// under -race) and every caller must see identical results.
func TestRuleSetParallelCallers(t *testing.T) {
	rules := testRules()
	rs, err := NewRuleSet(rules, backend.Options{}, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]byte, 6)
	wants := make([][]RuleMatches, len(inputs))
	for i := range inputs {
		inputs[i] = testTraffic(int64(100+i), 6000)
		wants[i] = scanSerialReference(t, rules, inputs[i])
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 24)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, in := range inputs {
				got, err := rs.Scan(in)
				if err != nil {
					errCh <- err
					return
				}
				if err := sameRuleMatches(got, wants[i]); err != nil {
					errCh <- fmt.Errorf("input %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if rs.Stats().Cycles == 0 {
		t.Error("no cycles aggregated across parallel scans")
	}
	rs.ResetStats()
	if rs.Stats().Cycles != 0 {
		t.Error("ResetStats did not clear the aggregate")
	}
}

// TestRuleSetScanReader checks the streaming rule-set scan against the
// in-memory batch scan (overlaps are sized over every rule's longest
// match, so the chunked results must be identical).
func TestRuleSetScanReader(t *testing.T) {
	rules := testRules()
	data := testTraffic(13, 30000)
	for _, cfg := range []struct{ chunk, overlap, workers int }{
		{7, 64, 8}, {256, 64, 4}, {4096, 256, 2}, {1 << 16, 256, 8},
	} {
		rs, err := NewRuleSet(rules, backend.Options{},
			WithWorkers(cfg.workers), WithChunkSize(cfg.chunk), WithOverlap(cfg.overlap))
		if err != nil {
			t.Fatal(err)
		}
		want, err := rs.Scan(data)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int][]Match{}
		consumed, err := rs.ScanReader(bytes.NewReader(data), func(rule int, m Match, text []byte) bool {
			if !bytes.Equal(text, data[m.Start:m.End]) {
				t.Errorf("rule %d: text %q != data[%d:%d]", rule, text, m.Start, m.End)
			}
			got[rule] = append(got[rule], m)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if consumed != int64(len(data)) {
			t.Errorf("consumed %d of %d bytes", consumed, len(data))
		}
		var gotList []RuleMatches
		for i := range rules {
			if len(got[i]) > 0 {
				gotList = append(gotList, RuleMatches{Rule: i, Matches: got[i]})
			}
		}
		if err := sameRuleMatches(gotList, want); err != nil {
			t.Errorf("chunk=%d overlap=%d workers=%d: %v", cfg.chunk, cfg.overlap, cfg.workers, err)
		}
	}
}

func TestRuleSetScanReaderEarlyStop(t *testing.T) {
	rs, err := NewRuleSet([]string{"a", "b"}, backend.Options{}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("ab", 5000))
	seen := 0
	if _, err := rs.ScanReader(bytes.NewReader(data), func(int, Match, []byte) bool {
		seen++
		return seen < 5
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Errorf("emitted %d matches after stop at 5", seen)
	}
}

func TestRuleSetEmpty(t *testing.T) {
	rs, err := NewRuleSet(nil, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := rs.Scan([]byte("anything"))
	if err != nil || hits != nil {
		t.Errorf("empty set: hits=%v err=%v", hits, err)
	}
	n, err := rs.ScanReader(strings.NewReader("anything"), func(int, Match, []byte) bool { return true })
	if err != nil || n != 8 {
		t.Errorf("empty set reader: n=%d err=%v", n, err)
	}
}

// TestEngineReaderMatchesFindAll covers Engine.FindReader/CountReader
// against the in-memory path on a multi-chunk input.
func TestEngineReaderMatchesFindAll(t *testing.T) {
	p, err := Compile(`[a-f]+[0-9]`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(p, WithChunkSize(128), WithOverlap(32))
	if err != nil {
		t.Fatal(err)
	}
	data := testTraffic(21, 10000)
	want, err := eng.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.FindReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("FindReader %d matches, FindAll %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: %v vs %v", i, got[i], want[i])
		}
	}
	n, err := eng.CountReader(bytes.NewReader(data))
	if err != nil || n != len(want) {
		t.Errorf("CountReader = %d, want %d (err %v)", n, len(want), err)
	}
}

// TestRuleSetPoolClearsPrefilterCache is a regression pin for the
// prefilter occurrence cache on pooled cores. With WithPrefilter, a
// hinted rule ("(foo|bar)needle" carries the mandatory literal
// "needle") caches the literal's occurrence offsets for the input it
// scanned (occ/occValid in the machine scratch). RuleSet recycles
// cores through a sync.Pool between Scan calls, so a Reset that failed
// to invalidate that cache would scan the SECOND input with the FIRST
// input's candidate offsets — missing matches or fabricating them.
// Scan two inputs with the literal at disjoint offsets through one
// RuleSet and demand each result equals a fresh RuleSet's.
func TestRuleSetPoolClearsPrefilterCache(t *testing.T) {
	rules := []string{`(foo|bar)needle`}
	// Input A: occurrences early. Input B: padding shifts every
	// occurrence far from A's offsets (and drops one).
	inA := []byte("fooneedle....barneedle" + strings.Repeat(".", 400))
	inB := []byte(strings.Repeat(".", 300) + "fooneedle" + strings.Repeat(".", 100))

	scanFresh := func(data []byte) []RuleMatches {
		rs, err := NewRuleSet(rules, backend.Options{}, WithPrefilter())
		if err != nil {
			t.Fatal(err)
		}
		out, err := rs.Scan(data)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	rs, err := NewRuleSet(rules, backend.Options{}, WithPrefilter())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, in := range [][]byte{inA, inB} {
			got, err := rs.Scan(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := sameRuleMatches(got, scanFresh(in)); err != nil {
				t.Fatalf("round %d: pooled cores diverge from fresh rule set: %v", round, err)
			}
		}
	}
	// Sanity: the inputs really exercise the hinted path differently.
	if a, b := scanFresh(inA), scanFresh(inB); len(a) == 0 || len(b) == 0 ||
		len(a[0].Matches) != 2 || len(b[0].Matches) != 1 {
		t.Fatalf("fixture drifted: A=%v B=%v", a, b)
	}
}
