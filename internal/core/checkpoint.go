package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadCheckpoint reports a stream checkpoint that failed structural
// validation — wrong version, unknown flags, truncation, trailing
// bytes, a rule count that disagrees with the restoring rule set, or
// offsets that violate the overlap-carry invariants. A checkpoint that
// decodes cleanly restores a stream whose future matches are
// byte-identical to the exporter's.
var ErrBadCheckpoint = errors.New("core: bad stream checkpoint")

// Stream checkpoint wire layout (version 1, big-endian):
//
//	u8  version (1)
//	u8  flags   (bit0: finished)
//	u32 overlap
//	u64 base    (stream offset of the first buffered byte)
//	u32 buffered length, then that many carry-window bytes
//	u32 rule count, then per rule:
//	    u8  rule flags (bit0: sticky/degraded, bit1: retired)
//	    u64 resume offset
//	    if retired: u16 error length, then that many error bytes
//
// The encoding is strict and self-delimiting: trailing bytes are an
// error, so a checkpoint embedded in a larger frame must be sliced
// exactly.
const (
	streamCkptVersion  = 1
	streamCkptFlagDone = 1 << 0

	streamCkptRuleSticky = 1 << 0
	streamCkptRuleDead   = 1 << 1

	streamCkptHeaderLen = 1 + 1 + 4 + 8 + 4
	streamCkptMaxOffset = 1 << 62 // u64→int safety fence
	streamCkptMaxRules  = 1 << 20
)

// Export serialises the stream's resumable state — consumed offset,
// carry-window bytes, per-rule resume/degraded/retired state and
// config — as a small versioned checkpoint. Exported at a push
// boundary (after PushCtx returned), the checkpoint restored via
// RuleSet.RestoreStream on an equivalent rule set continues the flow
// with matches byte-identical to the uninterrupted stream.
//
// Retired rules keep their error text but lose its concrete type: a
// restored stream's FinishCtx reports the same message, not the same
// errors.Is identity.
func (st *Stream) Export() []byte {
	n := len(st.pos)
	limit := st.base + len(st.buf)
	size := streamCkptHeaderLen + len(st.buf) + 4 + n*9
	msgs := make([]string, n)
	for i := 0; i < n; i++ {
		if st.dead[i] != nil {
			msg := st.dead[i].Error()
			if len(msg) > 0xFFFF {
				msg = msg[:0xFFFF]
			}
			msgs[i] = msg
			size += 2 + len(msg)
		}
	}
	out := make([]byte, 0, size)
	out = append(out, streamCkptVersion)
	var flags byte
	if st.done {
		flags |= streamCkptFlagDone
	}
	out = append(out, flags)
	out = binary.BigEndian.AppendUint32(out, uint32(st.overlap))
	out = binary.BigEndian.AppendUint64(out, uint64(st.base))
	out = binary.BigEndian.AppendUint32(out, uint32(len(st.buf)))
	out = append(out, st.buf...)
	out = binary.BigEndian.AppendUint32(out, uint32(n))
	for i := 0; i < n; i++ {
		var rf byte
		pos := st.pos[i]
		if st.sticky[i] {
			rf |= streamCkptRuleSticky
		}
		if st.dead[i] != nil {
			rf |= streamCkptRuleDead
			// A retired rule's frozen resume offset can sit below the
			// current base (the carry moved on without it); it is never
			// consulted again, so normalise it to the window limit where
			// the restore-side invariants hold.
			pos = limit
		}
		out = append(out, rf)
		out = binary.BigEndian.AppendUint64(out, uint64(pos))
		if st.dead[i] != nil {
			out = binary.BigEndian.AppendUint16(out, uint16(len(msgs[i])))
			out = append(out, msgs[i]...)
		}
	}
	return out
}

// RestoreStream rebuilds a push-mode stream from an Export checkpoint.
// The rule set must be equivalent to the exporter's (same rules in the
// same order — the rule count is verified, the patterns are the
// caller's contract, e.g. the gateway's generation fence). Garbage
// input yields ErrBadCheckpoint, never a panic or a stream that
// silently diverges.
func (rs *RuleSet) RestoreStream(cp []byte) (*Stream, error) {
	if len(cp) < streamCkptHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadCheckpoint, len(cp), streamCkptHeaderLen)
	}
	if cp[0] != streamCkptVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadCheckpoint, cp[0])
	}
	if cp[1]&^byte(streamCkptFlagDone) != 0 {
		return nil, fmt.Errorf("%w: unknown flags 0x%02x", ErrBadCheckpoint, cp[1])
	}
	done := cp[1]&streamCkptFlagDone != 0
	overlap := binary.BigEndian.Uint32(cp[2:6])
	base := binary.BigEndian.Uint64(cp[6:14])
	blen := binary.BigEndian.Uint32(cp[14:18])
	if overlap == 0 || overlap > 1<<30 {
		return nil, fmt.Errorf("%w: overlap %d", ErrBadCheckpoint, overlap)
	}
	if base > streamCkptMaxOffset {
		return nil, fmt.Errorf("%w: offset overflow", ErrBadCheckpoint)
	}
	if !done && uint64(blen) > uint64(overlap) {
		return nil, fmt.Errorf("%w: %d buffered bytes exceed overlap %d", ErrBadCheckpoint, blen, overlap)
	}
	off := uint64(streamCkptHeaderLen)
	if uint64(len(cp)) < off+uint64(blen)+4 {
		return nil, fmt.Errorf("%w: truncated carry window", ErrBadCheckpoint)
	}
	buf := make([]byte, blen)
	copy(buf, cp[off:off+uint64(blen)])
	off += uint64(blen)
	nrules := binary.BigEndian.Uint32(cp[off : off+4])
	off += 4
	if nrules > streamCkptMaxRules {
		return nil, fmt.Errorf("%w: rule count %d", ErrBadCheckpoint, nrules)
	}
	if int(nrules) != rs.Len() {
		return nil, fmt.Errorf("%w: checkpoint has %d rules, rule set has %d", ErrBadCheckpoint, nrules, rs.Len())
	}
	limit := base + uint64(blen)
	posMax := limit
	if done {
		posMax = limit + 1
	}
	pos := make([]int, nrules)
	sticky := make([]bool, nrules)
	dead := make([]error, nrules)
	for i := uint32(0); i < nrules; i++ {
		if uint64(len(cp)) < off+9 {
			return nil, fmt.Errorf("%w: truncated rule %d", ErrBadCheckpoint, i)
		}
		rf := cp[off]
		if rf&^byte(streamCkptRuleSticky|streamCkptRuleDead) != 0 {
			return nil, fmt.Errorf("%w: rule %d unknown flags 0x%02x", ErrBadCheckpoint, i, rf)
		}
		p := binary.BigEndian.Uint64(cp[off+1 : off+9])
		off += 9
		if p > streamCkptMaxOffset {
			return nil, fmt.Errorf("%w: rule %d offset overflow", ErrBadCheckpoint, i)
		}
		if p < base || p > limit+1 {
			return nil, fmt.Errorf("%w: rule %d pos %d outside [%d,%d]", ErrBadCheckpoint, i, p, base, limit+1)
		}
		if rf&streamCkptRuleDead == 0 && p > posMax {
			return nil, fmt.Errorf("%w: rule %d pos %d past limit %d", ErrBadCheckpoint, i, p, posMax)
		}
		pos[i] = int(p)
		sticky[i] = rf&streamCkptRuleSticky != 0
		if rf&streamCkptRuleDead != 0 {
			if uint64(len(cp)) < off+2 {
				return nil, fmt.Errorf("%w: truncated rule %d error", ErrBadCheckpoint, i)
			}
			mlen := uint64(binary.BigEndian.Uint16(cp[off : off+2]))
			off += 2
			if uint64(len(cp)) < off+mlen {
				return nil, fmt.Errorf("%w: truncated rule %d error text", ErrBadCheckpoint, i)
			}
			dead[i] = errors.New(string(cp[off : off+mlen]))
			off += mlen
		}
	}
	if off != uint64(len(cp)) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, uint64(len(cp))-off)
	}
	return &Stream{
		rs:      rs,
		overlap: int(overlap),
		buf:     buf,
		base:    int(base),
		pos:     pos,
		sticky:  sticky,
		dead:    dead,
		done:    done,
	}, nil
}

// CheckpointInfo is the header summary of a stream checkpoint, parsed
// without a rule set — what a relay (the gateway) needs to reason about
// a checkpoint it cannot restore itself: the consumed offset and the
// resident carry window, whose difference is the finalised prefix
// (every match already delivered starts before it).
type CheckpointInfo struct {
	Consumed uint64 // total stream bytes absorbed at export time
	Buffered uint64 // resident carry-window bytes
	Overlap  uint32
	Rules    uint32
	Done     bool
}

// PeekCheckpoint parses a stream checkpoint's header without restoring
// it. It validates the same structural invariants as RestoreStream up
// to (not including) the per-rule records' contents.
func PeekCheckpoint(cp []byte) (CheckpointInfo, error) {
	if len(cp) < streamCkptHeaderLen {
		return CheckpointInfo{}, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadCheckpoint, len(cp), streamCkptHeaderLen)
	}
	if cp[0] != streamCkptVersion {
		return CheckpointInfo{}, fmt.Errorf("%w: version %d", ErrBadCheckpoint, cp[0])
	}
	if cp[1]&^byte(streamCkptFlagDone) != 0 {
		return CheckpointInfo{}, fmt.Errorf("%w: unknown flags 0x%02x", ErrBadCheckpoint, cp[1])
	}
	info := CheckpointInfo{
		Done:    cp[1]&streamCkptFlagDone != 0,
		Overlap: binary.BigEndian.Uint32(cp[2:6]),
	}
	base := binary.BigEndian.Uint64(cp[6:14])
	blen := binary.BigEndian.Uint32(cp[14:18])
	if info.Overlap == 0 || base > streamCkptMaxOffset {
		return CheckpointInfo{}, fmt.Errorf("%w: bad header", ErrBadCheckpoint)
	}
	off := uint64(streamCkptHeaderLen) + uint64(blen)
	if uint64(len(cp)) < off+4 {
		return CheckpointInfo{}, fmt.Errorf("%w: truncated carry window", ErrBadCheckpoint)
	}
	info.Buffered = uint64(blen)
	info.Consumed = base + uint64(blen)
	info.Rules = binary.BigEndian.Uint32(cp[off : off+4])
	return info, nil
}
