package core

import (
	"context"
	"errors"
	"fmt"

	"alveare/internal/arch"
	"alveare/internal/stream"
)

// Execution sentinels re-exported from the microarchitecture, so
// library users can classify a ScanError's cause without importing
// internal packages.
var (
	// ErrRunaway is the speculative core's cycle-budget trip
	// (arch.Config.MaxCycles) — the simulator's analogue of the paper's
	// §6 bound on runaway speculation.
	ErrRunaway = arch.ErrRunaway
	// ErrStackOverflow is the speculation-stack capacity fault.
	ErrStackOverflow = arch.ErrStackOverflow
)

// ScanError is the structured failure every public scan path reports:
// which rule died, at which absolute byte offset of the input, and why.
// It is errors.Is/As-friendly — Unwrap exposes the cause, so
// errors.Is(err, ErrRunaway), errors.Is(err, context.Canceled) and
// errors.As(err, &*arch.ExecError) all work through it.
type ScanError struct {
	// Rule is the failing rule's index in its RuleSet; -1 for
	// single-pattern Engine scans.
	Rule int
	// Offset is the absolute byte offset of the failure in the scanned
	// stream: the start of the match attempt that faulted, or the first
	// byte a stream refill could not deliver. -1 when unknown.
	Offset int64
	// Cause is the underlying failure.
	Cause error
}

func (e *ScanError) Error() string {
	if e.Rule >= 0 {
		return fmt.Sprintf("scan: rule %d at offset %d: %v", e.Rule, e.Offset, e.Cause)
	}
	return fmt.Sprintf("scan: offset %d: %v", e.Offset, e.Cause)
}

func (e *ScanError) Unwrap() error { return e.Cause }

// scanErrFor wraps err into the ScanError taxonomy, lifting the failure
// offset out of the positional error types the lower layers produce
// (arch.ExecError offsets are absolute by the time they cross the
// stream/multicore APIs). An err that is already a ScanError passes
// through, gaining the rule index if it had none.
func scanErrFor(rule int, err error) error {
	if err == nil {
		return nil
	}
	var se *ScanError
	if errors.As(err, &se) {
		if se.Rule < 0 && rule >= 0 {
			return &ScanError{Rule: rule, Offset: se.Offset, Cause: se.Cause}
		}
		return err
	}
	off := int64(-1)
	var ee *arch.ExecError
	var re *stream.ReadError
	switch {
	case errors.As(err, &ee):
		off = int64(ee.Offset)
	case errors.As(err, &re):
		off = re.Offset
	}
	return &ScanError{Rule: rule, Offset: off, Cause: err}
}

// Policy selects how an Engine or RuleSet contains recoverable
// execution faults — a core tripping its cycle budget (ErrRunaway) or
// speculation-stack capacity (ErrStackOverflow) on adversarial input.
// Context cancellation, deadline expiry, stream read failures and
// integrity faults always surface regardless of policy.
type Policy int

const (
	// FailFast aborts the scan on the first fault (the default): the
	// error, as a *ScanError, names the rule and offset.
	FailFast Policy = iota
	// Degrade retries the faulting window on the safe linear-time
	// engine (internal/baseline/pikevm) — no speculation, guaranteed
	// O(n) — so the match output stays complete while Stats.Fallbacks
	// counts the degradations. When no pattern source is available for
	// the safe engine (hand-assembled programs), Degrade behaves like
	// Skip.
	Degrade
	// Skip drops the poisoned region — the failing attempt's start
	// offset for a window, the failing rule for a rule-set scan — and
	// continues. Matches may be missed where the fault hit; everything
	// else is reported.
	Skip
)

func (p Policy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case Degrade:
		return "degrade"
	case Skip:
		return "skip"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps the command-line spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "failfast", "fail-fast", "":
		return FailFast, nil
	case "degrade":
		return Degrade, nil
	case "skip":
		return Skip, nil
	}
	return FailFast, fmt.Errorf("core: unknown policy %q (want failfast, degrade or skip)", s)
}

// recoverable reports whether a fault is in the class the Degrade and
// Skip policies may contain.
func recoverable(err error) bool {
	return errors.Is(err, arch.ErrRunaway) || errors.Is(err, arch.ErrStackOverflow)
}

// isCancel reports whether err stems from context cancellation or
// deadline expiry.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// failOffset extracts the positional error's offset, defaulting to def.
func failOffset(err error, def int) int {
	var ee *arch.ExecError
	if errors.As(err, &ee) {
		return ee.Offset
	}
	return def
}
