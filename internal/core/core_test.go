package core

import (
	"strings"
	"testing"

	"alveare/internal/arch"
	"alveare/internal/backend"
)

func TestCompileAndRun(t *testing.T) {
	p, err := Compile("ab+c")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := e.Find([]byte("xxabbbcyy"))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m.Start != 2 || m.End != 7 {
		t.Errorf("match = %+v", m)
	}
	if got, err := e.Match([]byte("nope")); err != nil || got {
		t.Errorf("Match = %v/%v", got, err)
	}
	if e.Program() != p {
		t.Error("Program accessor lost the program")
	}
}

func TestCompileWithMinimal(t *testing.T) {
	adv, err := Compile("[a-z]")
	if err != nil {
		t.Fatal(err)
	}
	min, err := CompileWith("[a-z]", backend.Minimal())
	if err != nil {
		t.Fatal(err)
	}
	if min.OpCount() <= adv.OpCount() {
		t.Errorf("minimal %d <= advanced %d", min.OpCount(), adv.OpCount())
	}
}

func TestEngineOptions(t *testing.T) {
	p, err := Compile("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(p, WithCores(0)); err == nil {
		t.Error("zero cores accepted")
	}
	cfg := arch.DefaultConfig()
	cfg.ComputeUnits = 1
	e, err := NewEngine(p, WithArchConfig(cfg), WithCores(3), WithOverlap(16))
	if err != nil {
		t.Fatal(err)
	}
	if e.Cores() != 3 {
		t.Errorf("Cores = %d", e.Cores())
	}
	n, err := e.Count([]byte("x.x.x"))
	if err != nil || n != 3 {
		t.Errorf("Count = %d/%v", n, err)
	}
}

func TestRunSingleVsMulti(t *testing.T) {
	p, err := Compile("needle")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("straw ", 5000) + "needle" + strings.Repeat(" straw", 5000))
	single, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewEngine(p, WithCores(8))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := single.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := multi.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Matches) != 1 || len(rm.Matches) != 1 {
		t.Fatalf("matches: single %d, multi %d", len(rs.Matches), len(rm.Matches))
	}
	if rs.Matches[0] != rm.Matches[0] {
		t.Errorf("positions differ: %v vs %v", rs.Matches[0], rm.Matches[0])
	}
	if rm.WallCycles >= rs.WallCycles {
		t.Errorf("multi wall %d not below single %d", rm.WallCycles, rs.WallCycles)
	}
	if len(rs.PerCore) != 1 || len(rm.PerCore) != 8 {
		t.Errorf("per-core shapes: %d, %d", len(rs.PerCore), len(rm.PerCore))
	}
}
