package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"alveare/internal/backend"
)

func fastCorpus(t *testing.T) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	var b bytes.Buffer
	words := []string{"lorem", "ipsum", "dolor", "sit", "amet", "alpha42", "omega", "foo", "foobar"}
	for b.Len() < 1<<16 {
		b.WriteString(words[r.Intn(len(words))])
		b.WriteByte(" .,\n"[r.Intn(4)])
	}
	return b.Bytes()
}

// The gate never changes results: every Engine entry point must return
// byte-identical matches with and without WithDFA, and the gate
// counters must show it actually ran.
func TestEngineFastPathByteIdentical(t *testing.T) {
	patterns := []string{`foobar`, `a[a-z]+42`, `(lorem|ipsum) dolor`, `om+ega`, `zzz+q`}
	data := fastCorpus(t)
	for _, re := range patterns {
		p, err := Compile(re)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewEngine(p, WithDFA())
		if err != nil {
			t.Fatal(err)
		}
		if !fast.FastEnabled() {
			t.Fatalf("%q: fast path not enabled", re)
		}
		wantAll, err1 := slow.FindAll(data)
		gotAll, err2 := fast.FindAll(data)
		if err1 != nil || err2 != nil {
			t.Fatalf("%q: FindAll errs %v / %v", re, err1, err2)
		}
		if !sameMatches(wantAll, gotAll) {
			t.Fatalf("%q: FindAll diverged: %d vs %d matches", re, len(wantAll), len(gotAll))
		}
		wantRd, err1 := slow.FindReader(bytes.NewReader(data))
		gotRd, err2 := fast.FindReader(bytes.NewReader(data))
		if err1 != nil || err2 != nil {
			t.Fatalf("%q: FindReader errs %v / %v", re, err1, err2)
		}
		if !sameMatches(wantRd, gotRd) {
			t.Fatalf("%q: FindReader diverged", re)
		}
		fs := fast.FastStats()
		if fs.Probes == 0 {
			t.Fatalf("%q: gate never consulted: %+v", re, fs)
		}
		if len(wantAll) == 0 && fs.Confirms != 0 {
			t.Fatalf("%q: no matches but %d confirms", re, fs.Confirms)
		}
	}
}

// Multi-core engines gate whole chunks; results stay identical and
// match-free chunks are skipped.
func TestEngineFastPathMultiCore(t *testing.T) {
	p, err := Compile(`needle[0-9]`)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("hay "), 64*1024)
	copy(data[100:], "needle7")
	slow, _ := NewEngine(p, WithCores(4))
	fast, err := NewEngine(p, WithCores(4), WithDFA())
	if err != nil {
		t.Fatal(err)
	}
	want, err1 := slow.FindAll(data)
	got, err2 := fast.FindAll(data)
	if err1 != nil || err2 != nil || !sameMatches(want, got) || len(got) != 1 {
		t.Fatalf("multicore diverged: %v/%v, %d vs %d", err1, err2, len(want), len(got))
	}
	res, err := fast.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastSkips == 0 {
		t.Fatalf("no chunk skips on mostly-hay input: %+v", res)
	}
}

// A tiny DFA cache on a thrashing pattern must bail mid-scan and fall
// back — with identical results and the fallback visibly counted.
func TestEngineFastPathCacheBlowupFallsBack(t *testing.T) {
	re := `a[ab]{14}`
	p, err := Compile(re)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = "ab"[r.Intn(2)]
	}
	for i := 10; i < len(data); i += 11 {
		data[i] = 'x' // keep it accept-free so the gate runs long enough
	}
	slow, _ := NewEngine(p)
	fast, err := NewEngine(p, WithDFA(), WithDFACache(16))
	if err != nil {
		t.Fatal(err)
	}
	want, err1 := slow.FindAll(data)
	got, err2 := fast.FindAll(data)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v / %v", err1, err2)
	}
	if !sameMatches(want, got) {
		t.Fatalf("blowup path diverged: %d vs %d", len(want), len(got))
	}
	fs := fast.FastStats()
	if fs.Bails == 0 {
		t.Fatalf("cache blowup not exercised: %+v", fs)
	}
}

// Cancellation inside the gate surfaces the same error chain as the
// slow path: a *ScanError wrapping context.Canceled.
func TestEngineFastPathCancellation(t *testing.T) {
	p, err := Compile(`needle`)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(p, WithDFA())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, ferr := fast.FindAllCtx(ctx, make([]byte, 1<<20))
	var se *ScanError
	if !errors.As(ferr, &se) || !errors.Is(ferr, context.Canceled) {
		t.Fatalf("cancelled fast scan error = %v, want *ScanError wrapping Canceled", ferr)
	}
	if fast.Stats().CancelledScans == 0 {
		t.Fatal("CancelledScans not counted")
	}
}

// RuleSet: prefilter dispatch must never change Scan/ScanReader
// results, and the skip counters must show it gated.
func TestRuleSetFastPathByteIdentical(t *testing.T) {
	patterns := []string{`foobar`, `alpha[0-9]+`, `omega`, `(lorem|zzz)`, `[a-z]*qqq7`}
	data := fastCorpus(t)
	slow, err := NewRuleSet(patterns, backend.Options{}, WithChunkSize(4096), WithOverlap(64))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewRuleSet(patterns, backend.Options{}, WithChunkSize(4096), WithOverlap(64), WithDFA())
	if err != nil {
		t.Fatal(err)
	}
	if !fast.FastEnabled() || !fast.PrefilterEnabled() {
		t.Fatal("fast path / prefilter not enabled")
	}
	want, err1 := slow.Scan(data)
	got, err2 := fast.Scan(data)
	if err1 != nil || err2 != nil {
		t.Fatalf("Scan errs %v / %v", err1, err2)
	}
	if derr := sameRuleMatches(want, got); derr != nil {
		t.Fatalf("Scan diverged: %v", derr)
	}
	type hit struct {
		rule int
		m    Match
	}
	collect := func(rs *RuleSet) []hit {
		var out []hit
		_, err := rs.ScanReader(bytes.NewReader(data), func(rule int, m Match, _ []byte) bool {
			out = append(out, hit{rule, m})
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	wantH, gotH := collect(slow), collect(fast)
	if len(wantH) != len(gotH) {
		t.Fatalf("ScanReader diverged: %d vs %d hits", len(wantH), len(gotH))
	}
	for i := range wantH {
		if wantH[i] != gotH[i] {
			t.Fatalf("hit %d diverged: %+v vs %+v", i, wantH[i], gotH[i])
		}
	}
	fs := fast.FastStats()
	if fs.PrefilterSkips == 0 || fs.PrefilterPasses == 0 {
		t.Fatalf("prefilter did not gate: %+v", fs)
	}
	if fs.Probes == 0 || fs.Negatives == 0 {
		t.Fatalf("gates did not run: %+v", fs)
	}
	if slow.Dispatched() <= fast.Dispatched() {
		t.Fatalf("prefilter did not reduce dispatch: %d vs %d", slow.Dispatched(), fast.Dispatched())
	}
}

// A rule the lazy DFA cannot gate (oversized NFA) still scans — on the
// exact path — and the prefilter still gates the others.
func TestRuleSetFastPathUnsupportedRule(t *testing.T) {
	big := `x` + strings.Repeat(`[ab]`, 5000) // NFA past the lazy bound
	rs, err := NewRuleSet([]string{`foobar`, big}, backend.Options{}, WithDFA())
	if err != nil {
		t.Fatal(err)
	}
	out, err := rs.Scan([]byte("a foobar b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Rule != 0 || len(out[0].Matches) != 1 {
		t.Fatalf("unexpected result: %+v", out)
	}
}

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

