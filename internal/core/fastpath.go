package core

// The hybrid fast path: a lazy (on-the-fly determinised) DFA gates
// every probe before it reaches the speculative core. The DFA answers
// only existence — "does any match starting at or after the probe
// origin end in this data?" — which subset construction preserves
// exactly; a negative answer skips the precise engine entirely, a
// positive one delegates the probe unchanged, so match offsets always
// come from the same leftmost-first engine as the slow path and the
// two paths are byte-identical by construction. On cache blowup
// (automata.ErrDFABail) the finder goes sticky-slow for the rest of
// the scan: the exact engine is the fallback contract, never a lossy
// approximation.

import (
	"context"
	"errors"

	"alveare/internal/arch"
	"alveare/internal/automata"
	"alveare/internal/stream"
)

// FastStats counts the hybrid fast path's behaviour: how probes were
// resolved (gate counters), how the DFA state cache behaved (cache
// counters), and — on a RuleSet — how the cross-rule literal prefilter
// dispatched (prefilter counters).
type FastStats struct {
	// Probes is the number of gate consultations (fast-path searches).
	Probes int64
	// Negatives is the probes the DFA resolved alone: no match exists,
	// the precise engine never ran.
	Negatives int64
	// Confirms is the probes handed to the precise engine after the DFA
	// found a match end (the engine then produced the exact offsets).
	Confirms int64
	// FallbackProbes is the probes served entirely by the slow path
	// because the gate had bailed earlier in the same scan.
	FallbackProbes int64

	// CacheHits / CacheMisses are DFA transitions served from /
	// computed into the bounded state cache; CacheFlushes counts
	// clear-on-full evictions (CacheEvicted sums the states dropped)
	// and Bails the thrash detections that disabled the gate for the
	// rest of a scan.
	CacheHits    int64
	CacheMisses  int64
	CacheFlushes int64
	CacheEvicted int64
	Bails        int64

	// PrefilterPasses / PrefilterSkips count rule-windows dispatched to
	// / withheld from the scan pool by the Aho–Corasick literal
	// prefilter (RuleSet only).
	PrefilterPasses int64
	PrefilterSkips  int64
}

// Add folds o into s.
func (s *FastStats) Add(o FastStats) {
	s.Probes += o.Probes
	s.Negatives += o.Negatives
	s.Confirms += o.Confirms
	s.FallbackProbes += o.FallbackProbes
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheFlushes += o.CacheFlushes
	s.CacheEvicted += o.CacheEvicted
	s.Bails += o.Bails
	s.PrefilterPasses += o.PrefilterPasses
	s.PrefilterSkips += o.PrefilterSkips
}

// addLazy folds one DFA instance's cache counters into s.
func (s *FastStats) addLazy(ls automata.LazyStats) {
	s.CacheHits += ls.Hits()
	s.CacheMisses += ls.Misses
	s.CacheFlushes += ls.Flushes
	s.CacheEvicted += ls.Evicted
	s.Bails += ls.Bails
}

// fastFinder implements stream.Finder as gate-then-delegate: the lazy
// DFA proves absence or hands the probe to the wrapped slow finder
// (the policy-applying guarded engine). After a cache bail the finder
// is sticky-slow — results are identical either way, only the gate's
// cost model changed. Like guarded, one instance serves one scan on
// one goroutine.
type fastFinder struct {
	dfa  *automata.LazyDFA
	slow stream.Finder
	st   *FastStats
	dead bool
}

func (f *fastFinder) FindFromCtx(ctx context.Context, data []byte, from int) (arch.Match, bool, error) {
	if f.dead {
		f.st.FallbackProbes++
		return f.slow.FindFromCtx(ctx, data, from)
	}
	f.st.Probes++
	_, found, err := f.dfa.FirstAcceptCtx(ctx, data, from)
	if err != nil {
		if errors.Is(err, automata.ErrDFABail) {
			f.dead = true
			return f.slow.FindFromCtx(ctx, data, from)
		}
		// Cancellation: surface it exactly as the core does, an
		// ExecError at the probe's origin, so error chains match the
		// slow path (stream.ScanWindowCtx rebases the offset).
		return arch.Match{}, false, &arch.ExecError{Offset: from, Err: err}
	}
	if !found {
		f.st.Negatives++
		return arch.Match{}, false, nil
	}
	f.st.Confirms++
	return f.slow.FindFromCtx(ctx, data, from)
}

// findAllWith runs the one-shot FindAll resume discipline through an
// arbitrary finder — the fast path's counterpart of resilientFindAll
// (the policy lives inside the wrapped guarded finder).
func findAllWith(ctx context.Context, f stream.Finder, data []byte) ([]Match, error) {
	var out []Match
	pos := 0
	for pos <= len(data) {
		m, ok, err := f.FindFromCtx(ctx, data, pos)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, m)
		if m.End > m.Start {
			pos = m.End
		} else {
			pos = m.End + 1 // empty match: advance one byte, as FindAll does
		}
	}
	return out, nil
}
