package core

import (
	"fmt"

	"alveare/internal/backend"
)

// RuleSet is a compiled multi-pattern database — the deployment unit of
// deep-packet-inspection workloads, where hundreds of rules scan the
// same stream. Each rule keeps its own engine (the multi-core ALVEARE
// parallelises over data, rules are dispatched sequentially, as in the
// paper's per-RE evaluation).
type RuleSet struct {
	patterns []string
	engines  []*Engine
}

// NewRuleSet compiles every pattern with the given compiler options and
// builds one engine per rule.
func NewRuleSet(patterns []string, copt backend.Options, opts ...Option) (*RuleSet, error) {
	rs := &RuleSet{patterns: append([]string(nil), patterns...)}
	for i, re := range patterns {
		p, err := CompileWith(re, copt)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d %q: %w", i, re, err)
		}
		eng, err := NewEngine(p, opts...)
		if err != nil {
			return nil, err
		}
		rs.engines = append(rs.engines, eng)
	}
	return rs, nil
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.engines) }

// Pattern returns the i-th rule's source.
func (rs *RuleSet) Pattern(i int) string { return rs.patterns[i] }

// Engine returns the i-th rule's engine.
func (rs *RuleSet) Engine(i int) *Engine { return rs.engines[i] }

// RuleMatches reports one rule's hits in a scanned stream.
type RuleMatches struct {
	Rule    int
	Matches []Match
}

// Scan runs every rule over data and returns the hits of the rules that
// matched, in rule order.
func (rs *RuleSet) Scan(data []byte) ([]RuleMatches, error) {
	var out []RuleMatches
	for i, eng := range rs.engines {
		ms, err := eng.FindAll(data)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d %q: %w", i, rs.patterns[i], err)
		}
		if len(ms) > 0 {
			out = append(out, RuleMatches{Rule: i, Matches: ms})
		}
	}
	return out, nil
}

// FirstMatch returns the lowest-numbered rule that occurs in data.
func (rs *RuleSet) FirstMatch(data []byte) (rule int, ok bool, err error) {
	for i, eng := range rs.engines {
		hit, err := eng.Match(data)
		if err != nil {
			return 0, false, fmt.Errorf("core: rule %d %q: %w", i, rs.patterns[i], err)
		}
		if hit {
			return i, true, nil
		}
	}
	return 0, false, nil
}

// TotalCycles sums the single-core cycle counters across all rules.
func (rs *RuleSet) TotalCycles() int64 {
	var total int64
	for _, eng := range rs.engines {
		total += eng.Stats().Cycles
	}
	return total
}
