package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/isa"
	"alveare/internal/stream"
)

// RuleSet is a compiled multi-pattern database — the deployment unit of
// deep-packet-inspection workloads, where hundreds of rules scan the
// same stream. Rules are dispatched to a bounded worker pool (the
// multi-core ALVEARE parallelises over data; a rule set parallelises
// over rules, as the paper's per-RE evaluation runs one RE per loaded
// core). Scanning cores are recycled through per-rule pools, so a
// RuleSet is safe for concurrent Scan calls from multiple goroutines.
type RuleSet struct {
	patterns []string
	progs    []*isa.Program
	engines  []*Engine
	cfg      arch.Config
	workers  int
	stream   stream.Config

	// pools hold per-rule scanning cores; Get yields a Reset core whose
	// speculation-stack arenas survive recycling (arch.Core.Reset).
	pools []sync.Pool

	mu  sync.Mutex // guards agg
	agg arch.Stats
}

// NewRuleSet compiles every pattern with the given compiler options and
// builds one engine per rule.
func NewRuleSet(patterns []string, copt backend.Options, opts ...Option) (*RuleSet, error) {
	s := settings{cores: 1, cfg: arch.DefaultConfig()}
	for _, o := range opts {
		o(&s)
	}
	rs := &RuleSet{
		patterns: append([]string(nil), patterns...),
		cfg:      s.cfg,
		workers:  s.workers,
		stream:   stream.Config{ChunkSize: s.chunk, Overlap: s.overlap},
	}
	for i, re := range patterns {
		p, err := CompileWith(re, copt)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d %q: %w", i, re, err)
		}
		eng, err := NewEngine(p, opts...)
		if err != nil {
			return nil, err
		}
		rs.progs = append(rs.progs, p)
		rs.engines = append(rs.engines, eng)
	}
	rs.pools = make([]sync.Pool, len(rs.progs))
	for i := range rs.pools {
		prog := rs.progs[i]
		rs.pools[i].New = func() any {
			// The program passed validation when its engine was built,
			// so NewCore cannot fail here.
			c, err := arch.NewCore(prog, rs.cfg)
			if err != nil {
				return nil
			}
			return c
		}
	}
	return rs, nil
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.engines) }

// Pattern returns the i-th rule's source.
func (rs *RuleSet) Pattern(i int) string { return rs.patterns[i] }

// Engine returns the i-th rule's engine.
func (rs *RuleSet) Engine(i int) *Engine { return rs.engines[i] }

// Workers returns the scan concurrency bound (0 means GOMAXPROCS).
func (rs *RuleSet) Workers() int { return rs.workers }

// workerCount clamps the configured bound to the job count.
func (rs *RuleSet) workerCount(jobs int) int {
	n := rs.workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// getCore borrows the i-th rule's scanning core, reset for a new input.
func (rs *RuleSet) getCore(i int) (*arch.Core, error) {
	if c, ok := rs.pools[i].Get().(*arch.Core); ok && c != nil {
		c.Reset()
		return c, nil
	}
	return arch.NewCore(rs.progs[i], rs.cfg)
}

// RuleMatches reports one rule's hits in a scanned stream.
type RuleMatches struct {
	Rule    int
	Matches []Match
}

// Scan runs every rule over data on the worker pool and returns the
// hits of the rules that matched, in rule order. Per-rule counters are
// merged race-free into the aggregate reported by Stats.
func (rs *RuleSet) Scan(data []byte) ([]RuleMatches, error) {
	n := rs.Len()
	if n == 0 {
		return nil, nil
	}
	matches := make([][]Match, n)
	errs := make([]error, n)
	var agg arch.Stats
	var aggMu sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < rs.workerCount(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				core, err := rs.getCore(i)
				if err != nil {
					errs[i] = err
					continue
				}
				matches[i], errs[i] = core.FindAll(data, 0)
				st := core.Stats()
				rs.pools[i].Put(core)
				aggMu.Lock()
				agg.Add(st)
				aggMu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rs.mu.Lock()
	rs.agg.Add(agg)
	rs.mu.Unlock()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: rule %d %q: %w", i, rs.patterns[i], err)
		}
	}
	var out []RuleMatches
	for i, ms := range matches {
		if len(ms) > 0 {
			out = append(out, RuleMatches{Rule: i, Matches: ms})
		}
	}
	return out, nil
}

// ScanReader scans an unbounded stream against every rule: the input
// is consumed once, window by window (WithChunkSize / WithOverlap),
// and each window is dispatched to the worker pool — one resume
// position per rule, following the same one-shot-equivalent discipline
// as Engine.ScanReader. emit is called sequentially (never
// concurrently), windows in stream order and rules in rule order
// within a window; text aliases the window buffer and is valid only
// during the call. Returning false stops the scan. The byte count
// consumed from r is returned.
//
// Matches longer than the overlap are the chunking scheme's documented
// blind spot, exactly as for Engine.ScanReader.
func (rs *RuleSet) ScanReader(r io.Reader, emit func(rule int, m Match, text []byte) bool) (int64, error) {
	n := rs.Len()
	cfg := rs.stream
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = stream.DefaultChunkSize
	}
	if cfg.Overlap <= 0 {
		cfg.Overlap = stream.DefaultOverlap
	}
	buf := make([]byte, 0, cfg.ChunkSize+cfg.Overlap)
	pos := make([]int, n) // per-rule resume offsets
	base := 0
	final := false
	for !final {
		have := len(buf)
		buf = buf[:have+cfg.ChunkSize]
		nr, err := io.ReadFull(r, buf[have:])
		buf = buf[:have+nr]
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			final = true
		default:
			return int64(base + len(buf)), fmt.Errorf("core: ruleset read at offset %d: %w", base+have, err)
		}
		limit := base + len(buf)

		// Fan the window out to the workers; collect per rule so the
		// emission below is deterministic.
		wins := make([][]Match, n)
		errs := make([]error, n)
		var agg arch.Stats
		var aggMu sync.Mutex
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < rs.workerCount(n); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					core, err := rs.getCore(i)
					if err != nil {
						errs[i] = err
						continue
					}
					npos, _, err := stream.ScanWindow(core, buf, base, final, cfg.Overlap, pos[i],
						func(m Match, _ []byte) bool {
							wins[i] = append(wins[i], m)
							return true
						})
					pos[i], errs[i] = npos, err
					st := core.Stats()
					rs.pools[i].Put(core)
					aggMu.Lock()
					agg.Add(st)
					aggMu.Unlock()
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()

		rs.mu.Lock()
		rs.agg.Add(agg)
		rs.mu.Unlock()
		for i, err := range errs {
			if err != nil {
				return int64(limit), fmt.Errorf("core: rule %d %q: %w", i, rs.patterns[i], err)
			}
		}
		for i, ms := range wins {
			for _, m := range ms {
				if !emit(i, m, buf[m.Start-base:m.End-base]) {
					return int64(limit), nil
				}
			}
		}
		if final {
			break
		}
		// Carry the shared overlap tail; every rule's resume offset is
		// at or past it (ScanWindow guarantees pos >= limit-overlap).
		carry := limit - cfg.Overlap
		if carry < base {
			carry = base
		}
		copy(buf, buf[carry-base:])
		buf = buf[:limit-carry]
		base = carry
	}
	return int64(base + len(buf)), nil
}

// FirstMatch returns the lowest-numbered rule that occurs in data.
func (rs *RuleSet) FirstMatch(data []byte) (rule int, ok bool, err error) {
	for i, eng := range rs.engines {
		hit, err := eng.Match(data)
		if err != nil {
			return 0, false, fmt.Errorf("core: rule %d %q: %w", i, rs.patterns[i], err)
		}
		if hit {
			return i, true, nil
		}
	}
	return 0, false, nil
}

// Stats returns the aggregate counters merged from every pooled core
// across all Scan and ScanReader calls so far.
func (rs *RuleSet) Stats() Stats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.agg
}

// ResetStats clears the aggregate scan counters.
func (rs *RuleSet) ResetStats() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.agg = arch.Stats{}
}

// TotalCycles sums the scan-pool aggregate and the per-rule engines'
// single-core counters (the engines serve Find-style probes).
func (rs *RuleSet) TotalCycles() int64 {
	total := rs.Stats().Cycles
	for _, eng := range rs.engines {
		total += eng.Stats().Cycles
	}
	return total
}
